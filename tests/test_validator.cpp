//===- tests/test_validator.cpp - validation and side-table tests ----------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "testutil.h"

#include <gtest/gtest.h>

using namespace wisp;

namespace {

TEST(Validator, AcceptsSimpleAdd) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.localGet(1);
  F.op(Opcode::I32Add);
  auto M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Funcs[0].MaxStack, 2u);
  EXPECT_TRUE(M->Funcs[0].Table.Entries.empty());
}

TEST(Validator, RejectsTypeMismatch) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.op(Opcode::F64Sqrt); // f64 op on i32 value.
  expectInvalid(MB);
}

TEST(Validator, RejectsStackUnderflow) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.op(Opcode::I32Add); // Nothing to pop.
  expectInvalid(MB);
}

TEST(Validator, RejectsMissingResult) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.op(Opcode::Nop);
  expectInvalid(MB);
}

TEST(Validator, RejectsSuperfluousResult) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(1);
  expectInvalid(MB);
}

TEST(Validator, AcceptsBlockWithResult) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.block(BlockType::oneResult(ValType::I32));
  F.i32Const(7);
  F.end();
  auto M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
}

TEST(Validator, BrIfSideTableEntry) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.block(BlockType::oneResult(ValType::I32));
  F.i32Const(1);
  F.localGet(0);
  F.brIf(0);
  F.drop();
  F.i32Const(2);
  F.end();
  auto M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  const SideTable &ST = M->Funcs[0].Table;
  ASSERT_EQ(ST.Entries.size(), 1u);
  const SideTableEntry &E = ST.Entries[0];
  EXPECT_EQ(E.ValCount, 1u);
  EXPECT_EQ(E.TargetHeight, 0u);
  // Target is just past the function's inner `end`, i.e. one byte before
  // the function-terminating end.
  EXPECT_EQ(E.TargetIp, M->Funcs[0].BodyEnd - 1);
  EXPECT_EQ(E.TargetStp, 1u);
}

TEST(Validator, LoopBranchTargetsHeader) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.loop();
  F.localGet(0);
  F.brIf(0);
  F.end();
  auto M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  const SideTable &ST = M->Funcs[0].Table;
  ASSERT_EQ(ST.Entries.size(), 1u);
  // Loop target: first body instruction = BodyStart + 2 (loop opcode +
  // blocktype byte), with STP 0 (no entries precede the body).
  EXPECT_EQ(ST.Entries[0].TargetIp, M->Funcs[0].BodyStart + 2);
  EXPECT_EQ(ST.Entries[0].TargetStp, 0u);
  EXPECT_EQ(ST.Entries[0].ValCount, 0u);
}

TEST(Validator, IfElseSideTable) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.ifOp(BlockType::oneResult(ValType::I32));
  F.i32Const(1);
  F.elseOp();
  F.i32Const(2);
  F.end();
  auto M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  const SideTable &ST = M->Funcs[0].Table;
  // Entry 0: if false edge -> after `else`. Entry 1: else skip -> after end.
  ASSERT_EQ(ST.Entries.size(), 2u);
  EXPECT_LT(ST.Entries[0].TargetIp, ST.Entries[1].TargetIp);
  EXPECT_EQ(ST.Entries[0].TargetStp, 2u);
  EXPECT_EQ(ST.Entries[1].TargetStp, 2u);
  EXPECT_EQ(ST.Entries[1].ValCount, 1u);
}

TEST(Validator, IfWithoutElseRequiresBalancedTypes) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.ifOp(BlockType::oneResult(ValType::I32)); // [] -> [i32] but no else.
  F.i32Const(1);
  F.end();
  expectInvalid(MB);
}

TEST(Validator, BrTableEntries) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.block();
  F.block();
  F.localGet(0);
  F.brTable({0, 1}, 1);
  F.end();
  F.end();
  auto M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  // Three entries: target 0, target 1, default(1).
  ASSERT_EQ(M->Funcs[0].Table.Entries.size(), 3u);
  const auto &E = M->Funcs[0].Table.Entries;
  EXPECT_LT(E[0].TargetIp, E[1].TargetIp);
  EXPECT_EQ(E[1].TargetIp, E[2].TargetIp);
}

TEST(Validator, BrTableInconsistentArity) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.block(BlockType::oneResult(ValType::I32));
  F.block();
  F.localGet(0);
  F.brTable({1}, 0); // Outer expects i32, inner expects nothing.
  F.end();
  F.i32Const(0);
  F.end();
  expectInvalid(MB);
}

TEST(Validator, UnreachableMakesStackPolymorphic) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.unreachable();
  F.op(Opcode::I32Add); // Pops two polymorphic values.
  auto M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
}

TEST(Validator, BranchDepthOutOfRange) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.block();
  F.br(5);
  F.end();
  expectInvalid(MB);
}

TEST(Validator, LocalIndexOutOfRange) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(3);
  F.drop();
  expectInvalid(MB);
}

TEST(Validator, GlobalSetImmutable) {
  ModuleBuilder MB;
  uint32_t G = MB.addGlobal(ValType::I32, false,
                            ModuleBuilder::constInit(ValType::I32, 1));
  uint32_t T = MB.addType({}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(2);
  F.globalSet(G);
  expectInvalid(MB);
}

TEST(Validator, MemoryOpsRequireMemory) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(0);
  F.load(Opcode::I32Load, 0, 2);
  expectInvalid(MB);
}

TEST(Validator, AlignmentTooLarge) {
  ModuleBuilder MB;
  MB.addMemory(1);
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(0);
  F.load(Opcode::I32Load, 0, 3); // 2**3 = 8 > 4.
  expectInvalid(MB);
}

TEST(Validator, MultiValueBlock) {
  ModuleBuilder MB;
  uint32_t Pair = MB.addType({}, {ValType::I32, ValType::I32});
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.block(BlockType::funcType(Pair));
  F.i32Const(3);
  F.i32Const(4);
  F.end();
  F.op(Opcode::I32Add);
  auto M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Funcs[0].MaxStack, 2u);
}

TEST(Validator, MultiValueBlockParams) {
  ModuleBuilder MB;
  uint32_t BT = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(10);
  F.i32Const(20);
  F.block(BlockType::funcType(BT));
  F.op(Opcode::I32Add);
  F.end();
  auto M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
}

TEST(Validator, SelectRequiresMatchingTypes) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(1);
  F.f64Const(2.0);
  F.localGet(0);
  F.select();
  F.drop();
  expectInvalid(MB);
}

TEST(Validator, CallTypeChecking) {
  ModuleBuilder MB;
  uint32_t Callee = MB.addType({ValType::I64}, {ValType::I64});
  uint32_t T = MB.addType({}, {});
  FuncBuilder &C = MB.addFunc(Callee);
  C.localGet(0);
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(1); // Wrong: callee wants i64.
  F.call(MB.funcIndex(C));
  F.drop();
  expectInvalid(MB);
}

TEST(Validator, CallIndirectRequiresTable) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(0);
  F.callIndirect(T);
  expectInvalid(MB);
}

TEST(Validator, ElseWithoutIf) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.block();
  F.elseOp();
  F.end();
  expectInvalid(MB);
}

TEST(Validator, NestedControlDeep) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {});
  FuncBuilder &F = MB.addFunc(T);
  const int Depth = 64;
  for (int I = 0; I < Depth; ++I)
    F.block();
  F.localGet(0);
  F.brIf(Depth - 1);
  for (int I = 0; I < Depth; ++I)
    F.end();
  auto M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  ASSERT_EQ(M->Funcs[0].Table.Entries.size(), 1u);
  // Branch to the outermost block lands just inside the last `end` run.
  EXPECT_EQ(M->Funcs[0].Table.Entries[0].TargetIp, M->Funcs[0].BodyEnd - 1);
}

TEST(Validator, StartFunctionSignature) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.op(Opcode::Nop);
  MB.setStart(MB.funcIndex(F));
  expectInvalid(MB);
}

} // namespace
