//===- tests/test_cache.cpp - compile-cache test battery --------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The content-addressed compile cache (src/cache/): key correctness (same
// bytes under a different configuration or a different signature context
// must miss; codegen-irrelevant module differences must still share
// bodies), artifact identity (a hit returns the same immutable MCode with
// the same LineTable), probe isolation (fusion-suppressed or instrumented
// bodies are never inserted under — or served from — an unprobed key),
// capacity eviction, the 8-thread concurrent-load stress (one compile per
// key no matter how many engines race; a TSan gate in the test_service
// style), and the batch-runner guarantee that a manifest of identical
// jobs performs each body's compilation exactly once.
//
//===----------------------------------------------------------------------===//

#include "cache/compilecache.h"

#include "engine/engine.h"
#include "engine/registry.h"
#include "instr/probe.h"
#include "service/batch.h"
#include "suites/suites.h"
#include "testutil.h"

#include <thread>

using namespace wisp;

namespace {

/// f0: calls f1 and drops the result ("call 1; drop; i32.const 7").
/// \p CalleeTy picks f1's result type — the body bytes of f0 are identical
/// for every choice (drop accepts any type), the *signature context* is
/// not. f1's body is sized so f0's BodyStart never moves (f0 is the first
/// code entry; type encodings are all one byte).
std::vector<uint8_t> callerModule(ValType CalleeTy) {
  ModuleBuilder MB;
  uint32_t T0 = MB.addType({}, {ValType::I32});
  uint32_t T1 = MB.addType({}, {CalleeTy});
  FuncBuilder &F0 = MB.addFunc(T0);
  F0.op(Opcode::Call);
  F0.u32(1);
  F0.op(Opcode::Drop);
  F0.i32Const(7);
  FuncBuilder &F1 = MB.addFunc(T1);
  switch (CalleeTy) {
  case ValType::I32:
    F1.i32Const(1);
    break;
  case ValType::I64:
    F1.i64Const(1);
    break;
  default:
    F1.f32Const(1.0f);
    break;
  }
  MB.exportFunc("run", 0);
  return MB.build();
}

/// add(a, b) with a fusable get/get/add pair and a memory + one data byte
/// (the data section follows the code section, so flipping the byte
/// changes the module bytes without moving any body).
std::vector<uint8_t> addModule(uint8_t DataByte) {
  ModuleBuilder MB;
  uint32_t Ty = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(Ty);
  F.localGet(0);
  F.localGet(1);
  F.op(Opcode::I32Add);
  MB.addMemory(1);
  MB.addData(0, {DataByte});
  MB.exportFunc("add", 0);
  return MB.build();
}

std::unique_ptr<LoadedModule> loadOn(Engine &E,
                                     const std::vector<uint8_t> &Bytes) {
  WasmError Err;
  std::unique_ptr<LoadedModule> LM = E.load(Bytes, &Err);
  EXPECT_NE(LM, nullptr) << Err.Message;
  return LM;
}

Value invokeOne(Engine &E, LoadedModule &LM, const std::string &Name,
                const std::vector<Value> &Args) {
  std::vector<Value> Out;
  EXPECT_EQ(E.invoke(LM, Name, Args, &Out), TrapReason::None);
  EXPECT_EQ(Out.size(), 1u);
  return Out.empty() ? Value{} : Out[0];
}

EngineConfig cachedConfig(const char *Name) {
  EngineConfig Cfg = configByName(Name);
  Cfg.UseCompileCache = true;
  return Cfg;
}

class CountingProbe : public Probe {
public:
  uint64_t Count = 0;
  void fire(FrameAccessor &) override { ++Count; }
};

// --- Key correctness ------------------------------------------------------

TEST(CacheKeys, RepeatedLoadHitsEverything) {
  CompileCache Cache;
  std::vector<uint8_t> Bytes = callerModule(ValType::I32);

  Engine E1(cachedConfig("wizard-spc"), &Cache);
  auto LM1 = loadOn(E1, Bytes);
  ASSERT_TRUE(LM1);
  // Cold: module + two bodies + the instance image, all misses.
  EXPECT_EQ(LM1->Stats.CacheMisses, 4u);
  EXPECT_EQ(LM1->Stats.CacheHits, 0u);

  Engine E2(cachedConfig("wizard-spc"), &Cache);
  auto LM2 = loadOn(E2, Bytes);
  ASSERT_TRUE(LM2);
  EXPECT_EQ(LM2->Stats.CacheMisses, 0u);
  EXPECT_EQ(LM2->Stats.CacheHits, 4u);
  EXPECT_GT(LM2->Stats.CacheSavedNs, 0u);
  // The shared artifacts are the *same objects*.
  EXPECT_EQ(LM2->M.get(), LM1->M.get());
  EXPECT_EQ(LM2->Inst->func(0)->Code, LM1->Inst->func(0)->Code);

  EXPECT_EQ(invokeOne(E1, *LM1, "run", {}).asI32(), 7);
  EXPECT_EQ(invokeOne(E2, *LM2, "run", {}).asI32(), 7);
}

TEST(CacheKeys, SameBytesDifferentConfigMisses) {
  CompileCache Cache;
  std::vector<uint8_t> Bytes = callerModule(ValType::I32);

  Engine E1(cachedConfig("wizard-spc"), &Cache);
  auto LM1 = loadOn(E1, Bytes);
  ASSERT_TRUE(LM1);

  // Same bytes, different compiler options (wasmer-base: no MR/ISEL/KF,
  // no tags): the module artifact is configuration-independent and hits,
  // every compiled body must miss.
  Engine E2(cachedConfig("wasmer-base"), &Cache);
  auto LM2 = loadOn(E2, Bytes);
  ASSERT_TRUE(LM2);
  EXPECT_EQ(LM2->Stats.CacheHits, 2u);   // Module + instance image.
  EXPECT_EQ(LM2->Stats.CacheMisses, 2u); // Both bodies recompiled.
  EXPECT_NE(LM2->Inst->func(0)->Code, LM1->Inst->func(0)->Code);

  // Different pipeline altogether (two-pass): misses again.
  Engine E3(cachedConfig("wazero"), &Cache);
  auto LM3 = loadOn(E3, Bytes);
  ASSERT_TRUE(LM3);
  EXPECT_EQ(LM3->Stats.CacheHits, 2u);
  EXPECT_EQ(LM3->Stats.CacheMisses, 2u);

  EXPECT_EQ(invokeOne(E2, *LM2, "run", {}).asI32(), 7);
  EXPECT_EQ(invokeOne(E3, *LM3, "run", {}).asI32(), 7);
}

TEST(CacheKeys, SameBodyBytesDifferentSignatureContextMisses) {
  // f0's body bytes (and BodyStart) are identical in both modules; only
  // the *callee's* signature differs (()->i64 vs ()->f32, both 1-byte
  // type encodings so nothing shifts). Serving A's compiled f0 to B
  // would call an f32-returning function through an i64 signature — the
  // aliasing the context digest exists to prevent.
  std::vector<uint8_t> A = callerModule(ValType::I64);
  std::vector<uint8_t> B = callerModule(ValType::F32);
  {
    // Preconditions: f0's body is byte-identical and at the same offset.
    std::unique_ptr<Module> MA = buildAndValidate(A);
    std::unique_ptr<Module> MB = buildAndValidate(B);
    ASSERT_TRUE(MA && MB);
    ASSERT_EQ(MA->Funcs[0].BodyStart, MB->Funcs[0].BodyStart);
    ASSERT_EQ(MA->Funcs[0].BodyEnd, MB->Funcs[0].BodyEnd);
    ASSERT_TRUE(std::equal(A.begin() + MA->Funcs[0].BodyStart,
                           A.begin() + MA->Funcs[0].BodyEnd,
                           B.begin() + MB->Funcs[0].BodyStart));
    ASSERT_NE(moduleContextDigest(*MA), moduleContextDigest(*MB));
  }

  CompileCache Cache;
  Engine E1(cachedConfig("wizard-spc"), &Cache);
  auto LM1 = loadOn(E1, A);
  ASSERT_TRUE(LM1);

  Engine E2(cachedConfig("wizard-spc"), &Cache);
  auto LM2 = loadOn(E2, B);
  ASSERT_TRUE(LM2);
  EXPECT_EQ(LM2->Stats.CacheHits, 0u);   // Nothing may alias.
  EXPECT_EQ(LM2->Stats.CacheMisses, 4u); // Module + image + both bodies.
  EXPECT_NE(LM2->Inst->func(0)->Code, LM1->Inst->func(0)->Code);

  EXPECT_EQ(invokeOne(E1, *LM1, "run", {}).asI32(), 7);
  EXPECT_EQ(invokeOne(E2, *LM2, "run", {}).asI32(), 7);
}

TEST(CacheKeys, CodegenIrrelevantModuleDifferenceSharesBodies) {
  // The two modules differ only in one data-segment byte (the data
  // section follows the code section): the module artifact misses, every
  // compiled body hits — cross-module body sharing.
  CompileCache Cache;
  Engine E1(cachedConfig("wizard-spc"), &Cache);
  auto LM1 = loadOn(E1, addModule(0xAA));
  ASSERT_TRUE(LM1);

  Engine E2(cachedConfig("wizard-spc"), &Cache);
  auto LM2 = loadOn(E2, addModule(0xBB));
  ASSERT_TRUE(LM2);
  EXPECT_EQ(LM2->Stats.CacheMisses, 2u); // Module bytes differ (so does
                                         // the image: keyed on bytes).
  EXPECT_EQ(LM2->Stats.CacheHits, 1u);   // The body is shared.
  EXPECT_EQ(LM2->Inst->func(0)->Code, LM1->Inst->func(0)->Code);
  // ...while the instances keep their own memory (data segments applied
  // per instance, not cached).
  EXPECT_EQ(LM1->Inst->Memory.data()[0], 0xAA);
  EXPECT_EQ(LM2->Inst->Memory.data()[0], 0xBB);

  Value A = invokeOne(E1, *LM1, "add",
                      {Value::makeI32(40), Value::makeI32(2)});
  Value B = invokeOne(E2, *LM2, "add",
                      {Value::makeI32(40), Value::makeI32(2)});
  EXPECT_EQ(A.asI32(), 42);
  EXPECT_EQ(B.asI32(), 42);
}

// --- Artifact identity ----------------------------------------------------

TEST(CacheReuse, HitReturnsByteIdenticalCodeAndLineTable) {
  CompileCache Cache;
  std::vector<uint8_t> Bytes = callerModule(ValType::I32);

  // Reference compile with the cache disabled.
  EngineConfig Cold = configByName("wizard-spc");
  Cold.UseCompileCache = false;
  Engine ECold(Cold);
  auto LMCold = loadOn(ECold, Bytes);
  ASSERT_TRUE(LMCold);

  Engine E1(cachedConfig("wizard-spc"), &Cache);
  auto LM1 = loadOn(E1, Bytes);
  Engine E2(cachedConfig("wizard-spc"), &Cache);
  auto LM2 = loadOn(E2, Bytes);
  ASSERT_TRUE(LM1 && LM2);

  const MCode *Hit = LM2->Inst->func(0)->Code;
  const MCode *Ref = LMCold->Inst->func(0)->Code;
  ASSERT_NE(Hit, nullptr);
  ASSERT_NE(Ref, nullptr);
  // The hit is the first load's object...
  EXPECT_EQ(Hit, LM1->Inst->func(0)->Code);
  // ...and byte-identical to an uncached compile: same instructions,
  EXPECT_NE(Hit, Ref);
  ASSERT_EQ(Hit->Insts.size(), Ref->Insts.size());
  for (size_t I = 0; I < Hit->Insts.size(); ++I) {
    EXPECT_EQ(Hit->Insts[I].Op, Ref->Insts[I].Op) << "inst " << I;
    EXPECT_EQ(Hit->Insts[I].A, Ref->Insts[I].A) << "inst " << I;
    EXPECT_EQ(Hit->Insts[I].B, Ref->Insts[I].B) << "inst " << I;
    EXPECT_EQ(Hit->Insts[I].C, Ref->Insts[I].C) << "inst " << I;
    EXPECT_EQ(Hit->Insts[I].D, Ref->Insts[I].D) << "inst " << I;
    EXPECT_EQ(Hit->Insts[I].Imm, Ref->Insts[I].Imm) << "inst " << I;
    EXPECT_EQ(Hit->Insts[I].Imm2, Ref->Insts[I].Imm2) << "inst " << I;
  }
  // ...the same line table (trap-site PCs cannot drift on a hit),
  ASSERT_EQ(Hit->LineTable.size(), Ref->LineTable.size());
  for (size_t I = 0; I < Hit->LineTable.size(); ++I) {
    EXPECT_EQ(Hit->LineTable[I].Pc, Ref->LineTable[I].Pc);
    EXPECT_EQ(Hit->LineTable[I].Ip, Ref->LineTable[I].Ip);
  }
  // ...and the same frame shape.
  EXPECT_EQ(Hit->FrameSlots, Ref->FrameSlots);
  EXPECT_EQ(Hit->FuncIndex, Ref->FuncIndex);
}

// --- Probe isolation ------------------------------------------------------

TEST(CacheReuse, ProbeNeverServedFromOrInsertedUnderUnprobedEntry) {
  CompileCache Cache;
  std::vector<uint8_t> Bytes = addModule(0x00);

  // Threaded tier: the add body pre-decodes to one fused get/get/add.
  Engine E1(cachedConfig("interp-threaded"), &Cache);
  auto LM1 = loadOn(E1, Bytes);
  ASSERT_TRUE(LM1);
  const ThreadedCode *Fused = LM1->Inst->func(0)->TCode;
  ASSERT_NE(Fused, nullptr);
  EXPECT_EQ(Fused->NumFused, 1u);

  Engine E2(cachedConfig("interp-threaded"), &Cache);
  auto LM2 = loadOn(E2, Bytes);
  ASSERT_TRUE(LM2);
  EXPECT_EQ(LM2->Inst->func(0)->TCode, Fused); // Warm load shares the IR.

  // Probe the interior local.get (mid-pair): E2 must re-predecode with
  // fusion suppressed, privately — the cache keeps the fused artifact and
  // gains no new entries.
  size_t EntriesBefore = Cache.totals().Entries;
  uint32_t InteriorIp = LM2->Inst->func(0)->Decl->BodyStart + 2;
  CountingProbe P;
  E2.addProbe(*LM2, 0, InteriorIp, &P);
  const ThreadedCode *Probed = LM2->Inst->func(0)->TCode;
  ASSERT_NE(Probed, nullptr);
  EXPECT_NE(Probed, Fused);
  EXPECT_EQ(Probed->NumFused, 0u); // Fusion suppressed at the probe.
  EXPECT_EQ(Cache.totals().Entries, EntriesBefore);

  // The probe fires; the unprobed engine is untouched.
  EXPECT_EQ(
      invokeOne(E2, *LM2, "add", {Value::makeI32(40), Value::makeI32(2)})
          .asI32(),
      42);
  EXPECT_EQ(P.Count, 1u);
  EXPECT_EQ(LM1->Inst->func(0)->TCode, Fused);

  // A fresh engine still gets the *fused* artifact, never the probed one.
  Engine E3(cachedConfig("interp-threaded"), &Cache);
  auto LM3 = loadOn(E3, Bytes);
  ASSERT_TRUE(LM3);
  EXPECT_EQ(LM3->Inst->func(0)->TCode, Fused);
  EXPECT_EQ(LM3->Stats.CacheMisses, 0u);

  // Same discipline on the JIT tier: an instrumented recompile (counter
  // cells are engine-local addresses!) must bypass the cache entirely.
  Engine E4(cachedConfig("wizard-spc"), &Cache);
  auto LM4 = loadOn(E4, Bytes);
  ASSERT_TRUE(LM4);
  const MCode *Unprobed = LM4->Inst->func(0)->Code;
  size_t JitEntriesBefore = Cache.totals().Entries;
  CountingProbe JP;
  E4.addProbe(*LM4, 0, InteriorIp, &JP);
  EXPECT_NE(LM4->Inst->func(0)->Code, Unprobed);
  EXPECT_EQ(Cache.totals().Entries, JitEntriesBefore);
  EXPECT_EQ(
      invokeOne(E4, *LM4, "add", {Value::makeI32(40), Value::makeI32(2)})
          .asI32(),
      42);
  EXPECT_EQ(JP.Count, 1u);

  Engine E5(cachedConfig("wizard-spc"), &Cache);
  auto LM5 = loadOn(E5, Bytes);
  ASSERT_TRUE(LM5);
  EXPECT_EQ(LM5->Inst->func(0)->Code, Unprobed);
}

// --- Toggle, saved time, eviction ----------------------------------------

TEST(CacheReuse, ToggleOffNeverTouchesTheCache) {
  CompileCache Cache;
  EngineConfig Cfg = configByName("wizard-spc");
  Cfg.UseCompileCache = false;
  Engine E(Cfg, &Cache);
  EXPECT_EQ(E.cache(), nullptr);
  auto LM = loadOn(E, callerModule(ValType::I32));
  ASSERT_TRUE(LM);
  EXPECT_EQ(LM->Stats.CacheHits, 0u);
  EXPECT_EQ(LM->Stats.CacheMisses, 0u);
  CompileCache::Totals T = Cache.totals();
  EXPECT_EQ(T.Hits + T.Misses, 0u);
  EXPECT_EQ(T.Entries, 0u);
}

TEST(CacheReuse, FailedBuildsAreNotCachedAndCountNothing) {
  // A module that fails to decode: the failure is never cached (every
  // attempt retries and reproduces the diagnostic) and counts neither a
  // hit nor a miss, keeping the hit/miss split scheduling-independent.
  std::vector<uint8_t> Garbage = {0x00, 0x61, 0x73, 0x6D, 0xFF, 0xFF};
  CompileCache Cache;
  for (int I = 0; I < 2; ++I) {
    Engine E(cachedConfig("wizard-spc"), &Cache);
    WasmError Err;
    EXPECT_EQ(E.load(Garbage, &Err), nullptr);
    EXPECT_FALSE(Err.Message.empty());
  }
  CompileCache::Totals T = Cache.totals();
  EXPECT_EQ(T.Hits, 0u);
  EXPECT_EQ(T.Misses, 0u);
  EXPECT_EQ(T.Entries, 0u);
}

TEST(CacheReuse, CapacityEvictionKeepsServingCorrectArtifacts) {
  // A capacity too small for even one artifact: every insert is evicted
  // right back out; loads keep working (and keep missing).
  CompileCache Cache(/*CapacityBytes=*/64);
  std::vector<uint8_t> Bytes = callerModule(ValType::I32);
  Engine E1(cachedConfig("wizard-spc"), &Cache);
  auto LM1 = loadOn(E1, Bytes);
  Engine E2(cachedConfig("wizard-spc"), &Cache);
  auto LM2 = loadOn(E2, Bytes);
  ASSERT_TRUE(LM1 && LM2);
  CompileCache::Totals T = Cache.totals();
  EXPECT_GT(T.Evictions, 0u);
  EXPECT_LE(T.Bytes, 64u);
  EXPECT_EQ(LM2->Stats.CacheHits, 0u); // Everything was evicted.
  // Evicted-but-handed-out artifacts stay alive through the shared_ptr.
  EXPECT_EQ(invokeOne(E1, *LM1, "run", {}).asI32(), 7);
  EXPECT_EQ(invokeOne(E2, *LM2, "run", {}).asI32(), 7);
}

// --- Concurrency (the TSan gate) ------------------------------------------

// Eight threads load the same module through one shared cache: the
// in-flight coordination must compile the module and each body exactly
// once, every thread must observe the same artifacts, and every result
// must agree. Meaningful under ThreadSanitizer (the CI tsan leg runs it).
TEST(CacheConcurrency, EightThreadsOneCompile) {
  std::vector<uint8_t> Bytes;
  for (const LineItem &I : ostrichSuite(1))
    if (I.Name == "crc")
      Bytes = I.Bytes;
  ASSERT_FALSE(Bytes.empty());

  CompileCache Cache;
  constexpr int N = 8;
  std::vector<uint64_t> Results(N);
  std::vector<const MCode *> Codes(N);
  std::vector<std::thread> Threads;
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      Engine E(cachedConfig("wizard-spc"), &Cache);
      WasmError Err;
      std::unique_ptr<LoadedModule> LM = E.load(Bytes, &Err);
      ASSERT_NE(LM, nullptr) << Err.Message;
      Codes[I] = LM->Inst->func(0)->Code;
      std::vector<Value> Out;
      ASSERT_EQ(E.invoke(*LM, "run", {}, &Out), TrapReason::None);
      ASSERT_EQ(Out.size(), 1u);
      Results[I] = Out[0].Bits;
    });
  for (std::thread &T : Threads)
    T.join();

  for (int I = 1; I < N; ++I) {
    EXPECT_EQ(Results[I], Results[0]) << "thread " << I;
    EXPECT_EQ(Codes[I], Codes[0]) << "thread " << I;
  }
  // crc is a single-function module: one module artifact + one body +
  // one instance image, each built exactly once; the other 7 threads hit
  // (possibly waiting on the in-flight build).
  CompileCache::Totals T = Cache.totals();
  EXPECT_EQ(T.Misses, 3u);
  EXPECT_EQ(T.Hits, uint64_t(3 * (N - 1)));
}

// --- The batch-runner guarantee -------------------------------------------

// A manifest of identical-config jobs performs each body's compilation
// exactly once — the acceptance assertion of the compile-cache issue,
// checked via the deterministic aggregate CacheHits/CacheMisses.
TEST(CacheBatch, IdenticalJobsCompileEachBodyExactlyOnce) {
  std::string Manifest;
  for (int I = 0; I < 8; ++I)
    Manifest += "ostrich/crc tier=spc\n";
  std::vector<BatchJob> Jobs;
  std::string Err;
  ASSERT_TRUE(parseBatchManifest(Manifest, &Jobs, &Err)) << Err;
  ASSERT_TRUE(resolveBatchModules(&Jobs, &Err)) << Err;

  BatchOptions Opts;
  Opts.Workers = 4;
  BatchReport R = runBatch(Jobs, Opts);
  ASSERT_EQ(R.Results.size(), 8u);
  for (const BatchJobResult &Job : R.Results)
    EXPECT_TRUE(Job.Ok) << Job.Error;
  // crc: one module artifact + one body + one instance image. 8 jobs ->
  // 3 misses, 21 hits, independent of worker count and scheduling.
  EXPECT_TRUE(R.CacheEnabled);
  EXPECT_EQ(R.CacheMisses, 3u);
  EXPECT_EQ(R.CacheHits, 21u);

  // Cache off: same results, no cache traffic.
  BatchOptions Off;
  Off.Workers = 4;
  Off.CompileCache = false;
  BatchReport RO = runBatch(Jobs, Off);
  EXPECT_FALSE(RO.CacheEnabled);
  EXPECT_EQ(RO.CacheMisses + RO.CacheHits, 0u);
  ASSERT_EQ(RO.Results.size(), R.Results.size());
  for (size_t I = 0; I < R.Results.size(); ++I) {
    ASSERT_EQ(RO.Results[I].Results.size(), R.Results[I].Results.size());
    for (size_t V = 0; V < R.Results[I].Results.size(); ++V)
      EXPECT_EQ(RO.Results[I].Results[V].Bits, R.Results[I].Results[V].Bits);
    EXPECT_EQ(RO.Results[I].ModeledCycles, R.Results[I].ModeledCycles);
  }
}

// A mixed manifest: the module artifact is shared across configurations,
// compiled bodies are not (per-config keys).
TEST(CacheBatch, MixedConfigsShareTheModuleNotTheCode) {
  std::string Manifest;
  for (int I = 0; I < 4; ++I)
    Manifest += "ostrich/crc tier=spc\nostrich/crc tier=threaded\n";
  std::vector<BatchJob> Jobs;
  std::string Err;
  ASSERT_TRUE(parseBatchManifest(Manifest, &Jobs, &Err)) << Err;
  ASSERT_TRUE(resolveBatchModules(&Jobs, &Err)) << Err;

  BatchOptions Opts;
  Opts.Workers = 4;
  BatchReport R = runBatch(Jobs, Opts);
  for (const BatchJobResult &Job : R.Results)
    EXPECT_TRUE(Job.Ok) << Job.Error;
  // 1 module + 1 instance image (bytes-keyed, so configuration-shared)
  // + 1 spc body + 1 threaded-IR body = 4 misses; the other 16 module/
  // image lookups - 2, 4 spc - 1 and 4 threaded - 1 all hit.
  EXPECT_EQ(R.CacheMisses, 4u);
  EXPECT_EQ(R.CacheHits, 20u);
  // Same item, same value on both tiers.
  EXPECT_EQ(R.Results[0].Results[0].Bits, R.Results[1].Results[0].Bits);
}

} // namespace
