//===- tests/test_instance.cpp - instantiation, images and pooling --------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
// Instantiation correctness: init-expr ordering rules, imported-global
// linking, the 65536-page architectural memory limit, segment edge cases,
// and the instance-image / instance-pool fast paths (which must be
// observably identical to plain instantiate()).
//
//===----------------------------------------------------------------------===//

#include "testutil.h"

#include "cache/compilecache.h"
#include "engine/engine.h"
#include "instr/monitors.h"

#include <gtest/gtest.h>

using namespace wisp;

namespace {

// --- Init-expr ordering (spec: constant expressions may only reference
// --- already-defined, immutable globals) -------------------------------

TEST(InitExpr, ForwardGlobalGetRejectedAtDecode) {
  // Global 0's initializer names global 1, which is defined later: the
  // spec's "only earlier globals" rule. Before the fix this decoded fine
  // and evalInit read 0 from the not-yet-initialized slot.
  ModuleBuilder MB;
  InitExpr Fwd;
  Fwd.K = InitExpr::GlobalGet;
  Fwd.Index = 1;
  MB.addGlobal(ValType::I32, false, Fwd);
  MB.addGlobal(ValType::I32, false, ModuleBuilder::constInit(ValType::I32, 7));
  expectDecodeError(MB.build());
}

TEST(InitExpr, SelfGlobalGetRejectedAtDecode) {
  ModuleBuilder MB;
  InitExpr SelfRef;
  SelfRef.K = InitExpr::GlobalGet;
  SelfRef.Index = 0;
  MB.addGlobal(ValType::I32, false, SelfRef);
  expectDecodeError(MB.build());
}

TEST(InitExpr, MutableGlobalGetRejectedAtDecode) {
  // Referencing an *earlier* global is fine, but only if it is immutable.
  ModuleBuilder MB;
  MB.addGlobal(ValType::I32, true, ModuleBuilder::constInit(ValType::I32, 7));
  InitExpr Ref;
  Ref.K = InitExpr::GlobalGet;
  Ref.Index = 0;
  MB.addGlobal(ValType::I32, false, Ref);
  expectDecodeError(MB.build());
}

TEST(InitExpr, ValidatorAlsoRejectsForwardReference) {
  // Defense in depth: a Module that somehow bypassed the decoder's check
  // (hand-built here) is still rejected by the validator, whose boundary
  // for global I's initializer is exactly I.
  Module M;
  GlobalDecl G;
  G.Type = ValType::I32;
  G.Init.K = InitExpr::GlobalGet;
  G.Init.Index = 0; // Self-reference: index not below the boundary (0).
  M.Globals.push_back(G);
  WasmError Err;
  EXPECT_FALSE(validateModule(M, &Err));
}

TEST(InitExpr, ChainedBackwardReferencesEvaluateInOrder) {
  // g0 = 7, g1 = g0, g2 = g1: evaluation must walk the definition order so
  // every read sees an already-initialized slot.
  ModuleBuilder MB;
  MB.addGlobal(ValType::I32, false, ModuleBuilder::constInit(ValType::I32, 7));
  InitExpr Ref0;
  Ref0.K = InitExpr::GlobalGet;
  Ref0.Index = 0;
  MB.addGlobal(ValType::I32, false, Ref0);
  InitExpr Ref1;
  Ref1.K = InitExpr::GlobalGet;
  Ref1.Index = 1;
  MB.addGlobal(ValType::I32, true, Ref1);
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  WasmError Err;
  HostRegistry Hosts;
  auto Inst = instantiate(*M, Hosts, nullptr, &Err);
  ASSERT_NE(Inst, nullptr) << Err.Message;
  ASSERT_EQ(Inst->Globals.size(), 3u);
  EXPECT_EQ(Inst->Globals[0].Bits, 7u);
  EXPECT_EQ(Inst->Globals[1].Bits, 7u);
  EXPECT_EQ(Inst->Globals[2].Bits, 7u);
}

// --- Imported globals (spec: unresolved imports are link errors) --------

TEST(ImportedGlobal, UnresolvedImportIsLinkError) {
  // Before the fix an unresolved imported global silently read as 0.
  ModuleBuilder MB;
  MB.importGlobal("env", "answer", ValType::I32, false);
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  WasmError Err;
  HostRegistry Empty;
  EXPECT_EQ(instantiate(*M, Empty, nullptr, &Err), nullptr);
  EXPECT_NE(Err.Message.find("env.answer"), std::string::npos) << Err.Message;
}

TEST(ImportedGlobal, BindsHostValueAndFeedsLaterInitializers) {
  ModuleBuilder MB;
  uint32_t G0 = MB.importGlobal("env", "answer", ValType::I32, false);
  InitExpr Ref;
  Ref.K = InitExpr::GlobalGet;
  Ref.Index = G0;
  MB.addGlobal(ValType::I32, false, Ref);
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  HostRegistry Hosts;
  Hosts.addGlobal("env", "answer", ValType::I32, 42);
  WasmError Err;
  auto Inst = instantiate(*M, Hosts, nullptr, &Err);
  ASSERT_NE(Inst, nullptr) << Err.Message;
  EXPECT_EQ(Inst->Globals[0].Bits, 42u);
  EXPECT_EQ(Inst->Globals[1].Bits, 42u);
}

TEST(ImportedGlobal, TypeMismatchIsLinkError) {
  ModuleBuilder MB;
  MB.importGlobal("env", "answer", ValType::I32, false);
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  HostRegistry Hosts;
  Hosts.addGlobal("env", "answer", ValType::I64, 42);
  WasmError Err;
  EXPECT_EQ(instantiate(*M, Hosts, nullptr, &Err), nullptr);
  EXPECT_NE(Err.Message.find("mismatch"), std::string::npos) << Err.Message;
}

TEST(ImportedGlobal, HostValueOffsetsDataSegment) {
  // A data segment whose offset is global.get of an imported global: the
  // bytes must land where the *host* says, not at 0.
  ModuleBuilder MB;
  uint32_t G0 = MB.importGlobal("env", "base", ValType::I32, false);
  MB.addMemory(1);
  InitExpr Off;
  Off.K = InitExpr::GlobalGet;
  Off.Index = G0;
  MB.addData(Off, {0xAA, 0xBB});
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  HostRegistry Hosts;
  Hosts.addGlobal("env", "base", ValType::I32, 100);
  WasmError Err;
  auto Inst = instantiate(*M, Hosts, nullptr, &Err);
  ASSERT_NE(Inst, nullptr) << Err.Message;
  EXPECT_EQ(Inst->Memory.data()[100], 0xAA);
  EXPECT_EQ(Inst->Memory.data()[101], 0xBB);
  EXPECT_EQ(Inst->Memory.data()[0], 0x00);
}

// --- Architectural memory limit (65536 pages) ---------------------------

TEST(MemoryLimits, MinimumAboveArchLimitRejectedAtDecode) {
  ModuleBuilder MB;
  MB.addMemory(MaxMemoryPages + 1);
  expectDecodeError(MB.build());
}

TEST(MemoryLimits, MaximumAboveArchLimitRejectedAtDecode) {
  ModuleBuilder MB;
  MB.addMemory(1, MaxMemoryPages + 1);
  expectDecodeError(MB.build());
}

TEST(MemoryLimits, ExactArchLimitAccepted) {
  ModuleBuilder MB;
  MB.addMemory(0, MaxMemoryPages);
  EXPECT_NE(buildAndValidate(MB), nullptr);
}

// A module exporting "grow": (delta i32) -> old page count or -1.
std::vector<uint8_t> growModule(uint32_t MinPages,
                                std::optional<uint32_t> MaxPages) {
  ModuleBuilder MB;
  MB.addMemory(MinPages, MaxPages);
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.memoryGrow();
  MB.exportFunc("grow", MB.funcIndex(F));
  return MB.build();
}

// memory.grow boundary behavior must agree across the interpreter, the
// threaded interpreter and the single-pass JIT.
TEST(MemoryLimits, GrowBoundariesAgreeAcrossTiers) {
  struct TierCfg {
    const char *Name;
    ExecMode Mode;
    bool Threaded;
  };
  const TierCfg Tiers[] = {{"int", ExecMode::Interp, false},
                           {"threaded", ExecMode::Interp, true},
                           {"spc", ExecMode::Jit, false}};
  for (const TierCfg &TC : Tiers) {
    EngineConfig Cfg;
    Cfg.Name = std::string("grow-") + TC.Name;
    Cfg.Mode = TC.Mode;
    Cfg.ThreadedDispatch = TC.Threaded;
    Engine E(Cfg);
    WasmError Err;
    auto LM = E.load(growModule(1, 3), &Err);
    ASSERT_NE(LM, nullptr) << TC.Name << ": " << Err.Message;
    std::vector<Value> Out;
    // Grow to exactly the declared max: ok, returns the old size.
    ASSERT_EQ(E.invoke(*LM, "grow", {Value::makeI32(2)}, &Out),
              TrapReason::None);
    EXPECT_EQ(Out[0], Value::makeI32(1)) << TC.Name;
    // Past the max: fails with -1, size unchanged.
    ASSERT_EQ(E.invoke(*LM, "grow", {Value::makeI32(1)}, &Out),
              TrapReason::None);
    EXPECT_EQ(Out[0], Value::makeI32(-1)) << TC.Name;
    // By zero at the max: ok, returns the current size.
    ASSERT_EQ(E.invoke(*LM, "grow", {Value::makeI32(0)}, &Out),
              TrapReason::None);
    EXPECT_EQ(Out[0], Value::makeI32(3)) << TC.Name;
  }
}

TEST(MemoryLimits, GrowWithoutDeclaredMaxCapsAtArchLimit) {
  EngineConfig Cfg;
  Cfg.Name = "grow-nomax";
  Cfg.Mode = ExecMode::Interp;
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(growModule(1, std::nullopt), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  std::vector<Value> Out;
  // 1 + 65536 pages would exceed the architectural limit; must fail
  // without allocating.
  ASSERT_EQ(E.invoke(*LM, "grow", {Value::makeI32(int32_t(MaxMemoryPages))},
                     &Out),
            TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(-1));
  ASSERT_EQ(E.invoke(*LM, "grow", {Value::makeI32(0)}, &Out),
            TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(1));
}

// --- Segment edge cases -------------------------------------------------

TEST(Segments, DataWithoutMemoryRejectedAtDecode) {
  ModuleBuilder MB;
  MB.addData(0, {1, 2, 3});
  expectDecodeError(MB.build());
}

TEST(Segments, ElemWithoutTableRejectedAtDecode) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {});
  MB.addFunc(T);
  MB.addElem(0, {0});
  expectDecodeError(MB.build());
}

TEST(Segments, ValidatorAlsoRejectsSegmentsWithoutTargets) {
  // Defense in depth behind the decoder: hand-built modules with a
  // segment but no memory/table fail validation too.
  {
    Module M;
    DataSegment D;
    M.Datas.push_back(D);
    WasmError Err;
    EXPECT_FALSE(validateModule(M, &Err));
  }
  {
    Module M;
    ElemSegment E;
    M.Elems.push_back(E);
    WasmError Err;
    EXPECT_FALSE(validateModule(M, &Err));
  }
}

TEST(Segments, ZeroLengthAtExactBoundaryInstantiates) {
  // Zero-length segments whose offset equals the memory/table size are
  // in bounds per spec (end == size).
  ModuleBuilder MB;
  MB.addMemory(1);
  MB.addTable(2);
  uint32_t T = MB.addType({}, {});
  MB.addFunc(T);
  MB.addData(WasmPageSize, {});
  MB.addElem(2, {});
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  WasmError Err;
  HostRegistry Hosts;
  EXPECT_NE(instantiate(*M, Hosts, nullptr, &Err), nullptr) << Err.Message;
}

TEST(Segments, ElemEndingAtExactTableBoundaryInstantiates) {
  ModuleBuilder MB;
  MB.addTable(2);
  uint32_t T = MB.addType({}, {});
  FuncBuilder &F = MB.addFunc(T);
  (void)F;
  MB.addElem(1, {0}); // Occupies [1, 2): last valid slot.
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  WasmError Err;
  HostRegistry Hosts;
  auto Inst = instantiate(*M, Hosts, nullptr, &Err);
  ASSERT_NE(Inst, nullptr) << Err.Message;
  EXPECT_EQ(Inst->Tables[0].Elems[0], 0u); // Null.
  EXPECT_EQ(Inst->Tables[0].Elems[1], 1u); // Func 0 (id = index + 1).
}

TEST(Segments, OutOfBoundsRejectedAtLinkOnBothPaths) {
  ModuleBuilder MB;
  MB.addMemory(1);
  MB.addData(WasmPageSize - 1, {1, 2}); // Ends one byte past the memory.
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  WasmError Err;
  HostRegistry Hosts;
  EXPECT_EQ(instantiate(*M, Hosts, nullptr, &Err), nullptr);
  // The image builder must refuse too (the engine then falls back to
  // instantiate(), which reports the same link error).
  EXPECT_EQ(buildInstanceImage(*M, nullptr), nullptr);
}

// --- Instance images ----------------------------------------------------

// A module exercising every imaged dimension: memory + data segments,
// table + element segment, chained globals.
ModuleBuilder imageRichModule() {
  ModuleBuilder MB;
  MB.addMemory(1, 4);
  MB.addTable(3);
  MB.addGlobal(ValType::I32, false, ModuleBuilder::constInit(ValType::I32, 7));
  InitExpr Ref;
  Ref.K = InitExpr::GlobalGet;
  Ref.Index = 0;
  MB.addGlobal(ValType::I64, true,
               ModuleBuilder::constInit(ValType::I64, 0x1122334455667788ull));
  MB.addGlobal(ValType::I32, true, Ref);
  uint32_t T = MB.addType({}, {});
  MB.addFunc(T);
  MB.addData(0, {'h', 'i'});
  MB.addData(200, {9, 8, 7});
  MB.addElem(1, {0, 0});
  return MB;
}

TEST(InstanceImage, MatchesPlainInstantiate) {
  std::unique_ptr<Module> M = buildAndValidate(imageRichModule());
  ASSERT_NE(M, nullptr);
  WasmError Err;
  auto Img = buildInstanceImage(*M, &Err);
  ASSERT_NE(Img, nullptr) << Err.Message;
  HostRegistry Hosts;
  auto Plain = instantiate(*M, Hosts, nullptr, &Err);
  ASSERT_NE(Plain, nullptr) << Err.Message;
  auto Fast = instantiateFromImage(*M, *Img, Hosts, nullptr, &Err);
  ASSERT_NE(Fast, nullptr) << Err.Message;
  ASSERT_EQ(Fast->Memory.byteSize(), Plain->Memory.byteSize());
  EXPECT_EQ(memcmp(Fast->Memory.data(), Plain->Memory.data(),
                   Plain->Memory.byteSize()),
            0);
  ASSERT_EQ(Fast->Globals.size(), Plain->Globals.size());
  for (size_t I = 0; I < Plain->Globals.size(); ++I) {
    EXPECT_EQ(Fast->Globals[I].Bits, Plain->Globals[I].Bits) << I;
    EXPECT_EQ(Fast->Globals[I].Type, Plain->Globals[I].Type) << I;
    EXPECT_EQ(Fast->Globals[I].Mutable, Plain->Globals[I].Mutable) << I;
  }
  ASSERT_EQ(Fast->Tables.size(), Plain->Tables.size());
  for (size_t I = 0; I < Plain->Tables.size(); ++I)
    EXPECT_EQ(Fast->Tables[I].Elems, Plain->Tables[I].Elems) << I;
  ASSERT_EQ(Fast->Funcs.size(), Plain->Funcs.size());
}

TEST(InstanceImage, ModulesImportingGlobalsAreNotImageable) {
  // Their initial state depends on the link environment, so the image
  // (shared across all instantiations) cannot represent it.
  ModuleBuilder MB;
  MB.importGlobal("env", "g", ValType::I32, false);
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(buildInstanceImage(*M, nullptr), nullptr);
}

TEST(InstanceImage, ReimageRestoresInitialState) {
  std::unique_ptr<Module> M = buildAndValidate(imageRichModule());
  ASSERT_NE(M, nullptr);
  WasmError Err;
  auto Img = buildInstanceImage(*M, &Err);
  ASSERT_NE(Img, nullptr) << Err.Message;
  HostRegistry Hosts;
  auto Inst = instantiateFromImage(*M, *Img, Hosts, nullptr, &Err);
  ASSERT_NE(Inst, nullptr) << Err.Message;
  // Dirty the instance the way execution would: stores (with the
  // noteWrite the store paths perform), global mutation, memory growth,
  // table mutation, and tier-state changes.
  memset(Inst->Memory.data(), 0xCC, 300);
  Inst->Memory.noteWrite(300);
  EXPECT_EQ(Inst->Memory.dirtyHi(), 300u);
  EXPECT_GE(Inst->Memory.grow(2), 0);
  Inst->Globals[1].Bits = 0xDEAD;
  Inst->Globals[2].Bits = 0xBEEF;
  Inst->Tables[0].Elems[0] = 1;
  Inst->Funcs[0].UseJit = true;
  Inst->Funcs[0].HotCount = 99;
  Inst->Funcs[0].DeoptRequested = true;
  auto Re = reimageInstance(std::move(Inst), *M, *Img, Hosts, nullptr, &Err);
  ASSERT_NE(Re, nullptr) << Err.Message;
  // Identical to a fresh instantiation in every observable.
  auto Fresh = instantiate(*M, Hosts, nullptr, &Err);
  ASSERT_NE(Fresh, nullptr) << Err.Message;
  ASSERT_EQ(Re->Memory.byteSize(), Fresh->Memory.byteSize());
  EXPECT_EQ(
      memcmp(Re->Memory.data(), Fresh->Memory.data(), Fresh->Memory.byteSize()),
      0);
  EXPECT_EQ(Re->Memory.dirtyHi(), 0u);
  for (size_t I = 0; I < Fresh->Globals.size(); ++I)
    EXPECT_EQ(Re->Globals[I].Bits, Fresh->Globals[I].Bits) << I;
  EXPECT_EQ(Re->Tables[0].Elems, Fresh->Tables[0].Elems);
  EXPECT_FALSE(Re->Funcs[0].UseJit);
  EXPECT_FALSE(Re->Funcs[0].DeoptRequested);
  EXPECT_EQ(Re->Funcs[0].HotCount, 0u);
  EXPECT_EQ(Re->Funcs[0].Code, nullptr);
}

TEST(InstanceImage, ReimageWritesBeyondDirtyMarkStillRepaired) {
  // A host that writes memory directly must call noteWrite; but growth
  // followed by stores into the grown region must also round-trip: the
  // grown pages are dropped entirely by the shrink.
  ModuleBuilder MB;
  MB.addMemory(1, 4);
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  WasmError Err;
  auto Img = buildInstanceImage(*M, &Err);
  ASSERT_NE(Img, nullptr) << Err.Message;
  HostRegistry Hosts;
  auto Inst = instantiateFromImage(*M, *Img, Hosts, nullptr, &Err);
  ASSERT_NE(Inst, nullptr) << Err.Message;
  ASSERT_GE(Inst->Memory.grow(1), 0);
  // Store only into the grown page (end offset past page 0).
  uint64_t Off = uint64_t(WasmPageSize) + 17;
  Inst->Memory.data()[Off] = 0x5A;
  Inst->Memory.noteWrite(Off + 1);
  auto Re = reimageInstance(std::move(Inst), *M, *Img, Hosts, nullptr, &Err);
  ASSERT_NE(Re, nullptr) << Err.Message;
  EXPECT_EQ(Re->Memory.pages(), 1u);
  for (size_t I = 0; I < Re->Memory.byteSize(); ++I)
    ASSERT_EQ(Re->Memory.data()[I], 0) << I;
}

TEST(InstanceImage, FailedReimageNeverEscapes) {
  // Re-binding imports against a registry that no longer provides them
  // must fail — and consume the instance rather than hand back a
  // half-reset one.
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {});
  MB.importFunc("env", "f", T);
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_NE(M, nullptr);
  WasmError Err;
  auto Img = buildInstanceImage(*M, &Err);
  ASSERT_NE(Img, nullptr) << Err.Message;
  HostRegistry Full;
  Full.add("env", "f", FuncType{},
           [](Instance &, const Value *, Value *) { return TrapReason::None; });
  auto Inst = instantiateFromImage(*M, *Img, Full, nullptr, &Err);
  ASSERT_NE(Inst, nullptr) << Err.Message;
  HostRegistry Empty;
  EXPECT_EQ(reimageInstance(std::move(Inst), *M, *Img, Empty, nullptr, &Err),
            nullptr);
  EXPECT_FALSE(Err.Message.empty());
}

// --- Engine-level pooling ----------------------------------------------

// A module whose export mutates everything restorable: bumps a global,
// stores to memory, and returns the (pre-bump) global value.
std::vector<uint8_t> statefulModule() {
  ModuleBuilder MB;
  MB.addMemory(1);
  MB.addGlobal(ValType::I32, true, ModuleBuilder::constInit(ValType::I32, 7));
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.globalGet(0);
  F.globalGet(0);
  F.i32Const(1);
  F.op(Opcode::I32Add);
  F.globalSet(0);
  F.i32Const(64);
  F.i32Const(0x11);
  F.store(Opcode::I32Store8, 0);
  MB.exportFunc("bump", MB.funcIndex(F));
  MB.addData(64, {0});
  return MB.build();
}

TEST(InstancePoolTest, RecycledLoadIsFreshAndCounted) {
  EngineConfig Cfg;
  Cfg.Name = "pool-test";
  Cfg.Mode = ExecMode::Interp;
  Cfg.UseCompileCache = true; // Same Module object across loads keys the pool.
  CompileCache Cache;
  Engine E(Cfg, &Cache);
  ASSERT_NE(E.pool(), nullptr);
  WasmError Err;
  auto LM1 = E.load(statefulModule(), &Err);
  ASSERT_NE(LM1, nullptr) << Err.Message;
  EXPECT_EQ(LM1->Stats.PoolHits, 0u);
  EXPECT_EQ(LM1->Stats.PoolMisses, 1u);
  std::vector<Value> Out;
  ASSERT_EQ(E.invoke(*LM1, "bump", {}, &Out), TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(7));
  EXPECT_TRUE(E.recycle(std::move(LM1)));
  EXPECT_EQ(E.pool()->size(), 1u);
  auto LM2 = E.load(statefulModule(), &Err);
  ASSERT_NE(LM2, nullptr) << Err.Message;
  EXPECT_EQ(LM2->Stats.PoolHits, 1u);
  EXPECT_EQ(LM2->Stats.PoolMisses, 0u);
  // The recycled instance must be indistinguishable from a fresh one:
  // the global bump and the store from the first life are gone.
  ASSERT_EQ(E.invoke(*LM2, "bump", {}, &Out), TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(7));
}

TEST(InstancePoolTest, DisabledConfigNeverPoolsOrImages) {
  EngineConfig Cfg;
  Cfg.Name = "pool-off";
  Cfg.Mode = ExecMode::Interp;
  Cfg.PoolInstances = false;
  Engine E(Cfg);
  EXPECT_EQ(E.pool(), nullptr);
  WasmError Err;
  auto LM = E.load(statefulModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  EXPECT_EQ(LM->Image, nullptr);
  EXPECT_EQ(LM->Stats.PoolHits, 0u);
  EXPECT_EQ(LM->Stats.PoolMisses, 0u);
  EXPECT_FALSE(E.recycle(std::move(LM)));
}

TEST(InstancePoolTest, SharedPoolRecyclesAcrossEngines) {
  // The batch runner's shape: one pool + one cache outlive a sequence of
  // short-lived engines; instances retired by one engine are re-imaged by
  // the next (imports re-bound — the retiring engine's registry is gone).
  CompileCache Cache;
  InstancePool Pool;
  EngineConfig Cfg;
  Cfg.Name = "pool-shared";
  Cfg.Mode = ExecMode::Interp;
  Cfg.UseCompileCache = true;
  WasmError Err;
  {
    Engine E1(Cfg, &Cache, &Pool);
    auto LM = E1.load(statefulModule(), &Err);
    ASSERT_NE(LM, nullptr) << Err.Message;
    std::vector<Value> Out;
    ASSERT_EQ(E1.invoke(*LM, "bump", {}, &Out), TrapReason::None);
    EXPECT_TRUE(E1.recycle(std::move(LM)));
  } // E1 (and its host registry) destroyed; the pooled instance survives.
  Engine E2(Cfg, &Cache, &Pool);
  auto LM = E2.load(statefulModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  EXPECT_EQ(LM->Stats.PoolHits, 1u);
  std::vector<Value> Out;
  ASSERT_EQ(E2.invoke(*LM, "bump", {}, &Out), TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(7));
  EXPECT_EQ(Pool.totals().Hits, 1u);
  EXPECT_EQ(Pool.totals().Returned, 1u);
}

TEST(InstancePoolTest, ProbedInstancesAreNotRecycled) {
  // Probe side state must not leak into an un-instrumented load.
  EngineConfig Cfg;
  Cfg.Name = "pool-probed";
  Cfg.Mode = ExecMode::Interp;
  Cfg.UseCompileCache = true;
  CompileCache Cache;
  Engine E(Cfg, &Cache);
  WasmError Err;
  auto LM = E.load(statefulModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  // Coverage probes attach at function entries, so any module gains at
  // least one probe site.
  CoverageMonitor Coverage;
  Coverage.attach(*LM->Inst, E.probes());
  E.reinstrument(*LM);
  EXPECT_FALSE(E.recycle(std::move(LM)));
  ASSERT_NE(E.pool(), nullptr);
  EXPECT_EQ(E.pool()->size(), 0u);
}

TEST(InstancePoolTest, PoolCapDropsExcessInstances) {
  CompileCache Cache;
  InstancePool Pool;
  EngineConfig Cfg;
  Cfg.Name = "pool-cap";
  Cfg.Mode = ExecMode::Interp;
  Cfg.UseCompileCache = true;
  WasmError Err;
  // Retire more instances of one module than the per-module cap.
  std::vector<std::unique_ptr<LoadedModule>> Live;
  Engine E(Cfg, &Cache, &Pool);
  for (size_t I = 0; I < InstancePool::MaxPerModule + 2; ++I) {
    auto LM = E.load(statefulModule(), &Err);
    ASSERT_NE(LM, nullptr) << Err.Message;
    Live.push_back(std::move(LM));
  }
  for (auto &LM : Live)
    E.recycle(std::move(LM));
  Live.clear();
  EXPECT_EQ(Pool.size(), InstancePool::MaxPerModule);
  EXPECT_EQ(Pool.totals().Dropped, 2u);
}

// --- Call-depth limits ---------------------------------------------------

// depth(n): if n == 0 return 0; return depth(n-1) + 1. Recursion depth is
// exactly n + 1 frames (including the exported frame).
std::vector<uint8_t> deepRecursionModule() {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.op(Opcode::I32Eqz);
  F.ifOp(BlockType::oneResult(ValType::I32));
  F.i32Const(0);
  F.elseOp();
  F.localGet(0);
  F.i32Const(1);
  F.op(Opcode::I32Sub);
  F.call(MB.funcIndex(F));
  F.i32Const(1);
  F.op(Opcode::I32Add);
  F.end();
  MB.exportFunc("depth", MB.funcIndex(F));
  return MB.build();
}

// even(n)/odd(n) by mutual recursion; even(n) alternates between the two
// bodies all the way down.
std::vector<uint8_t> mutualRecursionModule() {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &Even = MB.addFunc(T);
  FuncBuilder &Odd = MB.addFunc(T);
  Even.localGet(0);
  Even.op(Opcode::I32Eqz);
  Even.ifOp(BlockType::oneResult(ValType::I32));
  Even.i32Const(1);
  Even.elseOp();
  Even.localGet(0);
  Even.i32Const(1);
  Even.op(Opcode::I32Sub);
  Even.call(MB.funcIndex(Odd));
  Even.end();
  Odd.localGet(0);
  Odd.op(Opcode::I32Eqz);
  Odd.ifOp(BlockType::oneResult(ValType::I32));
  Odd.i32Const(0);
  Odd.elseOp();
  Odd.localGet(0);
  Odd.i32Const(1);
  Odd.op(Opcode::I32Sub);
  Odd.call(MB.funcIndex(Even));
  Odd.end();
  MB.exportFunc("even", MB.funcIndex(Even));
  return MB.build();
}

// The uniform call-depth limit: every tier traps StackOverflow once the
// configured frame budget is hit, and completes normally just under it.
TEST(CallDepth, UniformLimitAcrossTiers) {
  static const char *const Tiers[] = {"int",     "threaded", "spc",
                                      "copypatch", "twopass", "opt"};
  for (const char *Tier : Tiers) {
    EngineConfig Cfg;
    Cfg.Name = std::string("depth-") + Tier;
    Cfg.MaxCallDepth = 64;
    if (std::string(Tier) == "int") {
      Cfg.Mode = ExecMode::Interp;
    } else if (std::string(Tier) == "threaded") {
      Cfg.Mode = ExecMode::Interp;
      Cfg.ThreadedDispatch = true;
    } else {
      Cfg.Mode = ExecMode::Jit;
      Cfg.Opts.Tags = TagMode::None;
      Cfg.Compiler = std::string(Tier) == "spc" ? CompilerKind::SinglePass
                     : std::string(Tier) == "copypatch"
                         ? CompilerKind::CopyPatch
                     : std::string(Tier) == "twopass" ? CompilerKind::TwoPass
                                                      : CompilerKind::Optimizing;
    }
    Engine E(Cfg);
    WasmError Err;
    auto LM = E.load(deepRecursionModule(), &Err);
    ASSERT_NE(LM, nullptr) << Tier << ": " << Err.Message;
    std::vector<Value> Out;
    // 10 frames: well under the limit.
    ASSERT_EQ(E.invoke(*LM, "depth", {Value::makeI32(9)}, &Out),
              TrapReason::None)
        << Tier;
    EXPECT_EQ(Out[0], Value::makeI32(9)) << Tier;
    // 1000 frames: over the limit on every tier, and the engine survives.
    EXPECT_EQ(E.invoke(*LM, "depth", {Value::makeI32(999)}, &Out),
              TrapReason::StackOverflow)
        << Tier;
    ASSERT_EQ(E.invoke(*LM, "depth", {Value::makeI32(3)}, &Out),
              TrapReason::None)
        << Tier;
    EXPECT_EQ(Out[0], Value::makeI32(3)) << Tier;

    auto LM2 = E.load(mutualRecursionModule(), &Err);
    ASSERT_NE(LM2, nullptr) << Tier << ": " << Err.Message;
    ASSERT_EQ(E.invoke(*LM2, "even", {Value::makeI32(8)}, &Out),
              TrapReason::None)
        << Tier;
    EXPECT_EQ(Out[0], Value::makeI32(1)) << Tier;
    EXPECT_EQ(E.invoke(*LM2, "even", {Value::makeI32(999)}, &Out),
              TrapReason::StackOverflow)
        << Tier;
  }
}

} // namespace
