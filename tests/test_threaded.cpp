//===- tests/test_threaded.cpp - threaded-dispatch interpreter tests --------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Pre-decoder and threaded-tier coverage: switch/threaded agreement and the
// modeled-cycle win, superinstruction fusion and its boundaries, probes
// planted mid-fused-pair (fusion must be suppressed at probed offsets), the
// shared flat probe-cost constant, and tier-up from a threaded-interpreter
// backedge.
//
//===----------------------------------------------------------------------===//

#include "engine/engine.h"
#include "engine/registry.h"
#include "interp/predecode.h"
#include "suites/suites.h"
#include "wasm/builder.h"

#include <gtest/gtest.h>

using namespace wisp;

namespace {

std::unique_ptr<LoadedModule> loadOn(Engine &E, const ModuleBuilder &MB) {
  WasmError Err;
  std::unique_ptr<LoadedModule> LM = E.load(MB.build(), &Err);
  EXPECT_NE(LM, nullptr) << Err.Message << " @" << Err.Offset;
  return LM;
}

Value invokeOne(Engine &E, LoadedModule &LM, const std::vector<Value> &Args) {
  std::vector<Value> Out;
  TrapReason Tr = E.invoke(LM, "run", Args, &Out);
  EXPECT_EQ(Tr, TrapReason::None) << trapReasonName(Tr);
  EXPECT_EQ(Out.size(), 1u);
  return Out.empty() ? Value{} : Out[0];
}

/// run(n) = 1 + 2 + ... + n, shaped to exercise every fusion pattern:
/// the loop-control quad (local.get/local.get/i32.gt_s/br_if), the
/// get+get+add triple, the set+get pair and the get+const+add triple.
ModuleBuilder sumLoopModule() {
  ModuleBuilder MB;
  uint32_t Ty = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(Ty);
  uint32_t I = F.addLocal(ValType::I32);
  uint32_t Sum = F.addLocal(ValType::I32);
  F.i32Const(1);
  F.localSet(I);
  F.block();
  F.loop();
  F.localGet(I);   // ┐ loop-header quad: i > n -> exit. The loop backedge
  F.localGet(0);   // │ targets the quad's first constituent, which is a
  F.op(Opcode::I32GtS); // │ legal (and common) fused-unit entry.
  F.brIf(1);       // ┘
  F.localGet(Sum); // ┐
  F.localGet(I);   // │ get+get+add
  F.op(Opcode::I32Add); // ┘
  F.localSet(Sum); // ┐ set+get pair
  F.localGet(I);   // ┘
  F.i32Const(1);   // ┐ (the get above would also head a get+const+add, but
  F.op(Opcode::I32Add); // │ the set+get pair greedily claims it first)
  F.localSet(I);   // ┘
  F.localGet(0);   // ┐
  F.i32Const(3);   // │ get+const+binop
  F.op(Opcode::I32And); // ┘
  F.drop();
  F.br(0);
  F.end();
  F.end();
  F.localGet(Sum);
  MB.exportFunc("run", MB.funcIndex(F));
  return MB;
}

/// Counts probe firings and remembers the last ip observed.
class CountingProbe : public Probe {
public:
  uint64_t Count = 0;
  uint32_t LastIp = 0;
  void fire(FrameAccessor &A) override {
    ++Count;
    LastIp = A.ip();
  }
};

} // namespace

// The flat probe charge is a named constant shared by both interpreters
// (previously a magic `+= 10` in interpreter.cpp).
static_assert(Thread::ProbeDispatchSteps == 10,
              "probe dispatch charge drifted from the documented model");

TEST(Threaded, SumLoopAgreesWithSwitchAndFuses) {
  const int32_t N = 1000;
  Engine SwitchE(configByName("wizard-int"));
  Engine ThreadedE(configByName("interp-threaded"));
  ModuleBuilder MB = sumLoopModule();
  auto SwitchLM = loadOn(SwitchE, MB);
  auto ThreadedLM = loadOn(ThreadedE, MB);
  ASSERT_TRUE(SwitchLM && ThreadedLM);

  Value A = invokeOne(SwitchE, *SwitchLM, {Value::makeI32(N)});
  Value B = invokeOne(ThreadedE, *ThreadedLM, {Value::makeI32(N)});
  EXPECT_EQ(A.asI32(), N * (N + 1) / 2);
  EXPECT_EQ(A.asI32(), B.asI32());

  // All four fusion patterns must have been selected.
  const ThreadedCode *TC = ThreadedLM->Inst->func(0)->TCode;
  ASSERT_NE(TC, nullptr);
  EXPECT_GE(TC->NumFused, 4u);
  EXPECT_GT(ThreadedLM->Stats.IrBytes, 0u);

  // The switch tier never runs under the threaded config and vice versa.
  EXPECT_EQ(ThreadedE.thread().InterpSteps, 0u);
  EXPECT_EQ(SwitchE.thread().ThreadedSteps, 0u);
  EXPECT_GT(ThreadedE.thread().ThreadedSteps, 0u);

  // Modeled main-loop cost: fusion plus the cheaper per-step price must
  // clear the 25% bar by a wide margin on this loop-dominated shape.
  double SwitchCycles = double(SwitchE.thread().modeledCycles());
  double ThreadedCycles = double(ThreadedE.thread().modeledCycles());
  EXPECT_LT(ThreadedCycles, 0.75 * SwitchCycles);
}

TEST(Threaded, SuiteItemAgreesAcrossDispatchStrategies) {
  std::vector<LineItem> Items = ostrichSuite(1);
  ASSERT_FALSE(Items.empty());
  const LineItem &Item = Items[0];
  Engine SwitchE(configByName("wizard-int"));
  Engine ThreadedE(configByName("interp-threaded"));
  WasmError Err;
  auto SwitchLM = SwitchE.load(Item.Bytes, &Err);
  ASSERT_NE(SwitchLM, nullptr) << Err.Message;
  auto ThreadedLM = ThreadedE.load(Item.Bytes, &Err);
  ASSERT_NE(ThreadedLM, nullptr) << Err.Message;

  std::vector<Value> A, B;
  EXPECT_EQ(SwitchE.invoke(*SwitchLM, "run", {}, &A), TrapReason::None);
  EXPECT_EQ(ThreadedE.invoke(*ThreadedLM, "run", {}, &B), TrapReason::None);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].Bits, B[I].Bits);
  EXPECT_LT(double(ThreadedE.thread().modeledCycles()),
            0.75 * double(SwitchE.thread().modeledCycles()));
  // Pre-decode cost is accounted for the total-cost methodology.
  EXPECT_GT(ThreadedLM->Stats.IrBytes, 0u);
  EXPECT_GE(ThreadedLM->Stats.TotalSetupNs, ThreadedLM->Stats.PredecodeNs);
}

TEST(Threaded, AdjacencyBreaksFusion) {
  // get/nop/get/add: the structural no-op between the gets is elided from
  // the IR but still breaks fusion adjacency (mirroring the rule that an
  // interior constituent may not be a branch target or probed).
  ModuleBuilder MB;
  uint32_t Ty = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(Ty);
  F.localGet(0);
  F.op(Opcode::Nop);
  F.localGet(1);
  F.op(Opcode::I32Add);
  MB.exportFunc("run", MB.funcIndex(F));

  Engine E(configByName("interp-threaded"));
  auto LM = loadOn(E, MB);
  ASSERT_TRUE(LM);
  const ThreadedCode *TC = LM->Inst->func(0)->TCode;
  ASSERT_NE(TC, nullptr);
  EXPECT_EQ(TC->NumFused, 0u);
  // The nop produced no unit: get, get, add, return.
  EXPECT_EQ(TC->Units.size(), 4u);
  EXPECT_EQ(invokeOne(E, *LM, {Value::makeI32(33), Value::makeI32(9)}).asI32(),
            42);
}

TEST(Threaded, EmptyBodyRuns) {
  ModuleBuilder MB;
  uint32_t Ty = MB.addType({}, {});
  FuncBuilder &F = MB.addFunc(Ty);
  MB.exportFunc("run", MB.funcIndex(F));
  Engine E(configByName("interp-threaded"));
  auto LM = loadOn(E, MB);
  ASSERT_TRUE(LM);
  const ThreadedCode *TC = LM->Inst->func(0)->TCode;
  ASSERT_NE(TC, nullptr);
  ASSERT_EQ(TC->Units.size(), 1u); // Just the function-terminating return.
  std::vector<Value> Out;
  EXPECT_EQ(E.invoke(*LM, "run", {}, &Out), TrapReason::None);
  EXPECT_TRUE(Out.empty());
}

TEST(Threaded, ProbeMidPairSuppressesFusion) {
  // add(a, b) fuses into one get+get+add unit; planting a probe on the
  // *interior* local.get must re-predecode without the fusion so the probe
  // fires exactly as on the switch interpreter.
  ModuleBuilder MB;
  uint32_t Ty = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(Ty);
  F.localGet(0);
  F.localGet(1);
  F.op(Opcode::I32Add);
  MB.exportFunc("run", MB.funcIndex(F));

  Engine E(configByName("interp-threaded"));
  auto LM = loadOn(E, MB);
  ASSERT_TRUE(LM);
  FuncInstance *Func = LM->Inst->func(0);
  ASSERT_NE(Func->TCode, nullptr);
  EXPECT_EQ(Func->TCode->NumFused, 1u);
  EXPECT_EQ(Func->TCode->Units.size(), 2u); // Fused triple + return.

  // local.get 0 is 2 bytes; the interior local.get 1 sits at BodyStart+2.
  uint32_t InteriorIp = Func->Decl->BodyStart + 2;
  CountingProbe P;
  E.addProbe(*LM, 0, InteriorIp, &P);
  ASSERT_NE(Func->TCode, nullptr);
  EXPECT_EQ(Func->TCode->NumFused, 0u);
  EXPECT_EQ(Func->TCode->Units.size(), 4u);

  EXPECT_EQ(invokeOne(E, *LM, {Value::makeI32(40), Value::makeI32(2)}).asI32(),
            42);
  EXPECT_EQ(P.Count, 1u);
  EXPECT_EQ(P.LastIp, InteriorIp);

  // The switch interpreter observes the identical firing.
  Engine SwitchE(configByName("wizard-int"));
  auto SwitchLM = loadOn(SwitchE, MB);
  ASSERT_TRUE(SwitchLM);
  CountingProbe SP;
  SwitchE.addProbe(*SwitchLM, 0, InteriorIp, &SP);
  EXPECT_EQ(
      invokeOne(SwitchE, *SwitchLM, {Value::makeI32(40), Value::makeI32(2)})
          .asI32(),
      42);
  EXPECT_EQ(SP.Count, P.Count);
  EXPECT_EQ(SP.LastIp, P.LastIp);
}

TEST(Threaded, ProbeCostConstantSharedByBothInterpreters) {
  ModuleBuilder MB = sumLoopModule();
  const int32_t N = 50;
  // The probed ip: the loop-header local.get (fires once per iteration
  // plus the final exit check). Body prefix: i32.const 1 (2 bytes),
  // local.set 1 (2), block (2), loop (2) -> header at BodyStart + 8.
  auto headerIp = [](LoadedModule &LM) {
    return LM.Inst->func(0)->Decl->BodyStart + 8;
  };

  for (const char *Cfg : {"wizard-int", "interp-threaded"}) {
    Engine Plain(configByName(Cfg));
    auto PlainLM = loadOn(Plain, MB);
    ASSERT_TRUE(PlainLM);
    invokeOne(Plain, *PlainLM, {Value::makeI32(N)});
    uint64_t PlainInterpSteps = Plain.thread().InterpSteps;

    Engine Probed(configByName(Cfg));
    auto ProbedLM = loadOn(Probed, MB);
    ASSERT_TRUE(ProbedLM);
    CountingProbe P;
    Probed.addProbe(*ProbedLM, 0, headerIp(*ProbedLM), &P);
    invokeOne(Probed, *ProbedLM, {Value::makeI32(N)});
    EXPECT_EQ(P.Count, uint64_t(N) + 1) << Cfg;

    // Both interpreters charge exactly the shared flat constant per firing
    // to InterpSteps (the threaded tier's own dispatches land in
    // ThreadedSteps, so the delta is pure probe cost on either tier).
    EXPECT_EQ(Probed.thread().InterpSteps,
              PlainInterpSteps + P.Count * Thread::ProbeDispatchSteps)
        << Cfg;
  }
}

TEST(Threaded, TierUpFromThreadedBackedge) {
  EngineConfig Cfg = configByName("wizard-tiered-threaded");
  Cfg.TierUpThreshold = 8; // Tier up early in the loop.
  Engine E(Cfg);
  EXPECT_TRUE(E.thread().UseThreaded);
  ModuleBuilder MB = sumLoopModule();
  auto LM = loadOn(E, MB);
  ASSERT_TRUE(LM);
  // Deopt checkpoints exist in tiered mode, so fusion must be off (a deopt
  // may resume at any opcode boundary, including mid-pair).
  ASSERT_NE(LM->Inst->func(0)->TCode, nullptr);
  EXPECT_EQ(LM->Inst->func(0)->TCode->NumFused, 0u);

  const int32_t N = 1000;
  EXPECT_EQ(invokeOne(E, *LM, {Value::makeI32(N)}).asI32(), N * (N + 1) / 2);
  // The loop started threaded and finished in the JIT via OSR.
  EXPECT_GT(E.thread().ThreadedSteps, 0u);
  EXPECT_GT(E.thread().JitCycles, 0u);
  EXPECT_NE(LM->Inst->func(0)->Code, nullptr);

  // Tier back down: future calls must run on the threaded interpreter
  // again and still agree.
  E.requestTierDown(*LM, 0);
  uint64_t StepsBefore = E.thread().ThreadedSteps;
  EXPECT_EQ(invokeOne(E, *LM, {Value::makeI32(N)}).asI32(), N * (N + 1) / 2);
  EXPECT_GT(E.thread().ThreadedSteps, StepsBefore);
}

TEST(Threaded, BranchToFunctionLabelReturns) {
  // A branch to the function-level label must land ON the terminating
  // `end` (the return path) in both dispatch strategies — landing past it
  // walked the interpreter into adjacent module bytes (caught in review;
  // the fuzz generator only branches to inner blocks).
  ModuleBuilder MB;
  uint32_t Ty = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(Ty);
  F.localGet(0);
  F.localGet(0);
  F.brIf(0); // Function label: return local 0 when it is nonzero.
  F.drop();
  F.i32Const(-7);
  MB.exportFunc("run", MB.funcIndex(F));

  for (const char *Cfg : {"wizard-int", "interp-threaded"}) {
    Engine E(configByName(Cfg));
    auto LM = loadOn(E, MB);
    ASSERT_TRUE(LM);
    EXPECT_EQ(invokeOne(E, *LM, {Value::makeI32(42)}).asI32(), 42) << Cfg;
    EXPECT_EQ(invokeOne(E, *LM, {Value::makeI32(0)}).asI32(), -7) << Cfg;
  }

  // Unconditional function-level br with merge values.
  ModuleBuilder MB2;
  uint32_t Ty2 = MB2.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F2 = MB2.addFunc(Ty2);
  F2.localGet(0);
  F2.i32Const(1);
  F2.op(Opcode::I32Add);
  F2.br(0);
  MB2.exportFunc("run", MB2.funcIndex(F2));
  for (const char *Cfg : {"wizard-int", "interp-threaded"}) {
    Engine E(configByName(Cfg));
    auto LM = loadOn(E, MB2);
    ASSERT_TRUE(LM);
    EXPECT_EQ(invokeOne(E, *LM, {Value::makeI32(41)}).asI32(), 42) << Cfg;
  }
}

TEST(Threaded, BranchTargetOnElidedOpResolvesForward) {
  // br_if exiting a block targets the block's `end`, which the pre-decoder
  // elides; the branch must resolve to the next executed unit.
  ModuleBuilder MB;
  uint32_t Ty = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(Ty);
  F.block();
  F.localGet(0);
  F.brIf(0);
  F.i32Const(7);
  F.localSet(0);
  F.end();
  F.localGet(0);
  MB.exportFunc("run", MB.funcIndex(F));

  Engine E(configByName("interp-threaded"));
  auto LM = loadOn(E, MB);
  ASSERT_TRUE(LM);
  EXPECT_EQ(invokeOne(E, *LM, {Value::makeI32(42)}).asI32(), 42);
  EXPECT_EQ(invokeOne(E, *LM, {Value::makeI32(0)}).asI32(), 7);
}
