//===- tests/test_instr.cpp - instrumentation tests ------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "testutil.h"

#include "engine/engine.h"
#include "engine/registry.h"
#include "instr/monitors.h"

#include <gtest/gtest.h>

using namespace wisp;

namespace {

std::vector<uint8_t> branchyModule() {
  // Counts odd numbers in [1, n] with a conditional per iteration.
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  uint32_t Odd = F.addLocal(ValType::I32);
  F.block();
  F.localGet(0);
  F.op(Opcode::I32Eqz);
  F.brIf(0);
  F.loop();
  F.localGet(0);
  F.i32Const(1);
  F.op(Opcode::I32And);
  F.ifOp();
  F.localGet(Odd);
  F.i32Const(1);
  F.op(Opcode::I32Add);
  F.localSet(Odd);
  F.end();
  F.localGet(0);
  F.i32Const(1);
  F.op(Opcode::I32Sub);
  F.localTee(0);
  F.brIf(0);
  F.end();
  F.end();
  F.localGet(Odd);
  MB.exportFunc("run", MB.funcIndex(F));
  return MB.build();
}

struct MonitorRun {
  int32_t Result = 0;
  uint64_t Taken = 0, NotTaken = 0;
  size_t Sites = 0;
};

MonitorRun runWithBranchMonitor(const char *Tier, int32_t N) {
  EngineConfig Cfg = configByName(Tier);
  if (Cfg.Mode == ExecMode::Jit)
    Cfg.Mode = ExecMode::JitLazy; // Compile after the monitor attaches.
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(branchyModule(), &Err);
  EXPECT_NE(LM, nullptr) << Err.Message;
  BranchMonitor BM;
  BM.attach(*LM->Inst, E.probes());
  std::vector<Value> Out;
  EXPECT_EQ(E.invoke(*LM, "run", {Value::makeI32(N)}, &Out),
            TrapReason::None);
  MonitorRun R;
  R.Result = Out[0].asI32();
  R.Taken = BM.totalTaken();
  R.NotTaken = BM.totalNotTaken();
  R.Sites = BM.sites().size();
  return R;
}

TEST(Instr, BranchMonitorCountsMatchAcrossTiers) {
  MonitorRun Int = runWithBranchMonitor("wizard-int", 100);
  MonitorRun Jit = runWithBranchMonitor("wizard-spc", 100);
  EXPECT_EQ(Int.Result, 50);
  EXPECT_EQ(Jit.Result, 50);
  // Identical dynamic branch profile regardless of tier.
  EXPECT_EQ(Int.Taken, Jit.Taken);
  EXPECT_EQ(Int.NotTaken, Jit.NotTaken);
  EXPECT_EQ(Int.Sites, Jit.Sites);
  // 3 sites: entry-eqz br_if, the parity if, the backedge br_if.
  EXPECT_EQ(Int.Sites, 3u);
  // Parity if: 50 taken, 50 not. Backedge: 99 taken, 1 not. Entry: 1 not.
  EXPECT_EQ(Int.Taken, 50u + 99u);
  EXPECT_EQ(Int.NotTaken, 50u + 1u + 1u);
}

TEST(Instr, UnoptimizedJitProbesAgree) {
  EngineConfig Cfg = configByName("wizard-spc");
  Cfg.Mode = ExecMode::JitLazy;
  Cfg.Opts.OptimizeProbes = false; // Generic runtime-call probes.
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(branchyModule(), &Err);
  ASSERT_NE(LM, nullptr);
  BranchMonitor BM;
  BM.attach(*LM->Inst, E.probes());
  std::vector<Value> Out;
  ASSERT_EQ(E.invoke(*LM, "run", {Value::makeI32(40)}, &Out),
            TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(20));
  EXPECT_EQ(BM.totalTaken() + BM.totalNotTaken(), 20u + 20u + 40u + 1u);
}

TEST(Instr, OpcodeCounterIntrinsified) {
  EngineConfig Cfg = configByName("wizard-spc");
  Cfg.Mode = ExecMode::JitLazy;
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(branchyModule(), &Err);
  ASSERT_NE(LM, nullptr);
  OpcodeCountMonitor Subs;
  Subs.attach(*LM->Inst, E.probes(), Opcode::I32Sub);
  std::vector<Value> Out;
  ASSERT_EQ(E.invoke(*LM, "run", {Value::makeI32(25)}, &Out),
            TrapReason::None);
  EXPECT_EQ(Subs.total(), 25u); // One decrement per iteration.
  // The compiled code contains an inline counter increment, not a generic
  // probe call.
  bool SawCnt = false, SawFire = false;
  for (const auto &Code : LM->Codes)
    for (const MInst &I : Code->Insts) {
      SawCnt |= I.Op == MOp::CntInc;
      SawFire |= I.Op == MOp::ProbeFire;
    }
  EXPECT_TRUE(SawCnt);
  EXPECT_FALSE(SawFire);
}

TEST(Instr, TosProbeIntrinsified) {
  EngineConfig Cfg = configByName("wizard-spc");
  Cfg.Mode = ExecMode::JitLazy;
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(branchyModule(), &Err);
  ASSERT_NE(LM, nullptr);
  BranchMonitor BM;
  BM.attach(*LM->Inst, E.probes());
  std::vector<Value> Out;
  ASSERT_EQ(E.invoke(*LM, "run", {Value::makeI32(10)}, &Out),
            TrapReason::None);
  bool SawTos = false;
  for (const auto &Code : LM->Codes)
    for (const MInst &I : Code->Insts)
      SawTos |= I.Op == MOp::ProbeTosG;
  EXPECT_TRUE(SawTos);
}

TEST(Instr, CoverageMonitorSeesEntries) {
  EngineConfig Cfg = configByName("wizard-int");
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(branchyModule(), &Err);
  ASSERT_NE(LM, nullptr);
  CoverageMonitor Cov;
  Cov.attach(*LM->Inst, E.probes());
  std::vector<Value> Out;
  for (int I = 0; I < 3; ++I)
    E.invoke(*LM, "run", {Value::makeI32(4)}, &Out);
  EXPECT_EQ(Cov.functionsExecuted(), 1u);
  EXPECT_EQ(Cov.entries(0), 3u);
}

TEST(Instr, FrameAccessorReadsLocalsAndStack) {
  // A generic probe that snapshots the frame at a known instruction.
  class Inspector : public Probe {
  public:
    void fire(FrameAccessor &A) override {
      ++Fired;
      Locals = A.numLocals();
      if (A.stackHeight() > 0)
        LastTos = A.tos();
    }
    int Fired = 0;
    uint32_t Locals = 0;
    Value LastTos;
  };
  EngineConfig Cfg = configByName("wizard-int");
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(branchyModule(), &Err);
  ASSERT_NE(LM, nullptr);
  // Probe the backedge br_if: the condition (the decremented counter) is
  // on top of the stack when it fires.
  const FuncDecl &F = LM->M->Funcs[0];
  uint32_t BrIfIp = 0;
  forEachInstruction(*LM->M, F, [&](Opcode Op, uint32_t Ip) {
    if (Op == Opcode::BrIf)
      BrIfIp = Ip; // Keep the last one: the backedge.
  });
  Inspector P;
  E.addProbe(*LM, 0, BrIfIp, &P);
  std::vector<Value> Out;
  ASSERT_EQ(E.invoke(*LM, "run", {Value::makeI32(5)}, &Out),
            TrapReason::None);
  EXPECT_EQ(P.Fired, 5);
  EXPECT_EQ(P.Locals, 2u);
  EXPECT_EQ(P.LastTos, Value::makeI32(0)); // Final iteration's condition.
}

TEST(Instr, ProbeRemoveStopsFiring) {
  EngineConfig Cfg = configByName("wizard-int");
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(branchyModule(), &Err);
  ASSERT_NE(LM, nullptr);
  OpcodeCountMonitor Subs;
  Subs.attach(*LM->Inst, E.probes(), Opcode::I32Sub);
  std::vector<Value> Out;
  E.invoke(*LM, "run", {Value::makeI32(10)}, &Out);
  EXPECT_EQ(Subs.total(), 10u);
  // Remove all probes at every sub site and rerun: count unchanged.
  const FuncDecl &F = LM->M->Funcs[0];
  forEachInstruction(*LM->M, F, [&](Opcode Op, uint32_t Ip) {
    if (Op == Opcode::I32Sub)
      E.probes().removeAll(*LM->Inst, 0, Ip);
  });
  E.invoke(*LM, "run", {Value::makeI32(10)}, &Out);
  EXPECT_EQ(Subs.total(), 10u);
}

} // namespace
