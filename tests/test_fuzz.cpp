//===- tests/test_fuzz.cpp - fuzz subsystem tests --------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Covers the differential-fuzzing subsystem: generator validity and
// determinism, the six-tier differ, replay argument derivation, and the
// greedy shrinker (a planted divergence must survive minimization and the
// result must be at most 25% of the original module size).
//
//===----------------------------------------------------------------------===//

#include "fuzz/differ.h"
#include "fuzz/randwasm.h"
#include "fuzz/shrink.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace wisp;

namespace {

TEST(FuzzGen, ModulesDecodeAndValidate) {
  for (const char *Name : {"default", "control", "memory"}) {
    FuzzProfile P;
    ASSERT_TRUE(fuzzProfileByName(Name, &P));
    for (uint64_t Seed = 0; Seed < 25; ++Seed) {
      RandWasm Gen(Seed, P);
      FuzzModule M = Gen.build();
      std::vector<uint8_t> Bytes = M.toBytes();
      WasmError Err;
      std::unique_ptr<Module> Mod = decodeModule(Bytes, &Err);
      ASSERT_NE(Mod, nullptr)
          << Name << " seed " << Seed << ": " << Err.Message;
      ASSERT_TRUE(validateModule(*Mod, &Err))
          << Name << " seed " << Seed << ": " << Err.Message << " @"
          << Err.Offset;
      // The exported main must exist with the fixed fuzzing signature.
      const Export *E = Mod->findExport("f", ExternKind::Func);
      ASSERT_NE(E, nullptr);
      EXPECT_EQ(Mod->funcType(E->Index).Params.size(), 4u);
    }
  }
}

TEST(FuzzGen, DeterministicPerSeed) {
  for (uint64_t Seed : {0ull, 7ull, 123456789ull}) {
    FuzzModule A = RandWasm(Seed).build();
    FuzzModule B = RandWasm(Seed).build();
    EXPECT_EQ(A.toBytes(), B.toBytes()) << "seed " << Seed;
    EXPECT_EQ(A.listing(), B.listing()) << "seed " << Seed;
  }
  // Different seeds almost surely differ.
  EXPECT_NE(RandWasm(1).build().toBytes(), RandWasm(2).build().toBytes());
}

TEST(FuzzGen, UnknownProfileRejected) {
  FuzzProfile P;
  EXPECT_FALSE(fuzzProfileByName("bogus", &P));
  EXPECT_TRUE(fuzzProfileByName("memory", &P));
  EXPECT_STREQ(P.Name, "memory");
}

TEST(FuzzGen, ListingMentionsStructure) {
  FuzzModule M = RandWasm(3).build();
  std::string L = M.listing();
  EXPECT_NE(L.find("(module"), std::string::npos);
  EXPECT_NE(L.find("(export \"f\")"), std::string::npos);
  EXPECT_NE(L.find("(table"), std::string::npos);
  EXPECT_GT(M.nodeCount(), 0u);
}

TEST(FuzzGen, BakedArgsAddReproExport) {
  FuzzModule M = RandWasm(9).build();
  std::vector<Value> Args = argsForSeed(9, M.main().Params);
  std::vector<uint8_t> Bytes = M.toBytes(&Args);
  WasmError Err;
  std::unique_ptr<Module> Mod = decodeModule(Bytes, &Err);
  ASSERT_NE(Mod, nullptr) << Err.Message;
  ASSERT_TRUE(validateModule(*Mod, &Err)) << Err.Message;
  const Export *Repro = Mod->findExport("repro", ExternKind::Func);
  ASSERT_NE(Repro, nullptr);
  EXPECT_TRUE(Mod->funcType(Repro->Index).Params.empty());
  // The zero-arg wrapper must agree with calling main directly, on every
  // tier.
  DiffReport Direct = runAllTiers(Bytes, "f", Args);
  DiffReport Wrapped = runAllTiers(Bytes, "repro", {});
  ASSERT_FALSE(Direct.Diverged) << Direct.Detail;
  ASSERT_FALSE(Wrapped.Diverged) << Wrapped.Detail;
  ASSERT_EQ(Direct.Runs[0].Results.size(), Wrapped.Runs[0].Results.size());
  for (size_t I = 0; I < Direct.Runs[0].Results.size(); ++I)
    EXPECT_EQ(Direct.Runs[0].Results[I], Wrapped.Runs[0].Results[I]);
}

// --- Differ ---------------------------------------------------------------

TEST(FuzzDiffer, TiersAgreeOnSeededSweep) {
  // A compact in-process differential sweep; the 200-seed fuzz_smoke ctest
  // runs the same check through the wisp-fuzz binary.
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    FuzzProfile P;
    static const char *Rotation[] = {"default", "control", "memory", "exits"};
    ASSERT_TRUE(fuzzProfileByName(Rotation[Seed % 4], &P));
    FuzzModule M = RandWasm(Seed, P).build();
    DiffReport Report =
        runAllTiers(M.toBytes(), "f", argsForSeed(Seed, M.main().Params));
    EXPECT_FALSE(Report.Diverged)
        << "seed " << Seed << ": " << Report.Detail;
  }
}

TEST(FuzzDiffer, ReportsAllTiersAndMonitorConfigs) {
  FuzzModule M = RandWasm(11).build();
  DiffReport Report =
      runAllTiers(M.toBytes(), "f", argsForSeed(11, M.main().Params));
  // Eight execution tiers (incl. the tiered/OSR configurations) plus the
  // two compile-cache cold/warm configurations (spc+cache,
  // threaded+cache) plus the two persistent-cache disk-cold/disk-warm
  // configurations (spc+disk, threaded+disk) plus the two instance-pool
  // fresh/pooled configurations (spc+pool, threaded+pool) plus the two
  // instrumented interpreter configurations (int+mon, threaded+mon).
  ASSERT_EQ(differTierNames().size(), 8u);
  ASSERT_EQ(Report.Runs.size(), differTierNames().size() + 8);
  EXPECT_EQ(Report.Runs[0].Tier, "int");
  EXPECT_EQ(Report.Runs[6].Tier, "tiered");
  EXPECT_EQ(Report.Runs[7].Tier, "tiered-threaded");
  EXPECT_EQ(Report.Runs[8].Tier, "spc+cache");
  EXPECT_EQ(Report.Runs[9].Tier, "threaded+cache");
  // The cache runs are the warm pass of a cold/warm pair: they hit the
  // private cache (module + every body) and passed the self-comparison.
  EXPECT_GE(Report.Runs[8].CacheHits, 2u);
  EXPECT_GE(Report.Runs[9].CacheHits, 2u);
  EXPECT_TRUE(Report.Runs[8].SelfCheck.empty()) << Report.Runs[8].SelfCheck;
  EXPECT_TRUE(Report.Runs[9].SelfCheck.empty()) << Report.Runs[9].SelfCheck;
  // The disk runs are the warm pass of a disk-cold/disk-warm pair on a
  // fresh in-process cache: every compiled body (or pre-decoded IR body)
  // was served from the on-disk store through deserialize + re-verify.
  EXPECT_EQ(Report.Runs[10].Tier, "spc+disk");
  EXPECT_EQ(Report.Runs[11].Tier, "threaded+disk");
  EXPECT_GE(Report.Runs[10].DiskHits, 1u);
  EXPECT_GE(Report.Runs[11].DiskHits, 1u);
  EXPECT_TRUE(Report.Runs[10].SelfCheck.empty()) << Report.Runs[10].SelfCheck;
  EXPECT_TRUE(Report.Runs[11].SelfCheck.empty()) << Report.Runs[11].SelfCheck;
  // The pool runs are the pooled pass of a fresh/pooled pair: generator
  // modules are imageable (no imported globals) and leave no live heap
  // objects, so the fresh instance was recycled and the pooled load must
  // have re-imaged it.
  EXPECT_EQ(Report.Runs[12].Tier, "spc+pool");
  EXPECT_EQ(Report.Runs[13].Tier, "threaded+pool");
  EXPECT_GE(Report.Runs[12].PoolHits, 1u);
  EXPECT_GE(Report.Runs[13].PoolHits, 1u);
  EXPECT_TRUE(Report.Runs[12].SelfCheck.empty()) << Report.Runs[12].SelfCheck;
  EXPECT_TRUE(Report.Runs[13].SelfCheck.empty()) << Report.Runs[13].SelfCheck;
  EXPECT_EQ(Report.Runs[Report.Runs.size() - 2].Tier, "int+mon");
  EXPECT_EQ(Report.Runs.back().Tier, "threaded+mon");
  EXPECT_TRUE(Report.Runs.back().Instrumented);
  for (const TierRun &Run : Report.Runs)
    EXPECT_TRUE(Run.LoadOk) << Run.Tier << ": " << Run.LoadError;
}

TEST(FuzzDiffer, TrapSitesAgreeAcrossTiers) {
  // A module whose only trap is a div-by-zero at a known instruction: all
  // tiers must report the same trap at the same bytecode offset (the
  // single-pass JIT pipelines map machine pcs back through the MCode line
  // table; the optimizing tier is exempt and reports TrapPcKnown=false).
  ModuleBuilder MB;
  uint32_t TI = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(TI);
  F.localGet(0);
  F.i32Const(1);
  F.op(Opcode::I32Add); // Some work before the trap site.
  F.localGet(0);
  F.op(Opcode::I32DivU); // Traps when p0 == 0.
  MB.exportFunc("f", 0);
  DiffReport Report = runAllTiers(MB.build(), "f", {Value::makeI32(0)});
  EXPECT_FALSE(Report.Diverged) << Report.Detail;
  ASSERT_EQ(Report.Runs[0].Trap, TrapReason::DivByZero);
  ASSERT_TRUE(Report.Runs[0].TrapPcKnown);
  uint32_t RefIp = Report.Runs[0].TrapIp;
  EXPECT_GT(RefIp, 0u);
  for (const TierRun &Run : Report.Runs) {
    ASSERT_EQ(Run.Trap, TrapReason::DivByZero) << Run.Tier;
    if (Run.Tier == "opt") {
      EXPECT_FALSE(Run.TrapPcKnown);
      continue;
    }
    EXPECT_TRUE(Run.TrapPcKnown) << Run.Tier;
    EXPECT_EQ(Run.TrapIp, RefIp) << Run.Tier;
  }
}

TEST(FuzzDiffer, CompareDetectsEachMismatchKind) {
  TierRun Ref;
  Ref.Tier = "int";
  Ref.LoadOk = true;
  Ref.Results = {Value::makeI32(1)};
  Ref.Memory = {0, 0, 0, 0};
  Ref.GlobalBits = {7};

  TierRun Same = Ref;
  Same.Tier = "spc";
  EXPECT_EQ(compareTierRuns(Ref, Same), "");

  TierRun BadTrap = Same;
  BadTrap.Trap = TrapReason::DivByZero;
  EXPECT_NE(compareTierRuns(Ref, BadTrap).find("trap mismatch"),
            std::string::npos);

  TierRun BadResult = Same;
  BadResult.Results = {Value::makeI32(2)};
  EXPECT_NE(compareTierRuns(Ref, BadResult).find("result 0 mismatch"),
            std::string::npos);

  TierRun BadMemory = Same;
  BadMemory.Memory[2] = 9;
  EXPECT_NE(compareTierRuns(Ref, BadMemory).find("memory mismatch at 0x2"),
            std::string::npos);

  TierRun BadSize = Same;
  BadSize.Memory.resize(8, 0);
  EXPECT_NE(compareTierRuns(Ref, BadSize).find("memory size mismatch"),
            std::string::npos);

  TierRun BadGlobal = Same;
  BadGlobal.GlobalBits = {8};
  EXPECT_NE(compareTierRuns(Ref, BadGlobal).find("global 0 mismatch"),
            std::string::npos);

  TierRun BadLoad = Same;
  BadLoad.LoadOk = false;
  BadLoad.LoadError = "boom";
  EXPECT_NE(compareTierRuns(Ref, BadLoad).find("load"), std::string::npos);

  // Trap-site agreement: same trap kind at different bytecode offsets is a
  // divergence when both tiers know their trap pc...
  TierRun RefTrap = Ref;
  RefTrap.Trap = TrapReason::MemOutOfBounds;
  RefTrap.Results.clear();
  RefTrap.TrapIp = 0x40;
  RefTrap.TrapPcKnown = true;
  TierRun SiteTrap = RefTrap;
  SiteTrap.Tier = "spc";
  EXPECT_EQ(compareTierRuns(RefTrap, SiteTrap), "");
  SiteTrap.TrapIp = 0x48;
  EXPECT_NE(compareTierRuns(RefTrap, SiteTrap).find("trap-site mismatch"),
            std::string::npos);
  // ...but not when one side (the optimizing tier) cannot attribute it.
  SiteTrap.TrapPcKnown = false;
  EXPECT_EQ(compareTierRuns(RefTrap, SiteTrap), "");
}

TEST(FuzzDiffer, ReplayTuplesIncludeGcdPair) {
  // The corpus gcd reproducer needs its original failing inputs.
  auto Tuples = replayArgTuples({ValType::I32, ValType::I32});
  ASSERT_EQ(Tuples.size(), 4u);
  bool Found = false;
  for (const auto &Args : Tuples)
    Found = Found || (Args[0] == Value::makeI32(3528) &&
                      Args[1] == Value::makeI32(3780));
  EXPECT_TRUE(Found);
  // Deterministic across calls.
  auto Again = replayArgTuples({ValType::I32, ValType::I32});
  for (size_t I = 0; I < Tuples.size(); ++I)
    for (size_t J = 0; J < Tuples[I].size(); ++J)
      EXPECT_EQ(Tuples[I][J], Again[I][J]);
}

TEST(FuzzDiffer, ArgsForSeedDeterministicAndTyped) {
  std::vector<ValType> Params = {ValType::I32, ValType::I64, ValType::F32,
                                 ValType::F64};
  std::vector<Value> A = argsForSeed(42, Params);
  std::vector<Value> B = argsForSeed(42, Params);
  ASSERT_EQ(A.size(), Params.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Type, Params[I]);
    EXPECT_EQ(A[I], B[I]);
  }
}

// --- Shrinker -------------------------------------------------------------

/// True if the module still contains the planted marker statement
/// (global.set of MarkerBits into global MarkerIdx).
bool hasMarker(const std::vector<FuzzStmt> &Body, uint32_t MarkerIdx,
               uint64_t MarkerBits) {
  for (const FuzzStmt &S : Body) {
    if (S.K == FuzzStmt::GlobalSet && S.Index == MarkerIdx &&
        !S.E.empty() && S.E[0].K == FuzzExpr::Const &&
        S.E[0].Bits == MarkerBits)
      return true;
    for (const auto &Sub : S.Bodies)
      if (hasMarker(Sub, MarkerIdx, MarkerBits))
        return true;
  }
  return false;
}

TEST(FuzzShrink, PlantedDivergenceMinimizesToQuarterSize) {
  // A big module so there is plenty to strip.
  FuzzProfile P;
  ASSERT_TRUE(fuzzProfileByName("control", &P));
  P.MinStmts = 10;
  P.MaxStmts = 14;
  P.ExprDepth = 4;
  FuzzModule M = RandWasm(2024, P).build();

  // Plant the "divergence": a recognizable global.set the oracle tracks,
  // standing in for the construct that triggers a real miscompile.
  const uint64_t MarkerBits = 0x5EED;
  M.Globals.push_back({ValType::I32, 0});
  uint32_t MarkerIdx = uint32_t(M.Globals.size()) - 1;
  FuzzStmt Marker;
  Marker.K = FuzzStmt::GlobalSet;
  Marker.Index = MarkerIdx;
  Marker.E.push_back(FuzzExpr::constant(ValType::I32, MarkerBits));
  FuzzFunc &Main = M.Funcs.back();
  Main.Body.insert(Main.Body.begin() + Main.Body.size() / 2, Marker);

  FuzzOracle Oracle = [&](const FuzzModule &Cand) {
    return hasMarker(Cand.main().Body, MarkerIdx, MarkerBits);
  };
  ASSERT_TRUE(Oracle(M));
  size_t OrigBytes = M.toBytes().size();

  ShrinkStats Stats;
  FuzzModule Min = shrinkModule(M, Oracle, &Stats);

  // The minimized module still "diverges" ...
  EXPECT_TRUE(Oracle(Min));
  // ... still serializes to a valid module ...
  WasmError Err;
  std::unique_ptr<Module> Mod = decodeModule(Min.toBytes(), &Err);
  ASSERT_NE(Mod, nullptr) << Err.Message;
  EXPECT_TRUE(validateModule(*Mod, &Err)) << Err.Message;
  // ... and is at most 25% of the original size.
  size_t MinBytes = Min.toBytes().size();
  EXPECT_LE(MinBytes * 4, OrigBytes)
      << OrigBytes << " -> " << MinBytes << " bytes";
  EXPECT_LT(Stats.NodesAfter, Stats.NodesBefore);
  EXPECT_EQ(Stats.BytesAfter, MinBytes);
  EXPECT_GT(Stats.Accepted, 0u);
}

TEST(FuzzShrink, DropsUnusedHelpers) {
  FuzzModule M = RandWasm(5).build();
  size_t FuncsBefore = M.Funcs.size();
  ASSERT_GT(FuncsBefore, 1u);
  // Oracle only cares that the module still has an exported main.
  FuzzOracle Oracle = [](const FuzzModule &Cand) {
    return !Cand.Funcs.empty();
  };
  FuzzModule Min = shrinkModule(M, Oracle);
  // Everything except main should be strippable under this oracle.
  EXPECT_EQ(Min.Funcs.size(), 1u);
  WasmError Err;
  std::unique_ptr<Module> Mod = decodeModule(Min.toBytes(), &Err);
  ASSERT_NE(Mod, nullptr) << Err.Message;
  EXPECT_TRUE(validateModule(*Mod, &Err)) << Err.Message;
}

TEST(FuzzShrink, RespectsAttemptBudget) {
  FuzzModule M = RandWasm(6).build();
  FuzzOracle Oracle = [](const FuzzModule &) { return true; };
  ShrinkStats Stats;
  shrinkModule(M, Oracle, &Stats, /*MaxAttempts=*/5);
  EXPECT_LE(Stats.Attempts, 5u);
}

// --- Regressions: miscompiles found by this fuzzer ------------------------

/// Runs the exported "f" through all six tiers and expects agreement.
void expectTierAgreement(const std::vector<uint8_t> &Bytes,
                         const std::vector<Value> &Args) {
  DiffReport Report = runAllTiers(Bytes, "f", Args);
  EXPECT_FALSE(Report.Diverged) << Report.Detail;
}

// spc stale compare fusion: a compare consumed by a codeless local.set
// rebind must not fuse into a later branch at the same stack height.
TEST(FuzzRegression, StaleCompareFusionDoesNotHijackBranch) {
  ModuleBuilder MB;
  MB.addMemory(1, 4);
  uint32_t HT = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &H = MB.addFunc(HT);
  H.i32Const(1);
  H.memoryGrow();
  H.drop();
  H.i32Const(1);
  uint32_t MT = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(MT);
  uint32_t Scratch = F.addLocal(ValType::I32);
  F.i32Const(74171716);
  F.ifOp(BlockType::oneResult(ValType::I32));
  F.i32Const(1);
  F.elseOp();
  F.i32Const(1);
  F.end();
  F.localGet(Scratch);
  F.op(Opcode::I32GeS);
  F.localSet(1);
  F.localGet(Scratch);
  F.ifOp(BlockType::oneResult(ValType::I32));
  F.i32Const(5);
  F.elseOp();
  F.i32Const(1);
  F.call(0);
  F.end();
  F.memorySize();
  F.op(Opcode::I32Add);
  MB.exportFunc("f", MB.funcIndex(F));
  std::vector<uint8_t> Bytes = MB.build();
  expectTierAgreement(Bytes, {Value::makeI32(0), Value::makeI32(1)});
  // And pin the actual semantics: else arm runs the helper (1), which
  // grows memory to 2 pages -> 1 + 2 = 3.
  DiffReport Report =
      runAllTiers(Bytes, "f", {Value::makeI32(0), Value::makeI32(1)});
  ASSERT_FALSE(Report.Runs.empty());
  ASSERT_EQ(Report.Runs[0].Results.size(), 1u);
  EXPECT_EQ(Report.Runs[0].Results[0], Value::makeI32(3));
}

// NaN-bit determinism: arithmetic NaNs must canonicalize to the positive
// quiet NaN in every tier. Without canonicalization, `f64.add` with a NaN
// operand propagates whichever operand the host compiler evaluated first,
// and the interpreter and JIT executor disagreed on even the NaN sign.
TEST(FuzzRegression, ArithmeticNaNsAreCanonicalAcrossTiers) {
  ModuleBuilder MB;
  uint32_t MT = MB.addType({ValType::I32}, {ValType::F64});
  FuncBuilder &F = MB.addFunc(MT);
  // a = sqrt(-886)            (libm returns a *negative* NaN on x86)
  // b = max(sqrt(-886), 0)    (wasmMax yields the positive quiet NaN)
  // a + b                     (propagation order is compiler-dependent)
  F.f64Const(-886.0);
  F.op(Opcode::F64Sqrt);
  F.f64Const(-886.0);
  F.op(Opcode::F64Sqrt);
  F.f64Const(0.0);
  F.op(Opcode::F64Max);
  F.op(Opcode::F64Add);
  MB.exportFunc("f", MB.funcIndex(F));
  std::vector<uint8_t> Bytes = MB.build();
  expectTierAgreement(Bytes, {Value::makeI32(0)});
  DiffReport Report = runAllTiers(Bytes, "f", {Value::makeI32(0)});
  ASSERT_FALSE(Report.Runs.empty());
  ASSERT_EQ(Report.Runs[0].Results.size(), 1u);
  // Every tier must produce the canonical positive quiet NaN.
  EXPECT_EQ(Report.Runs[0].Results[0].Bits, 0x7ff8000000000000ull);
}

// spc select with constant-folded false condition and a memory-only b
// operand: the repushed result slot used to alias a's stale spill.
TEST(FuzzRegression, SelectFoldedCondKeepsMemoryOperand) {
  ModuleBuilder MB;
  uint32_t HT = MB.addType({ValType::I32}, {ValType::F64});
  FuncBuilder &H = MB.addFunc(HT);
  H.f64Const(-330.0625);
  uint32_t MT = MB.addType({ValType::I32}, {ValType::F64});
  FuncBuilder &F = MB.addFunc(MT);
  uint32_t Zero = F.addLocal(ValType::I32);
  F.f64Const(4.9406564584124654e-324);
  F.i32Const(1);
  F.call(0);
  F.localGet(Zero);
  F.select();
  MB.exportFunc("f", MB.funcIndex(F));
  std::vector<uint8_t> Bytes = MB.build();
  expectTierAgreement(Bytes, {Value::makeI32(0)});
  DiffReport Report = runAllTiers(Bytes, "f", {Value::makeI32(0)});
  ASSERT_FALSE(Report.Runs.empty());
  ASSERT_EQ(Report.Runs[0].Results.size(), 1u);
  EXPECT_EQ(Report.Runs[0].Results[0], Value::makeF64(-330.0625));
}

} // namespace
