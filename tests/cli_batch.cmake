# tests/cli_batch.cmake - ctest for wisp --batch.
#
# End-to-end batch mode: a >= 20-job manifest over the fig. 7 suites runs
# on 1 and 8 workers and must print byte-identical per-job report lines
# ('#'-prefixed summary lines carry wall times and are stripped first).
# Also covers the malformed-manifest diagnostics. Invoked as:
#   cmake -DWISP_BIN=<wisp> -DWISP_WORKDIR=<dir> -P cli_batch.cmake

if(NOT WISP_BIN)
  message(FATAL_ERROR "pass -DWISP_BIN=<path to the wisp binary>")
endif()
if(NOT WISP_WORKDIR)
  message(FATAL_ERROR "pass -DWISP_WORKDIR=<scratch directory>")
endif()

# --- A deterministic >= 20-job manifest over the fig. 7 suites ---
set(MANIFEST ${WISP_WORKDIR}/cli_batch_manifest.txt)
file(WRITE ${MANIFEST} "# cli_batch determinism manifest\n")
foreach(item
    polybench/2mm polybench/3mm polybench/atax polybench/bicg
    polybench/gemm polybench/mvt polybench/syrk
    libsodium/stream_chacha20 libsodium/stream_salsa20
    libsodium/onetimeauth_poly1305 libsodium/shorthash_siphash24
    libsodium/stream_xor_1k
    ostrich/crc ostrich/nqueens ostrich/fft)
  file(APPEND ${MANIFEST} "${item} tier=spc\n")
endforeach()
foreach(item ostrich/crc libsodium/stream_chacha20 polybench/atax)
  file(APPEND ${MANIFEST} "${item} tier=threaded\n")
  file(APPEND ${MANIFEST} "${item} config=wizard-tiered\n")
endforeach()
file(APPEND ${MANIFEST} "nop\n")

function(run_batch jobs outvar rawvar)
  execute_process(
    COMMAND ${WISP_BIN} --batch=${MANIFEST} --jobs=${jobs} ${ARGN}
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "--batch --jobs=${jobs} ${ARGN} failed (rc=${RC}):\n${OUT}${ERR}")
  endif()
  set(${rawvar} "${OUT}" PARENT_SCOPE)
  # Strip the '#'-prefixed summary lines (wall time, throughput, cache).
  string(REGEX REPLACE "(^|\n)#[^\n]*" "" OUT "${OUT}")
  set(${outvar} "${OUT}" PARENT_SCOPE)
endfunction()

run_batch(1 REPORT1 RAW1)
run_batch(8 REPORT8 RAW8)
if(NOT REPORT1 STREQUAL REPORT8)
  message(FATAL_ERROR
    "batch report differs between --jobs=1 and --jobs=8:\n--- jobs=1\n"
    "${REPORT1}\n--- jobs=8\n${REPORT8}")
endif()

# --- Compile cache: the default run reports nonzero hits (the manifest
# --- repeats suite items under identical configs), and disabling the
# --- cache must not change a single per-job byte.
if(NOT RAW8 MATCHES "# cache: [1-9][0-9]* hits")
  message(FATAL_ERROR "default batch summary reports no cache hits:\n${RAW8}")
endif()
run_batch(8 REPORT_NOCACHE RAW_NOCACHE --no-compile-cache)
if(NOT RAW_NOCACHE MATCHES "# cache: disabled")
  message(FATAL_ERROR
    "--no-compile-cache summary does not say disabled:\n${RAW_NOCACHE}")
endif()
if(NOT REPORT8 STREQUAL REPORT_NOCACHE)
  message(FATAL_ERROR
    "batch report differs between default and --no-compile-cache:\n"
    "--- default\n${REPORT8}\n--- no-compile-cache\n${REPORT_NOCACHE}")
endif()
string(REGEX MATCHALL "\\[[0-9]+\\]" JOBLINES "${REPORT1}")
list(LENGTH JOBLINES NJOBS)
if(NJOBS LESS 20)
  message(FATAL_ERROR "expected >= 20 job lines, got ${NJOBS}:\n${REPORT1}")
endif()
# Spot-check: the same item on two tiers computed the same value.
if(NOT REPORT1 MATCHES "\\[15\\] ostrich/crc interp-threaded run\\(\\) = ")
  message(FATAL_ERROR "missing threaded crc job line:\n${REPORT1}")
endif()

# --- Malformed manifests are diagnosed with line numbers ---
function(expect_batch_fail name manifest_text pattern)
  set(BAD ${WISP_WORKDIR}/cli_batch_bad.txt)
  file(WRITE ${BAD} "${manifest_text}")
  execute_process(
    COMMAND ${WISP_BIN} --batch=${BAD}
    OUTPUT_QUIET
    ERROR_VARIABLE ERR
    RESULT_VARIABLE RC)
  if(RC EQUAL 0)
    message(FATAL_ERROR "${name}: expected failure but exited 0")
  endif()
  if(NOT ERR MATCHES "${pattern}")
    message(FATAL_ERROR
      "${name}: diagnostic does not match '${pattern}':\n${ERR}")
  endif()
endfunction()

expect_batch_fail(bad-key "nop frobnicate=1\n" "unknown key")
expect_batch_fail(bad-tier-config "nop\nnop tier=int config=wizard-spc\n"
                  "line 2: tier= and config= are mutually exclusive")
expect_batch_fail(bad-scale "nop scale=0\n" "bad scale")
expect_batch_fail(bad-tier "nop tier=warp\n" "unknown tier")
expect_batch_fail(bad-config "nop config=nonesuch\n" "unknown config")
expect_batch_fail(bad-module "no/such-item\n" "cannot resolve module")
expect_batch_fail(empty-manifest "# nothing\n" "no jobs")

# Missing manifest file.
execute_process(
  COMMAND ${WISP_BIN} --batch=${WISP_WORKDIR}/no_such_manifest.txt
  OUTPUT_QUIET ERROR_VARIABLE ERR RESULT_VARIABLE RC)
if(RC EQUAL 0 OR NOT ERR MATCHES "cannot read manifest")
  message(FATAL_ERROR "missing manifest not diagnosed (rc=${RC}): ${ERR}")
endif()

message(STATUS "cli_batch: deterministic across worker counts (${NJOBS} jobs)")
