//===- tests/test_governance.cpp - fuel, deadlines, limits, faults ---------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution-governance tests: fuel metering halts every tier at the same
/// semantic point, wall-clock deadlines and cross-thread cancellation stop
/// runaway jobs, per-job resource limits are enforced uniformly, injected
/// allocation failures surface as errors (never aborts), and a trapped
/// engine/instance stays fully reusable afterwards.
///
//===----------------------------------------------------------------------===//

#include "testutil.h"

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace wisp;

namespace {

/// sum(n) = n + (n-1) + ... + 1, via a block+loop. One fuel unit per frame
/// push and per loop-header arrival, so sum(N) costs 2 + N units (frame,
/// loop entry, N-1 backedges... plus the entry arrival).
std::vector<uint8_t> loopSumModule() {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  uint32_t Sum = F.addLocal(ValType::I32);
  F.block();
  F.localGet(0);
  F.op(Opcode::I32Eqz);
  F.brIf(0);
  F.loop();
  F.localGet(Sum);
  F.localGet(0);
  F.op(Opcode::I32Add);
  F.localSet(Sum);
  F.localGet(0);
  F.i32Const(1);
  F.op(Opcode::I32Sub);
  F.localTee(0);
  F.brIf(0);
  F.end();
  F.end();
  F.localGet(Sum);
  MB.exportFunc("run", MB.funcIndex(F));
  return MB.build();
}

/// An infinite loop: only governance can stop it.
std::vector<uint8_t> spinModule() {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.loop();
  F.br(0);
  F.end();
  MB.exportFunc("spin", MB.funcIndex(F));
  return MB.build();
}

/// grow(n): memory.grow by n pages, returns the previous page count or -1.
std::vector<uint8_t> growModule(uint32_t MinPages = 1) {
  ModuleBuilder MB;
  MB.addMemory(MinPages);
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.memoryGrow();
  MB.exportFunc("grow", MB.funcIndex(F));
  return MB.build();
}

/// div(x) = 100 / x: traps DivByZero at x == 0, returns normally otherwise.
std::vector<uint8_t> divModule() {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(100);
  F.localGet(0);
  F.op(Opcode::I32DivS);
  MB.exportFunc("div", MB.funcIndex(F));
  return MB.build();
}

/// The tier matrix every governance guarantee is checked against.
const char *const GovTiers[] = {"int",     "threaded", "spc", "copypatch",
                                "twopass", "opt",      "tiered"};

EngineConfig govConfig(const std::string &Tier) {
  EngineConfig Cfg;
  Cfg.Name = "gov-" + Tier;
  Cfg.VerifyArtifacts = true;
  if (Tier == "int") {
    Cfg.Mode = ExecMode::Interp;
    return Cfg;
  }
  if (Tier == "threaded") {
    Cfg.Mode = ExecMode::Interp;
    Cfg.ThreadedDispatch = true;
    return Cfg;
  }
  if (Tier == "tiered") {
    Cfg.Mode = ExecMode::Tiered;
    Cfg.Compiler = CompilerKind::SinglePass;
    Cfg.TierUpThreshold = 4; // Cross tier boundaries mid-run.
    Cfg.Opts.EmitDeoptChecks = true;
    Cfg.Opts.EmitOsrEntries = true;
    return Cfg;
  }
  Cfg.Mode = ExecMode::Jit;
  Cfg.Opts.Tags = TagMode::None;
  if (Tier == "spc")
    Cfg.Compiler = CompilerKind::SinglePass;
  else if (Tier == "copypatch")
    Cfg.Compiler = CompilerKind::CopyPatch;
  else if (Tier == "twopass")
    Cfg.Compiler = CompilerKind::TwoPass;
  else
    Cfg.Compiler = CompilerKind::Optimizing;
  return Cfg;
}

} // namespace

// --- Fuel metering -------------------------------------------------------

TEST(Fuel, ExhaustionPcIdenticalAcrossTiers) {
  // Fuel units are semantic events (frame pushes + loop-header arrivals),
  // so the same budget must exhaust at the same bytecode pc on every tier
  // — including the optimizing pipeline, whose fuel sites carry explicit
  // bytecode offsets even though it records no general line table.
  for (uint64_t Budget : {1ull, 2ull, 5ull, 17ull}) {
    bool HaveRef = false;
    uint32_t RefIp = 0;
    for (const char *Tier : GovTiers) {
      EngineConfig Cfg = govConfig(Tier);
      Cfg.FuelBudget = Budget;
      Engine E(Cfg);
      WasmError Err;
      auto LM = E.load(loopSumModule(), &Err);
      ASSERT_NE(LM, nullptr) << Tier << ": " << Err.Message;
      std::vector<Value> Out;
      EXPECT_EQ(E.invoke(*LM, "run", {Value::makeI32(1000)}, &Out),
                TrapReason::FuelExhausted)
          << Tier << " budget " << Budget;
      if (!HaveRef) {
        HaveRef = true;
        RefIp = E.thread().TrapIp;
      } else {
        EXPECT_EQ(E.thread().TrapIp, RefIp) << Tier << " budget " << Budget;
      }
      EXPECT_TRUE(E.verifyError().empty()) << E.verifyError();
    }
  }
}

TEST(Fuel, SufficientBudgetCompletesAndRearmsPerInvocation) {
  for (const char *Tier : GovTiers) {
    EngineConfig Cfg = govConfig(Tier);
    Cfg.FuelBudget = 1000;
    Engine E(Cfg);
    WasmError Err;
    auto LM = E.load(loopSumModule(), &Err);
    ASSERT_NE(LM, nullptr) << Tier << ": " << Err.Message;
    // The budget is per-invocation: two runs that each fit must both
    // complete (no carry-over of spent fuel).
    for (int Round = 0; Round < 2; ++Round) {
      std::vector<Value> Out;
      ASSERT_EQ(E.invoke(*LM, "run", {Value::makeI32(100)}, &Out),
                TrapReason::None)
          << Tier << " round " << Round;
      EXPECT_EQ(Out[0], Value::makeI32(5050)) << Tier;
    }
  }
}

TEST(Fuel, ExhaustedEngineStaysUsable) {
  for (const char *Tier : GovTiers) {
    EngineConfig Cfg = govConfig(Tier);
    Cfg.FuelBudget = 5;
    Engine E(Cfg);
    WasmError Err;
    auto LM = E.load(loopSumModule(), &Err);
    ASSERT_NE(LM, nullptr) << Tier << ": " << Err.Message;
    std::vector<Value> Out;
    EXPECT_EQ(E.invoke(*LM, "run", {Value::makeI32(1000)}, &Out),
              TrapReason::FuelExhausted)
        << Tier;
    // A small job still fits in the re-armed budget.
    ASSERT_EQ(E.invoke(*LM, "run", {Value::makeI32(1)}, &Out),
              TrapReason::None)
        << Tier;
    EXPECT_EQ(Out[0], Value::makeI32(1)) << Tier;
  }
}

// --- Deadlines and cancellation ------------------------------------------

TEST(Deadline, StopsInfiniteLoopOnEveryTier) {
  for (const char *Tier : GovTiers) {
    EngineConfig Cfg = govConfig(Tier);
    Cfg.DeadlineMs = 25;
    Engine E(Cfg);
    WasmError Err;
    auto LM = E.load(spinModule(), &Err);
    ASSERT_NE(LM, nullptr) << Tier << ": " << Err.Message;
    auto T0 = std::chrono::steady_clock::now();
    std::vector<Value> Out;
    EXPECT_EQ(E.invoke(*LM, "spin", {}, &Out), TrapReason::DeadlineExceeded)
        << Tier;
    auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - T0)
                         .count();
    // Generous bound: the point is that it stopped near the deadline, not
    // minutes later (CI machines can stall arbitrarily, so stay loose).
    EXPECT_LT(ElapsedMs, 10000) << Tier;
  }
}

TEST(Deadline, FastJobUnaffectedAndStaleFireNeutralized) {
  EngineConfig Cfg = govConfig("threaded");
  Cfg.DeadlineMs = 30;
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(loopSumModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  std::vector<Value> Out;
  ASSERT_EQ(E.invoke(*LM, "run", {Value::makeI32(50)}, &Out), TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(1275));
  // Sleep past the (disarmed) deadline: a stale watchdog fire must not be
  // able to kill the next job.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_EQ(E.invoke(*LM, "run", {Value::makeI32(50)}, &Out), TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(1275));
}

TEST(Cancel, CrossThreadCancelStopsInfiniteLoop) {
  EngineConfig Cfg = govConfig("spc");
  Cfg.Interruptible = true;
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(spinModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  std::thread Killer([&E] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    E.cancel();
  });
  std::vector<Value> Out;
  EXPECT_EQ(E.invoke(*LM, "spin", {}, &Out), TrapReason::Cancelled);
  Killer.join();
  // And the engine runs the next job normally.
  auto LM2 = E.load(loopSumModule(), &Err);
  ASSERT_NE(LM2, nullptr) << Err.Message;
  ASSERT_EQ(E.invoke(*LM2, "run", {Value::makeI32(10)}, &Out),
            TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(55));
}

// --- Resource limits ------------------------------------------------------

TEST(Limits, MemoryMinimumAboveCapFailsLoad) {
  EngineConfig Cfg = govConfig("int");
  Cfg.MaxMemoryPages = 2;
  Engine E(Cfg);
  WasmError Err;
  EXPECT_EQ(E.load(growModule(/*MinPages=*/4), &Err), nullptr);
  EXPECT_NE(Err.Message.find("exceeds job limit"), std::string::npos)
      << Err.Message;
}

TEST(Limits, GrowBeyondCapReturnsMinusOne) {
  for (const char *Tier : {"int", "threaded", "spc"}) {
    EngineConfig Cfg = govConfig(Tier);
    Cfg.MaxMemoryPages = 2;
    Engine E(Cfg);
    WasmError Err;
    auto LM = E.load(growModule(/*MinPages=*/1), &Err);
    ASSERT_NE(LM, nullptr) << Tier << ": " << Err.Message;
    std::vector<Value> Out;
    // 1 -> 2 pages fits the cap...
    ASSERT_EQ(E.invoke(*LM, "grow", {Value::makeI32(1)}, &Out),
              TrapReason::None)
        << Tier;
    EXPECT_EQ(Out[0], Value::makeI32(1)) << Tier;
    // ...but 2 -> 3 exceeds it: -1, not a trap, exactly like hitting a
    // declared maximum.
    ASSERT_EQ(E.invoke(*LM, "grow", {Value::makeI32(1)}, &Out),
              TrapReason::None)
        << Tier;
    EXPECT_EQ(Out[0], Value::makeI32(-1)) << Tier;
  }
}

TEST(Limits, TableMinimumAboveCapFailsLoad) {
  ModuleBuilder MB;
  MB.addTable(8);
  uint32_t T = MB.addType({}, {});
  FuncBuilder &F = MB.addFunc(T);
  MB.exportFunc("f", MB.funcIndex(F));
  EngineConfig Cfg = govConfig("int");
  Cfg.MaxTableElems = 4;
  Engine E(Cfg);
  WasmError Err;
  EXPECT_EQ(E.load(MB.build(), &Err), nullptr);
  EXPECT_NE(Err.Message.find("exceeds job limit"), std::string::npos)
      << Err.Message;
}

// --- Injected allocation failures ----------------------------------------

TEST(Faults, InstantiationMapFailureIsLinkError) {
  EngineConfig Cfg = govConfig("int");
  Cfg.PoolInstances = false; // Take the legacy instantiate path.
  Engine E(Cfg);
  setMemoryFaultCountdown(0); // Next mapping request fails.
  WasmError Err;
  EXPECT_EQ(E.load(growModule(), &Err), nullptr);
  setMemoryFaultCountdown(-1);
  EXPECT_NE(Err.Message.find("allocation"), std::string::npos) << Err.Message;
  // The engine survives: the same load succeeds without the fault.
  auto LM = E.load(growModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
}

TEST(Faults, ImageInstantiationMapFailureIsLinkError) {
  EngineConfig Cfg = govConfig("int"); // Pooling on: image fast path.
  Engine E(Cfg);
  setMemoryFaultCountdown(0);
  WasmError Err;
  EXPECT_EQ(E.load(growModule(), &Err), nullptr);
  setMemoryFaultCountdown(-1);
  EXPECT_NE(Err.Message.find("failed"), std::string::npos) << Err.Message;
  auto LM = E.load(growModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
}

TEST(Faults, GrowMapFailureReturnsMinusOneNotAbort) {
  EngineConfig Cfg = govConfig("int");
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(growModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  std::vector<Value> Out;
  setMemoryFaultCountdown(0);
  ASSERT_EQ(E.invoke(*LM, "grow", {Value::makeI32(4)}, &Out),
            TrapReason::None);
  setMemoryFaultCountdown(-1);
  EXPECT_EQ(Out[0], Value::makeI32(-1));
  // Without the fault the same grow succeeds and memory is intact.
  ASSERT_EQ(E.invoke(*LM, "grow", {Value::makeI32(4)}, &Out),
            TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(1));
}

// --- Trap-then-reuse ------------------------------------------------------

TEST(TrapReuse, TrappedInstanceStaysPoolRecyclable) {
  // After a genuine wasm trap the engine must stay usable and the
  // instance must remain pool-recyclable — a service worker never tears
  // down its warm state because one job trapped.
  for (const char *Tier : {"spc", "threaded"}) {
    EngineConfig Cfg = govConfig(Tier);
    Cfg.UseCompileCache = true;
    Cfg.PoolInstances = true;
    CompileCache Cache;
    InstancePool Pool;
    Engine E(Cfg, &Cache, &Pool);
    WasmError Err;
    auto LM = E.load(divModule(), &Err);
    ASSERT_NE(LM, nullptr) << Tier << ": " << Err.Message;
    std::vector<Value> Out;
    EXPECT_EQ(E.invoke(*LM, "div", {Value::makeI32(0)}, &Out),
              TrapReason::DivByZero)
        << Tier;
    // Same instance, next job: works.
    ASSERT_EQ(E.invoke(*LM, "div", {Value::makeI32(4)}, &Out),
              TrapReason::None)
        << Tier;
    EXPECT_EQ(Out[0], Value::makeI32(25)) << Tier;
    // Recycle the (previously trapped) instance and re-load: the pool
    // serves it and the re-imaged instance behaves like a fresh one.
    ASSERT_TRUE(E.recycle(std::move(LM))) << Tier;
    auto LM2 = E.load(divModule(), &Err);
    ASSERT_NE(LM2, nullptr) << Tier << ": " << Err.Message;
    EXPECT_GE(LM2->Stats.PoolHits, 1u) << Tier;
    ASSERT_EQ(E.invoke(*LM2, "div", {Value::makeI32(5)}, &Out),
              TrapReason::None)
        << Tier;
    EXPECT_EQ(Out[0], Value::makeI32(20)) << Tier;
  }
}

TEST(TrapReuse, FuelExhaustedInstanceStaysPoolRecyclable) {
  for (const char *Tier : {"spc", "threaded"}) {
    EngineConfig Cfg = govConfig(Tier);
    Cfg.FuelBudget = 5;
    Cfg.UseCompileCache = true;
    Cfg.PoolInstances = true;
    CompileCache Cache;
    InstancePool Pool;
    Engine E(Cfg, &Cache, &Pool);
    WasmError Err;
    auto LM = E.load(loopSumModule(), &Err);
    ASSERT_NE(LM, nullptr) << Tier << ": " << Err.Message;
    std::vector<Value> Out;
    EXPECT_EQ(E.invoke(*LM, "run", {Value::makeI32(1000)}, &Out),
              TrapReason::FuelExhausted)
        << Tier;
    ASSERT_TRUE(E.recycle(std::move(LM))) << Tier;
    auto LM2 = E.load(loopSumModule(), &Err);
    ASSERT_NE(LM2, nullptr) << Tier << ": " << Err.Message;
    EXPECT_GE(LM2->Stats.PoolHits, 1u) << Tier;
    ASSERT_EQ(E.invoke(*LM2, "run", {Value::makeI32(1)}, &Out),
              TrapReason::None)
        << Tier;
    EXPECT_EQ(Out[0], Value::makeI32(1)) << Tier;
  }
}
