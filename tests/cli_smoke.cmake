# tests/cli_smoke.cmake - ctest smoke test for the wisp CLI driver.
#
# Runs the same small embedded suite item on all six execution tiers and
# asserts (a) every run exits 0 and (b) every tier prints the identical
# result line. Invoked by ctest as:
#   cmake -DWISP_BIN=<path-to-wisp> -P cli_smoke.cmake

if(NOT WISP_BIN)
  message(FATAL_ERROR "pass -DWISP_BIN=<path to the wisp binary>")
endif()

set(ITEM "ostrich/crc")
set(REFERENCE "")

foreach(tier int threaded spc copypatch twopass opt)
  execute_process(
    COMMAND ${WISP_BIN} --tier=${tier} ${ITEM}
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR
      "wisp --tier=${tier} ${ITEM} exited ${RC}\nstderr: ${ERR}")
  endif()
  if(NOT OUT MATCHES "run\\(\\) = ")
    message(FATAL_ERROR
      "wisp --tier=${tier} ${ITEM} printed no result line:\n${OUT}")
  endif()
  if(REFERENCE STREQUAL "")
    set(REFERENCE "${OUT}")
    set(REFERENCE_TIER "${tier}")
  elseif(NOT OUT STREQUAL REFERENCE)
    message(FATAL_ERROR
      "tier ${tier} disagrees with tier ${REFERENCE_TIER} on ${ITEM}:\n"
      "${REFERENCE_TIER}: ${REFERENCE}\n${tier}: ${OUT}")
  endif()
endforeach()

# --verify must accept the same item on every tier with identical output
# (verification is a pure check: it can reject, never perturb).
foreach(tier int threaded spc opt)
  execute_process(
    COMMAND ${WISP_BIN} --verify --tier=${tier} ${ITEM}
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0 OR NOT OUT STREQUAL REFERENCE)
    message(FATAL_ERROR
      "wisp --verify --tier=${tier} ${ITEM} (rc=${RC}) diverged:\n"
      "${OUT}\nstderr: ${ERR}")
  endif()
endforeach()

# Audit mode: the per-compiler verification report must list all four
# compiler pipelines plus the threaded IR, each with zero findings, and
# exit 0 on a known-good module.
execute_process(
  COMMAND ${WISP_BIN} --audit ${ITEM}
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "wisp --audit ${ITEM} exited ${RC}\nstderr: ${ERR}")
endif()
foreach(pipeline single-pass two-pass copy-and-patch optimizing threaded-ir)
  if(NOT OUT MATCHES "${pipeline} +ok: [0-9]+ artifact\\(s\\), 0 finding\\(s\\)")
    message(FATAL_ERROR
      "wisp --audit ${ITEM} report is missing a clean '${pipeline}' line:\n${OUT}")
  endif()
endforeach()
if(NOT OUT MATCHES "audit: all artifacts verified")
  message(FATAL_ERROR "wisp --audit ${ITEM} did not report success:\n${OUT}")
endif()

# Analyze mode: tier-independent by construction — the report must be
# byte-identical under every --tier value, exit 0 on a clean module, and
# name the analysis surfaces (call graph, memory bound, per-function
# bounds). The --json artifact must be identical across tiers too.
set(ANALYZE_REF "")
foreach(tier int threaded spc copypatch twopass opt)
  execute_process(
    COMMAND ${WISP_BIN} --analyze --tier=${tier} ${ITEM}
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR
      "wisp --analyze --tier=${tier} ${ITEM} exited ${RC}\nstderr: ${ERR}")
  endif()
  if(ANALYZE_REF STREQUAL "")
    set(ANALYZE_REF "${OUT}")
  elseif(NOT OUT STREQUAL ANALYZE_REF)
    message(FATAL_ERROR
      "--analyze output differs on tier ${tier} (analysis must be "
      "tier-independent):\n--- reference\n${ANALYZE_REF}\n--- ${tier}\n${OUT}")
  endif()
  execute_process(
    COMMAND ${WISP_BIN} --analyze --json --tier=${tier} ${ITEM}
    OUTPUT_VARIABLE JOUT
    RESULT_VARIABLE JRC)
  if(NOT JRC EQUAL 0)
    message(FATAL_ERROR "wisp --analyze --json --tier=${tier} exited ${JRC}")
  endif()
  if(tier STREQUAL "int")
    set(ANALYZE_JSON_REF "${JOUT}")
  elseif(NOT JOUT STREQUAL ANALYZE_JSON_REF)
    message(FATAL_ERROR "--analyze --json differs on tier ${tier}")
  endif()
endforeach()
foreach(want "static analysis: ${ITEM}" "call graph:" "memory:"
        "per-function bounds" "lints: none")
  if(NOT ANALYZE_REF MATCHES "${want}")
    message(FATAL_ERROR
      "--analyze report is missing '${want}':\n${ANALYZE_REF}")
  endif()
endforeach()
if(NOT ANALYZE_JSON_REF MATCHES "\"depth_bounded\":" OR
   NOT ANALYZE_JSON_REF MATCHES "\"functions\":\\[" OR
   NOT ANALYZE_JSON_REF MATCHES "\"lints\":\\[\\]")
  message(FATAL_ERROR "--analyze --json artifact malformed:\n${ANALYZE_JSON_REF}")
endif()

# --audit --json shares the serializer: a clean module yields ok:true and
# one entry per pipeline.
execute_process(
  COMMAND ${WISP_BIN} --audit --json ${ITEM}
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0 OR NOT OUT MATCHES "\"ok\":true" OR
   NOT OUT MATCHES "\"name\":\"threaded-ir\"")
  message(FATAL_ERROR "wisp --audit --json ${ITEM} malformed (rc=${RC}):\n${OUT}")
endif()

# The stats/timing surface must work on the minimal module.
execute_process(
  COMMAND ${WISP_BIN} --tier=spc --invoke=run --stats --time nop
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "wisp nop run exited ${RC}")
endif()

# Argument machinery: a surplus argument must be rejected against the
# export's zero-parameter signature, and an unknown export must fail.
execute_process(
  COMMAND ${WISP_BIN} --tier=spc nop 42
  ERROR_VARIABLE ERR
  OUTPUT_QUIET
  RESULT_VARIABLE RC)
if(RC EQUAL 0 OR NOT ERR MATCHES "takes 0 argument")
  message(FATAL_ERROR
    "surplus argument not rejected (rc=${RC}): ${ERR}")
endif()
execute_process(
  COMMAND ${WISP_BIN} --tier=spc --invoke=nope nop
  ERROR_VARIABLE ERR
  OUTPUT_QUIET
  RESULT_VARIABLE RC)
if(RC EQUAL 0 OR NOT ERR MATCHES "no exported function")
  message(FATAL_ERROR "unknown export not rejected (rc=${RC}): ${ERR}")
endif()

message(STATUS "cli_smoke: all six tiers agree on ${ITEM}")
