//===- tests/test_suites.cpp - benchmark suite integration tests -----------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Every generated line item must decode, validate, instantiate and run on
// every tier, and all tiers must agree on the checksum the kernel returns.
// This is the integration test backing the benchmark harness.
//
//===----------------------------------------------------------------------===//

#include "testutil.h"

#include "engine/engine.h"
#include "engine/registry.h"
#include "suites/suites.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace wisp;

namespace {

Value runItem(const EngineConfig &Cfg, const std::vector<uint8_t> &Bytes) {
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(Bytes, &Err);
  EXPECT_NE(LM, nullptr) << Cfg.Name << ": " << Err.Message;
  if (!LM)
    return Value{};
  std::vector<Value> Out;
  TrapReason Trap = E.invoke(*LM, "run", {}, &Out);
  EXPECT_EQ(Trap, TrapReason::None)
      << Cfg.Name << ": " << trapReasonName(Trap);
  if (Trap != TrapReason::None || Out.empty())
    return Value{};
  return Out[0];
}

class SuiteItems : public ::testing::TestWithParam<size_t> {
public:
  static const std::vector<LineItem> &items() {
    static const std::vector<LineItem> Items = allSuites(1);
    return Items;
  }
};

TEST_P(SuiteItems, AllTiersAgree) {
  const LineItem &Item = items()[GetParam()];
  SCOPED_TRACE(Item.Suite + "/" + Item.Name);

  Value Ref = runItem(configByName("wizard-int"), Item.Bytes);
  EXPECT_EQ(Ref.Type, Item.ResultType);
  // The checksum must be a real value (kernels are designed to produce
  // finite nonzero results).
  if (Item.ResultType == ValType::F64) {
    EXPECT_TRUE(std::isfinite(Ref.asF64()));
  }

  for (const char *Tier : {"wizard-spc", "wazero", "wasm-now", "v8-liftoff",
                           "wasmtime", "wizard-tiered"}) {
    Value Got = runItem(configByName(Tier), Item.Bytes);
    EXPECT_EQ(Ref, Got) << Tier << " expected " << Ref.toString() << " got "
                        << Got.toString();
  }

  // The m0 (early-return) variant must be near-free to execute and return
  // the zero of the result type.
  Value M0 = runItem(configByName("wizard-int"), Item.M0Bytes);
  EXPECT_EQ(M0.Bits, 0u);
  // And be the same module size class (within the two extra instructions).
  EXPECT_NEAR(double(Item.M0Bytes.size()), double(Item.Bytes.size()), 16.0);
}

INSTANTIATE_TEST_SUITE_P(
    All, SuiteItems, ::testing::Range(size_t(0), SuiteItems::items().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      const LineItem &Item = SuiteItems::items()[Info.param];
      std::string Name = Item.Suite + "_" + Item.Name;
      for (char &C : Name)
        if (!isalnum(uint8_t(C)))
          C = '_';
      return Name;
    });

TEST(Suites, CountsMatchPaper) {
  EXPECT_EQ(polybenchSuite(1).size(), 28u);
  EXPECT_EQ(libsodiumSuite(1).size(), 39u);
  EXPECT_EQ(ostrichSuite(1).size(), 11u);
  EXPECT_EQ(allSuites(1).size(), 78u);
}

TEST(Suites, NopModuleIsTiny) {
  // The paper's Mnop is 104 bytes; ours is the same order of magnitude.
  std::vector<uint8_t> Nop = nopModule();
  EXPECT_LT(Nop.size(), 104u);
  Value V = runItem(configByName("wizard-int"), Nop);
  (void)V; // Just must not trap.
}

TEST(Suites, ScaleGrowsWork) {
  // Scale must increase modeled work, not module size class.
  EngineConfig Cfg = configByName("wizard-spc");
  auto CyclesOf = [&](const std::vector<uint8_t> &Bytes) {
    Engine E(Cfg);
    WasmError Err;
    auto LM = E.load(Bytes, &Err);
    EXPECT_NE(LM, nullptr);
    std::vector<Value> Out;
    EXPECT_EQ(E.invoke(*LM, "run", {}, &Out), TrapReason::None);
    return E.thread().modeledCycles();
  };
  LineItem S1, S3;
  for (LineItem &I : polybenchSuite(1))
    if (I.Name == "atax")
      S1 = std::move(I);
  for (LineItem &I : polybenchSuite(3))
    if (I.Name == "atax")
      S3 = std::move(I);
  EXPECT_GT(CyclesOf(S3.Bytes), 2 * CyclesOf(S1.Bytes));
}

} // namespace
