//===- tests/testutil.h - shared test helpers -------------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#ifndef WISP_TESTS_TESTUTIL_H
#define WISP_TESTS_TESTUTIL_H

#include "engine/run.h"
#include "interp/interpreter.h"
#include "runtime/instance.h"
#include "spc/compiler.h"
#include "wasm/builder.h"
#include "wasm/reader.h"
#include "wasm/validator.h"

#include <gtest/gtest.h>

namespace wisp {

/// Decodes and validates module bytes; fails the test on any error.
inline std::unique_ptr<Module> buildAndValidate(std::vector<uint8_t> Bytes) {
  WasmError Err;
  std::unique_ptr<Module> M = decodeModule(std::move(Bytes), &Err);
  EXPECT_TRUE(M != nullptr) << "decode: " << Err.Message;
  if (!M)
    return nullptr;
  bool Ok = validateModule(*M, &Err);
  EXPECT_TRUE(Ok) << "validate: " << Err.Message << " @" << Err.Offset;
  if (!Ok)
    return nullptr;
  return M;
}

/// Builds, decodes and validates a module; fails the test on any error.
inline std::unique_ptr<Module> buildAndValidate(const ModuleBuilder &MB) {
  return buildAndValidate(MB.build());
}

/// Decodes and expects a decode failure.
inline void expectDecodeError(std::vector<uint8_t> Bytes) {
  WasmError Err;
  EXPECT_EQ(decodeModule(std::move(Bytes), &Err), nullptr);
}

/// Builds and decodes, then expects validation to fail.
inline void expectInvalid(const ModuleBuilder &MB) {
  WasmError Err;
  std::unique_ptr<Module> M = decodeModule(MB.build(), &Err);
  ASSERT_TRUE(M != nullptr) << "decode: " << Err.Message;
  EXPECT_FALSE(validateModule(*M, &Err));
}

/// Result of a direct interpreter invocation.
struct InvokeResult {
  TrapReason Trap = TrapReason::None;
  std::vector<Value> Results;
  bool trapped() const { return Trap != TrapReason::None; }
  Value one() const {
    EXPECT_EQ(Results.size(), 1u);
    return Results.empty() ? Value{} : Results[0];
  }
};

/// Invokes \p Func on the pure interpreter (no JIT dispatch).
inline InvokeResult interpInvoke(Thread &T, FuncInstance *Func,
                                 const std::vector<Value> &Args) {
  InvokeResult R;
  T.clearTrap();
  T.Frames.clear();
  uint64_t *S = T.VS.slots();
  uint8_t *Tg = T.VS.tags();
  for (size_t I = 0; I < Args.size(); ++I) {
    S[I] = Args[I].Bits;
    if (Tg)
      Tg[I] = uint8_t(Args[I].Type);
  }
  if (!pushWasmFrame(T, Func, 0)) {
    R.Trap = T.Trap;
    return R;
  }
  RunSignal Sig = runInterpreter(T, T.Frames.size());
  if (Sig == RunSignal::Trapped) {
    R.Trap = T.Trap;
    T.Frames.clear();
    return R;
  }
  EXPECT_EQ(Sig, RunSignal::Done);
  for (size_t I = 0; I < Func->Type->Results.size(); ++I)
    R.Results.push_back(Value{T.VS.slot(uint32_t(I)),
                              Func->Type->Results[I]});
  return R;
}

/// One-stop helper: build, decode, validate, instantiate and invoke an
/// export on the interpreter.
class InterpFixture {
public:
  explicit InterpFixture(const ModuleBuilder &MB,
                         const HostRegistry *Hosts = nullptr)
      : InterpFixture(MB.build(), Hosts) {}

  explicit InterpFixture(std::vector<uint8_t> Bytes,
                         const HostRegistry *Hosts = nullptr) {
    M = buildAndValidate(std::move(Bytes));
    if (!M)
      return;
    WasmError Err;
    static const HostRegistry Empty;
    Inst = instantiate(*M, Hosts ? *Hosts : Empty, &Heap, &Err);
    EXPECT_NE(Inst, nullptr) << Err.Message;
    if (!Inst)
      return;
    T.Inst = Inst.get();
  }

  bool ok() const { return Inst != nullptr; }

  InvokeResult call(const std::string &Name, const std::vector<Value> &Args) {
    FuncInstance *F = Inst->findExportedFunc(Name);
    EXPECT_NE(F, nullptr) << "no export " << Name;
    if (!F)
      return InvokeResult{TrapReason::HostError, {}};
    return interpInvoke(T, F, Args);
  }

  /// Compiles every function with the given options and flips the module
  /// to the JIT tier. Keeps the code alive in this fixture.
  void jitAll(const CompilerOptions &Opts,
              const ProbeSiteOracle *Probes = nullptr) {
    for (FuncInstance &FI : Inst->Funcs) {
      if (FI.Decl->Imported)
        continue;
      Codes.push_back(compileFunction(*M, *FI.Decl, Opts, Probes));
      FI.Code = Codes.back().get();
      FI.UseJit = true;
    }
  }

  /// Invokes through the tier dispatcher (JIT frames included).
  InvokeResult callJit(const std::string &Name,
                       const std::vector<Value> &Args) {
    FuncInstance *F = Inst->findExportedFunc(Name);
    EXPECT_NE(F, nullptr) << "no export " << Name;
    if (!F)
      return InvokeResult{TrapReason::HostError, {}};
    InvokeResult R;
    std::vector<Value> Out;
    R.Trap = invoke(T, F, Args, &Out);
    R.Results = std::move(Out);
    return R;
  }

  std::unique_ptr<Module> M;
  std::unique_ptr<Instance> Inst;
  std::vector<std::unique_ptr<MCode>> Codes;
  GcHeap Heap;
  Thread T;
};

} // namespace wisp

#endif // WISP_TESTS_TESTUTIL_H
