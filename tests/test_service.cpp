//===- tests/test_service.cpp - batch runner tests --------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The parallel batch runner: manifest parsing (including every malformed
// shape the CLI must diagnose), module resolution, deterministic execution
// across worker counts, and the engine thread-safety contract (concurrent
// private engines agree with a sequential run; meaningful under TSan).
//
//===----------------------------------------------------------------------===//

#include "service/batch.h"
#include "service/serve.h"

#include "engine/registry.h"
#include "suites/suites.h"
#include "testutil.h"

#include <cstdio>
#include <thread>
#include <unistd.h>

using namespace wisp;

namespace {

// --- Manifest parsing ----------------------------------------------------

TEST(Manifest, ParsesJobsKeysAndComments) {
  std::vector<BatchJob> Jobs;
  std::string Err;
  ASSERT_TRUE(parseBatchManifest("# a comment\n"
                                 "\n"
                                 "polybench/2mm tier=threaded scale=2\n"
                                 "nop config=wizard-tiered invoke=run\n"
                                 "ostrich/crc m0 # trailing comment\n"
                                 "file.wasm invoke=gcd args=3528,3780\n",
                                 &Jobs, &Err))
      << Err;
  ASSERT_EQ(Jobs.size(), 4u);
  EXPECT_EQ(Jobs[0].Module, "polybench/2mm");
  EXPECT_EQ(Jobs[0].Config, "interp-threaded"); // tier= resolves.
  EXPECT_EQ(Jobs[0].Scale, 2);
  EXPECT_EQ(Jobs[1].Config, "wizard-tiered");
  EXPECT_TRUE(Jobs[2].UseM0);
  EXPECT_EQ(Jobs[2].Config, "wizard-spc"); // Default.
  EXPECT_EQ(Jobs[3].Invoke, "gcd");
  ASSERT_EQ(Jobs[3].RawArgs.size(), 2u);
  EXPECT_EQ(Jobs[3].RawArgs[0], "3528");
  EXPECT_EQ(Jobs[3].RawArgs[1], "3780");
  EXPECT_EQ(Jobs[3].Line, 6u);
}

TEST(Manifest, RejectsMalformedLines) {
  std::vector<BatchJob> Jobs;
  std::string Err;
  EXPECT_FALSE(parseBatchManifest("nop frobnicate=1\n", &Jobs, &Err));
  EXPECT_NE(Err.find("unknown key"), std::string::npos) << Err;
  EXPECT_NE(Err.find("line 1"), std::string::npos) << Err;

  EXPECT_FALSE(
      parseBatchManifest("nop\nnop tier=int config=wizard-spc\n", &Jobs, &Err));
  EXPECT_NE(Err.find("mutually exclusive"), std::string::npos) << Err;
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;

  EXPECT_FALSE(parseBatchManifest("nop scale=0\n", &Jobs, &Err));
  EXPECT_NE(Err.find("bad scale"), std::string::npos) << Err;
  EXPECT_FALSE(parseBatchManifest("nop scale=abc\n", &Jobs, &Err));
  EXPECT_NE(Err.find("bad scale"), std::string::npos) << Err;

  EXPECT_FALSE(parseBatchManifest("nop tier=warp\n", &Jobs, &Err));
  EXPECT_NE(Err.find("unknown tier"), std::string::npos) << Err;
  EXPECT_FALSE(parseBatchManifest("nop config=nonesuch\n", &Jobs, &Err));
  EXPECT_NE(Err.find("unknown config"), std::string::npos) << Err;

  EXPECT_FALSE(parseBatchManifest("m.wasm args=3,,7\n", &Jobs, &Err));
  EXPECT_NE(Err.find("empty args= segment"), std::string::npos) << Err;
  EXPECT_FALSE(parseBatchManifest("m.wasm args=3,\n", &Jobs, &Err));
  EXPECT_NE(Err.find("empty args= segment"), std::string::npos) << Err;
  // "args=" alone is zero arguments, not an error.
  EXPECT_TRUE(parseBatchManifest("nop args=\n", &Jobs, &Err)) << Err;
  EXPECT_TRUE(Jobs[0].RawArgs.empty());

  EXPECT_FALSE(parseBatchManifest("# only comments\n\n", &Jobs, &Err));
  EXPECT_NE(Err.find("no jobs"), std::string::npos) << Err;
}

TEST(Manifest, ResolvesSuiteItemsAndRejectsUnknownModules) {
  std::vector<BatchJob> Jobs;
  std::string Err;
  ASSERT_TRUE(parseBatchManifest("nop\npolybench/2mm\n", &Jobs, &Err));
  ASSERT_TRUE(resolveBatchModules(&Jobs, &Err)) << Err;
  EXPECT_EQ(Jobs[0].Bytes, nopModule());
  EXPECT_FALSE(Jobs[1].Bytes.empty());

  ASSERT_TRUE(parseBatchManifest("no/such-item\n", &Jobs, &Err));
  EXPECT_FALSE(resolveBatchModules(&Jobs, &Err));
  EXPECT_NE(Err.find("cannot resolve module"), std::string::npos) << Err;
  EXPECT_NE(Err.find("line 1"), std::string::npos) << Err;
}

// --- Value parsing (shared with the CLI) ---------------------------------

TEST(ValueText, FullRangeAndRejection) {
  Value V;
  EXPECT_TRUE(parseValueText("4294967295", ValType::I32, &V));
  EXPECT_EQ(V.asI32(), -1);
  EXPECT_FALSE(parseValueText("4294967296", ValType::I32, &V));
  EXPECT_FALSE(parseValueText("-2147483649", ValType::I32, &V));
  EXPECT_TRUE(parseValueText("-2147483648", ValType::I32, &V));
  EXPECT_FALSE(parseValueText("12x", ValType::I32, &V));
  EXPECT_FALSE(parseValueText("", ValType::I64, &V));
  EXPECT_TRUE(parseValueText("0x10", ValType::I64, &V));
  EXPECT_EQ(V.asI64(), 16);
  EXPECT_TRUE(parseValueText("-1.5", ValType::F64, &V));
  EXPECT_EQ(V.asF64(), -1.5);
  EXPECT_EQ(valueText(Value::makeI32(252)), "252:i32");
}

// --- Batch execution -----------------------------------------------------

/// (i32, i32) -> i32 adder, for args= jobs.
std::vector<uint8_t> addModule() {
  ModuleBuilder MB;
  uint32_t TI = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(TI);
  F.localGet(0);
  F.localGet(1);
  F.op(Opcode::I32Add);
  MB.exportFunc("add", 0);
  return MB.build();
}

/// () -> i32 that divides by zero.
std::vector<uint8_t> trapModule() {
  ModuleBuilder MB;
  uint32_t TI = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(TI);
  F.i32Const(1);
  F.i32Const(0);
  F.op(Opcode::I32DivU);
  MB.exportFunc("run", 0);
  return MB.build();
}

std::vector<BatchJob> mixedJobs() {
  std::vector<BatchJob> Jobs;
  std::string Err;
  EXPECT_TRUE(parseBatchManifest("nop\n"
                                 "ostrich/crc tier=spc\n"
                                 "ostrich/crc tier=threaded\n"
                                 "libsodium/stream_chacha20 config=wizard-tiered\n"
                                 "polybench/2mm tier=int\n",
                                 &Jobs, &Err))
      << Err;
  EXPECT_TRUE(resolveBatchModules(&Jobs, &Err)) << Err;
  // Two in-memory jobs the manifest cannot spell: args + a trap.
  BatchJob Add;
  Add.Index = uint32_t(Jobs.size());
  Add.Module = "<add>";
  Add.Config = "wizard-spc";
  Add.Invoke = "add";
  Add.RawArgs = {"7", "35"};
  Add.Bytes = addModule();
  Jobs.push_back(std::move(Add));
  BatchJob Trap;
  Trap.Index = uint32_t(Jobs.size());
  Trap.Module = "<trap>";
  Trap.Config = "wasm-now";
  Trap.Bytes = trapModule();
  Jobs.push_back(std::move(Trap));
  return Jobs;
}

void expectSameResults(const BatchReport &A, const BatchReport &B) {
  ASSERT_EQ(A.Results.size(), B.Results.size());
  for (size_t I = 0; I < A.Results.size(); ++I) {
    const BatchJobResult &X = A.Results[I];
    const BatchJobResult &Y = B.Results[I];
    EXPECT_EQ(X.Index, Y.Index);
    EXPECT_EQ(X.Ok, Y.Ok);
    EXPECT_EQ(X.Error, Y.Error);
    EXPECT_EQ(X.Trap, Y.Trap) << "job " << I;
    ASSERT_EQ(X.Results.size(), Y.Results.size()) << "job " << I;
    for (size_t V = 0; V < X.Results.size(); ++V)
      EXPECT_EQ(X.Results[V].Bits, Y.Results[V].Bits) << "job " << I;
    EXPECT_EQ(X.ModeledCycles, Y.ModeledCycles) << "job " << I;
    EXPECT_EQ(X.Stats.CodeBytes, Y.Stats.CodeBytes);
    EXPECT_EQ(X.Stats.CodeInsts, Y.Stats.CodeInsts);
    EXPECT_EQ(X.Stats.IrBytes, Y.Stats.IrBytes);
  }
}

TEST(Batch, RunsJobsAndCollectsPerJobState) {
  std::vector<BatchJob> Jobs = mixedJobs();
  BatchReport R = runBatch(Jobs, 2);
  ASSERT_EQ(R.Results.size(), Jobs.size());
  EXPECT_EQ(R.Workers, 2u);
  // nop returns void.
  EXPECT_TRUE(R.Results[0].Ok);
  EXPECT_EQ(R.Results[0].Trap, TrapReason::None);
  EXPECT_TRUE(R.Results[0].Results.empty());
  // The same item on two tiers computes the same value.
  ASSERT_EQ(R.Results[1].Results.size(), 1u);
  ASSERT_EQ(R.Results[2].Results.size(), 1u);
  EXPECT_EQ(R.Results[1].Results[0].Bits, R.Results[2].Results[0].Bits);
  // ...but different modeled cost (JIT vs. threaded interpreter).
  EXPECT_NE(R.Results[1].ModeledCycles, R.Results[2].ModeledCycles);
  // args= job.
  ASSERT_EQ(R.Results[5].Results.size(), 1u);
  EXPECT_EQ(R.Results[5].Results[0].asI32(), 42);
  // The trap job fails without affecting its neighbors.
  EXPECT_TRUE(R.Results[6].Ok);
  EXPECT_EQ(R.Results[6].Trap, TrapReason::DivByZero);
  EXPECT_TRUE(R.Results[6].Results.empty());
  // JIT jobs report compiled-code statistics.
  EXPECT_GT(R.Results[1].Stats.CodeInsts, 0u);
  EXPECT_GT(R.Results[2].Stats.IrBytes, 0u);
}

TEST(Batch, DeterministicAcrossWorkerCounts) {
  std::vector<BatchJob> Jobs = mixedJobs();
  BatchReport Seq = runBatch(Jobs, 1);
  expectSameResults(Seq, runBatch(Jobs, 4));
  expectSameResults(Seq, runBatch(Jobs, 8));
  // More workers than jobs is fine too.
  expectSameResults(Seq, runBatch(Jobs, 16));
}

TEST(Batch, ReportJobLinesAreDeterministic) {
  std::vector<BatchJob> Jobs = mixedJobs();
  auto Render = [&](unsigned Workers) {
    BatchReport R = runBatch(Jobs, Workers);
    char *Buf = nullptr;
    size_t Len = 0;
    FILE *Mem = open_memstream(&Buf, &Len);
    printBatchReport(Mem, Jobs, R, /*Stats=*/true);
    fclose(Mem);
    // Strip the '#'-prefixed summary (wall time, throughput).
    std::string Out;
    std::string All(Buf, Len);
    free(Buf);
    size_t Pos = 0;
    while (Pos < All.size()) {
      size_t Nl = All.find('\n', Pos);
      if (Nl == std::string::npos)
        Nl = All.size();
      if (All[Pos] != '#')
        Out += All.substr(Pos, Nl - Pos) + "\n";
      Pos = Nl + 1;
    }
    return Out;
  };
  std::string One = Render(1);
  EXPECT_FALSE(One.empty());
  EXPECT_EQ(One, Render(8));
}

// --- Engine thread-safety contract ---------------------------------------

// Concurrent private engines (one per thread, the contract documented in
// engine/engine.h) must agree with a sequential reference run. Exercises
// the copy-and-patch template cache build race under TSan: every thread
// warms it through its engine constructor simultaneously.
TEST(Batch, ConcurrentPrivateEnginesAgree) {
  std::vector<LineItem> Items = ostrichSuite(1);
  ASSERT_GE(Items.size(), 4u);
  static const char *Configs[] = {"wizard-spc", "wasm-now", "interp-threaded",
                                  "wizard-tiered"};

  auto RunOne = [&](size_t I) {
    Engine E(configByName(Configs[I % 4]));
    WasmError Err;
    std::unique_ptr<LoadedModule> LM = E.load(Items[I % 4].Bytes, &Err);
    EXPECT_NE(LM, nullptr) << Err.Message;
    if (!LM)
      return uint64_t(0);
    std::vector<Value> Out;
    EXPECT_EQ(E.invoke(*LM, "run", {}, &Out), TrapReason::None);
    return Out.empty() ? uint64_t(0) : Out[0].Bits;
  };

  std::vector<uint64_t> Expected;
  for (size_t I = 0; I < 8; ++I)
    Expected.push_back(RunOne(I));

  std::vector<uint64_t> Got(8);
  std::vector<std::thread> Threads;
  for (size_t I = 0; I < 8; ++I)
    Threads.emplace_back([&, I] { Got[I] = RunOne(I); });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Got, Expected);
}

// --- Serve mode ----------------------------------------------------------

/// One in-process serve session over in-memory streams.
struct ServeRun {
  ServeStats Stats;
  std::string Out;

  /// Lines starting with \p Prefix.
  std::vector<std::string> lines(const std::string &Prefix) const {
    std::vector<std::string> Found;
    size_t Pos = 0;
    while (Pos < Out.size()) {
      size_t Nl = Out.find('\n', Pos);
      if (Nl == std::string::npos)
        Nl = Out.size();
      std::string Line = Out.substr(Pos, Nl - Pos);
      if (Line.compare(0, Prefix.size(), Prefix) == 0)
        Found.push_back(Line);
      Pos = Nl + 1;
    }
    return Found;
  }
};

ServeRun serveOn(const std::string &Input, const ServeOptions &Opts) {
  FILE *In = fmemopen(const_cast<char *>(Input.data()), Input.size(), "r");
  EXPECT_NE(In, nullptr);
  char *Buf = nullptr;
  size_t Len = 0;
  FILE *Out = open_memstream(&Buf, &Len);
  ServeRun R;
  R.Stats = runServe(In, Out, Opts);
  fclose(In);
  fclose(Out);
  R.Out.assign(Buf, Len);
  free(Buf);
  return R;
}

TEST(Serve, AnswersEveryAcceptedJobExactlyOnce) {
  ServeOptions Opts;
  Opts.Workers = 2;
  Opts.QueueCap = 64; // Roomy: nothing sheds, so done lines == job lines.
  ServeRun R = serveOn("nop tier=spc\n"
                       "ostrich/crc tier=int id=crc-int\n"
                       "ostrich/crc tier=spc id=crc-spc\n"
                       "# a comment line\n"
                       "\n"
                       "nop tier=threaded\n"
                       "shutdown\n",
                       Opts);
  EXPECT_EQ(R.Stats.Accepted, 4u);
  EXPECT_EQ(R.Stats.Rejected, 0u);
  EXPECT_EQ(R.Stats.Done, 4u);
  EXPECT_EQ(R.lines("done ").size(), 4u);
  EXPECT_EQ(R.lines("done crc-int ").size(), 1u);
  EXPECT_EQ(R.lines("done crc-spc ").size(), 1u);
  // Latencies recorded per accepted job, in acceptance order.
  ASSERT_EQ(R.Stats.LatenciesMs.size(), 4u);
  for (double L : R.Stats.LatenciesMs)
    EXPECT_GT(L, 0.0);
  // Both tiers computed the same crc: the value part of the two lines
  // (after the id, before ms=) must match.
  std::string A = R.lines("done crc-int ")[0];
  std::string B = R.lines("done crc-spc ")[0];
  A = A.substr(strlen("done crc-int "), A.rfind(" ms=") - strlen("done crc-int "));
  B = B.substr(strlen("done crc-spc "), B.rfind(" ms=") - strlen("done crc-spc "));
  EXPECT_EQ(A, B);
  EXPECT_FALSE(A.empty());
}

TEST(Serve, RejectsMalformedLinesAndStopsAtShutdown) {
  ServeOptions Opts;
  ServeRun R = serveOn("nop tier=spc frobnicate=1\n" // Unknown key.
                       "nop fuel=0\n"                // Bad governance value.
                       "nop tier=spc\n"
                       "shutdown\n"
                       "nop tier=spc\n", // Never admitted: after shutdown.
                       Opts);
  EXPECT_EQ(R.Stats.Accepted, 1u);
  EXPECT_EQ(R.Stats.Rejected, 2u);
  ASSERT_EQ(R.lines("reject - parse: ").size(), 2u);
  EXPECT_NE(R.lines("reject - parse: ")[0].find("unknown key"),
            std::string::npos);
  EXPECT_NE(R.lines("reject - parse: ")[1].find("bad fuel"),
            std::string::npos);
  EXPECT_EQ(R.lines("done ").size(), 1u);
}

TEST(Serve, HonorsPerJobFuelAndSessionDefaults) {
  // Per-line fuel= key: a tiny budget traps, a big one completes.
  ServeOptions Opts;
  ServeRun R = serveOn("ostrich/crc tier=spc fuel=5 id=tiny\n"
                       "ostrich/crc tier=spc fuel=100000000 id=big\n",
                       Opts);
  ASSERT_EQ(R.lines("done tiny ").size(), 1u);
  EXPECT_NE(R.lines("done tiny ")[0].find("trap: fuel exhausted"),
            std::string::npos);
  ASSERT_EQ(R.lines("done big ").size(), 1u);
  EXPECT_NE(R.lines("done big ")[0].find("= "), std::string::npos);

  // Session default applies when the line has no fuel= key; a line key
  // overrides it.
  Opts.DefaultFuel = 5;
  ServeRun R2 = serveOn("ostrich/crc tier=int id=defaulted\n"
                       "ostrich/crc tier=int fuel=100000000 id=override\n",
                       Opts);
  EXPECT_NE(R2.lines("done defaulted ")[0].find("trap: fuel exhausted"),
            std::string::npos);
  EXPECT_NE(R2.lines("done override ")[0].find("= "), std::string::npos);
}

TEST(Serve, DeadlineStopsAnInfiniteLoopJob) {
  // The spin module only exists in memory; serve jobs arrive as module
  // specs, so park it in a file the manifest line can name.
  std::string Path = testing::TempDir() + "/wisp_serve_spin.wasm";
  std::vector<uint8_t> Bytes = [] {
    ModuleBuilder MB;
    uint32_t T = MB.addType({}, {});
    FuncBuilder &F = MB.addFunc(T);
    F.loop();
    F.br(0);
    F.end();
    MB.exportFunc("run", MB.funcIndex(F));
    return MB.build();
  }();
  FILE *F = fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  fwrite(Bytes.data(), 1, Bytes.size(), F);
  fclose(F);

  ServeOptions Opts;
  ServeRun R = serveOn(Path + " tier=spc deadline-ms=30 id=spin\n"
                       "nop tier=spc id=after\n",
                       Opts);
  remove(Path.c_str());
  ASSERT_EQ(R.lines("done spin ").size(), 1u);
  EXPECT_NE(R.lines("done spin ")[0].find("trap: deadline exceeded"),
            std::string::npos)
      << R.Out;
  // The worker (and its warm engine) survives to serve the next job.
  ASSERT_EQ(R.lines("done after ").size(), 1u);
  EXPECT_NE(R.lines("done after ")[0].find("= "), std::string::npos);
  EXPECT_EQ(R.Stats.Trapped, 1u);
}

TEST(Serve, BoundedAdmissionShedsInsteadOfBlocking) {
  // One slow worker, capacity 1: the burst must produce rejects, and
  // accepted + rejected must account for every job line. Every accepted
  // job still gets exactly one done line.
  ServeOptions Opts;
  Opts.Workers = 1;
  Opts.QueueCap = 1;
  std::string Input;
  for (int I = 0; I < 32; ++I)
    Input += "ostrich/crc tier=int id=j" + std::to_string(I) + "\n";
  ServeRun R = serveOn(Input, Opts);
  EXPECT_EQ(R.Stats.Accepted + R.Stats.Rejected, 32u);
  EXPECT_GT(R.Stats.Rejected, 0u);
  EXPECT_EQ(R.lines("done ").size(), R.Stats.Accepted);
  for (const std::string &L : R.lines("reject "))
    EXPECT_NE(L.find("queue-full"), std::string::npos);
}

TEST(Serve, FaultInjectionKeepsReportingExactlyOnce) {
  // Deterministic chaos: tiny fuel budgets, allocation failures and
  // concurrent cancels land on ~3/8 of jobs; whatever happens, every
  // accepted job reports exactly once and the session drains cleanly.
  ServeOptions Opts;
  Opts.Workers = 4;
  Opts.QueueCap = 64;
  Opts.FaultSeed = 0xfeedface;
  std::string Input;
  for (int I = 0; I < 48; ++I)
    Input += "ostrich/crc tier=spc id=f" + std::to_string(I) + "\n";
  ServeRun R = serveOn(Input, Opts);
  EXPECT_EQ(R.Stats.Accepted, 48u);
  EXPECT_EQ(R.lines("done ").size(), 48u);
  for (int I = 0; I < 48; ++I)
    EXPECT_EQ(R.lines("done f" + std::to_string(I) + " ").size(), 1u);
  EXPECT_GT(R.Stats.Faults, 0u);
  // With 48 jobs and ~1/8 tiny-fuel faults the odds that none trapped
  // are negligible — and a trap must never be double-reported.
  EXPECT_EQ(R.Stats.Done + R.Stats.Trapped + R.Stats.Errors, 48u);
}

TEST(Serve, DrainsInFlightJobsOnEofUnderLoad) {
  // Drain-under-load: a writer feeds jobs through a real pipe and closes
  // it mid-stream (the in-process analogue of SIGTERM); every job that
  // was accepted before EOF must still be reported exactly once.
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);
  FILE *In = fdopen(Fds[0], "r");
  ASSERT_NE(In, nullptr);
  char *Buf = nullptr;
  size_t Len = 0;
  FILE *Out = open_memstream(&Buf, &Len);

  std::thread Writer([W = Fds[1]] {
    for (int I = 0; I < 24; ++I) {
      std::string Line = "ostrich/crc tier=int id=d" + std::to_string(I) + "\n";
      ssize_t N = write(W, Line.data(), Line.size());
      (void)N;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    close(W); // EOF with jobs still queued and running.
  });

  ServeOptions Opts;
  Opts.Workers = 2;
  Opts.QueueCap = 64;
  ServeStats Stats = runServe(In, Out, Opts);
  Writer.join();
  fclose(In);
  fclose(Out);
  ServeRun R;
  R.Stats = Stats;
  R.Out.assign(Buf, Len);
  free(Buf);

  EXPECT_EQ(R.Stats.Accepted, 24u);
  EXPECT_EQ(R.lines("done ").size(), 24u);
  for (int I = 0; I < 24; ++I)
    EXPECT_EQ(R.lines("done d" + std::to_string(I) + " ").size(), 1u);
}

} // namespace
