# tests/cli_errors.cmake - ctest for wisp CLI error paths.
#
# Exercises the failure modes cli_smoke skips: malformed flag values,
# --tier/--config conflicts, unknown tiers/configs/monitors, nonexistent
# modules and exports, and out-of-range argument parsing. Invoked as:
#   cmake -DWISP_BIN=<path-to-wisp> -P cli_errors.cmake

if(NOT WISP_BIN)
  message(FATAL_ERROR "pass -DWISP_BIN=<path to the wisp binary>")
endif()

# expect_fail(<name> <stderr-regex> <arg...>): the command must exit
# nonzero and print a diagnostic matching the regex on stderr.
function(expect_fail name pattern)
  execute_process(
    COMMAND ${WISP_BIN} ${ARGN}
    OUTPUT_QUIET
    ERROR_VARIABLE ERR
    RESULT_VARIABLE RC)
  if(RC EQUAL 0)
    message(FATAL_ERROR "${name}: expected failure but exited 0")
  endif()
  if(NOT ERR MATCHES "${pattern}")
    message(FATAL_ERROR
      "${name}: diagnostic does not match '${pattern}':\n${ERR}")
  endif()
endfunction()

# --- Malformed flag values ---
expect_fail(bad-scale-zero "bad --scale value" --scale=0 nop)
expect_fail(bad-scale-text "bad --scale value" --scale=abc nop)
# The checked parser rejects what raw atoi silently mangled: trailing
# junk, negatives (atoi would wrap or truncate), and overflow past the
# 2^20 iteration cap.
expect_fail(bad-scale-junk "bad --scale value" --scale=3x nop)
expect_fail(bad-scale-negative "bad --scale value" --scale=-1 nop)
expect_fail(bad-scale-overflow "bad --scale value"
            --scale=99999999999999999999 nop)
expect_fail(bad-scale-toolarge "bad --scale value" --scale=1048577 nop)
expect_fail(unknown-option "unknown option" --frobnicate nop)
expect_fail(unknown-tier "unknown tier" --tier=warp nop)
expect_fail(unknown-config "unknown config" --config=nonesuch nop)
expect_fail(unknown-monitor "unknown monitor" --monitor=heat nop)
expect_fail(unknown-opcode "unknown opcode mnemonic"
            --monitor=count:i99.frob nop)

# --- --tier / --config conflict ---
expect_fail(tier-config-conflict "mutually exclusive"
            --tier=int --config=wizard-spc nop)

# --- Malformed compile-cache flags: the toggle takes no value, and there
# --- is no positive spelling (the cache is the default) ---
expect_fail(cache-flag-value "unknown option" --no-compile-cache=1 nop)
expect_fail(cache-flag-value-yes "unknown option" --no-compile-cache=yes nop)
expect_fail(cache-flag-positive "unknown option" --compile-cache nop)
# The valid spelling works in both single-module and batch mode (the
# cache-vs-no-cache report equivalence itself is cli_batch's job).
execute_process(
  COMMAND ${WISP_BIN} --no-compile-cache --tier=spc nop
  OUTPUT_VARIABLE OUT RESULT_VARIABLE RC)
if(NOT RC EQUAL 0 OR NOT OUT MATCHES "run\\(\\) = ")
  message(FATAL_ERROR "--no-compile-cache single-module run failed (rc=${RC}): ${OUT}")
endif()

# --- Disk-cache flags: --cache-dir needs a value, the off toggle takes
# --- none, and a valid directory composes with a normal run ---
expect_fail(cache-dir-empty "bad --cache-dir value" --cache-dir= nop)
expect_fail(cache-dir-novalue "unknown option" --cache-dir nop)
expect_fail(disk-flag-value "unknown option" --no-disk-cache=1 nop)
expect_fail(disk-flag-positive "unknown option" --disk-cache nop)
set(DISK_DIR ${CMAKE_CURRENT_BINARY_DIR}/cli_errors_diskcache)
file(REMOVE_RECURSE ${DISK_DIR})
execute_process(
  COMMAND ${WISP_BIN} --tier=spc --cache-dir=${DISK_DIR} nop
  OUTPUT_VARIABLE OUT RESULT_VARIABLE RC)
if(NOT RC EQUAL 0 OR NOT OUT MATCHES "run\\(\\) = ")
  message(FATAL_ERROR "--cache-dir single-module run failed (rc=${RC}): ${OUT}")
endif()
file(GLOB DISK_FILES ${DISK_DIR}/*.wac)
if(NOT DISK_FILES)
  message(FATAL_ERROR "--cache-dir run published no artifacts in ${DISK_DIR}")
endif()
# --no-disk-cache wins over --cache-dir: nothing new may be written.
file(REMOVE_RECURSE ${DISK_DIR})
execute_process(
  COMMAND ${WISP_BIN} --tier=spc --cache-dir=${DISK_DIR} --no-disk-cache nop
  OUTPUT_VARIABLE OUT RESULT_VARIABLE RC)
if(NOT RC EQUAL 0 OR NOT OUT MATCHES "run\\(\\) = ")
  message(FATAL_ERROR "--no-disk-cache override failed (rc=${RC}): ${OUT}")
endif()
file(GLOB DISK_FILES ${DISK_DIR}/*.wac)
if(DISK_FILES)
  message(FATAL_ERROR "--no-disk-cache still wrote artifacts: ${DISK_FILES}")
endif()
file(REMOVE_RECURSE ${DISK_DIR})

# --- --batch vs. single-module flags (per-job settings belong in the
# --- manifest) and --jobs validation ---
expect_fail(batch-tier-conflict "mutually exclusive.*--tier"
            --batch=m.txt --tier=int)
expect_fail(batch-config-conflict "mutually exclusive.*--config"
            --batch=m.txt --config=wizard-spc)
expect_fail(batch-invoke-conflict "mutually exclusive.*--invoke"
            --batch=m.txt --invoke=gcd)
expect_fail(batch-scale-conflict "mutually exclusive.*--scale"
            --batch=m.txt --scale=2)
expect_fail(batch-m0-conflict "mutually exclusive.*--m0"
            --batch=m.txt --m0)
expect_fail(batch-monitor-conflict "mutually exclusive.*--monitor"
            --batch=m.txt --monitor=branches)
expect_fail(batch-module-conflict "mutually exclusive.*<module>"
            --batch=m.txt nop)
expect_fail(batch-time-conflict "mutually exclusive.*--time"
            --batch=m.txt --time)
expect_fail(jobs-without-batch "--jobs requires --batch" --jobs=4 nop)
expect_fail(bad-jobs-zero "bad --jobs value" --batch=m.txt --jobs=0)
expect_fail(bad-jobs-text "bad --jobs value" --batch=m.txt --jobs=abc)
# --config alone must still work.
execute_process(
  COMMAND ${WISP_BIN} --config=wizard-spc nop
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0 OR NOT OUT MATCHES "run\\(\\) = ")
  message(FATAL_ERROR "--config alone failed (rc=${RC}): ${OUT}")
endif()

# --- --verify / --audit flag conflicts ---
# Audit replaces execution, so every execution-shaping flag conflicts;
# batch jobs configure per-job settings in the manifest, so neither flag
# is allowed there. Both flags take no value.
expect_fail(audit-tier-conflict "mutually exclusive.*--tier"
            --audit --tier=spc nop)
expect_fail(audit-config-conflict "mutually exclusive.*--config"
            --audit --config=wizard-spc nop)
expect_fail(audit-invoke-conflict "mutually exclusive.*--invoke"
            --audit --invoke=run nop)
expect_fail(audit-monitor-conflict "mutually exclusive.*--monitor"
            --audit --monitor=branches nop)
expect_fail(audit-verify-conflict "mutually exclusive.*--verify"
            --audit --verify nop)
expect_fail(audit-time-conflict "mutually exclusive.*--time"
            --audit --time nop)
expect_fail(audit-no-module "no module given" --audit)
expect_fail(batch-verify-conflict "mutually exclusive.*--verify"
            --batch=m.txt --verify)
expect_fail(batch-audit-conflict "mutually exclusive.*--audit"
            --batch=m.txt --audit)
expect_fail(verify-flag-value "unknown option" --verify=1 nop)
expect_fail(audit-flag-value "unknown option" --audit=1 nop)

# --- --analyze conflict matrix: analysis never runs the module, so every
# --- execution flag conflicts; --batch/--serve own their own flag sets
# --- (their matrices fire first); --audit is the other static mode.
# --- --tier/--config are deliberately accepted (cli_smoke asserts the
# --- report is identical across tiers).
expect_fail(analyze-audit-conflict "mutually exclusive.*--audit"
            --analyze --audit nop)
expect_fail(analyze-invoke-conflict "mutually exclusive.*--invoke"
            --analyze --invoke=run nop)
expect_fail(analyze-monitor-conflict "mutually exclusive.*--monitor"
            --analyze --monitor=branches nop)
expect_fail(analyze-verify-conflict "mutually exclusive.*--verify"
            --analyze --verify nop)
expect_fail(analyze-time-conflict "mutually exclusive.*--time"
            --analyze --time nop)
expect_fail(analyze-stats-conflict "mutually exclusive.*--stats"
            --analyze --stats nop)
expect_fail(analyze-fuel-conflict "mutually exclusive.*--fuel"
            --analyze --fuel=100 nop)
expect_fail(analyze-depth-conflict "mutually exclusive.*--max-call-depth"
            --analyze --max-call-depth=64 nop)
expect_fail(batch-analyze-conflict "mutually exclusive.*--analyze"
            --batch=m.txt --analyze)
expect_fail(serve-analyze-conflict "mutually exclusive.*--analyze"
            --serve --analyze)
expect_fail(analyze-no-module "no module given" --analyze)
expect_fail(analyze-flag-value "unknown option" --analyze=1 nop)
# --json is a report format, not a mode of its own.
expect_fail(json-without-mode "--json requires --analyze or --audit"
            --json nop)
expect_fail(batch-json-conflict "mutually exclusive.*--json"
            --batch=m.txt --json)
expect_fail(serve-json-conflict "mutually exclusive.*--json"
            --serve --json)
# --no-static-precheck governs batch/serve admission only.
expect_fail(precheck-without-mode
            "--no-static-precheck requires --batch or --serve"
            --no-static-precheck nop)
expect_fail(precheck-flag-value "unknown option" --no-static-precheck=1 nop)
# --verify itself composes with a normal run.
execute_process(
  COMMAND ${WISP_BIN} --verify --tier=spc nop
  OUTPUT_VARIABLE OUT RESULT_VARIABLE RC)
if(NOT RC EQUAL 0 OR NOT OUT MATCHES "run\\(\\) = ")
  message(FATAL_ERROR "--verify single-module run failed (rc=${RC}): ${OUT}")
endif()

# --- Execution-governance flags: value validation, mode conflicts, and
# --- the trap exit path ---
expect_fail(bad-fuel-zero "bad --fuel value" --fuel=0 nop)
expect_fail(bad-fuel-text "bad --fuel value" --fuel=lots nop)
expect_fail(bad-fuel-junk "bad --fuel value" --fuel=100k nop)
expect_fail(bad-fuel-negative "bad --fuel value" --fuel=-5 nop)
expect_fail(bad-fuel-overflow "bad --fuel value"
            --fuel=99999999999999999999 nop)
expect_fail(bad-deadline-zero "bad --deadline-ms value" --deadline-ms=0 nop)
expect_fail(bad-deadline-huge "bad --deadline-ms value"
            --deadline-ms=9999999999 nop)
expect_fail(bad-deadline-text "bad --deadline-ms value"
            --deadline-ms=soon nop)
expect_fail(bad-depth-zero "bad --max-call-depth value"
            --max-call-depth=0 nop)
expect_fail(bad-pages-zero "bad --max-pages value" --max-pages=0 nop)
expect_fail(bad-pages-huge "bad --max-pages value" --max-pages=65537 nop)
expect_fail(bad-table-elems "bad --max-table-elems value"
            --max-table-elems=0 nop)
expect_fail(bad-queue-cap "bad --queue-cap value" --queue-cap=0)
expect_fail(queue-cap-without-serve "--queue-cap requires --serve"
            --queue-cap=8 nop)
expect_fail(batch-fuel-conflict "mutually exclusive.*--fuel"
            --batch=m.txt --fuel=100)
expect_fail(batch-deadline-conflict "mutually exclusive.*--deadline-ms"
            --batch=m.txt --deadline-ms=100)
expect_fail(batch-serve-conflict "mutually exclusive.*--serve"
            --batch=m.txt --serve)
expect_fail(audit-fuel-conflict "mutually exclusive.*--fuel"
            --audit --fuel=100 nop)
expect_fail(serve-tier-conflict "mutually exclusive.*--tier"
            --serve --tier=int)
expect_fail(serve-module-conflict "mutually exclusive.*<module>"
            --serve nop)
expect_fail(serve-stats-conflict "mutually exclusive.*--stats"
            --serve --stats)
expect_fail(serve-flag-value "unknown option" --serve=1 nop)
# A metered run that exhausts its budget exits through the trap path (3),
# with the fuel trap on stderr.
execute_process(
  COMMAND ${WISP_BIN} --tier=spc --fuel=5 ostrich/crc
  OUTPUT_QUIET ERROR_VARIABLE ERR RESULT_VARIABLE RC)
if(NOT RC EQUAL 3 OR NOT ERR MATCHES "trap: fuel exhausted")
  message(FATAL_ERROR "--fuel=5 run should trap (rc=${RC}): ${ERR}")
endif()
# A roomy budget composes with a normal run.
execute_process(
  COMMAND ${WISP_BIN} --tier=spc --fuel=100000000 --deadline-ms=60000
          --max-call-depth=1000 --max-pages=256 nop
  OUTPUT_VARIABLE OUT RESULT_VARIABLE RC)
if(NOT RC EQUAL 0 OR NOT OUT MATCHES "run\\(\\) = ")
  message(FATAL_ERROR "governed single-module run failed (rc=${RC}): ${OUT}")
endif()

# --- Serve mode end to end: accepted jobs answer exactly once, malformed
# --- job lines reject, `shutdown` drains. Driven through stdin via a
# --- manifest-like input file.
set(SERVE_IN ${CMAKE_CURRENT_BINARY_DIR}/cli_errors_serve_in.txt)
file(WRITE ${SERVE_IN}
  "nop tier=spc id=a\n"
  "nop frobnicate=1\n"
  "ostrich/crc tier=spc fuel=5 id=metered\n"
  "shutdown\n"
  "nop tier=spc id=never\n")
execute_process(
  COMMAND ${WISP_BIN} --serve --jobs=2
  INPUT_FILE ${SERVE_IN}
  OUTPUT_VARIABLE OUT RESULT_VARIABLE RC)
file(REMOVE ${SERVE_IN})
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "serve session failed (rc=${RC}): ${OUT}")
endif()
if(NOT OUT MATCHES "done a = <void>")
  message(FATAL_ERROR "serve: missing done line for job a: ${OUT}")
endif()
if(NOT OUT MATCHES "reject - parse: .*unknown key")
  message(FATAL_ERROR "serve: malformed line not rejected: ${OUT}")
endif()
if(NOT OUT MATCHES "done metered trap: fuel exhausted")
  message(FATAL_ERROR "serve: metered job did not trap: ${OUT}")
endif()
if(OUT MATCHES "done never")
  message(FATAL_ERROR "serve: job after shutdown was admitted: ${OUT}")
endif()
if(NOT OUT MATCHES "# serve: drained, 2 accepted, 1 rejected")
  message(FATAL_ERROR "serve: summary mismatch: ${OUT}")
endif()

# --- Module and export resolution ---
expect_fail(no-module "no module given" --tier=spc)
expect_fail(missing-module "cannot resolve module" /no/such/file.wasm)
expect_fail(unknown-export "no exported function" --invoke=nonesuch nop)

# --- Out-of-range argument parsing, against the corpus gcd reproducer's
# --- (i32, i32) signature so parsing (not arity) is what fails.
if(NOT WISP_CORPUS)
  message(FATAL_ERROR "pass -DWISP_CORPUS=<path to tests/corpus>")
endif()
set(GCD ${WISP_CORPUS}/alias-gcd.wasm)
# i32 overflow: one past UINT32_MAX must be rejected, not truncated.
expect_fail(i32-overflow "cannot parse argument"
            --tier=spc --invoke=gcd ${GCD} 4294967296 1)
# Signed underflow below INT32_MIN.
expect_fail(i32-underflow "cannot parse argument"
            --tier=spc --invoke=gcd ${GCD} -2147483649 1)
# Trailing junk after a number.
expect_fail(arg-junk "cannot parse argument"
            --tier=spc --invoke=gcd ${GCD} 12x 1)
# Arity mismatch in both directions.
expect_fail(too-many-args "takes" --tier=spc nop 1 2)
expect_fail(too-few-args "takes" --tier=spc --invoke=gcd ${GCD} 3528)
# The full-range boundary values themselves must parse and run.
execute_process(
  COMMAND ${WISP_BIN} --tier=spc --invoke=gcd ${GCD} 3528 3780
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0 OR NOT OUT MATCHES "= 252:i32")
  message(FATAL_ERROR "gcd(3528, 3780) run failed (rc=${RC}): ${OUT}")
endif()

message(STATUS "cli_errors: all error paths diagnosed correctly")
