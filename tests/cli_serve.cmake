# tests/cli_serve.cmake - ctest for the serve-mode static admission precheck.
#
# End-to-end: a job whose static bounds provably exceed the session caps
# (tests/data/must-recurse.wasm recurses unconditionally, so any finite
# --max-call-depth is guaranteed to be exhausted) is shed at admission with
# exactly one `reject <id> static-bounds: ...` line; the same job under
# --no-static-precheck is admitted and runs to the governed StackOverflow
# trap; and well-bounded jobs are admitted either way. Invoked as:
#   cmake -DWISP_BIN=<wisp> -DWISP_WORKDIR=<dir> -P cli_serve.cmake

if(NOT WISP_BIN)
  message(FATAL_ERROR "pass -DWISP_BIN=<path to the wisp binary>")
endif()
if(NOT WISP_WORKDIR)
  message(FATAL_ERROR "pass -DWISP_WORKDIR=<scratch directory>")
endif()

get_filename_component(HERE ${CMAKE_SCRIPT_MODE_FILE} DIRECTORY)
set(RECURSE ${HERE}/data/must-recurse.wasm)
if(NOT EXISTS ${RECURSE})
  message(FATAL_ERROR "missing fixture ${RECURSE}")
endif()

function(run_serve outvar infile)
  execute_process(
    COMMAND ${WISP_BIN} --serve --jobs=2 ${ARGN}
    INPUT_FILE ${infile}
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "serve session failed (rc=${RC}):\n${OUT}${ERR}")
  endif()
  set(${outvar} "${OUT}" PARENT_SCOPE)
endfunction()

# --- Precheck on (the default): the doomed job is rejected at admission,
# --- exactly once, and never reaches a worker; its well-behaved neighbors
# --- are unaffected. The id is echoed on the reject line.
set(SERVE_IN ${WISP_WORKDIR}/cli_serve_in.txt)
file(WRITE ${SERVE_IN}
  "nop tier=spc id=before\n"
  "${RECURSE} tier=spc id=doomed\n"
  "${RECURSE} tier=spc id=doomed2\n"
  "nop tier=spc id=after\n"
  "shutdown\n")
run_serve(OUT ${SERVE_IN} --max-call-depth=64)
if(NOT OUT MATCHES "done before = <void>")
  message(FATAL_ERROR "precheck: job before not answered: ${OUT}")
endif()
if(NOT OUT MATCHES "reject doomed static-bounds: .*recurses")
  message(FATAL_ERROR "precheck: doomed job not rejected: ${OUT}")
endif()
# Memoized second decision, same answer under its own id.
if(NOT OUT MATCHES "reject doomed2 static-bounds:")
  message(FATAL_ERROR "precheck: second doomed job not rejected: ${OUT}")
endif()
if(OUT MATCHES "done doomed")
  message(FATAL_ERROR "precheck: rejected job also reported done: ${OUT}")
endif()
if(NOT OUT MATCHES "done after = <void>")
  message(FATAL_ERROR "precheck: job after not answered: ${OUT}")
endif()
# Exactly-once: one reject line per doomed job, 2 accepted / 2 rejected.
string(REGEX MATCHALL "reject [^\n]*" REJECTS "${OUT}")
list(LENGTH REJECTS NREJECTS)
if(NOT NREJECTS EQUAL 2)
  message(FATAL_ERROR "precheck: expected 2 reject lines, got ${NREJECTS}: ${OUT}")
endif()
if(NOT OUT MATCHES "# serve: drained, 2 accepted, 2 rejected")
  message(FATAL_ERROR "precheck: summary mismatch: ${OUT}")
endif()

# --- The default engine cap (4096 frames) also rejects an unconditionally
# --- recursive entry point: no finite cap admits it.
set(SERVE_IN2 ${WISP_WORKDIR}/cli_serve_in2.txt)
file(WRITE ${SERVE_IN2}
  "${RECURSE} tier=spc id=doomed\n"
  "shutdown\n")
run_serve(OUT_NOCAP ${SERVE_IN2})
if(NOT OUT_NOCAP MATCHES "reject doomed static-bounds:")
  message(FATAL_ERROR "default-cap precheck did not reject: ${OUT_NOCAP}")
endif()

# --- Escape hatch: --no-static-precheck admits the same job, which runs
# --- to the governed trap and is reported exactly once as a done line.
run_serve(OUT_OFF ${SERVE_IN} --max-call-depth=64 --no-static-precheck)
if(NOT OUT_OFF MATCHES "done doomed trap: call stack exhausted")
  message(FATAL_ERROR
    "--no-static-precheck: doomed job did not run to the trap: ${OUT_OFF}")
endif()
if(OUT_OFF MATCHES "reject doomed")
  message(FATAL_ERROR "--no-static-precheck: job still rejected: ${OUT_OFF}")
endif()
if(NOT OUT_OFF MATCHES "# serve: drained, 4 accepted, 0 rejected")
  message(FATAL_ERROR "--no-static-precheck: summary mismatch: ${OUT_OFF}")
endif()

# --- Batch mode shares the precheck: the doomed job is answered with a
# --- static-bounds error at admission (batch runs with engine defaults),
# --- and --no-static-precheck runs it to the StackOverflow trap instead.
set(MANIFEST ${WISP_WORKDIR}/cli_serve_batch.txt)
file(WRITE ${MANIFEST}
  "nop tier=spc\n"
  "${RECURSE} tier=spc\n")
execute_process(
  COMMAND ${WISP_BIN} --batch=${MANIFEST}
  OUTPUT_VARIABLE BOUT ERROR_VARIABLE BERR RESULT_VARIABLE BRC)
if(BRC EQUAL 0)
  message(FATAL_ERROR "batch precheck: static-bounds error should fail the "
                      "batch (rc=${BRC}): ${BOUT}${BERR}")
endif()
if(NOT BOUT MATCHES "static-bounds: .*recurses")
  message(FATAL_ERROR "batch precheck: no static-bounds job line: ${BOUT}")
endif()
execute_process(
  COMMAND ${WISP_BIN} --batch=${MANIFEST} --no-static-precheck
  OUTPUT_VARIABLE BOUT2 RESULT_VARIABLE BRC2)
if(NOT BOUT2 MATCHES "trap: call stack exhausted")
  message(FATAL_ERROR
    "batch --no-static-precheck: doomed job did not trap: ${BOUT2}")
endif()
if(BOUT2 MATCHES "static-bounds")
  message(FATAL_ERROR
    "batch --no-static-precheck: job still prechecked: ${BOUT2}")
endif()

file(REMOVE ${SERVE_IN} ${SERVE_IN2} ${MANIFEST})
message(STATUS "cli_serve: static admission precheck verified end to end")
