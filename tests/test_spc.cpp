//===- tests/test_spc.cpp - single-pass compiler tests ---------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "testutil.h"

#include "fuzz/randwasm.h"

#include <gtest/gtest.h>

using namespace wisp;

namespace {

template <typename BodyFn>
InterpFixture makeFunc(std::vector<ValType> Params, std::vector<ValType> Rets,
                       BodyFn Body, bool WithMemory = false) {
  ModuleBuilder MB;
  if (WithMemory)
    MB.addMemory(1);
  uint32_t T = MB.addType(std::move(Params), std::move(Rets));
  FuncBuilder &F = MB.addFunc(T);
  Body(F, MB);
  MB.exportFunc("f", MB.funcIndex(F));
  return InterpFixture(MB);
}

TEST(Spc, CompilesSimpleAdd) {
  auto Fx = makeFunc({ValType::I32, ValType::I32}, {ValType::I32},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       F.localGet(0);
                       F.localGet(1);
                       F.op(Opcode::I32Add);
                     });
  ASSERT_TRUE(Fx.ok());
  Fx.jitAll(CompilerOptions::allopt());
  EXPECT_EQ(Fx.callJit("f", {Value::makeI32(2), Value::makeI32(40)}).one(),
            Value::makeI32(42));
}

TEST(Spc, ConstantFoldingEmitsNoArithmetic) {
  auto Fx = makeFunc({}, {ValType::I32}, [](FuncBuilder &F, ModuleBuilder &) {
    F.i32Const(6);
    F.i32Const(7);
    F.op(Opcode::I32Mul);
  });
  ASSERT_TRUE(Fx.ok());
  Fx.jitAll(CompilerOptions::allopt());
  EXPECT_EQ(Fx.callJit("f", {}).one(), Value::makeI32(42));
  // The whole body folds to a constant store: no Mul32 instruction.
  for (const MInst &I : Fx.Codes[0]->Insts)
    EXPECT_NE(I.Op, MOp::Mul32);
}

TEST(Spc, ImmediateSelection) {
  auto Fx = makeFunc({ValType::I32}, {ValType::I32},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       F.localGet(0);
                       F.i32Const(5);
                       F.op(Opcode::I32Add);
                     });
  ASSERT_TRUE(Fx.ok());
  Fx.jitAll(CompilerOptions::allopt());
  bool SawAddI = false, SawAdd = false;
  for (const MInst &I : Fx.Codes[0]->Insts) {
    SawAddI |= I.Op == MOp::AddI32;
    SawAdd |= I.Op == MOp::Add32;
  }
  EXPECT_TRUE(SawAddI);
  EXPECT_FALSE(SawAdd);
  EXPECT_EQ(Fx.callJit("f", {Value::makeI32(37)}).one(), Value::makeI32(42));
}

TEST(Spc, NoIselUsesRegisterForm) {
  auto Fx = makeFunc({ValType::I32}, {ValType::I32},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       F.localGet(0);
                       F.i32Const(5);
                       F.op(Opcode::I32Add);
                     });
  ASSERT_TRUE(Fx.ok());
  Fx.jitAll(CompilerOptions::noisel());
  bool SawAddI = false;
  for (const MInst &I : Fx.Codes[0]->Insts)
    SawAddI |= I.Op == MOp::AddI32;
  EXPECT_FALSE(SawAddI);
  EXPECT_EQ(Fx.callJit("f", {Value::makeI32(37)}).one(), Value::makeI32(42));
}

TEST(Spc, MulByPowerOfTwoBecomesShift) {
  auto Fx = makeFunc({ValType::I32}, {ValType::I32},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       F.localGet(0);
                       F.i32Const(8);
                       F.op(Opcode::I32Mul);
                     });
  ASSERT_TRUE(Fx.ok());
  Fx.jitAll(CompilerOptions::allopt());
  bool SawShl = false, SawMul = false;
  for (const MInst &I : Fx.Codes[0]->Insts) {
    SawShl |= I.Op == MOp::ShlI32;
    SawMul |= I.Op == MOp::Mul32 || I.Op == MOp::MulI32;
  }
  EXPECT_TRUE(SawShl);
  EXPECT_FALSE(SawMul);
  EXPECT_EQ(Fx.callJit("f", {Value::makeI32(5)}).one(), Value::makeI32(40));
}

TEST(Spc, BranchFoldingRemovesDeadArm) {
  auto Fx = makeFunc({}, {ValType::I32}, [](FuncBuilder &F, ModuleBuilder &) {
    F.i32Const(1);
    F.ifOp(BlockType::oneResult(ValType::I32));
    F.i32Const(10);
    F.elseOp();
    F.i32Const(20);
    F.f64Const(3.0); // Dead arm contains extra code.
    F.drop();
    F.end();
  });
  ASSERT_TRUE(Fx.ok());
  Fx.jitAll(CompilerOptions::allopt());
  EXPECT_EQ(Fx.callJit("f", {}).one(), Value::makeI32(10));
  // No conditional branch should remain.
  for (const MInst &I : Fx.Codes[0]->Insts) {
    EXPECT_NE(I.Op, MOp::JmpIfZ);
    EXPECT_NE(I.Op, MOp::BrCmp32);
  }
}

TEST(Spc, CmpBranchFusion) {
  auto Fx = makeFunc({ValType::I32}, {ValType::I32},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       F.block();
                       F.localGet(0);
                       F.i32Const(10);
                       F.op(Opcode::I32LtS);
                       F.brIf(0);
                       F.i32Const(1);
                       F.ret();
                       F.end();
                       F.i32Const(2);
                     });
  ASSERT_TRUE(Fx.ok());
  Fx.jitAll(CompilerOptions::allopt());
  bool SawFused = false, SawCmpSet = false;
  for (const MInst &I : Fx.Codes[0]->Insts) {
    SawFused |= I.Op == MOp::BrCmpI32 || I.Op == MOp::BrCmp32;
    SawCmpSet |= I.Op == MOp::CmpSet32 || I.Op == MOp::CmpSetI32;
  }
  EXPECT_TRUE(SawFused);
  EXPECT_FALSE(SawCmpSet);
  EXPECT_EQ(Fx.callJit("f", {Value::makeI32(5)}).one(), Value::makeI32(2));
  EXPECT_EQ(Fx.callJit("f", {Value::makeI32(50)}).one(), Value::makeI32(1));
}

TEST(Spc, LoopSumMatchesInterp) {
  auto Body = [](FuncBuilder &F, ModuleBuilder &) {
    uint32_t Sum = F.addLocal(ValType::I32);
    F.block();
    F.localGet(0);
    F.op(Opcode::I32Eqz);
    F.brIf(0);
    F.loop();
    F.localGet(Sum);
    F.localGet(0);
    F.op(Opcode::I32Add);
    F.localSet(Sum);
    F.localGet(0);
    F.i32Const(1);
    F.op(Opcode::I32Sub);
    F.localTee(0);
    F.brIf(0);
    F.end();
    F.end();
    F.localGet(Sum);
  };
  auto Fx = makeFunc({ValType::I32}, {ValType::I32}, Body);
  ASSERT_TRUE(Fx.ok());
  InvokeResult Ref = Fx.call("f", {Value::makeI32(1000)});
  Fx.jitAll(CompilerOptions::allopt());
  InvokeResult Jit = Fx.callJit("f", {Value::makeI32(1000)});
  EXPECT_EQ(Ref.one(), Jit.one());
  EXPECT_EQ(Jit.one(), Value::makeI32(500500));
}

TEST(Spc, CallsAcrossJitFunctions) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T); // fib
  F.localGet(0);
  F.i32Const(2);
  F.op(Opcode::I32LtS);
  F.ifOp(BlockType::oneResult(ValType::I32));
  F.localGet(0);
  F.elseOp();
  F.localGet(0);
  F.i32Const(1);
  F.op(Opcode::I32Sub);
  F.call(0);
  F.localGet(0);
  F.i32Const(2);
  F.op(Opcode::I32Sub);
  F.call(0);
  F.op(Opcode::I32Add);
  F.end();
  MB.exportFunc("f", MB.funcIndex(F));
  InterpFixture Fx(MB);
  ASSERT_TRUE(Fx.ok());
  Fx.jitAll(CompilerOptions::allopt());
  EXPECT_EQ(Fx.callJit("f", {Value::makeI32(15)}).one(), Value::makeI32(610));
}

TEST(Spc, MixedTierCalls) {
  // Caller JIT, callee interpreter, and vice versa.
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &Callee = MB.addFunc(T);
  Callee.localGet(0);
  Callee.i32Const(3);
  Callee.op(Opcode::I32Mul);
  FuncBuilder &Caller = MB.addFunc(T);
  Caller.localGet(0);
  Caller.call(MB.funcIndex(Callee));
  Caller.i32Const(1);
  Caller.op(Opcode::I32Add);
  MB.exportFunc("callee", MB.funcIndex(Callee));
  MB.exportFunc("caller", MB.funcIndex(Caller));
  InterpFixture Fx(MB);
  ASSERT_TRUE(Fx.ok());
  // Compile only the caller.
  FuncInstance *CallerFi = Fx.Inst->findExportedFunc("caller");
  Fx.Codes.push_back(
      compileFunction(*Fx.M, *CallerFi->Decl, CompilerOptions::allopt()));
  CallerFi->Code = Fx.Codes.back().get();
  CallerFi->UseJit = true;
  EXPECT_EQ(Fx.callJit("caller", {Value::makeI32(5)}).one(),
            Value::makeI32(16));
  // Now compile only the callee instead.
  CallerFi->UseJit = false;
  FuncInstance *CalleeFi = Fx.Inst->findExportedFunc("callee");
  Fx.Codes.push_back(
      compileFunction(*Fx.M, *CalleeFi->Decl, CompilerOptions::allopt()));
  CalleeFi->Code = Fx.Codes.back().get();
  CalleeFi->UseJit = true;
  EXPECT_EQ(Fx.callJit("caller", {Value::makeI32(5)}).one(),
            Value::makeI32(16));
}

TEST(Spc, TrapsMatchInterp) {
  auto Body = [](FuncBuilder &F, ModuleBuilder &) {
    F.localGet(0);
    F.localGet(1);
    F.op(Opcode::I32DivS);
  };
  auto Fx = makeFunc({ValType::I32, ValType::I32}, {ValType::I32}, Body);
  ASSERT_TRUE(Fx.ok());
  Fx.jitAll(CompilerOptions::allopt());
  EXPECT_EQ(Fx.callJit("f", {Value::makeI32(1), Value::makeI32(0)}).Trap,
            TrapReason::DivByZero);
  EXPECT_EQ(
      Fx.callJit("f", {Value::makeI32(INT32_MIN), Value::makeI32(-1)}).Trap,
      TrapReason::IntOverflow);
}

TEST(Spc, StackMapsRecordedAtCalls) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {});
  FuncBuilder &Callee = MB.addFunc(T);
  Callee.op(Opcode::Nop);
  uint32_t RefT = MB.addType({ValType::ExternRef}, {ValType::ExternRef});
  FuncBuilder &F = MB.addFunc(RefT);
  F.localGet(0);
  F.call(MB.funcIndex(Callee));
  MB.exportFunc("f", MB.funcIndex(F));
  InterpFixture Fx(MB);
  ASSERT_TRUE(Fx.ok());
  Fx.jitAll(CompilerOptions::withTags(TagMode::StackMap));
  const MCode *Code = Fx.Inst->findExportedFunc("f")->Code;
  ASSERT_EQ(Code->StackMaps.size(), 1u);
  // The externref parameter (slot 0) must be in the map.
  ASSERT_EQ(Code->StackMaps[0].RefSlots.size(), 2u); // param + operand copy
  EXPECT_EQ(Code->StackMaps[0].RefSlots[0], 0u);
  EXPECT_GT(Code->Stats.StackMapBytes, 0u);
}

TEST(Spc, TagModesAffectTagStoreCounts) {
  auto Body = [](FuncBuilder &F, ModuleBuilder &) {
    uint32_t L = F.addLocal(ValType::I32);
    F.localGet(0);
    F.i32Const(1);
    F.op(Opcode::I32Add);
    F.localSet(L);
    F.localGet(L);
  };
  uint64_t Stores[4];
  TagMode Modes[] = {TagMode::None, TagMode::OnDemand, TagMode::Lazy,
                     TagMode::Eager};
  for (int I = 0; I < 4; ++I) {
    auto Fx = makeFunc({ValType::I32}, {ValType::I32}, Body);
    Fx.jitAll(CompilerOptions::withTags(Modes[I]));
    Stores[I] = Fx.Codes[0]->Stats.TagStores;
    EXPECT_EQ(Fx.callJit("f", {Value::makeI32(4)}).one(), Value::makeI32(5));
  }
  EXPECT_EQ(Stores[0], 0u);            // notags
  EXPECT_LE(Stores[1], Stores[3]);     // on-demand <= eager
  EXPECT_LE(Stores[2], Stores[1] + 1); // lazy <= on-demand (no local tags)
  EXPECT_GT(Stores[3], 0u);            // eager stores on every def
}

TEST(Spc, BrTableCompiles) {
  auto Fx = makeFunc({ValType::I32}, {ValType::I32},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       F.block();
                       F.block();
                       F.block();
                       F.localGet(0);
                       F.brTable({0, 1}, 2);
                       F.end();
                       F.i32Const(100);
                       F.ret();
                       F.end();
                       F.i32Const(101);
                       F.ret();
                       F.end();
                       F.i32Const(102);
                     });
  ASSERT_TRUE(Fx.ok());
  Fx.jitAll(CompilerOptions::allopt());
  EXPECT_EQ(Fx.callJit("f", {Value::makeI32(0)}).one(), Value::makeI32(100));
  EXPECT_EQ(Fx.callJit("f", {Value::makeI32(1)}).one(), Value::makeI32(101));
  EXPECT_EQ(Fx.callJit("f", {Value::makeI32(9)}).one(), Value::makeI32(102));
}

TEST(Spc, CallIndirectCompiles) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F1 = MB.addFunc(T);
  F1.localGet(0);
  F1.i32Const(1);
  F1.op(Opcode::I32Add);
  uint32_t Caller = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(Caller);
  F.localGet(1);
  F.localGet(0);
  F.callIndirect(T);
  MB.addTable(2, 2);
  MB.addElem(0, {MB.funcIndex(F1)});
  MB.exportFunc("f", MB.funcIndex(F));
  InterpFixture Fx(MB);
  ASSERT_TRUE(Fx.ok());
  Fx.jitAll(CompilerOptions::allopt());
  EXPECT_EQ(Fx.callJit("f", {Value::makeI32(0), Value::makeI32(7)}).one(),
            Value::makeI32(8));
  EXPECT_EQ(Fx.callJit("f", {Value::makeI32(1), Value::makeI32(7)}).Trap,
            TrapReason::NullFuncRef);
}

// ---------------------------------------------------------------------------
// Differential property tests: every compiler configuration must agree with
// the interpreter on randomly generated programs (result, trap reason, and
// final memory contents).
// ---------------------------------------------------------------------------

struct NamedConfig {
  const char *Name;
  CompilerOptions Opts;
};

std::vector<NamedConfig> allConfigs() {
  return {
      {"allopt", CompilerOptions::allopt()},
      {"nok", CompilerOptions::nok()},
      {"nokfold", CompilerOptions::nokfold()},
      {"noisel", CompilerOptions::noisel()},
      {"nomr", CompilerOptions::nomr()},
      {"nopeep",
       [] {
         CompilerOptions O;
         O.Peephole = false;
         return O;
       }()},
      {"notags", CompilerOptions::withTags(TagMode::None)},
      {"eager", CompilerOptions::withTags(TagMode::Eager)},
      {"eager-l", CompilerOptions::withTags(TagMode::EagerLocals)},
      {"eager-o", CompilerOptions::withTags(TagMode::EagerOperands)},
      {"lazy", CompilerOptions::withTags(TagMode::Lazy)},
      {"stackmap", CompilerOptions::withTags(TagMode::StackMap)},
      {"fewregs",
       [] {
         CompilerOptions O;
         O.NumGp = 4;
         O.NumFp = 4;
         return O;
       }()},
      {"deopt+osr",
       [] {
         CompilerOptions O;
         O.EmitDeoptChecks = true;
         O.EmitOsrEntries = true;
         return O;
       }()},
  };
}

uint64_t hashMemory(const Instance &Inst) {
  uint64_t H = 1469598103934665603ull;
  const uint8_t *D = Inst.Memory.data();
  for (size_t I = 0; I < Inst.Memory.byteSize(); ++I) {
    H ^= D[I];
    H *= 1099511628211ull;
  }
  return H;
}

class SpcDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpcDifferential, MatchesInterpreter) {
  uint64_t Seed = GetParam();
  RandWasm Gen(Seed);
  std::vector<uint8_t> Bytes = Gen.build().toBytes();

  std::vector<Value> Args = {Value::makeI32(int32_t(Seed * 7)),
                             Value::makeI32(int32_t(Seed % 97)),
                             Value::makeF64(double(Seed % 1000) / 3.0),
                             Value::makeF64(-1.5)};

  // Reference run on the interpreter.
  InterpFixture Ref(Bytes);
  ASSERT_TRUE(Ref.ok()) << "seed " << Seed;
  InvokeResult RefOut = Ref.call("f", Args);
  uint64_t RefMem = hashMemory(*Ref.Inst);

  for (const NamedConfig &NC : allConfigs()) {
    InterpFixture Jit(Bytes);
    ASSERT_TRUE(Jit.ok());
    Jit.jitAll(NC.Opts);
    InvokeResult JitOut = Jit.callJit("f", Args);
    ASSERT_EQ(RefOut.Trap, JitOut.Trap)
        << "config " << NC.Name << " seed " << Seed;
    if (RefOut.Trap == TrapReason::None) {
      ASSERT_EQ(RefOut.Results.size(), JitOut.Results.size());
      for (size_t I = 0; I < RefOut.Results.size(); ++I)
        ASSERT_EQ(RefOut.Results[I], JitOut.Results[I])
            << "config " << NC.Name << " seed " << Seed << " result " << I
            << " interp=" << RefOut.Results[I].toString()
            << " jit=" << JitOut.Results[I].toString();
      ASSERT_EQ(RefMem, hashMemory(*Jit.Inst))
          << "config " << NC.Name << " seed " << Seed << " memory differs";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpcDifferential,
                         ::testing::Range(uint64_t(1), uint64_t(120)));

} // namespace
