//===- tests/test_reader.cpp - binary reader round-trip tests --------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "testutil.h"

#include <gtest/gtest.h>

using namespace wisp;

namespace {

TEST(Reader, EmptyModule) {
  ModuleBuilder MB;
  WasmError Err;
  auto M = decodeModule(MB.build(), &Err);
  ASSERT_NE(M, nullptr) << Err.Message;
  EXPECT_TRUE(M->Types.empty());
  EXPECT_TRUE(M->Funcs.empty());
}

TEST(Reader, RejectsBadMagic) {
  expectDecodeError({0x00, 0x61, 0x73, 0x6d, 0x02, 0x00, 0x00, 0x00});
  expectDecodeError({0x01, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00});
  expectDecodeError({0x00, 0x61, 0x73});
}

TEST(Reader, SimpleFunction) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.localGet(1);
  F.op(Opcode::I32Add);
  MB.exportFunc("add", MB.funcIndex(F));

  WasmError Err;
  auto M = decodeModule(MB.build(), &Err);
  ASSERT_NE(M, nullptr) << Err.Message;
  ASSERT_EQ(M->Funcs.size(), 1u);
  ASSERT_EQ(M->Types.size(), 1u);
  EXPECT_EQ(M->Types[0].Params.size(), 2u);
  EXPECT_EQ(M->Types[0].Results.size(), 1u);
  EXPECT_EQ(M->funcType(0).toString(), "[i32 i32] -> [i32]");
  const Export *E = M->findExport("add", ExternKind::Func);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Index, 0u);
  // Body: local.get 0 (2), local.get 1 (2), i32.add (1), end (1) = 6 bytes.
  const FuncDecl &FD = M->Funcs[0];
  EXPECT_EQ(FD.BodyEnd - FD.BodyStart, 6u);
  EXPECT_EQ(M->Bytes[FD.BodyEnd - 1], uint8_t(Opcode::End));
}

TEST(Reader, LocalsExpansion) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.addLocal(ValType::I64);
  F.addLocal(ValType::I64);
  F.addLocal(ValType::F64);
  WasmError Err;
  auto M = decodeModule(MB.build(), &Err);
  ASSERT_NE(M, nullptr) << Err.Message;
  const FuncDecl &FD = M->Funcs[0];
  ASSERT_EQ(FD.LocalTypes.size(), 4u);
  EXPECT_EQ(FD.LocalTypes[0], ValType::I32);
  EXPECT_EQ(FD.LocalTypes[1], ValType::I64);
  EXPECT_EQ(FD.LocalTypes[2], ValType::I64);
  EXPECT_EQ(FD.LocalTypes[3], ValType::F64);
}

TEST(Reader, ImportsComeFirst) {
  ModuleBuilder MB;
  uint32_t T0 = MB.addType({}, {ValType::I32});
  uint32_t Imp = MB.importFunc("env", "answer", T0);
  FuncBuilder &F = MB.addFunc(T0);
  F.call(Imp);
  WasmError Err;
  auto M = decodeModule(MB.build(), &Err);
  ASSERT_NE(M, nullptr) << Err.Message;
  ASSERT_EQ(M->Funcs.size(), 2u);
  EXPECT_EQ(M->NumImportedFuncs, 1u);
  EXPECT_TRUE(M->Funcs[0].Imported);
  EXPECT_EQ(M->Funcs[0].ImportModule, "env");
  EXPECT_EQ(M->Funcs[0].ImportName, "answer");
  EXPECT_FALSE(M->Funcs[1].Imported);
}

TEST(Reader, MemoryGlobalsTablesData) {
  ModuleBuilder MB;
  MB.addMemory(1, 4);
  MB.addTable(8, 8);
  uint32_t G = MB.addGlobal(ValType::I64, true,
                            ModuleBuilder::constInit(ValType::I64, 42));
  MB.addExport("g", ExternKind::Global, G);
  MB.addData(16, {1, 2, 3, 4});
  uint32_t T = MB.addType({}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.op(Opcode::Nop);
  MB.addElem(2, {MB.funcIndex(F)});

  WasmError Err;
  auto M = decodeModule(MB.build(), &Err);
  ASSERT_NE(M, nullptr) << Err.Message;
  ASSERT_EQ(M->Memories.size(), 1u);
  EXPECT_EQ(M->Memories[0].Lim.Min, 1u);
  EXPECT_TRUE(M->Memories[0].Lim.HasMax);
  EXPECT_EQ(M->Memories[0].Lim.Max, 4u);
  ASSERT_EQ(M->Tables.size(), 1u);
  ASSERT_EQ(M->Globals.size(), 1u);
  EXPECT_EQ(M->Globals[0].Init.Bits, 42u);
  EXPECT_TRUE(M->Globals[0].Mutable);
  ASSERT_EQ(M->Datas.size(), 1u);
  EXPECT_EQ(M->Datas[0].Bytes.size(), 4u);
  ASSERT_EQ(M->Elems.size(), 1u);
  EXPECT_EQ(M->Elems[0].FuncIndices[0], 0u);
}

TEST(Reader, RejectsTruncatedSection) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.op(Opcode::Nop);
  auto Bytes = MB.build();
  Bytes.pop_back(); // Chop the last byte.
  expectDecodeError(std::move(Bytes));
}

TEST(Reader, RejectsExportIndexOutOfRange) {
  ModuleBuilder MB;
  MB.addExport("f", ExternKind::Func, 3);
  expectDecodeError(MB.build());
}

TEST(Reader, CodeBytesAccounting) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {});
  FuncBuilder &F1 = MB.addFunc(T);
  F1.op(Opcode::Nop);
  FuncBuilder &F2 = MB.addFunc(T);
  F2.op(Opcode::Nop);
  F2.op(Opcode::Nop);
  WasmError Err;
  auto M = decodeModule(MB.build(), &Err);
  ASSERT_NE(M, nullptr) << Err.Message;
  // nop+end = 2 bytes, nop+nop+end = 3 bytes.
  EXPECT_EQ(M->codeBytes(), 5u);
}

} // namespace
