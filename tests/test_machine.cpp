//===- tests/test_machine.cpp - assembler and executor tests ---------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "testutil.h"

#include "engine/run.h"
#include "machine/assembler.h"
#include "machine/executor.h"

#include <gtest/gtest.h>

using namespace wisp;

namespace {

/// Fixture that installs hand-assembled machine code for a one-function
/// module so the executor can be driven without a compiler.
class MachineFixture {
public:
  MachineFixture(std::vector<ValType> Params, std::vector<ValType> Rets,
                 uint32_t ExtraSlots = 8) {
    ModuleBuilder MB;
    uint32_t Ty = MB.addType(Params, Rets);
    FuncBuilder &F = MB.addFunc(Ty);
    F.unreachable(); // Body unused; machine code replaces it.
    MB.exportFunc("f", MB.funcIndex(F));
    M = buildAndValidate(MB);
    WasmError Err;
    Inst = instantiate(*M, Hosts, nullptr, &Err);
    EXPECT_TRUE(Inst != nullptr);
    T.Inst = Inst.get();
    Code.FuncIndex = 0;
    Code.FrameSlots = uint32_t(Params.size()) + ExtraSlots;
    FuncInstance *FI = Inst->func(0);
    FI->Code = &Code;
    FI->UseJit = true;
  }

  InvokeResult run(const std::vector<Value> &Args) {
    InvokeResult R;
    std::vector<Value> Out;
    R.Trap = invoke(T, Inst->func(0), Args, &Out);
    R.Results = std::move(Out);
    return R;
  }

  std::unique_ptr<Module> M;
  std::unique_ptr<Instance> Inst;
  HostRegistry Hosts;
  MCode Code;
  Thread T;
};

TEST(Machine, MovAndArith) {
  MachineFixture Fx({ValType::I32, ValType::I32}, {ValType::I32});
  Assembler A(Fx.Code);
  A.emit(MOp::LdSlot, 0, 0, 0, 0, 0);  // g0 = arg0
  A.emit(MOp::LdSlot, 1, 0, 0, 0, 1);  // g1 = arg1
  A.emit(MOp::Add32, 2, 0, 1);         // g2 = g0 + g1
  A.emit(MOp::MulI32, 2, 2, 0, 0, 10); // g2 *= 10
  A.emit(MOp::StSlot, 2, 0, 0, 0, 0);  // result slot 0
  A.emit(MOp::StTag, uint8_t(ValType::I32), 0, 0, 0, 0);
  A.emit(MOp::Ret);
  EXPECT_EQ(Fx.run({Value::makeI32(3), Value::makeI32(4)}).one(),
            Value::makeI32(70));
  EXPECT_GT(Fx.T.JitCycles, 0u);
}

TEST(Machine, LabelsAndLoops) {
  // Sum 1..n with a backward branch.
  MachineFixture Fx({ValType::I32}, {ValType::I32});
  Assembler A(Fx.Code);
  A.emit(MOp::LdSlot, 0, 0, 0, 0, 0); // g0 = n
  A.emit(MOp::MovRI, 1, 0, 0, 0, 0);  // g1 = sum
  Label Head = A.newLabel(), Done = A.newLabel();
  A.bind(Head);
  A.brCmpI32(Cond::Eq, 0, 0, Done);
  A.emit(MOp::Add32, 1, 1, 0);
  A.emit(MOp::AddI32, 0, 0, 0, 0, -1);
  A.jmp(Head);
  A.bind(Done);
  A.emit(MOp::StSlot, 1, 0, 0, 0, 0);
  A.emit(MOp::Ret);
  EXPECT_EQ(Fx.run({Value::makeI32(100)}).one(), Value::makeI32(5050));
}

TEST(Machine, ForwardLabelPatching) {
  MachineFixture Fx({ValType::I32}, {ValType::I32});
  Assembler A(Fx.Code);
  Label L1 = A.newLabel();
  A.emit(MOp::LdSlot, 0, 0, 0, 0, 0);
  A.jmpIf(0, L1);
  A.emit(MOp::MovRI, 1, 0, 0, 0, 11);
  Label Out = A.newLabel();
  A.jmp(Out);
  A.bind(L1);
  A.emit(MOp::MovRI, 1, 0, 0, 0, 22);
  A.bind(Out);
  A.emit(MOp::StSlot, 1, 0, 0, 0, 0);
  A.emit(MOp::Ret);
  EXPECT_EQ(Fx.run({Value::makeI32(1)}).one(), Value::makeI32(22));
  EXPECT_EQ(Fx.run({Value::makeI32(0)}).one(), Value::makeI32(11));
}

TEST(Machine, BrTableDispatch) {
  MachineFixture Fx({ValType::I32}, {ValType::I32});
  Assembler A(Fx.Code);
  A.emit(MOp::LdSlot, 0, 0, 0, 0, 0);
  Label C0 = A.newLabel(), C1 = A.newLabel(), Def = A.newLabel(),
        Out = A.newLabel();
  A.brTable(0, {C0, C1, Def});
  A.bind(C0);
  A.emit(MOp::MovRI, 1, 0, 0, 0, 100);
  A.jmp(Out);
  A.bind(C1);
  A.emit(MOp::MovRI, 1, 0, 0, 0, 101);
  A.jmp(Out);
  A.bind(Def);
  A.emit(MOp::MovRI, 1, 0, 0, 0, 999);
  A.bind(Out);
  A.emit(MOp::StSlot, 1, 0, 0, 0, 0);
  A.emit(MOp::Ret);
  EXPECT_EQ(Fx.run({Value::makeI32(0)}).one(), Value::makeI32(100));
  EXPECT_EQ(Fx.run({Value::makeI32(1)}).one(), Value::makeI32(101));
  EXPECT_EQ(Fx.run({Value::makeI32(7)}).one(), Value::makeI32(999));
}

TEST(Machine, FloatOps) {
  MachineFixture Fx({ValType::F64, ValType::F64}, {ValType::F64});
  Assembler A(Fx.Code);
  A.emit(MOp::LdSlotF, 0, 0, 0, 0, 0);
  A.emit(MOp::LdSlotF, 1, 0, 0, 0, 1);
  A.emit(MOp::MulF64, 2, 0, 1);
  A.emit(MOp::SqrtF64, 2, 2);
  A.emit(MOp::StSlotF, 2, 0, 0, 0, 0);
  A.emit(MOp::Ret);
  EXPECT_EQ(Fx.run({Value::makeF64(2.0), Value::makeF64(8.0)}).one(),
            Value::makeF64(4.0));
}

TEST(Machine, DivTrap) {
  MachineFixture Fx({ValType::I32, ValType::I32}, {ValType::I32});
  Assembler A(Fx.Code);
  A.emit(MOp::LdSlot, 0, 0, 0, 0, 0);
  A.emit(MOp::LdSlot, 1, 0, 0, 0, 1);
  A.emit(MOp::DivS32, 2, 0, 1);
  A.emit(MOp::StSlot, 2, 0, 0, 0, 0);
  A.emit(MOp::Ret);
  EXPECT_EQ(Fx.run({Value::makeI32(10), Value::makeI32(0)}).Trap,
            TrapReason::DivByZero);
  EXPECT_EQ(Fx.run({Value::makeI32(10), Value::makeI32(3)}).one(),
            Value::makeI32(3));
}

TEST(Machine, MemoryAccessAndBounds) {
  ModuleBuilder MB;
  MB.addMemory(1);
  uint32_t Ty = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(Ty);
  F.unreachable();
  MB.exportFunc("f", MB.funcIndex(F));
  auto M = buildAndValidate(MB);
  HostRegistry Hosts;
  WasmError Err;
  auto Inst = instantiate(*M, Hosts, nullptr, &Err);
  ASSERT_NE(Inst, nullptr);
  Thread T;
  T.Inst = Inst.get();
  MCode Code;
  Code.FrameSlots = 8;
  Assembler A(Code);
  A.emit(MOp::LdSlot, 0, 0, 0, 0, 0);     // g0 = addr
  A.emit(MOp::MovRI, 1, 0, 0, 0, 0x1234);
  A.emit(MOp::StM32, 1, 0, 0, 0, 4);      // mem[addr+4] = g1
  A.emit(MOp::LdM16U32, 2, 0, 0, 0, 4);   // g2 = mem16[addr+4]
  A.emit(MOp::StSlot, 2, 0, 0, 0, 0);
  A.emit(MOp::Ret);
  FuncInstance *FI = Inst->func(0);
  FI->Code = &Code;
  FI->UseJit = true;
  std::vector<Value> Out;
  EXPECT_EQ(invoke(T, FI, {Value::makeI32(16)}, &Out), TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(0x1234));
  EXPECT_EQ(invoke(T, FI, {Value::makeI32(65535)}, &Out),
            TrapReason::MemOutOfBounds);
}

TEST(Machine, CntIncIntrinsic) {
  uint64_t Counter = 0;
  MachineFixture Fx({}, {ValType::I32});
  Assembler A(Fx.Code);
  A.emit(MOp::CntInc, 0, 0, 0, 0, int64_t(uintptr_t(&Counter)));
  A.emit(MOp::CntInc, 0, 0, 0, 0, int64_t(uintptr_t(&Counter)));
  A.emit(MOp::MovRI, 0, 0, 0, 0, 0);
  A.emit(MOp::StSlot, 0, 0, 0, 0, 0);
  A.emit(MOp::StTag, uint8_t(ValType::I32), 0, 0, 0, 0);
  A.emit(MOp::Ret);
  Fx.run({});
  EXPECT_EQ(Counter, 2u);
}

TEST(Machine, ListingIsPrintable) {
  MCode Code;
  Assembler A(Code);
  A.emit(MOp::LdSlot, 0, 0, 0, 0, 0);
  A.emit(MOp::AddI32, 0, 0, 0, 0, 7);
  A.emit(MOp::Ret);
  std::string L = Code.toString();
  EXPECT_NE(L.find("LdSlot"), std::string::npos);
  EXPECT_NE(L.find("AddI32"), std::string::npos);
  EXPECT_NE(L.find("imm=7"), std::string::npos);
}

} // namespace
