//===- tests/test_analysis.cpp - whole-module static analysis tests --------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two halves, mirroring the analyzer's contract:
///
///  - Soundness: the inferred bounds are facts about *every* execution, so
///    each hand-built module and every regression-corpus module is executed
///    on two tiers (in-place interpreter and single-pass JIT) and the
///    observed call depth / memory pages are checked against the static
///    bounds. (The differential fuzzer asserts the same invariants across
///    all eight tiers on every seed; these tests pin the named cases.)
///  - Precision: hand-built negatives where each lint kind fires at the
///    expected function and bytecode offset, the admission precheck rejects
///    exactly the provably-doomed jobs, and the analyzer facts tighten the
///    artifact verifier's frame-size check.
///
//===----------------------------------------------------------------------===//

#include "analysis/analysis.h"

#include "engine/engine.h"
#include "engine/registry.h"
#include "service/batch.h"
#include "spc/compiler.h"
#include "suites/suites.h"
#include "testutil.h"
#include "verify/verifier.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace wisp;

namespace {

ModuleAnalysis analyze(const Module &M) { return analyzeModule(M); }

/// Loads a module into a fresh engine on \p Tier, invokes \p Export with
/// zero-valued arguments, and returns the observed high-water call depth
/// plus the final memory pages through the out-params.
TrapReason runOnTier(const std::vector<uint8_t> &Bytes, const char *Tier,
                     const std::string &Export, uint32_t *HighWater,
                     uint32_t *Pages) {
  EngineConfig Cfg = configByName(tierToConfigName(Tier));
  Engine E(Cfg);
  installGcHostFuncs(E);
  WasmError Err;
  std::unique_ptr<LoadedModule> LM = E.load(Bytes, &Err);
  EXPECT_NE(LM, nullptr) << Err.Message;
  if (!LM)
    return TrapReason::HostError;
  FuncInstance *F = LM->Inst->findExportedFunc(Export);
  EXPECT_NE(F, nullptr) << "no export " << Export;
  if (!F)
    return TrapReason::HostError;
  std::vector<Value> Args;
  for (ValType T : F->Type->Params)
    Args.push_back(Value{0, T});
  std::vector<Value> Results;
  TrapReason Trap = E.invoke(*LM, Export, Args, &Results);
  *HighWater = E.thread().HighWaterFrames;
  *Pages = LM->Inst->Memory.pages();
  return Trap;
}

/// a() -> b() -> c(): the canonical bounded call chain (depth 3).
std::vector<uint8_t> chainModule() {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &C = MB.addFunc(T);
  C.i32Const(7);
  FuncBuilder &B = MB.addFunc(T);
  B.call(MB.funcIndex(C));
  FuncBuilder &A = MB.addFunc(T);
  A.call(MB.funcIndex(B));
  MB.exportFunc("run", MB.funcIndex(A));
  return MB.build();
}

/// run() calls itself unconditionally: MustDepth is infinite, every finite
/// call-depth cap is provably exhausted.
std::vector<uint8_t> mustRecurseModule() {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.call(MB.funcIndex(F));
  MB.exportFunc("run", MB.funcIndex(F));
  return MB.build();
}

} // namespace

// --- Bounds: hand-built modules, checked on two executing tiers ----------

TEST(Analysis, NopModuleFacts) {
  std::unique_ptr<Module> M = buildAndValidate(nopModule());
  ASSERT_TRUE(M);
  ModuleAnalysis A = analyze(*M);
  EXPECT_TRUE(A.RecursionFree);
  EXPECT_TRUE(A.LoopFree);
  EXPECT_TRUE(A.DepthBounded);
  EXPECT_EQ(A.DepthBound, 1u);
  EXPECT_FALSE(A.HasMemory);
  EXPECT_TRUE(A.PagesBounded);
  EXPECT_TRUE(A.clean());
}

TEST(Analysis, CallChainDepthBoundIsTightOnBothTiers) {
  std::vector<uint8_t> Bytes = chainModule();
  std::unique_ptr<Module> M = buildAndValidate(Bytes);
  ASSERT_TRUE(M);
  ModuleAnalysis A = analyze(*M);
  ASSERT_TRUE(A.DepthBounded);
  EXPECT_EQ(A.DepthBound, 3u);
  // The chain is unconditional, so the must-reach depth equals the bound.
  EXPECT_EQ(A.Funcs[2].MustDepth, 3u);
  for (const char *Tier : {"int", "spc"}) {
    uint32_t HighWater = 0, Pages = 0;
    TrapReason Trap = runOnTier(Bytes, Tier, "run", &HighWater, &Pages);
    EXPECT_EQ(Trap, TrapReason::None) << Tier;
    EXPECT_LE(HighWater, A.DepthBound) << Tier;
    EXPECT_GE(HighWater, A.Funcs[2].MustDepth) << Tier;
  }
}

TEST(Analysis, PageBoundHoldsUnderGrowth) {
  // min 1, max 3, run() grows by 2: the bound is the declared max and the
  // execution saturates it exactly.
  ModuleBuilder MB;
  MB.addMemory(1, 3);
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(2);
  F.memoryGrow();
  MB.exportFunc("run", MB.funcIndex(F));
  std::vector<uint8_t> Bytes = MB.build();
  std::unique_ptr<Module> M = buildAndValidate(Bytes);
  ASSERT_TRUE(M);
  ModuleAnalysis A = analyze(*M);
  EXPECT_TRUE(A.HasMemory);
  EXPECT_TRUE(A.GrowsMemory);
  ASSERT_TRUE(A.PagesBounded);
  EXPECT_EQ(A.PageBound, 3u);
  for (const char *Tier : {"int", "spc"}) {
    uint32_t HighWater = 0, Pages = 0;
    TrapReason Trap = runOnTier(Bytes, Tier, "run", &HighWater, &Pages);
    EXPECT_EQ(Trap, TrapReason::None) << Tier;
    EXPECT_EQ(Pages, 3u) << Tier;
    EXPECT_LE(Pages, A.PageBound) << Tier;
  }
}

TEST(Analysis, GrowingMemoryWithoutMaxIsUnbounded) {
  ModuleBuilder MB;
  MB.addMemory(1);
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(1);
  F.memoryGrow();
  MB.exportFunc("run", MB.funcIndex(F));
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_TRUE(M);
  ModuleAnalysis A = analyze(*M);
  EXPECT_TRUE(A.GrowsMemory);
  EXPECT_FALSE(A.PagesBounded);
}

TEST(Analysis, GrowOnlyInUnreachableFuncKeepsMinBound) {
  // memory.grow exists but only in a function no root reaches: the page
  // bound stays at the declared minimum (and the dead grower is linted).
  ModuleBuilder MB;
  MB.addMemory(2);
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &Dead = MB.addFunc(T);
  Dead.i32Const(1);
  Dead.memoryGrow();
  FuncBuilder &Live = MB.addFunc(T);
  Live.i32Const(5);
  MB.exportFunc("run", MB.funcIndex(Live));
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_TRUE(M);
  ModuleAnalysis A = analyze(*M);
  EXPECT_FALSE(A.GrowsMemory);
  ASSERT_TRUE(A.PagesBounded);
  EXPECT_EQ(A.PageBound, 2u);
}

// --- Lints: each kind fires at the expected function and offset ----------

TEST(Analysis, UnreachableFunctionLint) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &Dead = MB.addFunc(T);
  Dead.i32Const(1);
  FuncBuilder &Live = MB.addFunc(T);
  Live.i32Const(2);
  MB.exportFunc("run", MB.funcIndex(Live));
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_TRUE(M);
  ModuleAnalysis A = analyze(*M);
  EXPECT_FALSE(A.Funcs[0].Reachable);
  EXPECT_TRUE(A.Funcs[1].Reachable);
  ASSERT_EQ(A.Lints.size(), 1u);
  EXPECT_EQ(A.Lints[0].K, LintFinding::UnreachableFunc);
  EXPECT_EQ(A.Lints[0].FuncIndex, 0u);
  EXPECT_EQ(A.Lints[0].Ip, M->Funcs[0].BodyStart);
}

TEST(Analysis, TableReferencedFunctionIsReachable) {
  // A function only referenced from an element segment escapes through
  // call_indirect, so it must NOT be linted as unreachable.
  ModuleBuilder MB;
  MB.addTable(1);
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &Tabled = MB.addFunc(T);
  Tabled.i32Const(3);
  FuncBuilder &Live = MB.addFunc(T);
  Live.i32Const(0);
  Live.callIndirect(T);
  MB.addElem(0, {MB.funcIndex(Tabled)});
  MB.exportFunc("run", MB.funcIndex(Live));
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_TRUE(M);
  ModuleAnalysis A = analyze(*M);
  EXPECT_TRUE(A.Funcs[0].Reachable);
  EXPECT_TRUE(A.clean());
}

TEST(Analysis, ConstDivByZeroLintAtExactOffset) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(1); // 2 bytes: 0x41 0x01
  F.i32Const(0); // 2 bytes: 0x41 0x00
  F.op(Opcode::I32DivU);
  MB.exportFunc("run", MB.funcIndex(F));
  std::vector<uint8_t> Bytes = MB.build();
  std::unique_ptr<Module> M = buildAndValidate(Bytes);
  ASSERT_TRUE(M);
  ModuleAnalysis A = analyze(*M);
  ASSERT_EQ(A.Lints.size(), 1u);
  EXPECT_EQ(A.Lints[0].K, LintFinding::GuaranteedTrap);
  EXPECT_EQ(A.Lints[0].FuncIndex, 0u);
  EXPECT_EQ(A.Lints[0].Ip, M->Funcs[0].BodyStart + 4);
  // The guarantee is real: the site traps on both executing tiers.
  for (const char *Tier : {"int", "spc"}) {
    uint32_t HighWater = 0, Pages = 0;
    EXPECT_EQ(runOnTier(Bytes, Tier, "run", &HighWater, &Pages),
              TrapReason::DivByZero)
        << Tier;
  }
}

TEST(Analysis, ConstOobLoadLintAtExactOffset) {
  // max = 1 page, constant address one past the last mappable byte.
  ModuleBuilder MB;
  MB.addMemory(1, 1);
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(65536); // 4 bytes: 0x41 0x80 0x80 0x04
  F.load(Opcode::I32Load, /*Offset=*/0, /*AlignLog2=*/2);
  MB.exportFunc("run", MB.funcIndex(F));
  std::vector<uint8_t> Bytes = MB.build();
  std::unique_ptr<Module> M = buildAndValidate(Bytes);
  ASSERT_TRUE(M);
  ModuleAnalysis A = analyze(*M);
  ASSERT_EQ(A.Lints.size(), 1u);
  EXPECT_EQ(A.Lints[0].K, LintFinding::GuaranteedTrap);
  EXPECT_EQ(A.Lints[0].FuncIndex, 0u);
  EXPECT_EQ(A.Lints[0].Ip, M->Funcs[0].BodyStart + 4);
  for (const char *Tier : {"int", "spc"}) {
    uint32_t HighWater = 0, Pages = 0;
    EXPECT_EQ(runOnTier(Bytes, Tier, "run", &HighWater, &Pages),
              TrapReason::MemOutOfBounds)
        << Tier;
  }
}

TEST(Analysis, ConstLoadWithinGrowableMemoryIsNotLinted) {
  // No declared max: the same address is reachable after a grow, so the
  // analyzer must stay silent (a trap here is possible, not guaranteed).
  ModuleBuilder MB;
  MB.addMemory(1);
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(65536);
  F.load(Opcode::I32Load, 0, 2);
  MB.exportFunc("run", MB.funcIndex(F));
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_TRUE(M);
  EXPECT_TRUE(analyze(*M).clean());
}

TEST(Analysis, DeadBrTableCasesUnderConstantSelector) {
  // Selector 1 of a 3-case table: cases 0 and 2 can never be picked (the
  // default remains the fall-through for an in-range selector's siblings).
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.block();
  F.block();
  F.block();
  F.i32Const(1);
  F.brTable({0, 1, 2}, 0);
  F.end();
  F.end();
  F.end();
  F.i32Const(9);
  MB.exportFunc("run", MB.funcIndex(F));
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_TRUE(M);
  ModuleAnalysis A = analyze(*M);
  ASSERT_EQ(A.Lints.size(), 1u);
  EXPECT_EQ(A.Lints[0].K, LintFinding::DeadBrTableCase);
  EXPECT_EQ(A.Lints[0].FuncIndex, 0u);
  EXPECT_NE(A.Lints[0].Detail.find("2"), std::string::npos);
}

// --- Recursion, must-depth and the admission precheck --------------------

TEST(Analysis, UnconditionalRecursionIsProvablyDoomed) {
  std::vector<uint8_t> Bytes = mustRecurseModule();
  std::unique_ptr<Module> M = buildAndValidate(Bytes);
  ASSERT_TRUE(M);
  ModuleAnalysis A = analyze(*M);
  EXPECT_FALSE(A.RecursionFree);
  EXPECT_FALSE(A.DepthBounded);
  EXPECT_TRUE(A.Funcs[0].InRecursiveScc);
  EXPECT_EQ(A.Funcs[0].MustDepth, AnalysisDepthInfinite);
  std::string Reason;
  EXPECT_TRUE(staticBoundsReject(*M, A, "run", /*MaxCallDepth=*/64, 0, 0,
                                 &Reason));
  EXPECT_NE(Reason.find("recurses"), std::string::npos) << Reason;
  // Default caps (engine default depth 4096) reject it too: no finite cap
  // admits an unconditionally-recursive entry point.
  EXPECT_TRUE(staticBoundsReject(*M, A, "run", 0, 0, 0, &Reason));
  // And the prophecy comes true on a real engine.
  for (const char *Tier : {"int", "spc"}) {
    uint32_t HighWater = 0, Pages = 0;
    EXPECT_EQ(runOnTier(Bytes, Tier, "run", &HighWater, &Pages),
              TrapReason::StackOverflow)
        << Tier;
  }
}

TEST(Analysis, BoundedRecursionDepthVsCap) {
  // Conditional recursion: depth-unbounded statically, but MustDepth stays
  // finite (the prefix reaches depth 1 only), so the precheck must admit.
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.ifOp();
  F.localGet(0);
  F.i32Const(1);
  F.op(Opcode::I32Sub);
  F.call(MB.funcIndex(F));
  F.op(Opcode::Drop);
  F.end();
  F.localGet(0);
  MB.exportFunc("run", MB.funcIndex(F));
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_TRUE(M);
  ModuleAnalysis A = analyze(*M);
  EXPECT_FALSE(A.DepthBounded);
  EXPECT_TRUE(A.Funcs[0].InRecursiveScc);
  EXPECT_EQ(A.Funcs[0].MustDepth, 1u);
  std::string Reason;
  EXPECT_FALSE(staticBoundsReject(*M, A, "run", 64, 0, 0, &Reason));
}

TEST(Analysis, MustDepthOverCapIsRejected) {
  std::vector<uint8_t> Bytes = chainModule();
  std::unique_ptr<Module> M = buildAndValidate(Bytes);
  ASSERT_TRUE(M);
  ModuleAnalysis A = analyze(*M);
  std::string Reason;
  // Cap 2 < must-depth 3: rejected with the depths in the reason.
  EXPECT_TRUE(staticBoundsReject(*M, A, "run", 2, 0, 0, &Reason));
  EXPECT_NE(Reason.find("3"), std::string::npos) << Reason;
  // Cap 3 admits.
  EXPECT_FALSE(staticBoundsReject(*M, A, "run", 3, 0, 0, &Reason));
  // A missing export is the worker's lookup error, not a static reject.
  EXPECT_FALSE(staticBoundsReject(*M, A, "nope", 2, 0, 0, &Reason));
}

TEST(Analysis, DeclaredMinimaOverCapsAreRejected) {
  ModuleBuilder MB;
  MB.addMemory(10);
  MB.addTable(8);
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.i32Const(1);
  MB.exportFunc("run", MB.funcIndex(F));
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_TRUE(M);
  ModuleAnalysis A = analyze(*M);
  std::string Reason;
  EXPECT_TRUE(staticBoundsReject(*M, A, "run", 0, /*MaxMemoryPages=*/5, 0,
                                 &Reason));
  EXPECT_NE(Reason.find("pages"), std::string::npos) << Reason;
  EXPECT_TRUE(staticBoundsReject(*M, A, "run", 0, 0, /*MaxTableElems=*/4,
                                 &Reason));
  EXPECT_FALSE(staticBoundsReject(*M, A, "run", 0, 10, 8, &Reason));
  EXPECT_FALSE(staticBoundsReject(*M, A, "run", 0, 0, 0, &Reason));
}

// --- Verifier integration: facts tighten the frame-size check ------------

TEST(Analysis, FactsTightenVerifierFrameSize) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.i32Const(2);
  F.op(Opcode::I32Add);
  MB.exportFunc("run", MB.funcIndex(F));
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_TRUE(M);
  const FuncDecl &FD = M->Funcs[0];
  FuncFacts Facts = analyzeFunction(*M, FD);
  EXPECT_EQ(Facts.StackBound, 2u);
  std::unique_ptr<MCode> Code =
      compileFunction(*M, FD, CompilerOptions::allopt());
  ASSERT_TRUE(Code);
  VerifyScope WithFacts = VerifyScope::baseline().withFacts(Facts.StackBound);
  EXPECT_TRUE(verifyMachineCode(*M, FD, *Code, WithFacts).ok());
  // Shrink the reservation below locals + stack bound: still >= the locals
  // alone, so only the facts-tightened scope can catch it.
  Code->FrameSlots = FD.numLocalSlots() + Facts.StackBound - 1;
  bool BaseFrameFinding = false, FactsFrameFinding = false;
  for (const VerifyFinding &Fd :
       verifyMachineCode(*M, FD, *Code, VerifyScope::baseline()).Findings)
    BaseFrameFinding |= Fd.Check == "frame-size";
  for (const VerifyFinding &Fd :
       verifyMachineCode(*M, FD, *Code, WithFacts).Findings)
    FactsFrameFinding |= Fd.Check == "frame-size";
  EXPECT_FALSE(BaseFrameFinding);
  EXPECT_TRUE(FactsFrameFinding);
}

// --- Corpus soundness: bounds hold under execution on two tiers ----------

TEST(Analysis, CorpusBoundsAreSoundOnTwoTiers) {
  std::vector<std::string> Files;
  std::error_code Ec;
  for (const auto &Entry :
       std::filesystem::directory_iterator(WISP_CORPUS_DIR, Ec))
    if (Entry.path().extension() == ".wasm")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  ASSERT_FALSE(Files.empty()) << "no corpus under " WISP_CORPUS_DIR;
  for (const std::string &Path : Files) {
    std::ifstream In(Path, std::ios::binary);
    ASSERT_TRUE(In.good()) << Path;
    std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                               std::istreambuf_iterator<char>());
    std::unique_ptr<Module> M = buildAndValidate(Bytes);
    ASSERT_TRUE(M) << Path;
    ModuleAnalysis A = analyze(*M);
    for (const Export &E : M->Exports) {
      if (E.Kind != ExternKind::Func)
        continue;
      EXPECT_TRUE(A.Funcs[E.Index].Reachable) << Path << " " << E.Name;
      for (const char *Tier : {"int", "spc"}) {
        uint32_t HighWater = 0, Pages = 0;
        TrapReason Trap =
            runOnTier(Bytes, Tier, E.Name, &HighWater, &Pages);
        std::string Where = Path + " " + E.Name + " on " + Tier;
        if (A.DepthBounded) {
          EXPECT_LE(HighWater, A.DepthBound) << Where;
        }
        if (A.PagesBounded) {
          EXPECT_LE(Pages, A.PageBound) << Where;
        }
        if (Trap == TrapReason::None) {
          uint32_t Must = A.Funcs[E.Index].MustDepth;
          ASSERT_NE(Must, AnalysisDepthInfinite) << Where;
          EXPECT_GE(HighWater, Must) << Where;
        }
      }
    }
  }
}

// --- Fig. 7 suites: loaded modules analyze clean -------------------------

TEST(Analysis, SuiteModulesAnalyzeClean) {
  for (const LineItem &I : allSuites(1)) {
    std::unique_ptr<Module> M = buildAndValidate(I.Bytes);
    ASSERT_TRUE(M) << I.Suite << "/" << I.Name;
    ModuleAnalysis A = analyze(*M);
    EXPECT_TRUE(A.clean()) << I.Suite << "/" << I.Name << ": "
                           << (A.Lints.empty() ? "" : A.Lints[0].Detail);
    // Every suite entry point is reachable by construction.
    for (const Export &E : M->Exports) {
      if (E.Kind == ExternKind::Func) {
        EXPECT_TRUE(A.Funcs[E.Index].Reachable)
            << I.Suite << "/" << I.Name << " " << E.Name;
      }
    }
  }
}
