//===- tests/test_verify.cpp - static artifact verifier tests -------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Two halves, mirroring the verifier's contract:
//
//  - Negatives: compile a known-good body, hand-corrupt one facet of the
//    artifact (a branch target, a slot base, the line table, the frame
//    reservation, threaded-IR branch metadata, fusion over a probed pc)
//    and assert that exactly the matching invariant fires with a precise
//    diagnostic.
//  - Positives: every fig. 7 suite module must verify clean through all
//    four compiler pipelines and the threaded-IR pre-decoder.
//
//===----------------------------------------------------------------------===//

#include "verify/verifier.h"

#include "baselines/copypatch.h"
#include "baselines/twopass.h"
#include "engine/engine.h"
#include "interp/predecode.h"
#include "opt/optcompiler.h"
#include "suites/suites.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace wisp;

namespace {

/// A body that exercises every invariant family: a loop with forward and
/// backward branches, a potentially-trapping memory load, a direct call,
/// and live locals.
///
///   f(n) = sum over i=n..1 of mem32[i & 3], accumulated via add(acc, v)
std::unique_ptr<Module> buildRichModule() {
  ModuleBuilder MB;
  MB.addMemory(1);
  uint32_t TAdd = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &Add = MB.addFunc(TAdd);
  Add.localGet(0);
  Add.localGet(1);
  Add.op(Opcode::I32Add);
  uint32_t TMain = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &Main = MB.addFunc(TMain);
  uint32_t Acc = Main.addLocal(ValType::I32);
  Main.block();
  Main.loop();
  Main.localGet(0);
  Main.op(Opcode::I32Eqz);
  Main.brIf(1);
  Main.localGet(Acc);
  Main.localGet(0);
  Main.i32Const(3);
  Main.op(Opcode::I32And);
  Main.load(Opcode::I32Load, 0, 2);
  Main.call(MB.funcIndex(Add));
  Main.localSet(Acc);
  Main.localGet(0);
  Main.i32Const(1);
  Main.op(Opcode::I32Sub);
  Main.localSet(0);
  Main.br(0);
  Main.end();
  Main.end();
  Main.localGet(Acc);
  MB.exportFunc("f", MB.funcIndex(Main));
  return buildAndValidate(MB);
}

/// The module's "interesting" function (the loop body above).
const FuncDecl &mainFunc(const Module &M) { return M.Funcs[1]; }

bool hasCheck(const VerifyReport &R, const std::string &Check) {
  for (const VerifyFinding &F : R.Findings)
    if (F.Check == Check)
      return true;
  return false;
}

const VerifyFinding *findCheck(const VerifyReport &R,
                               const std::string &Check) {
  for (const VerifyFinding &F : R.Findings)
    if (F.Check == Check)
      return &F;
  return nullptr;
}

} // namespace

// --- Positive: the uncorrupted artifact is clean on every pipeline ------

TEST(Verify, CleanOnAllPipelines) {
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  CompilerOptions Opts = CompilerOptions::allopt();
  for (const FuncDecl &F : M->Funcs) {
    VerifyScope Base = VerifyScope::baseline();
    auto Spc = compileFunction(*M, F, Opts);
    ASSERT_TRUE(Spc);
    EXPECT_TRUE(verifyMachineCode(*M, F, *Spc, Base).ok())
        << verifyMachineCode(*M, F, *Spc, Base).text();
    auto Two = compileTwoPass(*M, F, Opts);
    ASSERT_TRUE(Two);
    EXPECT_TRUE(verifyMachineCode(*M, F, *Two, Base).ok())
        << verifyMachineCode(*M, F, *Two, Base).text();
    auto Cp = compileCopyPatch(*M, F, Opts);
    ASSERT_TRUE(Cp);
    EXPECT_TRUE(verifyMachineCode(*M, F, *Cp, Base).ok())
        << verifyMachineCode(*M, F, *Cp, Base).text();
    auto Opt = compileOptimizing(*M, F, Opts);
    ASSERT_TRUE(Opt);
    VerifyScope OptScope = VerifyScope::optimizing();
    EXPECT_TRUE(verifyMachineCode(*M, F, *Opt, OptScope).ok())
        << verifyMachineCode(*M, F, *Opt, OptScope).text();
    auto TC = predecodeFunction(*M, F, nullptr, /*EnableFusion=*/true);
    ASSERT_TRUE(TC);
    EXPECT_TRUE(verifyThreadedCode(*M, F, *TC).ok())
        << verifyThreadedCode(*M, F, *TC).text();
  }
}

// --- Negatives: hand-corrupted machine code ----------------------------

TEST(Verify, PatchedBranchTargetFires) {
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  const FuncDecl &F = mainFunc(*M);
  auto Code = compileFunction(*M, F, CompilerOptions::allopt());
  ASSERT_TRUE(Code);
  uint32_t Patched = UINT32_MAX;
  for (uint32_t I = 0; I < Code->Insts.size(); ++I) {
    MOp Op = Code->Insts[I].Op;
    if (Op == MOp::Jmp || Op == MOp::JmpIf || Op == MOp::JmpIfZ ||
        Op == MOp::BrCmp32 || Op == MOp::BrCmpI32 || Op == MOp::BrCmp64 ||
        Op == MOp::BrCmpI64) {
      Code->Insts[I].Imm = int64_t(Code->Insts.size()) + 7;
      Patched = I;
      break;
    }
  }
  ASSERT_NE(Patched, UINT32_MAX) << "body compiled without any branch";
  VerifyReport R = verifyMachineCode(*M, F, *Code, VerifyScope::baseline());
  EXPECT_FALSE(R.ok());
  const VerifyFinding *Find = findCheck(R, "branch-target");
  ASSERT_NE(Find, nullptr) << R.text();
  EXPECT_EQ(Find->Pc, Patched);
  EXPECT_FALSE(Find->Detail.empty());
}

TEST(Verify, WrongSlotBaseFires) {
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  const FuncDecl &F = mainFunc(*M);
  auto Code = compileFunction(*M, F, CompilerOptions::allopt());
  ASSERT_TRUE(Code);
  uint32_t Patched = UINT32_MAX;
  for (uint32_t I = 0; I < Code->Insts.size(); ++I) {
    MOp Op = Code->Insts[I].Op;
    if (Op == MOp::StSlot || Op == MOp::LdSlot) {
      Code->Insts[I].Imm = int64_t(Code->FrameSlots) + 3;
      Patched = I;
      break;
    }
  }
  ASSERT_NE(Patched, UINT32_MAX) << "body compiled without slot traffic";
  VerifyReport R = verifyMachineCode(*M, F, *Code, VerifyScope::baseline());
  const VerifyFinding *Find = findCheck(R, "slot-bounds");
  ASSERT_NE(Find, nullptr) << R.text();
  EXPECT_EQ(Find->Pc, Patched);
  EXPECT_NE(Find->Detail.find("frame"), std::string::npos) << Find->Detail;
}

TEST(Verify, DroppedLineTableEntryFires) {
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  const FuncDecl &F = mainFunc(*M);
  auto Code = compileFunction(*M, F, CompilerOptions::allopt());
  ASSERT_TRUE(Code);
  // Locate the trapping load and drop exactly the line-table entry that
  // covers it: its trap would now be attributed to the wrong opcode.
  uint32_t LoadPc = UINT32_MAX;
  for (uint32_t I = 0; I < Code->Insts.size(); ++I)
    if (Code->Insts[I].Op == MOp::LdM32) {
      LoadPc = I;
      break;
    }
  ASSERT_NE(LoadPc, UINT32_MAX) << "no memory load emitted";
  bool Dropped = false;
  for (size_t I = Code->LineTable.size(); I-- > 0;) {
    if (Code->LineTable[I].Pc <= LoadPc) {
      Code->LineTable.erase(Code->LineTable.begin() + long(I));
      Dropped = true;
      break;
    }
  }
  ASSERT_TRUE(Dropped);
  VerifyReport R = verifyMachineCode(*M, F, *Code, VerifyScope::baseline());
  EXPECT_FALSE(R.ok());
  // The load is now covered by the previous entry (a non-trapping opcode)
  // or by nothing at all; either way it is a trap-coverage violation.
  EXPECT_TRUE(hasCheck(R, "trap-coverage")) << R.text();
}

TEST(Verify, OversizedFrameSlotFires) {
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  const FuncDecl &F = mainFunc(*M);
  auto Code = compileFunction(*M, F, CompilerOptions::allopt());
  ASSERT_TRUE(Code);
  // Shrink the prologue's frame reservation below the locals: every slot
  // the body touches is now out of bounds, and the frame itself is
  // malformed.
  Code->FrameSlots = F.numLocalSlots() - 1;
  VerifyReport R = verifyMachineCode(*M, F, *Code, VerifyScope::baseline());
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasCheck(R, "frame-size")) << R.text();
  EXPECT_TRUE(hasCheck(R, "slot-bounds")) << R.text();
}

TEST(Verify, ScrambledLineTableOrderFires) {
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  const FuncDecl &F = mainFunc(*M);
  auto Code = compileFunction(*M, F, CompilerOptions::allopt());
  ASSERT_TRUE(Code);
  ASSERT_GE(Code->LineTable.size(), 2u);
  std::swap(Code->LineTable.front(), Code->LineTable.back());
  VerifyReport R = verifyMachineCode(*M, F, *Code, VerifyScope::baseline());
  EXPECT_TRUE(hasCheck(R, "line-table")) << R.text();
}

TEST(Verify, EmptiedBodyFires) {
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  const FuncDecl &F = mainFunc(*M);
  auto Code = compileFunction(*M, F, CompilerOptions::allopt());
  ASSERT_TRUE(Code);
  Code->Insts.clear();
  VerifyReport R = verifyMachineCode(*M, F, *Code, VerifyScope::baseline());
  EXPECT_TRUE(hasCheck(R, "empty-code")) << R.text();
}

TEST(Verify, CorruptedCallIndexFires) {
  // A corrupted CallDirect immediate must be reported as a call-index
  // finding — and must NOT be dereferenced by the call-shape pass (which
  // would read M.Funcs out of bounds on exactly the artifacts the verifier
  // exists to reject).
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  const FuncDecl &F = mainFunc(*M);
  auto Code = compileFunction(*M, F, CompilerOptions::allopt());
  ASSERT_TRUE(Code);
  uint32_t CallPc = UINT32_MAX;
  for (uint32_t I = 0; I < Code->Insts.size(); ++I)
    if (Code->Insts[I].Op == MOp::CallDirect) {
      CallPc = I;
      break;
    }
  ASSERT_NE(CallPc, UINT32_MAX) << "body compiled without a direct call";
  int64_t Saved = Code->Insts[CallPc].Imm;
  Code->Insts[CallPc].Imm = int64_t(M->Funcs.size()) + 5;
  VerifyReport R = verifyMachineCode(*M, F, *Code, VerifyScope::baseline());
  const VerifyFinding *Find = findCheck(R, "call-index");
  ASSERT_NE(Find, nullptr) << R.text();
  EXPECT_EQ(Find->Pc, CallPc);
  EXPECT_NE(Find->Detail.find("outside"), std::string::npos) << Find->Detail;
  // A negative index takes the same guarded path.
  Code->Insts[CallPc].Imm = -3;
  VerifyReport R2 = verifyMachineCode(*M, F, *Code, VerifyScope::baseline());
  EXPECT_TRUE(hasCheck(R2, "call-index")) << R2.text();
  // Restoring the callee restores a clean report.
  Code->Insts[CallPc].Imm = Saved;
  EXPECT_TRUE(verifyMachineCode(*M, F, *Code, VerifyScope::baseline()).ok());
}

TEST(Verify, CorruptedOsrEntryFires) {
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  const FuncDecl &F = mainFunc(*M);
  CompilerOptions Opts = CompilerOptions::allopt();
  Opts.EmitOsrEntries = true;
  Opts.EmitDeoptChecks = true;
  auto Code = compileFunction(*M, F, Opts);
  ASSERT_TRUE(Code);
  ASSERT_FALSE(Code->OsrEntries.empty()) << "loop body has an OSR entry";
  ASSERT_TRUE(verifyMachineCode(*M, F, *Code, VerifyScope::baseline()).ok());
  // Point the OSR entry's bytecode ip between opcode boundaries: a tier-up
  // transfer would resume mid-opcode.
  Code->OsrEntries[0].Ip += 1;
  VerifyReport R = verifyMachineCode(*M, F, *Code, VerifyScope::baseline());
  EXPECT_TRUE(hasCheck(R, "osr-entry")) << R.text();
}

TEST(Verify, CorruptedDeoptStackPositionFires) {
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  const FuncDecl &F = mainFunc(*M);
  CompilerOptions Opts = CompilerOptions::allopt();
  Opts.EmitOsrEntries = true;
  Opts.EmitDeoptChecks = true;
  auto Code = compileFunction(*M, F, Opts);
  ASSERT_TRUE(Code);
  uint32_t Patched = UINT32_MAX;
  for (uint32_t I = 0; I < Code->Insts.size(); ++I)
    if (Code->Insts[I].Op == MOp::DeoptCheck) {
      Code->Insts[I].Imm2 += 1; // Resume with a side-table position skew.
      Patched = I;
      break;
    }
  ASSERT_NE(Patched, UINT32_MAX);
  VerifyReport R = verifyMachineCode(*M, F, *Code, VerifyScope::baseline());
  const VerifyFinding *Find = findCheck(R, "deopt-site");
  ASSERT_NE(Find, nullptr) << R.text();
  EXPECT_EQ(Find->Pc, Patched);
}

// --- Negatives: hand-corrupted threaded IR ------------------------------

TEST(Verify, ThreadedPatchedBranchTargetFires) {
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  const FuncDecl &F = mainFunc(*M);
  auto TC = predecodeFunction(*M, F, nullptr, /*EnableFusion=*/true);
  ASSERT_TRUE(TC);
  ASSERT_TRUE(verifyThreadedCode(*M, F, *TC).ok())
      << verifyThreadedCode(*M, F, *TC).text();
  uint32_t Patched = UINT32_MAX;
  for (uint32_t I = 0; I < TC->Units.size(); ++I) {
    TOp Op = TOp(TC->Units[I].Op);
    if (Op == TOp::Br || Op == TOp::BrIf) {
      TC->Units[I].A += 1; // Pre-resolved target now lands one unit off.
      Patched = I;
      break;
    }
  }
  ASSERT_NE(Patched, UINT32_MAX) << "no unfused branch unit";
  VerifyReport R = verifyThreadedCode(*M, F, *TC);
  const VerifyFinding *Find = findCheck(R, "threaded-branch");
  ASSERT_NE(Find, nullptr) << R.text();
  EXPECT_EQ(Find->Pc, Patched);
}

TEST(Verify, ThreadedWrongSlotBaseFires) {
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  const FuncDecl &F = mainFunc(*M);
  auto TC = predecodeFunction(*M, F, nullptr, /*EnableFusion=*/true);
  ASSERT_TRUE(TC);
  uint32_t Patched = UINT32_MAX;
  for (uint32_t I = 0; I < TC->Units.size(); ++I) {
    TOp Op = TOp(TC->Units[I].Op);
    if (Op == TOp::Br || Op == TOp::BrIf) {
      TC->Units[I].Aux += 1; // Merge values would land one slot high.
      Patched = I;
      break;
    }
  }
  ASSERT_NE(Patched, UINT32_MAX) << "no unfused branch unit";
  VerifyReport R = verifyThreadedCode(*M, F, *TC);
  const VerifyFinding *Find = findCheck(R, "threaded-slot-base");
  ASSERT_NE(Find, nullptr) << R.text();
  EXPECT_EQ(Find->Pc, Patched);
}

TEST(Verify, FusionAcrossProbedPcFires) {
  // Pre-decode WITHOUT probe knowledge, then verify against an oracle that
  // claims a probe inside the fused span: exactly the stale-IR hazard the
  // re-predecode path exists to prevent.
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.localGet(1);
  F.op(Opcode::I32Add);
  MB.exportFunc("f", MB.funcIndex(F));
  std::unique_ptr<Module> M = buildAndValidate(MB);
  ASSERT_TRUE(M);
  const FuncDecl &D = M->Funcs[0];
  auto TC = predecodeFunction(*M, D, nullptr, /*EnableFusion=*/true);
  ASSERT_TRUE(TC);
  ASSERT_FALSE(TC->FusedSpans.empty()) << "get-get-add did not fuse";
  ASSERT_TRUE(verifyThreadedCode(*M, D, *TC).ok());
  // The second local.get: an interior opcode boundary of the fused span.
  uint32_t ProbedIp = TC->FusedSpans[0].first + 2;
  VerifyReport R = verifyThreadedCode(
      *M, D, *TC, [&](uint32_t Ip) { return Ip == ProbedIp; });
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasCheck(R, "threaded-fusion") || hasCheck(R, "threaded-probe"))
      << R.text();
  // Re-pre-decoding with the probe oracle (as Engine::addProbe does) must
  // produce IR that verifies clean against the same oracle.
  FuncInstance FI;
  FI.Decl = &D;
  FI.setProbeBit(ProbedIp);
  auto TC2 = predecodeFunction(*M, D, &FI, /*EnableFusion=*/true);
  ASSERT_TRUE(TC2);
  EXPECT_TRUE(verifyThreadedCode(*M, D, *TC2,
                                 [&](uint32_t Ip) { return Ip == ProbedIp; })
                  .ok());
}

// --- Positive sweep: every fig. 7 suite module on every pipeline --------

TEST(Verify, Fig7SuitesCleanOnEveryTier) {
  for (const LineItem &Item : allSuites(1)) {
    WasmError Err;
    std::unique_ptr<Module> M = decodeModule(Item.Bytes, &Err);
    ASSERT_TRUE(M) << Item.Suite << "/" << Item.Name << ": " << Err.Message;
    ASSERT_TRUE(validateModule(*M, &Err))
        << Item.Suite << "/" << Item.Name << ": " << Err.Message;
    CompilerOptions Opts = CompilerOptions::allopt();
    for (const FuncDecl &F : M->Funcs) {
      if (F.Imported)
        continue;
      std::string Where = Item.Suite + "/" + Item.Name + " func " +
                          std::to_string(F.Index);
      VerifyScope Base = VerifyScope::baseline();
      auto Spc = compileFunction(*M, F, Opts);
      ASSERT_TRUE(Spc) << Where;
      EXPECT_TRUE(verifyMachineCode(*M, F, *Spc, Base).ok())
          << Where << "\n" << verifyMachineCode(*M, F, *Spc, Base).text();
      auto Two = compileTwoPass(*M, F, Opts);
      ASSERT_TRUE(Two) << Where;
      EXPECT_TRUE(verifyMachineCode(*M, F, *Two, Base).ok())
          << Where << "\n" << verifyMachineCode(*M, F, *Two, Base).text();
      auto Cp = compileCopyPatch(*M, F, Opts);
      ASSERT_TRUE(Cp) << Where;
      EXPECT_TRUE(verifyMachineCode(*M, F, *Cp, Base).ok())
          << Where << "\n" << verifyMachineCode(*M, F, *Cp, Base).text();
      auto Opt = compileOptimizing(*M, F, Opts);
      ASSERT_TRUE(Opt) << Where;
      VerifyScope OptScope = VerifyScope::optimizing();
      EXPECT_TRUE(verifyMachineCode(*M, F, *Opt, OptScope).ok())
          << Where << "\n" << verifyMachineCode(*M, F, *Opt, OptScope).text();
      auto TC = predecodeFunction(*M, F, nullptr, /*EnableFusion=*/true);
      ASSERT_TRUE(TC) << Where;
      EXPECT_TRUE(verifyThreadedCode(*M, F, *TC).ok())
          << Where << "\n" << verifyThreadedCode(*M, F, *TC).text();
    }
  }
}

// --- Engine integration: rejection surfaces, acceptance is invisible ----

TEST(Verify, EngineVerifiesEagerLoadsClean) {
  EngineConfig Cfg;
  Cfg.Mode = ExecMode::Jit;
  Cfg.VerifyArtifacts = true;
  Cfg.UseCompileCache = false;
  Engine E(Cfg);
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.i32Const(1);
  F.op(Opcode::I32Add);
  MB.exportFunc("inc", MB.funcIndex(F));
  WasmError Err;
  std::unique_ptr<LoadedModule> LM = E.load(MB.build(), &Err);
  ASSERT_TRUE(LM) << Err.Message;
  EXPECT_TRUE(E.verifyError().empty()) << E.verifyError();
  std::vector<Value> Out;
  EXPECT_EQ(E.invoke(*LM, "inc", {Value::makeI32(41)}, &Out),
            TrapReason::None);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], Value::makeI32(42));
}

// --- Patch-point table: the relocatable-artifact contract ---------------

namespace {

/// Classifies every site as a pure counter, so OptimizeProbes intrinsifies
/// each one into a relocatable CntInc + CounterCell patch entry.
class CounterEverywhereOracle : public ProbeSiteOracle {
public:
  ProbeSiteKind classify(uint32_t, uint32_t) const override {
    return ProbeSiteKind::Counter;
  }
  uint64_t *counterAddr(uint32_t, uint32_t) const override { return nullptr; }
};

/// Compiles the rich module's main body with a counter probe on every
/// opcode: the result carries at least one unbound CntInc covered by the
/// patch table.
std::unique_ptr<MCode> compileCounterBody(const Module &M) {
  CounterEverywhereOracle Probes;
  auto Code =
      compileFunction(M, mainFunc(M), CompilerOptions::allopt(), &Probes);
  EXPECT_TRUE(Code);
  if (Code) {
    EXPECT_FALSE(Code->Patches.empty());
    for (const PatchPoint &P : Code->Patches)
      EXPECT_EQ(Code->Insts[P.Pc].Imm, 0) << "emitter baked an address";
  }
  return Code;
}

} // namespace

TEST(Verify, RelocatableCounterBodyIsClean) {
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  auto Code = compileCounterBody(*M);
  ASSERT_TRUE(Code);
  VerifyReport R =
      verifyMachineCode(*M, mainFunc(*M), *Code, VerifyScope::baseline());
  EXPECT_TRUE(R.ok()) << R.text();
}

TEST(Verify, BakedCounterAddressFires) {
  // The attack the relocation refactor closes off: a (deserialized,
  // adversarial) artifact smuggling an absolute cell address in CntInc's
  // immediate. The executor would increment through it blindly; the
  // verifier must reject the artifact before it can ever execute.
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  auto Code = compileCounterBody(*M);
  ASSERT_TRUE(Code);
  Code->Insts[Code->Patches.front().Pc].Imm = 0x7FFF0000DEADBEEFll;
  VerifyReport R =
      verifyMachineCode(*M, mainFunc(*M), *Code, VerifyScope::baseline());
  EXPECT_FALSE(R.ok());
  const VerifyFinding *Find = findCheck(R, "patch-point");
  ASSERT_NE(Find, nullptr) << R.text();
  EXPECT_EQ(Find->Pc, Code->Patches.front().Pc);
}

TEST(Verify, UncoveredCntIncFires) {
  // A CntInc with no covering table entry would execute with its unbound
  // zero operand — the bind step could never reach it.
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  auto Code = compileCounterBody(*M);
  ASSERT_TRUE(Code);
  uint32_t Orphaned = Code->Patches.back().Pc;
  Code->Patches.pop_back();
  VerifyReport R =
      verifyMachineCode(*M, mainFunc(*M), *Code, VerifyScope::baseline());
  EXPECT_FALSE(R.ok());
  const VerifyFinding *Find = findCheck(R, "patch-point");
  ASSERT_NE(Find, nullptr) << R.text();
  EXPECT_EQ(Find->Pc, Orphaned);
}

TEST(Verify, PatchPointBeyondCodeEndFires) {
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  auto Code = compileCounterBody(*M);
  ASSERT_TRUE(Code);
  Code->Patches.push_back(
      {PatchKind::CounterCell, uint32_t(Code->Insts.size()) + 7, 0});
  VerifyReport R =
      verifyMachineCode(*M, mainFunc(*M), *Code, VerifyScope::baseline());
  EXPECT_TRUE(hasCheck(R, "patch-point")) << R.text();
}

TEST(Verify, PatchPointOnNonCntIncFires) {
  // Retargeting a valid entry at an arbitrary instruction must fire twice
  // over: the target is not a CntInc, and the real CntInc is uncovered.
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  auto Code = compileCounterBody(*M);
  ASSERT_TRUE(Code);
  PatchPoint &P = Code->Patches.front();
  uint32_t NonCnt = UINT32_MAX;
  for (uint32_t I = 0; I < Code->Insts.size(); ++I)
    if (Code->Insts[I].Op != MOp::CntInc) {
      NonCnt = I;
      break;
    }
  ASSERT_NE(NonCnt, UINT32_MAX);
  P.Pc = NonCnt;
  VerifyReport R =
      verifyMachineCode(*M, mainFunc(*M), *Code, VerifyScope::baseline());
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasCheck(R, "patch-point")) << R.text();
}

TEST(Verify, DuplicatePatchPointFires) {
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  auto Code = compileCounterBody(*M);
  ASSERT_TRUE(Code);
  Code->Patches.push_back(Code->Patches.front());
  VerifyReport R =
      verifyMachineCode(*M, mainFunc(*M), *Code, VerifyScope::baseline());
  EXPECT_FALSE(R.ok());
  const VerifyFinding *Find = findCheck(R, "patch-point");
  ASSERT_NE(Find, nullptr) << R.text();
  EXPECT_NE(Find->Detail.find("duplicate"), std::string::npos) << R.text();
}

TEST(Verify, PatchPointNonBoundaryOperandFires) {
  // The operand names the probed bytecode offset the engine uses to look
  // up the counter cell; an off-boundary (or 32-bit-overflowing) value
  // could never have come from a real probe site.
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  auto Code = compileCounterBody(*M);
  ASSERT_TRUE(Code);
  Code->Patches.front().Operand = ~uint64_t(0);
  VerifyReport R =
      verifyMachineCode(*M, mainFunc(*M), *Code, VerifyScope::baseline());
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasCheck(R, "patch-point")) << R.text();
}

TEST(Verify, BackwardLineTablePcFires) {
  // Companion to MCode::noteLine's debug assert: a line entry whose Pc
  // runs backward (the emitter rewound the code stream, or a deserialized
  // artifact was tampered with) erases trap attribution and must be
  // rejected by the release-build verifier too.
  std::unique_ptr<Module> M = buildRichModule();
  ASSERT_TRUE(M);
  const FuncDecl &F = mainFunc(*M);
  auto Code = compileFunction(*M, F, CompilerOptions::allopt());
  ASSERT_TRUE(Code);
  ASSERT_GE(Code->LineTable.size(), 2u);
  Code->LineTable.push_back({0, Code->LineTable.front().Ip});
  VerifyReport R = verifyMachineCode(*M, F, *Code, VerifyScope::baseline());
  EXPECT_FALSE(R.ok());
  const VerifyFinding *Find = findCheck(R, "line-table");
  ASSERT_NE(Find, nullptr) << R.text();
  EXPECT_NE(Find->Detail.find("ascending"), std::string::npos) << R.text();
}
