//===- tests/test_diskcache.cpp - on-disk artifact cache battery ------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The persistent artifact cache (src/cache/diskcache.*) and its engine
// wiring: serialization round-trips, the cross-process warm start (two
// engines, two private in-process caches, one directory — only the disk
// level can serve the second load), and the damage battery: truncation,
// bit-flipped payloads, stale format digests, wrong-key echoes,
// checksum-valid-but-semantically-wrong artifacts (caught by the
// mandatory re-verify at admission), concurrent writer races, and
// unopenable directories. Every damaged file must be rejected, deleted
// and rebuilt — never crash the engine, never serve a bad artifact.
// Also hosts the parseU64 unit tests (support/parse.h): the checked
// numeric-input helper behind --scale/--fuel/WISP_CACHE_BYTES.
//
//===----------------------------------------------------------------------===//

#include "cache/diskcache.h"

#include "cache/compilecache.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "interp/predecode.h"
#include "spc/compiler.h"
#include "support/parse.h"
#include "testutil.h"

#include <cstdio>
#include <dirent.h>
#include <functional>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>

using namespace wisp;

namespace {

/// Creates a fresh private directory for one test.
std::string makeTempDir() {
  char Tmpl[] = "/tmp/wisp-test-disk-XXXXXX";
  char *D = mkdtemp(Tmpl);
  EXPECT_NE(D, nullptr);
  return D ? std::string(D) : std::string();
}

/// Removes every regular file in \p Dir, then the directory itself (the
/// store writes a flat namespace, nothing recursive to handle).
void removeTempDir(const std::string &Dir) {
  if (Dir.empty())
    return;
  if (DIR *D = opendir(Dir.c_str())) {
    while (struct dirent *E = readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        ::remove((Dir + "/" + Name).c_str());
    }
    closedir(D);
  }
  rmdir(Dir.c_str());
}

/// RAII wrapper so failures still clean /tmp.
struct TempDir {
  std::string Path = makeTempDir();
  ~TempDir() { removeTempDir(Path); }
};

/// Artifact files of \p Kind currently published in \p Dir.
std::vector<std::string> artifactFiles(const std::string &Dir,
                                       DiskArtifactKind Kind) {
  std::vector<std::string> Out;
  if (DIR *D = opendir(Dir.c_str())) {
    while (struct dirent *E = readdir(D)) {
      std::string Name = E->d_name;
      if (!Name.empty() && Name[0] == char(Kind) && Name.size() > 4 &&
          Name.substr(Name.size() - 4) == ".wac")
        Out.push_back(Dir + "/" + Name);
    }
    closedir(D);
  }
  return Out;
}

/// add(a, b) — one body, one memory page, exported as "add".
std::vector<uint8_t> addModule() {
  ModuleBuilder MB;
  uint32_t Ty = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(Ty);
  F.localGet(0);
  F.localGet(1);
  F.op(Opcode::I32Add);
  MB.addMemory(1);
  MB.exportFunc("add", 0);
  return MB.build();
}

std::unique_ptr<LoadedModule> loadOn(Engine &E,
                                     const std::vector<uint8_t> &Bytes) {
  WasmError Err;
  std::unique_ptr<LoadedModule> LM = E.load(Bytes, &Err);
  EXPECT_NE(LM, nullptr) << Err.Message;
  return LM;
}

Value invokeOne(Engine &E, LoadedModule &LM, const std::string &Name,
                const std::vector<Value> &Args) {
  std::vector<Value> Out;
  EXPECT_EQ(E.invoke(LM, Name, Args, &Out), TrapReason::None);
  EXPECT_EQ(Out.size(), 1u);
  return Out.empty() ? Value{} : Out[0];
}

/// A caching + disk-backed configuration rooted at \p Dir. VerifyArtifacts
/// is pinned on so the codeCacheKey the test recomputes matches the
/// engine's regardless of build flavor.
EngineConfig diskConfig(const char *Name, const std::string &Dir) {
  EngineConfig Cfg = configByName(Name);
  Cfg.UseCompileCache = true;
  Cfg.VerifyArtifacts = true;
  Cfg.DiskCacheDir = Dir;
  return Cfg;
}

/// Loads + invokes add(19, 23) on a fresh engine with a fresh in-process
/// cache over \p Dir; returns the LoadStats. Only the disk level persists
/// across calls, so every call is a cross-process warm start in miniature.
LoadStats runOnce(const char *Config, const std::string &Dir,
                  uint64_t *DiskRejected = nullptr,
                  std::string *DiskNote = nullptr) {
  CompileCache Cache;
  Engine E(diskConfig(Config, Dir), &Cache);
  auto LM = loadOn(E, addModule());
  EXPECT_NE(LM, nullptr);
  if (!LM)
    return LoadStats();
  EXPECT_EQ(
      invokeOne(E, *LM, "add", {Value::makeI32(19), Value::makeI32(23)})
          .asI32(),
      42);
  if (DiskRejected)
    *DiskRejected = E.disk() ? E.disk()->totals().Rejected : 0;
  if (DiskNote)
    *DiskNote = E.diskNote();
  return LM->Stats;
}

// --- Serialization round-trips --------------------------------------------

TEST(DiskSerialize, MCodeRoundTripsByteIdentical) {
  std::unique_ptr<Module> M = buildAndValidate(addModule());
  ASSERT_TRUE(M);
  EngineConfig Cfg = configByName("wizard-spc");
  std::unique_ptr<MCode> Code =
      compileFunction(*M, M->Funcs[0], Cfg.Opts, nullptr);
  ASSERT_TRUE(Code);
  ASSERT_FALSE(Code->Insts.empty());
  ASSERT_FALSE(Code->LineTable.empty());

  std::vector<uint8_t> Bytes = serializeMCode(*Code);
  std::shared_ptr<MCode> Back = deserializeMCode(Bytes);
  ASSERT_TRUE(Back);

  EXPECT_EQ(Back->FuncIndex, Code->FuncIndex);
  EXPECT_EQ(Back->FrameSlots, Code->FrameSlots);
  ASSERT_EQ(Back->Insts.size(), Code->Insts.size());
  for (size_t I = 0; I < Code->Insts.size(); ++I) {
    EXPECT_EQ(Back->Insts[I].Op, Code->Insts[I].Op) << "inst " << I;
    EXPECT_EQ(Back->Insts[I].Imm, Code->Insts[I].Imm) << "inst " << I;
    EXPECT_EQ(Back->Insts[I].Imm2, Code->Insts[I].Imm2) << "inst " << I;
  }
  ASSERT_EQ(Back->LineTable.size(), Code->LineTable.size());
  for (size_t I = 0; I < Code->LineTable.size(); ++I) {
    EXPECT_EQ(Back->LineTable[I].Pc, Code->LineTable[I].Pc);
    EXPECT_EQ(Back->LineTable[I].Ip, Code->LineTable[I].Ip);
  }
  EXPECT_EQ(Back->BrTables, Code->BrTables);
  EXPECT_EQ(Back->Patches.size(), Code->Patches.size());
  // The reserialized form is bit-identical: the format is canonical.
  EXPECT_EQ(serializeMCode(*Back), Bytes);
}

TEST(DiskSerialize, ThreadedCodeRoundTripsByteIdentical) {
  std::unique_ptr<Module> M = buildAndValidate(addModule());
  ASSERT_TRUE(M);
  std::unique_ptr<ThreadedCode> TC =
      predecodeFunction(*M, M->Funcs[0], nullptr, /*EnableFusion=*/true);
  ASSERT_TRUE(TC);
  ASSERT_FALSE(TC->Units.empty());

  std::vector<uint8_t> Bytes = serializeThreadedCode(*TC);
  std::shared_ptr<ThreadedCode> Back = deserializeThreadedCode(Bytes);
  ASSERT_TRUE(Back);
  EXPECT_EQ(Back->Units.size(), TC->Units.size());
  EXPECT_EQ(Back->NumFused, TC->NumFused);
  EXPECT_EQ(serializeThreadedCode(*Back), Bytes);
}

TEST(DiskSerialize, DeserializeRejectsDamage) {
  std::unique_ptr<Module> M = buildAndValidate(addModule());
  ASSERT_TRUE(M);
  EngineConfig Cfg = configByName("wizard-spc");
  std::unique_ptr<MCode> Code =
      compileFunction(*M, M->Funcs[0], Cfg.Opts, nullptr);
  ASSERT_TRUE(Code);
  std::vector<uint8_t> Bytes = serializeMCode(*Code);

  // Truncation at every sampled prefix must fail cleanly, never crash.
  for (size_t Len = 0; Len < Bytes.size(); Len += 7) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Len);
    EXPECT_EQ(deserializeMCode(Cut), nullptr) << "prefix " << Len;
  }
  // Trailing garbage is rejected too (no silent over-read).
  std::vector<uint8_t> Long = Bytes;
  Long.push_back(0);
  EXPECT_EQ(deserializeMCode(Long), nullptr);
}

// --- Cross-process warm start ---------------------------------------------

TEST(DiskCacheTest, CrossProcessWarmStartServesFromDisk) {
  TempDir Tmp;
  ASSERT_FALSE(Tmp.Path.empty());

  // Process 1: everything misses, the artifact is published.
  LoadStats Cold = runOnce("wizard-spc", Tmp.Path);
  EXPECT_EQ(Cold.DiskHits, 0u);
  EXPECT_GE(Cold.DiskMisses, 1u);
  EXPECT_GE(Cold.CacheMisses, 1u);
  ASSERT_EQ(artifactFiles(Tmp.Path, DiskArtifactKind::Code).size(), 1u);

  // Process 2 (fresh in-process cache): the body comes from disk — it is
  // neither an in-process hit nor a rebuild, and the recorded build time
  // is credited as saved work.
  LoadStats Warm = runOnce("wizard-spc", Tmp.Path);
  EXPECT_GE(Warm.DiskHits, 1u);
  EXPECT_EQ(Warm.DiskMisses, 0u);
  EXPECT_GT(Warm.CacheSavedNs, 0u);
}

TEST(DiskCacheTest, ThreadedIrWarmStartServesFromDisk) {
  TempDir Tmp;
  ASSERT_FALSE(Tmp.Path.empty());

  LoadStats Cold = runOnce("interp-threaded", Tmp.Path);
  EXPECT_EQ(Cold.DiskHits, 0u);
  EXPECT_GE(Cold.DiskMisses, 1u);
  ASSERT_EQ(artifactFiles(Tmp.Path, DiskArtifactKind::Ir).size(), 1u);

  LoadStats Warm = runOnce("interp-threaded", Tmp.Path);
  EXPECT_GE(Warm.DiskHits, 1u);
  EXPECT_EQ(Warm.DiskMisses, 0u);
}

TEST(DiskCacheTest, CodeAndIrArtifactsNeverAlias) {
  TempDir Tmp;
  ASSERT_FALSE(Tmp.Path.empty());
  runOnce("wizard-spc", Tmp.Path);
  runOnce("interp-threaded", Tmp.Path);
  // Same body, two artifact families, two files.
  EXPECT_EQ(artifactFiles(Tmp.Path, DiskArtifactKind::Code).size(), 1u);
  EXPECT_EQ(artifactFiles(Tmp.Path, DiskArtifactKind::Ir).size(), 1u);
}

// --- Damage battery: every corruption rebuilds cleanly --------------------

/// Publishes a warm artifact, damages it with \p Damage, then asserts the
/// next load rejects the file, rebuilds, still computes 42, and
/// re-publishes a good artifact that a third load can hit.
void corruptionRoundTrip(
    const std::function<void(const std::string &)> &Damage) {
  TempDir Tmp;
  ASSERT_FALSE(Tmp.Path.empty());
  runOnce("wizard-spc", Tmp.Path);
  std::vector<std::string> Files =
      artifactFiles(Tmp.Path, DiskArtifactKind::Code);
  ASSERT_EQ(Files.size(), 1u);
  Damage(Files[0]);

  uint64_t Rejected = 0;
  LoadStats Hurt = runOnce("wizard-spc", Tmp.Path, &Rejected);
  EXPECT_EQ(Hurt.DiskHits, 0u) << "damaged artifact must not be served";
  EXPECT_GE(Hurt.DiskMisses, 1u);
  EXPECT_GE(Rejected, 1u) << "damage must be detected and the file deleted";

  // The rebuild re-published a good artifact: the third load hits disk.
  ASSERT_EQ(artifactFiles(Tmp.Path, DiskArtifactKind::Code).size(), 1u);
  LoadStats Healed = runOnce("wizard-spc", Tmp.Path);
  EXPECT_GE(Healed.DiskHits, 1u);
}

TEST(DiskCorruption, TruncatedFileRebuildsCleanly) {
  corruptionRoundTrip([](const std::string &Path) {
    EXPECT_EQ(truncate(Path.c_str(), 40), 0);
  });
}

TEST(DiskCorruption, TruncatedToZeroRebuildsCleanly) {
  corruptionRoundTrip([](const std::string &Path) {
    EXPECT_EQ(truncate(Path.c_str(), 0), 0);
  });
}

TEST(DiskCorruption, BitFlippedPayloadRebuildsCleanly) {
  corruptionRoundTrip([](const std::string &Path) {
    // Flip one bit past the 72-byte header: the checksum must catch it.
    FILE *F = fopen(Path.c_str(), "r+b");
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(fseek(F, 80, SEEK_SET), 0);
    int C = fgetc(F);
    ASSERT_NE(C, EOF);
    ASSERT_EQ(fseek(F, 80, SEEK_SET), 0);
    fputc(C ^ 0x40, F);
    fclose(F);
  });
}

TEST(DiskCorruption, StaleFormatDigestRebuildsCleanly) {
  corruptionRoundTrip([](const std::string &Path) {
    // Overwrite the u64 build/version digest at header offset 8: a file
    // written by an incompatible wisp build must never be trusted.
    FILE *F = fopen(Path.c_str(), "r+b");
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(fseek(F, 8, SEEK_SET), 0);
    for (int I = 0; I < 8; ++I)
      fputc(0x5A, F);
    fclose(F);
  });
}

TEST(DiskCorruption, WrongKeyEchoRebuildsCleanly) {
  corruptionRoundTrip([](const std::string &Path) {
    // Corrupt the key echo at offset 16: a renamed/collided file must not
    // be served under a key it was not written for.
    FILE *F = fopen(Path.c_str(), "r+b");
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(fseek(F, 16, SEEK_SET), 0);
    for (int I = 0; I < 16; ++I)
      fputc(0xA5, F);
    fclose(F);
  });
}

TEST(DiskCorruption, SemanticDamageCaughtByReVerify) {
  // The hard case: a file whose header chain and checksum are VALID but
  // whose payload decodes to a semantically wrong artifact. Integrity
  // checks cannot catch this — only the mandatory re-verification at
  // admission can.
  TempDir Tmp;
  ASSERT_FALSE(Tmp.Path.empty());
  runOnce("wizard-spc", Tmp.Path);

  // Recompute the engine's key with the public schema and rewrite the
  // artifact under it: deserialize, plant a patch point that targets a
  // non-CntInc instruction, reserialize, store (store writes a correct
  // header and checksum over the poisoned payload).
  std::unique_ptr<Module> M = buildAndValidate(addModule());
  ASSERT_TRUE(M);
  EngineConfig Cfg = diskConfig("wizard-spc", Tmp.Path);
  CacheKey K = codeCacheKey(moduleContextDigest(*M), *M, M->Funcs[0],
                            Cfg.Compiler, Cfg.Opts, Cfg.VerifyArtifacts);
  std::unique_ptr<DiskCache> DC = DiskCache::open(Tmp.Path);
  ASSERT_TRUE(DC);
  std::vector<uint8_t> Payload;
  ASSERT_TRUE(DC->load(K, DiskArtifactKind::Code, &Payload))
      << "test must recompute the exact key the engine stored under";
  std::shared_ptr<MCode> Art = deserializeMCode(Payload);
  ASSERT_TRUE(Art);
  MCode Poisoned = *Art;
  Poisoned.Patches.push_back({PatchKind::CounterCell, 0, 0});
  ASSERT_TRUE(DC->store(K, DiskArtifactKind::Code, serializeMCode(Poisoned),
                        /*BuildNs=*/1000));

  uint64_t Rejected = 0;
  std::string Note;
  LoadStats Hurt = runOnce("wizard-spc", Tmp.Path, &Rejected, &Note);
  EXPECT_EQ(Hurt.DiskHits, 0u) << "unverifiable artifact must not be served";
  EXPECT_GE(Rejected, 1u);
  EXPECT_NE(Note.find("verifier"), std::string::npos) << Note;

  // Rebuilt and re-published: the next load hits a good artifact again.
  LoadStats Healed = runOnce("wizard-spc", Tmp.Path);
  EXPECT_GE(Healed.DiskHits, 1u);
}

TEST(DiskCorruption, ConcurrentWritersRaceHarmlessly) {
  TempDir Tmp;
  ASSERT_FALSE(Tmp.Path.empty());
  std::unique_ptr<Module> M = buildAndValidate(addModule());
  ASSERT_TRUE(M);
  EngineConfig Cfg = configByName("wizard-spc");
  std::unique_ptr<MCode> Code =
      compileFunction(*M, M->Funcs[0], Cfg.Opts, nullptr);
  ASSERT_TRUE(Code);
  std::vector<uint8_t> Payload = serializeMCode(*Code);
  CacheKey K{0x1122334455667788ull, 0x99AABBCCDDEEFF00ull};

  // Eight writers hammer one key (same content by construction, as in the
  // real store). Publication is temp-file + rename, so a concurrent
  // reader sees either no file or a complete one — never a torn write.
  std::vector<std::thread> Ts;
  for (int W = 0; W < 8; ++W)
    Ts.emplace_back([&, W] {
      std::unique_ptr<DiskCache> DC = DiskCache::open(Tmp.Path);
      ASSERT_TRUE(DC);
      for (int I = 0; I < 25; ++I) {
        EXPECT_TRUE(DC->store(K, DiskArtifactKind::Code, Payload, 1000));
        std::vector<uint8_t> Got;
        if (DC->load(K, DiskArtifactKind::Code, &Got)) {
          EXPECT_EQ(Got, Payload) << "writer " << W << " iter " << I;
        }
      }
    });
  for (std::thread &T : Ts)
    T.join();

  // After the dust settles the file is complete and valid.
  std::unique_ptr<DiskCache> DC = DiskCache::open(Tmp.Path);
  ASSERT_TRUE(DC);
  std::vector<uint8_t> Got;
  uint64_t BuildNs = 0;
  ASSERT_TRUE(DC->load(K, DiskArtifactKind::Code, &Got, &BuildNs));
  EXPECT_EQ(Got, Payload);
  EXPECT_EQ(BuildNs, 1000u);
  // No temp-file litter survived.
  EXPECT_EQ(artifactFiles(Tmp.Path, DiskArtifactKind::Code).size(), 1u);
}

TEST(DiskCorruption, ConcurrentEnginesOneDirectory) {
  // Eight engines (each its own in-process cache — the shape of separate
  // wisp processes) race cold against one directory, then one more
  // engine must warm-start from whatever they published.
  TempDir Tmp;
  ASSERT_FALSE(Tmp.Path.empty());
  std::vector<std::thread> Ts;
  for (int W = 0; W < 8; ++W)
    Ts.emplace_back([&] {
      LoadStats S = runOnce("wizard-spc", Tmp.Path);
      // Every racer either hit disk or built fresh; both are fine.
      EXPECT_EQ(S.DiskHits + S.DiskMisses, 1u);
    });
  for (std::thread &T : Ts)
    T.join();
  LoadStats Warm = runOnce("wizard-spc", Tmp.Path);
  EXPECT_GE(Warm.DiskHits, 1u);
}

// --- Degradation and gating -----------------------------------------------

TEST(DiskCacheTest, UnopenableDirectoryDegradesGracefully) {
  // A path that cannot be a directory (parent is a regular file): the
  // engine runs without a disk level, the load and invoke still succeed.
  TempDir Tmp;
  ASSERT_FALSE(Tmp.Path.empty());
  std::string Blocker = Tmp.Path + "/blocker";
  FILE *F = fopen(Blocker.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  fclose(F);

  CompileCache Cache;
  Engine E(diskConfig("wizard-spc", Blocker + "/sub"), &Cache);
  EXPECT_EQ(E.disk(), nullptr);
  auto LM = loadOn(E, addModule());
  ASSERT_TRUE(LM);
  EXPECT_EQ(LM->Stats.DiskHits, 0u);
  EXPECT_EQ(LM->Stats.DiskMisses, 0u);
  EXPECT_EQ(
      invokeOne(E, *LM, "add", {Value::makeI32(19), Value::makeI32(23)})
          .asI32(),
      42);
}

TEST(DiskCacheTest, DisabledFlagWritesNothing) {
  TempDir Tmp;
  ASSERT_FALSE(Tmp.Path.empty());
  CompileCache Cache;
  EngineConfig Cfg = diskConfig("wizard-spc", Tmp.Path);
  Cfg.UseDiskCache = false; // --no-disk-cache
  Engine E(Cfg, &Cache);
  EXPECT_EQ(E.disk(), nullptr);
  auto LM = loadOn(E, addModule());
  ASSERT_TRUE(LM);
  EXPECT_TRUE(artifactFiles(Tmp.Path, DiskArtifactKind::Code).empty());
}

TEST(DiskCacheTest, MissLeavesWhyEmptyDamageFillsIt) {
  TempDir Tmp;
  ASSERT_FALSE(Tmp.Path.empty());
  std::unique_ptr<DiskCache> DC = DiskCache::open(Tmp.Path);
  ASSERT_TRUE(DC);
  CacheKey K{1, 2};
  std::vector<uint8_t> Payload;
  std::string Why = "sentinel";
  EXPECT_FALSE(DC->load(K, DiskArtifactKind::Code, &Payload, nullptr, &Why));
  EXPECT_TRUE(Why.empty()) << "plain miss must not report damage";
  EXPECT_EQ(DC->totals().Misses, 1u);

  ASSERT_TRUE(DC->store(K, DiskArtifactKind::Code, {1, 2, 3}, 5));
  EXPECT_EQ(truncate(DC->path(K, DiskArtifactKind::Code).c_str(), 10), 0);
  EXPECT_FALSE(DC->load(K, DiskArtifactKind::Code, &Payload, nullptr, &Why));
  EXPECT_FALSE(Why.empty());
  EXPECT_EQ(DC->totals().Rejected, 1u);
  // The damaged file was deleted: the next lookup is a plain miss.
  Why = "sentinel";
  EXPECT_FALSE(DC->load(K, DiskArtifactKind::Code, &Payload, nullptr, &Why));
  EXPECT_TRUE(Why.empty());
}

// --- parseU64 (support/parse.h) -------------------------------------------

TEST(ParseU64, AcceptsCanonicalForms) {
  uint64_t V = 0;
  EXPECT_TRUE(parseU64("0", &V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(parseU64("42", &V));
  EXPECT_EQ(V, 42u);
  EXPECT_TRUE(parseU64("18446744073709551615", &V));
  EXPECT_EQ(V, UINT64_MAX);
  // Base 0 honors 0x prefixes (WISP_FAULT_SEED-style inputs).
  EXPECT_TRUE(parseU64("0x10", &V, 0));
  EXPECT_EQ(V, 16u);
}

TEST(ParseU64, RejectsEveryMalformedEdge) {
  uint64_t V = 99;
  EXPECT_FALSE(parseU64(nullptr, &V));
  EXPECT_FALSE(parseU64("", &V));
  EXPECT_FALSE(parseU64(" 5", &V));   // Leading whitespace.
  EXPECT_FALSE(parseU64("5 ", &V));   // Trailing junk.
  EXPECT_FALSE(parseU64("5x", &V));   // Trailing junk.
  EXPECT_FALSE(parseU64("-1", &V));   // strtoull would silently wrap this.
  EXPECT_FALSE(parseU64("+5", &V));   // Signs are not accepted.
  EXPECT_FALSE(parseU64("18446744073709551616", &V)); // UINT64_MAX + 1.
  EXPECT_FALSE(parseU64("99999999999999999999", &V)); // Overflow.
  EXPECT_FALSE(parseU64("abc", &V));
  EXPECT_EQ(V, 99u) << "failed parse must not clobber the output";
}

TEST(ParseU64, InRangeEnforcesBounds) {
  uint64_t V = 0;
  EXPECT_TRUE(parseU64InRange("1", 1, 1u << 20, &V));
  EXPECT_EQ(V, 1u);
  EXPECT_TRUE(parseU64InRange("1048576", 1, 1u << 20, &V));
  EXPECT_FALSE(parseU64InRange("0", 1, 1u << 20, &V));
  EXPECT_FALSE(parseU64InRange("1048577", 1, 1u << 20, &V));
  EXPECT_FALSE(parseU64InRange("-1", 1, 1u << 20, &V));
}

} // namespace
