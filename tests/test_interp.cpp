//===- tests/test_interp.cpp - in-place interpreter semantics tests --------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "testutil.h"

#include "runtime/numerics.h"

#include <gtest/gtest.h>

using namespace wisp;

namespace {

// Builds a module with one exported function "f" of the given signature and
// a body provided by a callback.
template <typename BodyFn>
InterpFixture makeFunc(std::vector<ValType> Params, std::vector<ValType> Rets,
                       BodyFn Body, bool WithMemory = false) {
  ModuleBuilder MB;
  if (WithMemory)
    MB.addMemory(1);
  uint32_t T = MB.addType(std::move(Params), std::move(Rets));
  FuncBuilder &F = MB.addFunc(T);
  Body(F, MB);
  MB.exportFunc("f", MB.funcIndex(F));
  return InterpFixture(MB);
}

TEST(Interp, ConstAndAdd) {
  auto Fx = makeFunc({}, {ValType::I32}, [](FuncBuilder &F, ModuleBuilder &) {
    F.i32Const(40);
    F.i32Const(2);
    F.op(Opcode::I32Add);
  });
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {}).one(), Value::makeI32(42));
}

TEST(Interp, ParamsAndLocals) {
  auto Fx = makeFunc({ValType::I32, ValType::I32}, {ValType::I32},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       uint32_t L = F.addLocal(ValType::I32);
                       F.localGet(0);
                       F.localGet(1);
                       F.op(Opcode::I32Mul);
                       F.localSet(L);
                       F.localGet(L);
                       F.i32Const(1);
                       F.op(Opcode::I32Add);
                     });
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeI32(6), Value::makeI32(7)}).one(),
            Value::makeI32(43));
}

TEST(Interp, I32Arithmetic) {
  struct Case {
    Opcode Op;
    int32_t A, B, Want;
  };
  const Case Cases[] = {
      {Opcode::I32Add, 2000000000, 2000000000, int32_t(4000000000u)},
      {Opcode::I32Sub, 5, 9, -4},
      {Opcode::I32Mul, -3, 7, -21},
      {Opcode::I32DivS, -7, 2, -3},
      {Opcode::I32DivU, -1, 2, int32_t(0x7fffffff)},
      {Opcode::I32RemS, -7, 2, -1},
      {Opcode::I32RemU, 7, 3, 1},
      {Opcode::I32And, 0b1100, 0b1010, 0b1000},
      {Opcode::I32Or, 0b1100, 0b1010, 0b1110},
      {Opcode::I32Xor, 0b1100, 0b1010, 0b0110},
      {Opcode::I32Shl, 1, 33, 2}, // Shift counts are mod 32.
      {Opcode::I32ShrS, -8, 1, -4},
      {Opcode::I32ShrU, -8, 1, 0x7ffffffc},
      {Opcode::I32Rotl, int32_t(0x80000001), 1, 3},
      {Opcode::I32Rotr, 3, 1, int32_t(0x80000001)},
  };
  for (const Case &C : Cases) {
    auto Fx = makeFunc({ValType::I32, ValType::I32}, {ValType::I32},
                       [&](FuncBuilder &F, ModuleBuilder &) {
                         F.localGet(0);
                         F.localGet(1);
                         F.op(C.Op);
                       });
    ASSERT_TRUE(Fx.ok());
    EXPECT_EQ(Fx.call("f", {Value::makeI32(C.A), Value::makeI32(C.B)}).one(),
              Value::makeI32(C.Want))
        << opName(C.Op);
  }
}

TEST(Interp, DivTraps) {
  auto Fx = makeFunc({ValType::I32, ValType::I32}, {ValType::I32},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       F.localGet(0);
                       F.localGet(1);
                       F.op(Opcode::I32DivS);
                     });
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeI32(1), Value::makeI32(0)}).Trap,
            TrapReason::DivByZero);
  EXPECT_EQ(Fx.call("f", {Value::makeI32(INT32_MIN), Value::makeI32(-1)}).Trap,
            TrapReason::IntOverflow);
  EXPECT_EQ(Fx.call("f", {Value::makeI32(INT32_MIN), Value::makeI32(1)}).one(),
            Value::makeI32(INT32_MIN));
}

TEST(Interp, I64Bitcounts) {
  auto Fx = makeFunc({ValType::I64}, {ValType::I64},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       F.localGet(0);
                       F.op(Opcode::I64Clz);
                     });
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeI64(1)}).one(), Value::makeI64(63));
  EXPECT_EQ(Fx.call("f", {Value::makeI64(0)}).one(), Value::makeI64(64));
}

TEST(Interp, FloatArithAndCompare) {
  auto Fx = makeFunc({ValType::F64, ValType::F64}, {ValType::F64},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       F.localGet(0);
                       F.localGet(1);
                       F.op(Opcode::F64Div);
                     });
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeF64(1.0), Value::makeF64(4.0)}).one(),
            Value::makeF64(0.25));

  auto Fx2 = makeFunc({ValType::F32, ValType::F32}, {ValType::I32},
                      [](FuncBuilder &F, ModuleBuilder &) {
                        F.localGet(0);
                        F.localGet(1);
                        F.op(Opcode::F32Lt);
                      });
  EXPECT_EQ(Fx2.call("f", {Value::makeF32(1.5f), Value::makeF32(2.5f)}).one(),
            Value::makeI32(1));
}

TEST(Interp, FloatMinNaNAndSignedZero) {
  auto Fx = makeFunc({ValType::F64, ValType::F64}, {ValType::F64},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       F.localGet(0);
                       F.localGet(1);
                       F.op(Opcode::F64Min);
                     });
  ASSERT_TRUE(Fx.ok());
  double NaN = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(
      Fx.call("f", {Value::makeF64(NaN), Value::makeF64(1.0)}).one().asF64()));
  Value R = Fx.call("f", {Value::makeF64(0.0), Value::makeF64(-0.0)}).one();
  EXPECT_TRUE(std::signbit(R.asF64()));
}

TEST(Interp, Conversions) {
  auto Wrap = makeFunc({ValType::I64}, {ValType::I32},
                       [](FuncBuilder &F, ModuleBuilder &) {
                         F.localGet(0);
                         F.op(Opcode::I32WrapI64);
                       });
  EXPECT_EQ(Wrap.call("f", {Value::makeI64(0x1234567890ll)}).one(),
            Value::makeI32(0x34567890));

  auto Trunc = makeFunc({ValType::F64}, {ValType::I32},
                        [](FuncBuilder &F, ModuleBuilder &) {
                          F.localGet(0);
                          F.op(Opcode::I32TruncF64S);
                        });
  EXPECT_EQ(Trunc.call("f", {Value::makeF64(-3.99)}).one(),
            Value::makeI32(-3));
  EXPECT_EQ(Trunc.call("f", {Value::makeF64(3e10)}).Trap,
            TrapReason::IntOverflow);
  EXPECT_EQ(Trunc.call("f", {Value::makeF64(NAN)}).Trap,
            TrapReason::InvalidConversion);

  auto Sat = makeFunc({ValType::F64}, {ValType::I32},
                      [](FuncBuilder &F, ModuleBuilder &) {
                        F.localGet(0);
                        F.op(Opcode::I32TruncSatF64S);
                      });
  EXPECT_EQ(Sat.call("f", {Value::makeF64(3e10)}).one(),
            Value::makeI32(INT32_MAX));
  EXPECT_EQ(Sat.call("f", {Value::makeF64(-3e10)}).one(),
            Value::makeI32(INT32_MIN));
  EXPECT_EQ(Sat.call("f", {Value::makeF64(NAN)}).one(), Value::makeI32(0));

  auto Ext = makeFunc({ValType::I32}, {ValType::I32},
                      [](FuncBuilder &F, ModuleBuilder &) {
                        F.localGet(0);
                        F.op(Opcode::I32Extend8S);
                      });
  EXPECT_EQ(Ext.call("f", {Value::makeI32(0x80)}).one(),
            Value::makeI32(-128));

  auto Reint = makeFunc({ValType::F64}, {ValType::I64},
                        [](FuncBuilder &F, ModuleBuilder &) {
                          F.localGet(0);
                          F.op(Opcode::I64ReinterpretF64);
                        });
  EXPECT_EQ(Reint.call("f", {Value::makeF64(1.0)}).one(),
            Value::makeI64(0x3ff0000000000000ll));
}

TEST(Interp, IfElse) {
  auto Fx = makeFunc({ValType::I32}, {ValType::I32},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       F.localGet(0);
                       F.ifOp(BlockType::oneResult(ValType::I32));
                       F.i32Const(100);
                       F.elseOp();
                       F.i32Const(200);
                       F.end();
                     });
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeI32(1)}).one(), Value::makeI32(100));
  EXPECT_EQ(Fx.call("f", {Value::makeI32(0)}).one(), Value::makeI32(200));
}

TEST(Interp, IfWithoutElse) {
  auto Fx = makeFunc({ValType::I32}, {ValType::I32},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       uint32_t L = F.addLocal(ValType::I32);
                       F.i32Const(5);
                       F.localSet(L);
                       F.localGet(0);
                       F.ifOp();
                       F.i32Const(50);
                       F.localSet(L);
                       F.end();
                       F.localGet(L);
                     });
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeI32(1)}).one(), Value::makeI32(50));
  EXPECT_EQ(Fx.call("f", {Value::makeI32(0)}).one(), Value::makeI32(5));
}

TEST(Interp, LoopSum) {
  // sum = 0; for (i = n; i != 0; i--) sum += i; return sum.
  auto Fx = makeFunc({ValType::I32}, {ValType::I32},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       uint32_t Sum = F.addLocal(ValType::I32);
                       F.block();
                       F.localGet(0);
                       F.op(Opcode::I32Eqz);
                       F.brIf(0);
                       F.loop();
                       F.localGet(Sum);
                       F.localGet(0);
                       F.op(Opcode::I32Add);
                       F.localSet(Sum);
                       F.localGet(0);
                       F.i32Const(1);
                       F.op(Opcode::I32Sub);
                       F.localTee(0);
                       F.brIf(0);
                       F.end();
                       F.end();
                       F.localGet(Sum);
                     });
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeI32(0)}).one(), Value::makeI32(0));
  EXPECT_EQ(Fx.call("f", {Value::makeI32(100)}).one(), Value::makeI32(5050));
}

TEST(Interp, BlockWithBranchValues) {
  auto Fx = makeFunc({ValType::I32}, {ValType::I32},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       F.block(BlockType::oneResult(ValType::I32));
                       F.i32Const(11);
                       F.localGet(0);
                       F.brIf(0);
                       F.drop();
                       F.i32Const(22);
                       F.end();
                     });
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeI32(1)}).one(), Value::makeI32(11));
  EXPECT_EQ(Fx.call("f", {Value::makeI32(0)}).one(), Value::makeI32(22));
}

TEST(Interp, BrTable) {
  auto Fx = makeFunc({ValType::I32}, {ValType::I32},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       F.block(); // 2 (default)
                       F.block(); // 1
                       F.block(); // 0
                       F.localGet(0);
                       F.brTable({0, 1}, 2);
                       F.end();
                       F.i32Const(100);
                       F.ret();
                       F.end();
                       F.i32Const(101);
                       F.ret();
                       F.end();
                       F.i32Const(102);
                     });
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeI32(0)}).one(), Value::makeI32(100));
  EXPECT_EQ(Fx.call("f", {Value::makeI32(1)}).one(), Value::makeI32(101));
  EXPECT_EQ(Fx.call("f", {Value::makeI32(2)}).one(), Value::makeI32(102));
  EXPECT_EQ(Fx.call("f", {Value::makeI32(77)}).one(), Value::makeI32(102));
}

TEST(Interp, MultiValueBlocks) {
  ModuleBuilder MB;
  uint32_t Pair = MB.addType({}, {ValType::I32, ValType::I32});
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.block(BlockType::funcType(Pair));
  F.i32Const(30);
  F.i32Const(12);
  F.end();
  F.op(Opcode::I32Add);
  MB.exportFunc("f", MB.funcIndex(F));
  InterpFixture Fx(MB);
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {}).one(), Value::makeI32(42));
}

TEST(Interp, CallsAndRecursion) {
  // fib(n) via recursion.
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.i32Const(2);
  F.op(Opcode::I32LtS);
  F.ifOp(BlockType::oneResult(ValType::I32));
  F.localGet(0);
  F.elseOp();
  F.localGet(0);
  F.i32Const(1);
  F.op(Opcode::I32Sub);
  F.call(0);
  F.localGet(0);
  F.i32Const(2);
  F.op(Opcode::I32Sub);
  F.call(0);
  F.op(Opcode::I32Add);
  F.end();
  MB.exportFunc("f", MB.funcIndex(F));
  InterpFixture Fx(MB);
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeI32(10)}).one(), Value::makeI32(55));
  EXPECT_EQ(Fx.call("f", {Value::makeI32(20)}).one(), Value::makeI32(6765));
}

TEST(Interp, CallIndirect) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F1 = MB.addFunc(T); // +1
  F1.localGet(0);
  F1.i32Const(1);
  F1.op(Opcode::I32Add);
  FuncBuilder &F2 = MB.addFunc(T); // *2
  F2.localGet(0);
  F2.i32Const(2);
  F2.op(Opcode::I32Mul);
  uint32_t Caller = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(Caller);
  F.localGet(1);
  F.localGet(0);
  F.callIndirect(T);
  MB.addTable(4, 4);
  MB.addElem(0, {MB.funcIndex(F1), MB.funcIndex(F2)});
  MB.exportFunc("f", MB.funcIndex(F));
  InterpFixture Fx(MB);
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeI32(0), Value::makeI32(10)}).one(),
            Value::makeI32(11));
  EXPECT_EQ(Fx.call("f", {Value::makeI32(1), Value::makeI32(10)}).one(),
            Value::makeI32(20));
  // Out-of-bounds and null entries trap.
  EXPECT_EQ(Fx.call("f", {Value::makeI32(9), Value::makeI32(1)}).Trap,
            TrapReason::TableOutOfBounds);
  EXPECT_EQ(Fx.call("f", {Value::makeI32(3), Value::makeI32(1)}).Trap,
            TrapReason::NullFuncRef);
}

TEST(Interp, MemoryLoadsStores) {
  auto Fx = makeFunc(
      {ValType::I32, ValType::I32}, {ValType::I32},
      [](FuncBuilder &F, ModuleBuilder &) {
        F.localGet(0);
        F.localGet(1);
        F.store(Opcode::I32Store, 0, 2);
        F.localGet(0);
        F.load(Opcode::I32Load, 0, 2);
      },
      /*WithMemory=*/true);
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeI32(64), Value::makeI32(-5)}).one(),
            Value::makeI32(-5));
  // Out of bounds: page is 65536 bytes.
  EXPECT_EQ(Fx.call("f", {Value::makeI32(65533), Value::makeI32(1)}).Trap,
            TrapReason::MemOutOfBounds);
  EXPECT_EQ(Fx.call("f", {Value::makeI32(-4), Value::makeI32(1)}).Trap,
            TrapReason::MemOutOfBounds);
}

TEST(Interp, SubWidthMemoryAccess) {
  auto Fx = makeFunc(
      {}, {ValType::I32},
      [](FuncBuilder &F, ModuleBuilder &) {
        F.i32Const(0);
        F.i32Const(0xABCD);
        F.store(Opcode::I32Store16, 0, 1);
        F.i32Const(0);
        F.load(Opcode::I32Load8S, 1, 0); // Byte 1 = 0xAB, sign-extended.
      },
      /*WithMemory=*/true);
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {}).one(), Value::makeI32(int32_t(int8_t(0xAB))));
}

TEST(Interp, MemoryGrowAndSize) {
  auto Fx = makeFunc(
      {}, {ValType::I32},
      [](FuncBuilder &F, ModuleBuilder &) {
        F.memorySize(); // 1
        F.i32Const(2);
        F.memoryGrow(); // Returns old size 1.
        F.op(Opcode::I32Add);
        F.memorySize(); // Now 3.
        F.op(Opcode::I32Add);
      },
      /*WithMemory=*/true);
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {}).one(), Value::makeI32(1 + 1 + 3));
}

TEST(Interp, MemoryCopyFill) {
  auto Fx = makeFunc(
      {}, {ValType::I32},
      [](FuncBuilder &F, ModuleBuilder &) {
        // fill [0,8) with 0x5A; copy [0,8) to [8,16); read i32 at 10.
        F.i32Const(0);
        F.i32Const(0x5A);
        F.i32Const(8);
        F.memoryFill();
        F.i32Const(8);
        F.i32Const(0);
        F.i32Const(8);
        F.memoryCopy();
        F.i32Const(10);
        F.load(Opcode::I32Load, 0, 2);
      },
      /*WithMemory=*/true);
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {}).one(), Value::makeI32(int32_t(0x5A5A5A5A)));
}

TEST(Interp, GlobalsReadWrite) {
  ModuleBuilder MB;
  uint32_t G = MB.addGlobal(ValType::I64, true,
                            ModuleBuilder::constInit(ValType::I64, 100));
  uint32_t T = MB.addType({ValType::I64}, {ValType::I64});
  FuncBuilder &F = MB.addFunc(T);
  F.globalGet(G);
  F.localGet(0);
  F.op(Opcode::I64Add);
  F.globalSet(G);
  F.globalGet(G);
  MB.exportFunc("f", MB.funcIndex(F));
  InterpFixture Fx(MB);
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeI64(5)}).one(), Value::makeI64(105));
  EXPECT_EQ(Fx.call("f", {Value::makeI64(5)}).one(), Value::makeI64(110));
}

TEST(Interp, HostFunctionCall) {
  ModuleBuilder MB;
  uint32_t HT = MB.addType({ValType::I32}, {ValType::I32});
  uint32_t Imp = MB.importFunc("env", "triple", HT);
  FuncBuilder &F = MB.addFunc(HT);
  F.localGet(0);
  F.call(Imp);
  F.i32Const(1);
  F.op(Opcode::I32Add);
  MB.exportFunc("f", MB.funcIndex(F));

  HostRegistry Hosts;
  Hosts.add("env", "triple", FuncType{{ValType::I32}, {ValType::I32}},
            [](Instance &, const Value *Args, Value *Rets) {
              Rets[0] = Value::makeI32(Args[0].asI32() * 3);
              return TrapReason::None;
            });
  InterpFixture Fx(MB, &Hosts);
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeI32(5)}).one(), Value::makeI32(16));
}

TEST(Interp, UnreachableTraps) {
  auto Fx = makeFunc({}, {}, [](FuncBuilder &F, ModuleBuilder &) {
    F.unreachable();
  });
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {}).Trap, TrapReason::Unreachable);
}

TEST(Interp, StackOverflowOnInfiniteRecursion) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.call(0);
  MB.exportFunc("f", MB.funcIndex(F));
  InterpFixture Fx(MB);
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {}).Trap, TrapReason::StackOverflow);
}

TEST(Interp, SelectBothKinds) {
  auto Fx = makeFunc({ValType::I32}, {ValType::I64},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       F.i64Const(111);
                       F.i64Const(222);
                       F.localGet(0);
                       F.select();
                     });
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {Value::makeI32(1)}).one(), Value::makeI64(111));
  EXPECT_EQ(Fx.call("f", {Value::makeI32(0)}).one(), Value::makeI64(222));

  auto Fx2 = makeFunc({ValType::I32}, {ValType::F64},
                      [](FuncBuilder &F, ModuleBuilder &) {
                        F.f64Const(1.5);
                        F.f64Const(2.5);
                        F.localGet(0);
                        F.selectT(ValType::F64);
                      });
  EXPECT_EQ(Fx2.call("f", {Value::makeI32(0)}).one(), Value::makeF64(2.5));
}

TEST(Interp, RefOps) {
  auto Fx = makeFunc({}, {ValType::I32}, [](FuncBuilder &F, ModuleBuilder &) {
    F.refNull(ValType::ExternRef);
    F.refIsNull();
  });
  ASSERT_TRUE(Fx.ok());
  EXPECT_EQ(Fx.call("f", {}).one(), Value::makeI32(1));
}

TEST(Interp, MultipleResults) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32, ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.i32Const(1);
  F.op(Opcode::I32Add);
  F.localGet(0);
  F.i32Const(2);
  F.op(Opcode::I32Mul);
  MB.exportFunc("f", MB.funcIndex(F));
  InterpFixture Fx(MB);
  ASSERT_TRUE(Fx.ok());
  InvokeResult R = Fx.call("f", {Value::makeI32(10)});
  ASSERT_EQ(R.Results.size(), 2u);
  EXPECT_EQ(R.Results[0], Value::makeI32(11));
  EXPECT_EQ(R.Results[1], Value::makeI32(20));
}

TEST(Interp, TagsTrackTypes) {
  // After execution, result tags in the value stack reflect value types.
  auto Fx = makeFunc({}, {ValType::F64}, [](FuncBuilder &F, ModuleBuilder &) {
    F.f64Const(3.25);
  });
  ASSERT_TRUE(Fx.ok());
  Fx.call("f", {});
  EXPECT_EQ(Fx.T.VS.tag(0), ValType::F64);
}

TEST(Interp, DeepLoopNestSideTableStress) {
  // Nested loops with breaks across several levels.
  auto Fx = makeFunc({ValType::I32}, {ValType::I32},
                     [](FuncBuilder &F, ModuleBuilder &) {
                       uint32_t Acc = F.addLocal(ValType::I32);
                       uint32_t I = F.addLocal(ValType::I32);
                       uint32_t J = F.addLocal(ValType::I32);
                       // for (i = 0; i < n; i++) for (j = 0; j < i; j++)
                       //   acc += j;
                       F.block();
                       F.loop();
                       F.localGet(I);
                       F.localGet(0);
                       F.op(Opcode::I32GeU);
                       F.brIf(1);
                       F.i32Const(0);
                       F.localSet(J);
                       F.block();
                       F.loop();
                       F.localGet(J);
                       F.localGet(I);
                       F.op(Opcode::I32GeU);
                       F.brIf(1);
                       F.localGet(Acc);
                       F.localGet(J);
                       F.op(Opcode::I32Add);
                       F.localSet(Acc);
                       F.localGet(J);
                       F.i32Const(1);
                       F.op(Opcode::I32Add);
                       F.localSet(J);
                       F.br(0);
                       F.end();
                       F.end();
                       F.localGet(I);
                       F.i32Const(1);
                       F.op(Opcode::I32Add);
                       F.localSet(I);
                       F.br(0);
                       F.end();
                       F.end();
                       F.localGet(Acc);
                     });
  ASSERT_TRUE(Fx.ok());
  // sum_{i<8} sum_{j<i} j = sum_{i<8} i(i-1)/2 = 0+0+1+3+6+10+15+21 = 56.
  EXPECT_EQ(Fx.call("f", {Value::makeI32(8)}).one(), Value::makeI32(56));
}

} // namespace
