//===- tests/test_engine.cpp - engine facade, tiering and GC tests ---------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "testutil.h"

#include "engine/engine.h"
#include "fuzz/randwasm.h"

#include <gtest/gtest.h>

using namespace wisp;

namespace {

std::vector<uint8_t> loopSumModule() {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  uint32_t Sum = F.addLocal(ValType::I32);
  F.block();
  F.localGet(0);
  F.op(Opcode::I32Eqz);
  F.brIf(0);
  F.loop();
  F.localGet(Sum);
  F.localGet(0);
  F.op(Opcode::I32Add);
  F.localSet(Sum);
  F.localGet(0);
  F.i32Const(1);
  F.op(Opcode::I32Sub);
  F.localTee(0);
  F.brIf(0);
  F.end();
  F.end();
  F.localGet(Sum);
  MB.exportFunc("run", MB.funcIndex(F));
  return MB.build();
}

TEST(Engine, InterpMode) {
  EngineConfig Cfg;
  Cfg.Name = "test-int";
  Cfg.Mode = ExecMode::Interp;
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(loopSumModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  EXPECT_TRUE(LM->Codes.empty());
  std::vector<Value> Out;
  ASSERT_EQ(E.invoke(*LM, "run", {Value::makeI32(100)}, &Out),
            TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(5050));
  EXPECT_GT(E.thread().InterpSteps, 0u);
}

TEST(Engine, JitModeCompilesEverythingAtLoad) {
  EngineConfig Cfg;
  Cfg.Mode = ExecMode::Jit;
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(loopSumModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  EXPECT_EQ(LM->Codes.size(), 1u);
  EXPECT_GT(LM->Stats.CodeInsts, 0u);
  std::vector<Value> Out;
  ASSERT_EQ(E.invoke(*LM, "run", {Value::makeI32(100)}, &Out),
            TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(5050));
  EXPECT_GT(E.thread().JitCycles, 0u);
}

TEST(Engine, JitLazyCompilesOnFirstCall) {
  EngineConfig Cfg;
  Cfg.Mode = ExecMode::JitLazy;
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(loopSumModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  EXPECT_TRUE(LM->Codes.empty()); // Nothing compiled at load.
  std::vector<Value> Out;
  ASSERT_EQ(E.invoke(*LM, "run", {Value::makeI32(10)}, &Out),
            TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(55));
  EXPECT_EQ(LM->Codes.size(), 1u); // Compiled during the first invoke.
}

TEST(Engine, TieredOsrEntersJitMidLoop) {
  EngineConfig Cfg;
  Cfg.Mode = ExecMode::Tiered;
  Cfg.TierUpThreshold = 50;
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(loopSumModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  std::vector<Value> Out;
  // A single long-running invocation must tier up via OSR mid-loop.
  ASSERT_EQ(E.invoke(*LM, "run", {Value::makeI32(100000)}, &Out),
            TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(705082704)); // Sum mod 2^32.
  EXPECT_EQ(LM->Codes.size(), 1u);              // OSR-compiled.
  EXPECT_GT(E.thread().JitCycles, 0u);          // Ran in JIT after OSR.
  EXPECT_GT(E.thread().InterpSteps, 0u);        // Started interpreted.
}

TEST(Engine, TieredHotFunctionCompiledOnEntryCount) {
  EngineConfig Cfg;
  Cfg.Mode = ExecMode::Tiered;
  Cfg.TierUpThreshold = 64;
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(loopSumModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  std::vector<Value> Out;
  for (int I = 0; I < 50 && LM->Codes.empty(); ++I)
    E.invoke(*LM, "run", {Value::makeI32(3)}, &Out);
  // Short runs only: entry counters must eventually trigger compilation.
  EXPECT_FALSE(LM->Codes.empty());
  E.invoke(*LM, "run", {Value::makeI32(10)}, &Out);
  EXPECT_EQ(Out[0], Value::makeI32(55));
}

TEST(Engine, TierDownDeoptsRunningFrame) {
  // A function that calls a host hook mid-loop; the hook requests tier-down
  // and the frame must continue in the interpreter with identical results.
  ModuleBuilder MB;
  uint32_t HostT = MB.addType({}, {});
  uint32_t Imp = MB.importFunc("t", "poke", HostT);
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  uint32_t Sum = F.addLocal(ValType::I32);
  F.block();
  F.localGet(0);
  F.op(Opcode::I32Eqz);
  F.brIf(0);
  F.loop();
  F.call(Imp);
  F.localGet(Sum);
  F.localGet(0);
  F.op(Opcode::I32Add);
  F.localSet(Sum);
  F.localGet(0);
  F.i32Const(1);
  F.op(Opcode::I32Sub);
  F.localTee(0);
  F.brIf(0);
  F.end();
  F.end();
  F.localGet(Sum);
  MB.exportFunc("run", MB.funcIndex(F));

  EngineConfig Cfg;
  Cfg.Mode = ExecMode::Jit;
  Cfg.Opts.EmitDeoptChecks = true;
  Engine E(Cfg);
  int Calls = 0;
  Engine *EP = &E;
  LoadedModule *LMP = nullptr;
  E.hosts().add("t", "poke", FuncType{{}, {}},
                [&Calls, EP, &LMP](Instance &, const Value *, Value *) {
                  if (++Calls == 5)
                    EP->requestTierDown(*LMP, 1);
                  return TrapReason::None;
                });
  WasmError Err;
  auto LM = E.load(MB.build(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  LMP = LM.get();
  std::vector<Value> Out;
  ASSERT_EQ(E.invoke(*LM, "run", {Value::makeI32(20)}, &Out),
            TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(210));
  EXPECT_EQ(Calls, 20);
  // After tier-down the interpreter must have executed some steps.
  EXPECT_GT(E.thread().InterpSteps, 0u);
}

// --- GC root scanning across tag strategies (paper §IV.C) ---

std::vector<uint8_t> gcModule() {
  ModuleBuilder MB;
  uint32_t AllocT = MB.addType({ValType::I64}, {ValType::ExternRef});
  uint32_t CollectT = MB.addType({}, {ValType::I32});
  uint32_t PayloadT = MB.addType({ValType::ExternRef}, {ValType::I64});
  uint32_t Alloc = MB.importFunc("wisp", "alloc", AllocT);
  uint32_t Collect = MB.importFunc("wisp", "collect", CollectT);
  uint32_t Payload = MB.importFunc("wisp", "payload", PayloadT);
  // run(): a = alloc(11); b = alloc(22); drop b; collect();
  //        return payload(a) + collected_count
  uint32_t T = MB.addType({}, {ValType::I64});
  FuncBuilder &F = MB.addFunc(T);
  uint32_t A = F.addLocal(ValType::ExternRef);
  F.i64Const(11);
  F.call(Alloc);
  F.localSet(A);
  F.i64Const(22);
  F.call(Alloc);
  F.drop(); // b is garbage (its ref is gone from the stack).
  F.call(Collect);
  F.op(Opcode::I64ExtendI32U);
  F.localGet(A);
  F.call(Payload);
  F.op(Opcode::I64Add);
  MB.exportFunc("run", MB.funcIndex(F));
  return MB.build();
}

class GcTagModes : public ::testing::TestWithParam<TagMode> {};

TEST_P(GcTagModes, LiveRootsSurviveCollection) {
  EngineConfig Cfg;
  Cfg.Mode = ExecMode::Jit;
  Cfg.Opts.Tags = GetParam();
  Engine E(Cfg);
  installGcHostFuncs(E);
  WasmError Err;
  auto LM = E.load(gcModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  std::vector<Value> Out;
  ASSERT_EQ(E.invoke(*LM, "run", {}, &Out), TrapReason::None);
  // payload(a)=11 must survive. Precise modes also collect the dropped
  // object (result 12); conservative stale-tag scans may retain it
  // (result 11). Either is sound for a non-moving collector.
  EXPECT_TRUE(Out[0].asI64() == 11 || Out[0].asI64() == 12)
      << Out[0].toString();
}

INSTANTIATE_TEST_SUITE_P(Modes, GcTagModes,
                         ::testing::Values(TagMode::Eager, TagMode::OnDemand,
                                           TagMode::Lazy, TagMode::StackMap));

TEST(EngineGc, PreciseCollectionWithOnDemandTags) {
  EngineConfig Cfg;
  Cfg.Mode = ExecMode::Jit;
  Cfg.Opts.Tags = TagMode::OnDemand;
  Engine E(Cfg);
  installGcHostFuncs(E);
  WasmError Err;
  auto LM = E.load(gcModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  std::vector<Value> Out;
  ASSERT_EQ(E.invoke(*LM, "run", {}, &Out), TrapReason::None);
  // 11 (payload of a) + 1 (one object collected).
  EXPECT_EQ(Out[0], Value::makeI64(12));
}

TEST(EngineGc, InterpreterTagsFindRoots) {
  EngineConfig Cfg;
  Cfg.Mode = ExecMode::Interp;
  Engine E(Cfg);
  installGcHostFuncs(E);
  WasmError Err;
  auto LM = E.load(gcModule(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  std::vector<Value> Out;
  ASSERT_EQ(E.invoke(*LM, "run", {}, &Out), TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI64(12));
}

TEST(EngineGc, TransitiveMarkingThroughLinks) {
  EngineConfig Cfg;
  Cfg.Mode = ExecMode::Jit;
  Cfg.Opts.Tags = TagMode::OnDemand;
  Engine E(Cfg);
  installGcHostFuncs(E);
  ModuleBuilder MB;
  uint32_t AllocT = MB.addType({ValType::I64}, {ValType::ExternRef});
  uint32_t CollectT = MB.addType({}, {ValType::I32});
  uint32_t LinkT = MB.addType({ValType::ExternRef, ValType::ExternRef}, {});
  uint32_t Alloc = MB.importFunc("wisp", "alloc", AllocT);
  uint32_t Collect = MB.importFunc("wisp", "collect", CollectT);
  uint32_t Link = MB.importFunc("wisp", "link", LinkT);
  uint32_t T = MB.addType({}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  uint32_t A = F.addLocal(ValType::ExternRef);
  // a = alloc(1); b = alloc(2); link(a, b); drop b ref; collect.
  F.i64Const(1);
  F.call(Alloc);
  F.localSet(A);
  F.localGet(A);
  F.i64Const(2);
  F.call(Alloc);
  F.call(Link);
  F.call(Collect);
  MB.exportFunc("run", MB.funcIndex(F));
  WasmError Err;
  auto LM = E.load(MB.build(), &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  std::vector<Value> Out;
  ASSERT_EQ(E.invoke(*LM, "run", {}, &Out), TrapReason::None);
  EXPECT_EQ(Out[0], Value::makeI32(0)); // b reachable through a: nothing freed.
  EXPECT_EQ(E.heap().liveCount(), 2u);
}

// --- Differential tests over the other compiler pipelines ---

struct PipelineCase {
  const char *Name;
  CompilerKind Kind;
};

class PipelineDifferential
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(PipelineDifferential, MatchesInterpreter) {
  static const PipelineCase Cases[] = {
      {"twopass", CompilerKind::TwoPass},
      {"copypatch", CompilerKind::CopyPatch},
      {"optimizing", CompilerKind::Optimizing},
  };
  const PipelineCase &PC = Cases[std::get<0>(GetParam())];
  uint64_t Seed = std::get<1>(GetParam());
  RandWasm Gen(Seed);
  FuzzModule FM = Gen.build();
  std::vector<uint8_t> Bytes = FM.toBytes();
  std::vector<Value> Args = {Value::makeI32(int32_t(Seed * 13)),
                             Value::makeI32(int32_t(Seed % 31)),
                             Value::makeF64(double(Seed % 771) / 7.0),
                             Value::makeF64(2.5)};

  EngineConfig RefCfg;
  RefCfg.Mode = ExecMode::Interp;
  Engine RefE(RefCfg);
  WasmError Err;
  auto RefLM = RefE.load(Bytes, &Err);
  ASSERT_NE(RefLM, nullptr) << Err.Message;
  std::vector<Value> RefOut;
  TrapReason RefTrap = RefE.invoke(*RefLM, "f", Args, &RefOut);

  EngineConfig Cfg;
  Cfg.Mode = ExecMode::Jit;
  Cfg.Compiler = PC.Kind;
  Cfg.Opts.Tags = TagMode::None;
  Engine E(Cfg);
  auto LM = E.load(Bytes, &Err);
  ASSERT_NE(LM, nullptr) << Err.Message;
  std::vector<Value> Out;
  TrapReason Trap = E.invoke(*LM, "f", Args, &Out);
  ASSERT_EQ(RefTrap, Trap) << PC.Name << " seed " << Seed;
  if (RefTrap == TrapReason::None) {
    ASSERT_EQ(RefOut.size(), Out.size());
    for (size_t I = 0; I < Out.size(); ++I)
      ASSERT_EQ(RefOut[I], Out[I])
          << PC.Name << " seed " << Seed
          << " interp=" << RefOut[I].toString()
          << " jit=" << Out[I].toString();
    // Memory must match as well.
    ASSERT_EQ(memcmp(RefLM->Inst->Memory.data(), LM->Inst->Memory.data(),
                     RefLM->Inst->Memory.byteSize()),
              0)
        << PC.Name << " seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineDifferential,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Range(uint64_t(1), uint64_t(60))));

// Runs \p Export on every JIT pipeline and checks the single i32 result.
static void expectAllPipelines(const std::vector<uint8_t> &Bytes,
                               const char *Export,
                               const std::vector<Value> &Args,
                               int32_t Expected) {
  for (CompilerKind Kind :
       {CompilerKind::SinglePass, CompilerKind::TwoPass,
        CompilerKind::CopyPatch, CompilerKind::Optimizing}) {
    EngineConfig Cfg;
    Cfg.Mode = ExecMode::Jit;
    Cfg.Compiler = Kind;
    Cfg.Opts.Tags = TagMode::None;
    Engine E(Cfg);
    WasmError Err;
    auto LM = E.load(Bytes, &Err);
    ASSERT_NE(LM, nullptr) << Err.Message;
    std::vector<Value> Out;
    ASSERT_EQ(E.invoke(*LM, Export, Args, &Out), TrapReason::None)
        << "kind " << int(Kind);
    ASSERT_EQ(Out.size(), 1u);
    EXPECT_EQ(Out[0], Value::makeI32(Expected)) << "kind " << int(Kind);
  }
}

// Regression: a local.set must not clobber stack entries pushed by an
// earlier local.get of the same local. gcd's loop body reads b, computes
// a % b, then overwrites both locals while the old b is still on the
// stack; the optimizing pipeline used to alias the stack entry to the
// local's vreg and return a % b instead of b.
TEST(PipelineLocals, SetDoesNotClobberAliasedStackEntries) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.block();
  F.loop();
  F.localGet(1);
  F.op(Opcode::I32Eqz);
  F.brIf(1);
  F.localGet(1); // Old b stays on the stack across both local.sets.
  F.localGet(0);
  F.localGet(1);
  F.op(Opcode::I32RemU);
  F.localSet(1); // b = a % b
  F.localSet(0); // a = old b
  F.br(0);
  F.end();
  F.end();
  F.localGet(0);
  MB.exportFunc("gcd", MB.funcIndex(F));
  expectAllPipelines(MB.build(), "gcd",
                     {Value::makeI32(3528), Value::makeI32(3780)}, 252);
}

// Regression: an aliased entry pushed *before* a loop must keep its
// pre-loop value even though the local is reassigned on every iteration
// (a rescue emitted at the set site would re-execute per iteration).
TEST(PipelineLocals, AliasPushedBeforeLoopSurvivesIteration) {
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0); // Pre-loop value; stays on the stack across the loop.
  F.loop();
  F.localGet(0);
  F.i32Const(1);
  F.op(Opcode::I32Add);
  F.localSet(0);
  F.localGet(0);
  F.i32Const(10);
  F.op(Opcode::I32LtU);
  F.brIf(0);
  F.end();
  MB.exportFunc("f", MB.funcIndex(F));
  expectAllPipelines(MB.build(), "f", {Value::makeI32(3)}, 3);
}

// Regression: an aliased entry pushed before an if must keep its value on
// both arms; the rescue must dominate the join (set only happens in the
// then-arm).
TEST(PipelineLocals, AliasPushedBeforeIfSurvivesBothArms) {
  for (int32_t Cond : {0, 1}) {
    ModuleBuilder MB;
    uint32_t T = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
    FuncBuilder &F = MB.addFunc(T);
    F.localGet(0); // Old value; read again after the if.
    F.localGet(1);
    F.ifOp();
    F.i32Const(99);
    F.localSet(0);
    F.elseOp();
    F.end();
    MB.exportFunc("f", MB.funcIndex(F));
    expectAllPipelines(MB.build(), "f",
                       {Value::makeI32(7), Value::makeI32(Cond)}, 7);
  }
}

} // namespace
