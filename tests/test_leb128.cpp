//===- tests/test_leb128.cpp - LEB128 codec tests --------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/leb128.h"

#include <gtest/gtest.h>

using namespace wisp;

namespace {

std::vector<uint8_t> encU(uint64_t V) {
  std::vector<uint8_t> Out;
  writeULEB128(Out, V);
  return Out;
}

std::vector<uint8_t> encS(int64_t V) {
  std::vector<uint8_t> Out;
  writeSLEB128(Out, V);
  return Out;
}

TEST(Leb128, UnsignedRoundTrip) {
  for (uint64_t V : {0ull, 1ull, 127ull, 128ull, 624485ull, 0xffffffffull}) {
    auto Bytes = encU(V);
    LebResult R = readULEB128(Bytes.data(), Bytes.data() + Bytes.size(), 64);
    ASSERT_TRUE(R.Ok) << V;
    EXPECT_EQ(R.Value, V);
    EXPECT_EQ(R.Length, Bytes.size());
  }
}

TEST(Leb128, SignedRoundTrip) {
  for (int64_t V : std::initializer_list<int64_t>{
           0, 1, -1, 63, 64, -64, -65, 624485, -624485, INT32_MIN, INT32_MAX,
           INT64_MIN, INT64_MAX}) {
    auto Bytes = encS(V);
    LebResult R = readSLEB128(Bytes.data(), Bytes.data() + Bytes.size(), 64);
    ASSERT_TRUE(R.Ok) << V;
    EXPECT_EQ(int64_t(R.Value), V);
    EXPECT_EQ(R.Length, Bytes.size());
  }
}

TEST(Leb128, KnownEncodings) {
  EXPECT_EQ(encU(624485), (std::vector<uint8_t>{0xE5, 0x8E, 0x26}));
  EXPECT_EQ(encS(-123456), (std::vector<uint8_t>{0xC0, 0xBB, 0x78}));
}

TEST(Leb128, U32RejectsOverwide) {
  // 2^32 encoded as u64 must not decode as u32.
  auto Bytes = encU(1ull << 32);
  LebResult R = readULEB128(Bytes.data(), Bytes.data() + Bytes.size(), 32);
  EXPECT_FALSE(R.Ok);
}

TEST(Leb128, U32RejectsOverlongHighBits) {
  // 5-byte encoding with high bits set in the final byte.
  std::vector<uint8_t> Bytes = {0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  LebResult R = readULEB128(Bytes.data(), Bytes.data() + Bytes.size(), 32);
  EXPECT_FALSE(R.Ok);
}

TEST(Leb128, U32AllowsRedundantZeroPadding) {
  // 5-byte encoding of 0 is legal for u32 (non-minimal but in range).
  std::vector<uint8_t> Bytes = {0x80, 0x80, 0x80, 0x80, 0x00};
  LebResult R = readULEB128(Bytes.data(), Bytes.data() + Bytes.size(), 32);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Value, 0u);
}

TEST(Leb128, S32SignExtensionPadding) {
  // -1 as a 5-byte s32: 0xFF 0xFF 0xFF 0xFF 0x7F.
  std::vector<uint8_t> Bytes = {0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  LebResult R = readSLEB128(Bytes.data(), Bytes.data() + Bytes.size(), 32);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(int32_t(R.Value), -1);
}

TEST(Leb128, S32RejectsBadPadding) {
  // Final-byte unused bits must all equal the sign bit.
  std::vector<uint8_t> Bytes = {0xFF, 0xFF, 0xFF, 0xFF, 0x0F};
  LebResult R = readSLEB128(Bytes.data(), Bytes.data() + Bytes.size(), 32);
  EXPECT_FALSE(R.Ok);
}

TEST(Leb128, Truncated) {
  std::vector<uint8_t> Bytes = {0x80, 0x80};
  EXPECT_FALSE(readULEB128(Bytes.data(), Bytes.data() + Bytes.size(), 32).Ok);
  EXPECT_FALSE(readSLEB128(Bytes.data(), Bytes.data() + Bytes.size(), 32).Ok);
}

TEST(Leb128, EmptyInput) {
  uint8_t Dummy = 0;
  EXPECT_FALSE(readULEB128(&Dummy, &Dummy, 32).Ok);
  EXPECT_FALSE(readSLEB128(&Dummy, &Dummy, 32).Ok);
}

} // namespace
