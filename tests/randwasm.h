//===- tests/randwasm.h - random type-correct Wasm generator ----*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random, type-correct, *terminating* Wasm modules for
/// differential testing between the interpreter and every compiler
/// configuration. Loops are bounded by fresh counter locals; memory
/// addresses are masked into bounds most of the time (occasionally left
/// wild to exercise trap paths).
///
//===----------------------------------------------------------------------===//

#ifndef WISP_TESTS_RANDWASM_H
#define WISP_TESTS_RANDWASM_H

#include "support/rng.h"
#include "wasm/builder.h"

namespace wisp {

class RandWasm {
public:
  explicit RandWasm(uint64_t Seed) : R(Seed) {}

  /// Builds a module with one exported function "f" taking two i32 and two
  /// f64 parameters and returning one random-typed result, plus a helper
  /// callee function.
  ModuleBuilder build() {
    ModuleBuilder MB;
    MB.addMemory(1);
    // A small helper function the main function can call.
    ValType HelperRet = scalarType();
    uint32_t HelperTy = MB.addType({ValType::I32}, {HelperRet});
    FuncBuilder &H = MB.addFunc(HelperTy);
    {
      GenCtx C{&H, {ValType::I32}, 0};
      genExpr(C, HelperRet, 3);
    }
    HelperIdx = MB.funcIndex(H);
    HelperResult = HelperRet;

    ResultType = scalarType();
    uint32_t MainTy = MB.addType(
        {ValType::I32, ValType::I32, ValType::F64, ValType::F64},
        {ResultType});
    FuncBuilder &F = MB.addFunc(MainTy);
    GenCtx C{&F, {ValType::I32, ValType::I32, ValType::F64, ValType::F64}, 0};
    // Extra mutable locals of each type.
    for (int I = 0; I < 2; ++I) {
      C.Locals.push_back(ValType::I32);
      F.addLocal(ValType::I32);
      C.Locals.push_back(ValType::I64);
      F.addLocal(ValType::I64);
      C.Locals.push_back(ValType::F64);
      F.addLocal(ValType::F64);
    }
    unsigned NStmts = 2 + unsigned(R.below(6));
    for (unsigned I = 0; I < NStmts; ++I)
      genStmt(C, 2);
    genExpr(C, ResultType, 3);
    MB.exportFunc("f", MB.funcIndex(F));
    return MB;
  }

  ValType ResultType = ValType::I32;

private:
  struct GenCtx {
    FuncBuilder *F;
    std::vector<ValType> Locals;
    unsigned LoopDepth;
    unsigned BlockDepth = 0;
  };

  ValType scalarType() {
    switch (R.below(4)) {
    case 0:
      return ValType::I32;
    case 1:
      return ValType::I64;
    case 2:
      return ValType::F32;
    default:
      return ValType::F64;
    }
  }

  int pickLocal(GenCtx &C, ValType T) {
    // Reservoir-pick a local of the right type.
    int Found = -1;
    int Seen = 0;
    for (size_t I = 0; I < C.Locals.size(); ++I) {
      if (C.Locals[I] != T)
        continue;
      ++Seen;
      if (R.below(uint64_t(Seen)) == 0)
        Found = int(I);
    }
    return Found;
  }

  void genConst(GenCtx &C, ValType T) {
    switch (T) {
    case ValType::I32: {
      static const int32_t Interesting[] = {0, 1, -1, 2, 7, 100, INT32_MIN,
                                            INT32_MAX, 0x7f, 0x80};
      if (R.chance(1, 3))
        C.F->i32Const(Interesting[R.below(10)]);
      else
        C.F->i32Const(int32_t(R.next()));
      break;
    }
    case ValType::I64:
      if (R.chance(1, 3))
        C.F->i64Const(int64_t(R.below(3)) - 1);
      else
        C.F->i64Const(int64_t(R.next()));
      break;
    case ValType::F32:
      C.F->f32Const(float(int64_t(R.below(2000)) - 1000) / 8.0f);
      break;
    case ValType::F64:
      C.F->f64Const(double(int64_t(R.below(200000)) - 100000) / 64.0);
      break;
    default:
      C.F->i32Const(0);
    }
  }

  void genBinop(GenCtx &C, ValType T, unsigned Depth) {
    genExpr(C, T, Depth - 1);
    genExpr(C, T, Depth - 1);
    switch (T) {
    case ValType::I32: {
      static const Opcode Ops[] = {
          Opcode::I32Add,  Opcode::I32Sub,  Opcode::I32Mul, Opcode::I32And,
          Opcode::I32Or,   Opcode::I32Xor,  Opcode::I32Shl, Opcode::I32ShrS,
          Opcode::I32ShrU, Opcode::I32Rotl, Opcode::I32Rotr};
      C.F->op(Ops[R.below(11)]);
      break;
    }
    case ValType::I64: {
      static const Opcode Ops[] = {
          Opcode::I64Add,  Opcode::I64Sub,  Opcode::I64Mul, Opcode::I64And,
          Opcode::I64Or,   Opcode::I64Xor,  Opcode::I64Shl, Opcode::I64ShrS,
          Opcode::I64ShrU, Opcode::I64Rotl, Opcode::I64Rotr};
      C.F->op(Ops[R.below(11)]);
      break;
    }
    case ValType::F32: {
      static const Opcode Ops[] = {Opcode::F32Add, Opcode::F32Sub,
                                   Opcode::F32Mul, Opcode::F32Min,
                                   Opcode::F32Max, Opcode::F32Copysign};
      C.F->op(Ops[R.below(6)]);
      break;
    }
    case ValType::F64: {
      static const Opcode Ops[] = {Opcode::F64Add, Opcode::F64Sub,
                                   Opcode::F64Mul, Opcode::F64Min,
                                   Opcode::F64Max, Opcode::F64Copysign};
      C.F->op(Ops[R.below(6)]);
      break;
    }
    default:
      break;
    }
  }

  /// Guarded division: denominator is or'd with 1 (2/3 of the time).
  void genDiv(GenCtx &C, ValType T, unsigned Depth) {
    genExpr(C, T, Depth - 1);
    genExpr(C, T, Depth - 1);
    bool Guard = R.chance(2, 3);
    if (T == ValType::I32) {
      if (Guard) {
        C.F->i32Const(1);
        C.F->op(Opcode::I32Or);
      }
      static const Opcode Ops[] = {Opcode::I32DivS, Opcode::I32DivU,
                                   Opcode::I32RemS, Opcode::I32RemU};
      C.F->op(Ops[R.below(4)]);
    } else {
      if (Guard) {
        C.F->i64Const(1);
        C.F->op(Opcode::I64Or);
      }
      static const Opcode Ops[] = {Opcode::I64DivS, Opcode::I64DivU,
                                   Opcode::I64RemS, Opcode::I64RemU};
      C.F->op(Ops[R.below(4)]);
    }
  }

  void genCompare(GenCtx &C, unsigned Depth) {
    ValType T = scalarType();
    genExpr(C, T, Depth - 1);
    genExpr(C, T, Depth - 1);
    switch (T) {
    case ValType::I32: {
      static const Opcode Ops[] = {Opcode::I32Eq,  Opcode::I32Ne,
                                   Opcode::I32LtS, Opcode::I32LtU,
                                   Opcode::I32GeS, Opcode::I32GtU};
      C.F->op(Ops[R.below(6)]);
      break;
    }
    case ValType::I64: {
      static const Opcode Ops[] = {Opcode::I64Eq,  Opcode::I64Ne,
                                   Opcode::I64LtS, Opcode::I64GeU};
      C.F->op(Ops[R.below(4)]);
      break;
    }
    case ValType::F32: {
      static const Opcode Ops[] = {Opcode::F32Eq, Opcode::F32Lt,
                                   Opcode::F32Ge};
      C.F->op(Ops[R.below(3)]);
      break;
    }
    default: {
      static const Opcode Ops[] = {Opcode::F64Eq, Opcode::F64Lt,
                                   Opcode::F64Ge};
      C.F->op(Ops[R.below(3)]);
      break;
    }
    }
  }

  void genUnop(GenCtx &C, ValType T, unsigned Depth) {
    genExpr(C, T, Depth - 1);
    switch (T) {
    case ValType::I32: {
      static const Opcode Ops[] = {Opcode::I32Clz, Opcode::I32Ctz,
                                   Opcode::I32Popcnt, Opcode::I32Extend8S,
                                   Opcode::I32Extend16S};
      C.F->op(Ops[R.below(5)]);
      break;
    }
    case ValType::I64: {
      static const Opcode Ops[] = {Opcode::I64Clz, Opcode::I64Ctz,
                                   Opcode::I64Popcnt, Opcode::I64Extend32S};
      C.F->op(Ops[R.below(4)]);
      break;
    }
    case ValType::F32: {
      static const Opcode Ops[] = {Opcode::F32Abs, Opcode::F32Neg,
                                   Opcode::F32Ceil, Opcode::F32Floor,
                                   Opcode::F32Trunc, Opcode::F32Sqrt};
      C.F->op(Ops[R.below(6)]);
      break;
    }
    default: {
      static const Opcode Ops[] = {Opcode::F64Abs, Opcode::F64Neg,
                                   Opcode::F64Ceil, Opcode::F64Floor,
                                   Opcode::F64Trunc, Opcode::F64Sqrt};
      C.F->op(Ops[R.below(6)]);
      break;
    }
    }
  }

  void genConvert(GenCtx &C, ValType T, unsigned Depth) {
    switch (T) {
    case ValType::I32:
      switch (R.below(4)) {
      case 0:
        genExpr(C, ValType::I64, Depth - 1);
        C.F->op(Opcode::I32WrapI64);
        break;
      case 1:
        genExpr(C, ValType::F64, Depth - 1);
        C.F->op(Opcode::I32TruncSatF64S);
        break;
      case 2:
        genExpr(C, ValType::F32, Depth - 1);
        C.F->op(Opcode::I32TruncSatF32U);
        break;
      default:
        genExpr(C, ValType::F32, Depth - 1);
        C.F->op(Opcode::I32ReinterpretF32);
        break;
      }
      return;
    case ValType::I64:
      switch (R.below(3)) {
      case 0:
        genExpr(C, ValType::I32, Depth - 1);
        C.F->op(Opcode::I64ExtendI32S);
        break;
      case 1:
        genExpr(C, ValType::I32, Depth - 1);
        C.F->op(Opcode::I64ExtendI32U);
        break;
      default:
        genExpr(C, ValType::F64, Depth - 1);
        C.F->op(Opcode::I64TruncSatF64S);
        break;
      }
      return;
    case ValType::F32:
      switch (R.below(3)) {
      case 0:
        genExpr(C, ValType::I32, Depth - 1);
        C.F->op(Opcode::F32ConvertI32S);
        break;
      case 1:
        genExpr(C, ValType::F64, Depth - 1);
        C.F->op(Opcode::F32DemoteF64);
        break;
      default:
        genExpr(C, ValType::I32, Depth - 1);
        C.F->op(Opcode::F32ReinterpretI32);
        break;
      }
      return;
    default:
      switch (R.below(3)) {
      case 0:
        genExpr(C, ValType::I64, Depth - 1);
        C.F->op(Opcode::F64ConvertI64S);
        break;
      case 1:
        genExpr(C, ValType::F32, Depth - 1);
        C.F->op(Opcode::F64PromoteF32);
        break;
      default:
        genExpr(C, ValType::I32, Depth - 1);
        C.F->op(Opcode::F64ConvertI32U);
        break;
      }
      return;
    }
  }

  void genLoad(GenCtx &C, ValType T, unsigned Depth) {
    // Address masked into the first page (rarely left wild).
    genExpr(C, ValType::I32, Depth - 1);
    if (R.chance(15, 16)) {
      C.F->i32Const(0xFFF8);
      C.F->op(Opcode::I32And);
    }
    switch (T) {
    case ValType::I32: {
      static const Opcode Ops[] = {Opcode::I32Load, Opcode::I32Load8S,
                                   Opcode::I32Load8U, Opcode::I32Load16S,
                                   Opcode::I32Load16U};
      C.F->load(Ops[R.below(5)], uint32_t(R.below(4)), 0);
      break;
    }
    case ValType::I64: {
      static const Opcode Ops[] = {Opcode::I64Load, Opcode::I64Load8U,
                                   Opcode::I64Load16S, Opcode::I64Load32S,
                                   Opcode::I64Load32U};
      C.F->load(Ops[R.below(5)], uint32_t(R.below(4)), 0);
      break;
    }
    case ValType::F32:
      C.F->load(Opcode::F32Load, uint32_t(R.below(4)), 0);
      break;
    default:
      C.F->load(Opcode::F64Load, uint32_t(R.below(4)), 0);
      break;
    }
  }

  void genIfExpr(GenCtx &C, ValType T, unsigned Depth) {
    genExpr(C, ValType::I32, Depth - 1);
    C.F->ifOp(BlockType::oneResult(T));
    genExpr(C, T, Depth - 1);
    C.F->elseOp();
    genExpr(C, T, Depth - 1);
    C.F->end();
  }

  void genSelect(GenCtx &C, ValType T, unsigned Depth) {
    genExpr(C, T, Depth - 1);
    genExpr(C, T, Depth - 1);
    genExpr(C, ValType::I32, Depth - 1);
    C.F->select();
  }

  void genExpr(GenCtx &C, ValType T, unsigned Depth) {
    if (Depth == 0) {
      int L = pickLocal(C, T);
      if (L >= 0 && R.chance(2, 3)) {
        C.F->localGet(uint32_t(L));
        return;
      }
      genConst(C, T);
      return;
    }
    bool IsInt = T == ValType::I32 || T == ValType::I64;
    switch (R.below(14)) {
    case 0:
    case 1:
      genConst(C, T);
      return;
    case 2:
    case 3: {
      int L = pickLocal(C, T);
      if (L >= 0) {
        C.F->localGet(uint32_t(L));
        return;
      }
      genConst(C, T);
      return;
    }
    case 4:
    case 5:
    case 6:
      genBinop(C, T, Depth);
      return;
    case 7:
      genUnop(C, T, Depth);
      return;
    case 8:
      if (T == ValType::I32) {
        genCompare(C, Depth);
        return;
      }
      genBinop(C, T, Depth);
      return;
    case 9:
      if (IsInt) {
        genDiv(C, T, Depth);
        return;
      }
      genBinop(C, T, Depth);
      return;
    case 10:
      genConvert(C, T, Depth);
      return;
    case 11:
      genLoad(C, T, Depth);
      return;
    case 12:
      genIfExpr(C, T, Depth);
      return;
    default:
      genSelect(C, T, Depth);
      return;
    }
  }

  void genStore(GenCtx &C, unsigned Depth) {
    ValType T = scalarType();
    genExpr(C, ValType::I32, Depth - 1);
    C.F->i32Const(0xFFF8);
    C.F->op(Opcode::I32And);
    genExpr(C, T, Depth - 1);
    switch (T) {
    case ValType::I32:
      C.F->store(R.chance(1, 2) ? Opcode::I32Store : Opcode::I32Store8, 0, 0);
      break;
    case ValType::I64:
      C.F->store(Opcode::I64Store, 0, 0);
      break;
    case ValType::F32:
      C.F->store(Opcode::F32Store, 0, 0);
      break;
    default:
      C.F->store(Opcode::F64Store, 0, 0);
      break;
    }
  }

  void genStmt(GenCtx &C, unsigned Depth) {
    switch (R.below(8)) {
    case 0:
    case 1: { // local.set
      ValType T = scalarType();
      int L = pickLocal(C, T);
      if (L < 0)
        return;
      genExpr(C, T, Depth);
      if (R.chance(1, 4)) {
        C.F->localTee(uint32_t(L));
        C.F->drop();
      } else {
        C.F->localSet(uint32_t(L));
      }
      return;
    }
    case 2:
      genStore(C, Depth);
      return;
    case 3: { // if/else statement
      genExpr(C, ValType::I32, Depth);
      C.F->ifOp();
      genStmt(C, Depth > 1 ? Depth - 1 : 1);
      if (R.chance(1, 2)) {
        C.F->elseOp();
        genStmt(C, Depth > 1 ? Depth - 1 : 1);
      }
      C.F->end();
      return;
    }
    case 4: { // bounded loop
      if (C.LoopDepth >= 2)
        return;
      uint32_t Counter = C.F->addLocal(ValType::I32);
      // Keep the counter invisible to pickLocal (FuncRef is never picked)
      // so no generated statement can overwrite it and break termination.
      C.Locals.push_back(ValType::FuncRef);
      uint32_t N = 1 + uint32_t(R.below(6));
      C.F->i32Const(int32_t(N));
      C.F->localSet(Counter);
      C.F->loop();
      ++C.LoopDepth;
      genStmt(C, Depth > 1 ? Depth - 1 : 1);
      --C.LoopDepth;
      C.F->localGet(Counter);
      C.F->i32Const(1);
      C.F->op(Opcode::I32Sub);
      C.F->localTee(Counter);
      C.F->brIf(0);
      C.F->end();
      return;
    }
    case 5: { // block with conditional early exit
      C.F->block();
      genExpr(C, ValType::I32, Depth);
      C.F->brIf(0);
      genStmt(C, Depth > 1 ? Depth - 1 : 1);
      C.F->end();
      return;
    }
    case 6: { // call the helper and store its result
      genExpr(C, ValType::I32, Depth);
      C.F->call(HelperIdx);
      int L = pickLocal(C, HelperResult);
      if (L >= 0)
        C.F->localSet(uint32_t(L));
      else
        C.F->drop();
      return;
    }
    default: { // br_table over small blocks
      C.F->block();
      C.F->block();
      C.F->block();
      genExpr(C, ValType::I32, Depth);
      C.F->i32Const(4);
      C.F->op(Opcode::I32RemU);
      C.F->brTable({0, 1}, 2);
      C.F->end();
      genStmt(C, 1);
      C.F->end();
      genStmt(C, 1);
      C.F->end();
      return;
    }
    }
  }

  Rng R;
  uint32_t HelperIdx = 0;
  ValType HelperResult = ValType::I32;
};

} // namespace wisp

#endif // WISP_TESTS_RANDWASM_H
