//===- bench/bench_cache.cpp - compile-cache warm-vs-cold ------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Measures the content-addressed compile cache (src/cache/) on the
// paper's own repeated-load methodology: every fig. 7 suite item is
// loaded in a fresh engine N times cache-cold (the paper's regime: full
// decode + validate + compile per load) and N times cache-warm (one
// shared cache; decode/compile served as immutable artifacts), per
// configuration. Reports median TotalSetupNs for both, the warm-over-cold
// ratio, and the compile-pipeline ratio (setup minus instantiation —
// instantiation builds fresh mutable state per load by design and is the
// irreducible floor of a warm load).
//
// A third column measures the cross-invocation warm start (the on-disk
// artifact cache, src/cache/diskcache.*): a "new process" — a fresh
// in-process cache — runs the same repeated-load workload over a
// directory populated by a previous run. Its first load pays disk
// admission (read + checksum + deserialize + mandatory re-verify +
// bind), the rest settle at in-process-warm speed.
//
// Acceptance bars, both checked on the optimizing tier where
// compilation dominates setup the way production-compiler setup costs
// do: >= 5x warm-over-cold TotalSetupNs on a fig. 7 suite module, and
// the disk-warm workload median within 2x of in-process warm
// TotalSetupNs (geomean). The headline lines print PASS/FAIL and the
// process exits nonzero on FAIL.
//
// A second table measures the setup-bound batch regime: the m0 (early
// return) variants of every item as a manifest across 1 -> 8 workers,
// cold vs warm — the per-job cost is almost pure setup, so this is the
// paper's fig. 4/5 methodology at batch scale.
//
// WISP_BENCH_JSON rows:
//   (config, item, cold_setup_ns | warm_setup_ns | disk_setup_ns |
//    disk_admission_ns | warm_over_cold | pipeline_ratio |
//    disk_over_warm | disk_first_over_cold)
//   (config="batch-m0-cold"|"batch-m0-warm", item="jobs=K", wall_ms |
//    throughput_jobs_per_s), (config="batch-m0", item="jobs=K",
//    warm_over_cold)
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"
#include "cache/compilecache.h"
#include "service/batch.h"

#include <cstdlib>
#include <dirent.h>
#include <thread>
#include <unistd.h>

using namespace wisp;
using namespace wisp::bench;

namespace {

struct SetupStats {
  uint64_t TotalNs = 0;
  uint64_t InstNs = 0;
};

/// Median setup cost of loading \p Bytes in a fresh engine N times.
/// \p Cache null = cold (cache disabled), else every load shares it.
/// Non-empty \p DiskDir backs each engine with the on-disk store there;
/// combined with a null \p Cache it measures the disk-warm regime: a
/// fresh in-process cache per load, so only the disk level can serve
/// (the cross-process warm start).
SetupStats measureSetup(const EngineConfig &CfgIn,
                        const std::vector<uint8_t> &Bytes, int N,
                        CompileCache *Cache,
                        const std::string &DiskDir = std::string()) {
  EngineConfig Cfg = CfgIn;
  Cfg.UseCompileCache = Cache != nullptr || !DiskDir.empty();
  Cfg.DiskCacheDir = DiskDir;
  Cfg.UseDiskCache = !DiskDir.empty();
  std::vector<uint64_t> Total, Inst;
  for (int I = 0; I < N; ++I) {
    CompileCache Fresh;
    Engine E(Cfg, Cache ? Cache : (DiskDir.empty() ? nullptr : &Fresh));
    WasmError Err;
    std::unique_ptr<LoadedModule> LM = E.load(Bytes, &Err);
    if (!LM) {
      fprintf(stderr, "bench_cache: load failed (%s): %s\n",
              Cfg.Name.c_str(), Err.Message.c_str());
      exit(1);
    }
    Total.push_back(LM->Stats.TotalSetupNs);
    Inst.push_back(LM->Stats.InstantiateNs);
  }
  std::sort(Total.begin(), Total.end());
  std::sort(Inst.begin(), Inst.end());
  return {Total[Total.size() / 2], Inst[Inst.size() / 2]};
}

double safeRatio(double Num, double Den) { return Den > 0 ? Num / Den : 0; }

struct DiskWorkload {
  uint64_t MedianTotalNs = 0; ///< Steady-state per-load setup.
  uint64_t FirstTotalNs = 0;  ///< The cross-invocation cold start itself.
};

/// The cross-invocation warm-start regime: a *new* process (one fresh
/// in-process cache) runs the repeated-load workload over a populated
/// artifact directory. Its first load admits from disk — file read +
/// checksum + deserialize + mandatory re-verify + bind, the true
/// cross-invocation cold start — and the rest run at in-process-warm
/// speed. Reports both: the median is what the process's workload
/// experiences, the first load is what the disk level saved it from
/// paying as a full compile.
DiskWorkload measureDiskWorkload(const EngineConfig &CfgIn,
                                 const std::vector<uint8_t> &Bytes, int N,
                                 const std::string &DiskDir) {
  EngineConfig Cfg = CfgIn;
  Cfg.UseCompileCache = true;
  Cfg.DiskCacheDir = DiskDir;
  Cfg.UseDiskCache = true;
  CompileCache Fresh;
  DiskWorkload W;
  std::vector<uint64_t> Total;
  for (int I = 0; I < N; ++I) {
    Engine E(Cfg, &Fresh);
    WasmError Err;
    std::unique_ptr<LoadedModule> LM = E.load(Bytes, &Err);
    if (!LM) {
      fprintf(stderr, "bench_cache: disk-warm load failed (%s): %s\n",
              Cfg.Name.c_str(), Err.Message.c_str());
      exit(1);
    }
    if (I == 0)
      W.FirstTotalNs = LM->Stats.TotalSetupNs;
    else
      Total.push_back(LM->Stats.TotalSetupNs);
  }
  std::sort(Total.begin(), Total.end());
  W.MedianTotalNs = Total.empty() ? W.FirstTotalNs : Total[Total.size() / 2];
  return W;
}

/// One private artifact directory for the whole run (content keys keep
/// configs and items apart), removed before exit.
std::string makeDiskDir() {
  char Tmpl[] = "/tmp/wisp-bench-disk-XXXXXX";
  char *D = mkdtemp(Tmpl);
  return D ? std::string(D) : std::string();
}

void removeDiskDir(const std::string &Dir) {
  if (Dir.empty())
    return;
  if (DIR *D = opendir(Dir.c_str())) {
    while (struct dirent *E = readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        ::remove((Dir + "/" + Name).c_str());
    }
    closedir(D);
  }
  rmdir(Dir.c_str());
}

} // namespace

int main() {
  jsonBench("bench_cache");
  printHeader("bench_cache: warm-vs-cold setup on repeated loads "
              "(fig. 7 suites)",
              "cold = fresh engine, no cache (the paper's methodology); "
              "warm = fresh engine, shared compile cache. pipeline = setup "
              "minus instantiate");

  // More repetitions than the execution benches: setup is microseconds.
  int N = runs() * 5 + 4;
  std::vector<LineItem> Items = allSuites(scale());

  static const char *Configs[] = {"wizard-spc", "interp-threaded", "wazero",
                                  "wasm-now", "wasmtime"};
  double OptBestRatio = 0;
  std::string OptBestItem;
  std::string DiskDir = makeDiskDir();
  double OptDiskOverWarmGeomean = 0;
  printf("  %-16s %14s %14s %14s %11s %11s %11s\n", "config", "cold ns",
         "warm ns", "disk ns", "warm/cold", "pipe ratio", "disk/warm");
  for (const char *Name : Configs) {
    EngineConfig Cfg = configByName(Name);
    std::vector<double> Ratios, PipeRatios, ColdNs, WarmNs, DiskNs,
        DiskOverWarmRatios;
    for (const LineItem &Item : Items) {
      SetupStats Cold = measureSetup(Cfg, Item.Bytes, N, nullptr);
      CompileCache Cache;
      // Prime once, then measure served loads only.
      measureSetup(Cfg, Item.Bytes, 1, &Cache);
      SetupStats Warm = measureSetup(Cfg, Item.Bytes, N, &Cache);
      // Cross-invocation warm start: publish once, then a "new process"
      // (fresh in-process cache) runs the same repeated-load workload
      // against the shared directory. Its first load is the disk
      // admission itself (read + checksum + deserialize + re-verify +
      // bind); its median is the workload's steady state.
      DiskWorkload Disk{Warm.TotalNs, Cold.TotalNs};
      if (!DiskDir.empty()) {
        measureSetup(Cfg, Item.Bytes, 1, nullptr, DiskDir);
        Disk = measureDiskWorkload(Cfg, Item.Bytes, N, DiskDir);
      }

      double Ratio = safeRatio(double(Cold.TotalNs), double(Warm.TotalNs));
      double Pipe = safeRatio(double(Cold.TotalNs - Cold.InstNs),
                              double(Warm.TotalNs - Warm.InstNs));
      // Disk-warm workload median over in-process warm: what carrying
      // the disk level costs the steady state (bar: within 2x).
      double DiskOverWarm =
          safeRatio(double(Disk.MedianTotalNs), double(Warm.TotalNs));
      // The admission itself against a full cold setup: what a process
      // that loads the module exactly once saves (informational; in
      // this simulator re-verification is deliberately priced like
      // compilation, so admission ~= compile while real-engine compile
      // costs dwarf their verifiers').
      double FirstOverCold =
          safeRatio(double(Disk.FirstTotalNs), double(Cold.TotalNs));
      Ratios.push_back(Ratio);
      PipeRatios.push_back(Pipe);
      ColdNs.push_back(double(Cold.TotalNs));
      WarmNs.push_back(double(Warm.TotalNs));
      DiskNs.push_back(double(Disk.MedianTotalNs));
      DiskOverWarmRatios.push_back(DiskOverWarm);
      std::string ItemName = Item.Suite + "/" + Item.Name;
      jsonRecord(Name, ItemName, "cold_setup_ns", double(Cold.TotalNs));
      jsonRecord(Name, ItemName, "warm_setup_ns", double(Warm.TotalNs));
      jsonRecord(Name, ItemName, "disk_setup_ns",
                 double(Disk.MedianTotalNs));
      jsonRecord(Name, ItemName, "disk_admission_ns",
                 double(Disk.FirstTotalNs));
      jsonRecord(Name, ItemName, "warm_over_cold", Ratio);
      jsonRecord(Name, ItemName, "pipeline_ratio", Pipe);
      jsonRecord(Name, ItemName, "disk_over_warm", DiskOverWarm);
      jsonRecord(Name, ItemName, "disk_first_over_cold", FirstOverCold);
      if (std::string(Name) == "wasmtime" && Ratio > OptBestRatio) {
        OptBestRatio = Ratio;
        OptBestItem = ItemName;
      }
    }
    Stat R = stats(Ratios);
    Stat P = stats(PipeRatios);
    Stat DW = stats(DiskOverWarmRatios);
    printf("  %-16s %14.0f %14.0f %14.0f %9.2fx %9.2fx %9.2fx\n", Name,
           stats(ColdNs).Geomean, stats(WarmNs).Geomean,
           stats(DiskNs).Geomean, R.Geomean, P.Geomean, DW.Geomean);
    jsonRecord(Name, "geomean", "warm_over_cold", R.Geomean);
    jsonRecord(Name, "geomean", "pipeline_ratio", P.Geomean);
    jsonRecord(Name, "geomean", "disk_over_warm", DW.Geomean);
    if (std::string(Name) == "wasmtime")
      OptDiskOverWarmGeomean = DW.Geomean;
  }
  removeDiskDir(DiskDir);

  // The acceptance bar: a fig. 7 suite module on the optimizing tier
  // must load >= 5x faster warm than cold, end to end (TotalSetupNs).
  bool Pass = OptBestRatio >= 5.0;
  printf("\nheadline: %s repeated-load warm-over-cold %.1fx on wasmtime "
         "(bar: >=5x) %s\n",
         OptBestItem.c_str(), OptBestRatio, Pass ? "PASS" : "FAIL");
  jsonRecord("wasmtime", "headline", "best_warm_over_cold", OptBestRatio);
  // And the cross-invocation warm start must reach in-process-warm
  // setup speed on the compile pipeline: a new process over a populated
  // store settles within 2x of in-process warm TotalSetupNs (geomean
  // across the fig. 7 items) — the near-zero cold start the disk level
  // exists to provide.
  bool DiskPass = !DiskDir.empty() && OptDiskOverWarmGeomean > 0 &&
                  OptDiskOverWarmGeomean <= 2.0;
  printf("headline: disk-warm workload over in-process warm %.2fx on "
         "wasmtime (bar: <=2x) %s\n",
         OptDiskOverWarmGeomean, DiskPass ? "PASS" : "FAIL");
  jsonRecord("wasmtime", "headline", "disk_over_warm",
             OptDiskOverWarmGeomean);
  Pass = Pass && DiskPass;

  // --- Setup-bound batch regime: the m0 manifest, 1 -> 8 workers -------
  printf("\nbatch (m0 early-return variants: per-job cost ~= setup):\n");
  static const char *BatchConfigs[] = {"wizard-spc", "interp-threaded",
                                       "wasmtime"};
  std::vector<BatchJob> Jobs;
  for (int Round = 0; Round < 2; ++Round)
    for (const LineItem &I : Items)
      for (const char *Config : BatchConfigs) {
        BatchJob Job;
        Job.Index = uint32_t(Jobs.size());
        Job.Module = I.Suite + "/" + I.Name;
        Job.Config = Config;
        Job.Bytes = I.M0Bytes;
        Jobs.push_back(std::move(Job));
      }
  printf("  jobs=%zu hardware_concurrency=%u\n", Jobs.size(),
         std::thread::hardware_concurrency());
  printf("  %-10s %12s %12s %11s\n", "workers", "cold ms", "warm ms",
         "warm/cold");
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    auto Wall = [&](bool Warm) {
      std::vector<double> Walls;
      for (int R = 0; R < runs(); ++R) {
        BatchOptions Opts;
        Opts.Workers = Workers;
        Opts.CompileCache = Warm;
        Walls.push_back(runBatch(Jobs, Opts).WallMs);
      }
      std::sort(Walls.begin(), Walls.end());
      return Walls[Walls.size() / 2];
    };
    double Cold = Wall(false);
    double Warm = Wall(true);
    double Ratio = safeRatio(Cold, Warm);
    printf("  %-10u %12.2f %12.2f %10.2fx\n", Workers, Cold, Warm, Ratio);
    std::string Item = "jobs=" + std::to_string(Workers);
    jsonRecord("batch-m0-cold", Item, "wall_ms", Cold);
    jsonRecord("batch-m0-cold", Item, "throughput_jobs_per_s",
               Cold > 0 ? double(Jobs.size()) / (Cold / 1e3) : 0);
    jsonRecord("batch-m0-warm", Item, "wall_ms", Warm);
    jsonRecord("batch-m0-warm", Item, "throughput_jobs_per_s",
               Warm > 0 ? double(Jobs.size()) / (Warm / 1e3) : 0);
    jsonRecord("batch-m0", Item, "warm_over_cold", Ratio);
  }

  return Pass ? 0 : 1;
}
