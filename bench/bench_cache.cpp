//===- bench/bench_cache.cpp - compile-cache warm-vs-cold ------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Measures the content-addressed compile cache (src/cache/) on the
// paper's own repeated-load methodology: every fig. 7 suite item is
// loaded in a fresh engine N times cache-cold (the paper's regime: full
// decode + validate + compile per load) and N times cache-warm (one
// shared cache; decode/compile served as immutable artifacts), per
// configuration. Reports median TotalSetupNs for both, the warm-over-cold
// ratio, and the compile-pipeline ratio (setup minus instantiation —
// instantiation builds fresh mutable state per load by design and is the
// irreducible floor of a warm load).
//
// The acceptance bar (>= 5x warm-over-cold TotalSetupNs on a fig. 7
// suite module) is checked on the optimizing tier, where compilation
// dominates setup the way production-compiler setup costs do; the
// headline line prints PASS/FAIL and the process exits nonzero on FAIL.
//
// A second table measures the setup-bound batch regime: the m0 (early
// return) variants of every item as a manifest across 1 -> 8 workers,
// cold vs warm — the per-job cost is almost pure setup, so this is the
// paper's fig. 4/5 methodology at batch scale.
//
// WISP_BENCH_JSON rows:
//   (config, item, cold_setup_ns | warm_setup_ns | warm_over_cold |
//    pipeline_ratio)
//   (config="batch-m0-cold"|"batch-m0-warm", item="jobs=K", wall_ms |
//    throughput_jobs_per_s), (config="batch-m0", item="jobs=K",
//    warm_over_cold)
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"
#include "cache/compilecache.h"
#include "service/batch.h"

#include <thread>

using namespace wisp;
using namespace wisp::bench;

namespace {

struct SetupStats {
  uint64_t TotalNs = 0;
  uint64_t InstNs = 0;
};

/// Median setup cost of loading \p Bytes in a fresh engine N times.
/// \p Cache null = cold (cache disabled), else every load shares it.
SetupStats measureSetup(const EngineConfig &CfgIn,
                        const std::vector<uint8_t> &Bytes, int N,
                        CompileCache *Cache) {
  EngineConfig Cfg = CfgIn;
  Cfg.UseCompileCache = Cache != nullptr;
  std::vector<uint64_t> Total, Inst;
  for (int I = 0; I < N; ++I) {
    Engine E(Cfg, Cache);
    WasmError Err;
    std::unique_ptr<LoadedModule> LM = E.load(Bytes, &Err);
    if (!LM) {
      fprintf(stderr, "bench_cache: load failed (%s): %s\n",
              Cfg.Name.c_str(), Err.Message.c_str());
      exit(1);
    }
    Total.push_back(LM->Stats.TotalSetupNs);
    Inst.push_back(LM->Stats.InstantiateNs);
  }
  std::sort(Total.begin(), Total.end());
  std::sort(Inst.begin(), Inst.end());
  return {Total[Total.size() / 2], Inst[Inst.size() / 2]};
}

double safeRatio(double Num, double Den) { return Den > 0 ? Num / Den : 0; }

} // namespace

int main() {
  jsonBench("bench_cache");
  printHeader("bench_cache: warm-vs-cold setup on repeated loads "
              "(fig. 7 suites)",
              "cold = fresh engine, no cache (the paper's methodology); "
              "warm = fresh engine, shared compile cache. pipeline = setup "
              "minus instantiate");

  // More repetitions than the execution benches: setup is microseconds.
  int N = runs() * 5 + 4;
  std::vector<LineItem> Items = allSuites(scale());

  static const char *Configs[] = {"wizard-spc", "interp-threaded", "wazero",
                                  "wasm-now", "wasmtime"};
  double OptBestRatio = 0;
  std::string OptBestItem;
  printf("  %-16s %14s %14s %11s %15s\n", "config", "cold ns", "warm ns",
         "warm/cold", "pipeline ratio");
  for (const char *Name : Configs) {
    EngineConfig Cfg = configByName(Name);
    std::vector<double> Ratios, PipeRatios, ColdNs, WarmNs;
    for (const LineItem &Item : Items) {
      SetupStats Cold = measureSetup(Cfg, Item.Bytes, N, nullptr);
      CompileCache Cache;
      // Prime once, then measure served loads only.
      measureSetup(Cfg, Item.Bytes, 1, &Cache);
      SetupStats Warm = measureSetup(Cfg, Item.Bytes, N, &Cache);

      double Ratio = safeRatio(double(Cold.TotalNs), double(Warm.TotalNs));
      double Pipe = safeRatio(double(Cold.TotalNs - Cold.InstNs),
                              double(Warm.TotalNs - Warm.InstNs));
      Ratios.push_back(Ratio);
      PipeRatios.push_back(Pipe);
      ColdNs.push_back(double(Cold.TotalNs));
      WarmNs.push_back(double(Warm.TotalNs));
      std::string ItemName = Item.Suite + "/" + Item.Name;
      jsonRecord(Name, ItemName, "cold_setup_ns", double(Cold.TotalNs));
      jsonRecord(Name, ItemName, "warm_setup_ns", double(Warm.TotalNs));
      jsonRecord(Name, ItemName, "warm_over_cold", Ratio);
      jsonRecord(Name, ItemName, "pipeline_ratio", Pipe);
      if (std::string(Name) == "wasmtime" && Ratio > OptBestRatio) {
        OptBestRatio = Ratio;
        OptBestItem = ItemName;
      }
    }
    Stat R = stats(Ratios);
    Stat P = stats(PipeRatios);
    printf("  %-16s %14.0f %14.0f %9.2fx %13.2fx\n", Name,
           stats(ColdNs).Geomean, stats(WarmNs).Geomean, R.Geomean,
           P.Geomean);
    jsonRecord(Name, "geomean", "warm_over_cold", R.Geomean);
    jsonRecord(Name, "geomean", "pipeline_ratio", P.Geomean);
  }

  // The acceptance bar: a fig. 7 suite module on the optimizing tier
  // must load >= 5x faster warm than cold, end to end (TotalSetupNs).
  bool Pass = OptBestRatio >= 5.0;
  printf("\nheadline: %s repeated-load warm-over-cold %.1fx on wasmtime "
         "(bar: >=5x) %s\n",
         OptBestItem.c_str(), OptBestRatio, Pass ? "PASS" : "FAIL");
  jsonRecord("wasmtime", "headline", "best_warm_over_cold", OptBestRatio);

  // --- Setup-bound batch regime: the m0 manifest, 1 -> 8 workers -------
  printf("\nbatch (m0 early-return variants: per-job cost ~= setup):\n");
  static const char *BatchConfigs[] = {"wizard-spc", "interp-threaded",
                                       "wasmtime"};
  std::vector<BatchJob> Jobs;
  for (int Round = 0; Round < 2; ++Round)
    for (const LineItem &I : Items)
      for (const char *Config : BatchConfigs) {
        BatchJob Job;
        Job.Index = uint32_t(Jobs.size());
        Job.Module = I.Suite + "/" + I.Name;
        Job.Config = Config;
        Job.Bytes = I.M0Bytes;
        Jobs.push_back(std::move(Job));
      }
  printf("  jobs=%zu hardware_concurrency=%u\n", Jobs.size(),
         std::thread::hardware_concurrency());
  printf("  %-10s %12s %12s %11s\n", "workers", "cold ms", "warm ms",
         "warm/cold");
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    auto Wall = [&](bool Warm) {
      std::vector<double> Walls;
      for (int R = 0; R < runs(); ++R) {
        BatchOptions Opts;
        Opts.Workers = Workers;
        Opts.CompileCache = Warm;
        Walls.push_back(runBatch(Jobs, Opts).WallMs);
      }
      std::sort(Walls.begin(), Walls.end());
      return Walls[Walls.size() / 2];
    };
    double Cold = Wall(false);
    double Warm = Wall(true);
    double Ratio = safeRatio(Cold, Warm);
    printf("  %-10u %12.2f %12.2f %10.2fx\n", Workers, Cold, Warm, Ratio);
    std::string Item = "jobs=" + std::to_string(Workers);
    jsonRecord("batch-m0-cold", Item, "wall_ms", Cold);
    jsonRecord("batch-m0-cold", Item, "throughput_jobs_per_s",
               Cold > 0 ? double(Jobs.size()) / (Cold / 1e3) : 0);
    jsonRecord("batch-m0-warm", Item, "wall_ms", Warm);
    jsonRecord("batch-m0-warm", Item, "throughput_jobs_per_s",
               Warm > 0 ? double(Jobs.size()) / (Warm / 1e3) : 0);
    jsonRecord("batch-m0", Item, "warm_over_cold", Ratio);
  }

  return Pass ? 0 : 1;
}
