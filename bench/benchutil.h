//===- bench/benchutil.h - shared benchmark harness --------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measurement utilities shared by the per-figure benchmark binaries:
/// per-item setup/main timing (the paper's T(Mnop)/T(m0)/T(m)
/// methodology), medians over repeated runs, geometric means, and table
/// printing. Run counts and workload scale come from WISP_BENCH_RUNS and
/// WISP_BENCH_SCALE (defaults keep every binary under a minute).
///
/// Machine-readable output: when WISP_BENCH_JSON=<path> is set, every
/// metric recorded through jsonBench()/jsonRecord() is written to <path>
/// as a JSON document at process exit, so CI can archive a perf
/// trajectory (BENCH_*.json) next to the human-readable tables.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_BENCH_BENCHUTIL_H
#define WISP_BENCH_BENCHUTIL_H

#include "engine/engine.h"
#include "engine/registry.h"
#include "suites/suites.h"
#include "support/clock.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace wisp {
namespace bench {

inline int envInt(const char *Name, int Default) {
  const char *V = getenv(Name);
  return V ? atoi(V) : Default;
}
inline int runs() { return std::max(1, envInt("WISP_BENCH_RUNS", 3)); }
inline int scale() { return std::max(1, envInt("WISP_BENCH_SCALE", 1)); }

// Wall-clock readings come from wisp::nowMs() (support/clock.h), shared
// with the engine's LoadStats timers and the batch service.

/// One measured execution of a module in a fresh engine (the paper runs
/// each line item in a separate VM instance).
struct ItemRun {
  double SetupMs = 0;   ///< load() time: decode + validate + compile.
  double MainMs = 0;    ///< invoke("run") wall time.
  double TotalMs = 0;   ///< Setup + main (wall).
  double CompileMs = 0; ///< Compile portion of setup.
  /// Threaded-IR pre-decode portion of setup (threaded configs only).
  double PredecodeMs = 0;
  /// Modeled execution cycles (deterministic; the primary metric for
  /// execution-time comparisons — see Thread::InterpCyclesPerStep).
  double MainCycles = 0;
  /// Interpreter dispatch counts behind MainCycles.
  double InterpSteps = 0;
  double ThreadedSteps = 0;
  size_t IrBytes = 0; ///< Pre-decoded threaded-IR size.
  bool Ok = false;
};

/// Copy of \p Cfg with the compile cache disabled. The paper's
/// methodology is cold-start by definition — every measured load pays the
/// full decode+validate+compile cost — so the per-figure benchmarks must
/// not let repeated loads of the same item hit the process-wide cache
/// (bench_cache measures the warm regime explicitly). Static artifact
/// verification is likewise forced off: it defaults on in Debug builds,
/// and a Debug-built bench must still measure compile time, not
/// translation-validation time.
inline EngineConfig coldLoads(EngineConfig Cfg) {
  Cfg.UseCompileCache = false;
  Cfg.VerifyArtifacts = false;
  return Cfg;
}

inline ItemRun runOnce(const EngineConfig &Cfg,
                       const std::vector<uint8_t> &Bytes) {
  ItemRun R;
  Engine E(coldLoads(Cfg));
  WasmError Err;
  double T0 = nowMs();
  auto LM = E.load(Bytes, &Err);
  double T1 = nowMs();
  if (!LM) {
    fprintf(stderr, "load failed (%s): %s\n", Cfg.Name.c_str(),
            Err.Message.c_str());
    return R;
  }
  std::vector<Value> Out;
  TrapReason Trap = E.invoke(*LM, "run", {}, &Out);
  double T2 = nowMs();
  if (Trap != TrapReason::None) {
    fprintf(stderr, "trap (%s): %s\n", Cfg.Name.c_str(),
            trapReasonName(Trap));
    return R;
  }
  R.SetupMs = T1 - T0;
  R.MainMs = T2 - T1;
  R.TotalMs = T2 - T0;
  R.CompileMs = double(LM->Stats.CompileNs) / 1e6;
  R.PredecodeMs = double(LM->Stats.PredecodeNs) / 1e6;
  R.MainCycles = double(E.thread().modeledCycles());
  R.InterpSteps = double(E.thread().InterpSteps);
  R.ThreadedSteps = double(E.thread().ThreadedSteps);
  R.IrBytes = LM->Stats.IrBytes;
  R.Ok = true;
  return R;
}

/// Median-of-N runs.
inline ItemRun measure(const EngineConfig &Cfg,
                       const std::vector<uint8_t> &Bytes, int N) {
  std::vector<ItemRun> Rs;
  for (int I = 0; I < N; ++I) {
    ItemRun R = runOnce(Cfg, Bytes);
    if (R.Ok)
      Rs.push_back(R);
  }
  if (Rs.empty())
    return ItemRun{};
  std::sort(Rs.begin(), Rs.end(),
            [](const ItemRun &A, const ItemRun &B) { return A.MainMs < B.MainMs; });
  return Rs[Rs.size() / 2];
}

struct Stat {
  double Geomean = 0, Min = 0, Max = 0;
};

inline Stat stats(const std::vector<double> &Xs) {
  Stat S;
  if (Xs.empty())
    return S;
  double LogSum = 0;
  S.Min = S.Max = Xs[0];
  for (double X : Xs) {
    LogSum += std::log(X);
    S.Min = std::min(S.Min, X);
    S.Max = std::max(S.Max, X);
  }
  S.Geomean = std::exp(LogSum / double(Xs.size()));
  return S;
}

inline void printHeader(const char *Title, const char *Detail) {
  printf("==============================================================\n");
  printf("%s\n", Title);
  printf("%s\n", Detail);
  printf("runs=%d scale=%d (override: WISP_BENCH_RUNS / WISP_BENCH_SCALE)\n",
         runs(), scale());
  printf("==============================================================\n");
}

/// Collects metric rows and writes them to $WISP_BENCH_JSON at process
/// exit. One flat row per (config, item, metric) keeps the schema trivial
/// for jq/pandas consumers:
///   {"bench": "...", "runs": N, "scale": N,
///    "results": [{"config": "...", "item": "...", "metric": "...",
///                 "value": 1.0}, ...]}
class JsonSink {
public:
  static JsonSink &instance() {
    static JsonSink Sink;
    return Sink;
  }

  void setBench(const std::string &Name) { Bench = Name; }

  void record(const std::string &Config, const std::string &Item,
              const std::string &Metric, double Value) {
    Rows.push_back({Config, Item, Metric, Value});
  }

  ~JsonSink() { flush(); }

  void flush() {
    const char *Path = getenv("WISP_BENCH_JSON");
    if (!Path || Flushed || Rows.empty())
      return;
    FILE *Out = fopen(Path, "w");
    if (!Out) {
      fprintf(stderr, "benchutil: cannot write WISP_BENCH_JSON=%s\n", Path);
      return;
    }
    fprintf(Out, "{\n  \"bench\": \"%s\",\n  \"runs\": %d,\n  \"scale\": %d,\n"
                 "  \"results\": [\n",
            Bench.c_str(), runs(), scale());
    for (size_t I = 0; I < Rows.size(); ++I)
      fprintf(Out,
              "    {\"config\": \"%s\", \"item\": \"%s\", \"metric\": \"%s\", "
              "\"value\": %.17g}%s\n",
              Rows[I].Config.c_str(), Rows[I].Item.c_str(),
              Rows[I].Metric.c_str(), Rows[I].Value,
              I + 1 < Rows.size() ? "," : "");
    fprintf(Out, "  ]\n}\n");
    fclose(Out);
    Flushed = true;
  }

private:
  struct Row {
    std::string Config, Item, Metric;
    double Value;
  };
  std::string Bench = "unnamed";
  std::vector<Row> Rows;
  bool Flushed = false;
};

/// Names the JSON document (call once at the top of main).
inline void jsonBench(const std::string &Name) {
  JsonSink::instance().setBench(Name);
}

/// Records one metric row (no-op cost when WISP_BENCH_JSON is unset aside
/// from the in-memory row).
inline void jsonRecord(const std::string &Config, const std::string &Item,
                       const std::string &Metric, double Value) {
  JsonSink::instance().record(Config, Item, Metric, Value);
}

/// Prints a bar-chart row like the paper's figures.
inline void printBar(const char *Label, double V, double Max,
                     const char *Fmt = "%6.2f") {
  int Width = Max > 0 ? int(44.0 * V / Max) : 0;
  Width = std::max(0, std::min(44, Width));
  printf("  %-26s ", Label);
  printf(Fmt, V);
  printf(" |");
  for (int I = 0; I < Width; ++I)
    putchar('#');
  printf("\n");
}

} // namespace bench
} // namespace wisp

#endif // WISP_BENCH_BENCHUTIL_H
