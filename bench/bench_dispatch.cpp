//===- bench/bench_dispatch.cpp - switch vs. threaded dispatch --------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Compares the in-place switch interpreter (wizard-int) against the
// threaded-dispatch tier (interp-threaded: pre-decoded IR, computed-goto,
// superinstruction fusion) on the fig. 7 suites. The primary metric is the
// deterministic modeled main-loop cost (InterpSteps x 22 cycles vs.
// ThreadedSteps x 16 cycles); the total-cost view folds the one-pass
// pre-decode translation time (LoadStats::PredecodeNs) back in, keeping the
// fig. 7/8 methodology honest about what the threaded tier pays up front.
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"

using namespace wisp;
using namespace wisp::bench;

// Total cost combining real setup work (wall time, incl. pre-decode) with
// modeled execution cycles converted at the modeled clock (1 GHz).
static double totalCost(const ItemRun &R) {
  return R.SetupMs + R.MainCycles / 1e6;
}

int main() {
  jsonBench("bench_dispatch");
  printHeader("Dispatch strategy: switch (wizard-int) vs threaded "
              "(interp-threaded)",
              "modeled main-loop cycles; reduction = 1 - threaded/switch, "
              "higher is better");

  EngineConfig SwitchCfg = configByName("wizard-int");
  EngineConfig ThreadedCfg = configByName("interp-threaded");

  const char *SuiteNames[] = {"polybench", "libsodium", "ostrich"};
  std::vector<LineItem> Suites[] = {polybenchSuite(scale()),
                                    libsodiumSuite(scale()),
                                    ostrichSuite(scale())};

  std::vector<double> AllRatios;
  std::vector<double> AllTotalRatios;
  for (int S = 0; S < 3; ++S) {
    printf("\n--- %s ---\n", SuiteNames[S]);
    printf("  %-16s %14s %14s %7s %11s\n", "item", "switch cyc", "threaded cyc",
           "reduc", "predecode");
    std::vector<double> Ratios, TotalRatios;
    for (const LineItem &Item : Suites[S]) {
      ItemRun SwitchRun = measure(SwitchCfg, Item.Bytes, runs());
      ItemRun ThreadedRun = measure(ThreadedCfg, Item.Bytes, runs());
      if (!SwitchRun.Ok || !ThreadedRun.Ok || SwitchRun.MainCycles <= 0)
        continue;
      double Ratio = ThreadedRun.MainCycles / SwitchRun.MainCycles;
      double TotalRatio = totalCost(ThreadedRun) / totalCost(SwitchRun);
      Ratios.push_back(Ratio);
      TotalRatios.push_back(TotalRatio);
      printf("  %-16s %14.0f %14.0f %6.1f%% %9.1fus\n", Item.Name.c_str(),
             SwitchRun.MainCycles, ThreadedRun.MainCycles,
             100.0 * (1.0 - Ratio), ThreadedRun.PredecodeMs * 1e3);
      std::string Full = std::string(SuiteNames[S]) + "/" + Item.Name;
      jsonRecord("wizard-int", Full, "main_cycles", SwitchRun.MainCycles);
      jsonRecord("wizard-int", Full, "interp_steps", SwitchRun.InterpSteps);
      jsonRecord("wizard-int", Full, "total_cost_ms", totalCost(SwitchRun));
      jsonRecord("interp-threaded", Full, "main_cycles",
                 ThreadedRun.MainCycles);
      jsonRecord("interp-threaded", Full, "threaded_steps",
                 ThreadedRun.ThreadedSteps);
      jsonRecord("interp-threaded", Full, "predecode_ms",
                 ThreadedRun.PredecodeMs);
      jsonRecord("interp-threaded", Full, "ir_bytes",
                 double(ThreadedRun.IrBytes));
      jsonRecord("interp-threaded", Full, "total_cost_ms",
                 totalCost(ThreadedRun));
    }
    Stat St = stats(Ratios);
    Stat StTotal = stats(TotalRatios);
    printf("  geomean main-loop reduction: %.1f%%   (total-cost incl. "
           "predecode: %.1f%%)\n",
           100.0 * (1.0 - St.Geomean), 100.0 * (1.0 - StTotal.Geomean));
    jsonRecord("interp-threaded", SuiteNames[S], "geomean_cycle_ratio",
               St.Geomean);
    jsonRecord("interp-threaded", SuiteNames[S], "geomean_total_ratio",
               StTotal.Geomean);
    AllRatios.insert(AllRatios.end(), Ratios.begin(), Ratios.end());
    AllTotalRatios.insert(AllTotalRatios.end(), TotalRatios.begin(),
                          TotalRatios.end());
  }

  Stat All = stats(AllRatios);
  Stat AllTotal = stats(AllTotalRatios);
  printf("\noverall geomean main-loop reduction: %.1f%% (min %.1f%%, max "
         "%.1f%%)\n",
         100.0 * (1.0 - All.Geomean), 100.0 * (1.0 - All.Max),
         100.0 * (1.0 - All.Min));
  printf("overall geomean total-cost reduction (incl. predecode): %.1f%%\n",
         100.0 * (1.0 - AllTotal.Geomean));
  jsonRecord("interp-threaded", "all", "geomean_cycle_ratio", All.Geomean);
  jsonRecord("interp-threaded", "all", "geomean_total_ratio",
             AllTotal.Geomean);
  printf("\nExpected shape: pre-decoded immediates + computed-goto cut the\n"
         "per-step price 22 -> 16 modeled cycles (~27%%), and fusion of\n"
         "get/get/op, get/const/op, cmp/br_if and set/get chains removes\n"
         "further dispatches; the acceptance bar is a >=25%% geomean\n"
         "main-loop reduction on every fig. 7 suite.\n");
  return 0;
}
