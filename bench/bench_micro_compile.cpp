//===- bench/bench_micro_compile.cpp - pipeline micro-benchmarks ------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark micro-benchmarks of the per-stage costs behind the
// figures: decode, validate (+ side table), and one compile per pipeline,
// plus interpreter and JIT steady-state execution of a small kernel.
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"

#include "baselines/copypatch.h"
#include "baselines/twopass.h"
#include "opt/optcompiler.h"
#include "spc/compiler.h"
#include "wasm/reader.h"
#include "wasm/validator.h"

#include <benchmark/benchmark.h>

using namespace wisp;

namespace {

const std::vector<uint8_t> &gemmBytes() {
  static const std::vector<uint8_t> Bytes = [] {
    for (LineItem &Item : polybenchSuite(1))
      if (Item.Name == "gemm")
        return Item.Bytes;
    return std::vector<uint8_t>();
  }();
  return Bytes;
}

void BM_Decode(benchmark::State &State) {
  for (auto _ : State) {
    WasmError Err;
    auto M = decodeModule(gemmBytes(), &Err);
    benchmark::DoNotOptimize(M);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) *
                          int64_t(gemmBytes().size()));
}
BENCHMARK(BM_Decode);

void BM_Validate(benchmark::State &State) {
  for (auto _ : State) {
    WasmError Err;
    auto M = decodeModule(gemmBytes(), &Err);
    bool Ok = validateModule(*M, &Err);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) *
                          int64_t(gemmBytes().size()));
}
BENCHMARK(BM_Validate);

template <CompilerKind Kind> void BM_Compile(benchmark::State &State) {
  WasmError Err;
  auto M = decodeModule(gemmBytes(), &Err);
  validateModule(*M, &Err);
  const FuncDecl &F = M->Funcs[0];
  CompilerOptions Opts;
  if (Kind != CompilerKind::SinglePass)
    Opts.Tags = TagMode::None;
  warmCopyPatchTemplates();
  for (auto _ : State) {
    std::unique_ptr<MCode> Code;
    switch (Kind) {
    case CompilerKind::SinglePass:
      Code = compileFunction(*M, F, Opts);
      break;
    case CompilerKind::TwoPass:
      Code = compileTwoPass(*M, F, Opts);
      break;
    case CompilerKind::CopyPatch:
      Code = compileCopyPatch(*M, F, Opts);
      break;
    case CompilerKind::Optimizing:
      Code = compileOptimizing(*M, F, Opts);
      break;
    }
    benchmark::DoNotOptimize(Code);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) *
                          int64_t(F.BodyEnd - F.BodyStart));
}
BENCHMARK(BM_Compile<CompilerKind::SinglePass>)->Name("BM_Compile_SinglePass");
BENCHMARK(BM_Compile<CompilerKind::TwoPass>)->Name("BM_Compile_TwoPass");
BENCHMARK(BM_Compile<CompilerKind::CopyPatch>)->Name("BM_Compile_CopyPatch");
BENCHMARK(BM_Compile<CompilerKind::Optimizing>)->Name("BM_Compile_Optimizing");

void BM_ExecInterp(benchmark::State &State) {
  EngineConfig Cfg = configByName("wizard-int");
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(gemmBytes(), &Err);
  std::vector<Value> Out;
  for (auto _ : State)
    E.invoke(*LM, "run", {}, &Out);
}
BENCHMARK(BM_ExecInterp)->Unit(benchmark::kMillisecond);

void BM_ExecJit(benchmark::State &State) {
  EngineConfig Cfg = configByName("wizard-spc");
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(gemmBytes(), &Err);
  std::vector<Value> Out;
  for (auto _ : State)
    E.invoke(*LM, "run", {}, &Out);
}
BENCHMARK(BM_ExecJit)->Unit(benchmark::kMillisecond);

void BM_ExecOpt(benchmark::State &State) {
  EngineConfig Cfg = configByName("wasmtime");
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(gemmBytes(), &Err);
  std::vector<Value> Out;
  for (auto _ : State)
    E.invoke(*LM, "run", {}, &Out);
}
BENCHMARK(BM_ExecOpt)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
