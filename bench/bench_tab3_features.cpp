//===- bench/bench_tab3_features.cpp - paper Figure 3 (feature table) ------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Prints the baseline-compiler feature matrix (paper Fig. 3) from the
// engine registry, cross-checked against the live CompilerOptions of each
// configuration.
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"

using namespace wisp;

int main() {
  bench::printHeader("Figure 3: WebAssembly baseline compilers in this study",
                     "MR=multi-register, R=register alloc, K=constants, "
                     "KF=folding, ISEL=instr selection, TAG=value tags, "
                     "MAP=stackmaps, MV=multi-value");
  printf("%-12s %-7s %-5s %-22s %s\n", "name", "lang", "year", "features",
         "description");
  for (const BaselineFeatureRow &Row : figure3Rows())
    printf("%-12s %-7s %-5d %-22s %s\n", Row.Name, Row.Language, Row.Year,
           Row.Features, Row.Description);

  printf("\nLive configuration cross-check (from the engine registry):\n");
  printf("%-12s %-9s %-4s %-4s %-6s %-4s %-9s\n", "name", "pipeline", "MR",
         "KF", "ISEL", "K", "gc");
  for (const EngineConfig &C : baselineRegistry()) {
    const char *Pipe = C.Compiler == CompilerKind::SinglePass ? "1-pass"
                       : C.Compiler == CompilerKind::TwoPass  ? "2-pass"
                       : C.Compiler == CompilerKind::CopyPatch
                           ? "copypatch"
                           : "opt";
    const char *Gc = C.Opts.Tags == TagMode::StackMap  ? "stackmap"
                     : C.Opts.Tags == TagMode::None    ? "none"
                     : C.Opts.Tags == TagMode::OnDemand ? "tags"
                                                        : "tags*";
    printf("%-12s %-9s %-4s %-4s %-6s %-4s %-9s\n", C.Name.c_str(), Pipe,
           C.Opts.MultiRegister ? "y" : "-",
           C.Opts.ConstantFolding ? "y" : "-",
           C.Opts.InstructionSelect ? "y" : "-",
           C.Opts.TrackConstants ? "y" : "-", Gc);
  }
  return 0;
}
