//===- bench/bench_fig08_compile.cpp - paper Figure 8 -----------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Compile time per byte of input code for each baseline compiler,
// normalized to Wizard-SPC (1.0 = same; lower is better). The per-byte
// normalization controls for function and module size, per the paper.
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"

using namespace wisp;
using namespace wisp::bench;

namespace {

/// Median compile nanoseconds per code byte for one module.
double compileNsPerByte(const EngineConfig &Cfg,
                        const std::vector<uint8_t> &Bytes, int N) {
  std::vector<double> PerByte;
  for (int I = 0; I < N; ++I) {
    Engine E(coldLoads(Cfg)); // Compile speed means cold compiles.
    WasmError Err;
    auto LM = E.load(Bytes, &Err);
    if (!LM || LM->Stats.CodeBytes == 0)
      return -1;
    PerByte.push_back(double(LM->Stats.CompileNs) /
                      double(LM->Stats.CodeBytes));
  }
  std::sort(PerByte.begin(), PerByte.end());
  return PerByte[PerByte.size() / 2];
}

} // namespace

int main() {
  printHeader("Figure 8: compile time per byte relative to Wizard-SPC",
              "1.0 = same speed, 2.0 = twice as long; lower is better");

  std::vector<EngineConfig> Baselines = baselineRegistry();
  const char *SuiteNames[] = {"polybench", "libsodium", "ostrich"};
  std::vector<LineItem> Suites[] = {polybenchSuite(scale()),
                                    libsodiumSuite(scale()),
                                    ostrichSuite(scale())};
  int N = runs() + 2; // Compilation is fast; a few extra runs are cheap.

  for (int S = 0; S < 3; ++S) {
    printf("\n--- %s ---\n", SuiteNames[S]);
    std::vector<double> Ref;
    for (const LineItem &Item : Suites[S])
      Ref.push_back(compileNsPerByte(Baselines[0], Item.Bytes, N));
    for (const EngineConfig &Cfg : Baselines) {
      std::vector<double> Rel;
      std::vector<double> Abs;
      for (size_t I = 0; I < Suites[S].size(); ++I) {
        double PerByte = compileNsPerByte(Cfg, Suites[S][I].Bytes, N);
        if (PerByte > 0 && Ref[I] > 0) {
          Rel.push_back(PerByte / Ref[I]);
          Abs.push_back(PerByte);
        }
      }
      Stat St = stats(Rel);
      Stat StAbs = stats(Abs);
      printf("  %-12s geomean %5.2f   min %5.2f   max %5.2f   "
             "(abs %6.1f ns/byte, %6.1f MB/s)\n",
             Cfg.Name.c_str(), St.Geomean, St.Min, St.Max, StAbs.Geomean,
             StAbs.Geomean > 0 ? 1000.0 / StAbs.Geomean : 0.0);
    }
  }
  printf("\nExpected shape (paper): wasm-now (copy&patch) fastest;\n"
         "wazero 3-4x slower than the single-pass compilers;\n"
         "wizard-spc on par with v8-liftoff.\n");
  return 0;
}
