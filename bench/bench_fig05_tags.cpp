//===- bench/bench_fig05_tags.cpp - paper Figure 5 --------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Execution time of Wizard-SPC value-tagging configurations relative to
// the notags configuration (tag lane removed): eagertags, eagertags-o,
// eagertags-l, on-demand (default), lazytags. Also reports the static tag
// store counts and stackmap space as supplementary data (paper §IV.C).
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"

using namespace wisp;
using namespace wisp::bench;

int main() {
  printHeader("Figure 5: value-tagging configurations vs notags",
              "relative main execution time (1.0 = notags; lower is better)");

  struct Setting {
    const char *Name;
    TagMode Mode;
  };
  const Setting Settings[] = {
      {"eagertags", TagMode::Eager},
      {"eagertags-o", TagMode::EagerOperands},
      {"eagertags-l", TagMode::EagerLocals},
      {"on-demand", TagMode::OnDemand},
      {"lazytags", TagMode::Lazy},
  };

  const char *SuiteNames[] = {"polybench", "libsodium", "ostrich"};
  std::vector<LineItem> Suites[] = {polybenchSuite(scale()),
                                    libsodiumSuite(scale()),
                                    ostrichSuite(scale())};

  for (int S = 0; S < 3; ++S) {
    printf("\n--- %s ---\n", SuiteNames[S]);
    EngineConfig NoTags = configByName("wizard-spc");
    NoTags.Opts.Tags = TagMode::None;
    std::vector<double> BaseMs;
    for (const LineItem &Item : Suites[S])
      BaseMs.push_back(measure(NoTags, Item.Bytes, runs()).MainCycles);
    for (const Setting &Set : Settings) {
      EngineConfig Cfg = configByName("wizard-spc");
      Cfg.Opts.Tags = Set.Mode;
      std::vector<double> Rel;
      for (size_t I = 0; I < Suites[S].size(); ++I) {
        double Ms = measure(Cfg, Suites[S][I].Bytes, runs()).MainCycles;
        if (Ms > 0 && BaseMs[I] > 0)
          Rel.push_back(Ms / BaseMs[I]);
      }
      Stat St = stats(Rel);
      printf("  %-12s geomean %5.3f   min %5.3f   max %5.3f\n", Set.Name,
             St.Geomean, St.Min, St.Max);
    }
  }

  // Supplementary: static tag stores / stackmap bytes on one suite.
  printf("\nStatic cost on polybench (sum over modules):\n");
  for (TagMode Mode : {TagMode::None, TagMode::OnDemand, TagMode::Lazy,
                       TagMode::Eager, TagMode::StackMap}) {
    EngineConfig Cfg = configByName("wizard-spc");
    Cfg.Opts.Tags = Mode;
    uint64_t TagStores = 0, MapBytes = 0, Insts = 0;
    for (const LineItem &Item : polybenchSuite(1)) {
      Engine E(coldLoads(Cfg)); // Static counts, but keep loads cold too.
      WasmError Err;
      auto LM = E.load(Item.Bytes, &Err);
      if (!LM)
        continue;
      TagStores += LM->Stats.TagStores;
      MapBytes += LM->Stats.StackMapBytes;
      Insts += LM->Stats.CodeInsts;
    }
    const char *Name = Mode == TagMode::None       ? "notags"
                       : Mode == TagMode::OnDemand ? "on-demand"
                       : Mode == TagMode::Lazy     ? "lazytags"
                       : Mode == TagMode::Eager    ? "eagertags"
                                                   : "stackmaps";
    printf("  %-10s tag stores %8llu   stackmap bytes %8llu   insts %8llu\n",
           Name, (unsigned long long)TagStores, (unsigned long long)MapBytes,
           (unsigned long long)Insts);
  }
  printf("\nExpected shape (paper): eager 2.4-3.3x, mostly from operand\n"
         "tags; on-demand within 0.9-4.9%% of notags; lazytags marginally\n"
         "better still.\n");
  return 0;
}
