//===- bench/bench_fig10_tiers.cpp - paper Figure 10 ------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The larger SQ-space over all execution tiers. Uses the paper's exact
// methodology: T(Mnop) bounds VM startup, T(m0) (the early-return variant
// of each module) bounds per-module setup, and the adjusted execution
// time T(m) - T(m0) with adjusted speedup over wizard-int. Setup speed is
// module bytes / (T(m0) - T(Mnop)) in MB/s.
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"

using namespace wisp;
using namespace wisp::bench;

int main() {
  printHeader("Figure 10: SQ-space for all execution tiers",
              "x = setup speed (MB/s), y = adjusted speedup over "
              "wizard-int");
  int N = std::max(1, runs() - 1);

  std::vector<EngineConfig> Tiers = figure10Registry();
  std::vector<LineItem> Items = allSuites(scale());

  // Reference: wizard-int adjusted execution time per item.
  EngineConfig IntCfg = configByName("wizard-int");
  std::vector<double> IntAdj(Items.size());
  {
    double Nop = measure(IntCfg, nopModule(), N + 4).TotalMs;
    (void)Nop;
    for (size_t I = 0; I < Items.size(); ++I) {
      double M0 = measure(IntCfg, Items[I].M0Bytes, N).MainCycles;
      double M = measure(IntCfg, Items[I].Bytes, N).MainCycles;
      IntAdj[I] = std::max(1.0, M - M0);
    }
  }

  printf("\ntier,item,setup_mbps,adj_speedup\n");
  for (const EngineConfig &Cfg : Tiers) {
    double Nop = measure(Cfg, nopModule(), N + 4).TotalMs;
    std::vector<double> Mbps, Speed;
    for (size_t I = 0; I < Items.size(); ++I) {
      ItemRun R0 = measure(Cfg, Items[I].M0Bytes, N);
      ItemRun Rm = measure(Cfg, Items[I].Bytes, N);
      double SetupMs = std::max(1e-4, R0.TotalMs - Nop);
      double AdjMs = std::max(1.0, Rm.MainCycles - R0.MainCycles);
      double MBps =
          double(Items[I].Bytes.size()) / (SetupMs / 1e3) / 1e6;
      double Sp = IntAdj[I] / AdjMs;
      Mbps.push_back(MBps);
      Speed.push_back(Sp);
      printf("%s,%s/%s,%.2f,%.2f\n", Cfg.Name.c_str(),
             Items[I].Suite.c_str(), Items[I].Name.c_str(), MBps, Sp);
    }
    Stat MS = stats(Mbps), SS = stats(Speed);
    fprintf(stderr,
            "  %-16s setup %8.2f MB/s [%7.2f..%8.2f]   adj speedup "
            "%6.2fx [%5.2f..%6.2f]\n",
            Cfg.Name.c_str(), MS.Geomean, MS.Min, MS.Max, SS.Geomean, SS.Min,
            SS.Max);
  }
  fprintf(stderr,
          "\nExpected shape (paper): interpreters cluster at fast setup and\n"
          "~1x speedup; baselines cluster in the middle; optimizing tiers\n"
          "2-3x faster execution at ~10x slower setup; lazy tiers (jsc-*)\n"
          "show inflated setup speed and deflated speedup.\n");
  return 0;
}
