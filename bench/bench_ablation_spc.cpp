//===- bench/bench_ablation_spc.cpp - design-choice ablations ---------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Ablations beyond the paper's figures, for the design choices DESIGN.md
// calls out: the compare+branch peephole, the number of allocatable
// registers (how forward-pass register allocation degrades under
// pressure), and deopt/OSR checkpoint overhead when tiering support is
// compiled in.
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"

using namespace wisp;
using namespace wisp::bench;

int main() {
  printHeader("Ablation: SPC design choices",
              "main-time relative to the default configuration "
              "(1.0 = default; higher is slower)");

  std::vector<LineItem> Items = polybenchSuite(scale());
  EngineConfig Default = configByName("wizard-spc");

  std::vector<double> Base;
  for (const LineItem &Item : Items)
    Base.push_back(measure(Default, Item.Bytes, runs()).MainCycles);

  auto Report = [&](const char *Name, const EngineConfig &Cfg) {
    std::vector<double> Rel;
    for (size_t I = 0; I < Items.size(); ++I) {
      double Ms = measure(Cfg, Items[I].Bytes, runs()).MainCycles;
      if (Ms > 0 && Base[I] > 0)
        Rel.push_back(Ms / Base[I]);
    }
    Stat St = stats(Rel);
    printf("  %-22s geomean %5.3f   min %5.3f   max %5.3f\n", Name,
           St.Geomean, St.Min, St.Max);
  };

  {
    EngineConfig C = Default;
    C.Opts.Peephole = false;
    Report("no cmp+br fusion", C);
  }
  for (int Regs : {3, 4, 6, 8, 11}) {
    EngineConfig C = Default;
    C.Opts.NumGp = uint8_t(Regs);
    C.Opts.NumFp = uint8_t(Regs);
    char Buf[32];
    snprintf(Buf, sizeof(Buf), "%d allocatable regs", Regs);
    Report(Buf, C);
  }
  {
    EngineConfig C = Default;
    C.Opts.EmitDeoptChecks = true;
    C.Opts.EmitOsrEntries = true;
    Report("deopt+osr checkpoints", C);
  }
  return 0;
}
