//===- bench/bench_serve.cpp - serve-mode latency and throughput -----------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Measures the persistent service mode (src/service/serve.*): one serve
// session per worker count, fed the fig. 7 suite items as job lines over
// several rounds. The first round is cold by construction (each worker
// builds its warm engines and the serve-local compile cache on first
// contact with a configuration/module); later rounds hit warm engines,
// cached artifacts and pooled instances — the steady-state regime the
// serving layer exists for. Reports per-job service time (worker pickup
// to done line; queue wait is excluded because the open-loop in-memory
// submitter would otherwise dominate the numbers with its own speed) as
// p50/p99, throughput in jobs/s at 1 and 8 workers, and the cold-vs-warm
// split (first-round p50 vs last-round p50).
//
// WISP_BENCH_JSON rows: (config="serve", item="jobs=K",
// metric=throughput_jobs_per_s | p50_ms | p99_ms | cold_p50_ms |
// warm_p50_ms | cold_over_warm).
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"
#include "service/serve.h"

#include <thread>

using namespace wisp;
using namespace wisp::bench;

namespace {

constexpr int Rounds = 4;

/// The job stream: Rounds passes over every fig. 7 suite item on the two
/// configurations a serving mix actually splits across (baseline JIT and
/// the threaded interpreter). Round boundaries matter: latencies are
/// indexed by acceptance order, so the first JobsPerRound entries are the
/// cold round and the last JobsPerRound the warmest.
std::string buildJobLines(size_t *JobsPerRound) {
  static const char *Tiers[] = {"spc", "threaded"};
  std::vector<LineItem> Items = allSuites(scale());
  std::string Lines;
  *JobsPerRound = Items.size() * 2;
  for (int Round = 0; Round < Rounds; ++Round)
    for (const LineItem &I : Items)
      for (const char *Tier : Tiers)
        Lines += I.Suite + "/" + I.Name + " tier=" + Tier + "\n";
  return Lines;
}

double percentile(std::vector<double> V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t Idx = size_t(P * double(V.size() - 1) + 0.5);
  return V[std::min(Idx, V.size() - 1)];
}

/// One serve session over in-memory streams; returns its stats.
ServeStats serveSession(const std::string &Input, unsigned Workers) {
  ServeOptions Opts;
  Opts.Workers = Workers;
  // Roomy queue: this measures service latency, not shedding (admission
  // control has its own tests); every job line must be accepted.
  Opts.QueueCap = 1 << 16;
  FILE *In = fmemopen(const_cast<char *>(Input.data()), Input.size(), "r");
  char *Buf = nullptr;
  size_t Len = 0;
  FILE *Out = open_memstream(&Buf, &Len);
  ServeStats Stats = runServe(In, Out, Opts);
  fclose(In);
  fclose(Out);
  free(Buf);
  return Stats;
}

} // namespace

int main() {
  jsonBench("bench_serve");
  printHeader("bench_serve: service-mode latency (p50/p99) and throughput, "
              "cold round vs warm rounds",
              "job stream = 4 rounds of all fig. 7 suite items x {spc, "
              "threaded}; warm engines + serve-local compile cache + "
              "per-worker instance pools");

  size_t JobsPerRound = 0;
  std::string Input = buildJobLines(&JobsPerRound);
  size_t Total = JobsPerRound * Rounds;
  printf("jobs=%zu (%d rounds of %zu) hardware_concurrency=%u\n\n", Total,
         Rounds, JobsPerRound, std::thread::hardware_concurrency());

  printf("  %-10s %10s %9s %9s %12s %12s %11s\n", "workers", "jobs/s",
         "p50 ms", "p99 ms", "cold p50 ms", "warm p50 ms", "cold/warm");
  for (unsigned Workers : {1u, 8u}) {
    // Median-of-runs for the aggregate numbers; latency percentiles pool
    // every run's samples (more mass in the tail).
    std::vector<double> Thrus;
    std::vector<double> All, Cold, Warm;
    for (int R = 0; R < runs(); ++R) {
      ServeStats S = serveSession(Input, Workers);
      if (S.Accepted != Total || S.Done != Total) {
        fprintf(stderr,
                "bench_serve: session lost jobs (%llu accepted, %llu done, "
                "want %zu)\n",
                (unsigned long long)S.Accepted, (unsigned long long)S.Done,
                Total);
        return 1;
      }
      double Secs = S.WallMs / 1e3;
      Thrus.push_back(Secs > 0 ? double(Total) / Secs : 0);
      All.insert(All.end(), S.ServiceMs.begin(), S.ServiceMs.end());
      Cold.insert(Cold.end(), S.ServiceMs.begin(),
                  S.ServiceMs.begin() + JobsPerRound);
      Warm.insert(Warm.end(), S.ServiceMs.end() - JobsPerRound,
                  S.ServiceMs.end());
    }
    std::sort(Thrus.begin(), Thrus.end());
    double Thru = Thrus[Thrus.size() / 2];
    double P50 = percentile(All, 0.50), P99 = percentile(All, 0.99);
    double ColdP50 = percentile(Cold, 0.50);
    double WarmP50 = percentile(Warm, 0.50);
    double Ratio = WarmP50 > 0 ? ColdP50 / WarmP50 : 0;
    printf("  %-10u %10.1f %9.3f %9.3f %12.3f %12.3f %10.2fx\n", Workers,
           Thru, P50, P99, ColdP50, WarmP50, Ratio);
    std::string Item = "jobs=" + std::to_string(Workers);
    jsonRecord("serve", Item, "throughput_jobs_per_s", Thru);
    jsonRecord("serve", Item, "p50_ms", P50);
    jsonRecord("serve", Item, "p99_ms", P99);
    jsonRecord("serve", Item, "cold_p50_ms", ColdP50);
    jsonRecord("serve", Item, "warm_p50_ms", WarmP50);
    jsonRecord("serve", Item, "cold_over_warm", Ratio);
  }
  printf("\nlatency = worker pickup to done line (queue wait excluded); "
         "cold = first round of each session, warm = last round\n");
  return 0;
}
