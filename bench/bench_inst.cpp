//===- bench/bench_inst.cpp - instantiation fast-path benchmark -----------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Measures the instantiation fast path (src/runtime/instance.h: instance
// images + the engine instance pool) on warm repeated loads: every fig. 7
// suite item is loaded N times in fresh engines sharing one compile cache
// — so decode/validate/compile are already served as cached artifacts and
// the remaining per-load cost is instantiation — once with pooling off
// (plain segment-replay instantiate per load) and once with pooling on
// (each load re-images the instance the previous load retired). Reports
// median InstantiateNs and TotalSetupNs for both and the pooled-over-fresh
// ratios.
//
// The acceptance bar (>= 3x geomean warm InstantiateNs, fresh over
// pooled, across the fig. 7 suites) is checked on the single-pass
// baseline config; the headline line prints PASS/FAIL and the process
// exits nonzero on FAIL.
//
// A second table measures the batch regime: the m0 (early return)
// variants of every item as a manifest across 1 -> 8 workers, compile
// cache always on, per-worker instance pools off vs on — per-job cost is
// almost pure setup, and with the cache warm, almost pure instantiation.
//
// WISP_BENCH_JSON rows:
//   (config, item, fresh_inst_ns | pooled_inst_ns | inst_speedup |
//    fresh_setup_ns | pooled_setup_ns | setup_speedup)
//   (config, "geomean", inst_speedup | setup_speedup)
//   (config="batch-m0-nopool"|"batch-m0-pool", item="jobs=K", wall_ms |
//    throughput_jobs_per_s), (config="batch-m0", item="jobs=K",
//    pool_speedup)
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"
#include "cache/compilecache.h"
#include "service/batch.h"

#include <thread>

using namespace wisp;
using namespace wisp::bench;

namespace {

struct SetupStats {
  uint64_t TotalNs = 0;
  uint64_t InstNs = 0;
};

/// Median setup cost of loading \p Bytes N times in fresh engines that
/// share \p Cache (always warm: one priming load runs first) and, when
/// \p Pool is non-null, recycle each load's instance for the next.
SetupStats measureSetup(const EngineConfig &CfgIn,
                        const std::vector<uint8_t> &Bytes, int N,
                        CompileCache *Cache, InstancePool *Pool) {
  EngineConfig Cfg = CfgIn;
  Cfg.UseCompileCache = true;
  Cfg.PoolInstances = Pool != nullptr;
  std::vector<uint64_t> Total, Inst;
  for (int I = 0; I < N + 1; ++I) {
    Engine E(Cfg, Cache, Pool);
    WasmError Err;
    std::unique_ptr<LoadedModule> LM = E.load(Bytes, &Err);
    if (!LM) {
      fprintf(stderr, "bench_inst: load failed (%s): %s\n", Cfg.Name.c_str(),
              Err.Message.c_str());
      exit(1);
    }
    if (I > 0) { // Skip the priming load (cache-cold, pool-empty).
      Total.push_back(LM->Stats.TotalSetupNs);
      Inst.push_back(LM->Stats.InstantiateNs);
    }
    if (Pool)
      E.recycle(std::move(LM));
  }
  std::sort(Total.begin(), Total.end());
  std::sort(Inst.begin(), Inst.end());
  return {Total[Total.size() / 2], Inst[Inst.size() / 2]};
}

double safeRatio(double Num, double Den) { return Den > 0 ? Num / Den : 0; }

} // namespace

int main() {
  jsonBench("bench_inst");
  printHeader("bench_inst: pooled-vs-fresh instantiation on warm loads "
              "(fig. 7 suites)",
              "both columns share a warm compile cache (decode/compile "
              "served); fresh = segment-replay instantiate per load, "
              "pooled = re-image the instance the previous load retired");

  // Setup is microseconds; use the same repetition bump as bench_cache.
  int N = runs() * 5 + 4;
  std::vector<LineItem> Items = allSuites(scale());

  static const char *Configs[] = {"wizard-spc", "interp-threaded",
                                  "wasmtime"};
  double SpcGeomean = 0;
  printf("  %-16s %13s %13s %10s %12s %12s %10s\n", "config", "fresh inst",
         "pooled inst", "inst f/p", "fresh setup", "pooled setup",
         "setup f/p");
  for (const char *Name : Configs) {
    EngineConfig Cfg = configByName(Name);
    std::vector<double> InstRatios, SetupRatios, FreshInst, PooledInst,
        FreshSetup, PooledSetup;
    for (const LineItem &Item : Items) {
      CompileCache FreshCache;
      SetupStats Fresh =
          measureSetup(Cfg, Item.Bytes, N, &FreshCache, nullptr);
      CompileCache PoolCache;
      InstancePool Pool;
      SetupStats Pooled =
          measureSetup(Cfg, Item.Bytes, N, &PoolCache, &Pool);

      double InstRatio = safeRatio(double(Fresh.InstNs), double(Pooled.InstNs));
      double SetupRatio =
          safeRatio(double(Fresh.TotalNs), double(Pooled.TotalNs));
      InstRatios.push_back(InstRatio);
      SetupRatios.push_back(SetupRatio);
      FreshInst.push_back(double(Fresh.InstNs));
      PooledInst.push_back(double(Pooled.InstNs));
      FreshSetup.push_back(double(Fresh.TotalNs));
      PooledSetup.push_back(double(Pooled.TotalNs));
      std::string ItemName = Item.Suite + "/" + Item.Name;
      jsonRecord(Name, ItemName, "fresh_inst_ns", double(Fresh.InstNs));
      jsonRecord(Name, ItemName, "pooled_inst_ns", double(Pooled.InstNs));
      jsonRecord(Name, ItemName, "inst_speedup", InstRatio);
      jsonRecord(Name, ItemName, "fresh_setup_ns", double(Fresh.TotalNs));
      jsonRecord(Name, ItemName, "pooled_setup_ns", double(Pooled.TotalNs));
      jsonRecord(Name, ItemName, "setup_speedup", SetupRatio);
    }
    Stat IR = stats(InstRatios);
    Stat SR = stats(SetupRatios);
    printf("  %-16s %13.0f %13.0f %9.2fx %12.0f %12.0f %9.2fx\n", Name,
           stats(FreshInst).Geomean, stats(PooledInst).Geomean, IR.Geomean,
           stats(FreshSetup).Geomean, stats(PooledSetup).Geomean, SR.Geomean);
    jsonRecord(Name, "geomean", "inst_speedup", IR.Geomean);
    jsonRecord(Name, "geomean", "setup_speedup", SR.Geomean);
    if (std::string(Name) == "wizard-spc")
      SpcGeomean = IR.Geomean;
  }

  // The acceptance bar: on the single-pass baseline, warm instantiation
  // must be >= 3x faster from the pool (geomean across the fig. 7
  // suites) than the segment-replay path.
  bool Pass = SpcGeomean >= 3.0;
  printf("\nheadline: warm InstantiateNs fresh-over-pooled geomean %.1fx on "
         "wizard-spc (bar: >=3x) %s\n",
         SpcGeomean, Pass ? "PASS" : "FAIL");
  jsonRecord("wizard-spc", "headline", "inst_speedup_geomean", SpcGeomean);

  // --- Batch regime: the m0 manifest, 1 -> 8 workers, pool off vs on ----
  printf("\nbatch (m0 early-return variants, warm compile cache; per-job "
         "cost ~= instantiation):\n");
  static const char *BatchConfigs[] = {"wizard-spc", "interp-threaded",
                                       "wasmtime"};
  std::vector<BatchJob> Jobs;
  for (int Round = 0; Round < 2; ++Round)
    for (const LineItem &I : Items)
      for (const char *Config : BatchConfigs) {
        BatchJob Job;
        Job.Index = uint32_t(Jobs.size());
        Job.Module = I.Suite + "/" + I.Name;
        Job.Config = Config;
        Job.Bytes = I.M0Bytes;
        Jobs.push_back(std::move(Job));
      }
  printf("  jobs=%zu hardware_concurrency=%u\n", Jobs.size(),
         std::thread::hardware_concurrency());
  printf("  %-10s %12s %12s %11s\n", "workers", "no-pool ms", "pool ms",
         "nopool/pool");
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    auto Wall = [&](bool Pooled) {
      std::vector<double> Walls;
      for (int R = 0; R < runs(); ++R) {
        BatchOptions Opts;
        Opts.Workers = Workers;
        Opts.CompileCache = true;
        Opts.PoolInstances = Pooled;
        Walls.push_back(runBatch(Jobs, Opts).WallMs);
      }
      std::sort(Walls.begin(), Walls.end());
      return Walls[Walls.size() / 2];
    };
    double NoPool = Wall(false);
    double Pool = Wall(true);
    double Ratio = safeRatio(NoPool, Pool);
    printf("  %-10u %12.2f %12.2f %10.2fx\n", Workers, NoPool, Pool, Ratio);
    std::string Item = "jobs=" + std::to_string(Workers);
    jsonRecord("batch-m0-nopool", Item, "wall_ms", NoPool);
    jsonRecord("batch-m0-nopool", Item, "throughput_jobs_per_s",
               NoPool > 0 ? double(Jobs.size()) / (NoPool / 1e3) : 0);
    jsonRecord("batch-m0-pool", Item, "wall_ms", Pool);
    jsonRecord("batch-m0-pool", Item, "throughput_jobs_per_s",
               Pool > 0 ? double(Jobs.size()) / (Pool / 1e3) : 0);
    jsonRecord("batch-m0", Item, "pool_speedup", Ratio);
  }

  return Pass ? 0 : 1;
}
