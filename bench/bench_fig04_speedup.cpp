//===- bench/bench_fig04_speedup.cpp - paper Figure 4 ----------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Execution-time speedup of Wizard-SPC over Wizard-INT across the five
// optimization settings (allopt, nok, nokfold, noisel, nomr). Main
// execution time only (startup and compilation factored out), per the
// paper's methodology.
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"

using namespace wisp;
using namespace wisp::bench;

int main() {
  printHeader("Figure 4: speedup of Wizard-SPC over Wizard-INT",
              "main execution (modeled cycles); per-suite geomean, "
              "min/max over line items");

  struct Setting {
    const char *Name;
    CompilerOptions Opts;
  };
  const Setting Settings[] = {
      {"allopt", CompilerOptions::allopt()},
      {"nok", CompilerOptions::nok()},
      {"nokfold", CompilerOptions::nokfold()},
      {"noisel", CompilerOptions::noisel()},
      {"nomr", CompilerOptions::nomr()},
  };

  EngineConfig IntCfg = configByName("wizard-int");
  const char *SuiteNames[] = {"polybench", "libsodium", "ostrich"};
  std::vector<LineItem> Suites[] = {polybenchSuite(scale()),
                                    libsodiumSuite(scale()),
                                    ostrichSuite(scale())};

  for (int S = 0; S < 3; ++S) {
    printf("\n--- %s (%zu line items) ---\n", SuiteNames[S],
           Suites[S].size());
    // Interpreter reference per item.
    std::vector<double> IntMs;
    for (const LineItem &Item : Suites[S])
      IntMs.push_back(measure(IntCfg, Item.Bytes, runs()).MainCycles);
    for (const Setting &Set : Settings) {
      EngineConfig Cfg = configByName("wizard-spc");
      TagMode Tags = Cfg.Opts.Tags;
      Cfg.Opts = Set.Opts;
      Cfg.Opts.Tags = Tags;
      std::vector<double> Speedups;
      for (size_t I = 0; I < Suites[S].size(); ++I) {
        double JitMs = measure(Cfg, Suites[S][I].Bytes, runs()).MainCycles;
        if (JitMs > 0 && IntMs[I] > 0)
          Speedups.push_back(IntMs[I] / JitMs);
      }
      Stat St = stats(Speedups);
      printf("  %-10s geomean %6.2fx   min %6.2fx   max %6.2fx\n", Set.Name,
             St.Geomean, St.Min, St.Max);
    }
  }
  printf("\nExpected shape (paper): 5x-28x per item, suite means 10x-15x;\n"
         "nok hurts most, nomr second, nokfold/noisel small but real.\n");
  return 0;
}
