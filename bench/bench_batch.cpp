//===- bench/bench_batch.cpp - batch-runner scaling ------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Measures the parallel batch runner (src/service/): the fig. 7 suites as
// one manifest, executed end to end (fresh engine per job: decode,
// validate, compile, run) at 1, 2, 4 and 8 workers. Reports throughput
// (jobs/s) and speedup vs. one worker, and asserts the per-job results are
// identical at every worker count. Wall-clock scaling tracks the host's
// core count: on a single-core machine the curve is flat by construction,
// so the table also prints the hardware concurrency it measured under.
//
// WISP_BENCH_JSON rows: (config="batch", item="jobs=K",
// metric=throughput_jobs_per_s | speedup_vs_1 | wall_ms).
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"
#include "service/batch.h"

#include <thread>

using namespace wisp;
using namespace wisp::bench;

namespace {

/// The manifest: every fig. 7 suite item once per exercised configuration
/// (>= 20 jobs even at the smallest suite subset).
std::vector<BatchJob> buildJobs() {
  static const char *Configs[] = {"wizard-spc", "interp-threaded",
                                  "wizard-tiered"};
  std::vector<BatchJob> Jobs;
  for (const LineItem &I : allSuites(scale())) {
    BatchJob Job;
    Job.Index = uint32_t(Jobs.size());
    Job.Module = I.Suite + "/" + I.Name;
    Job.Config = Configs[Jobs.size() % 3];
    Job.Bytes = I.Bytes;
    Jobs.push_back(std::move(Job));
  }
  return Jobs;
}

/// Deterministic fingerprint of a report's per-job observations.
uint64_t fingerprint(const BatchReport &R) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001b3ull;
  };
  for (const BatchJobResult &Job : R.Results) {
    Mix(Job.Index);
    Mix(uint64_t(Job.Trap));
    Mix(Job.ModeledCycles);
    for (const Value &V : Job.Results)
      Mix(V.Bits);
  }
  return H;
}

} // namespace

int main() {
  jsonBench("bench_batch");
  printHeader("bench_batch: batch-runner scaling (1 -> K workers)",
              "manifest = all fig. 7 suite items x {spc, threaded, tiered}; "
              "fresh engine per job");

  std::vector<BatchJob> Jobs = buildJobs();
  printf("jobs=%zu hardware_concurrency=%u\n\n", Jobs.size(),
         std::thread::hardware_concurrency());

  double Base = 0;
  uint64_t BaseFp = 0;
  printf("  %-10s %10s %12s %9s\n", "workers", "wall ms", "jobs/s",
         "speedup");
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    // Median-of-N batch executions.
    std::vector<double> Walls;
    uint64_t Fp = 0;
    for (int R = 0; R < runs(); ++R) {
      BatchReport Report = runBatch(Jobs, Workers);
      Walls.push_back(Report.WallMs);
      Fp = fingerprint(Report);
      if (BaseFp == 0)
        BaseFp = Fp;
      if (Fp != BaseFp) {
        fprintf(stderr,
                "bench_batch: NONDETERMINISM at %u workers "
                "(fingerprint %llx != %llx)\n",
                Workers, (unsigned long long)Fp, (unsigned long long)BaseFp);
        return 1;
      }
    }
    std::sort(Walls.begin(), Walls.end());
    double Wall = Walls[Walls.size() / 2];
    double Thru = Wall > 0 ? double(Jobs.size()) / (Wall / 1e3) : 0;
    if (Workers == 1)
      Base = Wall;
    double Speedup = Wall > 0 ? Base / Wall : 0;
    printf("  %-10u %10.1f %12.1f %8.2fx\n", Workers, Wall, Thru, Speedup);
    std::string Item = "jobs=" + std::to_string(Workers);
    jsonRecord("batch", Item, "wall_ms", Wall);
    jsonRecord("batch", Item, "throughput_jobs_per_s", Thru);
    jsonRecord("batch", Item, "speedup_vs_1", Speedup);
  }
  printf("\nper-job results identical at every worker count "
         "(fingerprint %llx)\n",
         (unsigned long long)BaseFp);
  return 0;
}
