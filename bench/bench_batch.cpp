//===- bench/bench_batch.cpp - batch-runner scaling ------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Measures the parallel batch runner (src/service/): the fig. 7 suites as
// one manifest, executed end to end (fresh engine per job: decode,
// validate, compile, run) at 1, 2, 4 and 8 workers — cache-cold (per-job
// engines recompile every body, the pre-compile-cache regime) and
// cache-warm (one shared compile cache across the pool; identical bodies
// compile once per batch) side by side, so the cache's batch win is
// measured rather than asserted. Reports throughput (jobs/s), speedup
// vs. one cold worker and the warm-over-cold ratio, and asserts the
// per-job results are identical at every worker count *and* across cache
// modes. Wall-clock scaling tracks the host's core count: on a
// single-core machine the curve is flat by construction, so the table
// also prints the hardware concurrency it measured under.
//
// WISP_BENCH_JSON rows: (config="batch-cold"|"batch-warm", item="jobs=K",
// metric=throughput_jobs_per_s | speedup_vs_1 | wall_ms), plus
// (config="batch", item="jobs=K", metric=warm_over_cold).
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"
#include "service/batch.h"

#include <thread>

using namespace wisp;
using namespace wisp::bench;

namespace {

/// The manifest: two rounds of every fig. 7 suite item on every exercised
/// configuration — the repeated-jobs regime a serving system actually
/// sees, and exactly what the shared compile cache exploits (the module
/// artifact is shared across configurations, compiled bodies across
/// rounds; cold mode recompiles all of it per job).
std::vector<BatchJob> buildJobs() {
  static const char *Configs[] = {"wizard-spc", "interp-threaded",
                                  "wizard-tiered"};
  std::vector<BatchJob> Jobs;
  for (int Round = 0; Round < 2; ++Round)
    for (const LineItem &I : allSuites(scale()))
      for (const char *Config : Configs) {
        BatchJob Job;
        Job.Index = uint32_t(Jobs.size());
        Job.Module = I.Suite + "/" + I.Name;
        Job.Config = Config;
        Job.Bytes = I.Bytes;
        Jobs.push_back(std::move(Job));
      }
  return Jobs;
}

/// Deterministic fingerprint of a report's per-job observations.
uint64_t fingerprint(const BatchReport &R) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001b3ull;
  };
  for (const BatchJobResult &Job : R.Results) {
    Mix(Job.Index);
    Mix(uint64_t(Job.Trap));
    Mix(Job.ModeledCycles);
    for (const Value &V : Job.Results)
      Mix(V.Bits);
  }
  return H;
}

} // namespace

int main() {
  jsonBench("bench_batch");
  printHeader("bench_batch: batch-runner scaling (1 -> K workers), "
              "cache-cold vs cache-warm",
              "manifest = all fig. 7 suite items x {spc, threaded, tiered}; "
              "fresh engine per job; warm = one shared compile cache per "
              "batch");

  std::vector<BatchJob> Jobs = buildJobs();
  printf("jobs=%zu hardware_concurrency=%u\n\n", Jobs.size(),
         std::thread::hardware_concurrency());

  // Median batch wall time at a worker count, cold or warm. The
  // fingerprint of every execution must match: per-job observations are
  // independent of worker count, scheduling, and the compile cache.
  uint64_t BaseFp = 0;
  uint64_t CacheHits = 0;
  auto MeasureWall = [&](unsigned Workers, bool Warm) {
    std::vector<double> Walls;
    for (int R = 0; R < runs(); ++R) {
      BatchOptions Opts;
      Opts.Workers = Workers;
      Opts.CompileCache = Warm;
      BatchReport Report = runBatch(Jobs, Opts);
      Walls.push_back(Report.WallMs);
      if (Warm)
        CacheHits = Report.CacheHits;
      uint64_t Fp = fingerprint(Report);
      if (BaseFp == 0)
        BaseFp = Fp;
      if (Fp != BaseFp) {
        fprintf(stderr,
                "bench_batch: NONDETERMINISM at %u workers (%s, "
                "fingerprint %llx != %llx)\n",
                Workers, Warm ? "warm" : "cold", (unsigned long long)Fp,
                (unsigned long long)BaseFp);
        exit(1);
      }
    }
    std::sort(Walls.begin(), Walls.end());
    return Walls[Walls.size() / 2];
  };

  double ColdBase = 0;
  printf("  %-10s %12s %12s %9s %12s %9s\n", "workers", "cold ms",
         "cold jobs/s", "speedup", "warm ms", "warm/cold");
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    double Cold = MeasureWall(Workers, /*Warm=*/false);
    double Warm = MeasureWall(Workers, /*Warm=*/true);
    double ColdThru = Cold > 0 ? double(Jobs.size()) / (Cold / 1e3) : 0;
    double WarmThru = Warm > 0 ? double(Jobs.size()) / (Warm / 1e3) : 0;
    if (Workers == 1)
      ColdBase = Cold;
    double Speedup = Cold > 0 ? ColdBase / Cold : 0;
    double Ratio = Warm > 0 ? Cold / Warm : 0;
    printf("  %-10u %12.1f %12.1f %8.2fx %12.1f %8.2fx\n", Workers, Cold,
           ColdThru, Speedup, Warm, Ratio);
    std::string Item = "jobs=" + std::to_string(Workers);
    jsonRecord("batch-cold", Item, "wall_ms", Cold);
    jsonRecord("batch-cold", Item, "throughput_jobs_per_s", ColdThru);
    jsonRecord("batch-cold", Item, "speedup_vs_1", Speedup);
    jsonRecord("batch-warm", Item, "wall_ms", Warm);
    jsonRecord("batch-warm", Item, "throughput_jobs_per_s", WarmThru);
    jsonRecord("batch", Item, "warm_over_cold", Ratio);
  }
  printf("\nper-job results identical at every worker count and across "
         "cache modes (fingerprint %llx); warm batches served %llu cache "
         "hits\n",
         (unsigned long long)BaseFp, (unsigned long long)CacheHits);
  return 0;
}
