//===- bench/bench_fig06_probes.cpp - paper Figure 6 ------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Overhead of the branch monitor (a TOS-reading probe on every conditional
// branch) in three configurations: interpreted (int), JIT with generic
// probe calls (jit), and JIT with intrinsified probes (optjit). Reported
// as the increase in main execution time relative to the *interpreter*
// execution time, exactly like the paper's Figure 6, plus the
// JIT-renormalized numbers the paper quotes in prose.
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"

#include "instr/monitors.h"

using namespace wisp;
using namespace wisp::bench;

namespace {

/// Runs one item with (or without) a branch monitor attached. Lazy modes
/// compile after the monitor attaches, so probe sites are known to the
/// compiler.
double runWithMonitor(const EngineConfig &Cfg,
                      const std::vector<uint8_t> &Bytes, bool Monitor,
                      int N) {
  // Deterministic modeled cycles; one run suffices.
  (void)N;
  Engine E(coldLoads(Cfg)); // Probe recompiles must start from cold code.
  WasmError Err;
  auto LM = E.load(Bytes, &Err);
  if (!LM)
    return -1;
  BranchMonitor BM;
  if (Monitor)
    BM.attach(*LM->Inst, E.probes());
  std::vector<Value> Out;
  if (E.invoke(*LM, "run", {}, &Out) != TrapReason::None)
    return -1;
  return double(E.thread().modeledCycles());
}

} // namespace

int main() {
  printHeader("Figure 6: branch-monitor probe overhead",
              "overhead relative to interpreter time (0.0 = none); "
              "renormalized-to-JIT shown in brackets");

  EngineConfig IntCfg = configByName("wizard-int");
  EngineConfig JitCfg = configByName("wizard-spc");
  JitCfg.Mode = ExecMode::JitLazy; // Compile after probes attach.
  JitCfg.Opts.OptimizeProbes = false;
  EngineConfig OptJitCfg = JitCfg;
  OptJitCfg.Opts.OptimizeProbes = true;

  const char *SuiteNames[] = {"polybench", "libsodium", "ostrich"};
  std::vector<LineItem> Suites[] = {polybenchSuite(scale()),
                                    libsodiumSuite(scale()),
                                    ostrichSuite(scale())};

  for (int S = 0; S < 3; ++S) {
    printf("\n--- %s ---\n", SuiteNames[S]);
    std::vector<double> IntOv, JitOv, OptOv, JitRel, OptRel;
    for (const LineItem &Item : Suites[S]) {
      double IntBase = runWithMonitor(IntCfg, Item.Bytes, false, runs());
      double IntMon = runWithMonitor(IntCfg, Item.Bytes, true, runs());
      double JitBase = runWithMonitor(JitCfg, Item.Bytes, false, runs());
      double JitMon = runWithMonitor(JitCfg, Item.Bytes, true, runs());
      double OptMon = runWithMonitor(OptJitCfg, Item.Bytes, true, runs());
      if (IntBase <= 0 || JitBase <= 0)
        continue;
      IntOv.push_back((IntMon - IntBase) / IntBase);
      JitOv.push_back((JitMon - JitBase) / IntBase);
      OptOv.push_back((OptMon - JitBase) / IntBase);
      JitRel.push_back((JitMon - JitBase) / JitBase);
      OptRel.push_back((OptMon - JitBase) / JitBase);
    }
    auto Avg = [](const std::vector<double> &Xs) {
      double Sum = 0;
      for (double X : Xs)
        Sum += X;
      return Xs.empty() ? 0.0 : Sum / double(Xs.size());
    };
    printf("  %-8s overhead vs interp %+7.3f   [vs own JIT baseline %+7.2fx]\n",
           "int", Avg(IntOv), Avg(IntOv));
    printf("  %-8s overhead vs interp %+7.3f   [vs own JIT baseline %+7.2fx]\n",
           "jit", Avg(JitOv), Avg(JitRel));
    printf("  %-8s overhead vs interp %+7.3f   [vs own JIT baseline %+7.2fx]\n",
           "optjit", Avg(OptOv), Avg(OptRel));
  }
  printf("\nExpected shape (paper): int imposes ~20-49%%; jit similar or\n"
         "slightly lower; optjit roughly 10x lower than jit. Renormalized\n"
         "to the JIT baseline: 5.4-9x unoptimized vs 42-77%% optimized.\n");
  return 0;
}
