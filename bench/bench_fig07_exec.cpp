//===- bench/bench_fig07_exec.cpp - paper Figure 7 --------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Execution time of the six baseline compilers relative to Wizard-SPC,
// using the comprehensive methodology that includes VM startup and
// compilation (total time of load + invoke), per the paper.
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"

// Total cost combining real setup work (wall time) with modeled execution
// cycles converted at the modeled clock (cycles at 1 GHz simulated).
static double totalCost(const wisp::bench::ItemRun &R) {
  return R.SetupMs + R.MainCycles / 1e6;
}

using namespace wisp;
using namespace wisp::bench;

int main() {
  jsonBench("fig07_exec");
  printHeader("Figure 7: execution time relative to Wizard-SPC",
              "total time incl. startup and compile; 1.0 = same, lower "
              "is better");

  std::vector<EngineConfig> Baselines = baselineRegistry();
  const char *SuiteNames[] = {"polybench", "libsodium", "ostrich"};
  std::vector<LineItem> Suites[] = {polybenchSuite(scale()),
                                    libsodiumSuite(scale()),
                                    ostrichSuite(scale())};

  for (int S = 0; S < 3; ++S) {
    printf("\n--- %s ---\n", SuiteNames[S]);
    std::vector<double> RefTotal;
    for (const LineItem &Item : Suites[S])
      RefTotal.push_back(
          totalCost(measure(Baselines[0], Item.Bytes, runs())));
    for (const EngineConfig &Cfg : Baselines) {
      std::vector<double> Rel;
      for (size_t I = 0; I < Suites[S].size(); ++I) {
        double Ms = totalCost(measure(Cfg, Suites[S][I].Bytes, runs()));
        if (Ms > 0 && RefTotal[I] > 0)
          Rel.push_back(Ms / RefTotal[I]);
      }
      Stat St = stats(Rel);
      printf("  %-12s geomean %5.2f   min %5.2f   max %5.2f\n",
             Cfg.Name.c_str(), St.Geomean, St.Min, St.Max);
      jsonRecord(Cfg.Name, SuiteNames[S], "geomean_rel_total", St.Geomean);
    }
  }
  printf("\nExpected shape (paper): wazero slowest code (no constants);\n"
         "baselines otherwise within ~2x of each other.\n");
  return 0;
}
