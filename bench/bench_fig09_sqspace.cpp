//===- bench/bench_fig09_sqspace.cpp - paper Figure 9 -----------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The compiler SQ-space (speed-quality space): for every baseline compiler
// and every line item, one scatter point of (compile speed in MB/s,
// speedup of generated code over Wizard-INT). Emitted as CSV plus a
// per-compiler summary of the SQ-region.
//
//===----------------------------------------------------------------------===//

#include "benchutil.h"

using namespace wisp;
using namespace wisp::bench;

int main() {
  printHeader("Figure 9: SQ-space for baseline compilers",
              "x = compile speed (MB/s), y = main-time speedup over "
              "Wizard-INT; up and right are better");

  std::vector<EngineConfig> Baselines = baselineRegistry();
  EngineConfig IntCfg = configByName("wizard-int");
  std::vector<LineItem> Items = allSuites(scale());

  std::vector<double> IntMs;
  for (const LineItem &Item : Items)
    IntMs.push_back(measure(IntCfg, Item.Bytes, runs()).MainCycles);

  printf("\ncompiler,item,compile_mbps,speedup_vs_int\n");
  for (const EngineConfig &Cfg : Baselines) {
    std::vector<double> Mbps, Speed;
    for (size_t I = 0; I < Items.size(); ++I) {
      Engine E(coldLoads(Cfg)); // Compile-speed column needs cold loads.
      WasmError Err;
      auto LM = E.load(Items[I].Bytes, &Err);
      if (!LM || LM->Stats.CompileNs == 0)
        continue;
      double MBps = double(LM->Stats.CodeBytes) /
                    (double(LM->Stats.CompileNs) / 1e9) / 1e6;
      double MainMs = measure(Cfg, Items[I].Bytes, runs()).MainCycles;
      if (MainMs <= 0 || IntMs[I] <= 0)
        continue;
      double Sp = IntMs[I] / MainMs;
      Mbps.push_back(MBps);
      Speed.push_back(Sp);
      printf("%s,%s/%s,%.1f,%.2f\n", Cfg.Name.c_str(),
             Items[I].Suite.c_str(), Items[I].Name.c_str(), MBps, Sp);
    }
    Stat MS = stats(Mbps), SS = stats(Speed);
    fprintf(stderr,
            "  %-12s SQ-region: compile %7.1f MB/s [%6.1f..%7.1f]  "
            "speedup %5.2fx [%4.2f..%5.2f]\n",
            Cfg.Name.c_str(), MS.Geomean, MS.Min, MS.Max, SS.Geomean, SS.Min,
            SS.Max);
  }
  return 0;
}
