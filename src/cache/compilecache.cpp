//===- cache/compilecache.cpp - content-addressed compile cache ------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "cache/compilecache.h"

#include "runtime/instance.h"
#include "support/clock.h"
#include "support/parse.h"

#include <algorithm>

#include <cstdint>
#include <cstdlib>

using namespace wisp;

// --- Key derivation -------------------------------------------------------

CacheKey wisp::moduleCacheKey(const std::vector<uint8_t> &Bytes) {
  KeyHasher H;
  H.u8(0x4D); // 'M': artifact-kind tag.
  H.u64(Bytes.size());
  H.bytes(Bytes.data(), Bytes.size());
  return H.key();
}

uint64_t wisp::moduleContextDigest(const Module &M) {
  KeyHasher H;
  H.u8(0x43); // 'C'
  H.u64(M.Types.size());
  for (const FuncType &T : M.Types) {
    H.u64(T.Params.size());
    for (ValType V : T.Params)
      H.u8(uint8_t(V));
    H.u64(T.Results.size());
    for (ValType V : T.Results)
      H.u8(uint8_t(V));
  }
  H.u64(M.Funcs.size());
  H.u32(M.NumImportedFuncs);
  for (const FuncDecl &F : M.Funcs) {
    H.u32(F.TypeIdx);
    H.u8(F.Imported);
  }
  H.u64(M.Globals.size());
  H.u32(M.NumImportedGlobals);
  for (const GlobalDecl &G : M.Globals) {
    H.u8(uint8_t(G.Type));
    H.u8(G.Mutable);
  }
  H.u64(M.Tables.size());
  for (const TableDecl &T : M.Tables) {
    H.u8(uint8_t(T.Elem));
    H.u64(T.Lim.Min);
    H.u8(T.Lim.HasMax);
    H.u64(T.Lim.Max);
  }
  H.u64(M.Memories.size());
  for (const MemoryDecl &Mem : M.Memories) {
    H.u64(Mem.Lim.Min);
    H.u8(Mem.Lim.HasMax);
    H.u64(Mem.Lim.Max);
  }
  return H.key().Lo;
}

namespace {

/// The function-body identity shared by the code and IR keys: bytes,
/// position (line tables, threaded-IR BcIp and side-table positions are
/// absolute module-byte coordinates), declared locals (BodyStart points
/// past the locals vector) and the function index (baked into MCode and
/// hotness/call plumbing).
void hashBody(KeyHasher &H, uint64_t CtxDigest, const Module &M,
              const FuncDecl &D) {
  H.u64(CtxDigest);
  H.u32(D.Index);
  H.u32(D.TypeIdx);
  H.u32(D.BodyStart);
  H.u64(D.Locals.size());
  for (ValType V : D.Locals)
    H.u8(uint8_t(V));
  H.u64(uint64_t(D.BodyEnd) - D.BodyStart);
  H.bytes(M.Bytes.data() + D.BodyStart, D.BodyEnd - D.BodyStart);
}

} // namespace

CacheKey wisp::codeCacheKey(uint64_t CtxDigest, const Module &M,
                            const FuncDecl &D, CompilerKind Kind,
                            const CompilerOptions &Opts, bool Verified) {
  KeyHasher H;
  H.u8(0x46); // 'F'
  hashBody(H, CtxDigest, M, D);
  H.u8(uint8_t(Kind));
  // Every option that steers code generation. NumGp/NumFp change register
  // allocation; probe options are irrelevant here (probed bodies bypass
  // the cache) but are included so the digest never silently under-keys.
  H.u8(Opts.TrackConstants);
  H.u8(Opts.ConstantFolding);
  H.u8(Opts.InstructionSelect);
  H.u8(Opts.MultiRegister);
  H.u8(Opts.Peephole);
  H.u8(uint8_t(Opts.Tags));
  H.u8(Opts.OptimizeProbes);
  H.u8(Opts.EmitDeoptChecks);
  H.u8(Opts.EmitOsrEntries);
  H.u8(Opts.EmitFuelChecks);
  H.u8(Opts.NumGp);
  H.u8(Opts.NumFp);
  // VerifyArtifacts is not a codegen option, but it is part of the entry's
  // provenance: a verify-on engine must never hit an entry inserted
  // unverified by a verify-off engine sharing the cache.
  H.u8(Verified);
  return H.key();
}

CacheKey wisp::irCacheKey(uint64_t CtxDigest, const Module &M,
                          const FuncDecl &D, bool EnableFusion,
                          bool EmitFuelGates, bool Verified) {
  KeyHasher H;
  H.u8(0x54); // 'T'
  hashBody(H, CtxDigest, M, D);
  H.u8(EnableFusion);
  H.u8(EmitFuelGates);
  H.u8(Verified);
  return H.key();
}

CacheKey wisp::instanceImageKey(const Module &M) {
  KeyHasher H;
  H.u8(0x49); // 'I'
  H.u64(M.Bytes.size());
  H.bytes(M.Bytes.data(), M.Bytes.size());
  return H.key();
}

// --- The cache ------------------------------------------------------------

CompileCache::CompileCache(size_t CapacityBytes)
    : Capacity(CapacityBytes ? CapacityBytes : 1) {}

CompileCache::~CompileCache() = default;

std::shared_ptr<const void>
CompileCache::getOrBuildImpl(const CacheKey &K,
                             const std::function<Payload()> &Build,
                             CacheStats *Stats,
                             const std::function<Payload()> &TryDisk,
                             const std::function<void(const Payload &)>
                                 &StoreDisk) {
  std::unique_lock<std::mutex> L(Mu);
  ++UseTick;
  auto It = Map.find(K);
  if (It != Map.end()) {
    It->second.LastUse = UseTick;
    bool WasReady = It->second.Ready;
    std::shared_future<Payload> Fut = It->second.Future;
    L.unlock();
    // May block on an in-flight build. Accounting happens after the
    // wait: a failed build serves nothing and must count nothing, or the
    // hit/miss split would depend on who happened to be in flight.
    Payload P = Fut.get();
    if (!P.Value)
      return nullptr; // Caller falls back to its uncached path.
    uint64_t SavedNs = WasReady ? P.BuildNs : 0; // A waiter saved no time.
    L.lock();
    ++T.Hits;
    T.SavedNs += SavedNs;
    if (Stats) {
      ++Stats->CacheHits;
      Stats->CacheSavedNs += SavedNs;
    }
    return P.Value;
  }

  std::promise<Payload> Prom;
  Slot S;
  S.Future = Prom.get_future().share();
  S.LastUse = UseTick;
  Map.emplace(K, std::move(S));
  L.unlock();

  // Second level: on a process miss, try the disk before building. The
  // loader hands back an already-admitted artifact (deserialized and
  // re-verified by the engine layer) or null; either way the build path
  // below stays the fallback, so disk damage can never fail a load.
  Payload P;
  bool FromDisk = false;
  try {
    if (TryDisk) {
      P = TryDisk();
      FromDisk = P.Value != nullptr;
    }
    if (!FromDisk)
      P = Build();
  } catch (...) {
    // Never leave a slot whose promise will not be fulfilled: waiters
    // would hit a broken promise and the key would be poisoned forever.
    // Fulfill with a null payload (waiters fall back uncached) and
    // remove the slot so a later identical request retries.
    Prom.set_value(Payload{});
    L.lock();
    Map.erase(K);
    throw;
  }
  Prom.set_value(P);
  // Persist fresh builds after unblocking waiters — file I/O must not
  // extend the in-flight window — and outside the lock.
  if (P.Value && !FromDisk && StoreDisk)
    StoreDisk(P);

  L.lock();
  auto Me = Map.find(K);
  if (!P.Value) {
    // Build failures are neither cached nor counted (no miss, and the
    // waiters above counted no hit): the caller falls back to its
    // uncached path for the diagnostic, a later identical request
    // retries, and the hit/miss split stays scheduling-independent.
    if (Me != Map.end())
      Map.erase(Me);
    if (TryDisk) {
      ++T.DiskMisses;
      if (Stats)
        ++Stats->DiskMisses;
    }
    return nullptr;
  }
  if (FromDisk) {
    // A disk admission is neither a process hit nor a miss; it saved the
    // recorded original build time (minus I/O, which TotalSetupNs pays
    // visibly).
    ++T.DiskHits;
    T.SavedNs += P.BuildNs;
    if (Stats) {
      ++Stats->DiskHits;
      Stats->CacheSavedNs += P.BuildNs;
    }
  } else {
    ++T.Misses;
    if (Stats)
      ++Stats->CacheMisses;
    if (TryDisk) {
      ++T.DiskMisses;
      if (Stats)
        ++Stats->DiskMisses;
    }
  }
  if (Me != Map.end()) {
    Me->second.Ready = true;
    Me->second.BuildNs = P.BuildNs;
    Me->second.Bytes = P.Bytes;
    T.Bytes += P.Bytes;
    ++T.Entries;
    evictLocked();
  }
  return P.Value;
}

void CompileCache::evictLocked() {
  // Approximate LRU: one pass collects the ready entries oldest-first,
  // then evicts until under capacity — O(n log n) per eviction burst
  // rather than a full map scan per evicted entry, since this runs under
  // the one mutex every engine shares. In-flight builds are never
  // evicted; artifacts already handed out stay alive through their
  // callers' shared_ptrs.
  if (T.Bytes <= Capacity)
    return;
  std::vector<std::pair<uint64_t, CacheKey>> Ready;
  Ready.reserve(Map.size());
  for (const auto &E : Map)
    if (E.second.Ready)
      Ready.push_back({E.second.LastUse, E.first});
  std::sort(Ready.begin(), Ready.end(),
            [](const std::pair<uint64_t, CacheKey> &A,
               const std::pair<uint64_t, CacheKey> &B) {
              return A.first < B.first;
            });
  for (const std::pair<uint64_t, CacheKey> &Victim : Ready) {
    if (T.Bytes <= Capacity)
      return;
    auto It = Map.find(Victim.second);
    if (It == Map.end())
      continue;
    T.Bytes -= It->second.Bytes;
    --T.Entries;
    ++T.Evictions;
    Map.erase(It);
  }
}

namespace {

/// Times a typed builder and packages its result for the untyped store.
template <typename ArtifactT, typename SizeFn>
std::function<CompileCache::Payload()>
timedBuilder(const std::function<std::shared_ptr<const ArtifactT>()> &Build,
             SizeFn Size) {
  return [&Build, Size]() {
    CompileCache::Payload P;
    uint64_t T0 = nowNs();
    std::shared_ptr<const ArtifactT> V = Build();
    P.BuildNs = nowNs() - T0;
    if (V)
      P.Bytes = Size(*V);
    P.Value = std::static_pointer_cast<const void>(V);
    return P;
  };
}

/// Adapts a typed disk loader into a Payload producer. The loader reports
/// the *original* build time recorded on disk; resident-size accounting
/// uses the same SizeOf as fresh builds so eviction stays honest.
template <typename ArtifactT, typename SizeFn>
std::function<CompileCache::Payload()> diskLoader(
    const std::function<std::shared_ptr<const ArtifactT>(uint64_t *)> &Load,
    SizeFn Size) {
  if (!Load)
    return {};
  return [&Load, Size]() {
    CompileCache::Payload P;
    std::shared_ptr<const ArtifactT> V = Load(&P.BuildNs);
    if (V)
      P.Bytes = Size(*V);
    P.Value = std::static_pointer_cast<const void>(V);
    return P;
  };
}

/// Adapts a typed disk persister into a Payload consumer.
template <typename ArtifactT>
std::function<void(const CompileCache::Payload &)> diskStorer(
    const std::function<void(const ArtifactT &, uint64_t)> &Store) {
  if (!Store)
    return {};
  return [&Store](const CompileCache::Payload &P) {
    Store(*std::static_pointer_cast<const ArtifactT>(P.Value), P.BuildNs);
  };
}

} // namespace

std::shared_ptr<const Module> CompileCache::getOrBuildModule(
    const CacheKey &K,
    const std::function<std::shared_ptr<const Module>()> &Build,
    CacheStats *Stats) {
  auto SizeOf = [](const Module &M) {
    // Dominated by the retained module bytes; per-decl and side-table
    // overhead is approximated as a flat factor.
    return M.Bytes.size() * 2 + 512;
  };
  return std::static_pointer_cast<const Module>(
      getOrBuildImpl(K, timedBuilder<Module>(Build, SizeOf), Stats));
}

std::shared_ptr<const MCode> CompileCache::getOrCompile(
    const CacheKey &K,
    const std::function<std::shared_ptr<const MCode>()> &Build,
    CacheStats *Stats,
    const std::function<std::shared_ptr<const MCode>(uint64_t *)> &DiskLoad,
    const std::function<void(const MCode &, uint64_t)> &DiskStore) {
  auto SizeOf = [](const MCode &C) {
    size_t B = C.codeByteSize() + C.LineTable.size() * sizeof(LineEntry) +
               C.OsrEntries.size() * sizeof(MCode::OsrEntry) +
               C.Patches.size() * sizeof(PatchPoint) + 256;
    for (const StackMapEntry &E : C.StackMaps)
      B += E.byteSize();
    for (const std::vector<uint32_t> &BT : C.BrTables)
      B += BT.size() * 4;
    return B;
  };
  return std::static_pointer_cast<const MCode>(getOrBuildImpl(
      K, timedBuilder<MCode>(Build, SizeOf), Stats,
      diskLoader<MCode>(DiskLoad, SizeOf), diskStorer<MCode>(DiskStore)));
}

std::shared_ptr<const ThreadedCode> CompileCache::getOrPredecode(
    const CacheKey &K,
    const std::function<std::shared_ptr<const ThreadedCode>()> &Build,
    CacheStats *Stats,
    const std::function<std::shared_ptr<const ThreadedCode>(uint64_t *)>
        &DiskLoad,
    const std::function<void(const ThreadedCode &, uint64_t)> &DiskStore) {
  auto SizeOf = [](const ThreadedCode &TC) { return TC.byteSize() + 256; };
  return std::static_pointer_cast<const ThreadedCode>(
      getOrBuildImpl(K, timedBuilder<ThreadedCode>(Build, SizeOf), Stats,
                     diskLoader<ThreadedCode>(DiskLoad, SizeOf),
                     diskStorer<ThreadedCode>(DiskStore)));
}

std::shared_ptr<const InstanceImage> CompileCache::getOrBuildImage(
    const CacheKey &K,
    const std::function<std::shared_ptr<const InstanceImage>()> &Build,
    CacheStats *Stats) {
  auto SizeOf = [](const InstanceImage &I) { return I.byteSize(); };
  return std::static_pointer_cast<const InstanceImage>(
      getOrBuildImpl(K, timedBuilder<InstanceImage>(Build, SizeOf), Stats));
}

CompileCache::Totals CompileCache::totals() const {
  std::lock_guard<std::mutex> L(Mu);
  return T;
}

size_t CompileCache::configuredCapacityBytes() {
  if (const char *V = getenv("WISP_CACHE_BYTES")) {
    // Strict parse (no sign/junk/overflow wrapping — atoll would accept
    // "-1" as unbounded); a malformed or zero value falls back to the
    // default rather than aborting the embedding process over an env var.
    uint64_t N = 0;
    if (parseU64(V, &N) && N > 0 && N <= uint64_t(SIZE_MAX))
      return size_t(N);
  }
  return DefaultCapacityBytes;
}

CompileCache &CompileCache::process() {
  static CompileCache C(configuredCapacityBytes());
  return C;
}
