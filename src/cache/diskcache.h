//===- cache/diskcache.h - persistent on-disk artifact cache ----*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second level below the in-process compile cache: compiled MCode and
/// pre-decoded threaded IR serialized to a directory (`--cache-dir` /
/// `WISP_CACHE_DIR`), so a repeat workload in a *new* wisp process skips
/// the compile pipeline — the cross-process version of PR 5's warm start.
/// Only relocatable artifacts exist on this path: every engine-absolute
/// operand lives in the MCode patch-point table (machine/isa.h), bound by
/// the engine after admission, never in the serialized instruction stream.
///
/// Key schema. A file is addressed by the *same* 128-bit content key the
/// in-process cache uses (codeCacheKey / irCacheKey: body bytes, module
/// context digest, full compiler configuration, verify provenance), so
/// process and disk levels can never disagree about identity. The file
/// header additionally carries a build/version digest — format version,
/// opcode-table sizes, record layouts — so any rebuild of wisp that could
/// change artifact semantics invalidates every stale file by construction:
/// the digest comparison fails and the artifact is rebuilt, not trusted.
///
/// Atomicity. Writes go to a unique temp file in the same directory and
/// are published with rename(2), so readers only ever see absent files or
/// complete files, and concurrent writers of one key (same content by
/// construction) race harmlessly — last rename wins. A short read, a
/// failed checksum, a stale digest or a wrong key echo all classify the
/// file as damaged: it is deleted and the caller rebuilds.
///
/// Trust. Admission is the caller's job and is deliberately *not* part of
/// this class: the engine re-runs verifyMachineCode / verifyThreadedCode
/// on every deserialized artifact — unconditionally, even when
/// VerifyArtifacts is off — because these bytes crossed a process
/// boundary and checksums only prove integrity, not provenance. See
/// DESIGN.md "Persistent artifact cache".
///
//===----------------------------------------------------------------------===//

#ifndef WISP_CACHE_DISKCACHE_H
#define WISP_CACHE_DISKCACHE_H

#include "cache/compilecache.h"
#include "interp/predecode.h"
#include "machine/isa.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wisp {

/// Which artifact family a disk entry holds; part of the file name, so
/// code and IR artifacts of one body can never alias.
enum class DiskArtifactKind : uint8_t {
  Code = 'F', ///< Serialized MCode.
  Ir = 'T',   ///< Serialized ThreadedCode.
};

/// Digest of everything that must match between the wisp build that wrote
/// an artifact and the one reading it: serialization format version,
/// opcode-table cardinalities and record layouts. Baked into every file
/// header; a mismatch rejects the file (invalidation by construction).
uint64_t diskFormatDigest();

/// Serializes \p Code (instructions, branch tables, stackmaps, line
/// table, OSR entries, patch-point table, stats) into a self-contained
/// byte buffer. Field-by-field and little-endian: record padding and host
/// endianness never leak into the format.
std::vector<uint8_t> serializeMCode(const MCode &Code);

/// Reconstructs an MCode from serializeMCode bytes. Returns null on any
/// structural damage (truncation, trailing bytes, out-of-range opcode or
/// patch kind, implausible counts) — the caller treats that exactly like
/// a checksum failure. A non-null result is structurally well-formed but
/// NOT semantically trusted until it passes verifyMachineCode.
std::shared_ptr<MCode> deserializeMCode(const std::vector<uint8_t> &Bytes);

/// ThreadedCode counterparts of serializeMCode/deserializeMCode.
std::vector<uint8_t> serializeThreadedCode(const ThreadedCode &TC);
std::shared_ptr<ThreadedCode>
deserializeThreadedCode(const std::vector<uint8_t> &Bytes);

/// One on-disk artifact store rooted at a directory. Engines each open
/// their own instance (there is no shared in-memory state to coordinate —
/// atomicity lives in the filesystem), so totals are per-opener.
/// Thread-safe; file operations run lock-free and the counters are
/// internally synchronized.
class DiskCache {
public:
  struct Totals {
    uint64_t Hits = 0;       ///< Complete, digest-valid files served.
    uint64_t Misses = 0;     ///< Keys with no file present.
    uint64_t Rejected = 0;   ///< Damaged/stale/unverifiable files deleted.
    uint64_t Stores = 0;     ///< Artifacts published.
    uint64_t StoreFails = 0; ///< Publish attempts that failed (I/O).
  };

  /// Opens (creating, parents included) the store at \p Dir. Returns null
  /// when the directory cannot be created or is not writable — the caller
  /// degrades to uncached operation, it never fails the load.
  static std::unique_ptr<DiskCache> open(const std::string &Dir);

  /// Loads the raw payload for \p K, verifying the header chain (magic,
  /// format digest, key echo, kind, length, payload checksum). On damage
  /// of any kind the file is deleted and false is returned with \p Why
  /// (optional) describing the rejection; a plain miss leaves \p Why
  /// empty. \p BuildNs (optional) receives the original build time
  /// recorded by the writer, so warm loads can account saved work.
  bool load(const CacheKey &K, DiskArtifactKind Kind,
            std::vector<uint8_t> *Payload, uint64_t *BuildNs = nullptr,
            std::string *Why = nullptr);

  /// Atomically publishes \p Payload under \p K (temp file + rename).
  /// Returns false on I/O failure; the store stays consistent either way.
  bool store(const CacheKey &K, DiskArtifactKind Kind,
             const std::vector<uint8_t> &Payload, uint64_t BuildNs);

  /// Deletes \p K's file after post-admission rejection (deserializer or
  /// verifier said no to a checksum-clean file): the artifact must be
  /// rebuilt, never re-served. Counted under Totals::Rejected.
  void removeRejected(const CacheKey &K, DiskArtifactKind Kind);

  /// The store path of a key (testing and diagnostics).
  std::string path(const CacheKey &K, DiskArtifactKind Kind) const;

  const std::string &dir() const { return Dir; }
  Totals totals() const;

private:
  explicit DiskCache(std::string DirIn) : Dir(std::move(DirIn)) {}

  std::string Dir;
  mutable std::mutex Mu;
  Totals T;
};

} // namespace wisp

#endif // WISP_CACHE_DISKCACHE_H
