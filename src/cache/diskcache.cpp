//===- cache/diskcache.cpp - persistent on-disk artifact cache -------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "cache/diskcache.h"

#include "support/format.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace wisp;

// --- Little-endian byte stream --------------------------------------------

namespace {

class ByteWriter {
public:
  explicit ByteWriter(std::vector<uint8_t> &Out) : Out(Out) {}

  void u8(uint8_t V) { Out.push_back(V); }
  void u16(uint16_t V) { word(V, 2); }
  void u32(uint32_t V) { word(V, 4); }
  void u64(uint64_t V) { word(V, 8); }
  void i64(int64_t V) { word(uint64_t(V), 8); }

private:
  void word(uint64_t V, int N) {
    for (int I = 0; I < N; ++I)
      Out.push_back(uint8_t(V >> (8 * I)));
  }

  std::vector<uint8_t> &Out;
};

/// Bounds-checked reader: every accessor returns false past the end and
/// poisons the stream, so a truncated buffer can never yield data and a
/// malicious length can never index out of bounds.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Len) : P(Data), N(Len) {}

  bool u8(uint8_t *V) {
    uint64_t W;
    if (!word(&W, 1))
      return false;
    *V = uint8_t(W);
    return true;
  }
  bool u16(uint16_t *V) {
    uint64_t W;
    if (!word(&W, 2))
      return false;
    *V = uint16_t(W);
    return true;
  }
  bool u32(uint32_t *V) {
    uint64_t W;
    if (!word(&W, 4))
      return false;
    *V = uint32_t(W);
    return true;
  }
  bool u64(uint64_t *V) { return word(V, 8); }
  bool i64(int64_t *V) {
    uint64_t W;
    if (!word(&W, 8))
      return false;
    *V = int64_t(W);
    return true;
  }
  /// A count of variable-size records to follow. Rejects counts that
  /// cannot possibly fit in the remaining bytes (\p MinEntryBytes each),
  /// so damaged counts fail here instead of in a giant resize().
  bool count(uint64_t *V, size_t MinEntryBytes) {
    if (!u64(V))
      return false;
    if (*V > (N - Off) / (MinEntryBytes ? MinEntryBytes : 1)) {
      Fail = true;
      return false;
    }
    return true;
  }

  bool ok() const { return !Fail; }
  bool atEnd() const { return !Fail && Off == N; }

private:
  bool word(uint64_t *V, int Len) {
    if (Fail || N - Off < size_t(Len)) {
      Fail = true;
      return false;
    }
    uint64_t W = 0;
    for (int I = 0; I < Len; ++I)
      W |= uint64_t(P[Off + I]) << (8 * I);
    Off += size_t(Len);
    *V = W;
    return true;
  }

  const uint8_t *P;
  size_t N;
  size_t Off = 0;
  bool Fail = false;
};

} // namespace

// --- Format digest --------------------------------------------------------

uint64_t wisp::diskFormatDigest() {
  // Everything that, if it changed between the writing and the reading
  // build, would make a byte-identical artifact mean something different:
  // the serialization layout version, the opcode-table cardinalities (an
  // inserted opcode renumbers every successor) and the record shapes.
  KeyHasher H;
  H.u32(1); // Serialization format version.
  H.u32(uint32_t(MOp::NumOps));
  H.u32(uint32_t(TOp::Count));
  H.u32(uint32_t(sizeof(MInst)));
  H.u32(uint32_t(sizeof(IrUnit)));
  H.u32(uint32_t(sizeof(BrCase)));
  H.u32(uint32_t(sizeof(PatchPoint)));
  return H.key().Lo;
}

// --- MCode serialization --------------------------------------------------

std::vector<uint8_t> wisp::serializeMCode(const MCode &Code) {
  std::vector<uint8_t> Out;
  ByteWriter W(Out);
  W.u32(Code.FuncIndex);
  W.u32(Code.FrameSlots);
  W.u64(Code.Stats.TimeNs);
  W.u64(Code.Stats.InputBytes);
  W.u64(Code.Stats.CodeInsts);
  W.u64(Code.Stats.TagStores);
  W.u64(Code.Stats.StackMapBytes);
  W.u64(Code.Stats.SnapshotBytes);
  W.u64(Code.Insts.size());
  for (const MInst &I : Code.Insts) {
    // Field by field: MInst has interior padding that must never reach
    // (or be trusted from) the disk.
    W.u16(uint16_t(I.Op));
    W.u8(I.A);
    W.u8(I.B);
    W.u8(I.C);
    W.u8(I.D);
    W.i64(I.Imm);
    W.i64(I.Imm2);
  }
  W.u64(Code.BrTables.size());
  for (const std::vector<uint32_t> &BT : Code.BrTables) {
    W.u64(BT.size());
    for (uint32_t E : BT)
      W.u32(E);
  }
  W.u64(Code.StackMaps.size());
  for (const StackMapEntry &E : Code.StackMaps) {
    W.u32(E.Pc);
    W.u32(E.Height);
    W.u64(E.RefSlots.size());
    for (uint32_t S : E.RefSlots)
      W.u32(S);
  }
  W.u64(Code.LineTable.size());
  for (const LineEntry &E : Code.LineTable) {
    W.u32(E.Pc);
    W.u32(E.Ip);
  }
  W.u64(Code.OsrEntries.size());
  for (const MCode::OsrEntry &E : Code.OsrEntries) {
    W.u32(E.Ip);
    W.u32(E.Stp);
    W.u32(E.Pc);
  }
  W.u64(Code.Patches.size());
  for (const PatchPoint &P : Code.Patches) {
    W.u8(uint8_t(P.Kind));
    W.u32(P.Pc);
    W.u64(P.Operand);
  }
  return Out;
}

std::shared_ptr<MCode> wisp::deserializeMCode(
    const std::vector<uint8_t> &Bytes) {
  ByteReader R(Bytes.data(), Bytes.size());
  auto Code = std::make_shared<MCode>();
  if (!R.u32(&Code->FuncIndex) || !R.u32(&Code->FrameSlots) ||
      !R.u64(&Code->Stats.TimeNs) || !R.u64(&Code->Stats.InputBytes) ||
      !R.u64(&Code->Stats.CodeInsts) || !R.u64(&Code->Stats.TagStores) ||
      !R.u64(&Code->Stats.StackMapBytes) ||
      !R.u64(&Code->Stats.SnapshotBytes))
    return nullptr;
  uint64_t N = 0;
  if (!R.count(&N, 22))
    return nullptr;
  Code->Insts.resize(size_t(N));
  for (MInst &I : Code->Insts) {
    uint16_t Op = 0;
    if (!R.u16(&Op) || !R.u8(&I.A) || !R.u8(&I.B) || !R.u8(&I.C) ||
        !R.u8(&I.D) || !R.i64(&I.Imm) || !R.i64(&I.Imm2))
      return nullptr;
    if (Op >= uint16_t(MOp::NumOps))
      return nullptr; // Executor dispatch must never see a wild opcode.
    I.Op = MOp(Op);
  }
  if (!R.count(&N, 8))
    return nullptr;
  Code->BrTables.resize(size_t(N));
  for (std::vector<uint32_t> &BT : Code->BrTables) {
    uint64_t Len = 0;
    if (!R.count(&Len, 4))
      return nullptr;
    BT.resize(size_t(Len));
    for (uint32_t &E : BT)
      if (!R.u32(&E))
        return nullptr;
  }
  if (!R.count(&N, 16))
    return nullptr;
  Code->StackMaps.resize(size_t(N));
  for (StackMapEntry &E : Code->StackMaps) {
    uint64_t Len = 0;
    if (!R.u32(&E.Pc) || !R.u32(&E.Height) || !R.count(&Len, 4))
      return nullptr;
    E.RefSlots.resize(size_t(Len));
    for (uint32_t &S : E.RefSlots)
      if (!R.u32(&S))
        return nullptr;
  }
  if (!R.count(&N, 8))
    return nullptr;
  Code->LineTable.resize(size_t(N));
  for (LineEntry &E : Code->LineTable)
    if (!R.u32(&E.Pc) || !R.u32(&E.Ip))
      return nullptr;
  if (!R.count(&N, 12))
    return nullptr;
  Code->OsrEntries.resize(size_t(N));
  for (MCode::OsrEntry &E : Code->OsrEntries)
    if (!R.u32(&E.Ip) || !R.u32(&E.Stp) || !R.u32(&E.Pc))
      return nullptr;
  if (!R.count(&N, 13))
    return nullptr;
  Code->Patches.resize(size_t(N));
  for (PatchPoint &P : Code->Patches) {
    uint8_t Kind = 0;
    if (!R.u8(&Kind) || !R.u32(&P.Pc) || !R.u64(&P.Operand))
      return nullptr;
    if (Kind != uint8_t(PatchKind::CounterCell))
      return nullptr;
    P.Kind = PatchKind(Kind);
  }
  if (!R.atEnd())
    return nullptr; // Trailing bytes are damage, not slack.
  return Code;
}

// --- ThreadedCode serialization -------------------------------------------

std::vector<uint8_t> wisp::serializeThreadedCode(const ThreadedCode &TC) {
  std::vector<uint8_t> Out;
  ByteWriter W(Out);
  W.u64(TC.Units.size());
  for (const IrUnit &U : TC.Units) {
    W.u16(U.Op);
    W.u16(U.ValCount);
    W.u32(U.A);
    W.u32(U.Aux);
    W.u32(U.BcIp);
    W.u32(U.Stp);
    W.u32(U.X);
    W.u64(U.B);
  }
  W.u64(TC.Cases.size());
  for (const BrCase &C : TC.Cases) {
    W.u32(C.TargetUnit);
    W.u32(C.DstBase);
    W.u32(C.ValCount);
    W.u64(C.IpFlag);
  }
  W.u64(TC.FusedSpans.size());
  for (const std::pair<uint32_t, uint32_t> &S : TC.FusedSpans) {
    W.u32(S.first);
    W.u32(S.second);
  }
  W.u32(TC.NumFused);
  W.u32(TC.NumSources);
  return Out;
}

std::shared_ptr<ThreadedCode> wisp::deserializeThreadedCode(
    const std::vector<uint8_t> &Bytes) {
  ByteReader R(Bytes.data(), Bytes.size());
  auto TC = std::make_shared<ThreadedCode>();
  uint64_t N = 0;
  if (!R.count(&N, 32))
    return nullptr;
  TC->Units.resize(size_t(N));
  for (IrUnit &U : TC->Units) {
    if (!R.u16(&U.Op) || !R.u16(&U.ValCount) || !R.u32(&U.A) ||
        !R.u32(&U.Aux) || !R.u32(&U.BcIp) || !R.u32(&U.Stp) ||
        !R.u32(&U.X) || !R.u64(&U.B))
      return nullptr;
    if (U.Op >= uint16_t(TOp::Count))
      return nullptr; // Computed-goto table must never see a wild token.
  }
  if (!R.count(&N, 20))
    return nullptr;
  TC->Cases.resize(size_t(N));
  for (BrCase &C : TC->Cases)
    if (!R.u32(&C.TargetUnit) || !R.u32(&C.DstBase) || !R.u32(&C.ValCount) ||
        !R.u64(&C.IpFlag))
      return nullptr;
  if (!R.count(&N, 8))
    return nullptr;
  TC->FusedSpans.resize(size_t(N));
  for (std::pair<uint32_t, uint32_t> &S : TC->FusedSpans)
    if (!R.u32(&S.first) || !R.u32(&S.second))
      return nullptr;
  if (!R.u32(&TC->NumFused) || !R.u32(&TC->NumSources))
    return nullptr;
  if (!R.atEnd())
    return nullptr;
  return TC;
}

// --- The store ------------------------------------------------------------

namespace {

constexpr uint32_t FileMagic = 0x43505357; // "WSPC" little-endian.
constexpr uint32_t FileVersion = 1;
constexpr size_t HeaderSize = 72;

/// mkdir -p: creates every missing component. Races with other processes
/// creating the same tree are benign (EEXIST).
bool makeDirs(const std::string &Dir) {
  if (Dir.empty())
    return false;
  std::string Partial;
  size_t I = 0;
  while (I < Dir.size()) {
    size_t Next = Dir.find('/', I + 1);
    Partial = Dir.substr(0, Next == std::string::npos ? Dir.size() : Next);
    if (!Partial.empty() && Partial != "/")
      if (mkdir(Partial.c_str(), 0777) != 0 && errno != EEXIST)
        return false;
    if (Next == std::string::npos)
      break;
    I = Next;
  }
  struct stat St;
  return stat(Dir.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}

/// 128-bit payload checksum, independent of the content key (which hashes
/// the *inputs*; this hashes the serialized artifact so torn or bit-
/// flipped payloads are caught before deserialization).
CacheKey payloadChecksum(const uint8_t *Data, size_t Len) {
  KeyHasher H;
  H.u64(Len);
  H.bytes(Data, Len);
  return H.key();
}

bool readFileBytes(const std::string &Path, std::vector<uint8_t> *Out) {
  FILE *F = fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  Out->clear();
  uint8_t Buf[1 << 16];
  size_t Got;
  while ((Got = fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out->insert(Out->end(), Buf, Buf + Got);
  bool Ok = !ferror(F);
  fclose(F);
  return Ok;
}

} // namespace

std::unique_ptr<DiskCache> DiskCache::open(const std::string &Dir) {
  if (!makeDirs(Dir))
    return nullptr;
  // Probe writability up front so a read-only directory degrades to
  // uncached operation at open() rather than as a StoreFail per body.
  if (access(Dir.c_str(), W_OK | X_OK) != 0)
    return nullptr;
  return std::unique_ptr<DiskCache>(new DiskCache(Dir));
}

std::string DiskCache::path(const CacheKey &K, DiskArtifactKind Kind) const {
  return strFormat("%s/%c%016llx%016llx.wac", Dir.c_str(), char(Kind),
                   (unsigned long long)K.Hi, (unsigned long long)K.Lo);
}

bool DiskCache::load(const CacheKey &K, DiskArtifactKind Kind,
                     std::vector<uint8_t> *Payload, uint64_t *BuildNs,
                     std::string *Why) {
  if (Why)
    Why->clear();
  std::string P = path(K, Kind);
  std::vector<uint8_t> File;
  if (!readFileBytes(P, &File)) {
    std::lock_guard<std::mutex> L(Mu);
    ++T.Misses;
    return false;
  }
  // Validate the header chain; any failure deletes the file (it will be
  // rebuilt and re-published; a torn or damaged artifact is never served
  // and never consulted again).
  std::string Reason;
  ByteReader R(File.data(), File.size());
  uint32_t Magic = 0, Version = 0;
  uint64_t Digest = 0, Hi = 0, Lo = 0, Build = 0, Len = 0;
  uint64_t CheckHi = 0, CheckLo = 0;
  uint8_t KindByte = 0, Pad = 0;
  bool HeaderOk = R.u32(&Magic) && R.u32(&Version) && R.u64(&Digest) &&
                  R.u64(&Hi) && R.u64(&Lo) && R.u8(&KindByte);
  for (int I = 0; HeaderOk && I < 7; ++I)
    HeaderOk = R.u8(&Pad);
  HeaderOk = HeaderOk && R.u64(&Build) && R.u64(&Len) && R.u64(&CheckHi) &&
             R.u64(&CheckLo);
  if (!HeaderOk)
    Reason = "truncated header";
  else if (Magic != FileMagic || Version != FileVersion)
    Reason = "bad magic/version";
  else if (Digest != diskFormatDigest())
    Reason = "stale build/version digest";
  else if (Hi != K.Hi || Lo != K.Lo || KindByte != uint8_t(Kind))
    Reason = "key echo mismatch";
  else if (Len != File.size() - HeaderSize)
    Reason = strFormat("payload length %llu, file has %zu",
                       (unsigned long long)Len, File.size() - HeaderSize);
  else {
    CacheKey Check = payloadChecksum(File.data() + HeaderSize, size_t(Len));
    if (Check.Hi != CheckHi || Check.Lo != CheckLo)
      Reason = "payload checksum mismatch";
  }
  if (!Reason.empty()) {
    ::remove(P.c_str());
    if (Why)
      *Why = "disk artifact rejected (" + Reason + "): " + P;
    std::lock_guard<std::mutex> L(Mu);
    ++T.Rejected;
    return false;
  }
  Payload->assign(File.begin() + HeaderSize, File.end());
  if (BuildNs)
    *BuildNs = Build;
  std::lock_guard<std::mutex> L(Mu);
  ++T.Hits;
  return true;
}

bool DiskCache::store(const CacheKey &K, DiskArtifactKind Kind,
                      const std::vector<uint8_t> &Payload, uint64_t BuildNs) {
  std::vector<uint8_t> File;
  File.reserve(HeaderSize + Payload.size());
  ByteWriter W(File);
  W.u32(FileMagic);
  W.u32(FileVersion);
  W.u64(diskFormatDigest());
  W.u64(K.Hi);
  W.u64(K.Lo);
  W.u8(uint8_t(Kind));
  for (int I = 0; I < 7; ++I)
    W.u8(0);
  W.u64(BuildNs);
  W.u64(Payload.size());
  CacheKey Check = payloadChecksum(Payload.data(), Payload.size());
  W.u64(Check.Hi);
  W.u64(Check.Lo);
  File.insert(File.end(), Payload.begin(), Payload.end());

  // Unique temp name in the same directory (rename must not cross a
  // filesystem); pid + counter keeps concurrent writers apart, and the
  // atomic rename publishes complete files only.
  static std::atomic<uint64_t> Seq{0};
  std::string Final = path(K, Kind);
  std::string Tmp =
      strFormat("%s.tmp%d.%llu", Final.c_str(), int(getpid()),
                (unsigned long long)Seq.fetch_add(1, std::memory_order_relaxed));
  bool Ok = false;
  if (FILE *F = fopen(Tmp.c_str(), "wb")) {
    Ok = fwrite(File.data(), 1, File.size(), F) == File.size();
    Ok = (fclose(F) == 0) && Ok;
  }
  if (Ok)
    Ok = ::rename(Tmp.c_str(), Final.c_str()) == 0;
  if (!Ok)
    ::remove(Tmp.c_str());
  std::lock_guard<std::mutex> L(Mu);
  if (Ok)
    ++T.Stores;
  else
    ++T.StoreFails;
  return Ok;
}

void DiskCache::removeRejected(const CacheKey &K, DiskArtifactKind Kind) {
  ::remove(path(K, Kind).c_str());
  std::lock_guard<std::mutex> L(Mu);
  ++T.Rejected;
}

DiskCache::Totals DiskCache::totals() const {
  std::lock_guard<std::mutex> L(Mu);
  return T;
}
