//===- cache/compilecache.h - content-addressed compile cache ---*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, thread-safe, content-addressed cache of compilation
/// artifacts. The paper's setup-time methodology (and the batch runner's
/// fresh-engine-per-job regime) charges every load() the full
/// decode + validate + compile cost; content-identical inputs under an
/// identical compilation configuration should pay it once per process.
///
/// Three artifact kinds are cached, all immutable once built and shared
/// through `std::shared_ptr<const T>` handles:
///
///  - decoded + validated `Module`s, keyed by the module bytes;
///  - compiled `MCode`, keyed by the function body (bytes, position,
///    locals, index) plus the effective compiler configuration plus a
///    module signature-context digest;
///  - pre-decoded `ThreadedCode`, keyed by the body, the context digest
///    and the fusion flag.
///
/// The signature-context digest covers everything the compilers consult
/// beyond the body bytes — the type table, every function's signature,
/// global types/mutability, table element types and memory limits — so
/// byte-identical bodies in *different* modules can never alias wrong
/// signatures, while modules differing only in codegen-irrelevant ways
/// (exports, data segments, element segments, start function) still share
/// compiled bodies.
///
/// Probed bodies bypass the cache entirely: probe sites compile against
/// engine-local registries (counter cell addresses are patched into the
/// code), so instrumented artifacts are never inserted and never served.
///
/// Thread-safety contract: every method may be called from any number of
/// threads concurrently. Lookups of an in-flight key block until the
/// builder finishes, so each key is built exactly once no matter how many
/// engines race on it (the property the batch tests assert via
/// CacheHits/CacheMisses). Builders run outside the cache lock.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_CACHE_COMPILECACHE_H
#define WISP_CACHE_COMPILECACHE_H

#include "interp/predecode.h"
#include "machine/isa.h"
#include "spc/options.h"
#include "wasm/module.h"

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace wisp {

enum class CompilerKind : uint8_t;
struct InstanceImage;

/// Per-load cache accounting. The engine's LoadStats derives from this so
/// callers read LoadStats::CacheHits/CacheMisses/CacheSavedNs while the
/// cache itself stays below the engine in the layering.
struct CacheStats {
  /// Artifacts (module / MCode / threaded IR) served from the cache.
  uint64_t CacheHits = 0;
  /// Artifacts built fresh after a cache lookup missed. Uncached loads
  /// (toggle off, probed bodies) count neither hits nor misses.
  uint64_t CacheMisses = 0;
  /// Recorded build time of every served hit — the compile/decode work
  /// this load did not repeat. Disk hits contribute their recorded
  /// original build time too (the work a cross-process warm start skips).
  uint64_t CacheSavedNs = 0;
  /// Artifacts admitted from the on-disk second level (cache/diskcache.h)
  /// after deserialization + re-verification. Counted instead of — not in
  /// addition to — CacheHits/CacheMisses for that artifact.
  uint64_t DiskHits = 0;
  /// Disk lookups that found nothing usable and fell through to a build.
  uint64_t DiskMisses = 0;
};

/// A 128-bit content-hash key. Collisions across distinct inputs are
/// treated as impossible (same stance as every content-addressed store).
struct CacheKey {
  uint64_t Hi = 0;
  uint64_t Lo = 0;
  bool operator==(const CacheKey &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey &K) const {
    return size_t(K.Lo ^ (K.Hi * 0x9E3779B97F4A7C15ull));
  }
};

/// Incremental 128-bit hasher: two independent 64-bit lanes mixed one
/// word at a time, so hashing runs at memory speed (a warm load's cost is
/// dominated by key derivation — a byte-at-a-time loop would spend more
/// time hashing a large module than the lookup saves). Call-boundary
/// grouping is part of the hash; all key derivations use fixed call
/// sequences with explicit lengths ahead of variable-size data.
class KeyHasher {
public:
  void bytes(const void *Data, size_t Len) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    while (Len >= 8) {
      uint64_t W;
      __builtin_memcpy(&W, P, 8);
      word(W);
      P += 8;
      Len -= 8;
    }
    if (Len) {
      uint64_t W = 0;
      __builtin_memcpy(&W, P, Len);
      word(W ^ (uint64_t(Len) << 56)); // Distinguish short tails from \0s.
    }
  }
  void u64(uint64_t V) { word(V); }
  void u32(uint32_t V) { word(V); }
  void u8(uint8_t V) { word(V); }
  CacheKey key() const {
    // Final avalanche so trailing-byte differences spread into both lanes.
    auto Mix = [](uint64_t X) {
      X ^= X >> 33;
      X *= 0xFF51AFD7ED558CCDull;
      X ^= X >> 33;
      X *= 0xC4CEB9FE1A85EC53ull;
      X ^= X >> 33;
      return X;
    };
    return CacheKey{Mix(A ^ (B << 1)), Mix(B ^ (A >> 1))};
  }

private:
  void word(uint64_t W) {
    A = (A ^ W) * 0x2127599BF4325C37ull;
    A ^= A >> 29;
    B = (B ^ (W + 0x9E3779B97F4A7C15ull)) * 0x165667B19E3779F9ull;
    B ^= B >> 32;
  }

  uint64_t A = 0xCBF29CE484222325ull;
  uint64_t B = 0x84222325CBF29CE4ull;
};

/// Key of the whole-module artifact (decoded + validated Module).
CacheKey moduleCacheKey(const std::vector<uint8_t> &Bytes);

/// Digest of the module-level context the compilers consult beyond the
/// body bytes: types, function signatures, globals, tables, memories.
/// Codegen-irrelevant sections (exports, data, elements, start) are
/// deliberately excluded so they do not defeat cross-module body sharing.
uint64_t moduleContextDigest(const Module &M);

/// Key of one compiled function body under one effective configuration.
/// \p CtxDigest is moduleContextDigest(M) (computed once per load).
/// \p Verified is the inserting engine's VerifyArtifacts setting: verified
/// and unverified artifacts never share an entry, so a verify-on engine
/// can never be served an artifact a verify-off engine inserted unchecked.
CacheKey codeCacheKey(uint64_t CtxDigest, const Module &M, const FuncDecl &D,
                      CompilerKind Kind, const CompilerOptions &Opts,
                      bool Verified);

/// Key of one pre-decoded threaded-IR body. \p Verified as codeCacheKey.
CacheKey irCacheKey(uint64_t CtxDigest, const Module &M, const FuncDecl &D,
                    bool EnableFusion, bool EmitFuelGates, bool Verified);

/// Key of a module's instance image (pre-evaluated globals, pre-resolved
/// tables, pre-imaged initial memory). The image is fully determined by
/// the module bytes — data/element segments and global initializers are
/// all encoded there — so the key is the byte hash under its own
/// artifact-kind tag. Note moduleContextDigest cannot serve here: it
/// deliberately excludes exactly the sections (data, elements) the image
/// is made of.
CacheKey instanceImageKey(const Module &M);

/// The content-addressed compile cache. See the file comment for the
/// key/value model and the thread-safety contract.
class CompileCache {
public:
  /// Aggregate counters. Hits/Misses are deterministic for a fixed input
  /// set regardless of scheduling: in-flight coordination guarantees each
  /// distinct key is built exactly once, so Misses == distinct
  /// successfully-built keys. Failed builds count nothing at all — no
  /// miss for the builder, no hit for waiters that received nothing —
  /// so failure-heavy inputs stay scheduling-independent too.
  struct Totals {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t SavedNs = 0;   ///< Recorded build time of served hits.
    uint64_t Evictions = 0; ///< Entries dropped to stay under capacity.
    uint64_t DiskHits = 0;  ///< Entries admitted from the disk level.
    uint64_t DiskMisses = 0;///< Disk lookups that fell through to a build.
    size_t Entries = 0;     ///< Resident ready entries.
    size_t Bytes = 0;       ///< Approximate resident artifact bytes.
  };

  static constexpr size_t DefaultCapacityBytes = size_t(256) << 20;

  /// One built artifact plus its accounting (public for the builder
  /// plumbing in compilecache.cpp; not part of the caller-facing API).
  struct Payload {
    std::shared_ptr<const void> Value;
    uint64_t BuildNs = 0;
    size_t Bytes = 0;
  };

  explicit CompileCache(size_t CapacityBytes = DefaultCapacityBytes);
  ~CompileCache();

  CompileCache(const CompileCache &) = delete;
  CompileCache &operator=(const CompileCache &) = delete;

  /// Returns the cached artifact for \p K, building it with \p Build on
  /// the first request (exactly once per key; concurrent requesters block
  /// until the build finishes). A null result from \p Build is not cached
  /// — the caller falls back to its uncached path, which reproduces the
  /// failure and its diagnostic. \p Stats (optional) receives per-load
  /// hit/miss/saved-time accounting.
  std::shared_ptr<const Module>
  getOrBuildModule(const CacheKey &K,
                   const std::function<std::shared_ptr<const Module>()> &Build,
                   CacheStats *Stats);
  /// The compile and pre-decode lookups optionally take a second cache
  /// level (process -> disk -> build): on a process miss \p DiskLoad runs
  /// first — it must return a fully admitted artifact (deserialized AND
  /// re-verified; admission policy belongs to the engine, not here) with
  /// its original build time, or null to fall through to \p Build — and a
  /// fresh \p Build result is handed to \p DiskStore for persistence.
  /// Disk-admitted artifacts become ordinary resident entries: later
  /// process hits on the key pay nothing and count as CacheHits.
  std::shared_ptr<const MCode>
  getOrCompile(const CacheKey &K,
               const std::function<std::shared_ptr<const MCode>()> &Build,
               CacheStats *Stats,
               const std::function<std::shared_ptr<const MCode>(uint64_t *)>
                   &DiskLoad = {},
               const std::function<void(const MCode &, uint64_t)> &DiskStore =
                   {});
  std::shared_ptr<const ThreadedCode> getOrPredecode(
      const CacheKey &K,
      const std::function<std::shared_ptr<const ThreadedCode>()> &Build,
      CacheStats *Stats,
      const std::function<std::shared_ptr<const ThreadedCode>(uint64_t *)>
          &DiskLoad = {},
      const std::function<void(const ThreadedCode &, uint64_t)> &DiskStore =
          {});
  std::shared_ptr<const InstanceImage> getOrBuildImage(
      const CacheKey &K,
      const std::function<std::shared_ptr<const InstanceImage>()> &Build,
      CacheStats *Stats);

  Totals totals() const;

  /// The configured capacity: WISP_CACHE_BYTES when set (and positive),
  /// else DefaultCapacityBytes. Used by process() and by every scoped
  /// cache that should honor the same operator knob (e.g. the batch
  /// runner's pool-shared cache).
  static size_t configuredCapacityBytes();

  /// The process-wide cache every engine uses by default. Capacity comes
  /// from configuredCapacityBytes() (read once, at first use).
  static CompileCache &process();

private:
  struct Slot {
    std::shared_future<Payload> Future;
    uint64_t LastUse = 0;
    bool Ready = false;   ///< Build finished and the entry is resident.
    uint64_t BuildNs = 0; ///< Valid when Ready.
    size_t Bytes = 0;     ///< Valid when Ready.
  };

  /// \p TryDisk (optional) is consulted before \p Build on a process
  /// miss; \p StoreDisk (optional) receives freshly built payloads. Both
  /// run outside the cache lock, like builders.
  std::shared_ptr<const void>
  getOrBuildImpl(const CacheKey &K, const std::function<Payload()> &Build,
                 CacheStats *Stats,
                 const std::function<Payload()> &TryDisk = {},
                 const std::function<void(const Payload &)> &StoreDisk = {});
  void evictLocked();

  mutable std::mutex Mu;
  std::unordered_map<CacheKey, Slot, CacheKeyHash> Map;
  Totals T;
  uint64_t UseTick = 0;
  size_t Capacity;
};

} // namespace wisp

#endif // WISP_CACHE_COMPILECACHE_H
