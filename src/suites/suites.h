//===- suites/suites.h - benchmark workload generators ----------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic generators for the three benchmark suites of the paper's
/// evaluation (§VI): a PolyBenchC-shaped suite of 28 f64 loop-nest kernels,
/// a Libsodium-shaped suite of 39 integer crypto-style kernels, and an
/// Ostrich-shaped suite of 11 "dwarf" kernels. Each line item is a complete
/// Wasm binary module exporting `run: [] -> [i64|f64]` plus the same module
/// with an early `return` at the top of `run` (the paper's m0 methodology
/// for bounding setup time), and the 104-byte no-op module Mnop.
///
/// These are synthetic equivalents, not the original C translations: each
/// item exercises the same opcode mixes and loop shapes (see DESIGN.md's
/// substitution table).
///
//===----------------------------------------------------------------------===//

#ifndef WISP_SUITES_SUITES_H
#define WISP_SUITES_SUITES_H

#include "runtime/value.h"

#include <string>
#include <vector>

namespace wisp {

/// One benchmark line item.
struct LineItem {
  std::string Suite;
  std::string Name;
  std::vector<uint8_t> Bytes;   ///< The module.
  std::vector<uint8_t> M0Bytes; ///< Early-return variant (setup bound).
  ValType ResultType = ValType::I64;
};

/// Scale factor: 1 = quick (CI-friendly), larger = longer main loops.
std::vector<LineItem> polybenchSuite(int Scale = 1);
std::vector<LineItem> libsodiumSuite(int Scale = 1);
std::vector<LineItem> ostrichSuite(int Scale = 1);
std::vector<LineItem> allSuites(int Scale = 1);

/// The smallest possible module: one empty function, exported as "run".
std::vector<uint8_t> nopModule();

} // namespace wisp

#endif // WISP_SUITES_SUITES_H
