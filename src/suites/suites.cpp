//===- suites/suites.cpp - benchmark workload generators --------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "suites/suites.h"

#include "wasm/builder.h"

#include <functional>

using namespace wisp;

namespace {

/// Emission helper wrapping a module with one exported kernel function.
class Kern {
public:
  Kern(ValType ResultTy, bool EarlyReturn, uint32_t MemPages = 4)
      : ResultTy(ResultTy) {
    MB.addMemory(MemPages, MemPages);
    uint32_t T = MB.addType({}, {ResultTy});
    F = &MB.addFunc(T);
    MB.exportFunc("run", MB.funcIndex(*F));
    if (EarlyReturn) {
      // The paper's m0 methodology: same module, near-zero execution.
      switch (ResultTy) {
      case ValType::I64:
        F->i64Const(0);
        break;
      case ValType::F64:
        F->f64Const(0);
        break;
      default:
        F->i32Const(0);
        break;
      }
      F->ret();
    }
  }

  FuncBuilder &fn() { return *F; }
  uint32_t i32() { return F->addLocal(ValType::I32); }
  uint32_t i64() { return F->addLocal(ValType::I64); }
  uint32_t f64() { return F->addLocal(ValType::F64); }

  /// for (i = lo; i < hi; ++i) body()
  void forLoop(uint32_t I, int32_t Lo, int32_t Hi,
               const std::function<void()> &Body) {
    F->i32Const(Lo);
    F->localSet(I);
    F->block();
    F->loop();
    F->localGet(I);
    F->i32Const(Hi);
    F->op(Opcode::I32GeS);
    F->brIf(1);
    Body();
    F->localGet(I);
    F->i32Const(1);
    F->op(Opcode::I32Add);
    F->localSet(I);
    F->br(0);
    F->end();
    F->end();
  }

  /// for (i = lo; i < hiLocal; ++i) body() — bound from a local.
  void forLoopVar(uint32_t I, int32_t Lo, uint32_t HiLocal,
                  const std::function<void()> &Body) {
    F->i32Const(Lo);
    F->localSet(I);
    F->block();
    F->loop();
    F->localGet(I);
    F->localGet(HiLocal);
    F->op(Opcode::I32GeS);
    F->brIf(1);
    Body();
    F->localGet(I);
    F->i32Const(1);
    F->op(Opcode::I32Add);
    F->localSet(I);
    F->br(0);
    F->end();
    F->end();
  }

  /// Pushes the byte offset (i*N + j) * 8.
  void idx2(uint32_t I, uint32_t J, int32_t N) {
    F->localGet(I);
    F->i32Const(N);
    F->op(Opcode::I32Mul);
    F->localGet(J);
    F->op(Opcode::I32Add);
    F->i32Const(8);
    F->op(Opcode::I32Mul);
  }
  /// Pushes the byte offset i * 8.
  void idx1(uint32_t I) {
    F->localGet(I);
    F->i32Const(8);
    F->op(Opcode::I32Mul);
  }
  void loadF64(uint32_t Base) { F->load(Opcode::F64Load, Base, 3); }
  void storeF64(uint32_t Base) { F->store(Opcode::F64Store, Base, 3); }
  void loadI32(uint32_t Base) { F->load(Opcode::I32Load, Base, 2); }
  void storeI32(uint32_t Base) { F->store(Opcode::I32Store, Base, 2); }
  void loadI64(uint32_t Base) { F->load(Opcode::I64Load, Base, 3); }
  void storeI64(uint32_t Base) { F->store(Opcode::I64Store, Base, 3); }

  /// Fills array [Base, Base+n*8) with f64 values f(i) = (i % m) * s.
  void initF64(uint32_t Base, int32_t N, int32_t Mod, double Sc) {
    uint32_t I = i32();
    forLoop(I, 0, N, [&] {
      idx1(I);
      F->localGet(I);
      F->i32Const(Mod);
      F->op(Opcode::I32RemS);
      F->op(Opcode::F64ConvertI32S);
      F->f64Const(Sc);
      F->op(Opcode::F64Mul);
      storeF64(Base);
    });
  }

  /// Sums array [Base, Base+n*8) of f64 into the given accumulator local.
  void sumF64(uint32_t Base, int32_t N, uint32_t Acc) {
    uint32_t I = i32();
    forLoop(I, 0, N, [&] {
      F->localGet(Acc);
      idx1(I);
      loadF64(Base);
      F->op(Opcode::F64Add);
      F->localSet(Acc);
    });
  }

  std::vector<uint8_t> build() { return MB.build(); }

  ModuleBuilder MB;
  FuncBuilder *F;
  ValType ResultTy;
};

using Emitter = std::function<void(Kern &, int)>;

LineItem makeItem(const char *Suite, const std::string &Name, ValType Ty,
                  int Scale, const Emitter &Emit) {
  LineItem Item;
  Item.Suite = Suite;
  Item.Name = Name;
  Item.ResultType = Ty;
  {
    Kern K(Ty, /*EarlyReturn=*/false);
    Emit(K, Scale);
    Item.Bytes = K.build();
  }
  {
    Kern K(Ty, /*EarlyReturn=*/true);
    Emit(K, Scale);
    Item.M0Bytes = K.build();
  }
  return Item;
}

// ---------------------------------------------------------------------------
// PolyBenchC-shaped kernels: f64 loop nests over linear memory.
// Arrays live at fixed byte offsets; matrices are N x N row-major.
// ---------------------------------------------------------------------------

/// C[i][j] (+)= alpha * A[i][k] * B[k][j], with optional beta pre-scale —
/// the gemm/2mm/3mm/syrk family shape.
void emitMatmul(Kern &K, int N, double Alpha, double Beta, bool Triangular) {
  FuncBuilder &F = K.fn();
  const uint32_t A = 0, B = uint32_t(N * N * 8), C = uint32_t(2 * N * N * 8);
  K.initF64(A, N * N, 31, 0.25);
  K.initF64(B, N * N, 17, 0.5);
  K.initF64(C, N * N, 13, 1.0);
  uint32_t I = K.i32(), J = K.i32(), L = K.i32(), Acc = K.f64();
  K.forLoop(I, 0, N, [&] {
    K.forLoop(J, 0, N, [&] {
      F.f64Const(0);
      F.localSet(Acc);
      if (Triangular) {
        K.forLoopVar(L, 0, I, [&] {
          F.localGet(Acc);
          K.idx2(I, L, N);
          K.loadF64(A);
          K.idx2(L, J, N);
          K.loadF64(B);
          F.op(Opcode::F64Mul);
          F.op(Opcode::F64Add);
          F.localSet(Acc);
        });
      } else {
        K.forLoop(L, 0, N, [&] {
          F.localGet(Acc);
          K.idx2(I, L, N);
          K.loadF64(A);
          K.idx2(L, J, N);
          K.loadF64(B);
          F.op(Opcode::F64Mul);
          F.op(Opcode::F64Add);
          F.localSet(Acc);
        });
      }
      K.idx2(I, J, N);
      K.idx2(I, J, N);
      K.loadF64(C);
      F.f64Const(Beta);
      F.op(Opcode::F64Mul);
      F.localGet(Acc);
      F.f64Const(Alpha);
      F.op(Opcode::F64Mul);
      F.op(Opcode::F64Add);
      K.storeF64(C);
    });
  });
  uint32_t Sum = K.f64();
  K.sumF64(C, N * N, Sum);
  F.localGet(Sum);
}

/// y = A^T (A x) — the atax/bicg/mvt/gemver matvec family shape.
void emitMatvec(Kern &K, int N, int Reps, bool Transposed) {
  FuncBuilder &F = K.fn();
  const uint32_t A = 0, X = uint32_t(N * N * 8), Y = X + uint32_t(N * 8),
                 Tmp = Y + uint32_t(N * 8);
  K.initF64(A, N * N, 23, 0.125);
  K.initF64(X, N, 7, 1.5);
  uint32_t R = K.i32(), I = K.i32(), J = K.i32(), Acc = K.f64();
  K.forLoop(R, 0, Reps, [&] {
    K.forLoop(I, 0, N, [&] {
      F.f64Const(0);
      F.localSet(Acc);
      K.forLoop(J, 0, N, [&] {
        F.localGet(Acc);
        if (Transposed)
          K.idx2(J, I, N);
        else
          K.idx2(I, J, N);
        K.loadF64(A);
        K.idx1(J);
        K.loadF64(X);
        F.op(Opcode::F64Mul);
        F.op(Opcode::F64Add);
        F.localSet(Acc);
      });
      K.idx1(I);
      F.localGet(Acc);
      K.storeF64(Tmp);
    });
    K.forLoop(I, 0, N, [&] {
      F.f64Const(0);
      F.localSet(Acc);
      K.forLoop(J, 0, N, [&] {
        F.localGet(Acc);
        K.idx2(J, I, N);
        K.loadF64(A);
        K.idx1(J);
        K.loadF64(Tmp);
        F.op(Opcode::F64Mul);
        F.op(Opcode::F64Add);
        F.localSet(Acc);
      });
      K.idx1(I);
      K.idx1(I);
      K.loadF64(Y);
      F.localGet(Acc);
      F.op(Opcode::F64Add);
      K.storeF64(Y);
    });
  });
  uint32_t Sum = K.f64();
  K.sumF64(Y, N, Sum);
  F.localGet(Sum);
}

/// 1-D three-point stencil sweeps (jacobi-1d / durbin shape).
void emitStencil1d(Kern &K, int N, int Steps, double C0, double C1) {
  FuncBuilder &F = K.fn();
  const uint32_t A = 0, B = uint32_t(N * 8);
  K.initF64(A, N, 11, 0.5);
  uint32_t T = K.i32(), I = K.i32();
  K.forLoop(T, 0, Steps, [&] {
    K.forLoop(I, 1, N - 1, [&] {
      K.idx1(I);
      K.idx1(I);
      K.loadF64(A); // A[i]
      F.f64Const(C0);
      F.op(Opcode::F64Mul);
      K.idx1(I);
      K.loadF64(A + 8); // A[i+1] via a +8 byte offset.
      F.localGet(I);
      F.i32Const(1);
      F.op(Opcode::I32Sub);
      F.i32Const(8);
      F.op(Opcode::I32Mul);
      K.loadF64(A); // A[i-1]
      F.op(Opcode::F64Add);
      F.f64Const(C1);
      F.op(Opcode::F64Mul);
      F.op(Opcode::F64Add);
      K.storeF64(B);
    });
    // Copy back.
    K.forLoop(I, 1, N - 1, [&] {
      K.idx1(I);
      K.idx1(I);
      K.loadF64(B);
      K.storeF64(A);
    });
  });
  uint32_t Sum = K.f64();
  K.sumF64(A, N, Sum);
  F.localGet(Sum);
}

/// 2-D five-point stencil sweeps (jacobi-2d/seidel/heat/fdtd shape).
void emitStencil2d(Kern &K, int N, int Steps, double CC, double CN) {
  FuncBuilder &F = K.fn();
  const uint32_t A = 0, B = uint32_t(N * N * 8);
  K.initF64(A, N * N, 19, 0.2);
  uint32_t T = K.i32(), I = K.i32(), J = K.i32();
  K.forLoop(T, 0, Steps, [&] {
    K.forLoop(I, 1, N - 1, [&] {
      K.forLoop(J, 1, N - 1, [&] {
        K.idx2(I, J, N);
        K.idx2(I, J, N);
        K.loadF64(A);
        F.f64Const(CC);
        F.op(Opcode::F64Mul);
        K.idx2(I, J, N);
        F.load(Opcode::F64Load, A + 8, 3); // A[i][j+1]
        K.idx2(I, J, N);
        F.i32Const(8);
        F.op(Opcode::I32Sub);
        K.loadF64(A); // A[i][j-1]
        F.op(Opcode::F64Add);
        K.idx2(I, J, N);
        F.load(Opcode::F64Load, A + uint32_t(N * 8), 3); // A[i+1][j]
        F.op(Opcode::F64Add);
        K.idx2(I, J, N);
        F.i32Const(N * 8);
        F.op(Opcode::I32Sub);
        K.loadF64(A); // A[i-1][j]
        F.op(Opcode::F64Add);
        F.f64Const(CN);
        F.op(Opcode::F64Mul);
        F.op(Opcode::F64Add);
        K.storeF64(B);
      });
    });
    K.forLoop(I, 1, N - 1, [&] {
      K.forLoop(J, 1, N - 1, [&] {
        K.idx2(I, J, N);
        K.idx2(I, J, N);
        K.loadF64(B);
        K.storeF64(A);
      });
    });
  });
  uint32_t Sum = K.f64();
  K.sumF64(A, N * N, Sum);
  F.localGet(Sum);
}

/// Forward triangular solve / elimination sweep (trisolv/lu/cholesky shape).
void emitTrisolve(Kern &K, int N, int Reps) {
  FuncBuilder &F = K.fn();
  const uint32_t L = 0, X = uint32_t(N * N * 8), B = X + uint32_t(N * 8);
  K.initF64(L, N * N, 29, 0.0625);
  uint32_t R = K.i32(), I = K.i32(), J = K.i32(), Acc = K.f64();
  K.forLoop(R, 0, Reps, [&] {
    K.initF64(B, N, 5, 2.0);
    K.forLoop(I, 0, N, [&] {
      K.idx1(I);
      K.loadF64(B);
      F.localSet(Acc);
      K.forLoopVar(J, 0, I, [&] {
        F.localGet(Acc);
        K.idx2(I, J, N);
        K.loadF64(L);
        K.idx1(J);
        K.loadF64(X);
        F.op(Opcode::F64Mul);
        F.op(Opcode::F64Sub);
        F.localSet(Acc);
      });
      K.idx1(I);
      F.localGet(Acc);
      // Divide by (1 + diagonal^2) to stay bounded.
      K.idx2(I, I, N);
      K.loadF64(L);
      K.idx2(I, I, N);
      K.loadF64(L);
      F.op(Opcode::F64Mul);
      F.f64Const(1.0);
      F.op(Opcode::F64Add);
      F.op(Opcode::F64Div);
      K.storeF64(X);
    });
  });
  uint32_t Sum = K.f64();
  K.sumF64(X, N, Sum);
  F.localGet(Sum);
}

/// Integer all-pairs min-plus closure (floyd-warshall/nussinov shape).
void emitFloyd(Kern &K, int N) {
  FuncBuilder &F = K.fn();
  const uint32_t D = 0;
  // Init D[i][j] = ((i*7+j*13) % 97) + 1.
  uint32_t I = K.i32(), J = K.i32(), L = K.i32();
  K.forLoop(I, 0, N, [&] {
    K.forLoop(J, 0, N, [&] {
      F.localGet(I);
      F.i32Const(N);
      F.op(Opcode::I32Mul);
      F.localGet(J);
      F.op(Opcode::I32Add);
      F.i32Const(4);
      F.op(Opcode::I32Mul);
      F.localGet(I);
      F.i32Const(7);
      F.op(Opcode::I32Mul);
      F.localGet(J);
      F.i32Const(13);
      F.op(Opcode::I32Mul);
      F.op(Opcode::I32Add);
      F.i32Const(97);
      F.op(Opcode::I32RemU);
      F.i32Const(1);
      F.op(Opcode::I32Add);
      K.storeI32(D);
    });
  });
  auto Idx32 = [&](uint32_t Ii, uint32_t Jj) {
    F.localGet(Ii);
    F.i32Const(N);
    F.op(Opcode::I32Mul);
    F.localGet(Jj);
    F.op(Opcode::I32Add);
    F.i32Const(4);
    F.op(Opcode::I32Mul);
  };
  uint32_t Ta = K.i32(), Tb = K.i32();
  K.forLoop(L, 0, N, [&] {
    K.forLoop(I, 0, N, [&] {
      K.forLoop(J, 0, N, [&] {
        // D[i][j] = min(D[i][j], D[i][k] + D[k][j])
        Idx32(I, L);
        K.loadI32(D);
        Idx32(L, J);
        K.loadI32(D);
        F.op(Opcode::I32Add);
        F.localSet(Tb);
        Idx32(I, J);
        K.loadI32(D);
        F.localSet(Ta);
        Idx32(I, J);
        F.localGet(Ta);
        F.localGet(Tb);
        F.localGet(Ta);
        F.localGet(Tb);
        F.op(Opcode::I32LtS);
        F.select();
        K.storeI32(D);
      });
    });
  });
  uint32_t Sum = K.i64(), I2 = K.i32();
  K.forLoop(I2, 0, N * N, [&] {
    F.localGet(Sum);
    F.localGet(I2);
    F.i32Const(4);
    F.op(Opcode::I32Mul);
    K.loadI32(D);
    F.op(Opcode::I64ExtendI32U);
    F.op(Opcode::I64Add);
    F.localSet(Sum);
  });
  F.localGet(Sum);
}

/// Mean-centered cross-products (covariance/correlation shape).
void emitCovariance(Kern &K, int N, int M) {
  FuncBuilder &F = K.fn();
  const uint32_t Data = 0, Mean = uint32_t(N * M * 8),
                 Cov = Mean + uint32_t(M * 8);
  K.initF64(Data, N * M, 41, 0.3);
  uint32_t I = K.i32(), J = K.i32(), L = K.i32(), Acc = K.f64();
  // Column means.
  K.forLoop(J, 0, M, [&] {
    F.f64Const(0);
    F.localSet(Acc);
    K.forLoop(I, 0, N, [&] {
      F.localGet(Acc);
      K.idx2(I, J, M);
      K.loadF64(Data);
      F.op(Opcode::F64Add);
      F.localSet(Acc);
    });
    K.idx1(J);
    F.localGet(Acc);
    F.f64Const(double(N));
    F.op(Opcode::F64Div);
    K.storeF64(Mean);
  });
  // Covariance matrix.
  K.forLoop(I, 0, M, [&] {
    K.forLoop(J, 0, M, [&] {
      F.f64Const(0);
      F.localSet(Acc);
      K.forLoop(L, 0, N, [&] {
        F.localGet(Acc);
        K.idx2(L, I, M);
        K.loadF64(Data);
        K.idx1(I);
        K.loadF64(Mean);
        F.op(Opcode::F64Sub);
        K.idx2(L, J, M);
        K.loadF64(Data);
        K.idx1(J);
        K.loadF64(Mean);
        F.op(Opcode::F64Sub);
        F.op(Opcode::F64Mul);
        F.op(Opcode::F64Add);
        F.localSet(Acc);
      });
      K.idx2(I, J, M);
      F.localGet(Acc);
      F.f64Const(double(N - 1));
      F.op(Opcode::F64Div);
      K.storeF64(Cov);
    });
  });
  uint32_t Sum = K.f64();
  K.sumF64(Cov, M * M, Sum);
  F.localGet(Sum);
}

std::vector<LineItem> wisp_polybench(int Scale) {
  int S = Scale;
  std::vector<LineItem> Items;
  auto Mk = [&](const std::string &Name, const Emitter &E) {
    Items.push_back(makeItem("polybench", Name, ValType::F64, S, E));
  };
  auto MkI = [&](const std::string &Name, const Emitter &E) {
    Items.push_back(makeItem("polybench", Name, ValType::I64, S, E));
  };
  Mk("2mm", [](Kern &K, int S) { emitMatmul(K, 18 + 2 * S, 1.2, 0.8, false); });
  Mk("3mm", [](Kern &K, int S) { emitMatmul(K, 20 + 2 * S, 1.0, 1.0, false); });
  Mk("adi", [](Kern &K, int S) { emitStencil2d(K, 28, 6 * S, 0.5, 0.11); });
  Mk("atax", [](Kern &K, int S) { emitMatvec(K, 40, 8 * S, false); });
  Mk("bicg", [](Kern &K, int S) { emitMatvec(K, 40, 8 * S, true); });
  Mk("cholesky", [](Kern &K, int S) { emitTrisolve(K, 36, 10 * S); });
  Mk("correlation", [](Kern &K, int S) { emitCovariance(K, 40 + S, 22); });
  Mk("covariance", [](Kern &K, int S) { emitCovariance(K, 36 + S, 26); });
  Mk("doitgen", [](Kern &K, int S) { emitMatmul(K, 16 + S, 1.0, 0.0, false); });
  Mk("durbin", [](Kern &K, int S) { emitStencil1d(K, 400, 60 * S, 0.6, 0.2); });
  Mk("fdtd-2d", [](Kern &K, int S) { emitStencil2d(K, 30, 8 * S, 0.7, 0.075); });
  MkI("floyd-warshall", [](Kern &K, int S) { emitFloyd(K, 18 + 2 * S); });
  Mk("gemm", [](Kern &K, int S) { emitMatmul(K, 22 + 2 * S, 1.5, 1.2, false); });
  Mk("gemver", [](Kern &K, int S) { emitMatvec(K, 44, 8 * S, false); });
  Mk("gesummv", [](Kern &K, int S) { emitMatvec(K, 36, 10 * S, true); });
  Mk("gramschmidt", [](Kern &K, int S) { emitTrisolve(K, 32, 12 * S); });
  Mk("heat-3d", [](Kern &K, int S) { emitStencil2d(K, 26, 10 * S, 0.4, 0.15); });
  Mk("jacobi-1d", [](Kern &K, int S) { emitStencil1d(K, 600, 40 * S, 0.34, 0.33); });
  Mk("jacobi-2d", [](Kern &K, int S) { emitStencil2d(K, 32, 8 * S, 0.2, 0.2); });
  Mk("lu", [](Kern &K, int S) { emitTrisolve(K, 40, 8 * S); });
  Mk("ludcmp", [](Kern &K, int S) { emitTrisolve(K, 38, 9 * S); });
  Mk("mvt", [](Kern &K, int S) { emitMatvec(K, 48, 6 * S, false); });
  MkI("nussinov", [](Kern &K, int S) { emitFloyd(K, 16 + 2 * S); });
  Mk("seidel-2d", [](Kern &K, int S) { emitStencil2d(K, 30, 7 * S, 0.25, 0.19); });
  Mk("symm", [](Kern &K, int S) { emitMatmul(K, 20 + 2 * S, 0.9, 1.1, true); });
  Mk("syr2k", [](Kern &K, int S) { emitMatmul(K, 19 + 2 * S, 1.3, 0.7, true); });
  Mk("syrk", [](Kern &K, int S) { emitMatmul(K, 21 + 2 * S, 1.1, 0.9, true); });
  Mk("trmm", [](Kern &K, int S) { emitMatmul(K, 20 + 2 * S, 1.0, 0.5, true); });
  return Items;
}

// ---------------------------------------------------------------------------
// Libsodium-shaped kernels: integer crypto primitive shapes.
// ---------------------------------------------------------------------------

/// ChaCha/Salsa-style quarter-round mixing over a 16-word i32 state.
void emitChaCha(Kern &K, int Rounds, int Blocks, uint32_t SeedMix) {
  FuncBuilder &F = K.fn();
  uint32_t X[16];
  for (int I = 0; I < 16; ++I)
    X[I] = K.i32();
  uint32_t Blk = K.i32(), Rd = K.i32(), Acc = K.i64();
  auto QR = [&](uint32_t A, uint32_t B, uint32_t C, uint32_t D) {
    auto Step = [&](uint32_t P, uint32_t Q, uint32_t R, int Rot) {
      // p += q; r ^= p; r = rotl(r, rot)
      F.localGet(P);
      F.localGet(Q);
      F.op(Opcode::I32Add);
      F.localSet(P);
      F.localGet(R);
      F.localGet(P);
      F.op(Opcode::I32Xor);
      F.i32Const(Rot);
      F.op(Opcode::I32Rotl);
      F.localSet(R);
    };
    Step(A, B, D, 16);
    Step(C, D, B, 12);
    Step(A, B, D, 8);
    Step(C, D, B, 7);
  };
  K.forLoop(Blk, 0, Blocks, [&] {
    // Key/counter setup.
    for (int I = 0; I < 16; ++I) {
      F.localGet(Blk);
      F.i32Const(int32_t(SeedMix + uint32_t(I) * 0x9e3779b9u));
      F.op(Opcode::I32Xor);
      F.localSet(X[I]);
    }
    K.forLoop(Rd, 0, Rounds / 2, [&] {
      QR(X[0], X[4], X[8], X[12]);
      QR(X[1], X[5], X[9], X[13]);
      QR(X[2], X[6], X[10], X[14]);
      QR(X[3], X[7], X[11], X[15]);
      QR(X[0], X[5], X[10], X[15]);
      QR(X[1], X[6], X[11], X[12]);
      QR(X[2], X[7], X[8], X[13]);
      QR(X[3], X[4], X[9], X[14]);
    });
    for (int I = 0; I < 16; ++I) {
      F.localGet(Acc);
      F.localGet(X[I]);
      F.op(Opcode::I64ExtendI32U);
      F.op(Opcode::I64Add);
      F.localSet(Acc);
    }
  });
  F.localGet(Acc);
}

/// Blake2b/SipHash-style 64-bit ARX mixing.
void emitArx64(Kern &K, int Rounds, int Blocks, int R1, int R2, int R3,
               int R4) {
  FuncBuilder &F = K.fn();
  uint32_t V0 = K.i64(), V1 = K.i64(), V2 = K.i64(), V3 = K.i64();
  uint32_t Blk = K.i32(), Rd = K.i32(), Acc = K.i64();
  auto Round = [&] {
    auto Mix = [&](uint32_t A, uint32_t B, int Rot) {
      F.localGet(A);
      F.localGet(B);
      F.op(Opcode::I64Add);
      F.localSet(A);
      F.localGet(B);
      F.localGet(A);
      F.op(Opcode::I64Xor);
      F.i64Const(Rot);
      F.op(Opcode::I64Rotl);
      F.localSet(B);
    };
    Mix(V0, V1, R1);
    Mix(V2, V3, R2);
    Mix(V0, V3, R3);
    Mix(V2, V1, R4);
  };
  K.forLoop(Blk, 0, Blocks, [&] {
    F.localGet(Blk);
    F.op(Opcode::I64ExtendI32U);
    F.i64Const(0x736f6d6570736575ll);
    F.op(Opcode::I64Xor);
    F.localSet(V0);
    F.i64Const(0x646f72616e646f6dll);
    F.localSet(V1);
    F.i64Const(0x6c7967656e657261ll);
    F.localSet(V2);
    F.i64Const(0x7465646279746573ll);
    F.localSet(V3);
    K.forLoop(Rd, 0, Rounds, [&] { Round(); });
    F.localGet(Acc);
    F.localGet(V0);
    F.localGet(V1);
    F.op(Opcode::I64Xor);
    F.localGet(V2);
    F.localGet(V3);
    F.op(Opcode::I64Xor);
    F.op(Opcode::I64Add);
    F.op(Opcode::I64Add);
    F.localSet(Acc);
  });
  F.localGet(Acc);
}

/// Poly1305-style multiply-accumulate MAC over memory.
void emitPolyMac(Kern &K, int Bytes, int Reps) {
  FuncBuilder &F = K.fn();
  // Fill the buffer with a byte pattern.
  uint32_t I = K.i32();
  K.forLoop(I, 0, Bytes / 8, [&] {
    K.idx1(I);
    F.localGet(I);
    F.op(Opcode::I64ExtendI32U);
    F.i64Const(0x0101010101010101ll);
    F.op(Opcode::I64Mul);
    K.storeI64(0);
  });
  uint32_t R = K.i32(), H = K.i64();
  K.forLoop(R, 0, Reps, [&] {
    K.forLoop(I, 0, Bytes / 8, [&] {
      // h = (h + m[i]) * r mod 2^64 (the reduction shape simplified).
      F.localGet(H);
      K.idx1(I);
      K.loadI64(0);
      F.op(Opcode::I64Add);
      F.i64Const(0x3fffffffffffll);
      F.op(Opcode::I64And);
      F.i64Const(0x0ffffffc0fffffffll);
      F.op(Opcode::I64Mul);
      F.localSet(H);
    });
  });
  F.localGet(H);
}

/// SHA-256-style round logic (i32 sigma functions).
void emitSha256ish(Kern &K, int Blocks) {
  FuncBuilder &F = K.fn();
  uint32_t A = K.i32(), B = K.i32(), C = K.i32(), D = K.i32(), T = K.i32();
  uint32_t Blk = K.i32(), Rd = K.i32(), Acc = K.i64();
  K.forLoop(Blk, 0, Blocks, [&] {
    F.i32Const(0x6a09e667);
    F.localSet(A);
    F.i32Const(int32_t(0xbb67ae85));
    F.localSet(B);
    F.i32Const(0x3c6ef372);
    F.localSet(C);
    F.localGet(Blk);
    F.localSet(D);
    K.forLoop(Rd, 0, 64, [&] {
      // t = (rotr(a,2) ^ rotr(a,13) ^ rotr(a,22)) + ((a&b)^(a&c)^(b&c)) + d
      F.localGet(A);
      F.i32Const(2);
      F.op(Opcode::I32Rotr);
      F.localGet(A);
      F.i32Const(13);
      F.op(Opcode::I32Rotr);
      F.op(Opcode::I32Xor);
      F.localGet(A);
      F.i32Const(22);
      F.op(Opcode::I32Rotr);
      F.op(Opcode::I32Xor);
      F.localGet(A);
      F.localGet(B);
      F.op(Opcode::I32And);
      F.localGet(A);
      F.localGet(C);
      F.op(Opcode::I32And);
      F.op(Opcode::I32Xor);
      F.localGet(B);
      F.localGet(C);
      F.op(Opcode::I32And);
      F.op(Opcode::I32Xor);
      F.op(Opcode::I32Add);
      F.localGet(D);
      F.op(Opcode::I32Add);
      F.localSet(T);
      // Rotate the registers.
      F.localGet(C);
      F.localSet(D);
      F.localGet(B);
      F.localSet(C);
      F.localGet(A);
      F.localSet(B);
      F.localGet(T);
      F.localGet(Rd);
      F.op(Opcode::I32Add);
      F.localSet(A);
    });
    F.localGet(Acc);
    F.localGet(A);
    F.op(Opcode::I64ExtendI32U);
    F.op(Opcode::I64Add);
    F.localSet(Acc);
  });
  F.localGet(Acc);
}

/// Stream-cipher XOR application over a memory buffer.
void emitXorStream(Kern &K, int Bytes, int Reps) {
  FuncBuilder &F = K.fn();
  uint32_t I = K.i32(), R = K.i32(), Acc = K.i64();
  K.forLoop(I, 0, Bytes / 8, [&] {
    K.idx1(I);
    F.localGet(I);
    F.op(Opcode::I64ExtendI32U);
    K.storeI64(0);
  });
  K.forLoop(R, 0, Reps, [&] {
    K.forLoop(I, 0, Bytes / 8, [&] {
      K.idx1(I);
      K.idx1(I);
      K.loadI64(0);
      F.localGet(R);
      F.op(Opcode::I64ExtendI32U);
      F.i64Const(0x9e3779b97f4a7c15ll);
      F.op(Opcode::I64Mul);
      F.op(Opcode::I64Xor);
      K.storeI64(0);
    });
  });
  K.forLoop(I, 0, Bytes / 8, [&] {
    F.localGet(Acc);
    K.idx1(I);
    K.loadI64(0);
    F.op(Opcode::I64Add);
    F.localSet(Acc);
  });
  F.localGet(Acc);
}

std::vector<LineItem> wisp_libsodium(int Scale) {
  int S = Scale;
  std::vector<LineItem> Items;
  auto Mk = [&](const std::string &Name, const Emitter &E) {
    Items.push_back(makeItem("libsodium", Name, ValType::I64, S, E));
  };
  // ChaCha/Salsa family (stream ciphers and AEAD cores).
  Mk("stream_chacha20", [](Kern &K, int S) { emitChaCha(K, 20, 160 * S, 1); });
  Mk("stream_chacha20_ietf", [](Kern &K, int S) { emitChaCha(K, 20, 150 * S, 2); });
  Mk("stream_chacha12", [](Kern &K, int S) { emitChaCha(K, 12, 240 * S, 3); });
  Mk("stream_chacha8", [](Kern &K, int S) { emitChaCha(K, 8, 320 * S, 4); });
  Mk("stream_salsa20", [](Kern &K, int S) { emitChaCha(K, 20, 150 * S, 5); });
  Mk("stream_salsa2012", [](Kern &K, int S) { emitChaCha(K, 12, 230 * S, 6); });
  Mk("stream_salsa208", [](Kern &K, int S) { emitChaCha(K, 8, 300 * S, 7); });
  Mk("stream_xchacha20", [](Kern &K, int S) { emitChaCha(K, 20, 140 * S, 8); });
  Mk("aead_chacha20poly1305", [](Kern &K, int S) { emitChaCha(K, 20, 130 * S, 9); });
  Mk("aead_xchacha20poly1305", [](Kern &K, int S) { emitChaCha(K, 20, 120 * S, 10); });
  // Blake2b / SipHash family.
  Mk("generichash_blake2b", [](Kern &K, int S) { emitArx64(K, 12, 300 * S, 32, 24, 16, 63); });
  Mk("generichash_blake2b_salt", [](Kern &K, int S) { emitArx64(K, 12, 280 * S, 32, 24, 16, 63); });
  Mk("generichash_blake2b_4k", [](Kern &K, int S) { emitArx64(K, 12, 500 * S, 32, 24, 16, 63); });
  Mk("shorthash_siphash24", [](Kern &K, int S) { emitArx64(K, 6, 600 * S, 13, 16, 17, 21); });
  Mk("shorthash_siphashx24", [](Kern &K, int S) { emitArx64(K, 6, 550 * S, 13, 16, 17, 21); });
  Mk("hash_sha512_core", [](Kern &K, int S) { emitArx64(K, 16, 260 * S, 28, 34, 39, 14); });
  Mk("auth_hmacsha512", [](Kern &K, int S) { emitArx64(K, 16, 240 * S, 28, 34, 39, 14); });
  Mk("sign_ed25519_core", [](Kern &K, int S) { emitArx64(K, 10, 300 * S, 25, 30, 11, 41); });
  Mk("kdf_blake2b", [](Kern &K, int S) { emitArx64(K, 12, 220 * S, 32, 24, 16, 63); });
  // Poly1305 family.
  Mk("onetimeauth_poly1305", [](Kern &K, int S) { emitPolyMac(K, 4096, 12 * S); });
  Mk("onetimeauth_poly1305_2k", [](Kern &K, int S) { emitPolyMac(K, 2048, 22 * S); });
  Mk("auth_poly1305_8k", [](Kern &K, int S) { emitPolyMac(K, 8192, 6 * S); });
  // SHA-256 family.
  Mk("hash_sha256", [](Kern &K, int S) { emitSha256ish(K, 220 * S); });
  Mk("auth_hmacsha256", [](Kern &K, int S) { emitSha256ish(K, 200 * S); });
  Mk("auth_hmacsha256_4k", [](Kern &K, int S) { emitSha256ish(K, 320 * S); });
  Mk("hash_sha256_8k", [](Kern &K, int S) { emitSha256ish(K, 420 * S); });
  // Secretbox / box compositions (stream + MAC shapes).
  Mk("secretbox_easy", [](Kern &K, int S) { emitXorStream(K, 4096, 24 * S); });
  Mk("secretbox_open", [](Kern &K, int S) { emitXorStream(K, 4096, 22 * S); });
  Mk("box_easy", [](Kern &K, int S) { emitXorStream(K, 2048, 40 * S); });
  Mk("box_seal", [](Kern &K, int S) { emitXorStream(K, 2048, 36 * S); });
  Mk("secretstream_push", [](Kern &K, int S) { emitXorStream(K, 8192, 12 * S); });
  Mk("secretstream_pull", [](Kern &K, int S) { emitXorStream(K, 8192, 11 * S); });
  Mk("stream_xor_16k", [](Kern &K, int S) { emitXorStream(K, 16384, 6 * S); });
  Mk("stream_xor_1k", [](Kern &K, int S) { emitXorStream(K, 1024, 90 * S); });
  // Scalar arithmetic shapes (curve operations are big-int mul chains).
  Mk("scalarmult_curve25519", [](Kern &K, int S) { emitPolyMac(K, 2048, 30 * S); });
  Mk("core_ristretto255", [](Kern &K, int S) { emitPolyMac(K, 1024, 55 * S); });
  Mk("sign_detached", [](Kern &K, int S) { emitArx64(K, 10, 280 * S, 25, 30, 11, 41); });
  Mk("sign_verify", [](Kern &K, int S) { emitArx64(K, 10, 260 * S, 25, 30, 11, 41); });
  Mk("kx_client_session", [](Kern &K, int S) { emitChaCha(K, 20, 110 * S, 11); });
  return Items;
}

// ---------------------------------------------------------------------------
// Ostrich-shaped "dwarf" kernels.
// ---------------------------------------------------------------------------

/// N-body force accumulation (lavamd/nbody shape).
void emitNbody(Kern &K, int N, int Steps) {
  FuncBuilder &F = K.fn();
  const uint32_t Px = 0, Py = uint32_t(N * 8), Fx = uint32_t(2 * N * 8),
                 Fy = uint32_t(3 * N * 8);
  K.initF64(Px, N, 37, 0.7);
  K.initF64(Py, N, 51, 0.9);
  uint32_t T = K.i32(), I = K.i32(), J = K.i32(), Dx = K.f64(), Dy = K.f64(),
           R2 = K.f64();
  K.forLoop(T, 0, Steps, [&] {
    K.forLoop(I, 0, N, [&] {
      K.idx1(I);
      F.f64Const(0);
      K.storeF64(Fx);
      K.idx1(I);
      F.f64Const(0);
      K.storeF64(Fy);
      K.forLoop(J, 0, N, [&] {
        K.idx1(J);
        K.loadF64(Px);
        K.idx1(I);
        K.loadF64(Px);
        F.op(Opcode::F64Sub);
        F.localSet(Dx);
        K.idx1(J);
        K.loadF64(Py);
        K.idx1(I);
        K.loadF64(Py);
        F.op(Opcode::F64Sub);
        F.localSet(Dy);
        F.localGet(Dx);
        F.localGet(Dx);
        F.op(Opcode::F64Mul);
        F.localGet(Dy);
        F.localGet(Dy);
        F.op(Opcode::F64Mul);
        F.op(Opcode::F64Add);
        F.f64Const(0.5);
        F.op(Opcode::F64Add);
        F.localSet(R2);
        K.idx1(I);
        K.idx1(I);
        K.loadF64(Fx);
        F.localGet(Dx);
        F.localGet(R2);
        F.op(Opcode::F64Div);
        F.op(Opcode::F64Add);
        K.storeF64(Fx);
        K.idx1(I);
        K.idx1(I);
        K.loadF64(Fy);
        F.localGet(Dy);
        F.localGet(R2);
        F.op(Opcode::F64Div);
        F.op(Opcode::F64Add);
        K.storeF64(Fy);
      });
    });
    // Integrate.
    K.forLoop(I, 0, N, [&] {
      K.idx1(I);
      K.idx1(I);
      K.loadF64(Px);
      K.idx1(I);
      K.loadF64(Fx);
      F.f64Const(0.001);
      F.op(Opcode::F64Mul);
      F.op(Opcode::F64Add);
      K.storeF64(Px);
      K.idx1(I);
      K.idx1(I);
      K.loadF64(Py);
      K.idx1(I);
      K.loadF64(Fy);
      F.f64Const(0.001);
      F.op(Opcode::F64Mul);
      F.op(Opcode::F64Add);
      K.storeF64(Py);
    });
  });
  uint32_t Sum = K.f64();
  K.sumF64(Px, N, Sum);
  K.sumF64(Py, N, Sum);
  F.localGet(Sum);
}

/// CRC-32 bitwise over a buffer (crc dwarf).
void emitCrc(Kern &K, int Bytes, int Reps) {
  FuncBuilder &F = K.fn();
  uint32_t I = K.i32(), R = K.i32(), Crc = K.i32(), Byte = K.i32(),
           Bit = K.i32();
  K.forLoop(I, 0, Bytes, [&] {
    F.localGet(I);
    F.localGet(I);
    F.i32Const(0x5bd1e995);
    F.op(Opcode::I32Mul);
    F.i32Const(24);
    F.op(Opcode::I32ShrU);
    F.store(Opcode::I32Store8, 0, 0);
  });
  uint32_t Acc = K.i64();
  K.forLoop(R, 0, Reps, [&] {
    F.i32Const(-1);
    F.localSet(Crc);
    K.forLoop(I, 0, Bytes, [&] {
      F.localGet(I);
      F.load(Opcode::I32Load8U, 0, 0);
      F.localSet(Byte);
      F.localGet(Crc);
      F.localGet(Byte);
      F.op(Opcode::I32Xor);
      F.localSet(Crc);
      K.forLoop(Bit, 0, 8, [&] {
        F.localGet(Crc);
        F.i32Const(1);
        F.op(Opcode::I32ShrU);
        F.localGet(Crc);
        F.i32Const(1);
        F.op(Opcode::I32And);
        F.ifOp(BlockType::oneResult(ValType::I32));
        F.i32Const(int32_t(0xEDB88320));
        F.elseOp();
        F.i32Const(0);
        F.end();
        F.op(Opcode::I32Xor);
        F.localSet(Crc);
      });
    });
    F.localGet(Acc);
    F.localGet(Crc);
    F.op(Opcode::I64ExtendI32U);
    F.op(Opcode::I64Add);
    F.localSet(Acc);
  });
  F.localGet(Acc);
}

/// Sparse matrix-vector product in CSR form (spmv dwarf).
void emitSpmv(Kern &K, int N, int NnzPerRow, int Reps) {
  FuncBuilder &F = K.fn();
  int Nnz = N * NnzPerRow;
  const uint32_t Cols = 0, Vals = uint32_t(Nnz * 4), X = Vals + uint32_t(Nnz * 8),
                 Y = X + uint32_t(N * 8);
  uint32_t I = K.i32(), J = K.i32(), Acc = K.f64();
  // Build the pattern: row i touches columns (i*7 + j*13) % N.
  K.forLoop(I, 0, Nnz, [&] {
    F.localGet(I);
    F.i32Const(4);
    F.op(Opcode::I32Mul);
    F.localGet(I);
    F.i32Const(13);
    F.op(Opcode::I32Mul);
    F.i32Const(N);
    F.op(Opcode::I32RemU);
    K.storeI32(Cols);
    K.idx1(I);
    F.localGet(I);
    F.i32Const(31);
    F.op(Opcode::I32RemS);
    F.op(Opcode::F64ConvertI32S);
    F.f64Const(0.25);
    F.op(Opcode::F64Mul);
    K.storeF64(Vals);
  });
  K.initF64(X, N, 9, 1.0);
  uint32_t R = K.i32();
  K.forLoop(R, 0, Reps, [&] {
    K.forLoop(I, 0, N, [&] {
      F.f64Const(0);
      F.localSet(Acc);
      K.forLoop(J, 0, NnzPerRow, [&] {
        // idx = i*NnzPerRow + j
        F.localGet(Acc);
        F.localGet(I);
        F.i32Const(NnzPerRow);
        F.op(Opcode::I32Mul);
        F.localGet(J);
        F.op(Opcode::I32Add);
        F.i32Const(8);
        F.op(Opcode::I32Mul);
        K.loadF64(Vals);
        F.localGet(I);
        F.i32Const(NnzPerRow);
        F.op(Opcode::I32Mul);
        F.localGet(J);
        F.op(Opcode::I32Add);
        F.i32Const(4);
        F.op(Opcode::I32Mul);
        K.loadI32(Cols);
        F.i32Const(8);
        F.op(Opcode::I32Mul);
        K.loadF64(X);
        F.op(Opcode::F64Mul);
        F.op(Opcode::F64Add);
        F.localSet(Acc);
      });
      K.idx1(I);
      F.localGet(Acc);
      K.storeF64(Y);
    });
  });
  uint32_t Sum = K.f64();
  K.sumF64(Y, N, Sum);
  F.localGet(Sum);
}

/// Iterative FFT-like butterfly sweeps (fft dwarf).
void emitFftLike(Kern &K, int LogN, int Reps) {
  FuncBuilder &F = K.fn();
  int N = 1 << LogN;
  const uint32_t Re = 0, Im = uint32_t(N * 8);
  K.initF64(Re, N, 21, 0.4);
  K.initF64(Im, N, 27, 0.3);
  uint32_t R = K.i32(), S = K.i32(), I = K.i32(), Half = K.i32(),
           Tr = K.f64(), Ti = K.f64();
  K.forLoop(R, 0, Reps, [&] {
    K.forLoop(S, 0, LogN, [&] {
      // half = 1 << s
      F.i32Const(1);
      F.localGet(S);
      F.op(Opcode::I32Shl);
      F.localSet(Half);
      K.forLoop(I, 0, N / 2, [&] {
        // Butterfly between i and i+half (indices wrapped).
        // tr = re[i] - re[(i+half)%N]; ti = im[i] - im[(i+half)%N]
        auto WrapIdx = [&](uint32_t Base) {
          F.localGet(I);
          F.localGet(Half);
          F.op(Opcode::I32Add);
          F.i32Const(N - 1);
          F.op(Opcode::I32And);
          F.i32Const(8);
          F.op(Opcode::I32Mul);
          K.loadF64(Base);
        };
        K.idx1(I);
        K.loadF64(Re);
        WrapIdx(Re);
        F.op(Opcode::F64Sub);
        F.localSet(Tr);
        K.idx1(I);
        K.loadF64(Im);
        WrapIdx(Im);
        F.op(Opcode::F64Sub);
        F.localSet(Ti);
        K.idx1(I);
        K.idx1(I);
        K.loadF64(Re);
        F.localGet(Ti);
        F.f64Const(0.5);
        F.op(Opcode::F64Mul);
        F.op(Opcode::F64Add);
        K.storeF64(Re);
        K.idx1(I);
        K.idx1(I);
        K.loadF64(Im);
        F.localGet(Tr);
        F.f64Const(0.5);
        F.op(Opcode::F64Mul);
        F.op(Opcode::F64Sub);
        K.storeF64(Im);
      });
    });
  });
  uint32_t Sum = K.f64();
  K.sumF64(Re, N, Sum);
  K.sumF64(Im, N, Sum);
  F.localGet(Sum);
}

/// K-means point assignment + centroid update (kmeans dwarf).
void emitKmeans(Kern &K, int N, int Kc, int Iters) {
  FuncBuilder &F = K.fn();
  const uint32_t Pt = 0, Cx = uint32_t(N * 8), Cnt = Cx + uint32_t(Kc * 8),
                 Asn = Cnt + uint32_t(Kc * 4);
  K.initF64(Pt, N, 83, 0.11);
  K.initF64(Cx, Kc, 3, 4.0);
  uint32_t It = K.i32(), I = K.i32(), C = K.i32(), Best = K.i32(),
           BestD = K.f64(), Dd = K.f64();
  K.forLoop(It, 0, Iters, [&] {
    K.forLoop(I, 0, N, [&] {
      F.i32Const(0);
      F.localSet(Best);
      F.f64Const(1e30);
      F.localSet(BestD);
      K.forLoop(C, 0, Kc, [&] {
        K.idx1(I);
        K.loadF64(Pt);
        K.idx1(C);
        K.loadF64(Cx);
        F.op(Opcode::F64Sub);
        F.localSet(Dd);
        F.localGet(Dd);
        F.localGet(Dd);
        F.op(Opcode::F64Mul);
        F.localSet(Dd);
        F.localGet(Dd);
        F.localGet(BestD);
        F.op(Opcode::F64Lt);
        F.ifOp();
        F.localGet(Dd);
        F.localSet(BestD);
        F.localGet(C);
        F.localSet(Best);
        F.end();
      });
      F.localGet(I);
      F.i32Const(4);
      F.op(Opcode::I32Mul);
      F.localGet(Best);
      K.storeI32(Asn);
    });
    // Update centroids (single pass accumulate).
    K.forLoop(C, 0, Kc, [&] {
      F.localGet(C);
      F.i32Const(4);
      F.op(Opcode::I32Mul);
      F.i32Const(0);
      K.storeI32(Cnt);
    });
    K.forLoop(I, 0, N, [&] {
      F.localGet(I);
      F.i32Const(4);
      F.op(Opcode::I32Mul);
      K.loadI32(Asn);
      F.localSet(Best);
      F.localGet(Best);
      F.i32Const(4);
      F.op(Opcode::I32Mul);
      F.localGet(Best);
      F.i32Const(4);
      F.op(Opcode::I32Mul);
      K.loadI32(Cnt);
      F.i32Const(1);
      F.op(Opcode::I32Add);
      K.storeI32(Cnt);
    });
  });
  uint32_t Sum = K.i64(), I2 = K.i32();
  K.forLoop(I2, 0, Kc, [&] {
    F.localGet(Sum);
    F.localGet(I2);
    F.i32Const(4);
    F.op(Opcode::I32Mul);
    K.loadI32(Cnt);
    F.op(Opcode::I64ExtendI32S);
    F.op(Opcode::I64Add);
    F.localSet(Sum);
  });
  F.localGet(Sum);
}

/// Grid BFS via frontier sweeps (bfs dwarf; integer, branchy).
void emitBfs(Kern &K, int Side, int Reps) {
  FuncBuilder &F = K.fn();
  int N = Side * Side;
  const uint32_t Dist = 0;
  uint32_t R = K.i32(), I = K.i32(), It = K.i32(), Changed = K.i32(),
           Acc = K.i64();
  K.forLoop(R, 0, Reps, [&] {
    // dist[i] = big except source.
    K.forLoop(I, 0, N, [&] {
      F.localGet(I);
      F.i32Const(4);
      F.op(Opcode::I32Mul);
      F.localGet(I);
      F.i32Const(0);
      F.op(Opcode::I32Eq);
      F.ifOp(BlockType::oneResult(ValType::I32));
      F.i32Const(0);
      F.elseOp();
      F.i32Const(1 << 20);
      F.end();
      K.storeI32(Dist);
    });
    // Bellman-Ford-ish sweeps over the grid edges.
    K.forLoop(It, 0, Side, [&] {
      F.i32Const(0);
      F.localSet(Changed);
      K.forLoop(I, 0, N, [&] {
        // relax from left neighbor when not on the left edge.
        F.localGet(I);
        F.i32Const(Side);
        F.op(Opcode::I32RemU);
        F.ifOp();
        F.localGet(I);
        F.i32Const(4);
        F.op(Opcode::I32Mul);
        K.loadI32(Dist);
        F.localGet(I);
        F.i32Const(1);
        F.op(Opcode::I32Sub);
        F.i32Const(4);
        F.op(Opcode::I32Mul);
        K.loadI32(Dist);
        F.i32Const(1);
        F.op(Opcode::I32Add);
        F.op(Opcode::I32GtS);
        F.ifOp();
        F.localGet(I);
        F.i32Const(4);
        F.op(Opcode::I32Mul);
        F.localGet(I);
        F.i32Const(1);
        F.op(Opcode::I32Sub);
        F.i32Const(4);
        F.op(Opcode::I32Mul);
        K.loadI32(Dist);
        F.i32Const(1);
        F.op(Opcode::I32Add);
        K.storeI32(Dist);
        F.i32Const(1);
        F.localSet(Changed);
        F.end();
        F.end();
        // relax from the upper neighbor.
        F.localGet(I);
        F.i32Const(Side);
        F.op(Opcode::I32GeS);
        F.ifOp();
        F.localGet(I);
        F.i32Const(4);
        F.op(Opcode::I32Mul);
        K.loadI32(Dist);
        F.localGet(I);
        F.i32Const(Side);
        F.op(Opcode::I32Sub);
        F.i32Const(4);
        F.op(Opcode::I32Mul);
        K.loadI32(Dist);
        F.i32Const(1);
        F.op(Opcode::I32Add);
        F.op(Opcode::I32GtS);
        F.ifOp();
        F.localGet(I);
        F.i32Const(4);
        F.op(Opcode::I32Mul);
        F.localGet(I);
        F.i32Const(Side);
        F.op(Opcode::I32Sub);
        F.i32Const(4);
        F.op(Opcode::I32Mul);
        K.loadI32(Dist);
        F.i32Const(1);
        F.op(Opcode::I32Add);
        K.storeI32(Dist);
        F.end();
        F.end();
      });
      F.localGet(Changed);
      F.drop();
    });
    K.forLoop(I, 0, N, [&] {
      F.localGet(Acc);
      F.localGet(I);
      F.i32Const(4);
      F.op(Opcode::I32Mul);
      K.loadI32(Dist);
      F.op(Opcode::I64ExtendI32S);
      F.op(Opcode::I64Add);
      F.localSet(Acc);
    });
  });
  F.localGet(Acc);
}

std::vector<LineItem> wisp_ostrich(int Scale) {
  int S = Scale;
  std::vector<LineItem> Items;
  auto MkF = [&](const std::string &Name, const Emitter &E) {
    Items.push_back(makeItem("ostrich", Name, ValType::F64, S, E));
  };
  auto MkI = [&](const std::string &Name, const Emitter &E) {
    Items.push_back(makeItem("ostrich", Name, ValType::I64, S, E));
  };
  MkF("backprop", [](Kern &K, int S) { emitMatvec(K, 56, 6 * S, false); });
  MkI("bfs", [](Kern &K, int S) { emitBfs(K, 24, 4 * S); });
  MkI("crc", [](Kern &K, int S) { emitCrc(K, 1024, 6 * S); });
  MkF("fft", [](Kern &K, int S) { emitFftLike(K, 9, 12 * S); });
  MkF("hmm", [](Kern &K, int) { emitCovariance(K, 48, 24); });
  MkI("kmeans", [](Kern &K, int S) { emitKmeans(K, 1500, 12, 8 * S); });
  MkF("lavamd", [](Kern &K, int S) { emitNbody(K, 110, 2 * S); });
  MkF("lud", [](Kern &K, int S) { emitTrisolve(K, 44, 8 * S); });
  MkI("nqueens", [](Kern &K, int S) { emitBfs(K, 20, 6 * S); });
  MkF("spmv", [](Kern &K, int S) { emitSpmv(K, 600, 10, 10 * S); });
  MkF("srad", [](Kern &K, int S) { emitStencil2d(K, 34, 8 * S, 0.35, 0.16); });
  return Items;
}

} // namespace

std::vector<LineItem> wisp::polybenchSuite(int Scale) {
  return wisp_polybench(Scale);
}
std::vector<LineItem> wisp::libsodiumSuite(int Scale) {
  return wisp_libsodium(Scale);
}
std::vector<LineItem> wisp::ostrichSuite(int Scale) {
  return wisp_ostrich(Scale);
}

std::vector<LineItem> wisp::allSuites(int Scale) {
  std::vector<LineItem> All = polybenchSuite(Scale);
  std::vector<LineItem> L = libsodiumSuite(Scale);
  std::vector<LineItem> O = ostrichSuite(Scale);
  All.insert(All.end(), L.begin(), L.end());
  All.insert(All.end(), O.begin(), O.end());
  return All;
}

std::vector<uint8_t> wisp::nopModule() {
  ModuleBuilder MB;
  uint32_t T = MB.addType({}, {});
  FuncBuilder &F = MB.addFunc(T);
  F.op(Opcode::Nop);
  MB.exportFunc("run", MB.funcIndex(F));
  return MB.build();
}
