//===- spc/options.h - single-pass compiler configuration -------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration axes of the single-pass compiler. These correspond one to
/// one with the paper's Figure 3 feature matrix (MR, K, KF, ISEL, TAG/MAP)
/// and the optimization settings of the Figure 4/5/6 experiments (allopt,
/// nok, nokfold, noisel, nomr; eager/on-demand/lazy/no tags; optimized
/// probes).
///
//===----------------------------------------------------------------------===//

#ifndef WISP_SPC_OPTIONS_H
#define WISP_SPC_OPTIONS_H

#include <cstdint>

namespace wisp {

/// Value-tag emission strategy (paper §IV.C).
enum class TagMode : uint8_t {
  None,          ///< No tag lane at all ("notags" baseline).
  Eager,         ///< Store the tag at every slot write ("eagertags").
  EagerLocals,   ///< Eager for locals only ("eagertags-l").
  EagerOperands, ///< Eager for operand slots only ("eagertags-o").
  OnDemand,      ///< Track tag state abstractly, flush at observations
                 ///< (the Wizard-SPC default).
  Lazy,          ///< Like OnDemand, but local tags are never stored: the
                 ///< stack walker reconstructs them from declared types.
  StackMap,      ///< No tags; emit stackmaps at call sites (web engines).
};

/// How a probe site should be compiled (paper §IV.D).
enum class ProbeSiteKind : uint8_t {
  None,      ///< No probe attached.
  Counter,   ///< A pure counter: intrinsify to an inline increment.
  TosReader, ///< Reads only the top of stack: direct call with the value.
  Generic,   ///< Full runtime dispatch with an accessor object.
};

/// Compile-time oracle describing attached probes. Implemented by the
/// instrumentation layer; compilers only see this narrow interface.
class ProbeSiteOracle {
public:
  virtual ~ProbeSiteOracle() = default;
  /// Classifies the probe(s) at a bytecode offset of a function.
  virtual ProbeSiteKind classify(uint32_t FuncIdx, uint32_t Ip) const = 0;
  /// Address of the counter cell for a Counter site (patched into code).
  virtual uint64_t *counterAddr(uint32_t FuncIdx, uint32_t Ip) const = 0;
};

/// Single-pass compiler options.
struct CompilerOptions {
  bool TrackConstants = true;    ///< K: abstract values model constants.
  bool ConstantFolding = true;   ///< KF: fold const ops & branches.
  bool InstructionSelect = true; ///< ISEL: immediate-mode instructions.
  bool MultiRegister = true;     ///< MR: a register may cache many slots.
  bool Peephole = true;          ///< Fuse compare+branch.
  TagMode Tags = TagMode::OnDemand;
  bool OptimizeProbes = true;    ///< Intrinsify counter/TOS probes.
  bool EmitDeoptChecks = false;  ///< Support tier-down at checkpoints.
  bool EmitOsrEntries = false;   ///< Record OSR entries at loop headers.
  bool EmitFuelChecks = false;   ///< Governance checks at loop headers.
  uint8_t NumGp = 11;            ///< Allocatable general registers (<= 13).
  uint8_t NumFp = 12;            ///< Allocatable float registers (<= 15).

  /// The paper's Figure 4 configurations.
  static CompilerOptions allopt() { return CompilerOptions(); }
  static CompilerOptions nok() {
    CompilerOptions O;
    O.TrackConstants = false;
    O.ConstantFolding = false;
    O.InstructionSelect = false;
    return O;
  }
  static CompilerOptions nokfold() {
    CompilerOptions O;
    O.ConstantFolding = false;
    return O;
  }
  static CompilerOptions noisel() {
    CompilerOptions O;
    O.InstructionSelect = false;
    return O;
  }
  static CompilerOptions nomr() {
    CompilerOptions O;
    O.MultiRegister = false;
    return O;
  }
  /// The paper's Figure 5 tagging configurations.
  static CompilerOptions withTags(TagMode Mode) {
    CompilerOptions O;
    O.Tags = Mode;
    return O;
  }
};

} // namespace wisp

#endif // WISP_SPC_OPTIONS_H
