//===- spc/abstract_state.h - abstract interpretation state -----*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract state at the heart of single-pass compilation (paper §III):
/// one abstract value per slot (locals + operand stack) tracking where the
/// value lives (register / constant / memory), plus the register allocation
/// state and the tag byte currently in the tag lane's memory. Snapshots are
/// flat copies of the value vector; register bindings are reconstructed on
/// restore, which keeps snapshot/merge costs linear and cheap.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_SPC_ABSTRACT_STATE_H
#define WISP_SPC_ABSTRACT_STATE_H

#include "machine/isa.h"
#include "spc/options.h"
#include "wasm/types.h"

#include <cassert>
#include <cstring>
#include <vector>

namespace wisp {

/// One abstract value: where the slot's value currently lives.
struct AVal {
  enum Flag : uint8_t {
    InReg = 1,  ///< Live in register R.
    IsConst = 2,///< Known constant (Konst).
    InMem = 4,  ///< Memory copy in its value-stack slot is up to date.
  };
  uint8_t Flags = 0;
  ValType Type = ValType::I32;
  Reg R = NoReg;
  /// The ValType byte currently stored in the tag lane for this slot;
  /// 0 when unknown/stale.
  uint8_t MemTag = 0;
  uint64_t Konst = 0;

  bool inReg() const { return Flags & InReg; }
  bool isConst() const { return Flags & IsConst; }
  bool inMem() const { return Flags & InMem; }
  bool tagStored() const { return MemTag == uint8_t(Type); }
};

/// Register-class bookkeeping: which slots each register caches.
struct RegFile {
  /// Slots bound to each register (multi-register allocation allows more
  /// than one).
  std::vector<uint32_t> Bound[16];
  uint16_t UsedMask = 0;
  uint8_t NumAllocatable = 11;
  uint8_t NextVictim = 0;

  void reset() {
    for (auto &B : Bound)
      B.clear();
    UsedMask = 0;
    NextVictim = 0;
  }
  bool isFree(Reg R) const { return !(UsedMask & (1u << R)); }
  void bind(Reg R, uint32_t Slot) {
    Bound[R].push_back(Slot);
    UsedMask |= uint16_t(1u << R);
  }
  void unbind(Reg R, uint32_t Slot) {
    auto &B = Bound[R];
    for (size_t I = 0; I < B.size(); ++I) {
      if (B[I] == Slot) {
        B[I] = B.back();
        B.pop_back();
        break;
      }
    }
    if (B.empty())
      UsedMask &= uint16_t(~(1u << R));
  }
  /// Finds a free allocatable register not in \p PinMask; NoReg if none.
  Reg findFree(uint16_t PinMask) const {
    for (Reg R = 0; R < NumAllocatable; ++R)
      if (isFree(R) && !(PinMask & (1u << R)))
        return R;
    return NoReg;
  }
  /// Picks an eviction victim (round-robin) not in \p PinMask.
  Reg pickVictim(uint16_t PinMask) {
    for (unsigned Tries = 0; Tries < NumAllocatable; ++Tries) {
      Reg R = NextVictim;
      NextVictim = Reg((NextVictim + 1) % NumAllocatable);
      if (!(PinMask & (1u << R)))
        return R;
    }
    assert(false && "all registers pinned");
    return 0;
  }
};

/// A snapshot of the abstract value vector (control-flow split points).
struct StateSnapshot {
  std::vector<AVal> Vals; ///< Locals followed by operand stack.
  size_t byteSize() const { return Vals.size() * sizeof(AVal); }
};

} // namespace wisp

#endif // WISP_SPC_ABSTRACT_STATE_H
