//===- spc/compiler.cpp - single-pass baseline compiler ---------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Implementation notes (see paper §III):
//
//  * The abstract state is Vals[0..NumLocals) for locals followed by one
//    AVal per operand-stack slot. Absolute indexes into Vals double as
//    value-stack slot offsets relative to VFP.
//  * The merge convention is "everything in memory": any label that can be
//    reached by a branch expects all live slots spilled with tags stored
//    (per tag mode). Fallthrough into untargeted labels keeps the full
//    register/constant state — the common fast path.
//  * Conditional branches with non-trivial merges use an inverted skip
//    branch so merge code only executes on the taken edge; the abstract
//    state is snapshotted around the taken-edge code.
//  * The side-table position (STP) is tracked in lockstep with validation
//    so OSR entries and deopt checkpoints can name interpreter state.
//
//===----------------------------------------------------------------------===//

#include "spc/compiler.h"

#include "machine/assembler.h"
#include "runtime/numerics.h"
#include "spc/abstract_state.h"
#include "wasm/codereader.h"

#include <chrono>

using namespace wisp;

namespace {

// Scratch registers reserved for codegen (never allocatable).
constexpr Reg ScratchGp = 15;   // Memory-to-memory moves, const stores.
constexpr Reg ScratchGp2 = 14;  // call_indirect index.

/// One control-stack entry.
struct Control {
  Opcode Kind = Opcode::Block; ///< Block, Loop, If (Else reuses If).
  bool DeadEntry = false;      ///< Pushed while the code was unreachable.
  bool ElseSeen = false;
  bool EndTargeted = false;
  int8_t FoldedCond = -1; ///< If only: 0/1 when the condition was constant.
  uint32_t Base = 0;      ///< Operand count below the params at entry.
  std::vector<ValType> Params;
  std::vector<ValType> Results;
  Label End;
  Label Else;
  Label Head; ///< Loop header label.
  StateSnapshot ElseSnap;
};

class SPC {
public:
  SPC(const Module &M, const FuncDecl &F, const CompilerOptions &Opts,
      const ProbeSiteOracle *Probes, MCode &Code)
      : M(M), F(F), Opts(Opts), Probes(Probes), Code(Code), A(Code),
        R(M.Bytes.data(), F.BodyStart, F.BodyEnd) {
    NumLocals = F.numLocalSlots();
    Gp.NumAllocatable = Opts.NumGp;
    Fp.NumAllocatable = Opts.NumFp;
  }

  void run();

private:
  // --- Type / register class helpers ---
  static bool isFp(ValType T) { return isFloatType(T); }
  RegFile &fileFor(ValType T) { return isFp(T) ? Fp : Gp; }

  uint32_t operandCount() const { return uint32_t(Vals.size()) - NumLocals; }
  uint32_t topSlot() const { return uint32_t(Vals.size()) - 1; }

  // --- Tag mode coverage ---
  bool modeCoversSlot(uint32_t Slot) const {
    switch (Opts.Tags) {
    case TagMode::None:
    case TagMode::StackMap:
      return false;
    case TagMode::Eager:
    case TagMode::OnDemand:
      return true;
    case TagMode::EagerLocals:
      return Slot < NumLocals;
    case TagMode::EagerOperands:
    case TagMode::Lazy:
      return Slot >= NumLocals;
    }
    return false;
  }
  bool eagerMode() const {
    return Opts.Tags == TagMode::Eager || Opts.Tags == TagMode::EagerLocals ||
           Opts.Tags == TagMode::EagerOperands;
  }

  void emitTag(uint32_t Slot, ValType T) {
    A.emit(MOp::StTag, uint8_t(T), 0, 0, 0, int64_t(Slot));
    Vals[Slot].MemTag = uint8_t(T);
    ++Code.Stats.TagStores;
  }

  /// Eager modes store the slot's tag at every definition, exactly as the
  /// interpreter does.
  void eagerTagOnDef(uint32_t Slot) {
    if (!eagerMode() || !modeCoversSlot(Slot))
      return;
    emitTag(Slot, Vals[Slot].Type);
  }

  // --- Register allocation ---
  void bindReg(uint32_t Slot, Reg Rg) {
    Vals[Slot].Flags |= AVal::InReg;
    Vals[Slot].R = Rg;
    fileFor(Vals[Slot].Type).bind(Rg, Slot);
  }
  void clearReg(uint32_t Slot) {
    AVal &V = Vals[Slot];
    if (!V.inReg())
      return;
    fileFor(V.Type).unbind(V.R, Slot);
    V.Flags &= ~AVal::InReg;
    V.R = NoReg;
  }

  /// Spills every slot cached in \p Rg of class \p File and frees it.
  void spillReg(RegFile &File, Reg Rg) {
    // Copy: unbinding mutates the list.
    std::vector<uint32_t> Slots = File.Bound[Rg];
    for (uint32_t Slot : Slots) {
      AVal &V = Vals[Slot];
      assert(V.inReg() && V.R == Rg && "inconsistent register binding");
      if (!V.inMem()) {
        A.emit(isFp(V.Type) ? MOp::StSlotF : MOp::StSlot, Rg, 0, 0, 0,
               int64_t(Slot));
        V.Flags |= AVal::InMem;
      }
      File.unbind(Rg, Slot);
      V.Flags &= ~AVal::InReg;
      V.R = NoReg;
    }
  }

  Reg allocReg(ValType T, uint16_t Pins = 0) {
    RegFile &File = fileFor(T);
    Reg Rg = File.findFree(Pins);
    if (Rg != NoReg)
      return Rg;
    Rg = File.pickVictim(Pins);
    spillReg(File, Rg);
    return Rg;
  }
  /// Prefers \p Want if it is free (result-register reuse).
  Reg allocRegPrefer(ValType T, Reg Want, uint16_t Pins = 0) {
    if (Want != NoReg && Want < fileFor(T).NumAllocatable &&
        fileFor(T).isFree(Want))
      return Want;
    return allocReg(T, Pins);
  }

  static uint16_t pin(Reg Rg) {
    return Rg == NoReg ? 0 : uint16_t(1u << Rg);
  }

  /// Materializes the slot's value into a register of its class.
  Reg ensureInReg(uint32_t Slot, uint16_t Pins = 0) {
    AVal &V = Vals[Slot];
    if (V.inReg())
      return V.R;
    Reg Rg = allocReg(V.Type, Pins);
    if (V.isConst()) {
      A.emit(isFp(V.Type) ? MOp::MovFI : MOp::MovRI, Rg, 0, 0, 0,
             int64_t(V.Konst));
    } else {
      assert(V.inMem() && "value is nowhere");
      A.emit(isFp(V.Type) ? MOp::LdSlotF : MOp::LdSlot, Rg, 0, 0, 0,
             int64_t(Slot));
    }
    bindReg(Slot, Rg);
    return Rg;
  }

  // --- Stack ops ---
  void pushOperand(AVal V) {
    ++StackGen;
    Vals.push_back(V);
    if (V.inReg())
      fileFor(V.Type).bind(V.R, topSlot());
    eagerTagOnDef(topSlot());
  }
  void pushReg(ValType T, Reg Rg) {
    AVal V;
    V.Flags = AVal::InReg;
    V.Type = T;
    V.R = Rg;
    pushOperand(V);
  }
  void pushConst(ValType T, uint64_t Bits) {
    if (!Opts.TrackConstants) {
      Reg Rg = allocReg(T);
      A.emit(isFp(T) ? MOp::MovFI : MOp::MovRI, Rg, 0, 0, 0, int64_t(Bits));
      pushReg(T, Rg);
      return;
    }
    AVal V;
    V.Flags = AVal::IsConst;
    V.Type = T;
    V.Konst = Bits;
    pushOperand(V);
  }
  /// Pops the top operand, releasing its register binding.
  AVal popOperand() {
    ++StackGen;
    AVal V = Vals[topSlot()];
    clearReg(topSlot());
    Vals.pop_back();
    return V;
  }

  /// Ensures the slot's value (and, per mode, its tag) is in memory.
  void ensureSlotFlushed(uint32_t Slot) {
    AVal &V = Vals[Slot];
    if (!V.inMem()) {
      if (V.inReg()) {
        A.emit(isFp(V.Type) ? MOp::StSlotF : MOp::StSlot, V.R, 0, 0, 0,
               int64_t(Slot));
      } else {
        assert(V.isConst() && "value is nowhere");
        A.emit(MOp::MovRI, ScratchGp, 0, 0, 0, int64_t(V.Konst));
        A.emit(MOp::StSlot, ScratchGp, 0, 0, 0, int64_t(Slot));
      }
      V.Flags |= AVal::InMem;
    }
    if (modeCoversSlot(Slot) && !V.tagStored())
      emitTag(Slot, V.Type);
  }

  /// Full flush: every live slot's value and tag to memory (calls, generic
  /// probes, merges).
  void flushAll() {
    for (uint32_t Slot = 0; Slot < Vals.size(); ++Slot)
      ensureSlotFlushed(Slot);
  }

  /// Tag-only flush before potentially-trapping instructions: cheap at
  /// runtime (usually zero instructions in steady state).
  void flushTagsForTrap() {
    if (Opts.Tags == TagMode::None || Opts.Tags == TagMode::StackMap)
      return;
    if (eagerMode())
      return; // Tags are maintained at every definition already.
    for (uint32_t Slot = 0; Slot < Vals.size(); ++Slot) {
      AVal &V = Vals[Slot];
      if (modeCoversSlot(Slot) && !V.tagStored())
        emitTag(Slot, V.Type);
    }
  }

  /// Drops all register bindings (registers do not survive calls).
  void dropAllRegs() {
    for (uint32_t Slot = 0; Slot < Vals.size(); ++Slot) {
      AVal &V = Vals[Slot];
      V.Flags &= ~AVal::InReg;
      V.R = NoReg;
    }
    Gp.reset();
    Fp.reset();
  }

  /// Drops constant knowledge (loop entry over-approximation).
  void dropConsts() {
    for (AVal &V : Vals) {
      if (V.isConst()) {
        assert(V.inMem() && "dropping unspilled constant");
        V.Flags &= ~AVal::IsConst;
      }
    }
  }

  // --- Snapshots ---
  StateSnapshot snapshot() {
    StateSnapshot S;
    S.Vals = Vals;
    Code.Stats.SnapshotBytes += S.byteSize();
    return S;
  }
  void restoreSnapshot(const StateSnapshot &S) {
    Vals = S.Vals;
    Gp.reset();
    Fp.reset();
    for (uint32_t Slot = 0; Slot < Vals.size(); ++Slot)
      if (Vals[Slot].inReg())
        fileFor(Vals[Slot].Type).bind(Vals[Slot].R, Slot);
  }

  /// Rebuilds the all-in-memory state at a merge label.
  void rebuildMergeState(uint32_t BaseOperands,
                         const std::vector<ValType> &Pushed) {
    Vals.resize(NumLocals + BaseOperands);
    Gp.reset();
    Fp.reset();
    for (uint32_t Slot = 0; Slot < Vals.size(); ++Slot) {
      AVal &V = Vals[Slot];
      V.Flags = AVal::InMem;
      V.R = NoReg;
      V.MemTag = tagKnownAfterFlush(Slot) ? uint8_t(V.Type) : 0;
    }
    for (ValType T : Pushed) {
      AVal V;
      V.Flags = AVal::InMem;
      V.Type = T;
      Vals.push_back(V);
      Vals.back().MemTag =
          tagKnownAfterFlush(topSlot()) ? uint8_t(T) : 0;
    }
  }
  bool tagKnownAfterFlush(uint32_t Slot) const {
    return modeCoversSlot(Slot);
  }

  // --- Merge transfers ---
  /// Copies the top \p Arity operand values to target operand base
  /// \p TgtBase and flushes everything below. Mutates the state; callers
  /// branching conditionally snapshot around it.
  void emitMergeTransfer(uint32_t Arity, uint32_t TgtBase) {
    uint32_t SrcBase = operandCount() - Arity;
    assert(SrcBase >= TgtBase && "merge source below target");
    for (uint32_t J = 0; J < Arity; ++J) {
      uint32_t Src = NumLocals + SrcBase + J;
      uint32_t Dst = NumLocals + TgtBase + J;
      if (Src == Dst) {
        ensureSlotFlushed(Src);
        continue;
      }
      const AVal &V = Vals[Src];
      if (V.inReg()) {
        A.emit(isFp(V.Type) ? MOp::StSlotF : MOp::StSlot, V.R, 0, 0, 0,
               int64_t(Dst));
      } else if (V.isConst()) {
        A.emit(MOp::MovRI, ScratchGp, 0, 0, 0, int64_t(V.Konst));
        A.emit(MOp::StSlot, ScratchGp, 0, 0, 0, int64_t(Dst));
      } else {
        A.emit(MOp::LdSlot, ScratchGp, 0, 0, 0, int64_t(Src));
        A.emit(MOp::StSlot, ScratchGp, 0, 0, 0, int64_t(Dst));
      }
      if (modeCoversSlot(Dst))
        emitTag(Dst, V.Type); // Dst AVal is rewritten below/at the label.
    }
    // Flush locals and the stack below the target base.
    for (uint32_t Slot = 0; Slot < NumLocals + TgtBase; ++Slot)
      ensureSlotFlushed(Slot);
  }

  /// True when a conditional branch to \p C needs no merge code at all.
  bool isTrivialMerge(const Control &C, uint32_t Arity) {
    if (operandCount() != C.Base + Arity)
      return false;
    for (uint32_t Slot = 0; Slot < Vals.size(); ++Slot) {
      const AVal &V = Vals[Slot];
      if (!V.inMem())
        return false;
      if (modeCoversSlot(Slot) && !V.tagStored())
        return false;
    }
    return true;
  }

  /// Emits the flush/moves/jump for an unconditional branch to depth
  /// \p Depth. Marks forward targets as merged-into.
  void emitBranchTransfer(uint32_t Depth) {
    Control &C = Ctrl[Ctrl.size() - 1 - Depth];
    if (C.Kind == Opcode::Loop) {
      emitMergeTransfer(uint32_t(C.Params.size()), C.Base);
      A.jmp(C.Head);
      return;
    }
    emitMergeTransfer(uint32_t(C.Results.size()), C.Base);
    C.EndTargeted = true;
    A.jmp(C.End);
  }

  // --- Observation points ---
  void recordStackMapIfNeeded() {
    if (Opts.Tags != TagMode::StackMap)
      return;
    StackMapEntry E;
    E.Pc = A.pc();
    E.Height = operandCount();
    for (uint32_t Slot = 0; Slot < Vals.size(); ++Slot)
      if (isRefType(Vals[Slot].Type))
        E.RefSlots.push_back(Slot);
    Code.Stats.StackMapBytes += E.byteSize();
    Code.StackMaps.push_back(std::move(E));
  }

  void emitDeoptCheck(uint32_t Ip) {
    if (Opts.EmitDeoptChecks)
      A.emit(MOp::DeoptCheck, 0, 0, 0, 0, int64_t(Ip), int64_t(Stp));
  }
  void emitFuelCheck(uint32_t Ip) {
    if (Opts.EmitFuelChecks)
      A.emit(MOp::FuelCheck, 0, 0, 0, 0, int64_t(Ip), 0);
  }

  // --- Constant folding ---
  bool tryFoldBinop(Opcode Op, uint64_t Av, uint64_t Bv, uint64_t *Out);
  bool tryFoldUnop(Opcode Op, uint64_t Av, uint64_t *Out);

  // --- Peephole (compare + branch fusion) ---
  struct PendingCmp {
    bool Valid = false;
    bool Is64 = false;
    Cond C = Cond::Eq;
    Reg Lhs = NoReg;
    Reg Rhs = NoReg;
    bool RhsIsImm = false;
    int64_t Imm = 0;
    uint32_t InstPc = 0;
    uint32_t DstSlot = 0;
    uint64_t Gen = 0; ///< StackGen right after the result push.
  };
  PendingCmp LastCmp;
  /// Bumped on every operand push/pop. Fusion is only sound while the
  /// compare's result is still the live top of stack; checking slot
  /// *indices* alone false-positives when codeless ops (constant pushes,
  /// register rebinds on local.set, MR-cached local.gets) repopulate the
  /// same slot without advancing the instruction stream.
  uint64_t StackGen = 0;

  /// If the branch condition is the result of the immediately preceding
  /// integer compare, pops it and returns the fused condition.
  bool tryFuseCompare(PendingCmp *Out) {
    if (!Opts.Peephole || !LastCmp.Valid)
      return false;
    if (LastCmp.InstPc + 1 != A.pc() || LastCmp.DstSlot != topSlot() ||
        LastCmp.Gen != StackGen)
      return false;
    *Out = LastCmp;
    // Nop out the CmpSet; the operand registers still hold their values.
    Code.Insts[LastCmp.InstPc].Op = MOp::Nop;
    popOperand();
    LastCmp.Valid = false;
    return true;
  }
  void emitFusedBranch(const PendingCmp &P, bool Negated, Label L) {
    Cond C = Negated ? negate(P.C) : P.C;
    if (P.RhsIsImm) {
      if (P.Is64)
        A.brCmpI64(C, P.Lhs, P.Imm, L);
      else
        A.brCmpI32(C, P.Lhs, P.Imm, L);
    } else {
      if (P.Is64)
        A.brCmp64(C, P.Lhs, P.Rhs, L);
      else
        A.brCmp32(C, P.Lhs, P.Rhs, L);
    }
  }

  // --- Op family compilers ---
  void compileBinop(Opcode Op, ValType OpTy, ValType ResTy, MOp RegForm,
                    MOp ImmForm, bool Commutative);
  void compileUnop(Opcode Op, ValType InTy, ValType OutTy, MOp Form);
  void compileCmp(bool Is64, Cond C);
  void compileCmpF(bool Is64, FCond C);
  void compileDivRem(Opcode Op, bool Is64, MOp Form);
  void compileLoad(MOp Form, ValType ResTy);
  void compileStore(MOp Form);
  void compileSelect(Opcode Op);
  void compileCall(const FuncType &FT, bool Indirect, uint32_t CalleeOrType);
  void emitReturn();
  void handleProbe(uint32_t Ip);

  // --- Structure ---
  void compileOp(Opcode Op, uint32_t OpIp);
  void skipDeadOp(Opcode Op);
  void prologue();

  const Module &M;
  const FuncDecl &F;
  CompilerOptions Opts;
  const ProbeSiteOracle *Probes;
  MCode &Code;
  Assembler A;
  CodeReader R;

  std::vector<AVal> Vals;
  RegFile Gp, Fp;
  std::vector<Control> Ctrl;
  uint32_t NumLocals = 0;
  uint32_t Stp = 0;
  bool Live = true;
};

bool SPC::tryFoldBinop(Opcode Op, uint64_t Av, uint64_t Bv, uint64_t *Out) {
  uint32_t A32 = uint32_t(Av), B32 = uint32_t(Bv);
  switch (Op) {
  case Opcode::I32Add:
    *Out = uint32_t(A32 + B32);
    return true;
  case Opcode::I32Sub:
    *Out = uint32_t(A32 - B32);
    return true;
  case Opcode::I32Mul:
    *Out = uint32_t(A32 * B32);
    return true;
  case Opcode::I32And:
    *Out = A32 & B32;
    return true;
  case Opcode::I32Or:
    *Out = A32 | B32;
    return true;
  case Opcode::I32Xor:
    *Out = A32 ^ B32;
    return true;
  case Opcode::I32Shl:
    *Out = shl32(A32, B32);
    return true;
  case Opcode::I32ShrS:
    *Out = uint32_t(shrS32(int32_t(A32), B32));
    return true;
  case Opcode::I32ShrU:
    *Out = shrU32(A32, B32);
    return true;
  case Opcode::I32Rotl:
    *Out = rotl32(A32, B32);
    return true;
  case Opcode::I32Rotr:
    *Out = rotr32(A32, B32);
    return true;
  case Opcode::I32Eq:
    *Out = A32 == B32;
    return true;
  case Opcode::I32Ne:
    *Out = A32 != B32;
    return true;
  case Opcode::I32LtS:
    *Out = int32_t(A32) < int32_t(B32);
    return true;
  case Opcode::I32LtU:
    *Out = A32 < B32;
    return true;
  case Opcode::I32GtS:
    *Out = int32_t(A32) > int32_t(B32);
    return true;
  case Opcode::I32GtU:
    *Out = A32 > B32;
    return true;
  case Opcode::I32LeS:
    *Out = int32_t(A32) <= int32_t(B32);
    return true;
  case Opcode::I32LeU:
    *Out = A32 <= B32;
    return true;
  case Opcode::I32GeS:
    *Out = int32_t(A32) >= int32_t(B32);
    return true;
  case Opcode::I32GeU:
    *Out = A32 >= B32;
    return true;
  case Opcode::I64Add:
    *Out = Av + Bv;
    return true;
  case Opcode::I64Sub:
    *Out = Av - Bv;
    return true;
  case Opcode::I64Mul:
    *Out = Av * Bv;
    return true;
  case Opcode::I64And:
    *Out = Av & Bv;
    return true;
  case Opcode::I64Or:
    *Out = Av | Bv;
    return true;
  case Opcode::I64Xor:
    *Out = Av ^ Bv;
    return true;
  case Opcode::I64Shl:
    *Out = shl64(Av, Bv);
    return true;
  case Opcode::I64ShrS:
    *Out = uint64_t(shrS64(int64_t(Av), Bv));
    return true;
  case Opcode::I64ShrU:
    *Out = shrU64(Av, Bv);
    return true;
  case Opcode::I64Rotl:
    *Out = rotl64(Av, Bv);
    return true;
  case Opcode::I64Rotr:
    *Out = rotr64(Av, Bv);
    return true;
  case Opcode::I64Eq:
    *Out = Av == Bv;
    return true;
  case Opcode::I64Ne:
    *Out = Av != Bv;
    return true;
  case Opcode::I64LtS:
    *Out = int64_t(Av) < int64_t(Bv);
    return true;
  case Opcode::I64LtU:
    *Out = Av < Bv;
    return true;
  case Opcode::I64GtS:
    *Out = int64_t(Av) > int64_t(Bv);
    return true;
  case Opcode::I64GtU:
    *Out = Av > Bv;
    return true;
  case Opcode::I64LeS:
    *Out = int64_t(Av) <= int64_t(Bv);
    return true;
  case Opcode::I64LeU:
    *Out = Av <= Bv;
    return true;
  case Opcode::I64GeS:
    *Out = int64_t(Av) >= int64_t(Bv);
    return true;
  case Opcode::I64GeU:
    *Out = Av >= Bv;
    return true;
  default:
    return false; // Floats and trapping ops are not folded.
  }
}

bool SPC::tryFoldUnop(Opcode Op, uint64_t Av, uint64_t *Out) {
  uint32_t A32 = uint32_t(Av);
  switch (Op) {
  case Opcode::I32Eqz:
    *Out = A32 == 0;
    return true;
  case Opcode::I64Eqz:
    *Out = Av == 0;
    return true;
  case Opcode::I32Clz:
    *Out = clz32(A32);
    return true;
  case Opcode::I32Ctz:
    *Out = ctz32(A32);
    return true;
  case Opcode::I32Popcnt:
    *Out = popcnt32(A32);
    return true;
  case Opcode::I64Clz:
    *Out = clz64(Av);
    return true;
  case Opcode::I64Ctz:
    *Out = ctz64(Av);
    return true;
  case Opcode::I64Popcnt:
    *Out = popcnt64(Av);
    return true;
  case Opcode::I32WrapI64:
    *Out = A32;
    return true;
  case Opcode::I64ExtendI32S:
    *Out = uint64_t(int64_t(int32_t(A32)));
    return true;
  case Opcode::I64ExtendI32U:
    *Out = A32;
    return true;
  case Opcode::I32Extend8S:
    *Out = uint32_t(int32_t(int8_t(uint8_t(A32))));
    return true;
  case Opcode::I32Extend16S:
    *Out = uint32_t(int32_t(int16_t(uint16_t(A32))));
    return true;
  case Opcode::I64Extend8S:
    *Out = uint64_t(int64_t(int8_t(uint8_t(Av))));
    return true;
  case Opcode::I64Extend16S:
    *Out = uint64_t(int64_t(int16_t(uint16_t(Av))));
    return true;
  case Opcode::I64Extend32S:
    *Out = uint64_t(int64_t(int32_t(A32)));
    return true;
  default:
    return false;
  }
}

void SPC::compileBinop(Opcode Op, ValType OpTy, ValType ResTy, MOp RegForm,
                       MOp ImmForm, bool Commutative) {
  uint32_t Sb = topSlot(), Sa = topSlot() - 1;
  AVal Av = Vals[Sa], Bv = Vals[Sb];

  // Constant folding.
  uint64_t Folded;
  if (Opts.ConstantFolding && Av.isConst() && Bv.isConst() &&
      tryFoldBinop(Op, Av.Konst, Bv.Konst, &Folded)) {
    popOperand();
    popOperand();
    pushConst(ResTy, Folded);
    return;
  }

  // Algebraic identities / strength reduction on a constant rhs.
  if (Opts.ConstantFolding && Bv.isConst() && ResTy == OpTy) {
    uint64_t K = Bv.Konst;
    bool Is32 = OpTy == ValType::I32;
    uint64_t Zero = 0, One = 1;
    bool Identity = false;
    switch (Op) {
    case Opcode::I32Add:
    case Opcode::I64Add:
    case Opcode::I32Sub:
    case Opcode::I64Sub:
    case Opcode::I32Or:
    case Opcode::I64Or:
    case Opcode::I32Xor:
    case Opcode::I64Xor:
    case Opcode::I32Shl:
    case Opcode::I64Shl:
    case Opcode::I32ShrS:
    case Opcode::I64ShrS:
    case Opcode::I32ShrU:
    case Opcode::I64ShrU:
      Identity = K == Zero;
      break;
    case Opcode::I32Mul:
    case Opcode::I64Mul:
      Identity = K == One;
      if (K == Zero) { // x * 0 = 0 (mul has no side effects).
        popOperand();
        popOperand();
        pushConst(ResTy, 0);
        return;
      }
      break;
    default:
      break;
    }
    if (Identity) { // Result is just the lhs.
      popOperand();
      return;
    }
    // Multiply by power of two -> shift.
    if (Opts.InstructionSelect &&
        (Op == Opcode::I32Mul || Op == Opcode::I64Mul)) {
      uint64_t Kv = Is32 ? uint32_t(K) : K;
      if (Kv != 0 && (Kv & (Kv - 1)) == 0) {
        uint32_t Sh = Is32 ? ctz32(uint32_t(Kv)) : uint32_t(ctz64(Kv));
        popOperand(); // rhs const
        Reg Ra = ensureInReg(topSlot());
        AVal Ao = popOperand();
        Reg Rd = allocRegPrefer(ResTy, Ao.inReg() ? Ra : NoReg);
        A.emit(Is32 ? MOp::ShlI32 : MOp::ShlI64, Rd, Ra, 0, 0, int64_t(Sh));
        pushReg(ResTy, Rd);
        return;
      }
    }
  }

  // Immediate form selection (the register side becomes the lhs; for
  // commutative ops a constant lhs is swapped into the immediate).
  if (Opts.InstructionSelect && ImmForm != MOp::Nop) {
    uint32_t RegSlot = ~0u;
    uint64_t ImmVal = 0;
    if (Bv.isConst()) {
      RegSlot = Sa;
      ImmVal = Bv.Konst;
    } else if (Commutative && Av.isConst()) {
      RegSlot = Sb;
      ImmVal = Av.Konst;
    }
    if (RegSlot != ~0u) {
      Reg Ra = ensureInReg(RegSlot);
      popOperand();
      popOperand();
      Reg Rd = allocRegPrefer(ResTy, Ra);
      A.emit(ImmForm, Rd, Ra, 0, 0, int64_t(ImmVal));
      pushReg(ResTy, Rd);
      return;
    }
  }

  // Register-register form.
  Reg Ra = ensureInReg(Sa);
  Reg Rb = ensureInReg(Sb, pin(Ra));
  popOperand();
  popOperand();
  bool SameClass = isFp(ResTy) == isFp(OpTy);
  Reg Rd = allocRegPrefer(ResTy, SameClass ? Ra : NoReg);
  A.emit(RegForm, Rd, Ra, Rb);
  pushReg(ResTy, Rd);
}

void SPC::compileUnop(Opcode Op, ValType InTy, ValType OutTy, MOp Form) {
  AVal Av = Vals[topSlot()];
  uint64_t Folded;
  if (Opts.ConstantFolding && Av.isConst() &&
      tryFoldUnop(Op, Av.Konst, &Folded)) {
    popOperand();
    pushConst(OutTy, Folded);
    return;
  }
  Reg Ra = ensureInReg(topSlot());
  popOperand();
  bool SameClass = isFp(InTy) == isFp(OutTy);
  Reg Rd = allocRegPrefer(OutTy, SameClass ? Ra : NoReg);
  A.emit(Form, Rd, Ra);
  pushReg(OutTy, Rd);
}

void SPC::compileCmp(bool Is64, Cond C) {
  uint32_t Sb = topSlot(), Sa = topSlot() - 1;
  AVal Av = Vals[Sa], Bv = Vals[Sb];
  if (Opts.ConstantFolding && Av.isConst() && Bv.isConst()) {
    bool V = Is64 ? evalCond64(C, Av.Konst, Bv.Konst)
                  : evalCond32(C, uint32_t(Av.Konst), uint32_t(Bv.Konst));
    popOperand();
    popOperand();
    pushConst(ValType::I32, V);
    return;
  }
  PendingCmp P;
  P.Is64 = Is64;
  P.C = C;
  Reg Rd;
  if (Opts.InstructionSelect && Bv.isConst()) {
    Reg Ra = ensureInReg(Sa);
    popOperand();
    popOperand();
    Rd = allocRegPrefer(ValType::I32, Ra);
    P.InstPc = A.emit(Is64 ? MOp::CmpSetI64 : MOp::CmpSetI32, Rd, Ra, 0,
                      uint8_t(C), int64_t(Bv.Konst));
    P.Lhs = Ra;
    P.RhsIsImm = true;
    P.Imm = int64_t(Bv.Konst);
  } else {
    Reg Ra = ensureInReg(Sa);
    Reg Rb = ensureInReg(Sb, pin(Ra));
    popOperand();
    popOperand();
    Rd = allocRegPrefer(ValType::I32, Ra);
    P.InstPc =
        A.emit(Is64 ? MOp::CmpSet64 : MOp::CmpSet32, Rd, Ra, Rb, uint8_t(C));
    P.Lhs = Ra;
    P.Rhs = Rb;
  }
  pushReg(ValType::I32, Rd);
  P.Valid = Opts.Peephole;
  P.DstSlot = topSlot();
  P.Gen = StackGen;
  LastCmp = P;
}

void SPC::compileCmpF(bool Is64, FCond C) {
  uint32_t Sb = topSlot(), Sa = topSlot() - 1;
  Reg Ra = ensureInReg(Sa);
  Reg Rb = ensureInReg(Sb, pin(Ra));
  popOperand();
  popOperand();
  Reg Rd = allocReg(ValType::I32);
  A.emit(Is64 ? MOp::CmpSetF64 : MOp::CmpSetF32, Rd, Ra, Rb, uint8_t(C));
  pushReg(ValType::I32, Rd);
}

void SPC::compileDivRem(Opcode Op, bool Is64, MOp Form) {
  // Division can trap: tag observation point. Skip when the rhs constant
  // provably cannot trap.
  uint32_t Sb = topSlot();
  AVal Bv = Vals[Sb];
  bool CanTrap = true;
  if (Opts.TrackConstants && Bv.isConst()) {
    uint64_t K = Is64 ? Bv.Konst : uint32_t(Bv.Konst);
    bool IsSigned = Op == Opcode::I32DivS || Op == Opcode::I64DivS ||
                    Op == Opcode::I32RemS || Op == Opcode::I64RemS;
    uint64_t MinusOne = Is64 ? ~uint64_t(0) : uint64_t(uint32_t(-1));
    CanTrap = K == 0 || (IsSigned && K == MinusOne);
  }
  if (CanTrap)
    flushTagsForTrap();
  Reg Rb = ensureInReg(Sb);
  Reg Ra = ensureInReg(topSlot() - 1, pin(Rb));
  popOperand();
  popOperand();
  Reg Rd = allocRegPrefer(Is64 ? ValType::I64 : ValType::I32, Ra);
  A.emit(Form, Rd, Ra, Rb);
  pushReg(Is64 ? ValType::I64 : ValType::I32, Rd);
}

void SPC::compileLoad(MOp Form, ValType ResTy) {
  MemArg Arg = R.readMemArg();
  flushTagsForTrap();
  Reg Ra = ensureInReg(topSlot());
  popOperand();
  Reg Rd;
  if (isFp(ResTy)) {
    Rd = allocReg(ResTy);
  } else {
    Rd = allocRegPrefer(ResTy, Ra);
  }
  A.emit(Form, Rd, Ra, 0, 0, int64_t(Arg.Offset));
  pushReg(ResTy, Rd);
}

void SPC::compileStore(MOp Form) {
  MemArg Arg = R.readMemArg();
  flushTagsForTrap();
  Reg Rv = ensureInReg(topSlot());
  Reg Ra = ensureInReg(topSlot() - 1, pin(Rv));
  popOperand();
  popOperand();
  A.emit(Form, Rv, Ra, 0, 0, int64_t(Arg.Offset));
}

void SPC::compileSelect(Opcode Op) {
  if (Op == Opcode::SelectT) {
    uint32_t N = R.readU32();
    for (uint32_t I = 0; I < N; ++I)
      (void)R.readByte();
  }
  AVal Cv = Vals[topSlot()];
  if (Opts.ConstantFolding && Cv.isConst()) {
    popOperand(); // cond
    if (uint32_t(Cv.Konst) != 0) {
      popOperand(); // b; a is the result, already in place.
      return;
    }
    // The result is b, which moves down one slot. A memory-only b carries
    // no value in its AVal — its bits live in its *old* stack slot, and
    // the destination slot still holds a's stale spill — so materialize
    // it in a register first. The InMem claim is wrong at the new slot
    // either way.
    if (!Vals[topSlot()].inReg() && !Vals[topSlot()].isConst())
      ensureInReg(topSlot());
    AVal Bv = popOperand();
    Bv.Flags &= ~AVal::InMem;
    popOperand(); // a
    pushOperand(Bv);
    return;
  }
  Reg Rc = ensureInReg(topSlot());
  ValType T = Vals[topSlot() - 1].Type;
  Reg Rb = ensureInReg(topSlot() - 1, pin(Rc));
  Reg Ra = ensureInReg(topSlot() - 2, uint16_t(pin(Rc) | pin(Rb)));
  popOperand();
  popOperand();
  popOperand();
  // The destination must be writable: Ra may still be shared with a local
  // under multi-register allocation.
  Reg Rd = allocRegPrefer(T, Ra, uint16_t(pin(Rb) | pin(Rc)));
  if (Rd != Ra)
    A.emit(isFp(T) ? MOp::MovFF : MOp::MovRR, Rd, Ra);
  // if (cond) keep a; else result = b.
  Label Keep = A.newLabel();
  A.jmpIf(Rc, Keep);
  A.emit(isFp(T) ? MOp::MovFF : MOp::MovRR, Rd, Rb);
  A.bind(Keep);
  pushReg(T, Rd);
}

void SPC::compileCall(const FuncType &FT, bool Indirect, uint32_t CalleeOrType) {
  uint32_t NArgs = uint32_t(FT.Params.size());
  uint32_t NRes = uint32_t(FT.Results.size());
  Reg IdxReg = 0;
  if (Indirect) {
    flushTagsForTrap(); // Table checks can trap.
    Reg Ri = ensureInReg(topSlot());
    A.emit(MOp::MovRR, ScratchGp2, Ri);
    popOperand();
    IdxReg = ScratchGp2;
  }
  flushAll();
  uint32_t ArgBase = NumLocals + operandCount() - NArgs;
  A.emit(MOp::StSp, 0, 0, 0, 0, int64_t(ArgBase));
  dropAllRegs();
  // The map is keyed by the call instruction's pc (the next emitted one).
  recordStackMapIfNeeded();
  if (Indirect)
    A.emit(MOp::CallIndirect, IdxReg, 0, 0, 0, int64_t(CalleeOrType),
           int64_t(ArgBase));
  else
    A.emit(MOp::CallDirect, 0, 0, 0, 0, int64_t(CalleeOrType),
           int64_t(ArgBase));
  // Pop args, push results (in memory, tagged by the callee per mode).
  for (uint32_t I = 0; I < NArgs; ++I)
    popOperand();
  for (uint32_t I = 0; I < NRes; ++I) {
    AVal V;
    V.Flags = AVal::InMem;
    V.Type = FT.Results[I];
    Vals.push_back(V);
    Vals.back().MemTag =
        tagKnownAfterFlush(topSlot()) ? uint8_t(V.Type) : 0;
  }
  emitDeoptCheck(uint32_t(R.pc()));
}

void SPC::emitReturn() {
  uint32_t NRes = uint32_t(M.Types[F.TypeIdx].Results.size());
  uint32_t SrcBase = uint32_t(Vals.size()) - NRes;
  for (uint32_t J = 0; J < NRes; ++J) {
    uint32_t Src = SrcBase + J;
    uint32_t Dst = J;
    const AVal &V = Vals[Src];
    if (Src == Dst) {
      ensureSlotFlushed(Src);
    } else {
      if (V.inReg()) {
        A.emit(isFp(V.Type) ? MOp::StSlotF : MOp::StSlot, V.R, 0, 0, 0,
               int64_t(Dst));
      } else if (V.isConst()) {
        A.emit(MOp::MovRI, ScratchGp, 0, 0, 0, int64_t(V.Konst));
        A.emit(MOp::StSlot, ScratchGp, 0, 0, 0, int64_t(Dst));
      } else {
        A.emit(MOp::LdSlot, ScratchGp, 0, 0, 0, int64_t(Src));
        A.emit(MOp::StSlot, ScratchGp, 0, 0, 0, int64_t(Dst));
      }
      // Result tags are the callee's responsibility (operand coverage).
      if (Opts.Tags == TagMode::OnDemand || Opts.Tags == TagMode::Lazy ||
          Opts.Tags == TagMode::Eager ||
          Opts.Tags == TagMode::EagerOperands) {
        A.emit(MOp::StTag, uint8_t(V.Type), 0, 0, 0, int64_t(Dst));
        ++Code.Stats.TagStores;
      }
    }
  }
  A.emit(MOp::Ret);
}

void SPC::handleProbe(uint32_t Ip) {
  ProbeSiteKind Kind = Probes->classify(F.Index, Ip);
  if (Kind == ProbeSiteKind::None)
    return;
  if (Opts.OptimizeProbes && Kind == ProbeSiteKind::Counter) {
    // Emit the counter increment relocatable: the cell address is not
    // baked here but recorded as a patch point the engine resolves against
    // its probe registry at install time (machine/isa.h PatchKind).
    Code.Patches.push_back(
        {PatchKind::CounterCell, A.pc(), uint64_t(Ip)});
    A.emit(MOp::CntInc);
    return;
  }
  if (Opts.OptimizeProbes && Kind == ProbeSiteKind::TosReader &&
      operandCount() > 0) {
    uint32_t Tos = topSlot();
    Reg Rg = ensureInReg(Tos);
    ValType T = Vals[Tos].Type;
    A.emit(isFp(T) ? MOp::ProbeTosF : MOp::ProbeTosG, Rg, 0, 0, uint8_t(T),
           int64_t(Ip));
    return;
  }
  // Generic probe: full observation.
  flushAll();
  A.emit(MOp::StSp, 0, 0, 0, 0, int64_t(Vals.size()));
  A.emit(MOp::ProbeFire, 0, 0, 0, 0, int64_t(Ip));
}

void SPC::prologue() {
  Code.FuncIndex = F.Index;
  Code.FrameSlots = F.frameSlots();
  const FuncType &FT = M.Types[F.TypeIdx];
  // The function body behaves like a block producing the results.
  Control Root;
  Root.Kind = Opcode::Block;
  Root.Results = FT.Results;
  Root.End = A.newLabel();
  Ctrl.push_back(std::move(Root));
  uint32_t NParams = uint32_t(FT.Params.size());
  Vals.resize(NumLocals);
  for (uint32_t I = 0; I < NumLocals; ++I) {
    AVal &V = Vals[I];
    V.Type = F.LocalTypes[I];
    if (I < NParams) {
      V.Flags = AVal::InMem;
      V.MemTag = uint8_t(V.Type); // Tagged by the caller.
    } else if (Opts.TrackConstants) {
      V.Flags = AVal::IsConst;
      V.Konst = 0;
    } else {
      V.Flags = AVal::InMem;
    }
  }
  // Without constant tracking, declared locals must be zeroed eagerly.
  if (!Opts.TrackConstants && NumLocals > NParams)
    A.emit(MOp::ZeroSlots, 0, 0, 0, 0, int64_t(NParams),
           int64_t(NumLocals - NParams));
  // Eager modes write local tags up front (a definition).
  if (eagerMode()) {
    for (uint32_t I = 0; I < NumLocals; ++I)
      if (modeCoversSlot(I))
        emitTag(I, Vals[I].Type);
  }
  emitDeoptCheck(F.BodyStart);
}

void SPC::skipDeadOp(Opcode Op) {
  // Track STP in lockstep with the validator even for unreachable code.
  switch (Op) {
  case Opcode::If: {
    ++Stp;
    (void)R.readBlockType();
    Control C;
    C.Kind = Opcode::If;
    C.DeadEntry = true;
    Ctrl.push_back(std::move(C));
    return;
  }
  case Opcode::Block:
  case Opcode::Loop: {
    (void)R.readBlockType();
    Control C;
    C.Kind = Op;
    C.DeadEntry = true;
    Ctrl.push_back(std::move(C));
    return;
  }
  case Opcode::Else:
    if (Ctrl.back().DeadEntry) {
      ++Stp; // The validator still emitted the else-skip entry.
      return;
    }
    // Live-entry if whose then-arm ended dead: revive the else arm.
    // compileOp performs the STP accounting.
    compileOp(Op, uint32_t(R.pc()) - 1);
    return;
  case Opcode::Br:
  case Opcode::BrIf:
    ++Stp;
    (void)R.readU32();
    return;
  case Opcode::BrTable: {
    uint32_t N = R.readU32();
    for (uint32_t I = 0; I <= N; ++I)
      (void)R.readU32();
    Stp += N + 1;
    return;
  }
  case Opcode::End:
    if (Ctrl.back().DeadEntry) {
      Ctrl.pop_back();
      return; // Still dead.
    }
    compileOp(Op, uint32_t(R.pc()) - 1);
    return;
  default:
    R.skipImms(Op);
    return;
  }
}

void SPC::compileOp(Opcode Op, uint32_t) {
  switch (Op) {
  case Opcode::Nop:
    return;

  case Opcode::Unreachable:
    flushTagsForTrap();
    A.emit(MOp::TrapOp, 0, 0, 0, 0, int64_t(TrapReason::Unreachable));
    Live = false;
    return;

  case Opcode::Block:
  case Opcode::Loop: {
    BlockType BT = R.readBlockType();
    Control C;
    C.Kind = Op;
    if (BT.K == BlockType::OneResult) {
      C.Results.push_back(BT.Result);
    } else if (BT.K == BlockType::FuncTypeIdx) {
      C.Params = M.Types[BT.TypeIdx].Params;
      C.Results = M.Types[BT.TypeIdx].Results;
    }
    C.Base = operandCount() - uint32_t(C.Params.size());
    C.End = A.newLabel();
    if (Op == Opcode::Loop) {
      // Loop entry is a merge: spill everything, drop constants & regs.
      flushAll();
      dropAllRegs();
      dropConsts();
      C.Head = A.newLabel();
      A.bind(C.Head);
      // Order matters for fuel determinism: the check sits at the head so
      // both entry fallthrough and taken backedges charge, the OSR entry
      // lands AFTER it (the interpreter charged that arrival at its own
      // branch site before tiering up), and the deopt check follows so a
      // tiered-down frame resumes at the plain header ip, which the
      // interpreter tiers do not re-charge.
      emitFuelCheck(uint32_t(R.pc()));
      if (Opts.EmitOsrEntries)
        Code.OsrEntries.push_back(
            MCode::OsrEntry{uint32_t(R.pc()), Stp, A.pc()});
      emitDeoptCheck(uint32_t(R.pc()));
    }
    Ctrl.push_back(std::move(C));
    return;
  }

  case Opcode::If: {
    ++Stp; // The validator emitted the false-edge entry.
    BlockType BT = R.readBlockType();
    Control C;
    C.Kind = Opcode::If;
    if (BT.K == BlockType::OneResult) {
      C.Results.push_back(BT.Result);
    } else if (BT.K == BlockType::FuncTypeIdx) {
      C.Params = M.Types[BT.TypeIdx].Params;
      C.Results = M.Types[BT.TypeIdx].Results;
    }
    C.End = A.newLabel();
    AVal Cv = Vals[topSlot()];
    if (Opts.ConstantFolding && Cv.isConst()) {
      popOperand();
      C.FoldedCond = uint32_t(Cv.Konst) != 0 ? 1 : 0;
      C.Base = operandCount() - uint32_t(C.Params.size());
      if (C.FoldedCond == 0) {
        C.ElseSnap = snapshot();
        Live = false; // Then-arm is dead.
      }
      Ctrl.push_back(std::move(C));
      return;
    }
    C.Else = A.newLabel();
    PendingCmp P;
    if (tryFuseCompare(&P)) {
      emitFusedBranch(P, /*Negated=*/true, C.Else);
    } else {
      Reg Rc = ensureInReg(topSlot());
      popOperand();
      A.jmpIfZ(Rc, C.Else);
    }
    C.Base = operandCount() - uint32_t(C.Params.size());
    C.ElseSnap = snapshot();
    Ctrl.push_back(std::move(C));
    return;
  }

  case Opcode::Else: {
    ++Stp; // The else-skip entry.
    Control &C = Ctrl.back();
    assert(C.Kind == Opcode::If && !C.ElseSeen && "else without if");
    C.ElseSeen = true;
    if (Live) {
      emitMergeTransfer(uint32_t(C.Results.size()), C.Base);
      C.EndTargeted = true;
      A.jmp(C.End);
    }
    if (C.FoldedCond == 1) {
      Live = false; // Else-arm statically dead.
      return;
    }
    restoreSnapshot(C.ElseSnap);
    Live = true;
    if (C.FoldedCond == -1)
      A.bind(C.Else);
    return;
  }

  case Opcode::End: {
    Control C = std::move(Ctrl.back());
    Ctrl.pop_back();
    // An if without else has an implicit empty else-arm.
    if (C.Kind == Opcode::If && !C.ElseSeen && C.FoldedCond != 1) {
      if (C.FoldedCond == 0) {
        // Condition statically false and no else: state = entry snapshot.
        assert(!Live && "then-arm of folded-false if ended live");
        restoreSnapshot(C.ElseSnap);
        Live = true;
      } else {
        // Real false edge: merge the then-arm with the fallthrough.
        if (Live) {
          emitMergeTransfer(uint32_t(C.Results.size()), C.Base);
          C.EndTargeted = true;
          A.jmp(C.End);
        }
        A.bind(C.Else);
        restoreSnapshot(C.ElseSnap);
        Live = true;
      }
    }
    if (C.EndTargeted) {
      if (Live)
        emitMergeTransfer(uint32_t(C.Results.size()), C.Base);
      A.bind(C.End);
      rebuildMergeState(C.Base, C.Results);
      Live = true;
    }
    // Untargeted end: state flows through unchanged (fast path), or code
    // stays dead.
    if (Ctrl.empty()) {
      if (Live)
        emitReturn();
      Live = false;
      return;
    }
    return;
  }

  case Opcode::Br: {
    ++Stp;
    uint32_t Depth = R.readU32();
    emitBranchTransfer(Depth);
    Live = false;
    return;
  }

  case Opcode::BrIf: {
    ++Stp;
    uint32_t Depth = R.readU32();
    AVal Cv = Vals[topSlot()];
    if (Opts.ConstantFolding && Cv.isConst()) {
      popOperand();
      if (uint32_t(Cv.Konst) != 0) {
        emitBranchTransfer(Depth);
        Live = false;
      }
      return;
    }
    Control &C = Ctrl[Ctrl.size() - 1 - Depth];
    uint32_t Arity = uint32_t(
        (C.Kind == Opcode::Loop ? C.Params : C.Results).size());
    PendingCmp P;
    bool Fused = tryFuseCompare(&P);
    Reg Rc = NoReg;
    if (!Fused) {
      Rc = ensureInReg(topSlot());
      popOperand();
    }
    if (isTrivialMerge(C, Arity)) {
      Label Target = C.Kind == Opcode::Loop ? C.Head : C.End;
      if (C.Kind != Opcode::Loop)
        C.EndTargeted = true;
      if (Fused)
        emitFusedBranch(P, /*Negated=*/false, Target);
      else
        A.jmpIf(Rc, Target);
      return;
    }
    // Inverted skip: merge code runs only on the taken edge.
    Label Skip = A.newLabel();
    if (Fused)
      emitFusedBranch(P, /*Negated=*/true, Skip);
    else
      A.jmpIfZ(Rc, Skip);
    StateSnapshot Save = snapshot();
    emitBranchTransfer(Depth);
    restoreSnapshot(Save);
    A.bind(Skip);
    return;
  }

  case Opcode::BrTable: {
    uint32_t N = R.readU32();
    std::vector<uint32_t> Depths(N + 1);
    for (uint32_t I = 0; I <= N; ++I)
      Depths[I] = R.readU32();
    Stp += N + 1;
    Reg Ri = ensureInReg(topSlot());
    A.emit(MOp::MovRR, ScratchGp2, Ri);
    popOperand();
    flushAll(); // Unconditional transfer: mutate freely.
    // Per-target stubs perform the (memory) merge moves.
    std::vector<Label> Stubs(Depths.size());
    for (size_t I = 0; I < Depths.size(); ++I)
      Stubs[I] = A.newLabel();
    A.brTable(ScratchGp2, Stubs);
    for (size_t I = 0; I < Depths.size(); ++I) {
      A.bind(Stubs[I]);
      Control &C = Ctrl[Ctrl.size() - 1 - Depths[I]];
      uint32_t Arity = uint32_t(
          (C.Kind == Opcode::Loop ? C.Params : C.Results).size());
      uint32_t SrcBase = operandCount() - Arity;
      for (uint32_t J = 0; J < Arity; ++J) {
        uint32_t Src = NumLocals + SrcBase + J;
        uint32_t Dst = NumLocals + C.Base + J;
        if (Src == Dst)
          continue;
        A.emit(MOp::LdSlot, ScratchGp, 0, 0, 0, int64_t(Src));
        A.emit(MOp::StSlot, ScratchGp, 0, 0, 0, int64_t(Dst));
        if (modeCoversSlot(Dst)) {
          A.emit(MOp::StTag, uint8_t(Vals[Src].Type), 0, 0, 0, int64_t(Dst));
          ++Code.Stats.TagStores;
        }
      }
      if (C.Kind == Opcode::Loop) {
        A.jmp(C.Head);
      } else {
        C.EndTargeted = true;
        A.jmp(C.End);
      }
    }
    Live = false;
    return;
  }

  case Opcode::Return:
    emitReturn();
    Live = false;
    return;

  case Opcode::Call: {
    uint32_t Idx = R.readU32();
    compileCall(M.funcType(Idx), /*Indirect=*/false, Idx);
    return;
  }
  case Opcode::CallIndirect: {
    uint32_t TypeIdx = R.readU32();
    (void)R.readU32(); // Table index (0).
    compileCall(M.Types[TypeIdx], /*Indirect=*/true, TypeIdx);
    return;
  }

  case Opcode::Drop:
    popOperand();
    return;
  case Opcode::Select:
  case Opcode::SelectT:
    compileSelect(Op);
    return;

  case Opcode::LocalGet: {
    uint32_t Idx = R.readU32();
    AVal &L = Vals[Idx];
    if (L.isConst()) {
      AVal V;
      V.Flags = AVal::IsConst;
      V.Type = L.Type;
      V.Konst = L.Konst;
      pushOperand(V);
      return;
    }
    if (L.inReg()) {
      if (Opts.MultiRegister) {
        pushReg(L.Type, L.R);
        return;
      }
      Reg Rd = allocReg(L.Type, pin(L.R));
      A.emit(isFp(L.Type) ? MOp::MovFF : MOp::MovRR, Rd, L.R);
      pushReg(L.Type, Rd);
      return;
    }
    // In memory: load, and (with MR) also cache the local itself.
    Reg Rd = allocReg(L.Type);
    A.emit(isFp(L.Type) ? MOp::LdSlotF : MOp::LdSlot, Rd, 0, 0, 0,
           int64_t(Idx));
    if (Opts.MultiRegister)
      bindReg(Idx, Rd);
    pushReg(L.Type, Rd);
    return;
  }

  case Opcode::LocalSet:
  case Opcode::LocalTee: {
    uint32_t Idx = R.readU32();
    bool IsTee = Op == Opcode::LocalTee;
    AVal T = Vals[topSlot()];
    clearReg(Idx);
    AVal &L = Vals[Idx];
    L.Flags &= ~(AVal::InMem | AVal::IsConst);
    if (T.isConst()) {
      L.Flags |= AVal::IsConst;
      L.Konst = T.Konst;
      if (!IsTee)
        popOperand();
    } else if (T.inReg()) {
      if (IsTee) {
        if (Opts.MultiRegister) {
          bindReg(Idx, T.R);
        } else {
          Reg Rd = allocReg(L.Type, pin(T.R));
          A.emit(isFp(L.Type) ? MOp::MovFF : MOp::MovRR, Rd, T.R);
          bindReg(Idx, Rd);
        }
      } else {
        // Rebind the top's register to the local.
        clearReg(topSlot());
        Vals.pop_back();
        bindReg(Idx, T.R);
      }
    } else {
      // Top is only in memory: load it into a register for the local.
      Reg Rd = ensureInReg(topSlot());
      if (IsTee) {
        if (Opts.MultiRegister) {
          bindReg(Idx, Rd);
        } else {
          Reg Rd2 = allocReg(L.Type, pin(Rd));
          A.emit(isFp(L.Type) ? MOp::MovFF : MOp::MovRR, Rd2, Rd);
          bindReg(Idx, Rd2);
        }
      } else {
        clearReg(topSlot());
        Vals.pop_back();
        bindReg(Idx, Rd);
      }
    }
    eagerTagOnDef(Idx);
    return;
  }

  case Opcode::GlobalGet: {
    uint32_t Idx = R.readU32();
    ValType T = M.Globals[Idx].Type;
    Reg Rd = allocReg(T);
    A.emit(isFp(T) ? MOp::GlobGetF : MOp::GlobGet, Rd, 0, 0, 0, int64_t(Idx));
    pushReg(T, Rd);
    return;
  }
  case Opcode::GlobalSet: {
    uint32_t Idx = R.readU32();
    ValType T = M.Globals[Idx].Type;
    Reg Rv = ensureInReg(topSlot());
    popOperand();
    A.emit(isFp(T) ? MOp::GlobSetF : MOp::GlobSet, Rv, 0, 0, 0, int64_t(Idx));
    return;
  }

  case Opcode::I32Const:
    pushConst(ValType::I32, uint64_t(uint32_t(R.readS32())));
    return;
  case Opcode::I64Const:
    pushConst(ValType::I64, uint64_t(R.readS64()));
    return;
  case Opcode::F32Const:
    pushConst(ValType::F32, R.readF32Bits());
    return;
  case Opcode::F64Const:
    pushConst(ValType::F64, R.readF64Bits());
    return;

  case Opcode::MemorySize: {
    (void)R.readByte();
    Reg Rd = allocReg(ValType::I32);
    A.emit(MOp::MemSize, Rd);
    pushReg(ValType::I32, Rd);
    return;
  }
  case Opcode::MemoryGrow: {
    (void)R.readByte();
    Reg Ra = ensureInReg(topSlot());
    popOperand();
    Reg Rd = allocRegPrefer(ValType::I32, Ra);
    A.emit(MOp::MemGrow, Rd, Ra);
    pushReg(ValType::I32, Rd);
    return;
  }
  case Opcode::MemoryCopy: {
    (void)R.readByte();
    (void)R.readByte();
    flushTagsForTrap();
    Reg Rl = ensureInReg(topSlot());
    Reg Rs = ensureInReg(topSlot() - 1, pin(Rl));
    Reg Rd = ensureInReg(topSlot() - 2, uint16_t(pin(Rl) | pin(Rs)));
    popOperand();
    popOperand();
    popOperand();
    A.emit(MOp::MemCopy, Rd, Rs, Rl);
    return;
  }
  case Opcode::MemoryFill: {
    (void)R.readByte();
    flushTagsForTrap();
    Reg Rl = ensureInReg(topSlot());
    Reg Rv = ensureInReg(topSlot() - 1, pin(Rl));
    Reg Rd = ensureInReg(topSlot() - 2, uint16_t(pin(Rl) | pin(Rv)));
    popOperand();
    popOperand();
    popOperand();
    A.emit(MOp::MemFill, Rd, Rv, Rl);
    return;
  }

  case Opcode::RefNull: {
    uint8_t HeapTy = R.readByte();
    pushConst(HeapTy == 0x70 ? ValType::FuncRef : ValType::ExternRef, 0);
    return;
  }
  case Opcode::RefIsNull: {
    Reg Ra = ensureInReg(topSlot());
    popOperand();
    Reg Rd = allocRegPrefer(ValType::I32, Ra);
    A.emit(MOp::Eqz64, Rd, Ra);
    pushReg(ValType::I32, Rd);
    return;
  }
  case Opcode::RefFunc: {
    uint32_t Idx = R.readU32();
    pushConst(ValType::FuncRef, uint64_t(Idx) + 1);
    return;
  }

  default:
    break;
  }

  // Comparison, arithmetic, conversion and memory families.
  using V = ValType;
  switch (Op) {
  // --- i32 compares ---
  case Opcode::I32Eqz: {
    // eqz is a compare against 0 so the peephole can fuse it.
    AVal Av = Vals[topSlot()];
    if (Opts.ConstantFolding && Av.isConst()) {
      popOperand();
      pushConst(V::I32, uint32_t(Av.Konst) == 0);
      return;
    }
    Reg Ra = ensureInReg(topSlot());
    popOperand();
    Reg Rd = allocRegPrefer(V::I32, Ra);
    PendingCmp P;
    P.InstPc = A.emit(MOp::CmpSetI32, Rd, Ra, 0, uint8_t(Cond::Eq), 0);
    P.Lhs = Ra;
    P.RhsIsImm = true;
    P.Imm = 0;
    P.C = Cond::Eq;
    pushReg(V::I32, Rd);
    P.Valid = Opts.Peephole;
    P.DstSlot = topSlot();
    P.Gen = StackGen;
    LastCmp = P;
    return;
  }
  case Opcode::I32Eq:
    compileCmp(false, Cond::Eq);
    return;
  case Opcode::I32Ne:
    compileCmp(false, Cond::Ne);
    return;
  case Opcode::I32LtS:
    compileCmp(false, Cond::LtS);
    return;
  case Opcode::I32LtU:
    compileCmp(false, Cond::LtU);
    return;
  case Opcode::I32GtS:
    compileCmp(false, Cond::GtS);
    return;
  case Opcode::I32GtU:
    compileCmp(false, Cond::GtU);
    return;
  case Opcode::I32LeS:
    compileCmp(false, Cond::LeS);
    return;
  case Opcode::I32LeU:
    compileCmp(false, Cond::LeU);
    return;
  case Opcode::I32GeS:
    compileCmp(false, Cond::GeS);
    return;
  case Opcode::I32GeU:
    compileCmp(false, Cond::GeU);
    return;
  case Opcode::I64Eqz: {
    AVal Av = Vals[topSlot()];
    if (Opts.ConstantFolding && Av.isConst()) {
      popOperand();
      pushConst(V::I32, Av.Konst == 0);
      return;
    }
    Reg Ra = ensureInReg(topSlot());
    popOperand();
    Reg Rd = allocRegPrefer(V::I32, Ra);
    PendingCmp P;
    P.InstPc = A.emit(MOp::CmpSetI64, Rd, Ra, 0, uint8_t(Cond::Eq), 0);
    P.Is64 = true;
    P.Lhs = Ra;
    P.RhsIsImm = true;
    P.Imm = 0;
    P.C = Cond::Eq;
    pushReg(V::I32, Rd);
    P.Valid = Opts.Peephole;
    P.DstSlot = topSlot();
    P.Gen = StackGen;
    LastCmp = P;
    return;
  }
  case Opcode::I64Eq:
    compileCmp(true, Cond::Eq);
    return;
  case Opcode::I64Ne:
    compileCmp(true, Cond::Ne);
    return;
  case Opcode::I64LtS:
    compileCmp(true, Cond::LtS);
    return;
  case Opcode::I64LtU:
    compileCmp(true, Cond::LtU);
    return;
  case Opcode::I64GtS:
    compileCmp(true, Cond::GtS);
    return;
  case Opcode::I64GtU:
    compileCmp(true, Cond::GtU);
    return;
  case Opcode::I64LeS:
    compileCmp(true, Cond::LeS);
    return;
  case Opcode::I64LeU:
    compileCmp(true, Cond::LeU);
    return;
  case Opcode::I64GeS:
    compileCmp(true, Cond::GeS);
    return;
  case Opcode::I64GeU:
    compileCmp(true, Cond::GeU);
    return;
  case Opcode::F32Eq:
    compileCmpF(false, FCond::Eq);
    return;
  case Opcode::F32Ne:
    compileCmpF(false, FCond::Ne);
    return;
  case Opcode::F32Lt:
    compileCmpF(false, FCond::Lt);
    return;
  case Opcode::F32Gt:
    compileCmpF(false, FCond::Gt);
    return;
  case Opcode::F32Le:
    compileCmpF(false, FCond::Le);
    return;
  case Opcode::F32Ge:
    compileCmpF(false, FCond::Ge);
    return;
  case Opcode::F64Eq:
    compileCmpF(true, FCond::Eq);
    return;
  case Opcode::F64Ne:
    compileCmpF(true, FCond::Ne);
    return;
  case Opcode::F64Lt:
    compileCmpF(true, FCond::Lt);
    return;
  case Opcode::F64Gt:
    compileCmpF(true, FCond::Gt);
    return;
  case Opcode::F64Le:
    compileCmpF(true, FCond::Le);
    return;
  case Opcode::F64Ge:
    compileCmpF(true, FCond::Ge);
    return;

  // --- i32 arithmetic ---
  case Opcode::I32Add:
    compileBinop(Op, V::I32, V::I32, MOp::Add32, MOp::AddI32, true);
    return;
  case Opcode::I32Sub:
    compileBinop(Op, V::I32, V::I32, MOp::Sub32, MOp::Nop, false);
    return;
  case Opcode::I32Mul:
    compileBinop(Op, V::I32, V::I32, MOp::Mul32, MOp::MulI32, true);
    return;
  case Opcode::I32DivS:
    compileDivRem(Op, false, MOp::DivS32);
    return;
  case Opcode::I32DivU:
    compileDivRem(Op, false, MOp::DivU32);
    return;
  case Opcode::I32RemS:
    compileDivRem(Op, false, MOp::RemS32);
    return;
  case Opcode::I32RemU:
    compileDivRem(Op, false, MOp::RemU32);
    return;
  case Opcode::I32And:
    compileBinop(Op, V::I32, V::I32, MOp::And32, MOp::AndI32, true);
    return;
  case Opcode::I32Or:
    compileBinop(Op, V::I32, V::I32, MOp::Or32, MOp::OrI32, true);
    return;
  case Opcode::I32Xor:
    compileBinop(Op, V::I32, V::I32, MOp::Xor32, MOp::XorI32, true);
    return;
  case Opcode::I32Shl:
    compileBinop(Op, V::I32, V::I32, MOp::Shl32, MOp::ShlI32, false);
    return;
  case Opcode::I32ShrS:
    compileBinop(Op, V::I32, V::I32, MOp::ShrS32, MOp::ShrSI32, false);
    return;
  case Opcode::I32ShrU:
    compileBinop(Op, V::I32, V::I32, MOp::ShrU32, MOp::ShrUI32, false);
    return;
  case Opcode::I32Rotl:
    compileBinop(Op, V::I32, V::I32, MOp::Rotl32, MOp::Nop, false);
    return;
  case Opcode::I32Rotr:
    compileBinop(Op, V::I32, V::I32, MOp::Rotr32, MOp::Nop, false);
    return;
  case Opcode::I32Clz:
    compileUnop(Op, V::I32, V::I32, MOp::Clz32);
    return;
  case Opcode::I32Ctz:
    compileUnop(Op, V::I32, V::I32, MOp::Ctz32);
    return;
  case Opcode::I32Popcnt:
    compileUnop(Op, V::I32, V::I32, MOp::Popcnt32);
    return;

  // --- i64 arithmetic ---
  case Opcode::I64Add:
    compileBinop(Op, V::I64, V::I64, MOp::Add64, MOp::AddI64, true);
    return;
  case Opcode::I64Sub:
    compileBinop(Op, V::I64, V::I64, MOp::Sub64, MOp::Nop, false);
    return;
  case Opcode::I64Mul:
    compileBinop(Op, V::I64, V::I64, MOp::Mul64, MOp::MulI64, true);
    return;
  case Opcode::I64DivS:
    compileDivRem(Op, true, MOp::DivS64);
    return;
  case Opcode::I64DivU:
    compileDivRem(Op, true, MOp::DivU64);
    return;
  case Opcode::I64RemS:
    compileDivRem(Op, true, MOp::RemS64);
    return;
  case Opcode::I64RemU:
    compileDivRem(Op, true, MOp::RemU64);
    return;
  case Opcode::I64And:
    compileBinop(Op, V::I64, V::I64, MOp::And64, MOp::AndI64, true);
    return;
  case Opcode::I64Or:
    compileBinop(Op, V::I64, V::I64, MOp::Or64, MOp::OrI64, true);
    return;
  case Opcode::I64Xor:
    compileBinop(Op, V::I64, V::I64, MOp::Xor64, MOp::XorI64, true);
    return;
  case Opcode::I64Shl:
    compileBinop(Op, V::I64, V::I64, MOp::Shl64, MOp::ShlI64, false);
    return;
  case Opcode::I64ShrS:
    compileBinop(Op, V::I64, V::I64, MOp::ShrS64, MOp::ShrSI64, false);
    return;
  case Opcode::I64ShrU:
    compileBinop(Op, V::I64, V::I64, MOp::ShrU64, MOp::ShrUI64, false);
    return;
  case Opcode::I64Rotl:
    compileBinop(Op, V::I64, V::I64, MOp::Rotl64, MOp::Nop, false);
    return;
  case Opcode::I64Rotr:
    compileBinop(Op, V::I64, V::I64, MOp::Rotr64, MOp::Nop, false);
    return;
  case Opcode::I64Clz:
    compileUnop(Op, V::I64, V::I64, MOp::Clz64);
    return;
  case Opcode::I64Ctz:
    compileUnop(Op, V::I64, V::I64, MOp::Ctz64);
    return;
  case Opcode::I64Popcnt:
    compileUnop(Op, V::I64, V::I64, MOp::Popcnt64);
    return;

  // --- float arithmetic ---
  case Opcode::F32Add:
    compileBinop(Op, V::F32, V::F32, MOp::AddF32, MOp::Nop, false);
    return;
  case Opcode::F32Sub:
    compileBinop(Op, V::F32, V::F32, MOp::SubF32, MOp::Nop, false);
    return;
  case Opcode::F32Mul:
    compileBinop(Op, V::F32, V::F32, MOp::MulF32, MOp::Nop, false);
    return;
  case Opcode::F32Div:
    compileBinop(Op, V::F32, V::F32, MOp::DivF32, MOp::Nop, false);
    return;
  case Opcode::F32Min:
    compileBinop(Op, V::F32, V::F32, MOp::MinF32, MOp::Nop, false);
    return;
  case Opcode::F32Max:
    compileBinop(Op, V::F32, V::F32, MOp::MaxF32, MOp::Nop, false);
    return;
  case Opcode::F32Copysign:
    compileBinop(Op, V::F32, V::F32, MOp::CopysignF32, MOp::Nop, false);
    return;
  case Opcode::F32Abs:
    compileUnop(Op, V::F32, V::F32, MOp::AbsF32);
    return;
  case Opcode::F32Neg:
    compileUnop(Op, V::F32, V::F32, MOp::NegF32);
    return;
  case Opcode::F32Ceil:
    compileUnop(Op, V::F32, V::F32, MOp::CeilF32);
    return;
  case Opcode::F32Floor:
    compileUnop(Op, V::F32, V::F32, MOp::FloorF32);
    return;
  case Opcode::F32Trunc:
    compileUnop(Op, V::F32, V::F32, MOp::TruncF32);
    return;
  case Opcode::F32Nearest:
    compileUnop(Op, V::F32, V::F32, MOp::NearestF32);
    return;
  case Opcode::F32Sqrt:
    compileUnop(Op, V::F32, V::F32, MOp::SqrtF32);
    return;
  case Opcode::F64Add:
    compileBinop(Op, V::F64, V::F64, MOp::AddF64, MOp::Nop, false);
    return;
  case Opcode::F64Sub:
    compileBinop(Op, V::F64, V::F64, MOp::SubF64, MOp::Nop, false);
    return;
  case Opcode::F64Mul:
    compileBinop(Op, V::F64, V::F64, MOp::MulF64, MOp::Nop, false);
    return;
  case Opcode::F64Div:
    compileBinop(Op, V::F64, V::F64, MOp::DivF64, MOp::Nop, false);
    return;
  case Opcode::F64Min:
    compileBinop(Op, V::F64, V::F64, MOp::MinF64, MOp::Nop, false);
    return;
  case Opcode::F64Max:
    compileBinop(Op, V::F64, V::F64, MOp::MaxF64, MOp::Nop, false);
    return;
  case Opcode::F64Copysign:
    compileBinop(Op, V::F64, V::F64, MOp::CopysignF64, MOp::Nop, false);
    return;
  case Opcode::F64Abs:
    compileUnop(Op, V::F64, V::F64, MOp::AbsF64);
    return;
  case Opcode::F64Neg:
    compileUnop(Op, V::F64, V::F64, MOp::NegF64);
    return;
  case Opcode::F64Ceil:
    compileUnop(Op, V::F64, V::F64, MOp::CeilF64);
    return;
  case Opcode::F64Floor:
    compileUnop(Op, V::F64, V::F64, MOp::FloorF64);
    return;
  case Opcode::F64Trunc:
    compileUnop(Op, V::F64, V::F64, MOp::TruncF64);
    return;
  case Opcode::F64Nearest:
    compileUnop(Op, V::F64, V::F64, MOp::NearestF64);
    return;
  case Opcode::F64Sqrt:
    compileUnop(Op, V::F64, V::F64, MOp::SqrtF64);
    return;

  // --- conversions ---
  case Opcode::I32WrapI64:
    compileUnop(Op, V::I64, V::I32, MOp::Wrap64);
    return;
  case Opcode::I64ExtendI32S:
    compileUnop(Op, V::I32, V::I64, MOp::ExtS3264);
    return;
  case Opcode::I64ExtendI32U:
    compileUnop(Op, V::I32, V::I64, MOp::Wrap64);
    return;
  case Opcode::I32Extend8S:
    compileUnop(Op, V::I32, V::I32, MOp::Ext8S32);
    return;
  case Opcode::I32Extend16S:
    compileUnop(Op, V::I32, V::I32, MOp::Ext16S32);
    return;
  case Opcode::I64Extend8S:
    compileUnop(Op, V::I64, V::I64, MOp::Ext8S64);
    return;
  case Opcode::I64Extend16S:
    compileUnop(Op, V::I64, V::I64, MOp::Ext16S64);
    return;
  case Opcode::I64Extend32S:
    compileUnop(Op, V::I64, V::I64, MOp::Ext32S64);
    return;
  case Opcode::I32TruncF32S:
    flushTagsForTrap();
    compileUnop(Op, V::F32, V::I32, MOp::TruncF32I32S);
    return;
  case Opcode::I32TruncF32U:
    flushTagsForTrap();
    compileUnop(Op, V::F32, V::I32, MOp::TruncF32I32U);
    return;
  case Opcode::I32TruncF64S:
    flushTagsForTrap();
    compileUnop(Op, V::F64, V::I32, MOp::TruncF64I32S);
    return;
  case Opcode::I32TruncF64U:
    flushTagsForTrap();
    compileUnop(Op, V::F64, V::I32, MOp::TruncF64I32U);
    return;
  case Opcode::I64TruncF32S:
    flushTagsForTrap();
    compileUnop(Op, V::F32, V::I64, MOp::TruncF32I64S);
    return;
  case Opcode::I64TruncF32U:
    flushTagsForTrap();
    compileUnop(Op, V::F32, V::I64, MOp::TruncF32I64U);
    return;
  case Opcode::I64TruncF64S:
    flushTagsForTrap();
    compileUnop(Op, V::F64, V::I64, MOp::TruncF64I64S);
    return;
  case Opcode::I64TruncF64U:
    flushTagsForTrap();
    compileUnop(Op, V::F64, V::I64, MOp::TruncF64I64U);
    return;
  case Opcode::I32TruncSatF32S:
    compileUnop(Op, V::F32, V::I32, MOp::TruncSatF32I32S);
    return;
  case Opcode::I32TruncSatF32U:
    compileUnop(Op, V::F32, V::I32, MOp::TruncSatF32I32U);
    return;
  case Opcode::I32TruncSatF64S:
    compileUnop(Op, V::F64, V::I32, MOp::TruncSatF64I32S);
    return;
  case Opcode::I32TruncSatF64U:
    compileUnop(Op, V::F64, V::I32, MOp::TruncSatF64I32U);
    return;
  case Opcode::I64TruncSatF32S:
    compileUnop(Op, V::F32, V::I64, MOp::TruncSatF32I64S);
    return;
  case Opcode::I64TruncSatF32U:
    compileUnop(Op, V::F32, V::I64, MOp::TruncSatF32I64U);
    return;
  case Opcode::I64TruncSatF64S:
    compileUnop(Op, V::F64, V::I64, MOp::TruncSatF64I64S);
    return;
  case Opcode::I64TruncSatF64U:
    compileUnop(Op, V::F64, V::I64, MOp::TruncSatF64I64U);
    return;
  case Opcode::F32ConvertI32S:
    compileUnop(Op, V::I32, V::F32, MOp::ConvI32SF32);
    return;
  case Opcode::F32ConvertI32U:
    compileUnop(Op, V::I32, V::F32, MOp::ConvI32UF32);
    return;
  case Opcode::F32ConvertI64S:
    compileUnop(Op, V::I64, V::F32, MOp::ConvI64SF32);
    return;
  case Opcode::F32ConvertI64U:
    compileUnop(Op, V::I64, V::F32, MOp::ConvI64UF32);
    return;
  case Opcode::F64ConvertI32S:
    compileUnop(Op, V::I32, V::F64, MOp::ConvI32SF64);
    return;
  case Opcode::F64ConvertI32U:
    compileUnop(Op, V::I32, V::F64, MOp::ConvI32UF64);
    return;
  case Opcode::F64ConvertI64S:
    compileUnop(Op, V::I64, V::F64, MOp::ConvI64SF64);
    return;
  case Opcode::F64ConvertI64U:
    compileUnop(Op, V::I64, V::F64, MOp::ConvI64UF64);
    return;
  case Opcode::F32DemoteF64:
    compileUnop(Op, V::F64, V::F32, MOp::DemoteF64);
    return;
  case Opcode::F64PromoteF32:
    compileUnop(Op, V::F32, V::F64, MOp::PromoteF32);
    return;
  case Opcode::I32ReinterpretF32:
    compileUnop(Op, V::F32, V::I32, MOp::RintFG32);
    return;
  case Opcode::I64ReinterpretF64:
    compileUnop(Op, V::F64, V::I64, MOp::RintFG64);
    return;
  case Opcode::F32ReinterpretI32:
    compileUnop(Op, V::I32, V::F32, MOp::RintGF32);
    return;
  case Opcode::F64ReinterpretI64:
    compileUnop(Op, V::I64, V::F64, MOp::RintGF64);
    return;

  // --- memory ---
  case Opcode::I32Load:
    compileLoad(MOp::LdM32, V::I32);
    return;
  case Opcode::I64Load:
    compileLoad(MOp::LdM64, V::I64);
    return;
  case Opcode::F32Load:
    compileLoad(MOp::LdMF32, V::F32);
    return;
  case Opcode::F64Load:
    compileLoad(MOp::LdMF64, V::F64);
    return;
  case Opcode::I32Load8S:
    compileLoad(MOp::LdM8S32, V::I32);
    return;
  case Opcode::I32Load8U:
    compileLoad(MOp::LdM8U32, V::I32);
    return;
  case Opcode::I32Load16S:
    compileLoad(MOp::LdM16S32, V::I32);
    return;
  case Opcode::I32Load16U:
    compileLoad(MOp::LdM16U32, V::I32);
    return;
  case Opcode::I64Load8S:
    compileLoad(MOp::LdM8S64, V::I64);
    return;
  case Opcode::I64Load8U:
    compileLoad(MOp::LdM8U64, V::I64);
    return;
  case Opcode::I64Load16S:
    compileLoad(MOp::LdM16S64, V::I64);
    return;
  case Opcode::I64Load16U:
    compileLoad(MOp::LdM16U64, V::I64);
    return;
  case Opcode::I64Load32S:
    compileLoad(MOp::LdM32S64, V::I64);
    return;
  case Opcode::I64Load32U:
    compileLoad(MOp::LdM32U64, V::I64);
    return;
  case Opcode::I32Store:
    compileStore(MOp::StM32);
    return;
  case Opcode::I64Store:
    compileStore(MOp::StM64);
    return;
  case Opcode::F32Store:
    compileStore(MOp::StMF32);
    return;
  case Opcode::F64Store:
    compileStore(MOp::StMF64);
    return;
  case Opcode::I32Store8:
    compileStore(MOp::StM8);
    return;
  case Opcode::I32Store16:
    compileStore(MOp::StM16);
    return;
  case Opcode::I64Store8:
    compileStore(MOp::StM8);
    return;
  case Opcode::I64Store16:
    compileStore(MOp::StM16);
    return;
  case Opcode::I64Store32:
    compileStore(MOp::StM32);
    return;

  default:
    assert(false && "unhandled opcode in single-pass compiler");
    A.emit(MOp::TrapOp, 0, 0, 0, 0, int64_t(TrapReason::Unreachable));
    Live = false;
    return;
  }
}

void SPC::run() {
  prologue();
  while (R.pc() < F.BodyEnd) {
    uint32_t OpIp = uint32_t(R.pc());
    Opcode Op = R.readOpcode();
    if (!Live) {
      skipDeadOp(Op);
      continue;
    }
    // Probe sites are observation points compiled before the instruction.
    if (Probes)
      handleProbe(OpIp);
    Code.noteLine(OpIp);
    compileOp(Op, OpIp);
  }
  assert(Ctrl.empty() && "unbalanced control stack");
  Code.Stats.CodeInsts = Code.Insts.size();
  Code.Stats.InputBytes = F.BodyEnd - F.BodyStart;
}

} // namespace

std::unique_ptr<MCode> wisp::compileFunction(const Module &M,
                                             const FuncDecl &F,
                                             const CompilerOptions &Opts,
                                             const ProbeSiteOracle *Probes) {
  auto Code = std::make_unique<MCode>();
  auto Start = std::chrono::steady_clock::now();
  SPC Compiler(M, F, Opts, Probes, *Code);
  Compiler.run();
  auto End = std::chrono::steady_clock::now();
  Code->Stats.TimeNs = uint64_t(
      std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
          .count());
  return Code;
}
