//===- spc/compiler.h - single-pass baseline compiler -----------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-pass compiler (the paper's Wizard-SPC): one forward pass of
/// abstract interpretation over the bytecode, emitting machine code as it
/// goes. The abstract state tracks, per slot: register residency, constant
/// values, memory (spill) residency, and the tag byte currently in the tag
/// lane. All of the paper's optimizations are implemented behind
/// CompilerOptions flags:
///
///   - forward-pass register allocation with multi-register slots (MR),
///   - constant tracking (K), constant/branch folding (KF),
///   - instruction selection of immediate forms (ISEL),
///   - compare+branch peephole fusion,
///   - value-tag strategies: eager / on-demand / lazy / none / stackmaps,
///   - probe intrinsification (counter increments, direct TOS calls),
///   - OSR entries at loop headers and deopt checks at observation points.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_SPC_COMPILER_H
#define WISP_SPC_COMPILER_H

#include "machine/isa.h"
#include "spc/options.h"
#include "wasm/module.h"

#include <memory>

namespace wisp {

/// Compiles one function. \p Probes may be null (no instrumentation).
/// Returns the machine code with compile statistics filled in.
std::unique_ptr<MCode> compileFunction(const Module &M, const FuncDecl &F,
                                       const CompilerOptions &Opts,
                                       const ProbeSiteOracle *Probes = nullptr);

} // namespace wisp

#endif // WISP_SPC_COMPILER_H
