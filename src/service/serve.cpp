//===- service/serve.cpp - persistent service mode --------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "service/serve.h"

#include "analysis/analysis.h"
#include "engine/registry.h"
#include "support/clock.h"
#include "support/format.h"
#include "wasm/reader.h"
#include "wasm/validator.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

namespace wisp {

namespace {

/// One admitted job flowing reader -> queue -> worker.
struct ServeJob {
  BatchJob Job;
  uint64_t Seq = 0;      ///< Acceptance order; indexes ServeStats latencies.
  double EnqueueMs = 0;  ///< Admission timestamp; latency is done - this.
};

/// The admission queue. Unlike the batch runner's queue, the submission
/// side never blocks: tryPush() fails on a full queue and the reader sheds
/// the job with a reject line. Workers block on pop() until close().
class ServeQueue {
public:
  explicit ServeQueue(size_t Cap) : Cap(Cap ? Cap : 1) {}

  bool tryPush(ServeJob J) {
    {
      std::lock_guard<std::mutex> L(Mu);
      if (Closed || Q.size() >= Cap)
        return false;
      Q.push_back(std::move(J));
    }
    NotEmpty.notify_one();
    return true;
  }

  void close() {
    std::lock_guard<std::mutex> L(Mu);
    Closed = true;
    NotEmpty.notify_all();
  }

  bool pop(ServeJob *Out) {
    std::unique_lock<std::mutex> L(Mu);
    NotEmpty.wait(L, [&] { return !Q.empty() || Closed; });
    if (Q.empty())
      return false;
    *Out = std::move(Q.front());
    Q.pop_front();
    return true;
  }

private:
  std::mutex Mu;
  std::condition_variable NotEmpty;
  std::deque<ServeJob> Q;
  size_t Cap;
  bool Closed = false;
};

/// Resolved-module cache shared by the workers: suite generation
/// materializes a whole suite per call, so each distinct
/// (module, scale, m0) spec resolves once per session and every repeat is
/// a map lookup. Bytes are handed out through shared ownership — an entry
/// may be evicted-by-nothing (the cache only grows; specs are few) while
/// a worker still loads from it.
class ModuleCache {
public:
  bool resolve(const BatchJob &Job, std::shared_ptr<std::vector<uint8_t>> *Out,
               std::string *Err) {
    std::string Key =
        strFormat("%s\x1f%d\x1f%d", Job.Module.c_str(), Job.Scale,
                  int(Job.UseM0));
    std::lock_guard<std::mutex> L(Mu);
    auto It = Map.find(Key);
    if (It != Map.end()) {
      *Out = It->second;
      return true;
    }
    auto Bytes = std::make_shared<std::vector<uint8_t>>();
    if (!resolveModuleSpec(Job.Module, Job.Scale, Job.UseM0, Bytes.get(),
                           Err))
      return false;
    Map.emplace(std::move(Key), Bytes);
    *Out = std::move(Bytes);
    return true;
  }

private:
  std::mutex Mu;
  std::map<std::string, std::shared_ptr<std::vector<uint8_t>>> Map;
};

/// Deterministic per-worker fault plan for one job.
struct FaultPlan {
  uint64_t TinyFuel = 0;   ///< Non-zero: override the job's fuel budget.
  int64_t MemFault = -1;   ///< >= 0: arm the allocation-failure countdown.
  int CancelAfterUs = -1;  ///< >= 0: concurrent cancel() after this delay.
  bool any() const {
    return TinyFuel || MemFault >= 0 || CancelAfterUs >= 0;
  }
};

/// Everything one worker keeps warm across its jobs.
struct ServeWorker {
  /// Warm engines, one per configuration this worker has served. Each is
  /// constructed governed (Interruptible set) so fuel/deadline check
  /// sites are compiled into every artifact it ever produces; per-job
  /// budgets then only flip Engine::setGovernance.
  std::map<std::string, std::unique_ptr<Engine>> Engines;
  InstancePool Pool;
  uint64_t Lcg = 0; ///< Fault-injection stream; 0 = injection off.
};

uint64_t lcgNext(uint64_t &X) {
  X = X * 6364136223846793005ULL + 1442695040888963407ULL;
  return X >> 16;
}

FaultPlan planFaults(ServeWorker &W) {
  FaultPlan P;
  if (!W.Lcg)
    return P;
  uint64_t R = lcgNext(W.Lcg);
  switch (R % 8) {
  case 0: // Tiny fuel budget: the job almost certainly exhausts.
    P.TinyFuel = 1 + (lcgNext(W.Lcg) % 16);
    break;
  case 1: // Allocation failure soon: load or grow must fail cleanly.
    P.MemFault = int64_t(lcgNext(W.Lcg) % 4);
    break;
  case 2: // Concurrent cancellation racing the invoke.
    P.CancelAfterUs = int(lcgNext(W.Lcg) % 2500);
    break;
  default:
    break;
  }
  return P;
}

/// The serve analogue of the batch runner's runOneJob, against warm
/// state: same load/lookup/parse/invoke/recycle sequence, but the engine,
/// compile cache and instance pool outlive the job. Returns the body of
/// the done line (everything after "done <id> ").
std::string runServeJob(ServeWorker &W, const ServeOptions &Opts,
                        CompileCache &Cache, ModuleCache &Modules,
                        const BatchJob &Job, bool *Trapped, bool *Errored,
                        uint64_t *Faults) {
  std::string Err;
  std::shared_ptr<std::vector<uint8_t>> Bytes;
  if (!Modules.resolve(Job, &Bytes, &Err)) {
    *Errored = true;
    return strFormat("error: %s", Err.c_str());
  }

  std::unique_ptr<Engine> &Slot = W.Engines[Job.Config];
  if (!Slot) {
    EngineConfig Cfg = configByName(Job.Config);
    Cfg.UseCompileCache = true;
    Cfg.PoolInstances = true;
    Cfg.DiskCacheDir = Opts.CacheDir;
    Cfg.UseDiskCache = Opts.DiskCache;
    // Governed from birth: check-site emission is a construction-time
    // decision (see Engine::setGovernance), and a serve engine must be
    // able to meter any later job.
    Cfg.Interruptible = true;
    Cfg.MaxCallDepth = Opts.MaxCallDepth;
    Cfg.MaxMemoryPages = Opts.MaxMemoryPages;
    Cfg.MaxTableElems = Opts.MaxTableElems;
    Slot = std::make_unique<Engine>(Cfg, &Cache, &W.Pool);
    installGcHostFuncs(*Slot);
  }
  Engine &E = *Slot;

  uint64_t Fuel = Job.Fuel ? Job.Fuel : Opts.DefaultFuel;
  uint32_t DeadlineMs = Job.DeadlineMs ? Job.DeadlineMs
                                       : Opts.DefaultDeadlineMs;
  FaultPlan Plan = planFaults(W);
  if (Plan.any())
    ++*Faults;
  if (Plan.TinyFuel)
    Fuel = Plan.TinyFuel;
  E.setGovernance(Fuel, DeadlineMs);
  // The countdown is process-global, so an armed fault may land on a
  // neighbouring worker's allocation instead of this job's — fine for a
  // stress harness: whoever draws it must fail cleanly and still report.
  if (Plan.MemFault >= 0)
    setMemoryFaultCountdown(Plan.MemFault);

  std::string Body;
  WasmError LoadErr;
  std::unique_ptr<LoadedModule> LM = E.load(*Bytes, &LoadErr);
  if (!LM) {
    *Errored = true;
    Body = strFormat("error: load failed: %s", LoadErr.Message.c_str());
  } else if (FuncInstance *F = LM->Inst->findExportedFunc(Job.Invoke)) {
    const std::vector<ValType> &Params = F->Type->Params;
    if (Job.RawArgs.size() != Params.size()) {
      *Errored = true;
      Body = strFormat("error: '%s' takes %zu argument(s), got %zu",
                       Job.Invoke.c_str(), Params.size(), Job.RawArgs.size());
    } else {
      std::vector<Value> Args;
      bool ArgsOk = true;
      for (size_t I = 0; I < Params.size() && ArgsOk; ++I) {
        Value V;
        if (parseValueText(Job.RawArgs[I], Params[I], &V)) {
          Args.push_back(V);
        } else {
          *Errored = true;
          ArgsOk = false;
          Body = strFormat("error: cannot parse argument %zu '%s' as %s",
                           I + 1, Job.RawArgs[I].c_str(),
                           valTypeName(Params[I]));
        }
      }
      if (ArgsOk) {
        // The cancellation fault races a real cancel() against the
        // invoke, exactly like an operator killing a stuck job; joined
        // before the result line so reporting stays exactly-once.
        std::thread Canceller;
        if (Plan.CancelAfterUs >= 0)
          Canceller = std::thread([&E, Us = Plan.CancelAfterUs] {
            std::this_thread::sleep_for(std::chrono::microseconds(Us));
            E.cancel();
          });
        std::vector<Value> Results;
        TrapReason Trap = E.invoke(*LM, Job.Invoke, Args, &Results);
        if (Canceller.joinable())
          Canceller.join();
        if (Trap != TrapReason::None) {
          *Trapped = true;
          Body = strFormat("trap: %s", trapReasonName(Trap));
        } else {
          Body = "= ";
          if (Results.empty())
            Body += "<void>";
          for (size_t V = 0; V < Results.size(); ++V) {
            if (V)
              Body += ", ";
            Body += valueText(Results[V]);
          }
        }
      }
    }
  } else {
    *Errored = true;
    Body = strFormat("error: no exported function '%s'", Job.Invoke.c_str());
  }
  if (Plan.MemFault >= 0)
    setMemoryFaultCountdown(-1); // Bound the blast radius to ~this job.
  if (LM)
    E.recycle(std::move(LM));
  return Body;
}

/// Reader-thread admission precheck: decides once per distinct
/// (module spec, invoke) whether the job's static bounds prove it cannot
/// complete under the session caps, and memoizes the decision so repeat
/// jobs — the steady state of a serve session — cost one map lookup. A
/// spec that fails to resolve/decode/validate is NOT rejected here: the
/// worker path owns those error reports.
class StaticPrecheck {
public:
  bool reject(const BatchJob &Job, ModuleCache &Modules,
              const ServeOptions &Opts, std::string *Reason) {
    std::string Key =
        strFormat("%s\x1f%d\x1f%d\x1f%s", Job.Module.c_str(), Job.Scale,
                  int(Job.UseM0), Job.Invoke.c_str());
    auto It = Memo.find(Key);
    if (It == Memo.end()) {
      std::pair<bool, std::string> Decision{false, std::string()};
      std::shared_ptr<std::vector<uint8_t>> Bytes;
      std::string Err;
      if (Modules.resolve(Job, &Bytes, &Err)) {
        WasmError WErr;
        std::unique_ptr<Module> M = decodeModule(*Bytes, &WErr);
        if (M && validateModule(*M, &WErr)) {
          ModuleAnalysis A = analyzeModule(*M);
          Decision.first = staticBoundsReject(
              *M, A, Job.Invoke, Opts.MaxCallDepth, Opts.MaxMemoryPages,
              Opts.MaxTableElems, &Decision.second);
        }
      }
      It = Memo.emplace(std::move(Key), std::move(Decision)).first;
    }
    *Reason = It->second.second;
    return It->second.first;
  }

private:
  std::map<std::string, std::pair<bool, std::string>> Memo;
};

/// SIGTERM/SIGINT flag for CLI serve mode. The handlers are installed
/// WITHOUT SA_RESTART so a blocking stdin read returns EINTR and the
/// reader notices the flag instead of waiting for the next job line.
volatile sig_atomic_t GServeStop = 0;

void serveStopHandler(int) { GServeStop = 1; }

/// True if the job line spells an explicit id= key (as opposed to the
/// parser's per-line default of "0", which serve replaces with the
/// session-wide acceptance sequence).
bool lineHasExplicitId(const std::string &Line) {
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && isspace(uint8_t(Line[I])))
      ++I;
    size_t Start = I;
    while (I < Line.size() && !isspace(uint8_t(Line[I])))
      ++I;
    if (I - Start > 3 && Line.compare(Start, 3, "id=") == 0)
      return true;
  }
  return false;
}

} // namespace

ServeStats runServe(FILE *In, FILE *Out, const ServeOptions &Opts) {
  ServeStats Stats;
  unsigned Workers = Opts.Workers ? Opts.Workers : 1;
  size_t QueueCap = Opts.QueueCap ? Opts.QueueCap : size_t(Workers) * 4;
  double T0 = nowMs();

  struct sigaction OldTerm, OldInt;
  if (Opts.InstallSignalHandlers) {
    GServeStop = 0;
    struct sigaction SA;
    memset(&SA, 0, sizeof(SA));
    SA.sa_handler = serveStopHandler;
    sigemptyset(&SA.sa_mask);
    SA.sa_flags = 0; // Deliberately no SA_RESTART: interrupt the read.
    sigaction(SIGTERM, &SA, &OldTerm);
    sigaction(SIGINT, &SA, &OldInt);
  }

  ServeQueue Queue(QueueCap);
  CompileCache Cache(CompileCache::configuredCapacityBytes());
  ModuleCache Modules;
  StaticPrecheck Precheck; // Reader-thread only; no lock needed.
  std::mutex OutMu; // Guards Out, Stats counters and the latency vector.

  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  for (unsigned WI = 0; WI < Workers; ++WI) {
    Pool.emplace_back([&, WI] {
      ServeWorker W;
      if (Opts.FaultSeed)
        W.Lcg = Opts.FaultSeed ^ (0x9e3779b97f4a7c15ULL * (WI + 1));
      ServeJob SJ;
      while (Queue.pop(&SJ)) {
        double Pickup = nowMs();
        bool Trapped = false, Errored = false;
        uint64_t Faults = 0;
        std::string Body = runServeJob(W, Opts, Cache, Modules, SJ.Job,
                                       &Trapped, &Errored, &Faults);
        double Done = nowMs();
        double Latency = Done - SJ.EnqueueMs;
        std::lock_guard<std::mutex> L(OutMu);
        fprintf(Out, "done %s %s ms=%.3f\n", SJ.Job.Id.c_str(), Body.c_str(),
                Latency);
        fflush(Out);
        if (Trapped)
          ++Stats.Trapped;
        else if (Errored)
          ++Stats.Errors;
        else
          ++Stats.Done;
        Stats.Faults += Faults;
        Stats.LatenciesMs[SJ.Seq] = Latency;
        Stats.ServiceMs[SJ.Seq] = Done - Pickup;
      }
    });
  }

  fprintf(Out, "# serve: ready, %u worker(s), queue cap %zu\n", Workers,
          QueueCap);
  fflush(Out);

  std::string Line;
  Line.reserve(256);
  char Buf[4096];
  bool Draining = false;
  while (!Draining) {
    if (Opts.InstallSignalHandlers && GServeStop)
      break;
    Line.clear();
    bool Eof = false;
    for (;;) { // Assemble one full line (fgets may split long ones).
      errno = 0;
      if (!fgets(Buf, sizeof(Buf), In)) {
        if (errno == EINTR && !(Opts.InstallSignalHandlers && GServeStop)) {
          clearerr(In);
          continue;
        }
        Eof = true;
        break;
      }
      Line += Buf;
      if (!Line.empty() && Line.back() == '\n') {
        Line.pop_back();
        break;
      }
    }
    if (Eof)
      break;

    // Control lines first — `shutdown` must work even though it is not a
    // resolvable module spec. Comments strip exactly like manifest lines.
    std::string Trimmed = Line;
    size_t Hash = Trimmed.find('#');
    if (Hash != std::string::npos)
      Trimmed.resize(Hash);
    size_t NonWs = Trimmed.find_first_not_of(" \t\r");
    Trimmed = NonWs == std::string::npos ? std::string() : Trimmed.substr(NonWs);
    while (!Trimmed.empty() &&
           (Trimmed.back() == ' ' || Trimmed.back() == '\t' ||
            Trimmed.back() == '\r'))
      Trimmed.pop_back();
    if (Trimmed.empty())
      continue; // Blank or comment-only line.
    if (Trimmed == "shutdown") {
      Draining = true;
      break;
    }

    std::vector<BatchJob> Parsed;
    std::string Err;
    if (!parseBatchManifest(Line + "\n", &Parsed, &Err)) {
      std::lock_guard<std::mutex> L(OutMu);
      ++Stats.Rejected;
      fprintf(Out, "reject - parse: %s\n", Err.c_str());
      fflush(Out);
      continue;
    }
    // Static admission precheck: a job that provably cannot complete
    // under the session caps is shed here — exactly-once, before it
    // consumes a queue slot or a worker — mirroring the queue-full reject
    // flow (same id assignment, Rejected counter, no Accepted bump).
    if (Opts.StaticPrecheck) {
      std::string Reason;
      if (Precheck.reject(Parsed[0], Modules, Opts, &Reason)) {
        std::lock_guard<std::mutex> L(OutMu);
        std::string Id = lineHasExplicitId(Line)
                             ? Parsed[0].Id
                             : std::to_string(Stats.Accepted);
        ++Stats.Rejected;
        fprintf(Out, "reject %s static-bounds: %s\n", Id.c_str(),
                Reason.c_str());
        fflush(Out);
        continue;
      }
    }
    ServeJob SJ;
    SJ.Job = std::move(Parsed[0]);
    {
      std::lock_guard<std::mutex> L(OutMu);
      SJ.Seq = Stats.Accepted; // Tentative; rolled back on shed.
      if (!lineHasExplicitId(Line))
        SJ.Job.Id = std::to_string(SJ.Seq);
      SJ.EnqueueMs = nowMs();
      std::string Id = SJ.Job.Id;
      Stats.LatenciesMs.push_back(0);
      Stats.ServiceMs.push_back(0);
      if (Queue.tryPush(std::move(SJ))) {
        ++Stats.Accepted;
      } else {
        Stats.LatenciesMs.pop_back();
        Stats.ServiceMs.pop_back();
        ++Stats.Rejected;
        fprintf(Out, "reject %s queue-full\n", Id.c_str());
        fflush(Out);
      }
    }
  }

  // Drain: stop admission, let the workers finish every accepted job.
  Queue.close();
  for (std::thread &Th : Pool)
    Th.join();

  if (Opts.InstallSignalHandlers) {
    sigaction(SIGTERM, &OldTerm, nullptr);
    sigaction(SIGINT, &OldInt, nullptr);
  }

  Stats.WallMs = nowMs() - T0;
  double Secs = Stats.WallMs / 1e3;
  fprintf(Out,
          "# serve: drained, %llu accepted, %llu rejected, %llu done, "
          "%llu trapped, %llu errors, %llu faults, %u worker(s), %.1f ms, "
          "%.1f jobs/s\n",
          (unsigned long long)Stats.Accepted,
          (unsigned long long)Stats.Rejected, (unsigned long long)Stats.Done,
          (unsigned long long)Stats.Trapped,
          (unsigned long long)Stats.Errors, (unsigned long long)Stats.Faults,
          Workers, Stats.WallMs,
          Secs > 0 ? double(Stats.Accepted) / Secs : 0.0);
  fflush(Out);
  return Stats;
}

} // namespace wisp
