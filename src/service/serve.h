//===- service/serve.h - persistent service mode ----------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent serving layer on top of the batch runner: `wisp --serve`
/// reads jobs from stdin (one batch-manifest line per job, see
/// service/batch.h) and answers each with exactly one protocol line on
/// stdout, staying resident between jobs. Where the batch runner rebuilds
/// an Engine per job, serve mode keeps the expensive state warm: one
/// engine per (worker, configuration) — constructed governed so fuel and
/// deadline check sites are baked into every compiled artifact — a
/// serve-local compile cache shared by every worker, and a per-worker
/// instance pool, so steady-state jobs pay invoke cost, not compile cost.
///
/// Admission is bounded: the reader thread never blocks on workers. When
/// the job queue is full the job is shed with a structured reject line
/// instead of being queued, so a slow worker pool degrades into explicit
/// load-shedding rather than unbounded buffering. Shutdown is graceful:
/// EOF, a `shutdown` control line, or SIGTERM (CLI mode) stop admission,
/// drain the queue, and report every accepted job exactly once before the
/// summary prints.
///
/// Protocol, one line per event (every line is flushed immediately):
///   done <id> = <values> ms=<latency>       job ran to completion
///   done <id> trap: <reason> ms=<latency>   job trapped (a result!)
///   done <id> error: <detail> ms=<latency>  job failed to load/resolve
///   reject <id> queue-full                  shed by admission control
///   reject - parse: <detail>                malformed job line
///   # ...                                   summary/diagnostic chatter
///
/// Fault injection (stress harness, WISP_FAULT_SEED in the CLI): a
/// deterministic per-worker generator perturbs ~3/8 of jobs with a tiny
/// fuel budget, an injected allocation failure, or a concurrent cancel —
/// the exactly-once reporting contract must hold regardless.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_SERVICE_SERVE_H
#define WISP_SERVICE_SERVE_H

#include "service/batch.h"

#include <cstdio>
#include <vector>

namespace wisp {

/// Configuration for one serve session.
struct ServeOptions {
  unsigned Workers = 1;
  /// Bounded job-queue capacity; 0 means 4x the worker count. Admission
  /// beyond this sheds (reject line), it never blocks the reader.
  size_t QueueCap = 0;
  /// Session-wide governance defaults, applied to any job whose manifest
  /// line does not carry its own fuel= / deadline-ms= key (0 = off).
  uint64_t DefaultFuel = 0;
  uint32_t DefaultDeadlineMs = 0;
  /// Session-wide resource caps (0 = engine default / unlimited); see the
  /// governance block in engine/engine.h.
  uint32_t MaxCallDepth = 0;
  uint32_t MaxMemoryPages = 0;
  uint32_t MaxTableElems = 0;
  /// Static admission precheck: a job whose analyzer-inferred bounds prove
  /// it cannot complete under the session caps (declared memory/table
  /// minima over the caps, or a guaranteed call depth over MaxCallDepth)
  /// is shed at admission with `reject <id> static-bounds: <reason>` —
  /// exactly-once, before it consumes a queue slot or a worker. Decisions
  /// are memoized per (module spec, invoke). --no-static-precheck disables.
  bool StaticPrecheck = true;
  /// Root of the persistent on-disk artifact cache shared by the session's
  /// warm engines (engine/engine.h DiskCacheDir). Empty defers to the
  /// WISP_CACHE_DIR environment variable; unset both and no disk level
  /// opens. The CLI passes --cache-dir through here.
  std::string CacheDir;
  /// Gate for the disk level (`wisp --no-disk-cache`).
  bool DiskCache = true;
  /// Non-zero enables deterministic fault injection (see \file comment).
  uint64_t FaultSeed = 0;
  /// Let SIGTERM/SIGINT stop admission and drain (CLI mode). Off by
  /// default so in-process embedders (tests, benchmarks) never touch
  /// process-wide signal state.
  bool InstallSignalHandlers = false;
};

/// What a serve session did, for the CLI summary line and the benchmark.
struct ServeStats {
  uint64_t Accepted = 0; ///< Enqueued; each produced exactly one done line.
  uint64_t Rejected = 0; ///< Shed by admission control or malformed.
  uint64_t Done = 0;     ///< Completed with a value result.
  uint64_t Trapped = 0;  ///< Completed with a trap result.
  uint64_t Errors = 0;   ///< Completed with a load/resolve error.
  uint64_t Faults = 0;   ///< Fault-injection perturbations applied.
  double WallMs = 0;
  /// Per-job end-to-end latency (admission to done line, queue wait
  /// included), indexed by acceptance order.
  std::vector<double> LatenciesMs;
  /// Per-job service time (worker pickup to done line, queue wait
  /// excluded), same indexing — the benchmark derives p50/p99 and the
  /// cold-vs-warm split from this, since queue wait under an open-loop
  /// submitter only measures the submitter.
  std::vector<double> ServiceMs;
};

/// Runs a serve session: reads job lines from \p In until EOF, a
/// `shutdown` line, or (with InstallSignalHandlers) SIGTERM/SIGINT; writes
/// protocol lines to \p Out; drains, joins the workers, prints the `#`
/// summary and returns the stats. The caller's thread is the reader.
ServeStats runServe(FILE *In, FILE *Out, const ServeOptions &Opts);

} // namespace wisp

#endif // WISP_SERVICE_SERVE_H
