//===- service/batch.cpp - parallel batch runner ----------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "service/batch.h"

#include "analysis/analysis.h"
#include "engine/registry.h"
#include "suites/suites.h"
#include "wasm/reader.h"
#include "wasm/validator.h"
#include "support/clock.h"
#include "support/format.h"
#include "support/parse.h"

#include <cctype>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

namespace wisp {

namespace {

bool knownConfig(const std::string &Name) {
  for (const EngineConfig &C : figure10Registry())
    if (C.Name == Name)
      return true;
  return false;
}

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Toks;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && isspace(uint8_t(Line[I])))
      ++I;
    size_t Start = I;
    while (I < Line.size() && !isspace(uint8_t(Line[I])))
      ++I;
    if (I > Start)
      Toks.push_back(Line.substr(Start, I - Start));
  }
  return Toks;
}

/// A bounded MPMC queue of job indexes: the submission side blocks when
/// the queue is full (backpressure — the seam future async submission
/// plugs into), workers block when it is empty until close().
class BoundedQueue {
public:
  explicit BoundedQueue(size_t Cap) : Cap(Cap ? Cap : 1) {}

  void push(uint32_t V) {
    std::unique_lock<std::mutex> L(Mu);
    NotFull.wait(L, [&] { return Q.size() < Cap; });
    Q.push_back(V);
    NotEmpty.notify_one();
  }

  void close() {
    std::lock_guard<std::mutex> L(Mu);
    Closed = true;
    NotEmpty.notify_all();
  }

  bool pop(uint32_t *Out) {
    std::unique_lock<std::mutex> L(Mu);
    NotEmpty.wait(L, [&] { return !Q.empty() || Closed; });
    if (Q.empty())
      return false;
    *Out = Q.front();
    Q.pop_front();
    NotFull.notify_one();
    return true;
  }

private:
  std::mutex Mu;
  std::condition_variable NotEmpty, NotFull;
  std::deque<uint32_t> Q;
  size_t Cap;
  bool Closed = false;
};

/// Executes one job in a private, freshly constructed Engine (the same
/// fresh-VM-per-item methodology the paper's measurements use). Workers
/// share nothing mutable except \p Cache — the batch-local compile cache,
/// internally synchronized and handing out immutable artifacts — so
/// identical bodies across jobs decode/compile once per batch.
BatchJobResult runOneJob(const BatchJob &Job, const BatchOptions &Opts,
                         CompileCache *Cache, InstancePool *Pool) {
  BatchJobResult R;
  R.Index = Job.Index;
  EngineConfig Cfg = configByName(Job.Config);
  // Explicit cache scoping: never fall back to the process-wide cache
  // from inside a batch, so reports depend only on the manifest.
  Cfg.UseCompileCache = Cache != nullptr;
  // The persistent disk level rides below the batch-local cache: jobs in
  // a later batch (a new process) warm-start from this one's artifacts.
  Cfg.DiskCacheDir = Opts.CacheDir;
  Cfg.UseDiskCache = Opts.DiskCache;
  // Likewise for the instance pool: only the per-worker pool, never an
  // engine-private one (which could not outlive this job anyway).
  Cfg.PoolInstances = Pool != nullptr;
  // Per-job governance from the manifest's fuel= / deadline-ms= keys.
  Cfg.FuelBudget = Job.Fuel;
  Cfg.DeadlineMs = Job.DeadlineMs;
  Engine E(Cfg, Cache, Pool);
  installGcHostFuncs(E);
  WasmError Err;
  std::unique_ptr<LoadedModule> LM = E.load(Job.Bytes, &Err);
  if (!LM) {
    R.Error = strFormat("load failed: %s (offset %zu)", Err.Message.c_str(),
                        Err.Offset);
    return R;
  }
  R.Stats = LM->Stats;
  FuncInstance *F = LM->Inst->findExportedFunc(Job.Invoke);
  if (!F) {
    R.Error = strFormat("no exported function '%s'", Job.Invoke.c_str());
    return R;
  }
  const std::vector<ValType> &Params = F->Type->Params;
  if (Job.RawArgs.size() != Params.size()) {
    R.Error = strFormat("'%s' takes %zu argument(s), got %zu",
                        Job.Invoke.c_str(), Params.size(), Job.RawArgs.size());
    return R;
  }
  std::vector<Value> Args;
  for (size_t I = 0; I < Params.size(); ++I) {
    Value V;
    if (!parseValueText(Job.RawArgs[I], Params[I], &V)) {
      R.Error = strFormat("cannot parse argument %zu '%s' as %s", I + 1,
                          Job.RawArgs[I].c_str(), valTypeName(Params[I]));
      return R;
    }
    Args.push_back(V);
  }
  R.Trap = E.invoke(*LM, Job.Invoke, Args, &R.Results);
  if (R.Trap != TrapReason::None)
    R.Results.clear();
  R.ModeledCycles = E.thread().modeledCycles();
  R.Ok = true;
  // Retire the instance into the per-worker pool (recycle declines on
  // its own when the load was not imaged or the heap holds live
  // objects); a later same-module job on this worker re-images it.
  E.recycle(std::move(LM));
  return R;
}

} // namespace

const char *tierToConfigName(const std::string &Tier) {
  if (Tier == "int")
    return "wizard-int"; // In-place interpreter.
  if (Tier == "threaded")
    return "interp-threaded"; // Pre-decoded threaded-dispatch interpreter.
  if (Tier == "spc")
    return "wizard-spc"; // The paper's single-pass compiler.
  if (Tier == "copypatch")
    return "wasm-now"; // Copy-and-patch templates.
  if (Tier == "twopass")
    return "wazero"; // Listing-IR two-pass baseline.
  if (Tier == "opt")
    return "wasmtime"; // IR-based optimizing compiler.
  return nullptr;
}

bool parseValueText(const std::string &Text, ValType Ty, Value *Out) {
  if (Text.empty())
    return false;
  errno = 0;
  const char *S = Text.c_str();
  char *End = nullptr;
  switch (Ty) {
  case ValType::I32:
  case ValType::I64: {
    // Accept the full signed and unsigned range of the target width;
    // reject anything that would silently truncate. The unsigned branch
    // goes through the strict parser (support/parse.h): bare strtoull
    // would skip leading whitespace and wrap out-of-range values.
    long long V;
    if (Text[0] == '-') {
      V = strtoll(S, &End, 0);
      if (End == S || *End || errno == ERANGE)
        return false;
    } else {
      uint64_t U;
      if (!parseU64(S, &U, 0))
        return false;
      V = (long long)U;
    }
    if (Ty == ValType::I32) {
      if (Text[0] == '-' ? V < INT32_MIN : (unsigned long long)V > UINT32_MAX)
        return false;
      *Out = Value::makeI32(int32_t(uint32_t(V)));
    } else {
      *Out = Value::makeI64(V);
    }
    return true;
  }
  case ValType::F32:
  case ValType::F64: {
    double V = strtod(S, &End);
    if (End == S || *End)
      return false;
    *Out = Ty == ValType::F32 ? Value::makeF32(float(V)) : Value::makeF64(V);
    return true;
  }
  default:
    return false; // Reference arguments cannot be spelled in text.
  }
}

std::string valueText(Value V) {
  switch (V.Type) {
  case ValType::I32:
    return strFormat("%d:i32", V.asI32());
  case ValType::I64:
    return strFormat("%lld:i64", (long long)V.asI64());
  case ValType::F32:
    return strFormat("%g:f32", double(V.asF32()));
  case ValType::F64:
    return strFormat("%g:f64", V.asF64());
  default:
    return strFormat("0x%llx:%s", (unsigned long long)V.Bits,
                     valTypeName(V.Type));
  }
}

namespace {

bool readFileBytes(const std::string &Path, std::vector<uint8_t> *Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out->assign(std::istreambuf_iterator<char>(In),
              std::istreambuf_iterator<char>());
  return true;
}

/// Suite-item lookup over pre-generated items ("suite/name", or a bare
/// item name if unambiguous). Copies the bytes so callers can cache and
/// reuse the generated item list across jobs.
bool resolveFromSuites(const std::string &Spec, std::vector<LineItem> &Items,
                       bool UseM0, std::vector<uint8_t> *Out,
                       std::string *Err) {
  LineItem *ByName = nullptr;
  for (LineItem &I : Items) {
    if (I.Suite + "/" + I.Name == Spec) {
      *Out = UseM0 ? I.M0Bytes : I.Bytes;
      return true;
    }
    if (I.Name == Spec) {
      if (ByName) {
        if (Err)
          *Err = strFormat("item name '%s' is ambiguous (%s/%s and %s/%s); "
                           "use the suite/name form",
                           Spec.c_str(), ByName->Suite.c_str(),
                           ByName->Name.c_str(), I.Suite.c_str(),
                           I.Name.c_str());
        return false;
      }
      ByName = &I;
    }
  }
  if (ByName) {
    *Out = UseM0 ? ByName->M0Bytes : ByName->Bytes;
    return true;
  }
  if (Err)
    *Err = strFormat("cannot resolve module '%s' (not a file, not a suite "
                     "item)",
                     Spec.c_str());
  return false;
}

} // namespace

bool resolveModuleSpec(const std::string &Spec, int Scale, bool UseM0,
                       std::vector<uint8_t> *Out, std::string *Err) {
  if (readFileBytes(Spec, Out))
    return true;
  if (Spec == "nop") {
    *Out = nopModule();
    return true;
  }
  std::vector<LineItem> Items = allSuites(Scale);
  return resolveFromSuites(Spec, Items, UseM0, Out, Err);
}

bool parseBatchManifest(const std::string &Text,
                        std::vector<BatchJob> *Out, std::string *Err) {
  Out->clear();
  uint32_t LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    std::string Line = Text.substr(
        Pos, Nl == std::string::npos ? std::string::npos : Nl - Pos);
    Pos = Nl == std::string::npos ? Text.size() + 1 : Nl + 1;
    ++LineNo;
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    std::vector<std::string> Toks = tokenize(Line);
    if (Toks.empty())
      continue;

    BatchJob Job;
    Job.Index = uint32_t(Out->size());
    Job.Line = LineNo;
    Job.Module = Toks[0];
    std::string Tier, Config;
    for (size_t I = 1; I < Toks.size(); ++I) {
      const std::string &T = Toks[I];
      auto Val = [&](const char *Key) -> const char * {
        size_t N = strlen(Key);
        return T.compare(0, N, Key) == 0 ? T.c_str() + N : nullptr;
      };
      if (const char *V = Val("tier=")) {
        Tier = V;
      } else if (const char *V = Val("config=")) {
        Config = V;
      } else if (const char *V = Val("invoke=")) {
        Job.Invoke = V;
      } else if (const char *V = Val("scale=")) {
        char *End = nullptr;
        long S = strtol(V, &End, 10);
        if (End == V || *End || S < 1) {
          *Err = strFormat("manifest line %u: bad scale '%s'", LineNo, V);
          return false;
        }
        Job.Scale = int(S);
      } else if (T == "m0") {
        Job.UseM0 = true;
      } else if (const char *V = Val("id=")) {
        if (!*V) {
          *Err = strFormat("manifest line %u: empty id=", LineNo);
          return false;
        }
        Job.Id = V;
      } else if (const char *V = Val("fuel=")) {
        uint64_t F = 0;
        if (!parseU64(V, &F) || F == 0) {
          *Err = strFormat("manifest line %u: bad fuel '%s' (want a "
                           "positive budget)",
                           LineNo, V);
          return false;
        }
        Job.Fuel = F;
      } else if (const char *V = Val("deadline-ms=")) {
        char *End = nullptr;
        long D = strtol(V, &End, 10);
        if (End == V || *End || D < 1 || D > 3600000) {
          *Err = strFormat("manifest line %u: bad deadline-ms '%s' (want "
                           "1..3600000)",
                           LineNo, V);
          return false;
        }
        Job.DeadlineMs = uint32_t(D);
      } else if (const char *V = Val("args=")) {
        // Comma-separated values, parsed against the export signature at
        // run time (the signature is unknown until the module loads).
        // "args=" alone means zero arguments; an empty segment ("3,,7" or
        // a trailing comma) is a typo, not a value, and is rejected like
        // every other malformed key.
        if (*V) {
          std::string Arg;
          for (const char *P = V;; ++P) {
            if (*P == ',' || *P == '\0') {
              if (Arg.empty()) {
                *Err = strFormat("manifest line %u: empty args= segment",
                                 LineNo);
                return false;
              }
              Job.RawArgs.push_back(Arg);
              Arg.clear();
              if (*P == '\0')
                break;
            } else {
              Arg += *P;
            }
          }
        }
      } else {
        *Err = strFormat("manifest line %u: unknown key '%s' (want tier= "
                         "config= invoke= scale= m0 args= id= fuel= "
                         "deadline-ms=)",
                         LineNo, T.c_str());
        return false;
      }
    }
    if (!Tier.empty() && !Config.empty()) {
      *Err = strFormat("manifest line %u: tier= and config= are mutually "
                       "exclusive",
                       LineNo);
      return false;
    }
    if (!Tier.empty()) {
      const char *Name = tierToConfigName(Tier);
      if (!Name) {
        *Err = strFormat("manifest line %u: unknown tier '%s'", LineNo,
                         Tier.c_str());
        return false;
      }
      Job.Config = Name;
    } else if (!Config.empty()) {
      if (!knownConfig(Config)) {
        *Err = strFormat("manifest line %u: unknown config '%s'", LineNo,
                         Config.c_str());
        return false;
      }
      Job.Config = Config;
    } else {
      Job.Config = "wizard-spc";
    }
    if (Job.Id.empty())
      Job.Id = std::to_string(Job.Index);
    Out->push_back(std::move(Job));
  }
  if (Out->empty()) {
    *Err = "manifest contains no jobs";
    return false;
  }
  return true;
}

bool resolveBatchModules(std::vector<BatchJob> *Jobs, std::string *Err) {
  // Suite generation materializes every embedded module, so do it at most
  // once per distinct scale= rather than once per manifest line.
  std::map<int, std::vector<LineItem>> SuiteCache;
  for (BatchJob &Job : *Jobs) {
    if (readFileBytes(Job.Module, &Job.Bytes))
      continue;
    if (Job.Module == "nop") {
      Job.Bytes = nopModule();
      continue;
    }
    auto It = SuiteCache.find(Job.Scale);
    if (It == SuiteCache.end())
      It = SuiteCache.emplace(Job.Scale, allSuites(Job.Scale)).first;
    std::string Detail;
    if (!resolveFromSuites(Job.Module, It->second, Job.UseM0, &Job.Bytes,
                           &Detail)) {
      *Err = strFormat("manifest line %u: %s", Job.Line, Detail.c_str());
      return false;
    }
  }
  return true;
}

BatchReport runBatch(const std::vector<BatchJob> &Jobs,
                     const BatchOptions &Opts) {
  BatchReport Report;
  Report.Workers = Opts.Workers ? Opts.Workers : 1;
  Report.Results.resize(Jobs.size());
  Report.CacheEnabled = Opts.CompileCache;
  // One compile cache per batch, shared by every worker: the first job to
  // reach a given body compiles it, every later job reuses the artifact.
  // Batch-local (not the process cache) so aggregate counters describe
  // exactly this manifest; same capacity knob (WISP_CACHE_BYTES) as the
  // process cache.
  CompileCache Cache(CompileCache::configuredCapacityBytes());
  CompileCache *SharedCache = Opts.CompileCache ? &Cache : nullptr;
  double T0 = nowMs();

  // Static admission precheck: a job whose analyzer-inferred bounds prove
  // it cannot complete under the effective caps (batch engines run with
  // the defaults: 4096-frame call depth, architecture-bounded pages) gets
  // its deterministic error result filled in here and never reaches the
  // queue. Decisions are memoized per (module spec, invoke) since
  // manifests repeat specs heavily.
  std::vector<bool> Skip(Jobs.size(), false);
  if (Opts.StaticPrecheck) {
    std::map<std::string, std::pair<bool, std::string>> Memo;
    for (size_t I = 0; I < Jobs.size(); ++I) {
      const BatchJob &Job = Jobs[I];
      if (Job.Bytes.empty())
        continue; // Unresolved spec: the worker path reports the error.
      std::string Key =
          strFormat("%s\x1f%d\x1f%d\x1f%s", Job.Module.c_str(), Job.Scale,
                    int(Job.UseM0), Job.Invoke.c_str());
      auto It = Memo.find(Key);
      if (It == Memo.end()) {
        std::pair<bool, std::string> Decision{false, std::string()};
        WasmError WErr;
        std::unique_ptr<Module> M = decodeModule(Job.Bytes, &WErr);
        if (M && validateModule(*M, &WErr)) {
          ModuleAnalysis A = analyzeModule(*M);
          Decision.first = staticBoundsReject(*M, A, Job.Invoke, 0, 0, 0,
                                              &Decision.second);
        }
        It = Memo.emplace(std::move(Key), std::move(Decision)).first;
      }
      if (It->second.first) {
        Skip[I] = true;
        BatchJobResult &R = Report.Results[I];
        R.Index = Job.Index;
        R.Ok = false;
        R.Error = "static-bounds: " + It->second.second;
      }
    }
  }

  // Bounded to 2x the worker count: enough to keep every worker fed,
  // small enough that submission exerts backpressure.
  BoundedQueue Queue(size_t(Report.Workers) * 2);
  std::vector<std::thread> Pool;
  Pool.reserve(Report.Workers);
  // One instance pool per worker, owned by the worker loop and reused
  // across all of that worker's jobs (instances are single-threaded, so
  // pools must never cross workers). Totals land in a per-worker slot and
  // are summed after the join — no synchronization on the hot path.
  Report.PoolEnabled = Opts.PoolInstances;
  std::vector<InstancePool::Totals> PoolTotals(Report.Workers);
  for (unsigned W = 0; W < Report.Workers; ++W) {
    Pool.emplace_back([&Jobs, &Report, &Queue, &PoolTotals, SharedCache,
                       &Opts, W] {
      InstancePool WorkerPool;
      InstancePool *P = Opts.PoolInstances ? &WorkerPool : nullptr;
      uint32_t Idx = 0;
      // Each result lands in its own pre-sized slot, so workers never
      // contend on the result vector.
      while (Queue.pop(&Idx))
        Report.Results[Idx] = runOneJob(Jobs[Idx], Opts, SharedCache, P);
      PoolTotals[W] = WorkerPool.totals();
    });
  }
  for (uint32_t I = 0; I < uint32_t(Jobs.size()); ++I)
    if (!Skip[I])
      Queue.push(I);
  Queue.close();
  for (std::thread &Th : Pool)
    Th.join();
  Report.WallMs = nowMs() - T0;
  for (const InstancePool::Totals &PT : PoolTotals) {
    Report.PoolHits += PT.Hits;
    Report.PoolMisses += PT.Misses;
    Report.PoolReturned += PT.Returned;
  }
  if (SharedCache) {
    CompileCache::Totals T = SharedCache->totals();
    Report.CacheHits = T.Hits;
    Report.CacheMisses = T.Misses;
    Report.CacheSavedNs = T.SavedNs;
    Report.DiskHits = T.DiskHits;
    Report.DiskMisses = T.DiskMisses;
  }
  // The disk level only opens when a cache directory is actually
  // configured (flag or WISP_CACHE_DIR) and the gate is on; mirror that
  // so the summary prints "disabled" instead of a misleading 0/0.
  const char *EnvDir = getenv("WISP_CACHE_DIR");
  Report.DiskEnabled = Opts.DiskCache && SharedCache &&
                       (!Opts.CacheDir.empty() || (EnvDir && *EnvDir));
  return Report;
}

BatchReport runBatch(const std::vector<BatchJob> &Jobs, unsigned Workers) {
  BatchOptions Opts;
  Opts.Workers = Workers;
  return runBatch(Jobs, Opts);
}

void printBatchReport(FILE *Out, const std::vector<BatchJob> &Jobs,
                      const BatchReport &Report, bool Stats) {
  // Per-job lines are fully deterministic (no wall times, no rates): the
  // same manifest must print byte-identical job lines for any --jobs=K.
  uint64_t TotalCycles = 0;
  size_t TotalCode = 0, TotalIr = 0;
  uint64_t TotalInsts = 0;
  unsigned Failed = 0, Trapped = 0;
  for (size_t I = 0; I < Report.Results.size(); ++I) {
    const BatchJobResult &R = Report.Results[I];
    const BatchJob &Job = Jobs[I];
    fprintf(Out, "[%u] %s %s", R.Index, Job.Module.c_str(),
            Job.Config.c_str());
    if (!R.Ok) {
      fprintf(Out, " error: %s\n", R.Error.c_str());
      ++Failed;
      continue;
    }
    fprintf(Out, " %s(", Job.Invoke.c_str());
    for (size_t A = 0; A < Job.RawArgs.size(); ++A)
      fprintf(Out, "%s%s", A ? ", " : "", Job.RawArgs[A].c_str());
    fprintf(Out, ")");
    if (R.Trap != TrapReason::None) {
      fprintf(Out, " trap: %s", trapReasonName(R.Trap));
      ++Trapped; // A trap is a result, not an infrastructure failure.
    } else {
      fprintf(Out, " = ");
      if (R.Results.empty())
        fprintf(Out, "<void>");
      for (size_t V = 0; V < R.Results.size(); ++V)
        fprintf(Out, "%s%s", V ? ", " : "", valueText(R.Results[V]).c_str());
    }
    fprintf(Out, " cycles=%llu", (unsigned long long)R.ModeledCycles);
    if (Stats)
      fprintf(Out, " module=%zu code=%zu insts=%llu ir=%zu",
              R.Stats.ModuleBytes, R.Stats.CodeBytes,
              (unsigned long long)R.Stats.CodeInsts, R.Stats.IrBytes);
    fprintf(Out, "\n");
    TotalCycles += R.ModeledCycles;
    TotalCode += R.Stats.CodeBytes;
    TotalIr += R.Stats.IrBytes;
    TotalInsts += R.Stats.CodeInsts;
  }
  // Summary lines carry timing and are '#'-prefixed so determinism checks
  // (and scripts) can strip them.
  // "failed" mirrors the CLI exit-code contract (infrastructure failures
  // only); trapped jobs ran to a result and are tallied separately.
  double Secs = Report.WallMs / 1e3;
  fprintf(Out, "# batch: %zu job(s), %u failed, %u trapped, %u worker(s), "
               "%.1f ms, %.1f jobs/s\n",
          Report.Results.size(), Failed, Trapped, Report.Workers,
          Report.WallMs,
          Secs > 0 ? double(Report.Results.size()) / Secs : 0.0);
  fprintf(Out, "# aggregate: %llu modeled cycles, %zu code bytes, %llu "
               "machine insts, %zu threaded-IR bytes\n",
          (unsigned long long)TotalCycles, TotalCode,
          (unsigned long long)TotalInsts, TotalIr);
  // The hit/miss split is scheduling-independent (see BatchReport), but
  // saved-time is wall-clock and rides the '#' prefix like every timing.
  if (Report.CacheEnabled)
    fprintf(Out, "# cache: %llu hits, %llu misses, saved %.1f ms\n",
            (unsigned long long)Report.CacheHits,
            (unsigned long long)Report.CacheMisses,
            double(Report.CacheSavedNs) / 1e6);
  else
    fprintf(Out, "# cache: disabled\n");
  // Disk hits mean artifacts admitted from a previous process's store —
  // the cross-invocation warm-start signal CI asserts on. Deterministic
  // for a fixed manifest + directory state, but timing-adjacent (a warm
  // directory changes it), so it stays behind the stripped '#' prefix.
  if (Report.DiskEnabled)
    fprintf(Out, "# disk: %llu hits, %llu misses\n",
            (unsigned long long)Report.DiskHits,
            (unsigned long long)Report.DiskMisses);
  else
    fprintf(Out, "# disk: disabled\n");
  // Pool counters depend on job-to-worker scheduling (see BatchReport),
  // so they stay behind the stripped '#' prefix too.
  if (Report.PoolEnabled)
    fprintf(Out, "# pool: %llu hits, %llu misses, %llu returned\n",
            (unsigned long long)Report.PoolHits,
            (unsigned long long)Report.PoolMisses,
            (unsigned long long)Report.PoolReturned);
  else
    fprintf(Out, "# pool: disabled\n");
}

} // namespace wisp
