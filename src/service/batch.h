//===- service/batch.h - parallel batch runner ------------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first scale-out layer of wisp: a thread-pool service that loads and
/// runs many modules concurrently, one private Engine per worker job. The
/// paper's methodology measures one module at a time in a fresh VM; a
/// serving system does the same work N jobs at a time across K workers,
/// which is exactly the runtime-compilation regime where baseline-compiler
/// speed dominates. Jobs come from a manifest (one job per line: a module
/// spec plus per-job tier/config/invoke/scale overrides), flow through a
/// bounded work queue, and produce a deterministic report: per-job results
/// in manifest order, independent of worker count and scheduling.
///
/// Every future serving feature (compile-cache sharing, sharding, async
/// I/O) plugs into this worker-pool seam; see DESIGN.md "The batch
/// service" and the engine thread-safety contract in engine/engine.h.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_SERVICE_BATCH_H
#define WISP_SERVICE_BATCH_H

#include "engine/engine.h"

#include <cstdio>
#include <string>
#include <vector>

namespace wisp {

/// One job of a batch manifest.
struct BatchJob {
  uint32_t Index = 0;    ///< Manifest position; fixes the report order.
  uint32_t Line = 0;     ///< Manifest line number (diagnostics).
  std::string Module;    ///< "suite/item", bare item, "nop", or .wasm path.
  std::string Config;    ///< Registry configuration name (resolved).
  std::string Invoke = "run";
  int Scale = 1;
  bool UseM0 = false;
  std::vector<std::string> RawArgs; ///< Parsed against the export signature.
  std::vector<uint8_t> Bytes;       ///< Resolved module bytes.
  /// Client-chosen job id echoed on serve-mode report lines (id= key;
  /// defaults to the manifest index rendered in decimal).
  std::string Id;
  /// Per-job governance (fuel= / deadline-ms= keys): 0 means unmetered /
  /// no deadline. Enforced identically by the batch runner and serve mode.
  uint64_t Fuel = 0;
  uint32_t DeadlineMs = 0;
};

/// Deterministic observation of one executed job. Deliberately carries no
/// per-job wall time: everything here is scheduling-independent, which is
/// what makes the per-job report lines byte-identical across worker
/// counts (batch-level wall time lives on BatchReport).
struct BatchJobResult {
  uint32_t Index = 0;
  bool Ok = false;          ///< Loaded, export found, args parsed, ran.
  std::string Error;        ///< Load/lookup/parse failure description.
  TrapReason Trap = TrapReason::None;
  std::vector<Value> Results;
  uint64_t ModeledCycles = 0;
  LoadStats Stats;
};

/// An executed batch: per-job results in manifest order plus aggregates.
struct BatchReport {
  std::vector<BatchJobResult> Results;
  unsigned Workers = 0;
  double WallMs = 0; ///< End-to-end batch wall time.
  /// Aggregate compile-cache counters for the batch-local cache. The
  /// hit/miss split is deterministic for a fixed manifest regardless of
  /// worker count or scheduling: the cache builds each distinct key
  /// exactly once, so Misses == distinct artifacts and Hits is the rest.
  /// (The per-job split in BatchJobResult::Stats is NOT deterministic —
  /// which job pays each miss depends on scheduling — which is why the
  /// per-job report lines never print it.)
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheSavedNs = 0;
  bool CacheEnabled = false;
  /// Aggregate on-disk artifact-cache counters (cache/diskcache.h),
  /// summed like the in-process split above: disk hits are artifacts
  /// admitted from a previous process's store instead of built. Only
  /// meaningful when a cache directory was configured.
  uint64_t DiskHits = 0;
  uint64_t DiskMisses = 0;
  bool DiskEnabled = false;
  /// Aggregate instance-pool counters summed over the per-worker pools.
  /// NOT deterministic across worker counts (which jobs land on which
  /// worker decides which loads hit a warm pool), so these ride the
  /// '#'-prefixed summary lines that determinism checks strip.
  uint64_t PoolHits = 0;
  uint64_t PoolMisses = 0;
  uint64_t PoolReturned = 0;
  bool PoolEnabled = false;
};

/// Execution options for a batch.
struct BatchOptions {
  unsigned Workers = 1;
  /// Share one content-addressed compile cache across the worker pool:
  /// content-identical modules/bodies under identical configurations
  /// decode/compile once per batch instead of once per job. The cache is
  /// batch-local (not the process-wide one) so reports are reproducible.
  bool CompileCache = true;
  /// Keep one instance pool per worker thread, reused across that
  /// worker's jobs: a job whose module was already retired by an earlier
  /// job on the same worker re-images the retired instance in place
  /// instead of allocating and replaying segments. Pools are per-worker
  /// (engines and instances are single-threaded; see engine/engine.h),
  /// so no job ever observes another worker's instance.
  bool PoolInstances = true;
  /// Static admission precheck: jobs whose analyzer-inferred bounds prove
  /// they cannot complete under the effective caps (batch mode runs with
  /// engine defaults) are answered with an "error: static-bounds: ..."
  /// result at admission instead of being scheduled and run to the trap.
  /// The CLI exposes --no-static-precheck to turn this off.
  bool StaticPrecheck = true;
  /// Root of the persistent on-disk artifact cache shared by every job
  /// engine (engine/engine.h DiskCacheDir). Empty defers to the
  /// WISP_CACHE_DIR environment variable; unset both and no disk level
  /// opens. The CLI passes --cache-dir through here.
  std::string CacheDir;
  /// Gate for the disk level (`wisp --no-disk-cache`).
  bool DiskCache = true;
};

/// Parses manifest text: one job per non-empty, non-comment line,
///   <module> [tier=T|config=NAME] [invoke=NAME] [scale=N] [m0]
///            [args=v1,v2,...] [id=NAME] [fuel=N] [deadline-ms=N]
/// Returns false and a line-numbered diagnostic in \p Err on malformed
/// input (unknown key, tier+config conflict, bad scale, unknown
/// tier/config). Module bytes are *not* resolved here.
bool parseBatchManifest(const std::string &Text,
                        std::vector<BatchJob> *Out, std::string *Err);

/// Resolves every job's module spec to bytes (file, "nop", or embedded
/// suite item at the job's scale/m0). Returns false and a diagnostic on
/// the first unresolvable spec.
bool resolveBatchModules(std::vector<BatchJob> *Jobs, std::string *Err);

/// Runs \p Jobs per \p Opts. Each worker pulls job indexes from a bounded
/// queue and executes every job in a private Engine (no engine, thread, or
/// loaded module is ever shared between workers — see the thread-safety
/// contract in engine/engine.h; with Opts.CompileCache the workers share
/// exactly one thing: the internally-synchronized batch-local compile
/// cache, through which identical bodies compile once per batch). The
/// result vector is indexed by manifest position, so the report is
/// byte-identical for any worker count and for cache on/off.
BatchReport runBatch(const std::vector<BatchJob> &Jobs,
                     const BatchOptions &Opts);

/// Convenience overload: \p Workers threads, compile cache enabled.
BatchReport runBatch(const std::vector<BatchJob> &Jobs, unsigned Workers);

/// Prints the report to \p Out: one deterministic line per job (manifest
/// order), then '#'-prefixed summary lines (wall time, throughput,
/// aggregate LoadStats) that a determinism check should filter out.
/// \p Stats adds per-job deterministic size statistics.
void printBatchReport(FILE *Out, const std::vector<BatchJob> &Jobs,
                      const BatchReport &Report, bool Stats);

/// Parses \p Text as a \p Ty value (i32/i64 decimal or 0x-hex with full
/// unsigned/signed range, f32/f64 decimal). Shared by the CLI and the
/// manifest args= key.
bool parseValueText(const std::string &Text, ValType Ty, Value *Out);

/// Renders \p V the way the CLI prints results ("252:i32").
std::string valueText(Value V);

/// Resolves a module spec the way the wisp CLI does: an on-disk file wins,
/// then "nop", then "suite/item" (or a bare item name if unambiguous).
/// On ambiguity prints nothing; returns false with \p Err describing why.
bool resolveModuleSpec(const std::string &Spec, int Scale, bool UseM0,
                       std::vector<uint8_t> *Out, std::string *Err);

/// Maps a tier shorthand (CLI --tier / manifest tier=) to its registry
/// configuration name, or nullptr for an unknown tier.
const char *tierToConfigName(const std::string &Tier);

} // namespace wisp

#endif // WISP_SERVICE_BATCH_H
