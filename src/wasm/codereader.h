//===- wasm/codereader.h - bytecode cursor ----------------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounds-checked cursor over Wasm bytecode, shared by the validator, the
/// in-place interpreter and all compilers. Positions are absolute offsets
/// into the module's byte buffer so that side-table entries, probes and OSR
/// records all speak the same coordinate system.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_WASM_CODEREADER_H
#define WISP_WASM_CODEREADER_H

#include "support/leb128.h"
#include "wasm/opcodes.h"
#include "wasm/types.h"

#include <cstring>

namespace wisp {

/// Memory access immediate: alignment exponent and byte offset.
struct MemArg {
  uint32_t Align = 0;
  uint32_t Offset = 0;
};

/// Bounds-checked bytecode cursor. On malformed input the cursor sets a
/// failure flag and returns zero values; callers check ok() at convenient
/// boundaries rather than after every read.
class CodeReader {
public:
  CodeReader(const uint8_t *Bytes, size_t Start, size_t End)
      : Bytes(Bytes), Pos(Start), End(End) {}

  size_t pc() const { return Pos; }
  void setPc(size_t P) { Pos = P; }
  bool atEnd() const { return Pos >= End; }
  bool ok() const { return !Failed; }
  void fail() { Failed = true; }

  /// Reads one opcode, consuming the 0xFC prefix byte if present.
  Opcode readOpcode() {
    uint8_t B = readByte();
    if (B != 0xFC)
      return Opcode(B);
    uint64_t Sub = readU32();
    if (Sub > 0xff) {
      Failed = true;
      return Opcode(0xFF); // Unassigned.
    }
    return Opcode(0xFC00 | uint16_t(Sub));
  }

  uint8_t readByte() {
    if (Pos >= End) {
      Failed = true;
      return 0;
    }
    return Bytes[Pos++];
  }

  /// Reads a u32 LEB.
  uint32_t readU32() {
    LebResult R = readULEB128(Bytes + Pos, Bytes + End, 32);
    if (!R.Ok) {
      Failed = true;
      return 0;
    }
    Pos += R.Length;
    return uint32_t(R.Value);
  }

  /// Reads an s32 LEB (i32.const immediate).
  int32_t readS32() {
    LebResult R = readSLEB128(Bytes + Pos, Bytes + End, 32);
    if (!R.Ok) {
      Failed = true;
      return 0;
    }
    Pos += R.Length;
    return int32_t(R.Value);
  }

  /// Reads an s64 LEB (i64.const immediate).
  int64_t readS64() {
    LebResult R = readSLEB128(Bytes + Pos, Bytes + End, 64);
    if (!R.Ok) {
      Failed = true;
      return 0;
    }
    Pos += R.Length;
    return int64_t(R.Value);
  }

  /// Reads 4 little-endian bytes (f32.const immediate) as a bit pattern.
  uint32_t readF32Bits() {
    if (Pos + 4 > End) {
      Failed = true;
      return 0;
    }
    uint32_t V;
    memcpy(&V, Bytes + Pos, 4);
    Pos += 4;
    return V;
  }

  /// Reads 8 little-endian bytes (f64.const immediate) as a bit pattern.
  uint64_t readF64Bits() {
    if (Pos + 8 > End) {
      Failed = true;
      return 0;
    }
    uint64_t V;
    memcpy(&V, Bytes + Pos, 8);
    Pos += 8;
    return V;
  }

  /// Reads a block type (s33: negative = value type or empty, else index).
  BlockType readBlockType() {
    LebResult R = readSLEB128(Bytes + Pos, Bytes + End, 33);
    if (!R.Ok) {
      Failed = true;
      return BlockType::empty();
    }
    Pos += R.Length;
    int64_t V = int64_t(R.Value);
    if (V >= 0)
      return BlockType::funcType(uint32_t(V));
    uint8_t Byte = uint8_t(V & 0x7f);
    if (Byte == 0x40)
      return BlockType::empty();
    ValType T;
    if (!valTypeFromByte(Byte, &T)) {
      Failed = true;
      return BlockType::empty();
    }
    return BlockType::oneResult(T);
  }

  MemArg readMemArg() {
    MemArg A;
    A.Align = readU32();
    A.Offset = readU32();
    return A;
  }

  /// Reads a value type byte.
  ValType readValType() {
    ValType T = ValType::I32;
    if (!valTypeFromByte(readByte(), &T))
      Failed = true;
    return T;
  }

  /// Skips the immediates of \p Op (already consumed). Used by scanners
  /// that walk code without interpreting it, e.g. probe insertion.
  void skipImms(Opcode Op) {
    switch (opInfo(Op).Imm) {
    case ImmKind::None:
      return;
    case ImmKind::BlockType:
      (void)readBlockType();
      return;
    case ImmKind::LabelIdx:
    case ImmKind::FuncIdx:
    case ImmKind::LocalIdx:
    case ImmKind::GlobalIdx:
      (void)readU32();
      return;
    case ImmKind::BrTable: {
      uint32_t N = readU32();
      for (uint32_t I = 0; I <= N && ok(); ++I)
        (void)readU32();
      return;
    }
    case ImmKind::CallIndirect:
      (void)readU32();
      (void)readU32();
      return;
    case ImmKind::MemArg:
      (void)readMemArg();
      return;
    case ImmKind::MemIdx:
      (void)readByte();
      return;
    case ImmKind::MemMemIdx:
      (void)readByte();
      (void)readByte();
      return;
    case ImmKind::I32Imm:
      (void)readS32();
      return;
    case ImmKind::I64Imm:
      (void)readS64();
      return;
    case ImmKind::F32Imm:
      (void)readF32Bits();
      return;
    case ImmKind::F64Imm:
      (void)readF64Bits();
      return;
    case ImmKind::RefType:
      (void)readByte();
      return;
    case ImmKind::TypeVec: {
      uint32_t N = readU32();
      for (uint32_t I = 0; I < N && ok(); ++I)
        (void)readByte();
      return;
    }
    }
  }

private:
  const uint8_t *Bytes;
  size_t Pos;
  size_t End;
  bool Failed = false;
};

} // namespace wisp

#endif // WISP_WASM_CODEREADER_H
