//===- wasm/types.h - WebAssembly type system -------------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value types, function types and block types for the supported subset of
/// WebAssembly (MVP + multi-value + sign extension + saturating truncation +
/// bulk memory + reference types externref/funcref).
///
//===----------------------------------------------------------------------===//

#ifndef WISP_WASM_TYPES_H
#define WISP_WASM_TYPES_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace wisp {

/// A WebAssembly value type. The enumerator values double as the runtime
/// value-tag bytes stored in the value stack's tag lane.
enum class ValType : uint8_t {
  I32 = 1,
  I64 = 2,
  F32 = 3,
  F64 = 4,
  FuncRef = 5,
  ExternRef = 6,
  /// Used by the validator for polymorphic (unreachable) stack slots. Never
  /// stored into a tag lane.
  Bottom = 0x7f,
};

/// Returns true for reference types (potential GC roots).
inline bool isRefType(ValType T) {
  return T == ValType::FuncRef || T == ValType::ExternRef;
}

/// Returns true for types held in floating-point registers.
inline bool isFloatType(ValType T) {
  return T == ValType::F32 || T == ValType::F64;
}

/// Returns the printable name of a value type.
const char *valTypeName(ValType T);

/// Decodes a binary value-type byte; returns false for unknown encodings.
bool valTypeFromByte(uint8_t Byte, ValType *Out);

/// Encodes a value type as its binary format byte.
uint8_t valTypeToByte(ValType T);

/// A function signature: parameter and result types.
struct FuncType {
  std::vector<ValType> Params;
  std::vector<ValType> Results;

  bool operator==(const FuncType &O) const {
    return Params == O.Params && Results == O.Results;
  }

  /// Renders e.g. "[i32 i32] -> [i64]".
  std::string toString() const;
};

/// A structured-control block type: either empty, a single result type, or
/// an index into the module's type section (multi-value).
struct BlockType {
  enum Kind : uint8_t { Empty, OneResult, FuncTypeIdx } K = Empty;
  ValType Result = ValType::I32; ///< Valid when K == OneResult.
  uint32_t TypeIdx = 0;          ///< Valid when K == FuncTypeIdx.

  static BlockType empty() { return BlockType(); }
  static BlockType oneResult(ValType T) {
    BlockType B;
    B.K = OneResult;
    B.Result = T;
    return B;
  }
  static BlockType funcType(uint32_t Idx) {
    BlockType B;
    B.K = FuncTypeIdx;
    B.TypeIdx = Idx;
    return B;
  }
};

/// Memory or table size limits.
struct Limits {
  uint32_t Min = 0;
  uint32_t Max = 0;
  bool HasMax = false;
};

/// Architectural page limit of a 32-bit linear memory (2^32 / 2^16).
/// Declared memory limits are validated against it at decode time, and
/// LinearMemory::grow enforces it at runtime regardless of declared max.
constexpr uint32_t MaxMemoryPages = 65536;

} // namespace wisp

#endif // WISP_WASM_TYPES_H
