//===- wasm/builder.cpp - programmatic Wasm module construction -----------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "wasm/builder.h"

#include <cassert>

using namespace wisp;

uint32_t ModuleBuilder::addType(std::vector<ValType> Params,
                                std::vector<ValType> Results) {
  FuncType FT;
  FT.Params = std::move(Params);
  FT.Results = std::move(Results);
  for (size_t I = 0; I < Types.size(); ++I)
    if (Types[I] == FT)
      return uint32_t(I);
  Types.push_back(std::move(FT));
  return uint32_t(Types.size() - 1);
}

uint32_t ModuleBuilder::importFunc(const std::string &Mod,
                                   const std::string &Name,
                                   uint32_t TypeIdx) {
  assert(Funcs.empty() && "imports must precede function definitions");
  assert(TypeIdx < Types.size() && "type index out of range");
  Imports.push_back({Mod, Name, TypeIdx});
  return uint32_t(Imports.size() - 1);
}

FuncBuilder &ModuleBuilder::addFunc(uint32_t TypeIdx) {
  assert(TypeIdx < Types.size() && "type index out of range");
  auto FB = std::make_unique<FuncBuilder>();
  FB->TypeIndex = TypeIdx;
  FB->NumParams = uint32_t(Types[TypeIdx].Params.size());
  Funcs.push_back(std::move(FB));
  return *Funcs.back();
}

uint32_t ModuleBuilder::funcIndex(const FuncBuilder &FB) const {
  for (size_t I = 0; I < Funcs.size(); ++I)
    if (Funcs[I].get() == &FB)
      return uint32_t(Imports.size() + I);
  assert(false && "builder does not belong to this module");
  return 0;
}

uint32_t ModuleBuilder::addMemory(uint32_t MinPages,
                                  std::optional<uint32_t> MaxPages) {
  Limits L;
  L.Min = MinPages;
  if (MaxPages) {
    L.HasMax = true;
    L.Max = *MaxPages;
  }
  Memories.push_back(L);
  return uint32_t(Memories.size() - 1);
}

uint32_t ModuleBuilder::addTable(uint32_t Min, std::optional<uint32_t> Max,
                                 ValType Elem) {
  TableDef T;
  T.Elem = Elem;
  T.Lim.Min = Min;
  if (Max) {
    T.Lim.HasMax = true;
    T.Lim.Max = *Max;
  }
  Tables.push_back(T);
  return uint32_t(Tables.size() - 1);
}

uint32_t ModuleBuilder::importGlobal(const std::string &Mod,
                                     const std::string &Name, ValType T,
                                     bool Mutable) {
  assert(Globals.empty() && "global imports must precede global definitions");
  GlobalImports.push_back({Mod, Name, T, Mutable});
  return uint32_t(GlobalImports.size() - 1);
}

uint32_t ModuleBuilder::addGlobal(ValType T, bool Mutable, InitExpr Init) {
  Globals.push_back({T, Mutable, Init});
  return uint32_t(GlobalImports.size() + Globals.size() - 1);
}

void ModuleBuilder::addExport(const std::string &Name, ExternKind Kind,
                              uint32_t Index) {
  Exports.push_back({Name, Kind, Index});
}

void ModuleBuilder::addElem(uint32_t Offset,
                            std::vector<uint32_t> FuncIndices) {
  addElem(constInit(ValType::I32, Offset), std::move(FuncIndices));
}

void ModuleBuilder::addData(uint32_t Offset, std::vector<uint8_t> Bytes) {
  addData(constInit(ValType::I32, Offset), std::move(Bytes));
}

void ModuleBuilder::addElem(InitExpr Offset,
                            std::vector<uint32_t> FuncIndices) {
  Elems.push_back({Offset, std::move(FuncIndices)});
}

void ModuleBuilder::addData(InitExpr Offset, std::vector<uint8_t> Bytes) {
  Datas.push_back({Offset, std::move(Bytes)});
}

static void writeName(std::vector<uint8_t> &Out, const std::string &S) {
  writeULEB128(Out, S.size());
  Out.insert(Out.end(), S.begin(), S.end());
}

static void writeLimits(std::vector<uint8_t> &Out, const Limits &L) {
  Out.push_back(L.HasMax ? 0x01 : 0x00);
  writeULEB128(Out, L.Min);
  if (L.HasMax)
    writeULEB128(Out, L.Max);
}

static void writeInitExpr(std::vector<uint8_t> &Out, const InitExpr &E) {
  switch (E.K) {
  case InitExpr::Const:
    switch (E.Type) {
    case ValType::I32:
      Out.push_back(uint8_t(Opcode::I32Const));
      writeSLEB128(Out, int32_t(E.Bits));
      break;
    case ValType::I64:
      Out.push_back(uint8_t(Opcode::I64Const));
      writeSLEB128(Out, int64_t(E.Bits));
      break;
    case ValType::F32:
      Out.push_back(uint8_t(Opcode::F32Const));
      for (int I = 0; I < 4; ++I)
        Out.push_back(uint8_t(E.Bits >> (8 * I)));
      break;
    case ValType::F64:
      Out.push_back(uint8_t(Opcode::F64Const));
      for (int I = 0; I < 8; ++I)
        Out.push_back(uint8_t(E.Bits >> (8 * I)));
      break;
    default:
      assert(false && "bad const init type");
    }
    break;
  case InitExpr::GlobalGet:
    Out.push_back(uint8_t(Opcode::GlobalGet));
    writeULEB128(Out, E.Index);
    break;
  case InitExpr::RefNull:
    Out.push_back(uint8_t(Opcode::RefNull));
    Out.push_back(valTypeToByte(E.Type));
    break;
  case InitExpr::RefFuncIdx:
    Out.push_back(uint8_t(Opcode::RefFunc));
    writeULEB128(Out, E.Index);
    break;
  }
  Out.push_back(uint8_t(Opcode::End));
}

/// Appends a section: id byte, payload size, payload.
static void writeSection(std::vector<uint8_t> &Out, uint8_t Id,
                         const std::vector<uint8_t> &Payload) {
  if (Payload.empty())
    return;
  Out.push_back(Id);
  writeULEB128(Out, Payload.size());
  Out.insert(Out.end(), Payload.begin(), Payload.end());
}

std::vector<uint8_t> ModuleBuilder::build() const {
  std::vector<uint8_t> Out = {0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00};
  std::vector<uint8_t> Sec;

  // Type section.
  if (!Types.empty()) {
    Sec.clear();
    writeULEB128(Sec, Types.size());
    for (const FuncType &T : Types) {
      Sec.push_back(0x60);
      writeULEB128(Sec, T.Params.size());
      for (ValType P : T.Params)
        Sec.push_back(valTypeToByte(P));
      writeULEB128(Sec, T.Results.size());
      for (ValType R : T.Results)
        Sec.push_back(valTypeToByte(R));
    }
    writeSection(Out, 1, Sec);
  }

  // Import section.
  if (!Imports.empty() || !GlobalImports.empty()) {
    Sec.clear();
    writeULEB128(Sec, Imports.size() + GlobalImports.size());
    for (const ImportedFunc &I : Imports) {
      writeName(Sec, I.Mod);
      writeName(Sec, I.Name);
      Sec.push_back(uint8_t(ExternKind::Func));
      writeULEB128(Sec, I.TypeIdx);
    }
    for (const ImportedGlobal &G : GlobalImports) {
      writeName(Sec, G.Mod);
      writeName(Sec, G.Name);
      Sec.push_back(uint8_t(ExternKind::Global));
      Sec.push_back(valTypeToByte(G.T));
      Sec.push_back(G.Mutable ? 1 : 0);
    }
    writeSection(Out, 2, Sec);
  }

  // Function section.
  if (!Funcs.empty()) {
    Sec.clear();
    writeULEB128(Sec, Funcs.size());
    for (const auto &F : Funcs)
      writeULEB128(Sec, F->TypeIndex);
    writeSection(Out, 3, Sec);
  }

  // Table section.
  if (!Tables.empty()) {
    Sec.clear();
    writeULEB128(Sec, Tables.size());
    for (const TableDef &T : Tables) {
      Sec.push_back(valTypeToByte(T.Elem));
      writeLimits(Sec, T.Lim);
    }
    writeSection(Out, 4, Sec);
  }

  // Memory section.
  if (!Memories.empty()) {
    Sec.clear();
    writeULEB128(Sec, Memories.size());
    for (const Limits &L : Memories)
      writeLimits(Sec, L);
    writeSection(Out, 5, Sec);
  }

  // Global section.
  if (!Globals.empty()) {
    Sec.clear();
    writeULEB128(Sec, Globals.size());
    for (const GlobalDef &G : Globals) {
      Sec.push_back(valTypeToByte(G.T));
      Sec.push_back(G.Mutable ? 1 : 0);
      writeInitExpr(Sec, G.Init);
    }
    writeSection(Out, 6, Sec);
  }

  // Export section.
  if (!Exports.empty()) {
    Sec.clear();
    writeULEB128(Sec, Exports.size());
    for (const ExportDef &E : Exports) {
      writeName(Sec, E.Name);
      Sec.push_back(uint8_t(E.Kind));
      writeULEB128(Sec, E.Index);
    }
    writeSection(Out, 7, Sec);
  }

  // Start section.
  if (Start) {
    Sec.clear();
    writeULEB128(Sec, *Start);
    writeSection(Out, 8, Sec);
  }

  // Element section.
  if (!Elems.empty()) {
    Sec.clear();
    writeULEB128(Sec, Elems.size());
    for (const ElemSeg &E : Elems) {
      writeULEB128(Sec, 0); // Flags: active, table 0.
      writeInitExpr(Sec, E.Offset);
      writeULEB128(Sec, E.Funcs.size());
      for (uint32_t F : E.Funcs)
        writeULEB128(Sec, F);
    }
    writeSection(Out, 9, Sec);
  }

  // Code section.
  if (!Funcs.empty()) {
    Sec.clear();
    writeULEB128(Sec, Funcs.size());
    for (const auto &F : Funcs) {
      // Compress locals into runs of equal types.
      std::vector<std::pair<uint32_t, ValType>> Groups;
      for (ValType T : F->Locals) {
        if (!Groups.empty() && Groups.back().second == T)
          ++Groups.back().first;
        else
          Groups.push_back({1, T});
      }
      std::vector<uint8_t> Body;
      writeULEB128(Body, Groups.size());
      for (auto &[N, T] : Groups) {
        writeULEB128(Body, N);
        Body.push_back(valTypeToByte(T));
      }
      Body.insert(Body.end(), F->Body.begin(), F->Body.end());
      Body.push_back(uint8_t(Opcode::End));
      writeULEB128(Sec, Body.size());
      Sec.insert(Sec.end(), Body.begin(), Body.end());
    }
    writeSection(Out, 10, Sec);
  }

  // Data section.
  if (!Datas.empty()) {
    Sec.clear();
    writeULEB128(Sec, Datas.size());
    for (const DataSeg &D : Datas) {
      writeULEB128(Sec, 0); // Flags: active, memory 0.
      writeInitExpr(Sec, D.Offset);
      writeULEB128(Sec, D.Bytes.size());
      Sec.insert(Sec.end(), D.Bytes.begin(), D.Bytes.end());
    }
    writeSection(Out, 11, Sec);
  }

  return Out;
}
