//===- wasm/opcodes.cpp - WebAssembly opcode metadata tables --------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "wasm/opcodes.h"

#include <array>

using namespace wisp;

namespace {

/// Metadata tables for plain (single-byte) and 0xFC-prefixed opcodes.
struct OpTables {
  std::array<OpInfo, 256> Plain{};
  std::array<OpInfo, 16> Prefixed{};

  OpInfo &slot(Opcode Op) {
    uint16_t V = uint16_t(Op);
    if (V >= 0xFC00)
      return Prefixed[V & 0xff];
    return Plain[V];
  }

  void special(Opcode Op, const char *Name, ImmKind Imm) {
    OpInfo &I = slot(Op);
    I.Name = Name;
    I.Imm = Imm;
    I.Class = OpClass::Special;
  }

  void unop(Opcode Op, const char *Name, ValType In, ValType Out,
            bool Traps = false) {
    OpInfo &I = slot(Op);
    I.Name = Name;
    I.Imm = ImmKind::None;
    I.Class = OpClass::Simple;
    I.NPop = 1;
    I.Pop[0] = In;
    I.NPush = 1;
    I.Push = Out;
    I.CanTrap = Traps;
  }

  void binop(Opcode Op, const char *Name, ValType T, ValType Out,
             bool Traps = false) {
    OpInfo &I = slot(Op);
    I.Name = Name;
    I.Imm = ImmKind::None;
    I.Class = OpClass::Simple;
    I.NPop = 2;
    I.Pop[0] = T;
    I.Pop[1] = T;
    I.NPush = 1;
    I.Push = Out;
    I.CanTrap = Traps;
  }

  void load(Opcode Op, const char *Name, ValType Out) {
    OpInfo &I = slot(Op);
    I.Name = Name;
    I.Imm = ImmKind::MemArg;
    I.Class = OpClass::Simple;
    I.NPop = 1;
    I.Pop[0] = ValType::I32;
    I.NPush = 1;
    I.Push = Out;
    I.CanTrap = true;
  }

  void store(Opcode Op, const char *Name, ValType In) {
    OpInfo &I = slot(Op);
    I.Name = Name;
    I.Imm = ImmKind::MemArg;
    I.Class = OpClass::Simple;
    I.NPop = 2;
    I.Pop[0] = ValType::I32;
    I.Pop[1] = In;
    I.NPush = 0;
    I.CanTrap = true;
  }
};

} // namespace

static OpTables buildTables() {
  using O = Opcode;
  using V = ValType;
  OpTables T;

  T.special(O::Unreachable, "unreachable", ImmKind::None);
  T.special(O::Nop, "nop", ImmKind::None);
  T.special(O::Block, "block", ImmKind::BlockType);
  T.special(O::Loop, "loop", ImmKind::BlockType);
  T.special(O::If, "if", ImmKind::BlockType);
  T.special(O::Else, "else", ImmKind::None);
  T.special(O::End, "end", ImmKind::None);
  T.special(O::Br, "br", ImmKind::LabelIdx);
  T.special(O::BrIf, "br_if", ImmKind::LabelIdx);
  T.special(O::BrTable, "br_table", ImmKind::BrTable);
  T.special(O::Return, "return", ImmKind::None);
  T.special(O::Call, "call", ImmKind::FuncIdx);
  T.special(O::CallIndirect, "call_indirect", ImmKind::CallIndirect);
  T.special(O::Drop, "drop", ImmKind::None);
  T.special(O::Select, "select", ImmKind::None);
  T.special(O::SelectT, "select", ImmKind::TypeVec);
  T.special(O::LocalGet, "local.get", ImmKind::LocalIdx);
  T.special(O::LocalSet, "local.set", ImmKind::LocalIdx);
  T.special(O::LocalTee, "local.tee", ImmKind::LocalIdx);
  T.special(O::GlobalGet, "global.get", ImmKind::GlobalIdx);
  T.special(O::GlobalSet, "global.set", ImmKind::GlobalIdx);
  T.special(O::I32Const, "i32.const", ImmKind::I32Imm);
  T.special(O::I64Const, "i64.const", ImmKind::I64Imm);
  T.special(O::F32Const, "f32.const", ImmKind::F32Imm);
  T.special(O::F64Const, "f64.const", ImmKind::F64Imm);
  T.special(O::RefNull, "ref.null", ImmKind::RefType);
  T.special(O::RefFunc, "ref.func", ImmKind::FuncIdx);
  T.special(O::MemoryCopy, "memory.copy", ImmKind::MemMemIdx);
  T.special(O::MemoryFill, "memory.fill", ImmKind::MemIdx);

  // memory.size / memory.grow have fixed signatures.
  {
    OpInfo &I = T.slot(O::MemorySize);
    I.Name = "memory.size";
    I.Imm = ImmKind::MemIdx;
    I.Class = OpClass::Simple;
    I.NPush = 1;
    I.Push = V::I32;
  }
  T.unop(O::MemoryGrow, "memory.grow", V::I32, V::I32);
  T.slot(O::MemoryGrow).Imm = ImmKind::MemIdx;
  T.unop(O::RefIsNull, "ref.is_null", V::ExternRef, V::I32);
  T.slot(O::RefIsNull).Class = OpClass::Special; // Accepts any ref type.

  // Loads.
  T.load(O::I32Load, "i32.load", V::I32);
  T.load(O::I64Load, "i64.load", V::I64);
  T.load(O::F32Load, "f32.load", V::F32);
  T.load(O::F64Load, "f64.load", V::F64);
  T.load(O::I32Load8S, "i32.load8_s", V::I32);
  T.load(O::I32Load8U, "i32.load8_u", V::I32);
  T.load(O::I32Load16S, "i32.load16_s", V::I32);
  T.load(O::I32Load16U, "i32.load16_u", V::I32);
  T.load(O::I64Load8S, "i64.load8_s", V::I64);
  T.load(O::I64Load8U, "i64.load8_u", V::I64);
  T.load(O::I64Load16S, "i64.load16_s", V::I64);
  T.load(O::I64Load16U, "i64.load16_u", V::I64);
  T.load(O::I64Load32S, "i64.load32_s", V::I64);
  T.load(O::I64Load32U, "i64.load32_u", V::I64);

  // Stores.
  T.store(O::I32Store, "i32.store", V::I32);
  T.store(O::I64Store, "i64.store", V::I64);
  T.store(O::F32Store, "f32.store", V::F32);
  T.store(O::F64Store, "f64.store", V::F64);
  T.store(O::I32Store8, "i32.store8", V::I32);
  T.store(O::I32Store16, "i32.store16", V::I32);
  T.store(O::I64Store8, "i64.store8", V::I64);
  T.store(O::I64Store16, "i64.store16", V::I64);
  T.store(O::I64Store32, "i64.store32", V::I64);

  // i32 comparisons.
  T.unop(O::I32Eqz, "i32.eqz", V::I32, V::I32);
  T.binop(O::I32Eq, "i32.eq", V::I32, V::I32);
  T.binop(O::I32Ne, "i32.ne", V::I32, V::I32);
  T.binop(O::I32LtS, "i32.lt_s", V::I32, V::I32);
  T.binop(O::I32LtU, "i32.lt_u", V::I32, V::I32);
  T.binop(O::I32GtS, "i32.gt_s", V::I32, V::I32);
  T.binop(O::I32GtU, "i32.gt_u", V::I32, V::I32);
  T.binop(O::I32LeS, "i32.le_s", V::I32, V::I32);
  T.binop(O::I32LeU, "i32.le_u", V::I32, V::I32);
  T.binop(O::I32GeS, "i32.ge_s", V::I32, V::I32);
  T.binop(O::I32GeU, "i32.ge_u", V::I32, V::I32);

  // i64 comparisons (result i32).
  T.unop(O::I64Eqz, "i64.eqz", V::I64, V::I32);
  T.binop(O::I64Eq, "i64.eq", V::I64, V::I32);
  T.binop(O::I64Ne, "i64.ne", V::I64, V::I32);
  T.binop(O::I64LtS, "i64.lt_s", V::I64, V::I32);
  T.binop(O::I64LtU, "i64.lt_u", V::I64, V::I32);
  T.binop(O::I64GtS, "i64.gt_s", V::I64, V::I32);
  T.binop(O::I64GtU, "i64.gt_u", V::I64, V::I32);
  T.binop(O::I64LeS, "i64.le_s", V::I64, V::I32);
  T.binop(O::I64LeU, "i64.le_u", V::I64, V::I32);
  T.binop(O::I64GeS, "i64.ge_s", V::I64, V::I32);
  T.binop(O::I64GeU, "i64.ge_u", V::I64, V::I32);

  // Float comparisons (result i32).
  T.binop(O::F32Eq, "f32.eq", V::F32, V::I32);
  T.binop(O::F32Ne, "f32.ne", V::F32, V::I32);
  T.binop(O::F32Lt, "f32.lt", V::F32, V::I32);
  T.binop(O::F32Gt, "f32.gt", V::F32, V::I32);
  T.binop(O::F32Le, "f32.le", V::F32, V::I32);
  T.binop(O::F32Ge, "f32.ge", V::F32, V::I32);
  T.binop(O::F64Eq, "f64.eq", V::F64, V::I32);
  T.binop(O::F64Ne, "f64.ne", V::F64, V::I32);
  T.binop(O::F64Lt, "f64.lt", V::F64, V::I32);
  T.binop(O::F64Gt, "f64.gt", V::F64, V::I32);
  T.binop(O::F64Le, "f64.le", V::F64, V::I32);
  T.binop(O::F64Ge, "f64.ge", V::F64, V::I32);

  // i32 arithmetic.
  T.unop(O::I32Clz, "i32.clz", V::I32, V::I32);
  T.unop(O::I32Ctz, "i32.ctz", V::I32, V::I32);
  T.unop(O::I32Popcnt, "i32.popcnt", V::I32, V::I32);
  T.binop(O::I32Add, "i32.add", V::I32, V::I32);
  T.binop(O::I32Sub, "i32.sub", V::I32, V::I32);
  T.binop(O::I32Mul, "i32.mul", V::I32, V::I32);
  T.binop(O::I32DivS, "i32.div_s", V::I32, V::I32, true);
  T.binop(O::I32DivU, "i32.div_u", V::I32, V::I32, true);
  T.binop(O::I32RemS, "i32.rem_s", V::I32, V::I32, true);
  T.binop(O::I32RemU, "i32.rem_u", V::I32, V::I32, true);
  T.binop(O::I32And, "i32.and", V::I32, V::I32);
  T.binop(O::I32Or, "i32.or", V::I32, V::I32);
  T.binop(O::I32Xor, "i32.xor", V::I32, V::I32);
  T.binop(O::I32Shl, "i32.shl", V::I32, V::I32);
  T.binop(O::I32ShrS, "i32.shr_s", V::I32, V::I32);
  T.binop(O::I32ShrU, "i32.shr_u", V::I32, V::I32);
  T.binop(O::I32Rotl, "i32.rotl", V::I32, V::I32);
  T.binop(O::I32Rotr, "i32.rotr", V::I32, V::I32);

  // i64 arithmetic.
  T.unop(O::I64Clz, "i64.clz", V::I64, V::I64);
  T.unop(O::I64Ctz, "i64.ctz", V::I64, V::I64);
  T.unop(O::I64Popcnt, "i64.popcnt", V::I64, V::I64);
  T.binop(O::I64Add, "i64.add", V::I64, V::I64);
  T.binop(O::I64Sub, "i64.sub", V::I64, V::I64);
  T.binop(O::I64Mul, "i64.mul", V::I64, V::I64);
  T.binop(O::I64DivS, "i64.div_s", V::I64, V::I64, true);
  T.binop(O::I64DivU, "i64.div_u", V::I64, V::I64, true);
  T.binop(O::I64RemS, "i64.rem_s", V::I64, V::I64, true);
  T.binop(O::I64RemU, "i64.rem_u", V::I64, V::I64, true);
  T.binop(O::I64And, "i64.and", V::I64, V::I64);
  T.binop(O::I64Or, "i64.or", V::I64, V::I64);
  T.binop(O::I64Xor, "i64.xor", V::I64, V::I64);
  T.binop(O::I64Shl, "i64.shl", V::I64, V::I64);
  T.binop(O::I64ShrS, "i64.shr_s", V::I64, V::I64);
  T.binop(O::I64ShrU, "i64.shr_u", V::I64, V::I64);
  T.binop(O::I64Rotl, "i64.rotl", V::I64, V::I64);
  T.binop(O::I64Rotr, "i64.rotr", V::I64, V::I64);

  // f32 arithmetic.
  T.unop(O::F32Abs, "f32.abs", V::F32, V::F32);
  T.unop(O::F32Neg, "f32.neg", V::F32, V::F32);
  T.unop(O::F32Ceil, "f32.ceil", V::F32, V::F32);
  T.unop(O::F32Floor, "f32.floor", V::F32, V::F32);
  T.unop(O::F32Trunc, "f32.trunc", V::F32, V::F32);
  T.unop(O::F32Nearest, "f32.nearest", V::F32, V::F32);
  T.unop(O::F32Sqrt, "f32.sqrt", V::F32, V::F32);
  T.binop(O::F32Add, "f32.add", V::F32, V::F32);
  T.binop(O::F32Sub, "f32.sub", V::F32, V::F32);
  T.binop(O::F32Mul, "f32.mul", V::F32, V::F32);
  T.binop(O::F32Div, "f32.div", V::F32, V::F32);
  T.binop(O::F32Min, "f32.min", V::F32, V::F32);
  T.binop(O::F32Max, "f32.max", V::F32, V::F32);
  T.binop(O::F32Copysign, "f32.copysign", V::F32, V::F32);

  // f64 arithmetic.
  T.unop(O::F64Abs, "f64.abs", V::F64, V::F64);
  T.unop(O::F64Neg, "f64.neg", V::F64, V::F64);
  T.unop(O::F64Ceil, "f64.ceil", V::F64, V::F64);
  T.unop(O::F64Floor, "f64.floor", V::F64, V::F64);
  T.unop(O::F64Trunc, "f64.trunc", V::F64, V::F64);
  T.unop(O::F64Nearest, "f64.nearest", V::F64, V::F64);
  T.unop(O::F64Sqrt, "f64.sqrt", V::F64, V::F64);
  T.binop(O::F64Add, "f64.add", V::F64, V::F64);
  T.binop(O::F64Sub, "f64.sub", V::F64, V::F64);
  T.binop(O::F64Mul, "f64.mul", V::F64, V::F64);
  T.binop(O::F64Div, "f64.div", V::F64, V::F64);
  T.binop(O::F64Min, "f64.min", V::F64, V::F64);
  T.binop(O::F64Max, "f64.max", V::F64, V::F64);
  T.binop(O::F64Copysign, "f64.copysign", V::F64, V::F64);

  // Conversions.
  T.unop(O::I32WrapI64, "i32.wrap_i64", V::I64, V::I32);
  T.unop(O::I32TruncF32S, "i32.trunc_f32_s", V::F32, V::I32, true);
  T.unop(O::I32TruncF32U, "i32.trunc_f32_u", V::F32, V::I32, true);
  T.unop(O::I32TruncF64S, "i32.trunc_f64_s", V::F64, V::I32, true);
  T.unop(O::I32TruncF64U, "i32.trunc_f64_u", V::F64, V::I32, true);
  T.unop(O::I64ExtendI32S, "i64.extend_i32_s", V::I32, V::I64);
  T.unop(O::I64ExtendI32U, "i64.extend_i32_u", V::I32, V::I64);
  T.unop(O::I64TruncF32S, "i64.trunc_f32_s", V::F32, V::I64, true);
  T.unop(O::I64TruncF32U, "i64.trunc_f32_u", V::F32, V::I64, true);
  T.unop(O::I64TruncF64S, "i64.trunc_f64_s", V::F64, V::I64, true);
  T.unop(O::I64TruncF64U, "i64.trunc_f64_u", V::F64, V::I64, true);
  T.unop(O::F32ConvertI32S, "f32.convert_i32_s", V::I32, V::F32);
  T.unop(O::F32ConvertI32U, "f32.convert_i32_u", V::I32, V::F32);
  T.unop(O::F32ConvertI64S, "f32.convert_i64_s", V::I64, V::F32);
  T.unop(O::F32ConvertI64U, "f32.convert_i64_u", V::I64, V::F32);
  T.unop(O::F32DemoteF64, "f32.demote_f64", V::F64, V::F32);
  T.unop(O::F64ConvertI32S, "f64.convert_i32_s", V::I32, V::F64);
  T.unop(O::F64ConvertI32U, "f64.convert_i32_u", V::I32, V::F64);
  T.unop(O::F64ConvertI64S, "f64.convert_i64_s", V::I64, V::F64);
  T.unop(O::F64ConvertI64U, "f64.convert_i64_u", V::I64, V::F64);
  T.unop(O::F64PromoteF32, "f64.promote_f32", V::F32, V::F64);
  T.unop(O::I32ReinterpretF32, "i32.reinterpret_f32", V::F32, V::I32);
  T.unop(O::I64ReinterpretF64, "i64.reinterpret_f64", V::F64, V::I64);
  T.unop(O::F32ReinterpretI32, "f32.reinterpret_i32", V::I32, V::F32);
  T.unop(O::F64ReinterpretI64, "f64.reinterpret_i64", V::I64, V::F64);
  T.unop(O::I32Extend8S, "i32.extend8_s", V::I32, V::I32);
  T.unop(O::I32Extend16S, "i32.extend16_s", V::I32, V::I32);
  T.unop(O::I64Extend8S, "i64.extend8_s", V::I64, V::I64);
  T.unop(O::I64Extend16S, "i64.extend16_s", V::I64, V::I64);
  T.unop(O::I64Extend32S, "i64.extend32_s", V::I64, V::I64);

  // Saturating truncations (0xFC prefix).
  T.unop(O::I32TruncSatF32S, "i32.trunc_sat_f32_s", V::F32, V::I32);
  T.unop(O::I32TruncSatF32U, "i32.trunc_sat_f32_u", V::F32, V::I32);
  T.unop(O::I32TruncSatF64S, "i32.trunc_sat_f64_s", V::F64, V::I32);
  T.unop(O::I32TruncSatF64U, "i32.trunc_sat_f64_u", V::F64, V::I32);
  T.unop(O::I64TruncSatF32S, "i64.trunc_sat_f32_s", V::F32, V::I64);
  T.unop(O::I64TruncSatF32U, "i64.trunc_sat_f32_u", V::F32, V::I64);
  T.unop(O::I64TruncSatF64S, "i64.trunc_sat_f64_s", V::F64, V::I64);
  T.unop(O::I64TruncSatF64U, "i64.trunc_sat_f64_u", V::F64, V::I64);
  return T;
}

static const OpTables &opTables() {
  static const OpTables Tables = buildTables();
  return Tables;
}

const OpInfo &wisp::opInfo(Opcode Op) {
  const OpTables &T = opTables();
  uint16_t V = uint16_t(Op);
  if (V >= 0xFC00) {
    static const OpInfo Invalid{};
    unsigned Sub = V & 0xff;
    if (Sub >= T.Prefixed.size())
      return Invalid;
    return T.Prefixed[Sub];
  }
  return T.Plain[V];
}

const char *wisp::opName(Opcode Op) {
  const OpInfo &I = opInfo(Op);
  return I.Name ? I.Name : "<invalid>";
}
