//===- wasm/validator.cpp - WebAssembly validation -------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "wasm/validator.h"

#include "support/format.h"
#include "wasm/codereader.h"

using namespace wisp;

namespace {

/// One entry of the validation control stack.
struct CtrlFrame {
  Opcode KindOp = Opcode::Block; ///< Block, Loop, If, or Else.
  std::vector<ValType> Params;
  std::vector<ValType> Results;
  /// Operand stack height at entry, after popping the params.
  uint32_t Height = 0;
  bool Unreachable = false;
  /// Loop only: bytecode offset of the first body instruction and the
  /// side-table position there.
  uint32_t HeaderIp = 0;
  uint32_t HeaderStp = 0;
  /// Side-table entries that target this frame's end label.
  std::vector<uint32_t> PatchList;
  /// If only: the false-edge entry, patched at else (or routed to end).
  uint32_t IfEntry = ~0u;
};

/// Validates one function body and builds its side table.
class FuncValidator {
public:
  FuncValidator(Module &M, FuncDecl &F, WasmError *Err)
      : M(M), F(F), Err(Err), R(M.Bytes.data(), F.BodyStart, F.BodyEnd) {}

  bool run();

private:
  bool error(const char *Fmt, ...) __attribute__((format(printf, 2, 3)));

  // --- Type stack ---
  void pushVal(ValType T) {
    Stack.push_back(T);
    if (Stack.size() > MaxStack)
      MaxStack = uint32_t(Stack.size());
  }
  bool popAny(ValType *Out) {
    CtrlFrame &C = Ctrl.back();
    if (Stack.size() == C.Height) {
      if (C.Unreachable) {
        *Out = ValType::Bottom;
        return true;
      }
      return error("operand stack underflow");
    }
    *Out = Stack.back();
    Stack.pop_back();
    return true;
  }
  bool popVal(ValType Expect) {
    ValType T = ValType::Bottom;
    if (!popAny(&T))
      return false;
    if (T != Expect && T != ValType::Bottom)
      return error("type mismatch: expected %s, found %s",
                   valTypeName(Expect), valTypeName(T));
    return true;
  }
  bool popVals(const std::vector<ValType> &Ts) {
    for (size_t I = Ts.size(); I > 0; --I)
      if (!popVal(Ts[I - 1]))
        return false;
    return true;
  }
  void pushVals(const std::vector<ValType> &Ts) {
    for (ValType T : Ts)
      pushVal(T);
  }
  void markUnreachable() {
    CtrlFrame &C = Ctrl.back();
    Stack.resize(C.Height);
    C.Unreachable = true;
  }

  // --- Control stack ---
  bool resolveBlockType(BlockType BT, std::vector<ValType> *Params,
                        std::vector<ValType> *Results) {
    switch (BT.K) {
    case BlockType::Empty:
      return true;
    case BlockType::OneResult:
      Results->push_back(BT.Result);
      return true;
    case BlockType::FuncTypeIdx:
      if (BT.TypeIdx >= M.Types.size())
        return error("block type index %u out of range", BT.TypeIdx);
      *Params = M.Types[BT.TypeIdx].Params;
      *Results = M.Types[BT.TypeIdx].Results;
      return true;
    }
    return error("bad block type");
  }
  bool pushCtrl(Opcode KindOp, std::vector<ValType> Params,
                std::vector<ValType> Results) {
    if (!popVals(Params))
      return false;
    CtrlFrame C;
    C.KindOp = KindOp;
    C.Height = uint32_t(Stack.size());
    C.Params = std::move(Params);
    C.Results = std::move(Results);
    Ctrl.push_back(std::move(C));
    pushVals(Ctrl.back().Params);
    return true;
  }
  /// Pops the top control frame after checking its results are present at
  /// exactly the right height. The caller pushes the results.
  bool popCtrl(CtrlFrame *Out) {
    assert(!Ctrl.empty() && "control stack empty");
    CtrlFrame &C = Ctrl.back();
    if (!popVals(C.Results))
      return false;
    if (Stack.size() != C.Height)
      return error("%zu superfluous values at end of block",
                   Stack.size() - C.Height);
    *Out = std::move(C);
    Ctrl.pop_back();
    return true;
  }
  const std::vector<ValType> &labelTypes(const CtrlFrame &C) const {
    return C.KindOp == Opcode::Loop ? C.Params : C.Results;
  }

  // --- Side table ---
  /// Emits the side-table entry for a branch to depth \p Depth. Loop
  /// targets are resolved immediately; forward targets are patched when
  /// the construct's end is reached.
  bool emitBranchEntry(uint32_t Depth) {
    if (Depth >= Ctrl.size())
      return error("branch depth %u exceeds nesting %zu", Depth, Ctrl.size());
    CtrlFrame &C = Ctrl[Ctrl.size() - 1 - Depth];
    SideTableEntry E;
    E.ValCount = uint32_t(labelTypes(C).size());
    E.TargetHeight = C.Height;
    uint32_t Idx = uint32_t(ST.size());
    if (C.KindOp == Opcode::Loop) {
      E.TargetIp = C.HeaderIp;
      E.TargetStp = C.HeaderStp;
    } else {
      C.PatchList.push_back(Idx);
    }
    ST.push_back(E);
    return true;
  }

  bool checkMemory() {
    if (M.Memories.empty())
      return error("memory instruction without declared memory");
    return true;
  }
  bool checkAlign(Opcode Op, uint32_t Align);

  bool validateOp(Opcode Op, size_t OpPos);

  Module &M;
  FuncDecl &F;
  WasmError *Err;
  CodeReader R;
  std::vector<ValType> Stack;
  std::vector<CtrlFrame> Ctrl;
  std::vector<SideTableEntry> ST;
  uint32_t MaxStack = 0;
  bool Done = false;
};

} // namespace

bool FuncValidator::error(const char *Fmt, ...) {
  if (Err) {
    va_list Args;
    va_start(Args, Fmt);
    Err->Message =
        strFormat("func %u: ", F.Index) + strFormatV(Fmt, Args);
    va_end(Args);
    Err->Offset = R.pc();
  }
  return false;
}

/// Natural access width in bytes for a memory opcode.
static uint32_t memAccessSize(Opcode Op) {
  switch (Op) {
  case Opcode::I32Load8S:
  case Opcode::I32Load8U:
  case Opcode::I64Load8S:
  case Opcode::I64Load8U:
  case Opcode::I32Store8:
  case Opcode::I64Store8:
    return 1;
  case Opcode::I32Load16S:
  case Opcode::I32Load16U:
  case Opcode::I64Load16S:
  case Opcode::I64Load16U:
  case Opcode::I32Store16:
  case Opcode::I64Store16:
    return 2;
  case Opcode::I32Load:
  case Opcode::F32Load:
  case Opcode::I64Load32S:
  case Opcode::I64Load32U:
  case Opcode::I32Store:
  case Opcode::F32Store:
  case Opcode::I64Store32:
    return 4;
  default:
    return 8;
  }
}

bool FuncValidator::checkAlign(Opcode Op, uint32_t Align) {
  uint32_t Natural = memAccessSize(Op);
  if ((1u << Align) > Natural)
    return error("alignment 2**%u exceeds natural alignment %u of %s", Align,
                 Natural, opName(Op));
  return true;
}

bool FuncValidator::validateOp(Opcode Op, size_t OpPos) {
  const OpInfo &Info = opInfo(Op);
  if (!Info.Name)
    return error("unknown opcode 0x%x", unsigned(Op));

  // Generic handling for fixed-signature opcodes.
  if (Info.Class == OpClass::Simple) {
    switch (Info.Imm) {
    case ImmKind::MemArg: {
      MemArg A = R.readMemArg();
      if (!R.ok())
        return error("malformed memarg");
      if (!checkMemory() || !checkAlign(Op, A.Align))
        return false;
      break;
    }
    case ImmKind::MemIdx:
      if (R.readByte() != 0)
        return error("nonzero memory index");
      if (!checkMemory())
        return false;
      break;
    default:
      break;
    }
    for (unsigned I = Info.NPop; I > 0; --I)
      if (!popVal(Info.Pop[I - 1]))
        return false;
    if (Info.NPush)
      pushVal(Info.Push);
    return true;
  }

  switch (Op) {
  case Opcode::Nop:
    return true;
  case Opcode::Unreachable:
    markUnreachable();
    return true;

  case Opcode::Block:
  case Opcode::Loop:
  case Opcode::If: {
    if (Op == Opcode::If && !popVal(ValType::I32))
      return false;
    BlockType BT = R.readBlockType();
    if (!R.ok())
      return error("malformed block type");
    std::vector<ValType> Params, Results;
    if (!resolveBlockType(BT, &Params, &Results))
      return false;
    uint32_t IfEntryIdx = ~0u;
    if (Op == Opcode::If) {
      // False edge: carries the params; height = frame height (set below).
      SideTableEntry E;
      E.ValCount = uint32_t(Params.size());
      IfEntryIdx = uint32_t(ST.size());
      ST.push_back(E);
    }
    uint32_t BodyIp = uint32_t(R.pc());
    uint32_t BodyStp = uint32_t(ST.size());
    if (!pushCtrl(Op, std::move(Params), std::move(Results)))
      return false;
    CtrlFrame &C = Ctrl.back();
    if (Op == Opcode::Loop) {
      C.HeaderIp = BodyIp;
      C.HeaderStp = BodyStp;
    }
    if (Op == Opcode::If) {
      C.IfEntry = IfEntryIdx;
      ST[IfEntryIdx].TargetHeight = C.Height;
    }
    return true;
  }

  case Opcode::Else: {
    if (Ctrl.size() <= 1 || Ctrl.back().KindOp != Opcode::If)
      return error("else without matching if");
    // The else-skip entry: taken when the then-branch falls into `else`.
    {
      SideTableEntry E;
      E.ValCount = uint32_t(Ctrl.back().Results.size());
      E.TargetHeight = Ctrl.back().Height;
      Ctrl.back().PatchList.push_back(uint32_t(ST.size()));
      ST.push_back(E);
    }
    CtrlFrame Frame;
    if (!popCtrl(&Frame))
      return false;
    // The if false edge lands just after the else opcode.
    ST[Frame.IfEntry].TargetIp = uint32_t(R.pc());
    ST[Frame.IfEntry].TargetStp = uint32_t(ST.size());
    Frame.IfEntry = ~0u;
    Frame.KindOp = Opcode::Else;
    Frame.Unreachable = false;
    Ctrl.push_back(std::move(Frame));
    pushVals(Ctrl.back().Params);
    Stack.resize(Ctrl.back().Height + Ctrl.back().Params.size());
    return true;
  }

  case Opcode::End: {
    CtrlFrame Frame;
    if (!popCtrl(&Frame))
      return false;
    if (Frame.KindOp == Opcode::If) {
      // No else: the false edge must produce the results directly, so the
      // type requires params == results.
      if (Frame.Params != Frame.Results)
        return error("if without else requires matching params and results");
      Frame.PatchList.push_back(Frame.IfEntry);
    }
    // Inner branches land just past their construct's `end`; branches to
    // the function label land ON the terminating `end` opcode, whose
    // handler is the return path (landing past it would walk the
    // interpreter off the body into adjacent module bytes).
    uint32_t EndIp = Ctrl.empty() ? uint32_t(OpPos) : uint32_t(R.pc());
    uint32_t EndStp = uint32_t(ST.size());
    for (uint32_t Idx : Frame.PatchList) {
      ST[Idx].TargetIp = EndIp;
      ST[Idx].TargetStp = EndStp;
    }
    if (Ctrl.empty()) {
      // Function-level end.
      pushVals(Frame.Results);
      if (R.pc() != F.BodyEnd)
        return error("%zd trailing bytes after function end",
                     ptrdiff_t(F.BodyEnd) - ptrdiff_t(R.pc()));
      Done = true;
      return true;
    }
    pushVals(Frame.Results);
    return true;
  }

  case Opcode::Br: {
    uint32_t Depth = R.readU32();
    if (!R.ok())
      return error("malformed branch depth");
    if (!emitBranchEntry(Depth))
      return false;
    if (!popVals(labelTypes(Ctrl[Ctrl.size() - 1 - Depth])))
      return false;
    markUnreachable();
    return true;
  }

  case Opcode::BrIf: {
    uint32_t Depth = R.readU32();
    if (!R.ok())
      return error("malformed branch depth");
    if (!popVal(ValType::I32))
      return false;
    if (!emitBranchEntry(Depth))
      return false;
    const std::vector<ValType> &LT = labelTypes(Ctrl[Ctrl.size() - 1 - Depth]);
    if (!popVals(LT))
      return false;
    pushVals(LT);
    return true;
  }

  case Opcode::BrTable: {
    uint32_t N = R.readU32();
    if (!R.ok())
      return error("malformed br_table");
    if (!popVal(ValType::I32))
      return false;
    std::vector<uint32_t> Targets(N);
    for (uint32_t I = 0; I < N; ++I)
      Targets[I] = R.readU32();
    uint32_t Default = R.readU32();
    if (!R.ok())
      return error("malformed br_table targets");
    if (Default >= Ctrl.size())
      return error("br_table default depth out of range");
    const std::vector<ValType> &DefLT =
        labelTypes(Ctrl[Ctrl.size() - 1 - Default]);
    for (uint32_t T : Targets) {
      if (T >= Ctrl.size())
        return error("br_table target depth out of range");
      if (labelTypes(Ctrl[Ctrl.size() - 1 - T]) != DefLT)
        return error("br_table labels have inconsistent types");
    }
    for (uint32_t T : Targets)
      if (!emitBranchEntry(T))
        return false;
    if (!emitBranchEntry(Default))
      return false;
    if (!popVals(DefLT))
      return false;
    markUnreachable();
    return true;
  }

  case Opcode::Return: {
    if (!popVals(M.Types[F.TypeIdx].Results))
      return false;
    markUnreachable();
    return true;
  }

  case Opcode::Call: {
    uint32_t Idx = R.readU32();
    if (!R.ok() || Idx >= M.Funcs.size())
      return error("call index out of range");
    const FuncType &FT = M.funcType(Idx);
    if (!popVals(FT.Params))
      return false;
    pushVals(FT.Results);
    return true;
  }

  case Opcode::CallIndirect: {
    uint32_t TypeIdx = R.readU32();
    uint32_t TableIdx = R.readU32();
    if (!R.ok() || TypeIdx >= M.Types.size())
      return error("call_indirect type index out of range");
    if (TableIdx >= M.Tables.size())
      return error("call_indirect table index out of range");
    if (M.Tables[TableIdx].Elem != ValType::FuncRef)
      return error("call_indirect table is not funcref");
    if (!popVal(ValType::I32))
      return false;
    const FuncType &FT = M.Types[TypeIdx];
    if (!popVals(FT.Params))
      return false;
    pushVals(FT.Results);
    return true;
  }

  case Opcode::Drop: {
    ValType T = ValType::Bottom;
    return popAny(&T);
  }

  case Opcode::Select: {
    if (!popVal(ValType::I32))
      return false;
    ValType A = ValType::Bottom, B = ValType::Bottom;
    if (!popAny(&A) || !popAny(&B))
      return false;
    if (A != B && A != ValType::Bottom && B != ValType::Bottom)
      return error("select operands disagree: %s vs %s", valTypeName(A),
                   valTypeName(B));
    ValType T = A != ValType::Bottom ? A : B;
    if (T != ValType::Bottom && isRefType(T))
      return error("untyped select on reference type");
    pushVal(T);
    return true;
  }

  case Opcode::SelectT: {
    uint32_t N = R.readU32();
    if (!R.ok() || N != 1)
      return error("select_t requires exactly one type");
    ValType T = R.readValType();
    if (!R.ok())
      return error("malformed select_t type");
    if (!popVal(ValType::I32) || !popVal(T) || !popVal(T))
      return false;
    pushVal(T);
    return true;
  }

  case Opcode::LocalGet:
  case Opcode::LocalSet:
  case Opcode::LocalTee: {
    uint32_t Idx = R.readU32();
    if (!R.ok() || Idx >= F.LocalTypes.size())
      return error("local index out of range");
    ValType T = F.LocalTypes[Idx];
    if (Op == Opcode::LocalGet) {
      pushVal(T);
    } else if (Op == Opcode::LocalSet) {
      if (!popVal(T))
        return false;
    } else {
      if (!popVal(T))
        return false;
      pushVal(T);
    }
    return true;
  }

  case Opcode::GlobalGet:
  case Opcode::GlobalSet: {
    uint32_t Idx = R.readU32();
    if (!R.ok() || Idx >= M.Globals.size())
      return error("global index out of range");
    const GlobalDecl &G = M.Globals[Idx];
    if (Op == Opcode::GlobalGet) {
      pushVal(G.Type);
    } else {
      if (!G.Mutable)
        return error("global.set of immutable global %u", Idx);
      if (!popVal(G.Type))
        return false;
    }
    return true;
  }

  case Opcode::I32Const:
    (void)R.readS32();
    if (!R.ok())
      return error("malformed i32 constant");
    pushVal(ValType::I32);
    return true;
  case Opcode::I64Const:
    (void)R.readS64();
    if (!R.ok())
      return error("malformed i64 constant");
    pushVal(ValType::I64);
    return true;
  case Opcode::F32Const:
    (void)R.readF32Bits();
    if (!R.ok())
      return error("malformed f32 constant");
    pushVal(ValType::F32);
    return true;
  case Opcode::F64Const:
    (void)R.readF64Bits();
    if (!R.ok())
      return error("malformed f64 constant");
    pushVal(ValType::F64);
    return true;

  case Opcode::RefNull: {
    ValType T = R.readValType();
    if (!R.ok() || !isRefType(T))
      return error("ref.null requires a reference type");
    pushVal(T);
    return true;
  }
  case Opcode::RefIsNull: {
    ValType T = ValType::Bottom;
    if (!popAny(&T))
      return false;
    if (T != ValType::Bottom && !isRefType(T))
      return error("ref.is_null on non-reference");
    pushVal(ValType::I32);
    return true;
  }
  case Opcode::RefFunc: {
    uint32_t Idx = R.readU32();
    if (!R.ok() || Idx >= M.Funcs.size())
      return error("ref.func index out of range");
    pushVal(ValType::FuncRef);
    return true;
  }

  case Opcode::MemoryCopy: {
    if (R.readByte() != 0 || R.readByte() != 0)
      return error("nonzero memory index");
    if (!checkMemory())
      return false;
    if (!popVal(ValType::I32) || !popVal(ValType::I32) ||
        !popVal(ValType::I32))
      return false;
    return true;
  }
  case Opcode::MemoryFill: {
    if (R.readByte() != 0)
      return error("nonzero memory index");
    if (!checkMemory())
      return false;
    if (!popVal(ValType::I32) || !popVal(ValType::I32) ||
        !popVal(ValType::I32))
      return false;
    return true;
  }

  default:
    return error("unhandled opcode %s", opName(Op));
  }
}

bool FuncValidator::run() {
  // The function body is an implicit block producing the results.
  CtrlFrame Root;
  Root.KindOp = Opcode::Block;
  Root.Results = M.Types[F.TypeIdx].Results;
  Ctrl.push_back(std::move(Root));

  while (!Done) {
    if (R.atEnd())
      return error("function body not terminated by end");
    size_t OpPos = R.pc();
    Opcode Op = R.readOpcode();
    if (!R.ok())
      return error("malformed opcode");
    if (!validateOp(Op, OpPos))
      return false;
  }
  F.MaxStack = MaxStack;
  F.Table.Entries = std::move(ST);
  return true;
}

bool wisp::validateFunction(Module &M, FuncDecl &F, WasmError *Err) {
  FuncValidator V(M, F, Err);
  return V.run();
}

/// Checks one constant initializer at module level. The reader enforces
/// the same rules at decode time; this pass is defense-in-depth for
/// modules assembled programmatically (fuzzer mutations, future binary
/// paths) and is what instantiation's in-order global evaluation — and
/// the instance-image builder's pre-evaluation — rely on: a global.get
/// may only name an already-defined immutable global, so every read
/// observes an initialized value.
static bool validateInitExpr(const Module &M, const InitExpr &E,
                             uint32_t DefinedBoundary, ValType Expect,
                             const char *What, WasmError *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      Err->Message = Msg;
    return false;
  };
  if (E.K == InitExpr::GlobalGet) {
    if (E.Index >= DefinedBoundary)
      return Fail(strFormat("%s references undefined global %u", What,
                            E.Index));
    if (M.Globals[E.Index].Mutable)
      return Fail(strFormat("%s references mutable global %u", What, E.Index));
    if (M.Globals[E.Index].Type != Expect)
      return Fail(strFormat("%s type mismatch", What));
  } else if (E.K == InitExpr::RefFuncIdx) {
    if (E.Index >= M.Funcs.size())
      return Fail(strFormat("%s ref.func index out of range", What));
  } else if (E.K == InitExpr::Const && E.Type != Expect) {
    return Fail(strFormat("%s type mismatch", What));
  }
  return true;
}

bool wisp::validateModule(Module &M, WasmError *Err) {
  // Global initializers: each may only consult globals defined before it
  // (imports precede all definitions in index space).
  for (size_t I = 0; I < M.Globals.size(); ++I) {
    const GlobalDecl &G = M.Globals[I];
    if (G.Imported)
      continue;
    if (!validateInitExpr(M, G.Init, uint32_t(I), G.Type,
                          "global init expr", Err))
      return false;
  }

  // Segment offsets: all globals are in scope (segments follow the global
  // section), but memory/table existence and offset types must hold.
  for (const ElemSegment &E : M.Elems) {
    if (E.TableIdx >= M.Tables.size()) {
      if (Err)
        Err->Message = "element segment without table";
      return false;
    }
    if (!validateInitExpr(M, E.Offset, uint32_t(M.Globals.size()),
                          ValType::I32, "element segment offset", Err))
      return false;
  }
  for (const DataSegment &D : M.Datas) {
    if (M.Memories.empty()) {
      if (Err)
        Err->Message = "data segment without memory";
      return false;
    }
    if (!validateInitExpr(M, D.Offset, uint32_t(M.Globals.size()),
                          ValType::I32, "data segment offset", Err))
      return false;
  }

  // Start function must be [] -> [].
  if (M.Start) {
    const FuncType &FT = M.funcType(*M.Start);
    if (!FT.Params.empty() || !FT.Results.empty()) {
      if (Err)
        Err->Message = "start function must have empty signature";
      return false;
    }
  }
  for (FuncDecl &F : M.Funcs) {
    if (F.Imported)
      continue;
    if (!validateFunction(M, F, Err))
      return false;
  }
  M.Validated = true;
  return true;
}
