//===- wasm/module.h - WebAssembly module model -----------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-memory representation of a decoded WebAssembly module. Function
/// bodies are *not* rewritten: they are byte ranges into the original
/// module bytes, which is what enables in-place interpretation. Validation
/// attaches a side table per function with pre-computed control transfer
/// targets (see wasm/sidetable.h).
///
//===----------------------------------------------------------------------===//

#ifndef WISP_WASM_MODULE_H
#define WISP_WASM_MODULE_H

#include "wasm/sidetable.h"
#include "wasm/types.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace wisp {

/// Kind of an import or export.
enum class ExternKind : uint8_t { Func = 0, Table = 1, Memory = 2, Global = 3 };

/// A constant initializer expression (globals, segment offsets).
struct InitExpr {
  enum Kind : uint8_t { Const, GlobalGet, RefNull, RefFuncIdx } K = Const;
  ValType Type = ValType::I32;
  uint64_t Bits = 0;  ///< Constant bit pattern when K == Const.
  uint32_t Index = 0; ///< Global or function index.
};

/// A function: signature, locals and body byte range. Imports have no body.
struct FuncDecl {
  uint32_t TypeIdx = 0;
  uint32_t Index = 0;
  bool Imported = false;
  std::string ImportModule;
  std::string ImportName;

  /// Declared (non-parameter) locals, expanded.
  std::vector<ValType> Locals;
  /// Body byte range [BodyStart, BodyEnd) in Module::Bytes, including the
  /// terminating `end` opcode.
  uint32_t BodyStart = 0;
  uint32_t BodyEnd = 0;

  // --- Filled in by validation ---
  /// Parameters followed by declared locals.
  std::vector<ValType> LocalTypes;
  /// Maximum operand stack height (not counting locals).
  uint32_t MaxStack = 0;
  /// Control-transfer side table for in-place interpretation.
  SideTable Table;

  uint32_t numLocalSlots() const { return uint32_t(LocalTypes.size()); }
  /// Total value-stack slots this function's frame needs.
  uint32_t frameSlots() const { return numLocalSlots() + MaxStack; }
};

/// A global variable declaration.
struct GlobalDecl {
  ValType Type = ValType::I32;
  bool Mutable = false;
  bool Imported = false;
  std::string ImportModule;
  std::string ImportName;
  InitExpr Init;
};

/// A table declaration (funcref or externref).
struct TableDecl {
  ValType Elem = ValType::FuncRef;
  Limits Lim;
};

/// A linear memory declaration.
struct MemoryDecl {
  Limits Lim;
};

/// An export entry.
struct Export {
  std::string Name;
  ExternKind Kind = ExternKind::Func;
  uint32_t Index = 0;
};

/// An active element segment.
struct ElemSegment {
  uint32_t TableIdx = 0;
  InitExpr Offset;
  std::vector<uint32_t> FuncIndices;
};

/// An active data segment.
struct DataSegment {
  uint32_t MemIdx = 0;
  InitExpr Offset;
  std::vector<uint8_t> Bytes;
};

/// A decoded WebAssembly module.
class Module {
public:
  /// The original binary; function bodies point into this.
  std::vector<uint8_t> Bytes;

  std::vector<FuncType> Types;
  std::vector<FuncDecl> Funcs; ///< Imported functions first.
  std::vector<GlobalDecl> Globals;
  std::vector<TableDecl> Tables;
  std::vector<MemoryDecl> Memories;
  std::vector<Export> Exports;
  std::vector<ElemSegment> Elems;
  std::vector<DataSegment> Datas;
  std::optional<uint32_t> Start;

  uint32_t NumImportedFuncs = 0;
  uint32_t NumImportedGlobals = 0;
  bool Validated = false;

  /// Returns the signature of function \p FuncIdx.
  const FuncType &funcType(uint32_t FuncIdx) const {
    assert(FuncIdx < Funcs.size() && "function index out of range");
    return Types[Funcs[FuncIdx].TypeIdx];
  }

  /// Finds an exported entity by name; returns nullptr if absent.
  const Export *findExport(const std::string &Name, ExternKind Kind) const {
    for (const Export &E : Exports)
      if (E.Kind == Kind && E.Name == Name)
        return &E;
    return nullptr;
  }

  /// Sum of all function body sizes in bytes (the paper's per-module "code
  /// bytes" denominator for compile-speed measurements).
  size_t codeBytes() const {
    size_t Sum = 0;
    for (const FuncDecl &F : Funcs)
      if (!F.Imported)
        Sum += F.BodyEnd - F.BodyStart;
    return Sum;
  }
};

} // namespace wisp

#endif // WISP_WASM_MODULE_H
