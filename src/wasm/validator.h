//===- wasm/validator.h - WebAssembly validation ----------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-forward-pass validation by abstract interpretation of the type
/// stack (the same algorithmic skeleton the paper's single-pass compilers
/// share). As a side effect, validation builds each function's control
/// side table for in-place interpretation and computes its maximum operand
/// stack height.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_WASM_VALIDATOR_H
#define WISP_WASM_VALIDATOR_H

#include "wasm/error.h"
#include "wasm/module.h"

namespace wisp {

/// Validates all functions and module-level declarations of \p M, filling
/// per-function side tables and max stack heights. Returns false and fills
/// \p Err on invalid modules.
bool validateModule(Module &M, WasmError *Err);

/// Validates a single function body (exposed for unit tests and for lazy
/// tiers). Fills F.Table and F.MaxStack.
bool validateFunction(Module &M, FuncDecl &F, WasmError *Err);

} // namespace wisp

#endif // WISP_WASM_VALIDATOR_H
