//===- wasm/opcodes.h - WebAssembly opcode definitions ----------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcode enumeration and static metadata (names, immediate kinds, stack
/// signatures) for the supported WebAssembly instruction set. Metadata
/// drives the validator, interpreter and compilers so opcode-specific
/// knowledge lives in one place.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_WASM_OPCODES_H
#define WISP_WASM_OPCODES_H

#include "wasm/types.h"

#include <cstdint>

namespace wisp {

/// Opcodes. Enumerator values equal the binary encoding; 0xFC-prefixed
/// opcodes are encoded as 0xFC00 | subopcode.
enum class Opcode : uint16_t {
  Unreachable = 0x00,
  Nop = 0x01,
  Block = 0x02,
  Loop = 0x03,
  If = 0x04,
  Else = 0x05,
  End = 0x0B,
  Br = 0x0C,
  BrIf = 0x0D,
  BrTable = 0x0E,
  Return = 0x0F,
  Call = 0x10,
  CallIndirect = 0x11,
  Drop = 0x1A,
  Select = 0x1B,
  SelectT = 0x1C,
  LocalGet = 0x20,
  LocalSet = 0x21,
  LocalTee = 0x22,
  GlobalGet = 0x23,
  GlobalSet = 0x24,
  I32Load = 0x28,
  I64Load = 0x29,
  F32Load = 0x2A,
  F64Load = 0x2B,
  I32Load8S = 0x2C,
  I32Load8U = 0x2D,
  I32Load16S = 0x2E,
  I32Load16U = 0x2F,
  I64Load8S = 0x30,
  I64Load8U = 0x31,
  I64Load16S = 0x32,
  I64Load16U = 0x33,
  I64Load32S = 0x34,
  I64Load32U = 0x35,
  I32Store = 0x36,
  I64Store = 0x37,
  F32Store = 0x38,
  F64Store = 0x39,
  I32Store8 = 0x3A,
  I32Store16 = 0x3B,
  I64Store8 = 0x3C,
  I64Store16 = 0x3D,
  I64Store32 = 0x3E,
  MemorySize = 0x3F,
  MemoryGrow = 0x40,
  I32Const = 0x41,
  I64Const = 0x42,
  F32Const = 0x43,
  F64Const = 0x44,
  I32Eqz = 0x45,
  I32Eq = 0x46,
  I32Ne = 0x47,
  I32LtS = 0x48,
  I32LtU = 0x49,
  I32GtS = 0x4A,
  I32GtU = 0x4B,
  I32LeS = 0x4C,
  I32LeU = 0x4D,
  I32GeS = 0x4E,
  I32GeU = 0x4F,
  I64Eqz = 0x50,
  I64Eq = 0x51,
  I64Ne = 0x52,
  I64LtS = 0x53,
  I64LtU = 0x54,
  I64GtS = 0x55,
  I64GtU = 0x56,
  I64LeS = 0x57,
  I64LeU = 0x58,
  I64GeS = 0x59,
  I64GeU = 0x5A,
  F32Eq = 0x5B,
  F32Ne = 0x5C,
  F32Lt = 0x5D,
  F32Gt = 0x5E,
  F32Le = 0x5F,
  F32Ge = 0x60,
  F64Eq = 0x61,
  F64Ne = 0x62,
  F64Lt = 0x63,
  F64Gt = 0x64,
  F64Le = 0x65,
  F64Ge = 0x66,
  I32Clz = 0x67,
  I32Ctz = 0x68,
  I32Popcnt = 0x69,
  I32Add = 0x6A,
  I32Sub = 0x6B,
  I32Mul = 0x6C,
  I32DivS = 0x6D,
  I32DivU = 0x6E,
  I32RemS = 0x6F,
  I32RemU = 0x70,
  I32And = 0x71,
  I32Or = 0x72,
  I32Xor = 0x73,
  I32Shl = 0x74,
  I32ShrS = 0x75,
  I32ShrU = 0x76,
  I32Rotl = 0x77,
  I32Rotr = 0x78,
  I64Clz = 0x79,
  I64Ctz = 0x7A,
  I64Popcnt = 0x7B,
  I64Add = 0x7C,
  I64Sub = 0x7D,
  I64Mul = 0x7E,
  I64DivS = 0x7F,
  I64DivU = 0x80,
  I64RemS = 0x81,
  I64RemU = 0x82,
  I64And = 0x83,
  I64Or = 0x84,
  I64Xor = 0x85,
  I64Shl = 0x86,
  I64ShrS = 0x87,
  I64ShrU = 0x88,
  I64Rotl = 0x89,
  I64Rotr = 0x8A,
  F32Abs = 0x8B,
  F32Neg = 0x8C,
  F32Ceil = 0x8D,
  F32Floor = 0x8E,
  F32Trunc = 0x8F,
  F32Nearest = 0x90,
  F32Sqrt = 0x91,
  F32Add = 0x92,
  F32Sub = 0x93,
  F32Mul = 0x94,
  F32Div = 0x95,
  F32Min = 0x96,
  F32Max = 0x97,
  F32Copysign = 0x98,
  F64Abs = 0x99,
  F64Neg = 0x9A,
  F64Ceil = 0x9B,
  F64Floor = 0x9C,
  F64Trunc = 0x9D,
  F64Nearest = 0x9E,
  F64Sqrt = 0x9F,
  F64Add = 0xA0,
  F64Sub = 0xA1,
  F64Mul = 0xA2,
  F64Div = 0xA3,
  F64Min = 0xA4,
  F64Max = 0xA5,
  F64Copysign = 0xA6,
  I32WrapI64 = 0xA7,
  I32TruncF32S = 0xA8,
  I32TruncF32U = 0xA9,
  I32TruncF64S = 0xAA,
  I32TruncF64U = 0xAB,
  I64ExtendI32S = 0xAC,
  I64ExtendI32U = 0xAD,
  I64TruncF32S = 0xAE,
  I64TruncF32U = 0xAF,
  I64TruncF64S = 0xB0,
  I64TruncF64U = 0xB1,
  F32ConvertI32S = 0xB2,
  F32ConvertI32U = 0xB3,
  F32ConvertI64S = 0xB4,
  F32ConvertI64U = 0xB5,
  F32DemoteF64 = 0xB6,
  F64ConvertI32S = 0xB7,
  F64ConvertI32U = 0xB8,
  F64ConvertI64S = 0xB9,
  F64ConvertI64U = 0xBA,
  F64PromoteF32 = 0xBB,
  I32ReinterpretF32 = 0xBC,
  I64ReinterpretF64 = 0xBD,
  F32ReinterpretI32 = 0xBE,
  F64ReinterpretI64 = 0xBF,
  I32Extend8S = 0xC0,
  I32Extend16S = 0xC1,
  I64Extend8S = 0xC2,
  I64Extend16S = 0xC3,
  I64Extend32S = 0xC4,
  RefNull = 0xD0,
  RefIsNull = 0xD1,
  RefFunc = 0xD2,
  // 0xFC-prefixed opcodes.
  I32TruncSatF32S = 0xFC00,
  I32TruncSatF32U = 0xFC01,
  I32TruncSatF64S = 0xFC02,
  I32TruncSatF64U = 0xFC03,
  I64TruncSatF32S = 0xFC04,
  I64TruncSatF32U = 0xFC05,
  I64TruncSatF64S = 0xFC06,
  I64TruncSatF64U = 0xFC07,
  MemoryCopy = 0xFC0A,
  MemoryFill = 0xFC0B,
};

/// Kinds of immediate operands following an opcode in the bytecode.
enum class ImmKind : uint8_t {
  None,
  BlockType,    ///< block/loop/if: s33 block type.
  LabelIdx,     ///< br/br_if: u32 label depth.
  BrTable,      ///< br_table: vector of labels + default.
  FuncIdx,      ///< call / ref.func: u32 function index.
  CallIndirect, ///< call_indirect: u32 type index + u32 table index.
  LocalIdx,     ///< local.get/set/tee: u32.
  GlobalIdx,    ///< global.get/set: u32.
  MemArg,       ///< loads/stores: u32 align + u32 offset.
  MemIdx,       ///< memory.size/grow: one 0x00 byte.
  MemMemIdx,    ///< memory.copy: two 0x00 bytes.
  I32Imm,       ///< i32.const: s32.
  I64Imm,       ///< i64.const: s64.
  F32Imm,       ///< f32.const: 4 bytes.
  F64Imm,       ///< f64.const: 8 bytes.
  RefType,      ///< ref.null: heap type byte.
  TypeVec,      ///< select_t: vector of value types.
};

/// Signature/dispatch class of an opcode.
enum class OpClass : uint8_t {
  Special, ///< Control flow, locals, calls, parametric: custom handling.
  Simple,  ///< Fixed stack signature from the metadata table.
};

/// Static metadata for one opcode.
struct OpInfo {
  const char *Name = nullptr; ///< Null for unassigned encodings.
  ImmKind Imm = ImmKind::None;
  OpClass Class = OpClass::Special;
  uint8_t NPop = 0;
  ValType Pop[3] = {ValType::I32, ValType::I32, ValType::I32};
  uint8_t NPush = 0;
  ValType Push = ValType::I32;
  bool CanTrap = false; ///< May trap (division, memory access, truncation).
};

/// Returns metadata for \p Op; the Name field is null if the opcode is not
/// part of the supported set.
const OpInfo &opInfo(Opcode Op);

/// Returns the printable mnemonic, or "<invalid>".
const char *opName(Opcode Op);

} // namespace wisp

#endif // WISP_WASM_OPCODES_H
