//===- wasm/sidetable.h - Control side table for in-place interp -*- C++ -*-==//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The side table enables in-place interpretation of Wasm bytecode without
/// rewriting (Titzer, OOPSLA 2022). The validator records one entry per
/// control transfer point (if false-edge, else skip-edge, br, br_if,
/// br_table entries). The interpreter maintains a side-table pointer (STP)
/// alongside the instruction pointer (IP); taking a transfer sets both from
/// the entry, and not taking a br_if simply advances the STP past its entry.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_WASM_SIDETABLE_H
#define WISP_WASM_SIDETABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wisp {

/// One control transfer record.
struct SideTableEntry {
  /// Absolute target bytecode offset (within the module bytes).
  uint32_t TargetIp = 0;
  /// Absolute side-table position at the target.
  uint32_t TargetStp = 0;
  /// Number of merge values copied to the target height.
  uint32_t ValCount = 0;
  /// Operand-stack height (relative to frame, excluding locals) the target
  /// label expects *below* the merge values.
  uint32_t TargetHeight = 0;
};

/// Per-function side table.
struct SideTable {
  std::vector<SideTableEntry> Entries;

  size_t byteSize() const {
    return Entries.size() * sizeof(SideTableEntry);
  }
};

} // namespace wisp

#endif // WISP_WASM_SIDETABLE_H
