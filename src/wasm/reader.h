//===- wasm/reader.h - WebAssembly binary decoder ---------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decodes a .wasm binary into a Module. Function bodies are kept as byte
/// ranges into the module buffer (no rewriting). Structural well-formedness
/// is checked here; type checking is the validator's job.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_WASM_READER_H
#define WISP_WASM_READER_H

#include "wasm/error.h"
#include "wasm/module.h"

#include <memory>
#include <vector>

namespace wisp {

/// Decodes \p Bytes into a fresh Module. Returns nullptr and fills \p Err
/// on malformed input. The module takes ownership of the bytes.
std::unique_ptr<Module> decodeModule(std::vector<uint8_t> Bytes,
                                     WasmError *Err);

} // namespace wisp

#endif // WISP_WASM_READER_H
