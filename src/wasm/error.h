//===- wasm/error.h - decode/validation error reporting ---------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error value reported by the binary reader and validator: a byte offset
/// into the module and a human-readable message.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_WASM_ERROR_H
#define WISP_WASM_ERROR_H

#include <cstddef>
#include <string>

namespace wisp {

/// A malformed-module or validation error.
struct WasmError {
  size_t Offset = 0;
  std::string Message;
};

} // namespace wisp

#endif // WISP_WASM_ERROR_H
