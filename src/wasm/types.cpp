//===- wasm/types.cpp - WebAssembly type system helpers -------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "wasm/types.h"

using namespace wisp;

const char *wisp::valTypeName(ValType T) {
  switch (T) {
  case ValType::I32:
    return "i32";
  case ValType::I64:
    return "i64";
  case ValType::F32:
    return "f32";
  case ValType::F64:
    return "f64";
  case ValType::FuncRef:
    return "funcref";
  case ValType::ExternRef:
    return "externref";
  case ValType::Bottom:
    return "bot";
  }
  return "<bad>";
}

bool wisp::valTypeFromByte(uint8_t Byte, ValType *Out) {
  switch (Byte) {
  case 0x7f:
    *Out = ValType::I32;
    return true;
  case 0x7e:
    *Out = ValType::I64;
    return true;
  case 0x7d:
    *Out = ValType::F32;
    return true;
  case 0x7c:
    *Out = ValType::F64;
    return true;
  case 0x70:
    *Out = ValType::FuncRef;
    return true;
  case 0x6f:
    *Out = ValType::ExternRef;
    return true;
  default:
    return false;
  }
}

uint8_t wisp::valTypeToByte(ValType T) {
  switch (T) {
  case ValType::I32:
    return 0x7f;
  case ValType::I64:
    return 0x7e;
  case ValType::F32:
    return 0x7d;
  case ValType::F64:
    return 0x7c;
  case ValType::FuncRef:
    return 0x70;
  case ValType::ExternRef:
    return 0x6f;
  case ValType::Bottom:
    break;
  }
  assert(false && "unencodable value type");
  return 0;
}

std::string FuncType::toString() const {
  std::string S = "[";
  for (size_t I = 0; I < Params.size(); ++I) {
    if (I)
      S += ' ';
    S += valTypeName(Params[I]);
  }
  S += "] -> [";
  for (size_t I = 0; I < Results.size(); ++I) {
    if (I)
      S += ' ';
    S += valTypeName(Results[I]);
  }
  S += ']';
  return S;
}
