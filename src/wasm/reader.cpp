//===- wasm/reader.cpp - WebAssembly binary decoder -----------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "wasm/reader.h"

#include "support/format.h"
#include "wasm/codereader.h"

using namespace wisp;

namespace {

/// Section ids in the binary format.
enum SectionId : uint8_t {
  SecCustom = 0,
  SecType = 1,
  SecImport = 2,
  SecFunction = 3,
  SecTable = 4,
  SecMemory = 5,
  SecGlobal = 6,
  SecExport = 7,
  SecStart = 8,
  SecElem = 9,
  SecCode = 10,
  SecData = 11,
  SecDataCount = 12,
};

/// Stateful decoder over the module bytes.
class ModuleReader {
public:
  ModuleReader(Module &M, WasmError *Err)
      : M(M), Err(Err), R(M.Bytes.data(), 0, M.Bytes.size()) {}

  bool run();

private:
  bool error(const char *Fmt, ...) __attribute__((format(printf, 2, 3)));
  bool checkOk() {
    if (R.ok())
      return true;
    return error("malformed LEB128 or truncated section");
  }

  bool readHeader();
  bool readSection();
  bool readTypeSection(size_t End);
  bool readImportSection(size_t End);
  bool readFunctionSection(size_t End);
  bool readTableSection(size_t End);
  bool readMemorySection(size_t End);
  bool readGlobalSection(size_t End);
  bool readExportSection(size_t End);
  bool readStartSection(size_t End);
  bool readElemSection(size_t End);
  bool readCodeSection(size_t End);
  bool readDataSection(size_t End);

  bool readLimits(Limits *L);
  bool checkMemoryLimits(const Limits &L);
  bool readInitExpr(InitExpr *E, ValType Expect);
  bool readName(std::string *S);

  Module &M;
  WasmError *Err;
  CodeReader R;
  uint32_t NumDeclaredFuncs = 0;
  int LastSection = -1;
};

} // namespace

bool ModuleReader::error(const char *Fmt, ...) {
  if (Err) {
    va_list Args;
    va_start(Args, Fmt);
    Err->Message = strFormatV(Fmt, Args);
    va_end(Args);
    Err->Offset = R.pc();
  }
  return false;
}

bool ModuleReader::readHeader() {
  static const uint8_t Magic[8] = {0x00, 0x61, 0x73, 0x6d,
                                   0x01, 0x00, 0x00, 0x00};
  if (M.Bytes.size() < 8)
    return error("module shorter than header");
  for (int I = 0; I < 8; ++I)
    if (M.Bytes[size_t(I)] != Magic[I])
      return error("bad magic number or version");
  R.setPc(8);
  return true;
}

bool ModuleReader::readName(std::string *S) {
  uint32_t Len = R.readU32();
  if (!checkOk())
    return false;
  if (R.pc() + Len > M.Bytes.size())
    return error("name extends past end of module");
  S->assign(reinterpret_cast<const char *>(M.Bytes.data() + R.pc()), Len);
  R.setPc(R.pc() + Len);
  return true;
}

bool ModuleReader::readLimits(Limits *L) {
  uint8_t Flags = R.readByte();
  L->Min = R.readU32();
  if (Flags == 0x01) {
    L->HasMax = true;
    L->Max = R.readU32();
    if (R.ok() && L->Max < L->Min)
      return error("limits maximum smaller than minimum");
  } else if (Flags != 0x00) {
    return error("bad limits flags 0x%02x", Flags);
  }
  return checkOk();
}

bool ModuleReader::checkMemoryLimits(const Limits &L) {
  // A wasm32 memory addresses at most 2^32 bytes = 65536 pages. Without
  // this cap a hostile module declaring a huge Min would drive init()
  // into a multi-terabyte allocation before any instruction runs.
  if (L.Min > MaxMemoryPages)
    return error("memory minimum %u exceeds %u pages", L.Min, MaxMemoryPages);
  if (L.HasMax && L.Max > MaxMemoryPages)
    return error("memory maximum %u exceeds %u pages", L.Max, MaxMemoryPages);
  return true;
}

bool ModuleReader::readInitExpr(InitExpr *E, ValType Expect) {
  Opcode Op = R.readOpcode();
  if (!checkOk())
    return false;
  switch (Op) {
  case Opcode::I32Const:
    E->K = InitExpr::Const;
    E->Type = ValType::I32;
    E->Bits = uint64_t(uint32_t(R.readS32()));
    break;
  case Opcode::I64Const:
    E->K = InitExpr::Const;
    E->Type = ValType::I64;
    E->Bits = uint64_t(R.readS64());
    break;
  case Opcode::F32Const:
    E->K = InitExpr::Const;
    E->Type = ValType::F32;
    E->Bits = R.readF32Bits();
    break;
  case Opcode::F64Const:
    E->K = InitExpr::Const;
    E->Type = ValType::F64;
    E->Bits = R.readF64Bits();
    break;
  case Opcode::GlobalGet:
    E->K = InitExpr::GlobalGet;
    E->Index = R.readU32();
    if (R.ok()) {
      // Const exprs may only reference already-defined immutable globals.
      // Global-section entries push their decl after reading the init
      // expr, so M.Globals.size() here is exactly the already-defined
      // boundary — forward and self references fail this check, which is
      // what keeps instantiation's in-order evaluation sound (a forward
      // reference would read a not-yet-initialized 0).
      if (E->Index >= M.Globals.size())
        return error("init expr global.get %u references an undefined global",
                     E->Index);
      if (M.Globals[E->Index].Mutable)
        return error("init expr global.get %u references a mutable global",
                     E->Index);
      E->Type = M.Globals[E->Index].Type;
    }
    break;
  case Opcode::RefNull: {
    E->K = InitExpr::RefNull;
    ValType T = R.readValType();
    if (R.ok() && !isRefType(T))
      return error("ref.null of non-reference type");
    E->Type = T;
    break;
  }
  case Opcode::RefFunc:
    E->K = InitExpr::RefFuncIdx;
    E->Type = ValType::FuncRef;
    E->Index = R.readU32();
    if (R.ok() && E->Index >= M.Funcs.size())
      return error("init expr ref.func index out of range");
    break;
  default:
    return error("unsupported init expression opcode");
  }
  if (!checkOk())
    return false;
  if (E->Type != Expect)
    return error("init expression type mismatch: got %s, expected %s",
                 valTypeName(E->Type), valTypeName(Expect));
  if (R.readOpcode() != Opcode::End)
    return error("init expression not terminated by end");
  return checkOk();
}

bool ModuleReader::readTypeSection(size_t) {
  uint32_t Count = R.readU32();
  for (uint32_t I = 0; I < Count && checkOk(); ++I) {
    if (R.readByte() != 0x60)
      return error("type %u is not a function type", I);
    FuncType FT;
    uint32_t NParams = R.readU32();
    for (uint32_t J = 0; J < NParams && R.ok(); ++J)
      FT.Params.push_back(R.readValType());
    uint32_t NResults = R.readU32();
    for (uint32_t J = 0; J < NResults && R.ok(); ++J)
      FT.Results.push_back(R.readValType());
    if (!checkOk())
      return false;
    M.Types.push_back(std::move(FT));
  }
  return checkOk();
}

bool ModuleReader::readImportSection(size_t) {
  uint32_t Count = R.readU32();
  for (uint32_t I = 0; I < Count && checkOk(); ++I) {
    std::string Mod, Name;
    if (!readName(&Mod) || !readName(&Name))
      return false;
    uint8_t Kind = R.readByte();
    switch (ExternKind(Kind)) {
    case ExternKind::Func: {
      FuncDecl F;
      F.TypeIdx = R.readU32();
      if (R.ok() && F.TypeIdx >= M.Types.size())
        return error("import func type index %u out of range", F.TypeIdx);
      F.Imported = true;
      F.ImportModule = std::move(Mod);
      F.ImportName = std::move(Name);
      F.Index = uint32_t(M.Funcs.size());
      M.Funcs.push_back(std::move(F));
      ++M.NumImportedFuncs;
      break;
    }
    case ExternKind::Table: {
      TableDecl T;
      T.Elem = R.readValType();
      if (R.ok() && !isRefType(T.Elem))
        return error("table element type must be a reference type");
      if (!readLimits(&T.Lim))
        return false;
      M.Tables.push_back(T);
      break;
    }
    case ExternKind::Memory: {
      MemoryDecl D;
      if (!readLimits(&D.Lim) || !checkMemoryLimits(D.Lim))
        return false;
      M.Memories.push_back(D);
      break;
    }
    case ExternKind::Global: {
      GlobalDecl G;
      G.Type = R.readValType();
      uint8_t Mut = R.readByte();
      if (Mut > 1)
        return error("bad global mutability flag");
      G.Mutable = Mut == 1;
      G.Imported = true;
      G.ImportModule = std::move(Mod);
      G.ImportName = std::move(Name);
      M.Globals.push_back(std::move(G));
      ++M.NumImportedGlobals;
      break;
    }
    default:
      return error("bad import kind %u", Kind);
    }
  }
  return checkOk();
}

bool ModuleReader::readFunctionSection(size_t) {
  uint32_t Count = R.readU32();
  NumDeclaredFuncs = Count;
  for (uint32_t I = 0; I < Count && checkOk(); ++I) {
    FuncDecl F;
    F.TypeIdx = R.readU32();
    if (R.ok() && F.TypeIdx >= M.Types.size())
      return error("function type index out of range");
    F.Index = uint32_t(M.Funcs.size());
    M.Funcs.push_back(std::move(F));
  }
  return checkOk();
}

bool ModuleReader::readTableSection(size_t) {
  uint32_t Count = R.readU32();
  for (uint32_t I = 0; I < Count && checkOk(); ++I) {
    TableDecl T;
    T.Elem = R.readValType();
    if (R.ok() && !isRefType(T.Elem))
      return error("table element type must be a reference type");
    if (!readLimits(&T.Lim))
      return false;
    M.Tables.push_back(T);
  }
  return checkOk();
}

bool ModuleReader::readMemorySection(size_t) {
  uint32_t Count = R.readU32();
  for (uint32_t I = 0; I < Count && checkOk(); ++I) {
    MemoryDecl D;
    if (!readLimits(&D.Lim) || !checkMemoryLimits(D.Lim))
      return false;
    if (M.Memories.size() >= 1)
      return error("at most one memory is supported");
    M.Memories.push_back(D);
  }
  return checkOk();
}

bool ModuleReader::readGlobalSection(size_t) {
  uint32_t Count = R.readU32();
  for (uint32_t I = 0; I < Count && checkOk(); ++I) {
    GlobalDecl G;
    G.Type = R.readValType();
    uint8_t Mut = R.readByte();
    if (Mut > 1)
      return error("bad global mutability flag");
    G.Mutable = Mut == 1;
    if (!readInitExpr(&G.Init, G.Type))
      return false;
    M.Globals.push_back(std::move(G));
  }
  return checkOk();
}

bool ModuleReader::readExportSection(size_t) {
  uint32_t Count = R.readU32();
  for (uint32_t I = 0; I < Count && checkOk(); ++I) {
    Export E;
    if (!readName(&E.Name))
      return false;
    uint8_t Kind = R.readByte();
    if (Kind > 3)
      return error("bad export kind %u", Kind);
    E.Kind = ExternKind(Kind);
    E.Index = R.readU32();
    if (!checkOk())
      return false;
    size_t Bound = 0;
    switch (E.Kind) {
    case ExternKind::Func:
      Bound = M.Funcs.size();
      break;
    case ExternKind::Table:
      Bound = M.Tables.size();
      break;
    case ExternKind::Memory:
      Bound = M.Memories.size();
      break;
    case ExternKind::Global:
      Bound = M.Globals.size();
      break;
    }
    if (E.Index >= Bound)
      return error("export '%s' index %u out of range", E.Name.c_str(),
                   E.Index);
    M.Exports.push_back(std::move(E));
  }
  return checkOk();
}

bool ModuleReader::readStartSection(size_t) {
  uint32_t Idx = R.readU32();
  if (!checkOk())
    return false;
  if (Idx >= M.Funcs.size())
    return error("start function index out of range");
  M.Start = Idx;
  return true;
}

bool ModuleReader::readElemSection(size_t) {
  uint32_t Count = R.readU32();
  for (uint32_t I = 0; I < Count && checkOk(); ++I) {
    uint32_t Flags = R.readU32();
    if (Flags != 0)
      return error("only active funcref element segments are supported");
    ElemSegment E;
    E.TableIdx = 0;
    if (M.Tables.empty())
      return error("element segment without a table");
    if (!readInitExpr(&E.Offset, ValType::I32))
      return false;
    uint32_t N = R.readU32();
    for (uint32_t J = 0; J < N && R.ok(); ++J) {
      uint32_t FuncIdx = R.readU32();
      if (R.ok() && FuncIdx >= M.Funcs.size())
        return error("element segment function index out of range");
      E.FuncIndices.push_back(FuncIdx);
    }
    if (!checkOk())
      return false;
    M.Elems.push_back(std::move(E));
  }
  return checkOk();
}

bool ModuleReader::readCodeSection(size_t) {
  uint32_t Count = R.readU32();
  if (!checkOk())
    return false;
  if (Count != NumDeclaredFuncs)
    return error("code section count %u does not match %u declared functions",
                 Count, NumDeclaredFuncs);
  for (uint32_t I = 0; I < Count; ++I) {
    FuncDecl &F = M.Funcs[M.NumImportedFuncs + I];
    uint32_t BodySize = R.readU32();
    if (!checkOk())
      return false;
    size_t BodyEnd = R.pc() + BodySize;
    if (BodyEnd > M.Bytes.size())
      return error("function body extends past end of module");
    // Locals.
    uint32_t NumGroups = R.readU32();
    uint64_t TotalLocals = 0;
    for (uint32_t G = 0; G < NumGroups && R.ok(); ++G) {
      uint32_t N = R.readU32();
      ValType T = R.readValType();
      TotalLocals += N;
      if (TotalLocals > 50000)
        return error("too many locals");
      for (uint32_t J = 0; J < N; ++J)
        F.Locals.push_back(T);
    }
    if (!checkOk())
      return false;
    F.BodyStart = uint32_t(R.pc());
    F.BodyEnd = uint32_t(BodyEnd);
    if (F.BodyStart > F.BodyEnd)
      return error("locals extend past declared body size");
    // Expand full local types: params then declared locals.
    const FuncType &FT = M.Types[F.TypeIdx];
    F.LocalTypes = FT.Params;
    F.LocalTypes.insert(F.LocalTypes.end(), F.Locals.begin(), F.Locals.end());
    R.setPc(BodyEnd);
  }
  return checkOk();
}

bool ModuleReader::readDataSection(size_t) {
  uint32_t Count = R.readU32();
  for (uint32_t I = 0; I < Count && checkOk(); ++I) {
    uint32_t Flags = R.readU32();
    if (Flags != 0)
      return error("only active data segments are supported");
    DataSegment D;
    D.MemIdx = 0;
    if (M.Memories.empty())
      return error("data segment without a memory");
    if (!readInitExpr(&D.Offset, ValType::I32))
      return false;
    uint32_t Len = R.readU32();
    if (!checkOk())
      return false;
    if (R.pc() + Len > M.Bytes.size())
      return error("data segment extends past end of module");
    D.Bytes.assign(M.Bytes.begin() + R.pc(), M.Bytes.begin() + R.pc() + Len);
    R.setPc(R.pc() + Len);
    M.Datas.push_back(std::move(D));
  }
  return checkOk();
}

bool ModuleReader::readSection() {
  uint8_t Id = R.readByte();
  uint32_t Size = R.readU32();
  if (!checkOk())
    return false;
  size_t End = R.pc() + Size;
  if (End > M.Bytes.size())
    return error("section %u extends past end of module", Id);
  if (Id != SecCustom) {
    if (int(Id) <= LastSection && !(Id == SecDataCount))
      return error("section %u out of order", Id);
    LastSection = Id;
  }
  bool Ok = true;
  switch (Id) {
  case SecCustom:
    break; // Skipped entirely.
  case SecType:
    Ok = readTypeSection(End);
    break;
  case SecImport:
    Ok = readImportSection(End);
    break;
  case SecFunction:
    Ok = readFunctionSection(End);
    break;
  case SecTable:
    Ok = readTableSection(End);
    break;
  case SecMemory:
    Ok = readMemorySection(End);
    break;
  case SecGlobal:
    Ok = readGlobalSection(End);
    break;
  case SecExport:
    Ok = readExportSection(End);
    break;
  case SecStart:
    Ok = readStartSection(End);
    break;
  case SecElem:
    Ok = readElemSection(End);
    break;
  case SecCode:
    Ok = readCodeSection(End);
    break;
  case SecData:
    Ok = readDataSection(End);
    break;
  case SecDataCount:
    (void)R.readU32();
    Ok = checkOk();
    break;
  default:
    return error("unknown section id %u", Id);
  }
  if (!Ok)
    return false;
  if (R.pc() != End && Id != SecCustom)
    return error("section %u has %zd unconsumed bytes", Id,
                 ptrdiff_t(End) - ptrdiff_t(R.pc()));
  R.setPc(End);
  return true;
}

bool ModuleReader::run() {
  if (!readHeader())
    return false;
  while (!R.atEnd())
    if (!readSection())
      return false;
  // Every declared function must have received a body.
  for (const FuncDecl &F : M.Funcs)
    if (!F.Imported && F.BodyStart == 0 && F.BodyEnd == 0)
      return error("function %u has no body", F.Index);
  return true;
}

std::unique_ptr<Module> wisp::decodeModule(std::vector<uint8_t> Bytes,
                                           WasmError *Err) {
  auto M = std::make_unique<Module>();
  M->Bytes = std::move(Bytes);
  ModuleReader Reader(*M, Err);
  if (!Reader.run())
    return nullptr;
  return M;
}
