//===- wasm/builder.h - programmatic Wasm module construction ---*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds WebAssembly *binary* modules programmatically. Tests, examples
/// and the benchmark workload generators use this to produce real .wasm
/// bytes that then go through the full decode/validate/execute pipeline,
/// so measured setup costs are honest.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_WASM_BUILDER_H
#define WISP_WASM_BUILDER_H

#include "support/leb128.h"
#include "wasm/module.h"
#include "wasm/opcodes.h"

#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace wisp {

class ModuleBuilder;

/// Builds one function body. Obtained from ModuleBuilder::addFunc.
class FuncBuilder {
public:
  /// Declares a non-parameter local and returns its local index.
  uint32_t addLocal(ValType T) {
    Locals.push_back(T);
    return NumParams + uint32_t(Locals.size()) - 1;
  }

  // --- Raw emission ---
  void op(Opcode O) {
    uint16_t V = uint16_t(O);
    if (V >= 0xFC00) {
      Body.push_back(0xFC);
      writeULEB128(Body, V & 0xff);
    } else {
      Body.push_back(uint8_t(V));
    }
  }
  void byte(uint8_t B) { Body.push_back(B); }
  void u32(uint32_t V) { writeULEB128(Body, V); }

  // --- Constants ---
  void i32Const(int32_t V) {
    op(Opcode::I32Const);
    writeSLEB128(Body, V);
  }
  void i64Const(int64_t V) {
    op(Opcode::I64Const);
    writeSLEB128(Body, V);
  }
  void f32Const(float V) {
    op(Opcode::F32Const);
    uint32_t Bits;
    memcpy(&Bits, &V, 4);
    for (int I = 0; I < 4; ++I)
      Body.push_back(uint8_t(Bits >> (8 * I)));
  }
  void f64Const(double V) {
    op(Opcode::F64Const);
    uint64_t Bits;
    memcpy(&Bits, &V, 8);
    for (int I = 0; I < 8; ++I)
      Body.push_back(uint8_t(Bits >> (8 * I)));
  }

  // --- Locals and globals ---
  void localGet(uint32_t I) {
    op(Opcode::LocalGet);
    u32(I);
  }
  void localSet(uint32_t I) {
    op(Opcode::LocalSet);
    u32(I);
  }
  void localTee(uint32_t I) {
    op(Opcode::LocalTee);
    u32(I);
  }
  void globalGet(uint32_t I) {
    op(Opcode::GlobalGet);
    u32(I);
  }
  void globalSet(uint32_t I) {
    op(Opcode::GlobalSet);
    u32(I);
  }

  // --- Control flow ---
  void blockType(BlockType BT) {
    switch (BT.K) {
    case BlockType::Empty:
      Body.push_back(0x40);
      break;
    case BlockType::OneResult:
      Body.push_back(valTypeToByte(BT.Result));
      break;
    case BlockType::FuncTypeIdx:
      writeSLEB128(Body, int64_t(BT.TypeIdx));
      break;
    }
  }
  void block(BlockType BT = BlockType::empty()) {
    op(Opcode::Block);
    blockType(BT);
  }
  void loop(BlockType BT = BlockType::empty()) {
    op(Opcode::Loop);
    blockType(BT);
  }
  void ifOp(BlockType BT = BlockType::empty()) {
    op(Opcode::If);
    blockType(BT);
  }
  void elseOp() { op(Opcode::Else); }
  void end() { op(Opcode::End); }
  void br(uint32_t Depth) {
    op(Opcode::Br);
    u32(Depth);
  }
  void brIf(uint32_t Depth) {
    op(Opcode::BrIf);
    u32(Depth);
  }
  void brTable(const std::vector<uint32_t> &Targets, uint32_t Default) {
    op(Opcode::BrTable);
    u32(uint32_t(Targets.size()));
    for (uint32_t T : Targets)
      u32(T);
    u32(Default);
  }
  void ret() { op(Opcode::Return); }
  void unreachable() { op(Opcode::Unreachable); }

  // --- Calls ---
  void call(uint32_t FuncIdx) {
    op(Opcode::Call);
    u32(FuncIdx);
  }
  void callIndirect(uint32_t TypeIdx, uint32_t TableIdx = 0) {
    op(Opcode::CallIndirect);
    u32(TypeIdx);
    u32(TableIdx);
  }

  // --- Memory ---
  void load(Opcode O, uint32_t Offset, uint32_t AlignLog2 = 0) {
    op(O);
    u32(AlignLog2);
    u32(Offset);
  }
  void store(Opcode O, uint32_t Offset, uint32_t AlignLog2 = 0) {
    op(O);
    u32(AlignLog2);
    u32(Offset);
  }
  void memorySize() {
    op(Opcode::MemorySize);
    byte(0);
  }
  void memoryGrow() {
    op(Opcode::MemoryGrow);
    byte(0);
  }
  void memoryCopy() {
    op(Opcode::MemoryCopy);
    byte(0);
    byte(0);
  }
  void memoryFill() {
    op(Opcode::MemoryFill);
    byte(0);
  }

  // --- Parametric and references ---
  void drop() { op(Opcode::Drop); }
  void select() { op(Opcode::Select); }
  void selectT(ValType T) {
    op(Opcode::SelectT);
    u32(1);
    byte(valTypeToByte(T));
  }
  void refNull(ValType T) {
    op(Opcode::RefNull);
    byte(valTypeToByte(T));
  }
  void refFunc(uint32_t FuncIdx) {
    op(Opcode::RefFunc);
    u32(FuncIdx);
  }
  void refIsNull() { op(Opcode::RefIsNull); }

  uint32_t typeIdx() const { return TypeIndex; }

private:
  friend class ModuleBuilder;
  uint32_t TypeIndex = 0;
  uint32_t NumParams = 0;
  std::vector<ValType> Locals;
  std::vector<uint8_t> Body;
};

/// Builds a complete binary module.
class ModuleBuilder {
public:
  /// Adds (or reuses) a function type; returns its type index.
  uint32_t addType(std::vector<ValType> Params, std::vector<ValType> Results);

  /// Imports a function. Must precede all addFunc calls. Returns the
  /// function index.
  uint32_t importFunc(const std::string &Mod, const std::string &Name,
                      uint32_t TypeIdx);

  /// Imports a global. Must precede all addGlobal calls (imported globals
  /// occupy the front of the global index space). Returns the global
  /// index.
  uint32_t importGlobal(const std::string &Mod, const std::string &Name,
                        ValType T, bool Mutable);

  /// Declares a module-defined function; returns a builder for its body.
  /// Callers close their own blocks; build() appends the single
  /// function-terminating `end` opcode.
  FuncBuilder &addFunc(uint32_t TypeIdx);

  /// Function index of a FuncBuilder previously returned by addFunc.
  uint32_t funcIndex(const FuncBuilder &FB) const;

  uint32_t addMemory(uint32_t MinPages,
                     std::optional<uint32_t> MaxPages = std::nullopt);
  uint32_t addTable(uint32_t Min, std::optional<uint32_t> Max = std::nullopt,
                    ValType Elem = ValType::FuncRef);
  uint32_t addGlobal(ValType T, bool Mutable, InitExpr Init);
  void addExport(const std::string &Name, ExternKind Kind, uint32_t Index);
  void exportFunc(const std::string &Name, uint32_t FuncIdx) {
    addExport(Name, ExternKind::Func, FuncIdx);
  }
  void addElem(uint32_t Offset, std::vector<uint32_t> FuncIndices);
  void addData(uint32_t Offset, std::vector<uint8_t> Bytes);
  /// Segment variants with a full constant-expression offset (e.g. a
  /// global.get of an imported global).
  void addElem(InitExpr Offset, std::vector<uint32_t> FuncIndices);
  void addData(InitExpr Offset, std::vector<uint8_t> Bytes);
  void setStart(uint32_t FuncIdx) { Start = FuncIdx; }

  /// Convenience: a global with an i32/i64/f32/f64 constant initializer.
  static InitExpr constInit(ValType T, uint64_t Bits) {
    InitExpr E;
    E.K = InitExpr::Const;
    E.Type = T;
    E.Bits = Bits;
    return E;
  }

  /// Serializes the module to binary.
  std::vector<uint8_t> build() const;

private:
  struct ImportedFunc {
    std::string Mod, Name;
    uint32_t TypeIdx;
  };
  struct ImportedGlobal {
    std::string Mod, Name;
    ValType T;
    bool Mutable;
  };
  struct ElemSeg {
    InitExpr Offset;
    std::vector<uint32_t> Funcs;
  };
  struct DataSeg {
    InitExpr Offset;
    std::vector<uint8_t> Bytes;
  };
  struct GlobalDef {
    ValType T;
    bool Mutable;
    InitExpr Init;
  };
  struct ExportDef {
    std::string Name;
    ExternKind Kind;
    uint32_t Index;
  };
  struct TableDef {
    ValType Elem;
    Limits Lim;
  };

  std::vector<FuncType> Types;
  std::vector<ImportedFunc> Imports;
  std::vector<ImportedGlobal> GlobalImports;
  std::vector<std::unique_ptr<FuncBuilder>> Funcs;
  std::vector<Limits> Memories;
  std::vector<TableDef> Tables;
  std::vector<GlobalDef> Globals;
  std::vector<ExportDef> Exports;
  std::vector<ElemSeg> Elems;
  std::vector<DataSeg> Datas;
  std::optional<uint32_t> Start;
};

} // namespace wisp

#endif // WISP_WASM_BUILDER_H
