//===- baselines/copypatch.cpp - WasmNow-shaped copy-and-patch --------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Template scheme: every operand lives at its canonical value-stack slot;
// the top of stack may additionally be cached in g0/f0 (two template
// variants per opcode: TOS-in-register and TOS-in-memory). Snippets carry
// "holes" — sentinel immediates patched with actual slot indexes and
// instruction immediates at compile time. Control flow, calls and merges
// are emitted directly (they need labels), as in the real system.
//
//===----------------------------------------------------------------------===//

#include "baselines/copypatch.h"

#include "machine/assembler.h"
#include "runtime/trap.h"
#include "wasm/codereader.h"

#include <chrono>
#include <unordered_map>

using namespace wisp;

namespace {

// Patch-hole sentinels in snippet Imm fields.
constexpr int64_t HoleOperandBase = -9001; ///< Slot of the first popped operand.
constexpr int64_t HoleOperand2 = -9002;    ///< Slot of the second operand.
constexpr int64_t HoleResult = -9003;      ///< Slot of the result.
constexpr int64_t HoleImm = -9004;         ///< The instruction immediate.

// Fixed template registers.
constexpr Reg TosG = 0, TmpG = 1, TosF = 0, TmpF = 1;

/// One pre-generated machine-code template.
struct Snippet {
  std::vector<MInst> Insts;
  bool ResultInReg = false; ///< Leaves the result in g0/f0.
  bool Valid = false;
};

/// Maps a fixed-signature wasm opcode to its machine opcode (and condition
/// code for compares).
static bool mapSimpleOp(Opcode Op, MOp *M, uint8_t *D) {
  *D = 0;
  switch (Op) {
#define CMP(OPC, MOPC, COND)                                                   \
  case Opcode::OPC:                                                            \
    *M = MOp::MOPC;                                                            \
    *D = uint8_t(COND);                                                        \
    return true;
#define ONE(OPC, MOPC)                                                         \
  case Opcode::OPC:                                                            \
    *M = MOp::MOPC;                                                            \
    return true;
    ONE(I32Add, Add32) ONE(I32Sub, Sub32) ONE(I32Mul, Mul32)
    ONE(I32DivS, DivS32) ONE(I32DivU, DivU32) ONE(I32RemS, RemS32)
    ONE(I32RemU, RemU32) ONE(I32And, And32) ONE(I32Or, Or32)
    ONE(I32Xor, Xor32) ONE(I32Shl, Shl32) ONE(I32ShrS, ShrS32)
    ONE(I32ShrU, ShrU32) ONE(I32Rotl, Rotl32) ONE(I32Rotr, Rotr32)
    ONE(I32Clz, Clz32) ONE(I32Ctz, Ctz32) ONE(I32Popcnt, Popcnt32)
    ONE(I32Eqz, Eqz32) ONE(I32Extend8S, Ext8S32) ONE(I32Extend16S, Ext16S32)
    ONE(I64Add, Add64) ONE(I64Sub, Sub64) ONE(I64Mul, Mul64)
    ONE(I64DivS, DivS64) ONE(I64DivU, DivU64) ONE(I64RemS, RemS64)
    ONE(I64RemU, RemU64) ONE(I64And, And64) ONE(I64Or, Or64)
    ONE(I64Xor, Xor64) ONE(I64Shl, Shl64) ONE(I64ShrS, ShrS64)
    ONE(I64ShrU, ShrU64) ONE(I64Rotl, Rotl64) ONE(I64Rotr, Rotr64)
    ONE(I64Clz, Clz64) ONE(I64Ctz, Ctz64) ONE(I64Popcnt, Popcnt64)
    ONE(I64Eqz, Eqz64) ONE(I64Extend8S, Ext8S64) ONE(I64Extend16S, Ext16S64)
    ONE(I64Extend32S, Ext32S64)
    CMP(I32Eq, CmpSet32, Cond::Eq) CMP(I32Ne, CmpSet32, Cond::Ne)
    CMP(I32LtS, CmpSet32, Cond::LtS) CMP(I32LtU, CmpSet32, Cond::LtU)
    CMP(I32GtS, CmpSet32, Cond::GtS) CMP(I32GtU, CmpSet32, Cond::GtU)
    CMP(I32LeS, CmpSet32, Cond::LeS) CMP(I32LeU, CmpSet32, Cond::LeU)
    CMP(I32GeS, CmpSet32, Cond::GeS) CMP(I32GeU, CmpSet32, Cond::GeU)
    CMP(I64Eq, CmpSet64, Cond::Eq) CMP(I64Ne, CmpSet64, Cond::Ne)
    CMP(I64LtS, CmpSet64, Cond::LtS) CMP(I64LtU, CmpSet64, Cond::LtU)
    CMP(I64GtS, CmpSet64, Cond::GtS) CMP(I64GtU, CmpSet64, Cond::GtU)
    CMP(I64LeS, CmpSet64, Cond::LeS) CMP(I64LeU, CmpSet64, Cond::LeU)
    CMP(I64GeS, CmpSet64, Cond::GeS) CMP(I64GeU, CmpSet64, Cond::GeU)
    CMP(F32Eq, CmpSetF32, FCond::Eq) CMP(F32Ne, CmpSetF32, FCond::Ne)
    CMP(F32Lt, CmpSetF32, FCond::Lt) CMP(F32Gt, CmpSetF32, FCond::Gt)
    CMP(F32Le, CmpSetF32, FCond::Le) CMP(F32Ge, CmpSetF32, FCond::Ge)
    CMP(F64Eq, CmpSetF64, FCond::Eq) CMP(F64Ne, CmpSetF64, FCond::Ne)
    CMP(F64Lt, CmpSetF64, FCond::Lt) CMP(F64Gt, CmpSetF64, FCond::Gt)
    CMP(F64Le, CmpSetF64, FCond::Le) CMP(F64Ge, CmpSetF64, FCond::Ge)
    ONE(F32Add, AddF32) ONE(F32Sub, SubF32) ONE(F32Mul, MulF32)
    ONE(F32Div, DivF32) ONE(F32Min, MinF32) ONE(F32Max, MaxF32)
    ONE(F32Copysign, CopysignF32) ONE(F32Abs, AbsF32) ONE(F32Neg, NegF32)
    ONE(F32Ceil, CeilF32) ONE(F32Floor, FloorF32) ONE(F32Trunc, TruncF32)
    ONE(F32Nearest, NearestF32) ONE(F32Sqrt, SqrtF32)
    ONE(F64Add, AddF64) ONE(F64Sub, SubF64) ONE(F64Mul, MulF64)
    ONE(F64Div, DivF64) ONE(F64Min, MinF64) ONE(F64Max, MaxF64)
    ONE(F64Copysign, CopysignF64) ONE(F64Abs, AbsF64) ONE(F64Neg, NegF64)
    ONE(F64Ceil, CeilF64) ONE(F64Floor, FloorF64) ONE(F64Trunc, TruncF64)
    ONE(F64Nearest, NearestF64) ONE(F64Sqrt, SqrtF64)
    ONE(I32WrapI64, Wrap64) ONE(I64ExtendI32S, ExtS3264)
    ONE(I64ExtendI32U, Wrap64)
    ONE(I32TruncF32S, TruncF32I32S) ONE(I32TruncF32U, TruncF32I32U)
    ONE(I32TruncF64S, TruncF64I32S) ONE(I32TruncF64U, TruncF64I32U)
    ONE(I64TruncF32S, TruncF32I64S) ONE(I64TruncF32U, TruncF32I64U)
    ONE(I64TruncF64S, TruncF64I64S) ONE(I64TruncF64U, TruncF64I64U)
    ONE(I32TruncSatF32S, TruncSatF32I32S) ONE(I32TruncSatF32U, TruncSatF32I32U)
    ONE(I32TruncSatF64S, TruncSatF64I32S) ONE(I32TruncSatF64U, TruncSatF64I32U)
    ONE(I64TruncSatF32S, TruncSatF32I64S) ONE(I64TruncSatF32U, TruncSatF32I64U)
    ONE(I64TruncSatF64S, TruncSatF64I64S) ONE(I64TruncSatF64U, TruncSatF64I64U)
    ONE(F32ConvertI32S, ConvI32SF32) ONE(F32ConvertI32U, ConvI32UF32)
    ONE(F32ConvertI64S, ConvI64SF32) ONE(F32ConvertI64U, ConvI64UF32)
    ONE(F64ConvertI32S, ConvI32SF64) ONE(F64ConvertI32U, ConvI32UF64)
    ONE(F64ConvertI64S, ConvI64SF64) ONE(F64ConvertI64U, ConvI64UF64)
    ONE(F32DemoteF64, DemoteF64) ONE(F64PromoteF32, PromoteF32)
    ONE(I32ReinterpretF32, RintFG32) ONE(I64ReinterpretF64, RintFG64)
    ONE(F32ReinterpretI32, RintGF32) ONE(F64ReinterpretI64, RintGF64)
    ONE(I32Load, LdM32) ONE(I64Load, LdM64) ONE(F32Load, LdMF32)
    ONE(F64Load, LdMF64) ONE(I32Load8S, LdM8S32) ONE(I32Load8U, LdM8U32)
    ONE(I32Load16S, LdM16S32) ONE(I32Load16U, LdM16U32)
    ONE(I64Load8S, LdM8S64) ONE(I64Load8U, LdM8U64)
    ONE(I64Load16S, LdM16S64) ONE(I64Load16U, LdM16U64)
    ONE(I64Load32S, LdM32S64) ONE(I64Load32U, LdM32U64)
    ONE(I32Store, StM32) ONE(I64Store, StM64) ONE(F32Store, StMF32)
    ONE(F64Store, StMF64) ONE(I32Store8, StM8) ONE(I32Store16, StM16)
    ONE(I64Store8, StM8) ONE(I64Store16, StM16) ONE(I64Store32, StM32)
    ONE(MemoryGrow, MemGrow)
#undef ONE
#undef CMP
  default:
    return false;
  }
}

/// The process-wide template cache.
class TemplateCache {
public:
  void build();
  bool built() const { return Built; }
  /// Returns the snippet for (op, tos-in-reg) or null.
  const Snippet *lookup(Opcode Op, bool TosInReg) const {
    auto It = Map.find(key(Op, TosInReg));
    return It == Map.end() ? nullptr : &It->second;
  }

private:
  static uint32_t key(Opcode Op, bool Tos) {
    return (uint32_t(Op) << 1) | uint32_t(Tos);
  }
  void buildSimple(Opcode Op);
  std::unordered_map<uint32_t, Snippet> Map;
  bool Built = false;
};

void TemplateCache::buildSimple(Opcode Op) {
  MOp M;
  uint8_t D;
  if (!mapSimpleOp(Op, &M, &D))
    return;
  const OpInfo &Info = opInfo(Op);
  bool ImmIsOffset = Info.Imm == ImmKind::MemArg;
  for (int TosReg = 0; TosReg < 2; ++TosReg) {
    Snippet S;
    // Operand registers: last operand may come from the TOS register.
    Reg OperandRegs[3];
    for (unsigned I = 0; I < Info.NPop; ++I) {
      ValType T = Info.Pop[I];
      bool IsLast = I + 1u == Info.NPop;
      bool Fp = isFloatType(T);
      if (IsLast && TosReg) {
        OperandRegs[I] = Fp ? TosF : TosG;
        continue;
      }
      Reg R = Fp ? (IsLast ? TosF : TmpF) : (IsLast ? TosG : TmpG);
      OperandRegs[I] = R;
      S.Insts.push_back(MInst{Fp ? MOp::LdSlotF : MOp::LdSlot, R, 0, 0, 0,
                              IsLast ? HoleOperand2 : HoleOperandBase, 0});
    }
    // For two-operand ops the first operand loads from HoleOperandBase and
    // the second from HoleOperand2; fix single-operand ops.
    if (Info.NPop == 1 && !S.Insts.empty())
      S.Insts.back().Imm = HoleOperandBase;
    // The computation itself.
    bool FpResult = Info.NPush && isFloatType(Info.Push);
    Reg DstReg = FpResult ? TosF : TosG;
    MInst Compute{M, DstReg, 0, 0, D, 0, 0};
    if (Info.NPop >= 1)
      Compute.B = OperandRegs[0];
    if (Info.NPop >= 2)
      Compute.C = OperandRegs[1];
    if (ImmIsOffset)
      Compute.Imm = HoleImm;
    // Loads/stores use (B=address, A=value/dst); rearrange for those.
    switch (M) {
    case MOp::LdM8S32:
    case MOp::LdM8U32:
    case MOp::LdM16S32:
    case MOp::LdM16U32:
    case MOp::LdM32:
    case MOp::LdM8S64:
    case MOp::LdM8U64:
    case MOp::LdM16S64:
    case MOp::LdM16U64:
    case MOp::LdM32S64:
    case MOp::LdM32U64:
    case MOp::LdM64:
    case MOp::LdMF32:
    case MOp::LdMF64:
      Compute.B = OperandRegs[0]; // Address.
      break;
    case MOp::StM8:
    case MOp::StM16:
    case MOp::StM32:
    case MOp::StM64:
    case MOp::StMF32:
    case MOp::StMF64:
      Compute.A = OperandRegs[1]; // Value.
      Compute.B = OperandRegs[0]; // Address.
      break;
    case MOp::MemGrow:
      Compute.B = OperandRegs[0];
      break;
    default:
      // Unops: operand in B (already set via OperandRegs[0]).
      break;
    }
    S.Insts.push_back(Compute);
    S.ResultInReg = Info.NPush > 0;
    S.Valid = true;
    Map[key(Op, TosReg)] = std::move(S);
  }
}

void TemplateCache::build() {
  if (Built)
    return;
  // Walk the whole one-byte and prefixed opcode spaces.
  for (uint32_t B = 0; B < 256; ++B)
    buildSimple(Opcode(B));
  for (uint32_t B = 0; B < 16; ++B)
    buildSimple(Opcode(0xFC00 | B));
  // Constants.
  for (int TosReg = 0; TosReg < 2; ++TosReg) {
    for (Opcode Op : {Opcode::I32Const, Opcode::I64Const}) {
      Snippet S;
      S.Insts.push_back(MInst{MOp::MovRI, TosG, 0, 0, 0, HoleImm, 0});
      S.ResultInReg = true;
      S.Valid = true;
      Map[key(Op, TosReg)] = std::move(S);
    }
    for (Opcode Op : {Opcode::F32Const, Opcode::F64Const}) {
      Snippet S;
      S.Insts.push_back(MInst{MOp::MovFI, TosF, 0, 0, 0, HoleImm, 0});
      S.ResultInReg = true;
      S.Valid = true;
      Map[key(Op, TosReg)] = std::move(S);
    }
  }
  Built = true;
}

TemplateCache &cache() {
  // Built inside the magic-static initializer: C++ guarantees exactly one
  // thread constructs it while concurrent engine constructors wait, so
  // parallel workers (service/batch.h) can warm the process-wide cache
  // without a data race. A separate build() call after construction would
  // reintroduce one (unsynchronized Built/Map writes).
  static TemplateCache C = [] {
    TemplateCache T;
    T.build();
    return T;
  }();
  return C;
}

/// The copy-and-patch compiler driver: height/type tracking, template
/// application, and direct emission for control flow.
class CopyPatch {
public:
  CopyPatch(const Module &M, const FuncDecl &F, MCode &Code)
      : M(M), F(F), Code(Code), A(Code),
        R(M.Bytes.data(), F.BodyStart, F.BodyEnd) {
    NumLocals = F.numLocalSlots();
  }

  void run();

  /// Governance checks at loop headers (same placement as the SPC).
  bool EmitFuelChecks = false;

private:
  struct Ctl {
    Opcode Kind = Opcode::Block;
    bool DeadEntry = false;
    bool ElseSeen = false;
    uint32_t Base = 0;
    uint32_t NParams = 0, NResults = 0;
    Label End, Else, Head;
    std::vector<ValType> SavedStack; ///< if: type stack for the else arm.
  };

  uint32_t height() const { return uint32_t(Stack.size()); }
  uint32_t slotOf(uint32_t OperandIdx) const { return NumLocals + OperandIdx; }
  ValType topType() const { return Stack.back(); }

  /// Spills the TOS register to its canonical slot.
  void spillTos() {
    if (!TosInReg)
      return;
    bool Fp = isFloatType(topType());
    A.emit(Fp ? MOp::StSlotF : MOp::StSlot, Fp ? TosF : TosG, 0, 0, 0,
           int64_t(slotOf(height() - 1)));
    TosInReg = false;
  }

  /// Emits a constant through its template and pushes the result type
  /// (consts are Special-class, so the generic path cannot update the
  /// stack for them).
  void applyConstTemplate(Opcode Op, ValType Ty, int64_t ImmValue) {
    const Snippet *S = cache().lookup(Op, TosInReg);
    assert(S && S->Valid && "missing const template");
    for (MInst I : S->Insts) {
      if (I.Imm == HoleImm)
        I.Imm = ImmValue;
      Code.Insts.push_back(I);
    }
    Stack.push_back(Ty);
    TosInReg = true;
  }

  /// Applies the template for \p Op; returns false if no template exists.
  bool applyTemplate(Opcode Op, int64_t ImmValue) {
    const Snippet *S = cache().lookup(Op, TosInReg);
    if (!S || !S->Valid)
      return false;
    const OpInfo &Info = opInfo(Op);
    // Two-operand snippets that want both operands from memory but the
    // second is in the TOS register were generated for that case; for the
    // memory variant nothing to do. Three-operand ops have no template.
    uint32_t Base = height() - Info.NPop;
    for (MInst I : S->Insts) {
      if (I.Imm == HoleOperandBase)
        I.Imm = int64_t(slotOf(Base));
      else if (I.Imm == HoleOperand2)
        I.Imm = int64_t(slotOf(Base + 1));
      else if (I.Imm == HoleResult)
        I.Imm = int64_t(slotOf(Base));
      else if (I.Imm == HoleImm)
        I.Imm = ImmValue;
      Code.Insts.push_back(I);
    }
    for (unsigned I = 0; I < Info.NPop; ++I)
      Stack.pop_back();
    if (Info.NPush) {
      Stack.push_back(Info.Push);
      TosInReg = S->ResultInReg;
    } else {
      TosInReg = false;
    }
    return true;
  }

  /// Copies the top \p Arity operand values down to \p TgtBase (memory to
  /// memory); used on taken branch edges only.
  void emitMergeMoves(uint32_t Arity, uint32_t TgtBase) {
    uint32_t SrcBase = height() - Arity;
    for (uint32_t J = 0; J < Arity; ++J) {
      uint32_t Src = slotOf(SrcBase + J);
      uint32_t Dst = slotOf(TgtBase + J);
      if (Src == Dst)
        continue;
      A.emit(MOp::LdSlot, 13, 0, 0, 0, int64_t(Src));
      A.emit(MOp::StSlot, 13, 0, 0, 0, int64_t(Dst));
    }
  }

  void branchTo(uint32_t Depth) {
    Ctl &C = Ctrl[Ctrl.size() - 1 - Depth];
    uint32_t Arity = C.Kind == Opcode::Loop ? C.NParams : C.NResults;
    emitMergeMoves(Arity, C.Base);
    A.jmp(C.Kind == Opcode::Loop ? C.Head : C.End);
  }

  void emitReturn() {
    uint32_t NRes = uint32_t(M.Types[F.TypeIdx].Results.size());
    uint32_t SrcBase = height() - NRes;
    for (uint32_t J = 0; J < NRes; ++J) {
      uint32_t Src = slotOf(SrcBase + J);
      if (Src == J)
        continue;
      A.emit(MOp::LdSlot, 13, 0, 0, 0, int64_t(Src));
      A.emit(MOp::StSlot, 13, 0, 0, 0, int64_t(J));
    }
    A.emit(MOp::Ret);
  }

  void resolveBlockType(BlockType BT, uint32_t *NP, uint32_t *NR,
                        std::vector<ValType> *Results) {
    *NP = 0;
    *NR = 0;
    if (BT.K == BlockType::OneResult) {
      *NR = 1;
      Results->push_back(BT.Result);
    } else if (BT.K == BlockType::FuncTypeIdx) {
      *NP = uint32_t(M.Types[BT.TypeIdx].Params.size());
      *NR = uint32_t(M.Types[BT.TypeIdx].Results.size());
      *Results = M.Types[BT.TypeIdx].Results;
    }
  }

  void compileOp(Opcode Op);
  void skipDeadOp(Opcode Op);

  const Module &M;
  const FuncDecl &F;
  MCode &Code;
  Assembler A;
  CodeReader R;
  std::vector<ValType> Stack;
  std::vector<Ctl> Ctrl;
  uint32_t NumLocals = 0;
  bool TosInReg = false;
  bool Live = true;
};

void CopyPatch::skipDeadOp(Opcode Op) {
  switch (Op) {
  case Opcode::Block:
  case Opcode::Loop:
  case Opcode::If: {
    (void)R.readBlockType();
    Ctl C;
    C.Kind = Op;
    C.DeadEntry = true;
    Ctrl.push_back(std::move(C));
    return;
  }
  case Opcode::Else:
    if (Ctrl.back().DeadEntry)
      return;
    compileOp(Op);
    return;
  case Opcode::End:
    if (Ctrl.back().DeadEntry) {
      Ctrl.pop_back();
      return;
    }
    compileOp(Op);
    return;
  default:
    R.skipImms(Op);
    return;
  }
}

void CopyPatch::compileOp(Opcode Op) {
#ifdef WISP_CP_TRACE
  fprintf(stderr, "op=%s h=%zu tos=%d live=%d ctrl=%zu\n", opName(Op),
          Stack.size(), int(TosInReg), int(Live), Ctrl.size());
#endif
  switch (Op) {
  case Opcode::Nop:
    return;
  case Opcode::Unreachable:
    A.emit(MOp::TrapOp, 0, 0, 0, 0, int64_t(TrapReason::Unreachable));
    Live = false;
    return;

  case Opcode::Block:
  case Opcode::Loop: {
    BlockType BT = R.readBlockType();
    spillTos();
    Ctl C;
    C.Kind = Op;
    std::vector<ValType> Results;
    resolveBlockType(BT, &C.NParams, &C.NResults, &Results);
    C.Base = height() - C.NParams;
    C.End = A.newLabel();
    if (Op == Opcode::Loop) {
      C.Head = A.newLabel();
      A.bind(C.Head);
      // Loop-header fuel charge: entry falls through it, backedges jump to
      // Head and re-execute it — exactly the interpreter's charge points.
      if (EmitFuelChecks)
        A.emit(MOp::FuelCheck, 0, 0, 0, 0, int64_t(R.pc()));
    }
    Ctrl.push_back(std::move(C));
    return;
  }

  case Opcode::If: {
    BlockType BT = R.readBlockType();
    Ctl C;
    C.Kind = Opcode::If;
    // Condition: use the TOS register directly when cached.
    Reg CondReg = 13;
    if (TosInReg) {
      CondReg = TosG;
      TosInReg = false;
    } else {
      A.emit(MOp::LdSlot, 13, 0, 0, 0, int64_t(slotOf(height() - 1)));
    }
    Stack.pop_back();
    std::vector<ValType> Results;
    resolveBlockType(BT, &C.NParams, &C.NResults, &Results);
    C.Base = height() - C.NParams;
    C.End = A.newLabel();
    C.Else = A.newLabel();
    C.SavedStack = Stack;
    A.jmpIfZ(CondReg, C.Else);
    Ctrl.push_back(std::move(C));
    return;
  }

  case Opcode::Else: {
    Ctl &C = Ctrl.back();
    C.ElseSeen = true;
    if (Live) {
      spillTos();
      A.jmp(C.End);
    }
    A.bind(C.Else);
    Stack = C.SavedStack;
    TosInReg = false;
    Live = true;
    return;
  }

  case Opcode::End: {
    Ctl C = std::move(Ctrl.back());
    Ctrl.pop_back();
    if (Live)
      spillTos();
    if (C.Kind == Opcode::If && !C.ElseSeen) {
      // Implicit empty else: the false edge falls through to the end.
      A.bind(C.Else);
    }
    if (C.Kind != Opcode::Loop)
      A.bind(C.End);
    // Rebuild the type stack at the merge.
    Stack.resize(NumLocals == 0 ? C.Base : C.Base); // operand count = Base
    Stack.resize(C.Base);
    {
      // Recover result types from the construct.
      // NResults entries were checked by the validator.
      CodeReader Tmp(nullptr, 0, 0);
      (void)Tmp;
    }
    for (uint32_t I = 0; I < C.NResults; ++I)
      Stack.push_back(ValType::I64); // Type only matters for reg class...
    TosInReg = false;
    Live = true;
    if (Ctrl.empty()) {
      emitReturn();
      Live = false;
    }
    return;
  }

  case Opcode::Br: {
    uint32_t Depth = R.readU32();
    spillTos();
    branchTo(Depth);
    Live = false;
    return;
  }
  case Opcode::BrIf: {
    uint32_t Depth = R.readU32();
    Reg CondReg = 13;
    if (TosInReg) {
      CondReg = TosG;
      TosInReg = false;
    } else {
      A.emit(MOp::LdSlot, 13, 0, 0, 0, int64_t(slotOf(height() - 1)));
    }
    Stack.pop_back();
    Label Skip = A.newLabel();
    A.jmpIfZ(CondReg, Skip);
    branchTo(Depth);
    A.bind(Skip);
    return;
  }
  case Opcode::BrTable: {
    uint32_t N = R.readU32();
    std::vector<uint32_t> Depths(N + 1);
    for (uint32_t I = 0; I <= N; ++I)
      Depths[I] = R.readU32();
    if (TosInReg) {
      A.emit(MOp::MovRR, 14, TosG);
      TosInReg = false;
    } else {
      A.emit(MOp::LdSlot, 14, 0, 0, 0, int64_t(slotOf(height() - 1)));
    }
    Stack.pop_back();
    std::vector<Label> Stubs(Depths.size());
    for (auto &L : Stubs)
      L = A.newLabel();
    A.brTable(14, Stubs);
    for (size_t I = 0; I < Depths.size(); ++I) {
      A.bind(Stubs[I]);
      branchTo(Depths[I]);
    }
    Live = false;
    return;
  }
  case Opcode::Return:
    spillTos();
    emitReturn();
    Live = false;
    return;

  case Opcode::Call:
  case Opcode::CallIndirect: {
    uint32_t AIdx = R.readU32();
    uint32_t TableIdx = 0;
    const FuncType *FT;
    Reg IdxReg = 14;
    if (Op == Opcode::CallIndirect) {
      TableIdx = R.readU32();
      (void)TableIdx;
      FT = &M.Types[AIdx];
      if (TosInReg) {
        A.emit(MOp::MovRR, IdxReg, TosG);
        TosInReg = false;
      } else {
        A.emit(MOp::LdSlot, IdxReg, 0, 0, 0, int64_t(slotOf(height() - 1)));
      }
      Stack.pop_back();
    } else {
      FT = &M.funcType(AIdx);
    }
    spillTos();
    uint32_t NArgs = uint32_t(FT->Params.size());
    uint32_t ArgBase = NumLocals + height() - NArgs;
    A.emit(MOp::StSp, 0, 0, 0, 0, int64_t(ArgBase));
    if (Op == Opcode::CallIndirect)
      A.emit(MOp::CallIndirect, IdxReg, 0, 0, 0, int64_t(AIdx),
             int64_t(ArgBase));
    else
      A.emit(MOp::CallDirect, 0, 0, 0, 0, int64_t(AIdx), int64_t(ArgBase));
    for (uint32_t I = 0; I < NArgs; ++I)
      Stack.pop_back();
    for (ValType T : FT->Results)
      Stack.push_back(T);
    TosInReg = false;
    return;
  }

  case Opcode::Drop:
    if (TosInReg)
      TosInReg = false;
    Stack.pop_back();
    return;

  case Opcode::Select:
  case Opcode::SelectT: {
    if (Op == Opcode::SelectT) {
      uint32_t N = R.readU32();
      for (uint32_t I = 0; I < N; ++I)
        (void)R.readByte();
    }
    Reg CondReg = 13;
    if (TosInReg) {
      CondReg = TosG;
      TosInReg = false;
    } else {
      A.emit(MOp::LdSlot, 13, 0, 0, 0, int64_t(slotOf(height() - 1)));
    }
    Stack.pop_back();
    uint32_t BSlot = slotOf(height() - 1);
    uint32_t ASlot = slotOf(height() - 2);
    Label Keep = A.newLabel();
    A.jmpIf(CondReg, Keep);
    A.emit(MOp::LdSlot, 14, 0, 0, 0, int64_t(BSlot));
    A.emit(MOp::StSlot, 14, 0, 0, 0, int64_t(ASlot));
    A.bind(Keep);
    Stack.pop_back();
    return;
  }

  case Opcode::LocalGet: {
    uint32_t Idx = R.readU32();
    spillTos();
    ValType T = F.LocalTypes[Idx];
    bool Fp = isFloatType(T);
    A.emit(Fp ? MOp::LdSlotF : MOp::LdSlot, Fp ? TosF : TosG, 0, 0, 0,
           int64_t(Idx));
    Stack.push_back(T);
    TosInReg = true;
    return;
  }
  case Opcode::LocalSet:
  case Opcode::LocalTee: {
    uint32_t Idx = R.readU32();
    ValType T = F.LocalTypes[Idx];
    bool Fp = isFloatType(T);
    bool IsTee = Op == Opcode::LocalTee;
    if (TosInReg) {
      A.emit(Fp ? MOp::StSlotF : MOp::StSlot, Fp ? TosF : TosG, 0, 0, 0,
             int64_t(Idx));
      if (IsTee)
        return; // Value stays cached in the TOS register.
      TosInReg = false;
    } else {
      A.emit(MOp::LdSlot, 13, 0, 0, 0, int64_t(slotOf(height() - 1)));
      A.emit(MOp::StSlot, 13, 0, 0, 0, int64_t(Idx));
      if (IsTee)
        return;
    }
    Stack.pop_back();
    return;
  }

  case Opcode::GlobalGet: {
    uint32_t Idx = R.readU32();
    spillTos();
    ValType T = M.Globals[Idx].Type;
    bool Fp = isFloatType(T);
    A.emit(Fp ? MOp::GlobGetF : MOp::GlobGet, Fp ? TosF : TosG, 0, 0, 0,
           int64_t(Idx));
    Stack.push_back(T);
    TosInReg = true;
    return;
  }
  case Opcode::GlobalSet: {
    uint32_t Idx = R.readU32();
    ValType T = M.Globals[Idx].Type;
    bool Fp = isFloatType(T);
    if (TosInReg) {
      A.emit(Fp ? MOp::GlobSetF : MOp::GlobSet, Fp ? TosF : TosG, 0, 0, 0,
             int64_t(Idx));
      TosInReg = false;
    } else {
      A.emit(Fp ? MOp::LdSlotF : MOp::LdSlot, Fp ? TmpF : TmpG, 0, 0, 0,
             int64_t(slotOf(height() - 1)));
      A.emit(Fp ? MOp::GlobSetF : MOp::GlobSet, Fp ? TmpF : TmpG, 0, 0, 0,
             int64_t(Idx));
    }
    Stack.pop_back();
    return;
  }

  case Opcode::MemorySize: {
    (void)R.readByte();
    spillTos();
    A.emit(MOp::MemSize, TosG);
    Stack.push_back(ValType::I32);
    TosInReg = true;
    return;
  }
  case Opcode::MemoryGrow: {
    (void)R.readByte();
    if (!applyTemplate(Opcode::MemoryGrow, 0))
      assert(false && "missing memory.grow template");
    return;
  }
  case Opcode::MemoryCopy:
  case Opcode::MemoryFill: {
    (void)R.readByte();
    if (Op == Opcode::MemoryCopy)
      (void)R.readByte();
    spillTos();
    A.emit(MOp::LdSlot, 3, 0, 0, 0, int64_t(slotOf(height() - 1))); // len
    A.emit(MOp::LdSlot, 2, 0, 0, 0, int64_t(slotOf(height() - 2)));
    A.emit(MOp::LdSlot, 1, 0, 0, 0, int64_t(slotOf(height() - 3)));
    A.emit(Op == Opcode::MemoryCopy ? MOp::MemCopy : MOp::MemFill, 1, 2, 3);
    Stack.pop_back();
    Stack.pop_back();
    Stack.pop_back();
    TosInReg = false;
    return;
  }

  case Opcode::RefNull: {
    (void)R.readByte();
    spillTos();
    A.emit(MOp::MovRI, TosG, 0, 0, 0, 0);
    Stack.push_back(ValType::ExternRef);
    TosInReg = true;
    return;
  }
  case Opcode::RefIsNull: {
    if (TosInReg) {
      A.emit(MOp::Eqz64, TosG, TosG);
    } else {
      A.emit(MOp::LdSlot, TosG, 0, 0, 0, int64_t(slotOf(height() - 1)));
      A.emit(MOp::Eqz64, TosG, TosG);
    }
    Stack.pop_back();
    Stack.push_back(ValType::I32);
    TosInReg = true;
    return;
  }
  case Opcode::RefFunc: {
    uint32_t Idx = R.readU32();
    spillTos();
    A.emit(MOp::MovRI, TosG, 0, 0, 0, int64_t(Idx) + 1);
    Stack.push_back(ValType::FuncRef);
    TosInReg = true;
    return;
  }

  case Opcode::I32Const: {
    int32_t V = R.readS32();
    spillTos();
    applyConstTemplate(Op, ValType::I32, int64_t(uint32_t(V)));
    return;
  }
  case Opcode::I64Const: {
    int64_t V = R.readS64();
    spillTos();
    applyConstTemplate(Op, ValType::I64, V);
    return;
  }
  case Opcode::F32Const: {
    uint32_t V = R.readF32Bits();
    spillTos();
    applyConstTemplate(Op, ValType::F32, int64_t(V));
    return;
  }
  case Opcode::F64Const: {
    uint64_t V = R.readF64Bits();
    spillTos();
    applyConstTemplate(Op, ValType::F64, int64_t(V));
    return;
  }

  default: {
    // Fixed-signature ops: templates. Memory ops carry an offset.
    int64_t Imm = 0;
    if (opInfo(Op).Imm == ImmKind::MemArg) {
      MemArg Arg = R.readMemArg();
      Imm = int64_t(Arg.Offset);
    }
    // Two-operand ops with the *second* operand cached: the variant
    // handles it. If the snippet expects memory operands but TOS is in a
    // register, the variant lookup keyed on TosInReg handles it too.
    bool Ok = applyTemplate(Op, Imm);
    assert(Ok && "no template for opcode");
    if (!Ok) {
      A.emit(MOp::TrapOp, 0, 0, 0, 0, int64_t(TrapReason::Unreachable));
      Live = false;
    }
    return;
  }
  }
}

void CopyPatch::run() {
  Code.FuncIndex = F.Index;
  Code.FrameSlots = F.frameSlots();
  // Root control frame.
  Ctl Root;
  Root.Kind = Opcode::Block;
  Root.NResults = uint32_t(M.Types[F.TypeIdx].Results.size());
  Root.End = A.newLabel();
  Ctrl.push_back(std::move(Root));
  // Zero declared locals.
  uint32_t NParams = uint32_t(M.Types[F.TypeIdx].Params.size());
  if (NumLocals > NParams)
    A.emit(MOp::ZeroSlots, 0, 0, 0, 0, int64_t(NParams),
           int64_t(NumLocals - NParams));
  while (R.pc() < F.BodyEnd) {
    uint32_t OpIp = uint32_t(R.pc());
    Opcode Op = R.readOpcode();
    if (!Live) {
      skipDeadOp(Op);
      continue;
    }
    Code.noteLine(OpIp);
    compileOp(Op);
  }
  Code.Stats.CodeInsts = Code.Insts.size();
  Code.Stats.InputBytes = F.BodyEnd - F.BodyStart;
}

} // namespace

void wisp::warmCopyPatchTemplates() {
  // Force the magic-static construction (which builds the templates); the
  // cache is immutable afterwards, so concurrent engines only ever read.
  (void)cache();
}

std::unique_ptr<MCode> wisp::compileCopyPatch(const Module &M,
                                              const FuncDecl &F,
                                              const CompilerOptions &Opts,
                                              const ProbeSiteOracle *
                                              /*Probes*/) {
  auto Code = std::make_unique<MCode>();
  auto Start = std::chrono::steady_clock::now();
  CopyPatch C(M, F, *Code);
  C.EmitFuelChecks = Opts.EmitFuelChecks;
  C.run();
  auto End = std::chrono::steady_clock::now();
  Code->Stats.TimeNs = uint64_t(
      std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
          .count());
  return Code;
}
