//===- baselines/twopass.h - wazero-shaped two-pass compiler ----*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A wazero-shaped pipeline: unlike the true single-pass compilers, it
/// first lowers the bytecode into an internal listing IR (decode +
/// per-operation records + stack-height analysis), then runs code
/// generation over the function again. The extra pass and IR allocation
/// are what make it measurably slower to compile (paper Fig. 8 shows
/// wazero 3-4x slower); its restricted feature set (single-register
/// allocation, no constant tracking — Fig. 3 row "wazero") makes its code
/// slower too (Fig. 7).
///
//===----------------------------------------------------------------------===//

#ifndef WISP_BASELINES_TWOPASS_H
#define WISP_BASELINES_TWOPASS_H

#include "spc/compiler.h"

namespace wisp {

/// Compiles with the two-pass pipeline. The CompilerOptions' feature flags
/// are overridden to wazero's feature set (R only); tag mode None.
std::unique_ptr<MCode> compileTwoPass(const Module &M, const FuncDecl &F,
                                      const CompilerOptions &Opts,
                                      const ProbeSiteOracle *Probes = nullptr);

} // namespace wisp

#endif // WISP_BASELINES_TWOPASS_H
