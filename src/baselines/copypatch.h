//===- baselines/copypatch.h - WasmNow-shaped copy-and-patch ----*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A copy-and-patch code generator in the style of WasmNow (Xu & Kjolstad,
/// OOPSLA 2021; paper §VII). Machine-code *templates* for every opcode are
/// generated once at engine startup (visible as startup cost, exactly as
/// the paper observed in WasmNow's SQ region). Compilation is then a cache
/// lookup, a copy of the snippet, and patching of immediate/slot holes —
/// the fastest compile path of all baselines. Values live at canonical
/// value-stack slots with the top of stack cached in a fixed register,
/// i.e. the register assignments are baked into template variants.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_BASELINES_COPYPATCH_H
#define WISP_BASELINES_COPYPATCH_H

#include "spc/compiler.h"

namespace wisp {

/// Builds the process-wide template cache (idempotent). Called by engines
/// at startup so the cost is attributed to VM startup, not compilation.
void warmCopyPatchTemplates();

/// Compiles one function by template copy-and-patch. Probes are not
/// supported by this design (the paper notes most baselines do not support
/// instrumentation); the oracle is ignored.
std::unique_ptr<MCode> compileCopyPatch(const Module &M, const FuncDecl &F,
                                        const CompilerOptions &Opts,
                                        const ProbeSiteOracle *Probes =
                                            nullptr);

} // namespace wisp

#endif // WISP_BASELINES_COPYPATCH_H
