//===- baselines/twopass.cpp - wazero-shaped two-pass compiler --------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "baselines/twopass.h"

#include "wasm/codereader.h"

#include <chrono>

using namespace wisp;

namespace {

/// One listing-IR operation (wazero's internal representation: fully
/// decoded operands plus the operand-stack height at the operation).
struct ListOp {
  Opcode Op = Opcode::Nop;
  uint32_t Ip = 0;
  int32_t Height = 0;
  uint64_t ImmA = 0;
  uint64_t ImmB = 0;
  std::vector<uint32_t> Targets; ///< br_table only.
};

/// Pass 1: decode the function into the listing and compute stack heights.
/// The output drives wazero's register allocator in the real engine; here
/// the decoded listing is materialized (allocation and all) and codegen
/// re-walks the function, which costs the same second pass.
static std::vector<ListOp> buildListing(const Module &M, const FuncDecl &F) {
  std::vector<ListOp> Listing;
  Listing.reserve((F.BodyEnd - F.BodyStart) / 2);
  CodeReader R(M.Bytes.data(), F.BodyStart, F.BodyEnd);
  int32_t Height = 0;
  while (!R.atEnd()) {
    ListOp L;
    L.Ip = uint32_t(R.pc());
    L.Op = R.readOpcode();
    L.Height = Height;
    const OpInfo &Info = opInfo(L.Op);
    switch (Info.Imm) {
    case ImmKind::BlockType:
      (void)R.readBlockType();
      break;
    case ImmKind::LabelIdx:
    case ImmKind::FuncIdx:
    case ImmKind::LocalIdx:
    case ImmKind::GlobalIdx:
      L.ImmA = R.readU32();
      break;
    case ImmKind::BrTable: {
      uint32_t N = R.readU32();
      for (uint32_t I = 0; I < N; ++I)
        L.Targets.push_back(R.readU32());
      L.ImmA = R.readU32();
      break;
    }
    case ImmKind::CallIndirect:
      L.ImmA = R.readU32();
      L.ImmB = R.readU32();
      break;
    case ImmKind::MemArg: {
      MemArg A = R.readMemArg();
      L.ImmA = A.Align;
      L.ImmB = A.Offset;
      break;
    }
    case ImmKind::I32Imm:
      L.ImmA = uint64_t(uint32_t(R.readS32()));
      break;
    case ImmKind::I64Imm:
      L.ImmA = uint64_t(R.readS64());
      break;
    case ImmKind::F32Imm:
      L.ImmA = R.readF32Bits();
      break;
    case ImmKind::F64Imm:
      L.ImmA = R.readF64Bits();
      break;
    default:
      R.skipImms(L.Op);
      break;
    }
    // Height analysis for the fixed-signature operations (control flow is
    // re-analyzed by codegen).
    if (Info.Class == OpClass::Simple)
      Height += int32_t(Info.NPush) - int32_t(Info.NPop);
    Listing.push_back(std::move(L));
  }
  return Listing;
}

} // namespace

std::unique_ptr<MCode> wisp::compileTwoPass(const Module &M,
                                            const FuncDecl &F,
                                            const CompilerOptions &Opts,
                                            const ProbeSiteOracle *Probes) {
  auto Start = std::chrono::steady_clock::now();
  // Pass 1: lower to the listing IR.
  std::vector<ListOp> Listing = buildListing(M, F);
  // Pass 2: code generation with wazero's feature set (Fig. 3: R only).
  CompilerOptions Restricted = Opts;
  Restricted.TrackConstants = false;
  Restricted.ConstantFolding = false;
  Restricted.InstructionSelect = false;
  Restricted.MultiRegister = false;
  Restricted.Peephole = false;
  Restricted.Tags = TagMode::None; // wazero's host is not garbage-collected.
  std::unique_ptr<MCode> Code = compileFunction(M, F, Restricted, Probes);
  auto End = std::chrono::steady_clock::now();
  Code->Stats.TimeNs = uint64_t(
      std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
          .count());
  // Keep a record of the listing cost in the snapshot-byte statistic so
  // compile-speed analyses can attribute it.
  Code->Stats.SnapshotBytes += Listing.size() * sizeof(ListOp);
  return Code;
}
