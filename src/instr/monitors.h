//===- instr/monitors.h - standard monitors ---------------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standard monitors built on the probe API, mirroring Wizard's tooling:
/// the branch monitor (profiles conditional branch outcomes by reading the
/// top of stack — the paper's Figure 6 workload), opcode counters, function
/// coverage and hotness.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_INSTR_MONITORS_H
#define WISP_INSTR_MONITORS_H

#include "instr/registry.h"
#include "wasm/codereader.h"
#include "wasm/module.h"

#include <memory>
#include <vector>

namespace wisp {

/// Calls \p Fn with (opcode, bytecode offset) for every instruction of a
/// function body.
template <typename Fn>
void forEachInstruction(const Module &M, const FuncDecl &F, Fn Callback) {
  CodeReader R(M.Bytes.data(), F.BodyStart, F.BodyEnd);
  while (!R.atEnd()) {
    uint32_t Ip = uint32_t(R.pc());
    Opcode Op = R.readOpcode();
    if (!R.ok())
      return;
    Callback(Op, Ip);
    R.skipImms(Op);
  }
}

/// Profiles the outcome of every conditional branch (br_if and if) by
/// reading the condition from the top of the value stack.
class BranchMonitor {
public:
  struct Site {
    uint32_t FuncIdx = 0;
    uint32_t Ip = 0;
    uint64_t Taken = 0;
    uint64_t NotTaken = 0;
  };

  /// Instruments every br_if/if in every function of the instance.
  void attach(Instance &Inst, ProbeRegistry &Reg);

  const std::vector<std::unique_ptr<Site>> &sites() const { return Sites; }
  uint64_t totalTaken() const;
  uint64_t totalNotTaken() const;

private:
  class BranchProbe;
  std::vector<std::unique_ptr<Site>> Sites;
  std::vector<std::unique_ptr<Probe>> Probes;
};

/// Counts executions of every site of one opcode (e.g. calls, loads).
class OpcodeCountMonitor {
public:
  void attach(Instance &Inst, ProbeRegistry &Reg, Opcode Target);
  uint64_t total() const;

private:
  class CountProbe;
  std::vector<std::unique_ptr<Probe>> Probes;
  std::vector<std::unique_ptr<uint64_t>> Cells;
};

/// Function-entry coverage/hotness: one counter per function.
class CoverageMonitor {
public:
  void attach(Instance &Inst, ProbeRegistry &Reg);
  uint64_t entries(uint32_t FuncIdx) const { return *Cells[FuncIdx]; }
  uint32_t functionsExecuted() const;

private:
  class CountProbe;
  std::vector<std::unique_ptr<Probe>> Probes;
  std::vector<std::unique_ptr<uint64_t>> Cells;
};

} // namespace wisp

#endif // WISP_INSTR_MONITORS_H
