//===- instr/monitors.cpp - standard monitors -------------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "instr/monitors.h"

using namespace wisp;

// --- BranchMonitor ---

class BranchMonitor::BranchProbe : public Probe {
public:
  explicit BranchProbe(Site *S) : S(S) {}
  ProbeSiteKind kind() const override { return ProbeSiteKind::TosReader; }
  void fire(FrameAccessor &A) override {
    // Generic path: read the condition through the accessor.
    count(A.tos());
  }
  void fireTos(uint32_t, uint32_t, Value Tos) override { count(Tos); }

private:
  void count(Value Cond) {
    if (uint32_t(Cond.Bits) != 0)
      ++S->Taken;
    else
      ++S->NotTaken;
  }
  Site *S;
};

void BranchMonitor::attach(Instance &Inst, ProbeRegistry &Reg) {
  const Module &M = *Inst.M;
  for (const FuncDecl &F : M.Funcs) {
    if (F.Imported)
      continue;
    forEachInstruction(M, F, [&](Opcode Op, uint32_t Ip) {
      if (Op != Opcode::BrIf && Op != Opcode::If)
        return;
      auto S = std::make_unique<Site>();
      S->FuncIdx = F.Index;
      S->Ip = Ip;
      auto P = std::make_unique<BranchProbe>(S.get());
      Reg.insert(Inst, F.Index, Ip, P.get());
      Sites.push_back(std::move(S));
      Probes.push_back(std::move(P));
    });
  }
}

uint64_t BranchMonitor::totalTaken() const {
  uint64_t Sum = 0;
  for (const auto &S : Sites)
    Sum += S->Taken;
  return Sum;
}

uint64_t BranchMonitor::totalNotTaken() const {
  uint64_t Sum = 0;
  for (const auto &S : Sites)
    Sum += S->NotTaken;
  return Sum;
}

// --- Counter probes (shared shape) ---

namespace {
class CounterProbeImpl : public Probe {
public:
  explicit CounterProbeImpl(uint64_t *Cell) : Cell(Cell) {}
  ProbeSiteKind kind() const override { return ProbeSiteKind::Counter; }
  uint64_t *counterCell() override { return Cell; }
  void fire(FrameAccessor &) override { ++*Cell; }
  void fireTos(uint32_t, uint32_t, Value) override { ++*Cell; }

private:
  uint64_t *Cell;
};
} // namespace

class OpcodeCountMonitor::CountProbe : public CounterProbeImpl {
public:
  using CounterProbeImpl::CounterProbeImpl;
};

void OpcodeCountMonitor::attach(Instance &Inst, ProbeRegistry &Reg,
                                Opcode Target) {
  const Module &M = *Inst.M;
  for (const FuncDecl &F : M.Funcs) {
    if (F.Imported)
      continue;
    forEachInstruction(M, F, [&](Opcode Op, uint32_t Ip) {
      if (Op != Target)
        return;
      Cells.push_back(std::make_unique<uint64_t>(0));
      auto P = std::make_unique<CountProbe>(Cells.back().get());
      Reg.insert(Inst, F.Index, Ip, P.get());
      Probes.push_back(std::move(P));
    });
  }
}

uint64_t OpcodeCountMonitor::total() const {
  uint64_t Sum = 0;
  for (const auto &C : Cells)
    Sum += *C;
  return Sum;
}

class CoverageMonitor::CountProbe : public CounterProbeImpl {
public:
  using CounterProbeImpl::CounterProbeImpl;
};

void CoverageMonitor::attach(Instance &Inst, ProbeRegistry &Reg) {
  const Module &M = *Inst.M;
  Cells.resize(M.Funcs.size());
  for (size_t I = 0; I < M.Funcs.size(); ++I)
    Cells[I] = std::make_unique<uint64_t>(0);
  for (const FuncDecl &F : M.Funcs) {
    if (F.Imported || F.BodyStart >= F.BodyEnd)
      continue;
    auto P = std::make_unique<CountProbe>(Cells[F.Index].get());
    Reg.insert(Inst, F.Index, F.BodyStart, P.get());
    Probes.push_back(std::move(P));
  }
}

uint32_t CoverageMonitor::functionsExecuted() const {
  uint32_t N = 0;
  for (const auto &C : Cells)
    if (C && *C > 0)
      ++N;
  return N;
}
