//===- instr/registry.h - probe registry ------------------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps (function, bytecode offset) to attached probes, keeps function
/// probe bitmaps in sync, and implements the compile-time oracle that lets
/// the JIT intrinsify probe sites.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_INSTR_REGISTRY_H
#define WISP_INSTR_REGISTRY_H

#include "instr/probe.h"

#include <map>
#include <vector>

namespace wisp {

/// Probe registry for one instance.
class ProbeRegistry : public ProbeSiteOracle {
public:
  /// Attaches \p P (not owned) to (func, ip) and updates the function's
  /// probe bitmap.
  void insert(Instance &Inst, uint32_t FuncIdx, uint32_t Ip, Probe *P) {
    Sites[{FuncIdx, Ip}].push_back(P);
    Inst.func(FuncIdx)->setProbeBit(Ip);
  }

  /// Removes all probes at (func, ip).
  void removeAll(Instance &Inst, uint32_t FuncIdx, uint32_t Ip) {
    Sites.erase({FuncIdx, Ip});
    Inst.func(FuncIdx)->clearProbeBit(Ip);
  }

  const std::vector<Probe *> *probesAt(uint32_t FuncIdx, uint32_t Ip) const {
    auto It = Sites.find({FuncIdx, Ip});
    return It == Sites.end() ? nullptr : &It->second;
  }

  bool anyProbes() const { return !Sites.empty(); }

  /// Fires all probes at a site through the generic path.
  void fire(Thread &T, FuncInstance *Func, uint32_t Ip) const {
    const std::vector<Probe *> *Ps = probesAt(Func->Decl->Index, Ip);
    if (!Ps)
      return;
    // The accessor object is allocated lazily, once per firing.
    FrameAccessor A(T, Func, Ip);
    for (Probe *P : *Ps)
      P->fire(A);
  }

  /// Optimized TOS path (single TosReader probe at the site).
  void fireTos(Thread &, FuncInstance *Func, uint32_t Ip, Value Tos) const {
    const std::vector<Probe *> *Ps = probesAt(Func->Decl->Index, Ip);
    if (!Ps)
      return;
    for (Probe *P : *Ps)
      P->fireTos(Func->Decl->Index, Ip, Tos);
  }

  // --- ProbeSiteOracle (compile-time classification) ---
  ProbeSiteKind classify(uint32_t FuncIdx, uint32_t Ip) const override {
    const std::vector<Probe *> *Ps = probesAt(FuncIdx, Ip);
    if (!Ps || Ps->empty())
      return ProbeSiteKind::None;
    if (Ps->size() > 1)
      return ProbeSiteKind::Generic;
    return (*Ps)[0]->kind();
  }
  uint64_t *counterAddr(uint32_t FuncIdx, uint32_t Ip) const override {
    const std::vector<Probe *> *Ps = probesAt(FuncIdx, Ip);
    assert(Ps && Ps->size() == 1 && "not a counter site");
    return (*Ps)[0]->counterCell();
  }

private:
  std::map<std::pair<uint32_t, uint32_t>, std::vector<Probe *>> Sites;
};

} // namespace wisp

#endif // WISP_INSTR_REGISTRY_H
