//===- instr/probe.h - probes and frame accessors ---------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instrumentation probes (paper §IV.D): user callbacks that fire before a
/// given instruction executes. Probes receive a lazily-allocated accessor
/// exposing the frame's state (the unoptimized path), or — when the JIT
/// intrinsifies them — a direct counter increment or the top-of-stack value
/// with no accessor allocation at all.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_INSTR_PROBE_H
#define WISP_INSTR_PROBE_H

#include "runtime/instance.h"
#include "runtime/thread.h"
#include "spc/options.h"

namespace wisp {

/// A lazily-constructed view of a suspended frame's state. Mirrors the
/// engine-internal accessor object Wizard passes to probes; constructing
/// one is the allocation the optimized probe paths elide.
class FrameAccessor {
public:
  FrameAccessor(Thread &T, FuncInstance *Func, uint32_t Ip)
      : T(T), Func(Func), Ip_(Ip), F(&T.top()) {}

  uint32_t ip() const { return Ip_; }
  FuncInstance *func() const { return Func; }

  uint32_t numLocals() const { return Func->Decl->numLocalSlots(); }
  Value local(uint32_t I) const {
    return Value{T.VS.slot(F->Vfp + I), Func->Decl->LocalTypes[I]};
  }
  /// Operand stack height (above the locals).
  uint32_t stackHeight() const {
    return F->Sp - F->Vfp - Func->Decl->numLocalSlots();
  }
  /// Operand stack value; 0 is the bottom, stackHeight()-1 the top.
  Value stackAt(uint32_t I) const {
    uint32_t Slot = F->Vfp + Func->Decl->numLocalSlots() + I;
    ValType Ty =
        T.VS.hasTags() ? T.VS.tag(Slot) : ValType::I64; // Raw without tags.
    return Value{T.VS.slot(Slot), Ty};
  }
  Value tos() const {
    assert(stackHeight() > 0 && "empty operand stack");
    return stackAt(stackHeight() - 1);
  }

private:
  Thread &T;
  FuncInstance *Func;
  uint32_t Ip_;
  const Frame *F;
};

/// A probe attached to one or more bytecode locations.
class Probe {
public:
  virtual ~Probe() = default;

  /// Generic firing path with full frame access.
  virtual void fire(FrameAccessor &A) = 0;

  /// Classification used by compilers to intrinsify the site.
  virtual ProbeSiteKind kind() const { return ProbeSiteKind::Generic; }

  /// Counter probes: the cell the JIT increments inline.
  virtual uint64_t *counterCell() { return nullptr; }

  /// TOS-reader probes: optimized firing path receiving the value
  /// directly, skipping the runtime lookup and accessor allocation.
  virtual void fireTos(uint32_t /*FuncIdx*/, uint32_t /*Ip*/,
                       Value /*Tos*/) {}
};

} // namespace wisp

#endif // WISP_INSTR_PROBE_H
