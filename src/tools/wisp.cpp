//===- tools/wisp.cpp - the wisp command-line driver -----------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Standalone entry point for the engine: loads a .wasm file or a named
// embedded suite item, selects an execution tier, optionally attaches
// monitors, invokes an export with arguments, and prints results, timing
// and engine statistics.
//
//   wisp --tier=spc ostrich/crc
//   wisp --tier=int --invoke=gcd module.wasm 3528 3780
//   wisp --monitor=branches --stats polybench/2mm
//   wisp --batch=manifest.txt --jobs=8
//
//===----------------------------------------------------------------------===//

#include "analysis/analysis.h"
#include "baselines/copypatch.h"
#include "baselines/twopass.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "instr/monitors.h"
#include "interp/predecode.h"
#include "opt/optcompiler.h"
#include "service/batch.h"
#include "service/serve.h"
#include "spc/compiler.h"
#include "suites/suites.h"
#include "cache/diskcache.h"
#include "support/clock.h"
#include "support/json.h"
#include "support/parse.h"
#include "verify/verifier.h"
#include "wasm/reader.h"
#include "wasm/validator.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace wisp;

namespace {

const char *UsageText =
    "usage: wisp [options] <module> [args...]\n"
    "\n"
    "  <module>  path to a .wasm file, or an embedded suite item\n"
    "            (\"polybench/2mm\", \"libsodium/stream_chacha20\",\n"
    "            \"ostrich/crc\", ... see --list), or \"nop\" for the\n"
    "            104-byte no-op module\n"
    "  [args]    arguments for the invoked export, parsed against its\n"
    "            signature: i32/i64 as decimal or 0x-hex, f32/f64 as decimal\n"
    "\n"
    "options:\n"
    "  --tier=TIER      execution tier: int (in-place interpreter),\n"
    "                   threaded (pre-decoded threaded-dispatch\n"
    "                   interpreter), spc (single-pass compiler, default),\n"
    "                   copypatch, twopass, opt (optimizing)\n"
    "  --config=NAME    named engine configuration from the Fig. 3/10\n"
    "                   registries (mutually exclusive with --tier;\n"
    "                   see --list-configs)\n"
    "  --invoke=NAME    export to call (default \"run\")\n"
    "  --scale=N        suite workload scale factor (default 1)\n"
    "  --m0             use the early-return (setup-bound) suite variant\n"
    "  --monitor=M      attach a monitor; repeatable:\n"
    "                   branches | coverage | count:<opcode mnemonic>\n"
    "  --stats          print load and execution statistics\n"
    "  --time           print setup and main-phase wall times\n"
    "  --verify         statically verify every compiled artifact (machine\n"
    "                   code and threaded IR) against the wasm body before\n"
    "                   it runs; a rejected artifact fails the load. On by\n"
    "                   default in Debug builds and under wisp-fuzz\n"
    "  --audit          audit mode: instead of running, push the module\n"
    "                   through all four compiler pipelines and the\n"
    "                   threaded-IR pre-decoder and print a per-compiler\n"
    "                   verification report; exits nonzero on any finding.\n"
    "                   Mutually exclusive with execution flags\n"
    "  --analyze        static-analysis mode: instead of running, print the\n"
    "                   whole-module analysis report — per-function operand\n"
    "                   stack/frame bounds, call graph (recursion, worst-\n"
    "                   case call depth), loop freedom, memory-page bounds\n"
    "                   and lint findings (unreachable functions,\n"
    "                   guaranteed-trap sites, dead br_table cases). The\n"
    "                   report is tier-independent. Exits 1 when any lint\n"
    "                   finding fires, 0 on a clean module.\n"
    "                   WISP_ANALYZE_JSON=<path> additionally writes the\n"
    "                   machine-readable artifact\n"
    "  --json           with --analyze or --audit: print the machine-\n"
    "                   readable JSON report on stdout instead of the\n"
    "                   human-readable one\n"
    "  --no-compile-cache\n"
    "                   disable the content-addressed compile cache\n"
    "                   (repeated loads of identical modules/bodies under\n"
    "                   an identical configuration normally decode and\n"
    "                   compile once per process — or once per batch);\n"
    "                   use for cold-start measurements\n"
    "  --cache-dir=DIR  persistent artifact cache: compiled machine code\n"
    "                   and pre-decoded threaded IR are serialized under\n"
    "                   DIR (created if needed) and re-verified + reused by\n"
    "                   later wisp processes, skipping the compile pipeline\n"
    "                   on cross-process warm starts. Defaults to the\n"
    "                   WISP_CACHE_DIR environment variable; no directory\n"
    "                   means no disk level. Composes with --batch/--serve\n"
    "                   (all worker engines share the directory)\n"
    "  --no-disk-cache  ignore --cache-dir/WISP_CACHE_DIR: never read or\n"
    "                   write disk artifacts (cold-start measurement in a\n"
    "                   warm directory)\n"
    "  --no-instance-pool\n"
    "                   disable the instantiation fast path: no per-module\n"
    "                   instance image (pre-imaged memory, pre-resolved\n"
    "                   tables, pre-evaluated globals) and no recycling of\n"
    "                   retired instances through the per-engine/per-worker\n"
    "                   pools; every instantiation replays segments from\n"
    "                   scratch. Use for cold-start measurements\n"
    "  --fuel=N         meter execution: trap with FuelExhausted after N\n"
    "                   fuel units (frames pushed + loop-header arrivals);\n"
    "                   the trap site is identical on every tier\n"
    "  --deadline-ms=N  wall-clock deadline: a watchdog interrupts the run\n"
    "                   with DeadlineExceeded after N ms (1..3600000)\n"
    "  --max-call-depth=N / --max-pages=N / --max-table-elems=N\n"
    "                   resource limits: cap the wasm frame stack (trap:\n"
    "                   StackOverflow), linear-memory pages (grow returns\n"
    "                   -1; a module whose minimum exceeds the cap fails to\n"
    "                   load) and table elements (load-time cap)\n"
    "  --batch=FILE     batch mode: run every job of a manifest across a\n"
    "                   worker pool (one private engine per job) and print\n"
    "                   a deterministic per-job report. Manifest lines:\n"
    "                     <module> [tier=T|config=NAME] [invoke=NAME]\n"
    "                              [scale=N] [m0] [args=v1,v2,...]\n"
    "                              [id=NAME] [fuel=N] [deadline-ms=N]\n"
    "                   ('#' comments). Mutually exclusive with the\n"
    "                   single-module flags above; traps are reported as\n"
    "                   results, infrastructure failures exit nonzero\n"
    "  --serve          service mode: read job lines (batch-manifest\n"
    "                   syntax) from stdin, keep engines/caches/instance\n"
    "                   pools warm across jobs, answer each accepted job\n"
    "                   with exactly one 'done <id> ...' line. Admission is\n"
    "                   bounded ('reject <id> queue-full' under overload);\n"
    "                   EOF, a 'shutdown' line, or SIGTERM drains\n"
    "                   gracefully. --fuel/--deadline-ms set per-job\n"
    "                   defaults (manifest keys override), --max-* set\n"
    "                   session-wide caps; WISP_FAULT_SEED=N enables\n"
    "                   deterministic fault injection for stress testing.\n"
    "                   Jobs whose static bounds provably exceed the caps\n"
    "                   are shed at admission ('reject <id> static-bounds:\n"
    "                   <reason>')\n"
    "  --no-static-precheck\n"
    "                   disable the static admission precheck (requires\n"
    "                   --batch or --serve): provably-over-cap jobs are\n"
    "                   admitted and run to the governed trap instead of\n"
    "                   being rejected at admission\n"
    "  --queue-cap=K    serve admission-queue capacity (default 4x jobs)\n"
    "  --jobs=K         worker threads (default 1; requires --batch or\n"
    "                   --serve)\n"
    "  --list           list embedded suite items and exit\n"
    "  --list-configs   list named engine configurations and exit\n"
    "  --help           show this help\n";

int usageError(const char *Fmt, const char *Arg) {
  fprintf(stderr, Fmt, Arg);
  fprintf(stderr, "\n%s", UsageText);
  return 2;
}


/// Looks an opcode up by mnemonic (e.g. "i32.add", "call").
bool opcodeByName(const std::string &Name, Opcode *Out) {
  auto Scan = [&](uint16_t Lo, uint16_t Hi) {
    for (uint32_t V = Lo; V <= Hi; ++V) {
      Opcode Op = Opcode(V);
      if (opInfo(Op).Name && Name == opInfo(Op).Name) {
        *Out = Op;
        return true;
      }
    }
    return false;
  };
  return Scan(0x00, 0xFF) || Scan(0xFC00, 0xFCFF);
}

void printValue(Value V) { fputs(valueText(V).c_str(), stdout); }


int listSuites(int Scale) {
  for (const LineItem &I : allSuites(Scale))
    printf("%s/%-24s %s  %7zu bytes\n", I.Suite.c_str(), I.Name.c_str(),
           I.ResultType == ValType::F64 ? "f64" : "i64", I.Bytes.size());
  printf("%-34s i64  %7zu bytes\n", "nop", nopModule().size());
  return 0;
}

int listConfigs() {
  printf("--tier shorthands: int threaded spc copypatch twopass opt\n\n");
  for (const EngineConfig &C : figure10Registry()) {
    const char *Mode =
        C.Mode == ExecMode::Interp
            ? (C.ThreadedDispatch ? "interp*" : "interp")
            : C.Mode == ExecMode::Jit     ? "jit"
            : C.Mode == ExecMode::JitLazy ? "jit-lazy"
            : C.ThreadedDispatch          ? "tiered*"
                                          : "tiered";
    const char *Kind = C.Compiler == CompilerKind::SinglePass ? "single-pass"
                       : C.Compiler == CompilerKind::TwoPass  ? "two-pass"
                       : C.Compiler == CompilerKind::CopyPatch
                           ? "copy-patch"
                           : "optimizing";
    printf("%-22s %-9s %s\n", C.Name.c_str(), Mode, Kind);
  }
  printf("\n(* = threaded-dispatch interpreter: pre-decoded IR, "
         "computed-goto, superinstructions)\n");
  return 0;
}

struct CliOptions {
  std::string Tier = "spc";
  bool TierSet = false; ///< --tier was given explicitly.
  std::string Config;
  std::string Invoke = "run";
  bool InvokeSet = false;
  std::string Module;
  std::vector<std::string> Monitors;
  std::vector<std::string> RawArgs;
  int Scale = 1;
  bool ScaleSet = false;
  bool UseM0 = false;
  bool Stats = false;
  bool Time = false;
  bool Verify = false;
  bool Audit = false;
  bool Analyze = false;
  bool Json = false; ///< --analyze/--audit machine-readable output.
  bool NoStaticPrecheck = false; ///< Disable batch/serve admission precheck.
  bool NoCompileCache = false;
  bool NoInstancePool = false;
  std::string CacheDir;     ///< --cache-dir (persistent artifact cache root).
  bool NoDiskCache = false; ///< --no-disk-cache.
  bool List = false;
  bool ListConfigs = false;
  std::string Batch; ///< --batch manifest path.
  bool Serve = false;
  int Jobs = 1;
  bool JobsSet = false;
  long QueueCap = 0;
  /// Governance (single-module flags; serve-mode defaults/caps).
  uint64_t Fuel = 0;
  uint32_t DeadlineMs = 0;
  uint32_t MaxCallDepth = 0;
  uint32_t MaxPages = 0;
  uint32_t MaxTableElems = 0;
};

/// Analyze mode: instead of executing, run the whole-module static
/// analysis and print the report — human-readable by default, the JSON
/// machine artifact with --json. WISP_ANALYZE_JSON=<path> additionally
/// writes the JSON artifact to a file (the WISP_BENCH_JSON idiom). The
/// report is tier-independent: any --tier/--config value yields identical
/// output. Exits 1 when any lint finding fires, 0 on a clean module.
int runAnalyzeMode(const CliOptions &Opt) {
  std::vector<uint8_t> Bytes;
  std::string ResolveErr;
  if (!resolveModuleSpec(Opt.Module, Opt.Scale, Opt.UseM0, &Bytes,
                         &ResolveErr)) {
    fprintf(stderr, "wisp: %s (see --list)\n", ResolveErr.c_str());
    return 1;
  }
  WasmError Err;
  std::unique_ptr<Module> M = decodeModule(std::move(Bytes), &Err);
  if (!M) {
    fprintf(stderr, "wisp: decode failed: %s (offset %zu)\n",
            Err.Message.c_str(), Err.Offset);
    return 1;
  }
  if (!validateModule(*M, &Err)) {
    fprintf(stderr, "wisp: validation failed: %s (offset %zu)\n",
            Err.Message.c_str(), Err.Offset);
    return 1;
  }
  ModuleAnalysis A = analyzeModule(*M);
  std::string Json = analysisReportJson(*M, A, Opt.Module);
  if (Opt.Json)
    fputs(Json.c_str(), stdout);
  else
    fputs(analysisReportText(*M, A, Opt.Module).c_str(), stdout);
  if (const char *Path = getenv("WISP_ANALYZE_JSON")) {
    FILE *F = fopen(Path, "w");
    if (!F) {
      fprintf(stderr, "wisp: cannot write WISP_ANALYZE_JSON file '%s'\n",
              Path);
      return 1;
    }
    fputs(Json.c_str(), F);
    fclose(F);
  }
  return A.clean() ? 0 : 1;
}

/// Audit mode: instead of executing, push every function of the module
/// through all four compiler pipelines and the threaded-IR pre-decoder and
/// statically verify each artifact, printing a per-compiler report.
int runAuditMode(const CliOptions &Opt) {
  std::vector<uint8_t> Bytes;
  std::string ResolveErr;
  if (!resolveModuleSpec(Opt.Module, Opt.Scale, Opt.UseM0, &Bytes,
                         &ResolveErr)) {
    fprintf(stderr, "wisp: %s (see --list)\n", ResolveErr.c_str());
    return 1;
  }
  WasmError Err;
  std::unique_ptr<Module> M = decodeModule(std::move(Bytes), &Err);
  if (!M) {
    fprintf(stderr, "wisp: decode failed: %s (offset %zu)\n",
            Err.Message.c_str(), Err.Offset);
    return 1;
  }
  if (!validateModule(*M, &Err)) {
    fprintf(stderr, "wisp: validation failed: %s (offset %zu)\n",
            Err.Message.c_str(), Err.Offset);
    return 1;
  }
  size_t Bodies = 0;
  for (const FuncDecl &F : M->Funcs)
    if (!F.Imported)
      ++Bodies;

  // Each pipeline is audited under the options its production tier ships
  // with (the Fig. 3/10 registry shapes), so the artifacts checked here
  // are the artifacts `wisp --tier=...` actually runs.
  struct Pipeline {
    const char *Label;
    CompilerKind Kind;
  };
  static const Pipeline Pipelines[] = {
      {"single-pass", CompilerKind::SinglePass},
      {"two-pass", CompilerKind::TwoPass},
      {"copy-and-patch", CompilerKind::CopyPatch},
      {"optimizing", CompilerKind::Optimizing},
  };
  /// One audited pipeline, collected so the text and JSON emitters share
  /// the same pass over the compilers.
  struct PipelineAudit {
    const char *Label;
    size_t Artifacts;
    size_t Findings;
    std::string Text;
  };
  std::vector<PipelineAudit> Audits;
  size_t TotalFindings = 0;
  auto report = [&](const char *Label, size_t Artifacts, size_t NFind,
                    const std::string &Text) {
    Audits.push_back(PipelineAudit{Label, Artifacts, NFind, Text});
    TotalFindings += NFind;
  };
  for (const Pipeline &P : Pipelines) {
    const char *Tier = P.Kind == CompilerKind::SinglePass   ? "spc"
                       : P.Kind == CompilerKind::TwoPass    ? "twopass"
                       : P.Kind == CompilerKind::CopyPatch ? "copypatch"
                                                           : "opt";
    CompilerOptions Opts = configByName(tierToConfigName(Tier)).Opts;
    VerifyScope Scope = P.Kind == CompilerKind::Optimizing
                            ? VerifyScope::optimizing()
                            : VerifyScope::baseline();
    size_t NFind = 0, Artifacts = 0;
    std::string Text;
    for (const FuncDecl &F : M->Funcs) {
      if (F.Imported)
        continue;
      std::unique_ptr<MCode> Code;
      switch (P.Kind) {
      case CompilerKind::SinglePass:
        Code = compileFunction(*M, F, Opts);
        break;
      case CompilerKind::TwoPass:
        Code = compileTwoPass(*M, F, Opts);
        break;
      case CompilerKind::CopyPatch:
        Code = compileCopyPatch(*M, F, Opts);
        break;
      case CompilerKind::Optimizing:
        Code = compileOptimizing(*M, F, Opts);
        break;
      }
      if (!Code) {
        ++NFind;
        Text += "    func " + std::to_string(F.Index) + ": compile failed\n";
        continue;
      }
      ++Artifacts;
      VerifyReport R = verifyMachineCode(*M, F, *Code, Scope);
      if (!R.ok()) {
        NFind += R.Findings.size();
        Text += "    " + R.text();
      }
    }
    report(P.Label, Artifacts, NFind, Text);
  }
  // Threaded IR, with fusion enabled (the shape the threaded interpreter
  // tier pre-decodes at load time; no probes are attached in audit mode).
  {
    size_t NFind = 0, Artifacts = 0;
    std::string Text;
    for (const FuncDecl &F : M->Funcs) {
      if (F.Imported)
        continue;
      std::unique_ptr<ThreadedCode> TC =
          predecodeFunction(*M, F, nullptr, /*EnableFusion=*/true);
      if (!TC) {
        ++NFind;
        Text += "    func " + std::to_string(F.Index) + ": predecode failed\n";
        continue;
      }
      ++Artifacts;
      VerifyReport R = verifyThreadedCode(*M, F, *TC);
      if (!R.ok()) {
        NFind += R.Findings.size();
        Text += "    " + R.text();
      }
    }
    report("threaded-ir", Artifacts, NFind, Text);
  }
  if (Opt.Json) {
    // Machine-readable report, same serializer as `wisp --analyze --json`.
    JsonWriter W;
    W.obj();
    W.str("module", Opt.Module);
    W.num("bodies", uint64_t(Bodies));
    W.keyArr("pipelines");
    for (const PipelineAudit &A : Audits) {
      W.obj();
      W.str("name", A.Label);
      W.num("artifacts", uint64_t(A.Artifacts));
      W.num("findings", uint64_t(A.Findings));
      if (!A.Text.empty())
        W.str("detail", A.Text);
      W.closeObj();
    }
    W.closeArr();
    W.num("total_findings", uint64_t(TotalFindings));
    W.boolean("ok", TotalFindings == 0);
    W.closeObj();
    printf("%s\n", W.str().c_str());
  } else {
    printf("audit: %s, %zu function bod%s\n", Opt.Module.c_str(), Bodies,
           Bodies == 1 ? "y" : "ies");
    for (const PipelineAudit &A : Audits) {
      printf("  %-15s %s: %zu artifact(s), %zu finding(s)\n", A.Label,
             A.Findings ? "FAIL" : "ok", A.Artifacts, A.Findings);
      if (!A.Text.empty())
        printf("%s", A.Text.c_str());
    }
    if (TotalFindings)
      printf("audit: FAILED with %zu finding(s)\n", TotalFindings);
    else
      printf("audit: all artifacts verified\n");
  }
  return TotalFindings ? 1 : 0;
}

/// Batch mode: parse + resolve the manifest, run it across the worker
/// pool, print the deterministic report.
int runBatchMode(const CliOptions &Opt) {
  std::ifstream In(Opt.Batch, std::ios::binary);
  if (!In) {
    fprintf(stderr, "wisp: cannot read manifest '%s'\n", Opt.Batch.c_str());
    return 2;
  }
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  std::vector<BatchJob> Jobs;
  std::string Err;
  if (!parseBatchManifest(Text, &Jobs, &Err) ||
      !resolveBatchModules(&Jobs, &Err)) {
    fprintf(stderr, "wisp: %s: %s\n", Opt.Batch.c_str(), Err.c_str());
    return 2;
  }
  BatchOptions BOpts;
  BOpts.Workers = unsigned(Opt.Jobs);
  BOpts.CompileCache = !Opt.NoCompileCache;
  BOpts.PoolInstances = !Opt.NoInstancePool;
  BOpts.StaticPrecheck = !Opt.NoStaticPrecheck;
  BOpts.CacheDir = Opt.CacheDir;
  BOpts.DiskCache = !Opt.NoDiskCache;
  BatchReport Report = runBatch(Jobs, BOpts);
  printBatchReport(stdout, Jobs, Report, Opt.Stats);
  // Traps are results (reported per job); only infrastructure failures
  // (load/export/argument errors) fail the batch.
  for (const BatchJobResult &R : Report.Results)
    if (!R.Ok)
      return 1;
  return 0;
}

/// Service mode: stdin job lines -> stdout protocol lines until EOF, a
/// `shutdown` line, or SIGTERM/SIGINT; then drain and exit 0. Per-job
/// errors are protocol lines, not process failures — a clean drain is a
/// clean exit.
int runServeMode(const CliOptions &Opt) {
  ServeOptions SOpts;
  SOpts.Workers = unsigned(Opt.Jobs);
  SOpts.QueueCap = size_t(Opt.QueueCap);
  SOpts.DefaultFuel = Opt.Fuel;
  SOpts.DefaultDeadlineMs = Opt.DeadlineMs;
  SOpts.MaxCallDepth = Opt.MaxCallDepth;
  SOpts.MaxMemoryPages = Opt.MaxPages;
  SOpts.MaxTableElems = Opt.MaxTableElems;
  SOpts.StaticPrecheck = !Opt.NoStaticPrecheck;
  SOpts.InstallSignalHandlers = true;
  SOpts.CacheDir = Opt.CacheDir;
  SOpts.DiskCache = !Opt.NoDiskCache;
  if (const char *S = getenv("WISP_FAULT_SEED")) {
    uint64_t Seed = 0;
    if (!parseU64(S, &Seed, 0)) {
      fprintf(stderr, "wisp: bad WISP_FAULT_SEED '%s' (want an integer)\n",
              S);
      return 2;
    }
    SOpts.FaultSeed = Seed;
  }
  runServe(stdin, stdout, SOpts);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  CliOptions Opt;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Val = [&](const char *Prefix) -> const char * {
      size_t N = strlen(Prefix);
      return A.compare(0, N, Prefix) == 0 ? A.c_str() + N : nullptr;
    };
    if (const char *V = Val("--tier=")) {
      Opt.Tier = V;
      Opt.TierSet = true;
    } else if (const char *V = Val("--config=")) {
      Opt.Config = V;
    } else if (const char *V = Val("--invoke=")) {
      Opt.Invoke = V;
      Opt.InvokeSet = true;
    } else if (const char *V = Val("--scale=")) {
      // Strict parse: atoi would accept "3x" as 3 and silently clamp
      // overflow; any junk, sign, or out-of-range value is a usage error.
      uint64_t Scale = 0;
      Opt.ScaleSet = true;
      if (!parseU64InRange(V, 1, 1u << 20, &Scale))
        return usageError("bad --scale value: %s\n", V);
      Opt.Scale = int(Scale);
    } else if (const char *V = Val("--batch=")) {
      Opt.Batch = V;
    } else if (A == "--serve") {
      Opt.Serve = true;
    } else if (const char *V = Val("--queue-cap=")) {
      char *End = nullptr;
      long Cap = strtol(V, &End, 10);
      if (End == V || *End || Cap < 1 || Cap > 1 << 20)
        return usageError("bad --queue-cap value: %s (want 1..1048576)\n", V);
      Opt.QueueCap = Cap;
    } else if (const char *V = Val("--fuel=")) {
      uint64_t Fuel = 0;
      if (!parseU64(V, &Fuel) || Fuel == 0)
        return usageError("bad --fuel value: %s (want a positive budget)\n",
                          V);
      Opt.Fuel = Fuel;
    } else if (const char *V = Val("--deadline-ms=")) {
      char *End = nullptr;
      long Ms = strtol(V, &End, 10);
      if (End == V || *End || Ms < 1 || Ms > 3600000)
        return usageError("bad --deadline-ms value: %s (want 1..3600000)\n",
                          V);
      Opt.DeadlineMs = uint32_t(Ms);
    } else if (const char *V = Val("--max-call-depth=")) {
      char *End = nullptr;
      long N = strtol(V, &End, 10);
      if (End == V || *End || N < 1 || N > 1000000)
        return usageError("bad --max-call-depth value: %s (want "
                          "1..1000000)\n",
                          V);
      Opt.MaxCallDepth = uint32_t(N);
    } else if (const char *V = Val("--max-pages=")) {
      char *End = nullptr;
      long N = strtol(V, &End, 10);
      if (End == V || *End || N < 1 || N > 65536)
        return usageError("bad --max-pages value: %s (want 1..65536)\n", V);
      Opt.MaxPages = uint32_t(N);
    } else if (const char *V = Val("--max-table-elems=")) {
      char *End = nullptr;
      long N = strtol(V, &End, 10);
      if (End == V || *End || N < 1)
        return usageError("bad --max-table-elems value: %s (want >= 1)\n",
                          V);
      Opt.MaxTableElems = uint32_t(N);
    } else if (const char *V = Val("--jobs=")) {
      char *End = nullptr;
      long Jobs = strtol(V, &End, 10);
      Opt.JobsSet = true;
      if (End == V || *End || Jobs < 1 || Jobs > 1024)
        return usageError("bad --jobs value: %s (want 1..1024)\n", V);
      Opt.Jobs = int(Jobs);
    } else if (const char *V = Val("--monitor=")) {
      Opt.Monitors.push_back(V);
    } else if (A == "--m0") {
      Opt.UseM0 = true;
    } else if (A == "--stats") {
      Opt.Stats = true;
    } else if (A == "--time") {
      Opt.Time = true;
    } else if (A == "--verify") {
      Opt.Verify = true;
    } else if (A == "--audit") {
      Opt.Audit = true;
    } else if (A == "--analyze") {
      Opt.Analyze = true;
    } else if (A == "--json") {
      Opt.Json = true;
    } else if (A == "--no-static-precheck") {
      Opt.NoStaticPrecheck = true;
    } else if (A == "--no-compile-cache") {
      Opt.NoCompileCache = true;
    } else if (const char *V = Val("--cache-dir=")) {
      if (!*V)
        return usageError("bad --cache-dir value: %s (want a directory)\n",
                          V);
      Opt.CacheDir = V;
    } else if (A == "--no-disk-cache") {
      Opt.NoDiskCache = true;
    } else if (A == "--no-instance-pool") {
      Opt.NoInstancePool = true;
    } else if (A == "--list") {
      Opt.List = true; // Handled after parsing so --scale is order-free.
    } else if (A == "--list-configs") {
      Opt.ListConfigs = true;
    } else if (A == "--help" || A == "-h") {
      printf("%s", UsageText);
      return 0;
    } else if (A.size() > 1 && A[0] == '-' && !isdigit(A[1]) &&
               Opt.Module.empty()) {
      return usageError("unknown option: %s\n", A.c_str());
    } else if (Opt.Module.empty()) {
      Opt.Module = A;
    } else {
      Opt.RawArgs.push_back(A);
    }
  }
  if (Opt.List)
    return listSuites(Opt.Scale);
  if (Opt.ListConfigs)
    return listConfigs();

  // Batch mode: per-job tier/config/invoke/scale live in the manifest, so
  // every single-module flag conflicts with --batch.
  if (!Opt.Batch.empty()) {
    const char *Conflict = Opt.TierSet         ? "--tier"
                           : !Opt.Config.empty() ? "--config"
                           : Opt.InvokeSet       ? "--invoke"
                           : Opt.ScaleSet        ? "--scale"
                           : Opt.UseM0           ? "--m0"
                           : !Opt.Monitors.empty() ? "--monitor"
                           : Opt.Time              ? "--time"
                           : Opt.Verify            ? "--verify"
                           : Opt.Audit             ? "--audit"
                           : Opt.Analyze           ? "--analyze"
                           : Opt.Json              ? "--json"
                           : Opt.Serve             ? "--serve"
                           : Opt.Fuel              ? "--fuel"
                           : Opt.DeadlineMs        ? "--deadline-ms"
                           : Opt.MaxCallDepth      ? "--max-call-depth"
                           : Opt.MaxPages          ? "--max-pages"
                           : Opt.MaxTableElems     ? "--max-table-elems"
                           : Opt.QueueCap          ? "--queue-cap"
                           : !Opt.Module.empty()   ? "<module>"
                                                   : nullptr;
    if (Conflict)
      return usageError("--batch is mutually exclusive with single-module "
                        "flags (got %s; put per-job settings in the "
                        "manifest)\n",
                        Conflict);
    return runBatchMode(Opt);
  }
  // Serve mode: per-job settings arrive on the job lines; governance
  // flags become session defaults/caps, everything single-module
  // conflicts.
  if (Opt.Serve) {
    const char *Conflict = Opt.TierSet         ? "--tier"
                           : !Opt.Config.empty() ? "--config"
                           : Opt.InvokeSet       ? "--invoke"
                           : Opt.ScaleSet        ? "--scale"
                           : Opt.UseM0           ? "--m0"
                           : !Opt.Monitors.empty() ? "--monitor"
                           : Opt.Time              ? "--time"
                           : Opt.Verify            ? "--verify"
                           : Opt.Audit             ? "--audit"
                           : Opt.Analyze           ? "--analyze"
                           : Opt.Json              ? "--json"
                           : Opt.Stats             ? "--stats"
                           : !Opt.Module.empty()   ? "<module>"
                                                   : nullptr;
    if (Conflict)
      return usageError("--serve is mutually exclusive with single-module "
                        "flags (got %s; put per-job settings on the job "
                        "lines)\n",
                        Conflict);
    return runServeMode(Opt);
  }
  if (Opt.JobsSet)
    return usageError("%s", "--jobs requires --batch or --serve\n");
  if (Opt.QueueCap)
    return usageError("%s", "--queue-cap requires --serve\n");
  if (Opt.NoStaticPrecheck)
    return usageError("%s", "--no-static-precheck requires --batch or "
                            "--serve\n");
  if (Opt.Module.empty())
    return usageError("%s", "no module given\n");

  // Analyze mode replaces execution entirely: the report is derived from
  // the validated module alone, so execution flags conflict. --tier and
  // --config stay accepted (and ignored) because the analysis is
  // tier-independent by construction — identical output for every tier.
  if (Opt.Analyze) {
    const char *Conflict = Opt.Audit               ? "--audit"
                           : Opt.InvokeSet          ? "--invoke"
                           : !Opt.Monitors.empty()  ? "--monitor"
                           : Opt.Verify             ? "--verify"
                           : Opt.Time               ? "--time"
                           : Opt.Stats              ? "--stats"
                           : Opt.Fuel               ? "--fuel"
                           : Opt.DeadlineMs         ? "--deadline-ms"
                           : Opt.MaxCallDepth       ? "--max-call-depth"
                           : Opt.MaxPages           ? "--max-pages"
                           : Opt.MaxTableElems      ? "--max-table-elems"
                                                    : nullptr;
    if (Conflict)
      return usageError("--analyze is mutually exclusive with execution "
                        "flags (got %s; analysis never runs the module)\n",
                        Conflict);
    return runAnalyzeMode(Opt);
  }
  if (Opt.Json && !Opt.Audit)
    return usageError("%s", "--json requires --analyze or --audit\n");

  // Audit mode replaces execution: it runs all pipelines itself, so every
  // tier/execution flag conflicts with it (verification is implied).
  if (Opt.Audit) {
    const char *Conflict = Opt.TierSet            ? "--tier"
                           : !Opt.Config.empty()    ? "--config"
                           : Opt.InvokeSet          ? "--invoke"
                           : !Opt.Monitors.empty()  ? "--monitor"
                           : Opt.Verify             ? "--verify"
                           : Opt.Time               ? "--time"
                           : Opt.Fuel               ? "--fuel"
                           : Opt.DeadlineMs         ? "--deadline-ms"
                                                    : nullptr;
    if (Conflict)
      return usageError("--audit is mutually exclusive with execution "
                        "flags (got %s; audit runs every pipeline itself)\n",
                        Conflict);
    return runAuditMode(Opt);
  }

  // Resolve the engine configuration.
  if (Opt.TierSet && !Opt.Config.empty())
    return usageError("--tier and --config are mutually exclusive "
                      "(both given: --tier=%s)\n",
                      Opt.Tier.c_str());
  EngineConfig Cfg;
  if (!Opt.Config.empty()) {
    // configByName falls back to a default config on a miss; validate the
    // name so a typo'd --config errors instead of silently running it.
    bool Known = false;
    for (const EngineConfig &C : figure10Registry())
      Known = Known || C.Name == Opt.Config;
    if (!Known)
      return usageError("unknown config: %s (see --list-configs)\n",
                        Opt.Config.c_str());
    Cfg = configByName(Opt.Config);
  } else {
    const char *Name = tierToConfigName(Opt.Tier);
    if (!Name)
      return usageError("unknown tier: %s (want int|threaded|spc|copypatch|"
                        "twopass|opt)\n",
                        Opt.Tier.c_str());
    Cfg = configByName(Name);
  }
  Cfg.UseCompileCache = !Opt.NoCompileCache;
  Cfg.PoolInstances = !Opt.NoInstancePool;
  Cfg.DiskCacheDir = Opt.CacheDir;
  Cfg.UseDiskCache = !Opt.NoDiskCache;
  if (Opt.Verify)
    Cfg.VerifyArtifacts = true;
  // Execution governance: metering/deadline/caps for this one invocation
  // (the engine bakes fuel check sites in when any of these is set).
  Cfg.FuelBudget = Opt.Fuel;
  Cfg.DeadlineMs = Opt.DeadlineMs;
  Cfg.MaxCallDepth = Opt.MaxCallDepth;
  Cfg.MaxMemoryPages = Opt.MaxPages;
  Cfg.MaxTableElems = Opt.MaxTableElems;

  // Resolve the module bytes.
  std::vector<uint8_t> Bytes;
  std::string ResolveErr;
  if (!resolveModuleSpec(Opt.Module, Opt.Scale, Opt.UseM0, &Bytes,
                         &ResolveErr)) {
    fprintf(stderr, "wisp: %s (see --list)\n", ResolveErr.c_str());
    return 1;
  }

  // Load: decode, validate, instantiate, compile per mode.
  Engine E(Cfg);
  installGcHostFuncs(E);
  WasmError Err;
  double T0 = nowMs();
  std::unique_ptr<LoadedModule> LM = E.load(std::move(Bytes), &Err);
  double T1 = nowMs();
  if (!LM) {
    fprintf(stderr, "wisp: load failed: %s (offset %zu)\n",
            Err.Message.c_str(), Err.Offset);
    return 1;
  }

  // Attach monitors, then recompile so JIT tiers observe the probe sites.
  BranchMonitor Branches;
  CoverageMonitor Coverage;
  std::vector<std::unique_ptr<OpcodeCountMonitor>> Counters;
  std::vector<std::string> CounterNames;
  for (const std::string &M : Opt.Monitors) {
    if (M == "branches") {
      Branches.attach(*LM->Inst, E.probes());
    } else if (M == "coverage") {
      Coverage.attach(*LM->Inst, E.probes());
    } else if (M.compare(0, 6, "count:") == 0) {
      std::string OpText = M.substr(6);
      Opcode Op;
      if (!opcodeByName(OpText, &Op)) {
        fprintf(stderr, "wisp: unknown opcode mnemonic '%s'\n",
                OpText.c_str());
        return 1;
      }
      Counters.push_back(std::make_unique<OpcodeCountMonitor>());
      Counters.back()->attach(*LM->Inst, E.probes(), Op);
      CounterNames.push_back(OpText);
    } else {
      return usageError("unknown monitor: %s (want branches|coverage|"
                        "count:<opcode>)\n",
                        M.c_str());
    }
  }
  if (!Opt.Monitors.empty())
    E.reinstrument(*LM);

  // Parse call arguments against the export's signature.
  FuncInstance *F = LM->Inst->findExportedFunc(Opt.Invoke);
  if (!F) {
    fprintf(stderr, "wisp: no exported function '%s'\n", Opt.Invoke.c_str());
    return 1;
  }
  const std::vector<ValType> &Params = F->Type->Params;
  if (Opt.RawArgs.size() != Params.size()) {
    fprintf(stderr, "wisp: '%s' takes %zu argument(s), got %zu\n",
            Opt.Invoke.c_str(), Params.size(), Opt.RawArgs.size());
    return 1;
  }
  std::vector<Value> Args;
  for (size_t I = 0; I < Params.size(); ++I) {
    Value V;
    if (!parseValueText(Opt.RawArgs[I], Params[I], &V)) {
      fprintf(stderr, "wisp: cannot parse argument %zu '%s' as %s\n", I + 1,
              Opt.RawArgs[I].c_str(), valTypeName(Params[I]));
      return 1;
    }
    Args.push_back(V);
  }

  // Invoke.
  std::vector<Value> Results;
  double T2 = nowMs();
  TrapReason Trap = E.invoke(*LM, Opt.Invoke, Args, &Results);
  double T3 = nowMs();
  if (Trap != TrapReason::None) {
    fprintf(stderr, "wisp: trap: %s\n", trapReasonName(Trap));
    return 3;
  }

  printf("%s(", Opt.Invoke.c_str());
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      printf(", ");
    printValue(Args[I]);
  }
  printf(") = ");
  if (Results.empty())
    printf("<void>");
  for (size_t I = 0; I < Results.size(); ++I) {
    if (I)
      printf(", ");
    printValue(Results[I]);
  }
  printf("\n");

  if (Opt.Time) {
    printf("time: setup %.3f ms (load %.3f), main %.3f ms\n",
           T1 - T0, double(LM->Stats.TotalSetupNs) / 1e6, T3 - T2);
  }
  if (Opt.Stats) {
    const LoadStats &S = LM->Stats;
    printf("stats: config=%s module=%zu bytes, code=%zu bytes\n",
           Cfg.Name.c_str(), S.ModuleBytes, S.CodeBytes);
    printf("  decode %.1f us, validate %.1f us, compile %.1f us, "
           "instantiate %.1f us\n",
           double(S.DecodeNs) / 1e3, double(S.ValidateNs) / 1e3,
           double(S.CompileNs) / 1e3, double(S.InstantiateNs) / 1e3);
    printf("  emitted %llu machine insts, %llu tag stores, %llu stackmap "
           "bytes\n",
           (unsigned long long)S.CodeInsts, (unsigned long long)S.TagStores,
           (unsigned long long)S.StackMapBytes);
    if (S.PredecodeNs || S.IrBytes)
      printf("  predecode %.1f us, %zu threaded-IR bytes\n",
             double(S.PredecodeNs) / 1e3, S.IrBytes);
    if (Opt.NoCompileCache)
      printf("  compile cache: disabled\n");
    else
      printf("  compile cache: %llu hits, %llu misses, saved %.1f us\n",
             (unsigned long long)S.CacheHits,
             (unsigned long long)S.CacheMisses,
             double(S.CacheSavedNs) / 1e3);
    if (const DiskCache *D = E.disk())
      printf("  disk cache: %llu hits, %llu misses (%s)\n",
             (unsigned long long)S.DiskHits,
             (unsigned long long)S.DiskMisses, D->dir().c_str());
    if (Opt.NoInstancePool)
      printf("  instance pool: disabled\n");
    else
      printf("  instance pool: %llu hits, %llu misses\n",
             (unsigned long long)S.PoolHits,
             (unsigned long long)S.PoolMisses);
    Thread &T = E.thread();
    printf("  executed %llu interp steps, %llu threaded steps, %llu jit "
           "cycles, %llu modeled cycles\n",
           (unsigned long long)T.InterpSteps,
           (unsigned long long)T.ThreadedSteps,
           (unsigned long long)T.JitCycles,
           (unsigned long long)T.modeledCycles());
  }

  // Monitor reports.
  for (const std::string &M : Opt.Monitors) {
    if (M == "branches")
      printf("branches: %llu taken, %llu not taken over %zu sites\n",
             (unsigned long long)Branches.totalTaken(),
             (unsigned long long)Branches.totalNotTaken(),
             Branches.sites().size());
    else if (M == "coverage")
      printf("coverage: %u of %zu functions executed\n",
             Coverage.functionsExecuted(), LM->Inst->Funcs.size());
  }
  for (size_t I = 0; I < Counters.size(); ++I)
    printf("count %s: %llu\n", CounterNames[I].c_str(),
           (unsigned long long)Counters[I]->total());
  return 0;
}
