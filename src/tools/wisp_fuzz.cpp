//===- tools/wisp_fuzz.cpp - differential fuzzing driver -------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Standalone differential fuzzer: generates random modules, runs every
// export through all six execution tiers, and reports any divergence in
// results, traps, linear memory or global state. Divergent modules are
// minimized with the greedy shrinker and dumped as both .wasm bytes and a
// readable listing.
//
//   wisp-fuzz --seed-start=0 --seed-count=1000
//   wisp-fuzz --profile=memory --max-seconds=300 --out-dir=divergences
//   wisp-fuzz --replay=tests/corpus
//
//===----------------------------------------------------------------------===//

#include "fuzz/differ.h"
#include "fuzz/randwasm.h"
#include "fuzz/shrink.h"
#include "wasm/reader.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace wisp;

namespace {

const char *UsageText =
    "usage: wisp-fuzz [options]\n"
    "\n"
    "Differential fuzzing: every generated module runs on all eight\n"
    "execution tiers (int, threaded, spc, copypatch, twopass, opt, plus\n"
    "the tiered/OSR configs tiered and tiered-threaded) and two\n"
    "instrumented interpreter configurations (int+mon, threaded+mon:\n"
    "branch/coverage monitors attached, state compared across dispatch\n"
    "strategies); any mismatch in results, traps, trap sites (the faulting\n"
    "bytecode offset), memory, globals or monitor state is a divergence.\n"
    "Static artifact verification runs on every tier, so a compiled body\n"
    "that fails translation validation is itself a first-class finding\n"
    "(signature \"verifier rejection (<tier>): ...\") even when execution\n"
    "would have agreed. Divergent modules are minimized and dumped as\n"
    ".wasm plus a readable listing.\n"
    "\n"
    "options:\n"
    "  --seed-start=N    first seed (default 0)\n"
    "  --seed-count=N    number of seeds to run (default 100)\n"
    "  --profile=NAME    generation profile:\n"
    "                    default|control|memory|exits|mixed\n"
    "                    (mixed rotates per seed; default \"mixed\")\n"
    "  --max-seconds=N   stop the campaign after N seconds (0 = no limit)\n"
    "  --out-dir=DIR     where minimized reproducers are written (default .)\n"
    "  --no-shrink       report divergences without minimizing\n"
    "  --shrink-budget=N max oracle runs per shrink (default 20000)\n"
    "  --replay=PATH     replay mode: run every .wasm under PATH (or PATH\n"
    "                    itself) through all six tiers with fixed argument\n"
    "                    tuples and assert agreement\n"
    "  --help            show this help\n"
    "\n"
    "exit status: 0 = no divergence, 1 = divergence found, 2 = usage error\n";

int usageError(const char *Fmt, const char *Arg) {
  fprintf(stderr, Fmt, Arg);
  fprintf(stderr, "\n%s", UsageText);
  return 2;
}

double nowSeconds() {
  return double(std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) /
         1e3;
}

bool parseU64(const char *Text, uint64_t *Out) {
  if (!*Text)
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = strtoull(Text, &End, 0);
  if (*End || errno == ERANGE)
    return false;
  *Out = V;
  return true;
}


bool writeFile(const std::string &Path, const void *Data, size_t Size) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out.write(reinterpret_cast<const char *>(Data), std::streamsize(Size));
  return bool(Out);
}

struct FuzzOptions {
  uint64_t SeedStart = 0;
  uint64_t SeedCount = 100;
  std::string Profile = "mixed";
  uint64_t MaxSeconds = 0;
  std::string OutDir = ".";
  bool Shrink = true;
  uint64_t ShrinkBudget = 20000;
  std::string Replay;
};

FuzzProfile profileForSeed(const FuzzOptions &Opt, uint64_t Seed) {
  FuzzProfile P;
  if (Opt.Profile == "mixed") {
    static const char *Rotation[] = {"default", "control", "memory", "exits"};
    fuzzProfileByName(Rotation[Seed % 4], &P);
    return P;
  }
  fuzzProfileByName(Opt.Profile, &P);
  return P;
}

/// Writes the minimized reproducer pair and returns the .wasm path.
std::string dumpReproducer(const FuzzOptions &Opt, const std::string &Stem,
                           const FuzzModule &M, const DiffReport &Report,
                           const std::vector<Value> &Args) {
  std::error_code Ec;
  std::filesystem::create_directories(Opt.OutDir, Ec);
  std::string WasmPath = Opt.OutDir + "/" + Stem + ".wasm";
  // Bake the campaign arguments in as a zero-arg "repro" export so the
  // reproducer keeps diverging when replayed with generic argument tuples.
  std::vector<uint8_t> Bytes = M.toBytes(&Args);
  if (!writeFile(WasmPath, Bytes.data(), Bytes.size()))
    fprintf(stderr, "wisp-fuzz: cannot write %s\n", WasmPath.c_str());

  std::string Text = "divergence: " + Report.Detail + "\nargs:";
  for (const Value &V : Args)
    Text += " " + V.toString();
  Text += "\n\n" + M.listing();
  std::string TxtPath = Opt.OutDir + "/" + Stem + ".txt";
  if (!writeFile(TxtPath, Text.data(), Text.size()))
    fprintf(stderr, "wisp-fuzz: cannot write %s\n", TxtPath.c_str());
  return WasmPath;
}

int runCampaign(const FuzzOptions &Opt) {
  double T0 = nowSeconds();
  uint64_t Ran = 0;
  unsigned Divergences = 0;
  for (uint64_t I = 0; I < Opt.SeedCount; ++I) {
    if (Opt.MaxSeconds && nowSeconds() - T0 > double(Opt.MaxSeconds)) {
      printf("wisp-fuzz: time budget (%llu s) reached after %llu seeds\n",
             (unsigned long long)Opt.MaxSeconds, (unsigned long long)Ran);
      break;
    }
    uint64_t Seed = Opt.SeedStart + I;
    FuzzProfile P = profileForSeed(Opt, Seed);
    RandWasm Gen(Seed, P);
    FuzzModule M = Gen.build();
    std::vector<Value> Args = argsForSeed(Seed, M.main().Params);
    DiffReport Report = runAllTiers(M.toBytes(), "f", Args);
    ++Ran;
    if (!Report.Diverged)
      continue;

    ++Divergences;
    printf("wisp-fuzz: DIVERGENCE seed=%llu profile=%s\n  %s\n",
           (unsigned long long)Seed, P.Name, Report.Detail.c_str());
    FuzzModule Min = M;
    if (Opt.Shrink) {
      FuzzOracle Oracle = [&Args](const FuzzModule &Cand) {
        return runAllTiers(Cand.toBytes(), "f", Args).Diverged;
      };
      ShrinkStats Stats;
      Min = shrinkModule(M, Oracle, &Stats, Opt.ShrinkBudget);
      printf("  shrink: %zu -> %zu bytes (%zu -> %zu nodes, %zu/%zu edits "
             "kept)\n",
             Stats.BytesBefore, Stats.BytesAfter, Stats.NodesBefore,
             Stats.NodesAfter, Stats.Accepted, Stats.Attempts);
    }
    DiffReport MinReport = runAllTiers(Min.toBytes(), "f", Args);
    std::string Stem = "div-" + std::string(P.Name) + "-seed" +
                       std::to_string(Seed);
    std::string Path = dumpReproducer(
        Opt, Stem, Min, MinReport.Diverged ? MinReport : Report, Args);
    printf("  reproducer: %s (+ listing .txt)\n", Path.c_str());
  }
  double Elapsed = nowSeconds() - T0;
  printf("wisp-fuzz: %llu seeds, %u divergence(s), %.1f s (%.1f seeds/s)\n",
         (unsigned long long)Ran, Divergences, Elapsed,
         Elapsed > 0 ? double(Ran) / Elapsed : 0.0);
  return Divergences ? 1 : 0;
}

int replayOne(const std::string &Path, unsigned *Divergences) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    fprintf(stderr, "wisp-fuzz: cannot read %s\n", Path.c_str());
    return 2;
  }
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  WasmError Err;
  std::unique_ptr<Module> M = decodeModule(Bytes, &Err);
  if (!M) {
    fprintf(stderr, "wisp-fuzz: %s: decode failed: %s\n", Path.c_str(),
            Err.Message.c_str());
    ++*Divergences;
    return 0;
  }
  unsigned Exports = 0;
  for (const Export &E : M->Exports) {
    if (E.Kind != ExternKind::Func)
      continue;
    ++Exports;
    const FuncType &Type = M->funcType(E.Index);
    for (const std::vector<Value> &Args : replayArgTuples(Type.Params)) {
      DiffReport Report = runAllTiers(Bytes, E.Name, Args);
      if (!Report.Diverged)
        continue;
      ++*Divergences;
      std::string ArgText;
      for (const Value &V : Args)
        ArgText += " " + V.toString();
      printf("wisp-fuzz: DIVERGENCE %s export=%s args=%s\n  %s\n",
             Path.c_str(), E.Name.c_str(), ArgText.c_str(),
             Report.Detail.c_str());
    }
  }
  if (!Exports)
    fprintf(stderr, "wisp-fuzz: warning: %s exports no functions\n",
            Path.c_str());
  return 0;
}

int runReplay(const FuzzOptions &Opt) {
  std::vector<std::string> Files;
  std::error_code Ec;
  if (std::filesystem::is_directory(Opt.Replay, Ec)) {
    for (const auto &Entry :
         std::filesystem::directory_iterator(Opt.Replay, Ec))
      if (Entry.path().extension() == ".wasm")
        Files.push_back(Entry.path().string());
    std::sort(Files.begin(), Files.end());
  } else {
    Files.push_back(Opt.Replay);
  }
  if (Files.empty()) {
    fprintf(stderr, "wisp-fuzz: no .wasm files under %s\n",
            Opt.Replay.c_str());
    return 2;
  }
  unsigned Divergences = 0;
  for (const std::string &Path : Files) {
    int Rc = replayOne(Path, &Divergences);
    if (Rc)
      return Rc;
  }
  printf("wisp-fuzz: replayed %zu module(s), %u divergence(s)\n",
         Files.size(), Divergences);
  return Divergences ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  FuzzOptions Opt;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Val = [&](const char *Prefix) -> const char * {
      size_t N = strlen(Prefix);
      return A.compare(0, N, Prefix) == 0 ? A.c_str() + N : nullptr;
    };
    if (const char *V = Val("--seed-start=")) {
      if (!parseU64(V, &Opt.SeedStart))
        return usageError("bad --seed-start value: %s\n", V);
    } else if (const char *V = Val("--seed-count=")) {
      if (!parseU64(V, &Opt.SeedCount))
        return usageError("bad --seed-count value: %s\n", V);
    } else if (const char *V = Val("--profile=")) {
      FuzzProfile P;
      if (std::string(V) != "mixed" && !fuzzProfileByName(V, &P))
        return usageError("unknown profile: %s (want default|control|memory|"
                          "exits|mixed)\n",
                          V);
      Opt.Profile = V;
    } else if (const char *V = Val("--max-seconds=")) {
      if (!parseU64(V, &Opt.MaxSeconds))
        return usageError("bad --max-seconds value: %s\n", V);
    } else if (const char *V = Val("--out-dir=")) {
      Opt.OutDir = V;
    } else if (A == "--no-shrink") {
      Opt.Shrink = false;
    } else if (const char *V = Val("--shrink-budget=")) {
      if (!parseU64(V, &Opt.ShrinkBudget) || !Opt.ShrinkBudget)
        return usageError("bad --shrink-budget value: %s\n", V);
    } else if (const char *V = Val("--replay=")) {
      Opt.Replay = V;
    } else if (A == "--help" || A == "-h") {
      printf("%s", UsageText);
      return 0;
    } else {
      return usageError("unknown option: %s\n", A.c_str());
    }
  }
  if (!Opt.Replay.empty())
    return runReplay(Opt);
  return runCampaign(Opt);
}
