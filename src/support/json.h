//===- support/json.h - minimal JSON writer ---------------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small append-only JSON serializer shared by the machine-readable
/// report surfaces (`wisp --analyze`, `wisp --audit --json`). Callers are
/// responsible for structural balance (every obj() gets a close()); the
/// writer handles quoting, escaping and comma placement.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_SUPPORT_JSON_H
#define WISP_SUPPORT_JSON_H

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace wisp {

class JsonWriter {
public:
  std::string take() { return std::move(Out); }
  const std::string &str() const { return Out; }

  void obj() {
    comma();
    Out += '{';
    First.push_back(true);
  }
  void arr() {
    comma();
    Out += '[';
    First.push_back(true);
  }
  void closeObj() {
    Out += '}';
    First.pop_back();
  }
  void closeArr() {
    Out += ']';
    First.pop_back();
  }

  void key(const char *K) {
    comma();
    quote(K);
    Out += ':';
    Pending = true;
  }
  void keyObj(const char *K) {
    key(K);
    Out += '{';
    First.push_back(true);
    Pending = false;
  }
  void keyArr(const char *K) {
    key(K);
    Out += '[';
    First.push_back(true);
    Pending = false;
  }

  void str(const char *K, const std::string &V) {
    key(K);
    value(V);
  }
  void num(const char *K, uint64_t V) {
    key(K);
    char Buf[24];
    snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
    Out += Buf;
    Pending = false;
  }
  void num(const char *K, int64_t V) {
    key(K);
    char Buf[24];
    snprintf(Buf, sizeof(Buf), "%" PRId64, V);
    Out += Buf;
    Pending = false;
  }
  void num(const char *K, uint32_t V) { num(K, uint64_t(V)); }
  void num(const char *K, double V) {
    key(K);
    char Buf[32];
    snprintf(Buf, sizeof(Buf), "%.6g", V);
    Out += Buf;
    Pending = false;
  }
  void boolean(const char *K, bool V) {
    key(K);
    Out += V ? "true" : "false";
    Pending = false;
  }

  /// Array-element values (no key).
  void value(const std::string &V) {
    if (!Pending)
      comma();
    quote(V.c_str());
    Pending = false;
  }
  void value(uint64_t V) {
    if (!Pending)
      comma();
    char Buf[24];
    snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
    Out += Buf;
    Pending = false;
  }

private:
  void comma() {
    if (Pending) {
      Pending = false;
      return;
    }
    if (!First.empty()) {
      if (!First.back())
        Out += ',';
      First.back() = false;
    }
  }
  void quote(const char *S) {
    Out += '"';
    for (const char *P = S; *P; ++P) {
      unsigned char C = (unsigned char)*P;
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\t':
        Out += "\\t";
        break;
      case '\r':
        Out += "\\r";
        break;
      default:
        if (C < 0x20) {
          char Buf[8];
          snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += char(C);
        }
      }
    }
    Out += '"';
  }

  std::string Out;
  std::vector<bool> First;
  bool Pending = false;
};

} // namespace wisp

#endif // WISP_SUPPORT_JSON_H
