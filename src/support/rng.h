//===- support/rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic RNG used by workload generators and
/// property tests. Deterministic across platforms so generated Wasm modules
/// and random programs are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_SUPPORT_RNG_H
#define WISP_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace wisp {

/// Deterministic 64-bit RNG (SplitMix64).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit pseudo-random value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    return next() % Bound;
  }

  /// Returns a value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "invalid range");
    return Lo + int64_t(below(uint64_t(Hi - Lo) + 1));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t State;
};

} // namespace wisp

#endif // WISP_SUPPORT_RNG_H
