//===- support/format.h - printf-style std::string formatting --*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small printf-style formatting helper returning std::string. Used for
/// error messages, listings and benchmark tables.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_SUPPORT_FORMAT_H
#define WISP_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>

namespace wisp {

/// Formats like printf into a std::string.
std::string strFormat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list variant of strFormat.
std::string strFormatV(const char *Fmt, va_list Args);

} // namespace wisp

#endif // WISP_SUPPORT_FORMAT_H
