//===- support/parse.h - strict numeric parsing -----------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One strict unsigned parser for every numeric flag, manifest key and
/// environment variable. strtoull alone is a trap for operator-facing
/// input: it skips leading whitespace, accepts a leading '-' by wrapping
/// the value modulo 2^64, ignores trailing junk unless the caller checks,
/// and reports overflow only through errno. parseU64 rejects all of that
/// uniformly so "-1", " 5", "10x" and 2^64 never silently become limits.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_SUPPORT_PARSE_H
#define WISP_SUPPORT_PARSE_H

#include <cerrno>
#include <cstdint>
#include <cstdlib>

namespace wisp {

/// Parses all of \p S as an unsigned 64-bit integer. Returns false —
/// leaving \p Out untouched — on null/empty input, leading whitespace or
/// sign characters, any trailing junk, or overflow. \p Base as strtoull
/// (10 for decimal flags; 0 honors 0x/0 prefixes for value text).
inline bool parseU64(const char *S, uint64_t *Out, int Base = 10) {
  if (!S || !*S)
    return false;
  // strtoull itself would skip whitespace and wrap a '-' modulo 2^64.
  if (S[0] == ' ' || S[0] == '\t' || S[0] == '\n' || S[0] == '\r' ||
      S[0] == '-' || S[0] == '+')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = strtoull(S, &End, Base);
  if (errno == ERANGE || End == S || *End)
    return false;
  *Out = V;
  return true;
}

/// Bounded variant: additionally rejects values outside [Min, Max].
inline bool parseU64InRange(const char *S, uint64_t Min, uint64_t Max,
                            uint64_t *Out, int Base = 10) {
  uint64_t V = 0;
  if (!parseU64(S, &V, Base) || V < Min || V > Max)
    return false;
  *Out = V;
  return true;
}

} // namespace wisp

#endif // WISP_SUPPORT_PARSE_H
