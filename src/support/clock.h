//===- support/clock.h - monotonic wall-clock helpers -----------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one steady-clock reading used for every wall-time measurement
/// (engine load stats, CLI --time, batch summaries, benchmarks), so a
/// future clock-source change happens in exactly one place.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_SUPPORT_CLOCK_H
#define WISP_SUPPORT_CLOCK_H

#include <chrono>
#include <cstdint>

namespace wisp {

/// Monotonic nanoseconds since an arbitrary epoch.
inline uint64_t nowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/// Monotonic milliseconds (fractional) since an arbitrary epoch.
inline double nowMs() { return double(nowNs()) / 1e6; }

} // namespace wisp

#endif // WISP_SUPPORT_CLOCK_H
