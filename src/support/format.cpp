//===- support/format.cpp - printf-style std::string formatting ----------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/format.h"

#include <cstdio>

using namespace wisp;

std::string wisp::strFormatV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::string Result(size_t(Needed), '\0');
  vsnprintf(Result.data(), size_t(Needed) + 1, Fmt, Args);
  return Result;
}

std::string wisp::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = strFormatV(Fmt, Args);
  va_end(Args);
  return Result;
}
