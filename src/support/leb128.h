//===- support/leb128.h - LEB128 encoding and decoding ---------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LEB128 variable-length integer encoding/decoding used throughout the
/// WebAssembly binary format. Decoders are bounds-checked and report
/// malformed encodings (overlong, out-of-range, truncated).
///
//===----------------------------------------------------------------------===//

#ifndef WISP_SUPPORT_LEB128_H
#define WISP_SUPPORT_LEB128_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wisp {

/// Appends an unsigned LEB128 encoding of \p Value to \p Out.
inline void writeULEB128(std::vector<uint8_t> &Out, uint64_t Value) {
  do {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    if (Value != 0)
      Byte |= 0x80;
    Out.push_back(Byte);
  } while (Value != 0);
}

/// Appends a signed LEB128 encoding of \p Value to \p Out.
inline void writeSLEB128(std::vector<uint8_t> &Out, int64_t Value) {
  bool More = true;
  while (More) {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    if ((Value == 0 && !(Byte & 0x40)) || (Value == -1 && (Byte & 0x40)))
      More = false;
    else
      Byte |= 0x80;
    Out.push_back(Byte);
  }
}

/// Result of a bounds-checked LEB128 decode.
struct LebResult {
  uint64_t Value = 0; ///< Decoded value (bit pattern for signed variants).
  size_t Length = 0;  ///< Number of bytes consumed; 0 on malformed input.
  bool Ok = false;
};

/// Decodes an unsigned LEB128 value of at most \p MaxBits bits starting at
/// \p P, not reading past \p End. Rejects overlong encodings and values that
/// do not fit in \p MaxBits.
inline LebResult readULEB128(const uint8_t *P, const uint8_t *End,
                             unsigned MaxBits) {
  LebResult R;
  uint64_t Value = 0;
  unsigned Shift = 0;
  const uint8_t *Start = P;
  while (P < End) {
    uint8_t Byte = *P++;
    if (Shift >= MaxBits)
      return R; // Too many bytes for the requested width.
    unsigned BitsLeft = MaxBits - Shift;
    if (BitsLeft < 7) {
      if (Byte & 0x80)
        return R; // Continuation past the last allowed byte.
      if ((Byte >> BitsLeft) != 0)
        return R; // High bits set beyond the allowed width.
    }
    Value |= uint64_t(Byte & 0x7f) << Shift;
    if ((Byte & 0x80) == 0) {
      R.Value = Value;
      R.Length = size_t(P - Start);
      R.Ok = true;
      return R;
    }
    Shift += 7;
  }
  return R; // Truncated.
}

/// Decodes a signed LEB128 value of at most \p MaxBits bits. The decoded
/// value is sign-extended to 64 bits and returned as a bit pattern.
inline LebResult readSLEB128(const uint8_t *P, const uint8_t *End,
                             unsigned MaxBits) {
  LebResult R;
  uint64_t Value = 0;
  unsigned Shift = 0;
  const uint8_t *Start = P;
  while (P < End) {
    uint8_t Byte = *P++;
    if (Shift >= MaxBits)
      return R;
    unsigned BitsLeft = MaxBits - Shift;
    if (BitsLeft < 7) {
      if (Byte & 0x80)
        return R;
      // The unused high bits must all equal the sign bit.
      uint8_t SignBits = Byte >> (BitsLeft - 1);
      uint8_t Mask = uint8_t(0x7f >> (BitsLeft - 1));
      if (SignBits != 0 && SignBits != Mask)
        return R;
    }
    Value |= uint64_t(Byte & 0x7f) << Shift;
    Shift += 7;
    if ((Byte & 0x80) == 0) {
      if (Shift < 64 && (Byte & 0x40))
        Value |= ~uint64_t(0) << Shift; // Sign extend.
      R.Value = Value;
      R.Length = size_t(P - Start);
      R.Ok = true;
      return R;
    }
  }
  return R; // Truncated.
}

} // namespace wisp

#endif // WISP_SUPPORT_LEB128_H
