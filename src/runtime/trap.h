//===- runtime/trap.h - trap reasons ----------------------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trap reasons shared by the interpreter, compiled code and host calls.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_RUNTIME_TRAP_H
#define WISP_RUNTIME_TRAP_H

#include <cstdint>

namespace wisp {

/// Why execution trapped. None means "did not trap".
enum class TrapReason : uint8_t {
  None = 0,
  Unreachable,
  MemOutOfBounds,
  DivByZero,
  IntOverflow,
  InvalidConversion,
  StackOverflow,
  NullFuncRef,
  IndirectCallTypeMismatch,
  TableOutOfBounds,
  HostError,
  FuelExhausted,     ///< Per-job fuel budget ran out (execution governance).
  DeadlineExceeded,  ///< Wall-clock watchdog cancelled the job.
  Cancelled,         ///< Explicit external cancellation.
};

/// Printable name of a trap reason.
inline const char *trapReasonName(TrapReason R) {
  switch (R) {
  case TrapReason::None:
    return "none";
  case TrapReason::Unreachable:
    return "unreachable";
  case TrapReason::MemOutOfBounds:
    return "memory access out of bounds";
  case TrapReason::DivByZero:
    return "integer divide by zero";
  case TrapReason::IntOverflow:
    return "integer overflow";
  case TrapReason::InvalidConversion:
    return "invalid conversion to integer";
  case TrapReason::StackOverflow:
    return "call stack exhausted";
  case TrapReason::NullFuncRef:
    return "uninitialized table element";
  case TrapReason::IndirectCallTypeMismatch:
    return "indirect call type mismatch";
  case TrapReason::TableOutOfBounds:
    return "undefined table element";
  case TrapReason::HostError:
    return "host error";
  case TrapReason::FuelExhausted:
    return "fuel exhausted";
  case TrapReason::DeadlineExceeded:
    return "deadline exceeded";
  case TrapReason::Cancelled:
    return "cancelled";
  }
  return "<bad trap>";
}

} // namespace wisp

#endif // WISP_RUNTIME_TRAP_H
