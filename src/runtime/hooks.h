//===- runtime/hooks.h - engine callbacks from execution tiers --*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Callbacks from the interpreter and JIT code back into the engine:
/// probe dispatch (instrumentation) and tiering decisions (hot-function
/// compilation and on-stack replacement). Keeping this an interface lets
/// the runtime tiers stay independent of the engine and instrumentation
/// layers.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_RUNTIME_HOOKS_H
#define WISP_RUNTIME_HOOKS_H

#include "runtime/value.h"

#include <cstdint>

namespace wisp {

class Thread;
struct FuncInstance;

/// Engine callbacks. All methods have empty defaults so tiers can run
/// standalone in tests.
class EngineHooks {
public:
  virtual ~EngineHooks() = default;

  /// A probed instruction was reached; frame state has been written back,
  /// so the probe may inspect the full stack through accessors.
  virtual void fireProbes(Thread &, FuncInstance *, uint32_t /*Ip*/) {}

  /// Optimized JIT probe: the top-of-stack value is passed directly,
  /// skipping the runtime lookup and accessor allocation (paper §IV.D).
  virtual void fireProbeTos(Thread &, FuncInstance *, uint32_t /*Ip*/,
                            Value /*Tos*/) {}

  /// A function's hotness counter crossed the threshold at entry. The hook
  /// may compile it and flip FuncInstance::UseJit for future calls.
  virtual void onFuncHot(Thread &, FuncInstance *) {}

  /// A hot loop backedge in the interpreter. The hook may compile the
  /// function with an OSR entry at \p TargetIp and rewrite the *top* frame
  /// in place to a JIT frame. Returns true if the frame was tiered up
  /// (the interpreter then yields to the dispatcher).
  virtual bool onLoopBackedge(Thread &, FuncInstance *,
                              uint32_t /*TargetIp*/) {
    return false;
  }
};

} // namespace wisp

#endif // WISP_RUNTIME_HOOKS_H
