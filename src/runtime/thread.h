//===- runtime/thread.h - execution frames and thread state -----*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution frames and per-thread execution state. Interpreter frames and
/// JIT frames use the *same* frame record (the paper's "same number of
/// machine words", Fig. 2), so tier-up (OSR) and tier-down (deopt) rewrite
/// a frame in place and jump into the other tier.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_RUNTIME_THREAD_H
#define WISP_RUNTIME_THREAD_H

#include "runtime/trap.h"
#include "runtime/valuestack.h"

#include <atomic>
#include <vector>

namespace wisp {

class Instance;
struct FuncInstance;
class MCode;

/// Which tier owns a frame right now.
enum class FrameKind : uint8_t { Interp, Jit };

/// One activation. Interp frames use Ip/Stp; Jit frames use Pc/Code. Both
/// share Func/Vfp/Sp, which is what makes in-place tier transitions cheap.
struct Frame {
  FuncInstance *Func = nullptr;
  const MCode *Code = nullptr; ///< Jit only.
  uint32_t Vfp = 0; ///< Value-stack slot of local 0.
  uint32_t Sp = 0;  ///< Absolute slot one past the live top, as visible to
                    ///< stack walkers; JIT code refreshes it at
                    ///< observation points only.
  uint32_t Ip = 0;  ///< Bytecode offset (interp; also deopt target).
  uint32_t Stp = 0; ///< Side-table position (interp).
  uint32_t Pc = 0;  ///< Machine code index (jit).
  FrameKind Kind = FrameKind::Interp;
};

/// Why an execution tier returned control to the engine dispatcher.
enum class RunSignal : uint8_t {
  Done,      ///< All frames at or above the entry depth returned.
  SwitchTier,///< Top frame belongs to the other tier; redispatch.
  Trapped,   ///< Thread.Trap holds the reason; frames are intact for
             ///< inspection and are unwound by the engine.
};

/// Per-thread execution state: the value stack and the frame stack.
class Thread {
public:
  explicit Thread(uint32_t StackSlots = 1u << 16, bool WithTags = true)
      : VS(StackSlots, WithTags) {}

  ValueStack VS;
  std::vector<Frame> Frames;
  Instance *Inst = nullptr;
  TrapReason Trap = TrapReason::None;
  uint32_t TrapIp = 0;
  uint32_t MaxFrames = 4096;
  /// High-water mark of Frames.size() since construction (or since a
  /// harness reset it). Every tier pushes wasm frames through the same
  /// path, so this is the tier-independent observed call depth — the
  /// dynamic witness the differ checks against the static DepthBound.
  uint32_t HighWaterFrames = 0;

  // --- Execution governance (fuel, deadlines, cancellation) ---
  //
  // Fuel is a deterministic, tier-independent budget of *semantic events*:
  // one unit per wasm frame push plus one unit per loop-header arrival
  // (loop entry fallthrough and every taken backedge). Every tier charges
  // at exactly these points, so for a fixed budget every tier exhausts at
  // the identical bytecode PC with identical memory/global state — a
  // property the differ verifies. The interrupt byte is the one piece of
  // cross-thread state: a watchdog (or any canceller) stores a TrapReason
  // into it, and the next governance check on the execution thread
  // converts it into a trap at a deterministic check site.
  /// Master gate: all governance checks are skipped when false, keeping
  /// ungoverned execution at its old cost.
  bool Governed = false;
  /// Fuel metering armed (Fuel is live) when true.
  bool FuelEnabled = false;
  /// Remaining fuel units; budget N traps on the (N+1)th charge.
  uint64_t Fuel = 0;
  /// Pending asynchronous interruption, written cross-thread as a raw
  /// TrapReason byte (None = no interruption pending).
  std::atomic<uint8_t> Interrupt{0};

  /// Arms/disarms governance for the next invocation.
  void armGovernance(bool EnableFuel, uint64_t Budget) {
    FuelEnabled = EnableFuel;
    Fuel = Budget;
    Governed = EnableFuel || Interrupt.load(std::memory_order_relaxed) != 0 ||
               Interruptible;
  }
  /// Marked by engines whose jobs may be interrupted (deadline/cancel):
  /// keeps Governed true even with fuel off so interrupt checks happen.
  bool Interruptible = false;

  /// One governance charge at a semantic event (frame push or loop-header
  /// arrival). Returns the trap reason to raise, or None to continue.
  /// Pending interrupts win over fuel so a deadline that fires in the same
  /// window as exhaustion reports deterministically as the interrupt.
  TrapReason governCheck() {
    uint8_t I = Interrupt.load(std::memory_order_relaxed);
    if (I != 0) {
      Interrupt.store(0, std::memory_order_relaxed);
      return TrapReason(I);
    }
    if (FuelEnabled) {
      if (Fuel == 0)
        return TrapReason::FuelExhausted;
      --Fuel;
    }
    return TrapReason::None;
  }

  /// Engine callbacks for probes and tiering; may be null.
  class EngineHooks *Hooks = nullptr;
  /// Hotness threshold for tier-up; 0 disables tiering.
  uint32_t TierUpThreshold = 0;
  /// Interpreter frames run on the threaded-dispatch tier (pre-decoded IR
  /// + computed-goto) instead of the in-place switch interpreter.
  bool UseThreaded = false;

  /// Cumulative dynamic cost counters (for deterministic comparisons).
  uint64_t InterpSteps = 0;
  uint64_t ThreadedSteps = 0;
  uint64_t JitCycles = 0;

  /// Modeled cost of one interpreter dispatch in simulated cycles. An
  /// in-place interpreter pays opcode fetch, LEB immediate decode, the
  /// dispatch indirection and operand-stack memory traffic per bytecode —
  /// roughly 15-30 native cycles in production interpreters (Titzer,
  /// OOPSLA 2022). Execution-time experiments compare modeled cycles, not
  /// wall time, because the simulated target's executor is itself an
  /// interpreter (see DESIGN.md's substitution table).
  static constexpr uint64_t InterpCyclesPerStep = 22;

  /// Modeled cost of one threaded-dispatch IR unit. Pre-decoded immediates
  /// eliminate the per-step LEB decode, and token threading replaces the
  /// central switch (bounds check + table jump + shared mispredicting
  /// indirect branch) with a per-handler indirect jump — the classic
  /// 20-40% dispatch saving of threaded code (Ertl & Gregg, "The Structure
  /// and Performance of Efficient Interpreters"). Superinstruction fusion
  /// reduces the *number* of steps on top of this per-step saving.
  static constexpr uint64_t ThreadedCyclesPerStep = 16;

  /// Flat modeled cost a probe firing adds on either interpreter tier:
  /// runtime site lookup, accessor allocation and callback, roughly ten
  /// bytecode-dispatch equivalents. Dispatch-strategy independent, so both
  /// interpreters charge it to InterpSteps.
  static constexpr uint64_t ProbeDispatchSteps = 10;

  /// Total modeled cycles across all tiers.
  uint64_t modeledCycles() const {
    return InterpSteps * InterpCyclesPerStep +
           ThreadedSteps * ThreadedCyclesPerStep + JitCycles;
  }

  bool trapped() const { return Trap != TrapReason::None; }
  void setTrap(TrapReason R, uint32_t Ip) {
    Trap = R;
    TrapIp = Ip;
  }
  void clearTrap() {
    Trap = TrapReason::None;
    TrapIp = 0;
  }

  Frame &top() {
    assert(!Frames.empty() && "no frames");
    return Frames.back();
  }
};

} // namespace wisp

#endif // WISP_RUNTIME_THREAD_H
