//===- runtime/instance.h - module instances --------------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime instances of a module: linear memory, tables, globals, function
/// instances with their per-tier state (interpreter by default, optional
/// compiled code, tiering counters, probe bitmaps), and import binding to
/// host functions and host globals.
///
/// Two instantiation fast paths back the engine's instance pool:
///
///  - An InstanceImage pre-evaluates everything about a module's initial
///    state that does not depend on the host environment: data segments
///    pre-evaluated into sparse (offset, bytes) runs, element segments
///    resolved into initial table contents, global initializers evaluated
///    into an initial-values vector. instantiateFromImage() then builds an
///    instance with a handful of memcpys instead of segment replay, and
///    the image itself is immutable and shareable through the compile
///    cache (cache/compilecache.h).
///  - reimageInstance() resets a *retired* instance of the same module
///    back to the image in place: linear memory is restored with a
///    dirty-bounded page scan (LinearMemory tracks a conservative
///    high-water mark of stores; pages at or beyond it are pristine by
///    construction), tables and globals are re-assigned from the image,
///    and per-function tier state is cleared. No allocation on the steady
///    state path.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_RUNTIME_INSTANCE_H
#define WISP_RUNTIME_INSTANCE_H

#include "runtime/gcheap.h"
#include "runtime/trap.h"
#include "runtime/value.h"
#include "wasm/error.h"
#include "wasm/module.h"

#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <utility>

namespace wisp {

class Instance;
class MCode;
class ThreadedCode;

constexpr uint32_t WasmPageSize = 65536;

/// A host (imported) function implementation.
using HostFn =
    std::function<TrapReason(Instance &, const Value *Args, Value *Results)>;

struct HostFunc {
  FuncType Type;
  HostFn Fn;
};

/// A host-provided (imported) global binding: the value an imported
/// global resolves to at link time.
struct HostGlobal {
  ValType Type = ValType::I32;
  bool Mutable = false;
  uint64_t Bits = 0;
};

/// Registry of host functions and host globals keyed by (module, name).
class HostRegistry {
public:
  void add(const std::string &Mod, const std::string &Name, FuncType Type,
           HostFn Fn) {
    Funcs[{Mod, Name}] = HostFunc{std::move(Type), std::move(Fn)};
  }
  const HostFunc *find(const std::string &Mod, const std::string &Name) const {
    auto It = Funcs.find({Mod, Name});
    return It == Funcs.end() ? nullptr : &It->second;
  }

  /// Binds an imported global: instantiation of a module importing
  /// (\p Mod, \p Name) as a global resolves it to \p Bits. Unresolved
  /// imported globals are a link error (they are NOT silently zero).
  void addGlobal(const std::string &Mod, const std::string &Name, ValType T,
                 uint64_t Bits, bool Mutable = false) {
    Globals[{Mod, Name}] = HostGlobal{T, Mutable, Bits};
  }
  const HostGlobal *findGlobal(const std::string &Mod,
                               const std::string &Name) const {
    auto It = Globals.find({Mod, Name});
    return It == Globals.end() ? nullptr : &It->second;
  }

private:
  std::map<std::pair<std::string, std::string>, HostFunc> Funcs;
  std::map<std::pair<std::string, std::string>, HostGlobal> Globals;
};

/// One pre-evaluated data segment of an instance image: destination
/// offset plus bytes, already bounds-checked against the declared
/// memory minimum at image-build time. Images keep segments sparse (one
/// run per segment, in application order) rather than flattened into a
/// dense prefix: realistic modules place small segments at high offsets,
/// and a dense prefix would cost megabytes of cached zeros per module
/// plus a full-prefix memcpy per instantiation.
struct MemRun {
  uint64_t Off = 0;
  std::vector<uint8_t> Bytes;
};

/// Linear memory with bounds-checked accessors and a conservative dirty
/// high-water mark: every store path (both interpreters, the machine-code
/// executor, bulk memory operations) records the end offset of its write
/// via noteWrite(), so re-imaging a pooled instance only has to scan
/// [0, dirtyHi()) — bytes at or beyond the mark still hold their initial
/// image (or the zeros grow appended) by construction. Host functions
/// that write linear memory directly must call noteWrite() themselves.
///
/// Backed by an anonymous memory mapping (calloc on platforms without
/// mmap) rather than a std::vector so that a fresh memory is never
/// explicitly zeroed: the kernel hands out lazily mapped zero pages, so
/// instantiating a module with a multi-megabyte minimum costs no memset
/// and no page faults beyond the bytes actually touched. Pages retained
/// across a shrink (reimage keeps capacity) are the one place stale
/// bytes can exist; every path that re-extends into retained capacity
/// zeroes the reclaimed range explicitly.
class LinearMemory {
public:
  LinearMemory() = default;
  ~LinearMemory() { release(); }
  LinearMemory(const LinearMemory &) = delete;
  LinearMemory &operator=(const LinearMemory &) = delete;
  LinearMemory(LinearMemory &&O) noexcept { *this = std::move(O); }
  LinearMemory &operator=(LinearMemory &&O) noexcept {
    if (this != &O) {
      release();
      Buf = O.Buf;
      Size = O.Size;
      Cap = O.Cap;
      Lim = O.Lim;
      DirtyHi = O.DirtyHi;
      PageLimit = O.PageLimit;
      O.Buf = nullptr;
      O.Size = O.Cap = 0;
      O.DirtyHi = 0;
    }
    return *this;
  }

  /// (Re-)initializes to \p L.Min untouched zero pages. Returns false when
  /// the backing mapping cannot be allocated (the memory is left empty and
  /// valid: Buf null, Size 0) — callers must surface this as a link error,
  /// never instantiate over a zero-length memory the module declared
  /// non-empty.
  bool init(const Limits &L);

  /// Initializes to \p L.Min zeroed pages with the pre-evaluated data
  /// segments in \p Runs applied (in order; later runs overwrite).
  /// Returns false on allocation failure (see init()).
  bool initFromImage(const Limits &L, const std::vector<MemRun> &Runs) {
    if (!init(L))
      return false;
    for (const MemRun &R : Runs)
      memcpy(Buf + R.Off, R.Bytes.data(), R.Bytes.size());
    return true;
  }

  /// Restores a used memory to its initial image in place: shrinks grown
  /// memory back to L.Min pages, then repairs only the dirty prefix
  /// [0, dirtyHi()) page by page — a page is compared against its
  /// expected initial content (zeros overlaid with the runs that
  /// intersect it) and rewritten only if it actually changed. Never
  /// allocates on the steady-state path unless a dirty page intersects a
  /// run (one scratch page) or the memory somehow shrank below L.Min.
  /// Returns false when re-extending a shrunk-below-minimum memory fails
  /// (the pooled instance must then be destroyed, not reused).
  bool reimage(const Limits &L, const std::vector<MemRun> &Runs);

  uint32_t pages() const { return uint32_t(Size / WasmPageSize); }
  size_t byteSize() const { return Size; }
  uint8_t *data() { return Buf; }
  const uint8_t *data() const { return Buf; }

  /// Records that bytes [?, End) were (possibly) written. Cheap enough
  /// for the store hot paths: one compare and a rarely-taken store.
  void noteWrite(uint64_t End) {
    if (End > DirtyHi)
      DirtyHi = End;
  }
  uint64_t dirtyHi() const { return DirtyHi; }

  /// Grows by \p Delta pages; returns the old page count or -1 on failure.
  /// The cap is the declared maximum when present, else the architectural
  /// 65536-page limit; both are enforced (a declared max above the
  /// architectural limit never admits a grow past it), as is the engine's
  /// runtime page limit when one is set (resource governance).
  int64_t grow(uint32_t Delta) {
    uint64_t Old = pages();
    uint64_t New = Old + Delta;
    uint64_t PageCap = Lim.HasMax ? Lim.Max : MaxMemoryPages;
    if (New > PageCap || New > MaxMemoryPages || New > PageLimit)
      return -1;
    if (!extendZeroed(size_t(New) * WasmPageSize))
      return -1;
    // Appended pages are zero, which matches the initial image beyond its
    // data runs — growing does not dirty anything.
    return int64_t(Old);
  }

  /// Applies a per-job runtime page cap on top of the declared limits
  /// (0 restores the architectural default). Enforced by grow(); the
  /// engine rejects modules whose declared minimum already exceeds it
  /// before instantiation, and re-applies the cap on pool reuse.
  void setPageLimit(uint32_t Pages) {
    PageLimit = Pages ? Pages : MaxMemoryPages;
  }

  /// Bounds check for an access of \p N bytes at \p Addr + \p Offset.
  bool inBounds(uint32_t Addr, uint32_t Offset, uint32_t N) const {
    uint64_t End = uint64_t(Addr) + Offset + N;
    return End <= Size;
  }

private:
  /// Extends the memory to \p NewBytes (>= Size) with the appended range
  /// zeroed: reclaimed retained capacity is memset (it may hold stale
  /// pre-shrink bytes), a larger buffer comes from a fresh zero mapping
  /// (remapped in place on Linux — no copy, no faults).
  bool extendZeroed(size_t NewBytes);
  /// Returns the buffer to the OS (or allocator).
  void release();

  uint8_t *Buf = nullptr;
  size_t Size = 0; ///< Current extent in bytes (pages() * WasmPageSize).
  size_t Cap = 0;  ///< Allocated bytes; shrinks retain capacity.
  Limits Lim;
  /// Conservative high-water mark of store end offsets since the last
  /// (re-)imaging; bytes at or beyond it are pristine.
  uint64_t DirtyHi = 0;
  /// Engine-imposed runtime page cap (resource governance); survives
  /// reimage so a pooled instance keeps its job's limit until reset.
  uint32_t PageLimit = MaxMemoryPages;
};

/// A funcref table; entries are function ids (index + 1, 0 = null).
struct Table {
  Limits Lim;
  std::vector<uint64_t> Elems;
};

/// A global variable instance.
struct Global {
  uint64_t Bits = 0;
  ValType Type = ValType::I32;
  bool Mutable = false;
};

/// Per-function runtime state: which tier executes it, compiled code,
/// tiering counters and the probe bitmap.
struct FuncInstance {
  const FuncDecl *Decl = nullptr;
  const FuncType *Type = nullptr;
  Instance *Inst = nullptr;
  const HostFunc *Host = nullptr; ///< Non-null for imported functions.

  /// Compiled machine code, if any. Not owned, immutable, and possibly
  /// shared across instances/engines through the compile cache.
  const MCode *Code = nullptr;
  /// Pre-decoded threaded IR for the threaded-dispatch interpreter tier
  /// (not owned; engines replace it when probes invalidate fusion).
  const ThreadedCode *TCode = nullptr;
  bool UseJit = false;   ///< Calls enter the JIT tier when true.
  bool DeoptRequested = false; ///< JIT frames tier down at checkpoints.
  uint32_t HotCount = 0;       ///< Tiering heuristic counter.

  /// One bit per body byte offset; set when a probe is attached there.
  /// Empty means unprobed.
  std::vector<uint64_t> ProbeBits;

  bool probedAt(uint32_t Ip) const {
    if (ProbeBits.empty())
      return false;
    uint32_t Rel = Ip - Decl->BodyStart;
    return (ProbeBits[Rel >> 6] >> (Rel & 63)) & 1;
  }
  void setProbeBit(uint32_t Ip) {
    uint32_t Len = Decl->BodyEnd - Decl->BodyStart;
    if (ProbeBits.empty())
      ProbeBits.assign((Len + 63) / 64, 0);
    uint32_t Rel = Ip - Decl->BodyStart;
    ProbeBits[Rel >> 6] |= uint64_t(1) << (Rel & 63);
  }
  void clearProbeBit(uint32_t Ip) {
    if (ProbeBits.empty())
      return;
    uint32_t Rel = Ip - Decl->BodyStart;
    ProbeBits[Rel >> 6] &= ~(uint64_t(1) << (Rel & 63));
  }
};

/// An instantiated module.
class Instance {
public:
  const Module *M = nullptr;
  std::vector<FuncInstance> Funcs;
  std::vector<Global> Globals;
  std::vector<Table> Tables;
  LinearMemory Memory;
  bool HasMemory = false;
  GcHeap *Heap = nullptr; ///< Engine-owned; may be null for non-GC configs.

  FuncInstance *func(uint32_t Idx) {
    assert(Idx < Funcs.size() && "function index out of range");
    return &Funcs[Idx];
  }

  /// Finds an exported function instance by name.
  FuncInstance *findExportedFunc(const std::string &Name) {
    const Export *E = M->findExport(Name, ExternKind::Func);
    return E ? &Funcs[E->Index] : nullptr;
  }
};

/// A module's pre-imaged initial state: everything instantiate() would
/// compute that depends only on the module itself. Immutable once built
/// and shareable across instances, engines and threads (the compile cache
/// hands out shared handles). Modules with imported globals are not
/// imageable — their initial globals (and, through global.get offsets,
/// nothing else, since offsets may only name earlier globals and imported
/// ones resolve at link time) depend on the host environment.
struct InstanceImage {
  /// Pre-evaluated data segments (offsets resolved, bounds-checked), in
  /// application order; initial memory is zeros with these applied.
  std::vector<MemRun> MemRuns;
  bool HasMemory = false;
  Limits MemLimits;
  /// Per-table initial contents (minimum size, element segments applied).
  std::vector<std::vector<uint64_t>> TableImages;
  std::vector<Limits> TableLimits;
  /// Initial global values, in index order.
  std::vector<Global> GlobalImage;

  /// Approximate resident bytes (compile-cache capacity accounting).
  size_t byteSize() const {
    size_t N = sizeof(InstanceImage) + GlobalImage.size() * sizeof(Global);
    for (const MemRun &R : MemRuns)
      N += sizeof(MemRun) + R.Bytes.size();
    for (const std::vector<uint64_t> &T : TableImages)
      N += T.size() * sizeof(uint64_t);
    return N;
  }
};

/// Test/fault-injection hook for linear-memory allocation failures:
/// arms a countdown of successful page-mapping requests; the (N+1)th
/// request fails as if the OS were out of memory. Pass a negative value
/// to disarm (the default). Used by the robustness tests and the serve
/// fault injector to drive every allocation-failure path without
/// actually exhausting the machine.
void setMemoryFaultCountdown(int64_t N);

/// Builds the instance image of \p M: globals pre-evaluated, element
/// segments pre-resolved into table contents, data segments pre-evaluated
/// into sparse memory runs. Returns nullptr (with \p Err when
/// given) if the module is not imageable (it imports globals) or if a
/// segment does not fit its memory/table — the caller falls back to
/// instantiate(), which reproduces the link error exactly.
std::unique_ptr<InstanceImage> buildInstanceImage(const Module &M,
                                                  WasmError *Err);

/// Instantiates \p M: binds imports from \p Hosts, allocates memory and
/// tables, evaluates global initializers and applies data/element
/// segments. Does NOT run the start function (the engine does, so setup
/// cost is attributed correctly). Returns nullptr and fills \p Err on
/// link errors (unresolved or mismatched imports, out-of-bounds
/// segments).
std::unique_ptr<Instance> instantiate(const Module &M,
                                      const HostRegistry &Hosts,
                                      GcHeap *Heap, WasmError *Err);

/// Image fast path: instantiates \p M from its pre-built image — import
/// binding plus a handful of memcpys, no segment replay or initializer
/// evaluation. \p Img must have been built from \p M.
std::unique_ptr<Instance> instantiateFromImage(const Module &M,
                                               const InstanceImage &Img,
                                               const HostRegistry &Hosts,
                                               GcHeap *Heap, WasmError *Err);

/// Pool fast path: resets a retired instance of \p M back to \p Img in
/// place — dirty-bounded memory repair, table/global re-assignment from
/// the image, import re-binding against \p Hosts (the retiring engine's
/// registry is gone), and per-function tier-state reset. On failure the
/// instance is consumed and destroyed (a partially re-imaged instance
/// never escapes) and nullptr is returned with \p Err filled.
std::unique_ptr<Instance> reimageInstance(std::unique_ptr<Instance> Inst,
                                          const Module &M,
                                          const InstanceImage &Img,
                                          const HostRegistry &Hosts,
                                          GcHeap *Heap, WasmError *Err);

} // namespace wisp

#endif // WISP_RUNTIME_INSTANCE_H
