//===- runtime/instance.h - module instances --------------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime instances of a module: linear memory, tables, globals, function
/// instances with their per-tier state (interpreter by default, optional
/// compiled code, tiering counters, probe bitmaps), and import binding to
/// host functions.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_RUNTIME_INSTANCE_H
#define WISP_RUNTIME_INSTANCE_H

#include "runtime/gcheap.h"
#include "runtime/trap.h"
#include "runtime/value.h"
#include "wasm/error.h"
#include "wasm/module.h"

#include <cstring>
#include <functional>
#include <map>
#include <memory>

namespace wisp {

class Instance;
class MCode;
class ThreadedCode;

constexpr uint32_t WasmPageSize = 65536;

/// A host (imported) function implementation.
using HostFn =
    std::function<TrapReason(Instance &, const Value *Args, Value *Results)>;

struct HostFunc {
  FuncType Type;
  HostFn Fn;
};

/// Registry of host functions keyed by (module, name).
class HostRegistry {
public:
  void add(const std::string &Mod, const std::string &Name, FuncType Type,
           HostFn Fn) {
    Funcs[{Mod, Name}] = HostFunc{std::move(Type), std::move(Fn)};
  }
  const HostFunc *find(const std::string &Mod, const std::string &Name) const {
    auto It = Funcs.find({Mod, Name});
    return It == Funcs.end() ? nullptr : &It->second;
  }

private:
  std::map<std::pair<std::string, std::string>, HostFunc> Funcs;
};

/// Linear memory with bounds-checked accessors.
class LinearMemory {
public:
  void init(const Limits &L) {
    Lim = L;
    Data.assign(size_t(L.Min) * WasmPageSize, 0);
  }
  uint32_t pages() const { return uint32_t(Data.size() / WasmPageSize); }
  size_t byteSize() const { return Data.size(); }
  uint8_t *data() { return Data.data(); }
  const uint8_t *data() const { return Data.data(); }

  /// Grows by \p Delta pages; returns the old page count or -1 on failure.
  int64_t grow(uint32_t Delta) {
    uint64_t Old = pages();
    uint64_t New = Old + Delta;
    uint64_t Cap = Lim.HasMax ? Lim.Max : 65536;
    if (New > Cap || New > 65536)
      return -1;
    Data.resize(size_t(New) * WasmPageSize, 0);
    return int64_t(Old);
  }

  /// Bounds check for an access of \p Size bytes at \p Addr + \p Offset.
  bool inBounds(uint32_t Addr, uint32_t Offset, uint32_t Size) const {
    uint64_t End = uint64_t(Addr) + Offset + Size;
    return End <= Data.size();
  }

private:
  std::vector<uint8_t> Data;
  Limits Lim;
};

/// A funcref table; entries are function ids (index + 1, 0 = null).
struct Table {
  Limits Lim;
  std::vector<uint64_t> Elems;
};

/// A global variable instance.
struct Global {
  uint64_t Bits = 0;
  ValType Type = ValType::I32;
  bool Mutable = false;
};

/// Per-function runtime state: which tier executes it, compiled code,
/// tiering counters and the probe bitmap.
struct FuncInstance {
  const FuncDecl *Decl = nullptr;
  const FuncType *Type = nullptr;
  Instance *Inst = nullptr;
  const HostFunc *Host = nullptr; ///< Non-null for imported functions.

  /// Compiled machine code, if any. Not owned, immutable, and possibly
  /// shared across instances/engines through the compile cache.
  const MCode *Code = nullptr;
  /// Pre-decoded threaded IR for the threaded-dispatch interpreter tier
  /// (not owned; engines replace it when probes invalidate fusion).
  const ThreadedCode *TCode = nullptr;
  bool UseJit = false;   ///< Calls enter the JIT tier when true.
  bool DeoptRequested = false; ///< JIT frames tier down at checkpoints.
  uint32_t HotCount = 0;       ///< Tiering heuristic counter.

  /// One bit per body byte offset; set when a probe is attached there.
  /// Empty means unprobed.
  std::vector<uint64_t> ProbeBits;

  bool probedAt(uint32_t Ip) const {
    if (ProbeBits.empty())
      return false;
    uint32_t Rel = Ip - Decl->BodyStart;
    return (ProbeBits[Rel >> 6] >> (Rel & 63)) & 1;
  }
  void setProbeBit(uint32_t Ip) {
    uint32_t Len = Decl->BodyEnd - Decl->BodyStart;
    if (ProbeBits.empty())
      ProbeBits.assign((Len + 63) / 64, 0);
    uint32_t Rel = Ip - Decl->BodyStart;
    ProbeBits[Rel >> 6] |= uint64_t(1) << (Rel & 63);
  }
  void clearProbeBit(uint32_t Ip) {
    if (ProbeBits.empty())
      return;
    uint32_t Rel = Ip - Decl->BodyStart;
    ProbeBits[Rel >> 6] &= ~(uint64_t(1) << (Rel & 63));
  }
};

/// An instantiated module.
class Instance {
public:
  const Module *M = nullptr;
  std::vector<FuncInstance> Funcs;
  std::vector<Global> Globals;
  std::vector<Table> Tables;
  LinearMemory Memory;
  bool HasMemory = false;
  GcHeap *Heap = nullptr; ///< Engine-owned; may be null for non-GC configs.

  FuncInstance *func(uint32_t Idx) {
    assert(Idx < Funcs.size() && "function index out of range");
    return &Funcs[Idx];
  }

  /// Finds an exported function instance by name.
  FuncInstance *findExportedFunc(const std::string &Name) {
    const Export *E = M->findExport(Name, ExternKind::Func);
    return E ? &Funcs[E->Index] : nullptr;
  }
};

/// Instantiates \p M: binds imports from \p Hosts, allocates memory and
/// tables, evaluates global initializers and applies data/element segments.
/// Does NOT run the start function (the engine does, so setup cost is
/// attributed correctly). Returns nullptr and fills \p Err on link errors.
std::unique_ptr<Instance> instantiate(const Module &M,
                                      const HostRegistry &Hosts,
                                      GcHeap *Heap, WasmError *Err);

} // namespace wisp

#endif // WISP_RUNTIME_INSTANCE_H
