//===- runtime/watchdog.h - wall-clock deadline watchdog --------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-engine wall-clock watchdog. One background thread sleeps on a
/// condition variable; arm() gives it a target Thread and a deadline, and
/// if the deadline passes while still armed it stores DeadlineExceeded
/// into the target's interrupt byte — the only cross-thread write in the
/// whole governance design. The execution thread converts the interrupt
/// into a trap at its next governance check (frame push or loop-header
/// arrival), so a runaway job is stopped within one check interval of the
/// deadline.
///
/// Late fires are benign by construction: disarm() (or a re-arm) bumps the
/// generation so a woken watchdog discards its stale deadline, and the
/// engine clears the interrupt byte when arming the next invocation, so a
/// fire that slips in after a job completes can never kill the job after
/// it.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_RUNTIME_WATCHDOG_H
#define WISP_RUNTIME_WATCHDOG_H

#include "runtime/thread.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace wisp {

class Watchdog {
public:
  Watchdog() : Worker([this] { run(); }) {}
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Quit = true;
    }
    CV.notify_all();
    Worker.join();
  }
  Watchdog(const Watchdog &) = delete;
  Watchdog &operator=(const Watchdog &) = delete;

  /// Arms the watchdog: \p T's interrupt byte is set once \p Ms
  /// milliseconds elapse, unless disarm() (or another arm()) intervenes.
  void arm(Thread &T, uint32_t Ms) {
    {
      std::lock_guard<std::mutex> L(Mu);
      Target = &T;
      Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(Ms);
      ++Gen;
    }
    CV.notify_all();
  }

  /// Disarms; a concurrently-firing deadline may still have stored the
  /// interrupt (the caller clears the byte before its next job).
  void disarm() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Target = nullptr;
      ++Gen;
    }
    CV.notify_all();
  }

private:
  void run() {
    std::unique_lock<std::mutex> L(Mu);
    for (;;) {
      CV.wait(L, [&] { return Quit || Target != nullptr; });
      if (Quit)
        return;
      uint64_t G = Gen;
      if (CV.wait_until(L, Deadline, [&] { return Quit || Gen != G; })) {
        if (Quit)
          return;
        continue; // Re-armed or disarmed; pick up the new state.
      }
      // Deadline passed while this arming is still current.
      if (Target)
        Target->Interrupt.store(uint8_t(TrapReason::DeadlineExceeded),
                                std::memory_order_relaxed);
      Target = nullptr;
    }
  }

  std::mutex Mu;
  std::condition_variable CV;
  Thread *Target = nullptr;
  std::chrono::steady_clock::time_point Deadline;
  uint64_t Gen = 0;
  bool Quit = false;
  std::thread Worker;
};

} // namespace wisp

#endif // WISP_RUNTIME_WATCHDOG_H
