//===- runtime/gcheap.cpp - host object heap with mark-sweep GC -----------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "runtime/gcheap.h"

#include <cassert>

using namespace wisp;

uint64_t GcHeap::allocate(uint64_t Payload) {
  ++TotalAllocated;
  ++LiveCount;
  if (!FreeList.empty()) {
    uint64_t Id = FreeList.back();
    FreeList.pop_back();
    HostObject &O = Objects[Id - 1];
    O.Payload = Payload;
    O.Refs.clear();
    O.Marked = false;
    O.Live = true;
    return Id;
  }
  Objects.push_back(HostObject{Payload, {}, false, true});
  return uint64_t(Objects.size());
}

HostObject &GcHeap::object(uint64_t Id) {
  assert(Id != 0 && Id <= Objects.size() && "bad host object id");
  HostObject &O = Objects[Id - 1];
  assert(O.Live && "access to collected host object");
  return O;
}

const HostObject &GcHeap::object(uint64_t Id) const {
  return const_cast<GcHeap *>(this)->object(Id);
}

bool GcHeap::isLive(uint64_t Id) const {
  if (Id == 0 || Id > Objects.size())
    return false;
  return Objects[Id - 1].Live;
}

size_t GcHeap::collect(const std::vector<uint64_t> &Roots) {
  ++Collections;
  // Mark.
  std::vector<uint64_t> Work;
  for (uint64_t Id : Roots) {
    if (Id == 0)
      continue;
    assert(Id <= Objects.size() && "root id out of range");
    HostObject &O = Objects[Id - 1];
    // A conservative scan (stale tags) may report ids of already-collected
    // objects; those are simply ignored, which is safe for a non-moving
    // collector.
    if (!O.Live || O.Marked)
      continue;
    O.Marked = true;
    Work.push_back(Id);
  }
  while (!Work.empty()) {
    uint64_t Id = Work.back();
    Work.pop_back();
    for (uint64_t Ref : Objects[Id - 1].Refs) {
      if (Ref == 0)
        continue;
      HostObject &O = Objects[Ref - 1];
      if (O.Live && !O.Marked) {
        O.Marked = true;
        Work.push_back(Ref);
      }
    }
  }
  // Sweep.
  size_t Freed = 0;
  for (size_t I = 0; I < Objects.size(); ++I) {
    HostObject &O = Objects[I];
    if (!O.Live)
      continue;
    if (O.Marked) {
      O.Marked = false;
      continue;
    }
    O.Live = false;
    O.Refs.clear();
    FreeList.push_back(uint64_t(I + 1));
    ++Freed;
  }
  LiveCount -= Freed;
  return Freed;
}
