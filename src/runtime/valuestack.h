//===- runtime/valuestack.h - explicit value stack with tag lane -*- C++ -*-==//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicit value stack shared by the interpreter and JIT code (paper
/// Fig. 2). Values are raw 64-bit slots; an optional parallel *tag lane*
/// holds one ValType byte per slot so stack walkers (GC, instrumentation,
/// debugging) can interpret any slot without metadata. Engines configured
/// without tags (the paper's `notags` baseline and the non-GC engines)
/// simply do not allocate the lane, saving its space.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_RUNTIME_VALUESTACK_H
#define WISP_RUNTIME_VALUESTACK_H

#include "wasm/types.h"

#include <cstdint>
#include <vector>

namespace wisp {

/// A fixed-capacity value stack. Frames address it by absolute slot index.
class ValueStack {
public:
  explicit ValueStack(uint32_t NumSlots = 1u << 16, bool WithTags = true)
      : SlotStore(NumSlots, 0),
        TagStore(WithTags ? NumSlots : 0, uint8_t(ValType::I32)),
        HasTags(WithTags) {}

  uint32_t capacity() const { return uint32_t(SlotStore.size()); }
  bool hasTags() const { return HasTags; }

  uint64_t *slots() { return SlotStore.data(); }
  const uint64_t *slots() const { return SlotStore.data(); }
  /// Null when the engine runs without value tags.
  uint8_t *tags() { return HasTags ? TagStore.data() : nullptr; }
  const uint8_t *tags() const { return HasTags ? TagStore.data() : nullptr; }

  uint64_t slot(uint32_t I) const { return SlotStore[I]; }
  void setSlot(uint32_t I, uint64_t Bits) { SlotStore[I] = Bits; }
  ValType tag(uint32_t I) const {
    assert(HasTags && "tag lane disabled");
    return ValType(TagStore[I]);
  }
  void setTag(uint32_t I, ValType T) {
    if (HasTags)
      TagStore[I] = uint8_t(T);
  }

private:
  std::vector<uint64_t> SlotStore;
  std::vector<uint8_t> TagStore;
  bool HasTags;
};

} // namespace wisp

#endif // WISP_RUNTIME_VALUESTACK_H
