//===- runtime/instance.cpp - module instantiation -------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "runtime/instance.h"

#include "support/format.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define WISP_MEM_MMAP 1
#include <sys/mman.h>
#if defined(__linux__)
#define WISP_MEM_MREMAP 1
#endif
#else
#define WISP_MEM_MMAP 0
#endif

using namespace wisp;

//===----------------------------------------------------------------------===//
// Linear-memory backing store
//===----------------------------------------------------------------------===//
//
// Anonymous mappings give zero pages lazily: a fresh memory costs no
// memset and faults in only the pages the module actually touches.
// Going through malloc instead would defeat this — glibc's dynamic
// mmap threshold migrates repeated large allocations into the arena,
// where calloc must memset recycled (cold) pages.

namespace {

/// Fault-injection countdown: negative = disarmed; otherwise the request
/// after this many successes fails with ENOMEM. Atomic because the serve
/// fault injector arms it from the control thread while workers allocate.
std::atomic<int64_t> MemFaultCountdown{-1};

bool injectMapFault() {
  int64_t C = MemFaultCountdown.load(std::memory_order_relaxed);
  if (C < 0)
    return false;
  if (MemFaultCountdown.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    errno = ENOMEM;
    return true;
  }
  return false;
}

uint8_t *mapZeroPages(size_t N) {
  if (injectMapFault())
    return nullptr;
#if WISP_MEM_MMAP
  void *P = mmap(nullptr, N, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  return P == MAP_FAILED ? nullptr : static_cast<uint8_t *>(P);
#else
  return static_cast<uint8_t *>(calloc(N, 1));
#endif
}

} // namespace

void wisp::setMemoryFaultCountdown(int64_t N) {
  MemFaultCountdown.store(N, std::memory_order_relaxed);
}

void LinearMemory::release() {
  if (!Buf)
    return;
#if WISP_MEM_MMAP
  munmap(Buf, Cap);
#else
  free(Buf);
#endif
  Buf = nullptr;
  Cap = 0;
}

bool LinearMemory::init(const Limits &L) {
  Lim = L;
  size_t N = size_t(L.Min) * WasmPageSize;
  release(); // Re-init of a used memory (rare): start from fresh zeros.
  if (N) {
    Buf = mapZeroPages(N);
    Cap = Buf ? N : 0;
  }
  Size = Cap;
  DirtyHi = 0;
  // A failed mapping leaves a valid empty memory (Buf null, Size 0); the
  // caller must turn this into a link error, not proceed — a module that
  // declared a non-empty minimum would otherwise see every access trap.
  return N == 0 || Buf != nullptr;
}

bool LinearMemory::extendZeroed(size_t NewBytes) {
  if (NewBytes <= Cap) {
    if (NewBytes > Size) // Guard: Buf may be null when everything is 0.
      memset(Buf + Size, 0, NewBytes - Size);
  } else {
#if WISP_MEM_MREMAP
    if (Buf && injectMapFault()) // mapZeroPages injects for the null case.
      return false;
    void *NB = Buf ? mremap(Buf, Cap, NewBytes, MREMAP_MAYMOVE)
                   : mapZeroPages(NewBytes);
    if (!NB || NB == MAP_FAILED)
      return false;
    Buf = static_cast<uint8_t *>(NB);
#else
    uint8_t *NB = mapZeroPages(NewBytes);
    if (!NB)
      return false;
    if (Size)
      memcpy(NB, Buf, Size);
    release();
    Buf = NB;
#endif
    Cap = NewBytes;
  }
  Size = NewBytes;
  return true;
}

/// Evaluates a (validated) constant initializer against the globals
/// initialized so far. Validation guarantees GlobalGet only names an
/// earlier-index immutable global, so \p Globals[E.Index] is initialized
/// by the time it is read.
static uint64_t evalInit(const std::vector<Global> &Globals,
                         const InitExpr &E) {
  switch (E.K) {
  case InitExpr::Const:
    return E.Bits;
  case InitExpr::GlobalGet:
    assert(E.Index < Globals.size() && "init expr global index out of range");
    return Globals[E.Index].Bits;
  case InitExpr::RefNull:
    return 0;
  case InitExpr::RefFuncIdx:
    return uint64_t(E.Index) + 1;
  }
  return 0;
}

/// Binds every imported global of \p M from \p Hosts into \p Globals and
/// evaluates the defined globals' initializers in index order. Returns
/// false (with \p Err filled) on an unresolved or mismatched import —
/// imported globals are NOT silently zero; a data/element offset reading
/// one must either link for real or fail loudly.
static bool initGlobals(const Module &M, const HostRegistry &Hosts,
                        std::vector<Global> &Globals, WasmError *Err) {
  Globals.resize(M.Globals.size());
  for (size_t I = 0; I < M.Globals.size(); ++I) {
    const GlobalDecl &G = M.Globals[I];
    Global &RG = Globals[I];
    RG.Type = G.Type;
    RG.Mutable = G.Mutable;
    if (!G.Imported) {
      RG.Bits = evalInit(Globals, G.Init);
      continue;
    }
    const HostGlobal *H = Hosts.findGlobal(G.ImportModule, G.ImportName);
    if (!H) {
      if (Err)
        Err->Message = strFormat("unresolved global import %s.%s",
                                 G.ImportModule.c_str(), G.ImportName.c_str());
      return false;
    }
    if (H->Type != G.Type || H->Mutable != G.Mutable) {
      if (Err)
        Err->Message = strFormat("global import %s.%s type mismatch",
                                 G.ImportModule.c_str(), G.ImportName.c_str());
      return false;
    }
    RG.Bits = H->Bits;
  }
  return true;
}

/// (Re-)binds the per-function state of \p Inst against \p M and \p Hosts.
/// Used by all instantiation paths; reimageInstance reuses it to re-bind
/// host pointers (the retiring engine's registry is gone) and to reset
/// tier state without reallocating when the Funcs vector already exists.
static bool bindFunctions(Instance &Inst, const Module &M,
                          const HostRegistry &Hosts, WasmError *Err) {
  Inst.Funcs.resize(M.Funcs.size());
  for (size_t I = 0; I < M.Funcs.size(); ++I) {
    FuncInstance &F = Inst.Funcs[I];
    F.Decl = &M.Funcs[I];
    F.Type = &M.Types[F.Decl->TypeIdx];
    F.Inst = &Inst;
    F.Host = nullptr;
    F.Code = nullptr;
    F.TCode = nullptr;
    F.UseJit = false;
    F.DeoptRequested = false;
    F.HotCount = 0;
    F.ProbeBits.clear();
    if (!F.Decl->Imported)
      continue;
    const HostFunc *H = Hosts.find(F.Decl->ImportModule, F.Decl->ImportName);
    if (!H) {
      if (Err)
        Err->Message = strFormat("unresolved import %s.%s",
                                 F.Decl->ImportModule.c_str(),
                                 F.Decl->ImportName.c_str());
      return false;
    }
    if (!(H->Type == *F.Type)) {
      if (Err)
        Err->Message = strFormat("import %s.%s signature mismatch",
                                 F.Decl->ImportModule.c_str(),
                                 F.Decl->ImportName.c_str());
      return false;
    }
    F.Host = H;
  }
  return true;
}

std::unique_ptr<Instance> wisp::instantiate(const Module &M,
                                            const HostRegistry &Hosts,
                                            GcHeap *Heap, WasmError *Err) {
  assert(M.Validated && "instantiating unvalidated module");
  auto Inst = std::make_unique<Instance>();
  Inst->M = &M;
  Inst->Heap = Heap;

  if (!bindFunctions(*Inst, M, Hosts, Err))
    return nullptr;
  if (!initGlobals(M, Hosts, Inst->Globals, Err))
    return nullptr;

  // Memory.
  if (!M.Memories.empty()) {
    if (!Inst->Memory.init(M.Memories[0].Lim)) {
      if (Err)
        Err->Message = strFormat(
            "linear memory allocation of %u pages failed: %s",
            M.Memories[0].Lim.Min, strerror(errno));
      return nullptr;
    }
    Inst->HasMemory = true;
  }

  // Tables.
  for (const TableDecl &T : M.Tables) {
    Table RT;
    RT.Lim = T.Lim;
    RT.Elems.assign(T.Lim.Min, 0);
    Inst->Tables.push_back(std::move(RT));
  }

  // Element segments.
  for (const ElemSegment &E : M.Elems) {
    Table &T = Inst->Tables[E.TableIdx];
    uint64_t Off = evalInit(Inst->Globals, E.Offset) & 0xffffffff;
    if (Off + E.FuncIndices.size() > T.Elems.size()) {
      if (Err)
        Err->Message = "element segment out of bounds";
      return nullptr;
    }
    for (size_t I = 0; I < E.FuncIndices.size(); ++I)
      T.Elems[Off + I] = uint64_t(E.FuncIndices[I]) + 1;
  }

  // Data segments.
  for (const DataSegment &D : M.Datas) {
    uint64_t Off = evalInit(Inst->Globals, D.Offset) & 0xffffffff;
    if (Off + D.Bytes.size() > Inst->Memory.byteSize()) {
      if (Err)
        Err->Message = "data segment out of bounds";
      return nullptr;
    }
    if (D.Bytes.empty())
      continue; // Bounds-checked above; nothing to copy (and an empty
                // vector's data() may be null, which memcpy must not see).
    memcpy(Inst->Memory.data() + Off, D.Bytes.data(), D.Bytes.size());
    Inst->Memory.noteWrite(Off + D.Bytes.size());
  }

  return Inst;
}

//===----------------------------------------------------------------------===//
// Instance images
//===----------------------------------------------------------------------===//

std::unique_ptr<InstanceImage> wisp::buildInstanceImage(const Module &M,
                                                        WasmError *Err) {
  assert(M.Validated && "imaging unvalidated module");
  // Imported globals resolve at link time against a specific registry, so
  // their values (and anything an offset expression could read through
  // them) are not a property of the module alone. Such modules take the
  // legacy path; pooling keys off the image, so they are also not pooled.
  for (const GlobalDecl &G : M.Globals)
    if (G.Imported) {
      if (Err)
        Err->Message = "module imports globals; not imageable";
      return nullptr;
    }

  auto Img = std::make_unique<InstanceImage>();

  // Globals: evaluate initializers in index order (validation guarantees
  // global.get only references earlier immutable globals).
  Img->GlobalImage.resize(M.Globals.size());
  for (size_t I = 0; I < M.Globals.size(); ++I) {
    const GlobalDecl &G = M.Globals[I];
    Global &RG = Img->GlobalImage[I];
    RG.Type = G.Type;
    RG.Mutable = G.Mutable;
    RG.Bits = evalInit(Img->GlobalImage, G.Init);
  }

  // Tables with element segments pre-resolved.
  for (const TableDecl &T : M.Tables) {
    Img->TableLimits.push_back(T.Lim);
    Img->TableImages.emplace_back(T.Lim.Min, 0);
  }
  for (const ElemSegment &E : M.Elems) {
    std::vector<uint64_t> &T = Img->TableImages[E.TableIdx];
    uint64_t Off = evalInit(Img->GlobalImage, E.Offset) & 0xffffffff;
    if (Off + E.FuncIndices.size() > T.size()) {
      if (Err)
        Err->Message = "element segment out of bounds";
      return nullptr;
    }
    for (size_t I = 0; I < E.FuncIndices.size(); ++I)
      T[Off + I] = uint64_t(E.FuncIndices[I]) + 1;
  }

  // Memory: keep the data segments as sparse, pre-evaluated runs in
  // application order (later segments overwrite earlier ones byte-for-
  // byte, exactly like segment replay). A dense prefix sized to the
  // highest segment end would cost megabytes of cached zeros for modules
  // that place small segments at high offsets, plus a full-prefix memcpy
  // on every image instantiation.
  if (!M.Memories.empty()) {
    Img->HasMemory = true;
    Img->MemLimits = M.Memories[0].Lim;
  }
  uint64_t MemBytes = uint64_t(Img->HasMemory ? Img->MemLimits.Min : 0) *
                      WasmPageSize;
  for (const DataSegment &D : M.Datas) {
    uint64_t Off = evalInit(Img->GlobalImage, D.Offset) & 0xffffffff;
    if (Off + D.Bytes.size() > MemBytes) {
      if (Err)
        Err->Message = "data segment out of bounds";
      return nullptr;
    }
    if (!D.Bytes.empty())
      Img->MemRuns.push_back({Off, D.Bytes});
  }

  return Img;
}

std::unique_ptr<Instance> wisp::instantiateFromImage(const Module &M,
                                                     const InstanceImage &Img,
                                                     const HostRegistry &Hosts,
                                                     GcHeap *Heap,
                                                     WasmError *Err) {
  assert(M.Validated && "instantiating unvalidated module");
  auto Inst = std::make_unique<Instance>();
  Inst->M = &M;
  Inst->Heap = Heap;

  if (!bindFunctions(*Inst, M, Hosts, Err))
    return nullptr;

  Inst->Globals = Img.GlobalImage;

  if (Img.HasMemory) {
    if (!Inst->Memory.initFromImage(Img.MemLimits, Img.MemRuns)) {
      if (Err)
        Err->Message = strFormat(
            "linear memory allocation of %u pages failed: %s",
            Img.MemLimits.Min, strerror(errno));
      return nullptr;
    }
    Inst->HasMemory = true;
  }

  Inst->Tables.resize(Img.TableImages.size());
  for (size_t I = 0; I < Img.TableImages.size(); ++I) {
    Inst->Tables[I].Lim = Img.TableLimits[I];
    Inst->Tables[I].Elems = Img.TableImages[I];
  }

  return Inst;
}

bool LinearMemory::reimage(const Limits &L, const std::vector<MemRun> &Runs) {
  Lim = L;
  size_t Want = size_t(L.Min) * WasmPageSize;
  if (Size > Want) {
    // Grown memory shrinks back in place; capacity is retained (no
    // allocation on the grow-then-recycle path) and the stale bytes
    // beyond the new extent are scrubbed by the next re-extension.
    Size = Want;
  } else if (Size < Want) {
    DirtyHi = Size; // Conservative: whole old extent may be dirty.
    // Re-extension can genuinely fail (a pooled memory only retains the
    // capacity it last had; the image minimum may be larger after a
    // shrink, and the OS may refuse the growth). Report it — the pooled
    // instance is unusable and must be destroyed, not handed out.
    if (!extendZeroed(Want))
      return false;
  }
  uint64_t Dirty = std::min<uint64_t>(DirtyHi, Want);
  // Repair page by page within the dirty prefix: compare against the
  // expected initial content and rewrite only pages that changed —
  // memcmp of a clean page is ~4x cheaper than unconditionally storing
  // it. Pages no run touches are expected all-zero; pages under a run
  // are checked against a scratch page assembled from the intersecting
  // run slices (allocated once, only if such a page is dirty).
  std::vector<uint8_t> Scratch;
  for (uint64_t P = 0; P < Dirty; P += WasmPageSize) {
    uint64_t N = std::min<uint64_t>(WasmPageSize, Want - P);
    uint8_t *Dst = Buf + P;
    bool Touched = false;
    for (const MemRun &R : Runs)
      if (R.Off < P + N && R.Off + R.Bytes.size() > P) {
        Touched = true;
        break;
      }
    if (!Touched) {
      bool Clean = Dst[0] == 0 && memcmp(Dst, Dst + 1, N - 1) == 0;
      if (!Clean)
        memset(Dst, 0, N);
      continue;
    }
    Scratch.assign(WasmPageSize, 0);
    for (const MemRun &R : Runs) {
      uint64_t REnd = R.Off + R.Bytes.size();
      if (R.Off >= P + N || REnd <= P)
        continue;
      uint64_t From = std::max<uint64_t>(R.Off, P);
      uint64_t To = std::min<uint64_t>(REnd, P + N);
      memcpy(Scratch.data() + (From - P), R.Bytes.data() + (From - R.Off),
             To - From);
    }
    if (memcmp(Dst, Scratch.data(), N) != 0)
      memcpy(Dst, Scratch.data(), N);
  }
  DirtyHi = 0;
  return true;
}

std::unique_ptr<Instance> wisp::reimageInstance(std::unique_ptr<Instance> Inst,
                                                const Module &M,
                                                const InstanceImage &Img,
                                                const HostRegistry &Hosts,
                                                GcHeap *Heap, WasmError *Err) {
  assert(Inst && Inst->M == &M && "re-imaging an instance of another module");
  Inst->Heap = Heap;

  // Re-bind imports against the new engine's registry: the retiring
  // engine's HostFunc storage is gone, so stale Host pointers must never
  // survive a recycle. On failure the instance is destroyed with us —
  // a partially re-imaged instance never escapes.
  if (!bindFunctions(*Inst, M, Hosts, Err))
    return nullptr;

  // Globals/tables: assign from the image, reusing existing capacity.
  Inst->Globals = Img.GlobalImage;
  Inst->Tables.resize(Img.TableImages.size());
  for (size_t I = 0; I < Img.TableImages.size(); ++I) {
    Inst->Tables[I].Lim = Img.TableLimits[I];
    Inst->Tables[I].Elems = Img.TableImages[I];
  }

  if (Img.HasMemory) {
    if (!Inst->Memory.reimage(Img.MemLimits, Img.MemRuns)) {
      if (Err)
        Err->Message = strFormat(
            "re-extending pooled memory to %u pages failed: %s",
            Img.MemLimits.Min, strerror(errno));
      return nullptr; // Consumes (destroys) the half-repaired instance.
    }
    Inst->HasMemory = true;
  } else {
    Inst->HasMemory = false;
  }

  return Inst;
}
