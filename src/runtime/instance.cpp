//===- runtime/instance.cpp - module instantiation -------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "runtime/instance.h"

#include "support/format.h"

using namespace wisp;

static uint64_t evalInit(const Instance &I, const InitExpr &E) {
  switch (E.K) {
  case InitExpr::Const:
    return E.Bits;
  case InitExpr::GlobalGet:
    return I.Globals[E.Index].Bits;
  case InitExpr::RefNull:
    return 0;
  case InitExpr::RefFuncIdx:
    return uint64_t(E.Index) + 1;
  }
  return 0;
}

std::unique_ptr<Instance> wisp::instantiate(const Module &M,
                                            const HostRegistry &Hosts,
                                            GcHeap *Heap, WasmError *Err) {
  assert(M.Validated && "instantiating unvalidated module");
  auto Inst = std::make_unique<Instance>();
  Inst->M = &M;
  Inst->Heap = Heap;

  // Functions: bind imports.
  Inst->Funcs.resize(M.Funcs.size());
  for (size_t I = 0; I < M.Funcs.size(); ++I) {
    FuncInstance &F = Inst->Funcs[I];
    F.Decl = &M.Funcs[I];
    F.Type = &M.Types[F.Decl->TypeIdx];
    F.Inst = Inst.get();
    if (!F.Decl->Imported)
      continue;
    const HostFunc *H =
        Hosts.find(F.Decl->ImportModule, F.Decl->ImportName);
    if (!H) {
      if (Err)
        Err->Message = strFormat("unresolved import %s.%s",
                                 F.Decl->ImportModule.c_str(),
                                 F.Decl->ImportName.c_str());
      return nullptr;
    }
    if (!(H->Type == *F.Type)) {
      if (Err)
        Err->Message = strFormat("import %s.%s signature mismatch",
                                 F.Decl->ImportModule.c_str(),
                                 F.Decl->ImportName.c_str());
      return nullptr;
    }
    F.Host = H;
  }

  // Globals (imported globals get default values unless a host binding
  // mechanism is added; the paper's experiments do not need them).
  Inst->Globals.resize(M.Globals.size());
  for (size_t I = 0; I < M.Globals.size(); ++I) {
    const GlobalDecl &G = M.Globals[I];
    Global &RG = Inst->Globals[I];
    RG.Type = G.Type;
    RG.Mutable = G.Mutable;
    RG.Bits = G.Imported ? 0 : evalInit(*Inst, G.Init);
  }

  // Memory.
  if (!M.Memories.empty()) {
    Inst->Memory.init(M.Memories[0].Lim);
    Inst->HasMemory = true;
  }

  // Tables.
  for (const TableDecl &T : M.Tables) {
    Table RT;
    RT.Lim = T.Lim;
    RT.Elems.assign(T.Lim.Min, 0);
    Inst->Tables.push_back(std::move(RT));
  }

  // Element segments.
  for (const ElemSegment &E : M.Elems) {
    Table &T = Inst->Tables[E.TableIdx];
    uint64_t Off = evalInit(*Inst, E.Offset) & 0xffffffff;
    if (Off + E.FuncIndices.size() > T.Elems.size()) {
      if (Err)
        Err->Message = "element segment out of bounds";
      return nullptr;
    }
    for (size_t I = 0; I < E.FuncIndices.size(); ++I)
      T.Elems[Off + I] = uint64_t(E.FuncIndices[I]) + 1;
  }

  // Data segments.
  for (const DataSegment &D : M.Datas) {
    uint64_t Off = evalInit(*Inst, D.Offset) & 0xffffffff;
    if (Off + D.Bytes.size() > Inst->Memory.byteSize()) {
      if (Err)
        Err->Message = "data segment out of bounds";
      return nullptr;
    }
    memcpy(Inst->Memory.data() + Off, D.Bytes.data(), D.Bytes.size());
  }

  return Inst;
}
