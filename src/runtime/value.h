//===- runtime/value.h - runtime value representation -----------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Boxed runtime values used at the host API boundary (invoking exports,
/// host functions, probes). Inside the value stack, values are raw 64-bit
/// slots with a separate tag lane; see runtime/valuestack.h.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_RUNTIME_VALUE_H
#define WISP_RUNTIME_VALUE_H

#include "wasm/types.h"

#include <cstring>
#include <string>

namespace wisp {

/// A typed runtime value. Reference values store an object id in Bits
/// (0 = null; externref ids index the GC heap; funcref ids are
/// function index + 1).
struct Value {
  uint64_t Bits = 0;
  ValType Type = ValType::I32;

  static Value makeI32(int32_t V) {
    return {uint64_t(uint32_t(V)), ValType::I32};
  }
  static Value makeI64(int64_t V) { return {uint64_t(V), ValType::I64}; }
  static Value makeF32(float V) {
    uint32_t B;
    memcpy(&B, &V, 4);
    return {B, ValType::F32};
  }
  static Value makeF64(double V) {
    uint64_t B;
    memcpy(&B, &V, 8);
    return {B, ValType::F64};
  }
  static Value makeExternRef(uint64_t Id) { return {Id, ValType::ExternRef}; }
  static Value makeFuncRef(uint64_t Id) { return {Id, ValType::FuncRef}; }

  int32_t asI32() const {
    assert(Type == ValType::I32 && "not an i32");
    return int32_t(uint32_t(Bits));
  }
  int64_t asI64() const {
    assert(Type == ValType::I64 && "not an i64");
    return int64_t(Bits);
  }
  float asF32() const {
    assert(Type == ValType::F32 && "not an f32");
    float V;
    uint32_t B = uint32_t(Bits);
    memcpy(&V, &B, 4);
    return V;
  }
  double asF64() const {
    assert(Type == ValType::F64 && "not an f64");
    double V;
    memcpy(&V, &Bits, 8);
    return V;
  }
  bool isNullRef() const { return isRefType(Type) && Bits == 0; }

  bool operator==(const Value &O) const {
    return Type == O.Type && Bits == O.Bits;
  }

  /// Renders e.g. "i32:42" for test failure messages.
  std::string toString() const;
};

/// Default (zero) value of a given type.
inline Value defaultValue(ValType T) { return {0, T}; }

} // namespace wisp

#endif // WISP_RUNTIME_VALUE_H
