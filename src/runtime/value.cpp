//===- runtime/value.cpp - runtime value helpers ---------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "runtime/value.h"

#include "support/format.h"

using namespace wisp;

std::string Value::toString() const {
  switch (Type) {
  case ValType::I32:
    return strFormat("i32:%d", asI32());
  case ValType::I64:
    return strFormat("i64:%lld", (long long)asI64());
  case ValType::F32:
    return strFormat("f32:%g (0x%08x)", double(asF32()), uint32_t(Bits));
  case ValType::F64:
    return strFormat("f64:%g (0x%016llx)", asF64(), (unsigned long long)Bits);
  case ValType::FuncRef:
    return strFormat("funcref:%llu", (unsigned long long)Bits);
  case ValType::ExternRef:
    return strFormat("externref:%llu", (unsigned long long)Bits);
  case ValType::Bottom:
    break;
  }
  return "<bad value>";
}
