//===- runtime/numerics.h - Wasm numeric semantics --------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for WebAssembly numeric operator semantics:
/// trapping integer division, shifts with modular counts, bit counting,
/// IEEE min/max/nearest with Wasm NaN rules, and the four families of
/// float->int truncation (trapping and saturating). Shared by the
/// interpreter, the machine-code executor and the compilers' constant
/// folders so all tiers agree bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_RUNTIME_NUMERICS_H
#define WISP_RUNTIME_NUMERICS_H

#include "runtime/trap.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace wisp {

// --- Bit casting helpers ---
inline float bitsToF32(uint32_t B) {
  float V;
  memcpy(&V, &B, 4);
  return V;
}
inline uint32_t f32ToBits(float V) {
  uint32_t B;
  memcpy(&B, &V, 4);
  return B;
}
inline double bitsToF64(uint64_t B) {
  double V;
  memcpy(&V, &B, 8);
  return V;
}
inline uint64_t f64ToBits(double V) {
  uint64_t B;
  memcpy(&B, &V, 8);
  return B;
}

// --- Integer division (trapping) ---
inline TrapReason divS32(int32_t A, int32_t B, int32_t *Out) {
  if (B == 0)
    return TrapReason::DivByZero;
  if (A == std::numeric_limits<int32_t>::min() && B == -1)
    return TrapReason::IntOverflow;
  *Out = A / B;
  return TrapReason::None;
}
inline TrapReason divU32(uint32_t A, uint32_t B, uint32_t *Out) {
  if (B == 0)
    return TrapReason::DivByZero;
  *Out = A / B;
  return TrapReason::None;
}
inline TrapReason remS32(int32_t A, int32_t B, int32_t *Out) {
  if (B == 0)
    return TrapReason::DivByZero;
  if (A == std::numeric_limits<int32_t>::min() && B == -1) {
    *Out = 0;
    return TrapReason::None;
  }
  *Out = A % B;
  return TrapReason::None;
}
inline TrapReason remU32(uint32_t A, uint32_t B, uint32_t *Out) {
  if (B == 0)
    return TrapReason::DivByZero;
  *Out = A % B;
  return TrapReason::None;
}
inline TrapReason divS64(int64_t A, int64_t B, int64_t *Out) {
  if (B == 0)
    return TrapReason::DivByZero;
  if (A == std::numeric_limits<int64_t>::min() && B == -1)
    return TrapReason::IntOverflow;
  *Out = A / B;
  return TrapReason::None;
}
inline TrapReason divU64(uint64_t A, uint64_t B, uint64_t *Out) {
  if (B == 0)
    return TrapReason::DivByZero;
  *Out = A / B;
  return TrapReason::None;
}
inline TrapReason remS64(int64_t A, int64_t B, int64_t *Out) {
  if (B == 0)
    return TrapReason::DivByZero;
  if (A == std::numeric_limits<int64_t>::min() && B == -1) {
    *Out = 0;
    return TrapReason::None;
  }
  *Out = A % B;
  return TrapReason::None;
}
inline TrapReason remU64(uint64_t A, uint64_t B, uint64_t *Out) {
  if (B == 0)
    return TrapReason::DivByZero;
  *Out = A % B;
  return TrapReason::None;
}

// --- Shifts and rotates (counts are modular) ---
inline uint32_t shl32(uint32_t A, uint32_t N) { return A << (N & 31); }
inline uint32_t shrU32(uint32_t A, uint32_t N) { return A >> (N & 31); }
inline int32_t shrS32(int32_t A, uint32_t N) { return A >> (N & 31); }
inline uint32_t rotl32(uint32_t A, uint32_t N) { return std::rotl(A, int(N & 31)); }
inline uint32_t rotr32(uint32_t A, uint32_t N) { return std::rotr(A, int(N & 31)); }
inline uint64_t shl64(uint64_t A, uint64_t N) { return A << (N & 63); }
inline uint64_t shrU64(uint64_t A, uint64_t N) { return A >> (N & 63); }
inline int64_t shrS64(int64_t A, uint64_t N) { return A >> (N & 63); }
inline uint64_t rotl64(uint64_t A, uint64_t N) { return std::rotl(A, int(N & 63)); }
inline uint64_t rotr64(uint64_t A, uint64_t N) { return std::rotr(A, int(N & 63)); }

// --- Bit counting ---
inline uint32_t clz32(uint32_t A) { return uint32_t(std::countl_zero(A)); }
inline uint32_t ctz32(uint32_t A) { return uint32_t(std::countr_zero(A)); }
inline uint32_t popcnt32(uint32_t A) { return uint32_t(std::popcount(A)); }
inline uint64_t clz64(uint64_t A) { return uint64_t(std::countl_zero(A)); }
inline uint64_t ctz64(uint64_t A) { return uint64_t(std::countr_zero(A)); }
inline uint64_t popcnt64(uint64_t A) { return uint64_t(std::popcount(A)); }

// --- Float min/max/nearest with Wasm NaN semantics ---

/// Canonicalizes NaN results of float arithmetic to the positive quiet
/// NaN. The spec leaves arithmetic NaN bits nondeterministic, but this
/// engine's differential claim is stronger: every tier computes
/// bit-identical results. Without this, `a + b` with a NaN operand
/// propagates whichever operand the host compiler placed first, and the
/// interpreter and JIT executor are separate translation units that can
/// (and do) pick different orders — even the NaN *sign* then diverges.
template <typename T> inline T canonNaN(T X) {
  return std::isnan(X) ? std::numeric_limits<T>::quiet_NaN() : X;
}

template <typename T> inline T wasmMin(T A, T B) {
  if (std::isnan(A) || std::isnan(B))
    return std::numeric_limits<T>::quiet_NaN();
  if (A == 0 && B == 0) // Distinguish -0 from +0.
    return std::signbit(A) ? A : B;
  return A < B ? A : B;
}
template <typename T> inline T wasmMax(T A, T B) {
  if (std::isnan(A) || std::isnan(B))
    return std::numeric_limits<T>::quiet_NaN();
  if (A == 0 && B == 0)
    return std::signbit(A) ? B : A;
  return A > B ? A : B;
}
/// Round-to-nearest, ties to even.
template <typename T> inline T wasmNearest(T A) {
  if (std::isnan(A) || std::isinf(A) || A == 0)
    return A;
  T R = std::nearbyint(A); // Default FP env rounds to nearest-even.
  if (R == 0 && std::signbit(A))
    return -R == 0 ? T(-0.0) : R;
  return R;
}

// --- Trapping float -> int truncation ---
// The bound checks follow the spec: the truncated value must be
// representable in the target type.
template <typename From, typename To>
inline TrapReason truncChecked(From A, To *Out) {
  if (std::isnan(A))
    return TrapReason::InvalidConversion;
  From T = std::trunc(A);
  // Compare against exclusive bounds expressed exactly in From.
  constexpr bool Signed = std::numeric_limits<To>::is_signed;
  constexpr int Bits = sizeof(To) * 8;
  From Lo, Hi;
  if (Signed) {
    Lo = From(-std::ldexp(1.0, Bits - 1)) - From(1);
    Hi = From(std::ldexp(1.0, Bits - 1));
  } else {
    Lo = From(-1);
    Hi = From(std::ldexp(1.0, Bits));
  }
  if (!(T > Lo && T < Hi)) {
    // Signed lower bound -2^(Bits-1) is exactly representable; T > Lo uses
    // Lo-1 semantics via the subtraction above for floats without exact
    // representation; re-check the exact edge.
    if (Signed && T == From(-std::ldexp(1.0, Bits - 1))) {
      *Out = std::numeric_limits<To>::min();
      return TrapReason::None;
    }
    return TrapReason::IntOverflow;
  }
  *Out = To(T);
  return TrapReason::None;
}

// --- Saturating float -> int truncation ---
template <typename From, typename To> inline To truncSat(From A) {
  if (std::isnan(A))
    return To(0);
  From T = std::trunc(A);
  constexpr bool Signed = std::numeric_limits<To>::is_signed;
  constexpr int Bits = sizeof(To) * 8;
  if (Signed) {
    From Lo = From(-std::ldexp(1.0, Bits - 1));
    From Hi = From(std::ldexp(1.0, Bits - 1));
    if (T <= Lo)
      return std::numeric_limits<To>::min();
    if (T >= Hi)
      return std::numeric_limits<To>::max();
  } else {
    if (T <= From(-1))
      return To(0);
    From Hi = From(std::ldexp(1.0, Bits));
    if (T >= Hi)
      return std::numeric_limits<To>::max();
  }
  return To(T);
}

} // namespace wisp

#endif // WISP_RUNTIME_NUMERICS_H
