//===- runtime/gcheap.h - host object heap with mark-sweep GC ---*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small non-moving mark-sweep heap of host objects referenced from Wasm
/// as externref values. Roots are found by scanning thread value stacks —
/// via value tags or via stackmaps depending on the engine configuration —
/// which is exactly the design axis the paper evaluates (§IV.C).
///
//===----------------------------------------------------------------------===//

#ifndef WISP_RUNTIME_GCHEAP_H
#define WISP_RUNTIME_GCHEAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wisp {

/// A host object: an opaque payload plus references to other host objects
/// (so collection exercises transitive marking). Identified by a stable
/// nonzero id; externref bits hold the id (0 = null).
struct HostObject {
  uint64_t Payload = 0;
  std::vector<uint64_t> Refs; ///< Ids of referenced host objects.
  bool Marked = false;
  bool Live = false;
};

/// Non-moving mark-sweep heap.
class GcHeap {
public:
  /// Allocates an object; returns its nonzero id.
  uint64_t allocate(uint64_t Payload);

  /// Returns the object for a nonzero id; asserts on dangling ids.
  HostObject &object(uint64_t Id);
  const HostObject &object(uint64_t Id) const;

  /// True if the id denotes a live object.
  bool isLive(uint64_t Id) const;

  /// Runs a full mark-sweep collection from the given root ids.
  /// Returns the number of objects freed.
  size_t collect(const std::vector<uint64_t> &Roots);

  size_t liveCount() const { return LiveCount; }
  size_t collections() const { return Collections; }
  size_t totalAllocated() const { return TotalAllocated; }

private:
  std::vector<HostObject> Objects; ///< Index = id - 1.
  std::vector<uint64_t> FreeList;
  size_t LiveCount = 0;
  size_t Collections = 0;
  size_t TotalAllocated = 0;
};

} // namespace wisp

#endif // WISP_RUNTIME_GCHEAP_H
