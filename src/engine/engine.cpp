//===- engine/engine.cpp - the wisp engine facade ---------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "engine/engine.h"

#include "analysis/analysis.h"
#include "baselines/copypatch.h"
#include "baselines/twopass.h"
#include "cache/diskcache.h"
#include "interp/interpreter.h"
#include "opt/optcompiler.h"
#include "runtime/watchdog.h"
#include "support/clock.h"
#include "support/format.h"
#include "verify/verifier.h"
#include "wasm/reader.h"
#include "wasm/validator.h"

#include <cstdlib>

using namespace wisp;

Engine::Engine(EngineConfig CfgIn, CompileCache *CacheIn, InstancePool *PoolIn)
    : Cfg(std::move(CfgIn)) {
  Cache = Cfg.UseCompileCache ? (CacheIn ? CacheIn : &CompileCache::process())
                              : nullptr;
  // The persistent second level sits behind the in-process cache (it is
  // consulted from inside the cache's miss path), so it requires one. A
  // directory that cannot be opened degrades to uncached operation —
  // never a load failure.
  if (Cache && Cfg.UseDiskCache) {
    std::string Dir = Cfg.DiskCacheDir;
    if (Dir.empty())
      if (const char *Env = getenv("WISP_CACHE_DIR"))
        Dir = Env;
    if (!Dir.empty())
      Disk = DiskCache::open(Dir);
  }
  if (Cfg.PoolInstances) {
    if (PoolIn) {
      Pool = PoolIn;
    } else {
      OwnedPool = std::make_unique<InstancePool>();
      Pool = OwnedPool.get();
    }
  }
  // Governance: any per-invocation limit forces fuel-check emission into
  // every compiled tier (pure-JIT configurations would otherwise never
  // observe a deadline or cancellation inside a loop) and threaded-IR fuel
  // gates; invoke() arms the per-job state.
  if (Cfg.governed())
    Cfg.Opts.EmitFuelChecks = true;
  T = std::make_unique<Thread>(Cfg.StackSlots, Cfg.wantsTagLane());
  T->Hooks = this;
  if (Cfg.MaxCallDepth)
    T->MaxFrames = Cfg.MaxCallDepth;
  T->Interruptible = Cfg.DeadlineMs > 0 || Cfg.Interruptible;
  T->UseThreaded = Cfg.ThreadedDispatch &&
                   (Cfg.Mode == ExecMode::Interp || Cfg.Mode == ExecMode::Tiered);
  if (Cfg.Mode == ExecMode::Tiered)
    T->TierUpThreshold = Cfg.TierUpThreshold;
  else if (Cfg.Mode == ExecMode::JitLazy)
    T->TierUpThreshold = 1; // Compile on first call.
  // Copy-and-patch generates its templates at engine startup (the paper
  // observes exactly this cost in WasmNow's SQ region).
  if (Cfg.Compiler == CompilerKind::CopyPatch)
    warmCopyPatchTemplates();
}

Engine::~Engine() = default;

InstancePool::Entry InstancePool::take(const Module *M) {
  auto It = Map.find(M);
  if (It == Map.end() || It->second.empty()) {
    ++T.Misses;
    return {};
  }
  Entry E = std::move(It->second.back());
  It->second.pop_back();
  --Count;
  ++T.Hits;
  return E;
}

void InstancePool::put(std::shared_ptr<const Module> M,
                       std::shared_ptr<const InstanceImage> Image,
                       std::unique_ptr<Instance> Inst) {
  assert(M && Image && Inst && "pooling requires module, image, instance");
  std::vector<Entry> &V = Map[M.get()];
  if (V.size() >= MaxPerModule) {
    ++T.Dropped;
    return; // Inst destroyed here; memory stays bounded.
  }
  V.push_back(Entry{std::move(M), std::move(Image), std::move(Inst)});
  ++Count;
  ++T.Returned;
}

bool Engine::recycle(std::unique_ptr<LoadedModule> LM) {
  if (!LM)
    return false;
  if (Current == LM.get())
    Current = nullptr;
  // Pool invariants: only imaged instances can be re-imaged; a probed
  // engine's instances may carry instrumentation side effects that must
  // not leak into an un-instrumented load; live GC objects may reference
  // the instance (externrefs escape through results and probes), so a
  // non-empty heap pins its instances out of the pool.
  if (!Pool || !LM->Image || !LM->Inst)
    return false;
  if (Probes.anyProbes())
    return false;
  if (Heap.liveCount() > 0)
    return false;
  Pool->put(LM->M, LM->Image, std::move(LM->Inst));
  return true;
}

std::unique_ptr<MCode> Engine::compileRaw(const Module &M, const FuncDecl &F,
                                          const CompilerOptions &Opts,
                                          CompilerKind Kind) {
  const ProbeSiteOracle *Oracle = Probes.anyProbes() ? &Probes : nullptr;
  switch (Kind) {
  case CompilerKind::SinglePass:
    return compileFunction(M, F, Opts, Oracle);
  case CompilerKind::TwoPass:
    return compileTwoPass(M, F, Opts, Oracle);
  case CompilerKind::CopyPatch:
    return compileCopyPatch(M, F, Opts, Oracle);
  case CompilerKind::Optimizing:
    return compileOptimizing(M, F, Opts, Oracle);
  }
  return nullptr;
}

namespace {

/// Applies an artifact's patch-point table against the engine's probe
/// registry, resolving every engine-absolute operand the emitters left
/// symbolic (machine/isa.h PatchKind). Runs after verification — the
/// verifier checks the *relocatable* form, including that every CntInc is
/// still unbound — and before the artifact is shared or installed. Probed
/// bodies are the only ones with patch points, and they bypass the compile
/// cache, so a bound artifact is always private to this engine.
void bindPatchPoints(MCode &Code, const ProbeRegistry &Probes) {
  for (const PatchPoint &P : Code.Patches) {
    switch (P.Kind) {
    case PatchKind::CounterCell:
      Code.Insts[P.Pc].Imm = int64_t(
          uintptr_t(Probes.counterAddr(Code.FuncIndex, uint32_t(P.Operand))));
      break;
    }
  }
}

} // namespace

std::unique_ptr<MCode> Engine::compileOne(const Module &M,
                                          const FuncDecl &F) {
  std::unique_ptr<MCode> Code = compileRaw(M, F, Cfg.Opts, Cfg.Compiler);
  if (Code)
    bindPatchPoints(*Code, Probes);
  return Code;
}

bool Engine::verifyMCodeArtifact(const Module &M, const FuncDecl &F,
                                 const MCode &Code, CompilerKind Kind) {
  if (!Cfg.VerifyArtifacts)
    return true;
  VerifyScope Scope = Kind == CompilerKind::Optimizing
                          ? VerifyScope::optimizing()
                          : VerifyScope::baseline();
  // Tighten with per-function analyzer facts: the reachable-only operand-
  // stack bound upgrades the frame-size floor and adds argument-window
  // bounds on every tier — the optimizing one included, which previously
  // got purely structural checks.
  Scope = Scope.withFacts(analyzeFunction(M, F).StackBound);
  VerifyReport R = verifyMachineCode(M, F, Code, Scope);
  if (R.ok())
    return true;
  VerifyError = R.text();
  return false;
}

bool Engine::verifyThreadedArtifact(const Module &M, const FuncDecl &F,
                                    const ThreadedCode &TC,
                                    const FuncInstance *Func) {
  if (!Cfg.VerifyArtifacts)
    return true;
  VerifyReport R = verifyThreadedCode(
      M, F, TC, [Func](uint32_t Ip) { return Func->probedAt(Ip); });
  if (R.ok())
    return true;
  VerifyError = R.text();
  return false;
}

const MCode *Engine::compileShared(LoadedModule &LM, const FuncDecl &F,
                                   const CompilerOptions &Opts,
                                   CompilerKind Kind) {
  // Verification happens inside the builder, i.e. exactly once per cache
  // insert: a rejected artifact comes back null and is never cached (the
  // cache never stores failures), and cache hits pay nothing. That is
  // sound because VerifyArtifacts is part of the cache key — a verify-on
  // engine can only hit entries that were verified at insert time.
  bool BuiltHere = false;
  auto Build = [&]() -> std::shared_ptr<const MCode> {
    BuiltHere = true;
    std::unique_ptr<MCode> Built = compileRaw(*LM.M, F, Opts, Kind);
    if (Built && !verifyMCodeArtifact(*LM.M, F, *Built, Kind))
      return nullptr;
    // Bind after verification (which checks the relocatable form) and
    // before sharing. On the cached path the table is empty — probed
    // bodies bypass the cache — so cached artifacts stay relocatable.
    if (Built)
      bindPatchPoints(*Built, Probes);
    return std::shared_ptr<const MCode>(std::move(Built));
  };
  std::shared_ptr<const MCode> C;
  if (cacheUsable()) {
    if (!LM.ContextDigest)
      LM.ContextDigest = moduleContextDigest(*LM.M);
    CacheKey K = codeCacheKey(LM.ContextDigest, *LM.M, F, Kind, Opts,
                              Cfg.VerifyArtifacts);
    // The persistent second level: the process cache consults it on a
    // miss, before building, and offers fresh builds back for publication.
    // Disk bytes crossed a process boundary, so they are re-verified here
    // on every load — unconditionally, even when Cfg.VerifyArtifacts is
    // off (the header checksum proves integrity, not provenance). A
    // rejected file is deleted and the caller falls through to a clean
    // rebuild; it is never served.
    std::function<std::shared_ptr<const MCode>(uint64_t *)> DiskLoad;
    std::function<void(const MCode &, uint64_t)> DiskStore;
    if (Disk) {
      DiskLoad = [&, K](uint64_t *BuildNs) -> std::shared_ptr<const MCode> {
        std::vector<uint8_t> Payload;
        if (!Disk->load(K, DiskArtifactKind::Code, &Payload, BuildNs,
                        &DiskNote))
          return nullptr;
        std::shared_ptr<MCode> Code = deserializeMCode(Payload);
        if (!Code) {
          Disk->removeRejected(K, DiskArtifactKind::Code);
          DiskNote = "disk artifact rejected (deserialization): " +
                     Disk->path(K, DiskArtifactKind::Code);
          return nullptr;
        }
        VerifyScope Scope = Kind == CompilerKind::Optimizing
                                ? VerifyScope::optimizing()
                                : VerifyScope::baseline();
        Scope = Scope.withFacts(analyzeFunction(*LM.M, F).StackBound);
        VerifyReport R = verifyMachineCode(*LM.M, F, *Code, Scope);
        if (!R.ok()) {
          Disk->removeRejected(K, DiskArtifactKind::Code);
          DiskNote = "disk artifact rejected (verifier): " +
                     Disk->path(K, DiskArtifactKind::Code) + "\n" + R.text();
          return nullptr;
        }
        // The admitted artifact is relocatable by verifier rule (every
        // CntInc unbound); bind it like a fresh build. cacheUsable ⇒ no
        // probes ⇒ the table is empty today, but the ordering is load →
        // verify → bind either way.
        bindPatchPoints(*Code, Probes);
        return Code;
      };
      DiskStore = [&, K](const MCode &Code, uint64_t BuildNs) {
        Disk->store(K, DiskArtifactKind::Code, serializeMCode(Code), BuildNs);
      };
    }
    C = Cache->getOrCompile(K, Build, &LM.Stats, DiskLoad, DiskStore);
    // A waiter served a failed in-flight build got null without running the
    // builder, so this engine's VerifyError is still empty. Compilation and
    // verification are deterministic: rebuild locally to reproduce the
    // diagnostic (rejections are rare, so this costs nothing in steady
    // state; the cache never stores failures either way).
    if (!C && !BuiltHere)
      C = Build();
  } else {
    C = Build();
  }
  if (!C)
    return nullptr;
  LM.Codes.push_back(C);
  return C.get();
}

std::unique_ptr<LoadedModule> Engine::load(std::vector<uint8_t> Bytes,
                                           WasmError *Err) {
  auto LM = std::make_unique<LoadedModule>();
  LM->Stats.ModuleBytes = Bytes.size();
  uint64_t T0 = nowNs();

  // Whole-module artifact: a content-identical module decodes and
  // validates once per process (validation is configuration-independent —
  // the wasm3-style Validate=false configs still build side tables through
  // the same pass). Failures are never cached: when this thread ran the
  // builder, Err already carries the diagnostic; a waiter served a failed
  // in-flight build falls back below (its Bytes are untouched — only the
  // builder lambda consumes them) and reproduces it.
  bool BuiltHere = false;
  if (Cache) {
    LM->M = Cache->getOrBuildModule(
        moduleCacheKey(Bytes),
        [&]() -> std::shared_ptr<const Module> {
          BuiltHere = true;
          uint64_t D0 = nowNs();
          std::unique_ptr<Module> M = decodeModule(std::move(Bytes), Err);
          if (!M)
            return nullptr;
          uint64_t D1 = nowNs();
          LM->Stats.DecodeNs = D1 - D0;
          if (!validateModule(*M, Err))
            return nullptr;
          LM->Stats.ValidateNs = nowNs() - D1;
          return std::shared_ptr<const Module>(std::move(M));
        },
        &LM->Stats);
    if (!LM->M && BuiltHere)
      return nullptr;
  }
  if (!LM->M) {
    // Uncached (or cache-declined) decode + validate. wasm3-style
    // configurations trust the module but still need the side tables, so
    // both settings run the same validation pass.
    uint64_t D0 = nowNs();
    std::unique_ptr<Module> M = decodeModule(std::move(Bytes), Err);
    if (!M)
      return nullptr;
    uint64_t D1 = nowNs();
    LM->Stats.DecodeNs = D1 - D0;
    if (!validateModule(*M, Err))
      return nullptr;
    LM->Stats.ValidateNs = nowNs() - D1;
    LM->M = std::shared_ptr<const Module>(std::move(M));
  }
  LM->Stats.CodeBytes = LM->M->codeBytes();

  // Resource governance: reject modules whose declared minimum footprint
  // already exceeds this engine's per-job caps — before any allocation,
  // and identically on every instantiation path (fresh, image, pooled).
  if (Cfg.MaxMemoryPages && !LM->M->Memories.empty() &&
      LM->M->Memories[0].Lim.Min > Cfg.MaxMemoryPages) {
    if (Err)
      Err->Message = strFormat("memory minimum %u pages exceeds job limit %u",
                               LM->M->Memories[0].Lim.Min, Cfg.MaxMemoryPages);
    return nullptr;
  }
  if (Cfg.MaxTableElems)
    for (const TableDecl &Td : LM->M->Tables)
      if (Td.Lim.Min > Cfg.MaxTableElems) {
        if (Err)
          Err->Message =
              strFormat("table minimum %u elements exceeds job limit %u",
                        Td.Lim.Min, Cfg.MaxTableElems);
        return nullptr;
      }

  uint64_t T2 = nowNs();
  // Instantiation fast path: derive the module's instance image (shared
  // through the compile cache when one is attached — the image depends
  // only on the module bytes), then either re-image a pooled retired
  // instance in place or memcpy a fresh instance from the image. Modules
  // that are not imageable (they import globals) come back null and take
  // the legacy path below, which reproduces any link-error diagnostic.
  if (Pool) {
    if (Cache) {
      LM->Image = Cache->getOrBuildImage(
          instanceImageKey(*LM->M),
          [&]() -> std::shared_ptr<const InstanceImage> {
            return buildInstanceImage(*LM->M, nullptr);
          },
          &LM->Stats);
    } else {
      LM->Image = buildInstanceImage(*LM->M, nullptr);
    }
  }
  if (LM->Image) {
    InstancePool::Entry E = Pool->take(LM->M.get());
    if (E.Inst) {
      LM->Stats.PoolHits++;
      LM->Inst = reimageInstance(std::move(E.Inst), *LM->M, *LM->Image,
                                 Hosts, &Heap, Err);
    } else {
      LM->Stats.PoolMisses++;
    }
    if (!LM->Inst)
      LM->Inst = instantiateFromImage(*LM->M, *LM->Image, Hosts, &Heap, Err);
  } else {
    LM->Inst = instantiate(*LM->M, Hosts, &Heap, Err);
  }
  if (!LM->Inst)
    return nullptr;
  if (Cfg.MaxMemoryPages)
    LM->Inst->Memory.setPageLimit(Cfg.MaxMemoryPages);
  uint64_t T3 = nowNs();
  LM->Stats.InstantiateNs = T3 - T2;

  if (Cfg.Mode == ExecMode::Jit) {
    for (FuncInstance &FI : LM->Inst->Funcs) {
      if (FI.Decl->Imported)
        continue;
      FI.Code = compileShared(*LM, *FI.Decl, Cfg.Opts, Cfg.Compiler);
      if (!FI.Code) {
        // Artifact verification rejected the compile (the compilers
        // themselves never fail on a validated body). Eager loads surface
        // the rejection as a load error: nothing unverified ever runs.
        if (Err)
          *Err = WasmError{0, "artifact verification failed: " +
                                  (VerifyError.empty() ? std::string("compile")
                                                       : VerifyError)};
        return nullptr;
      }
      FI.UseJit = true;
      LM->Stats.CodeInsts += FI.Code->Stats.CodeInsts;
      LM->Stats.TagStores += FI.Code->Stats.TagStores;
      LM->Stats.StackMapBytes += FI.Code->Stats.StackMapBytes;
    }
  }
  uint64_t T4 = nowNs();
  LM->Stats.CompileNs = T4 - T3;

  // Threaded-dispatch tiers pre-decode every body into threaded IR up
  // front (the translation is the one-pass cost this tier trades for
  // cheaper dispatch; it lands in PredecodeNs so fig. 7/8-style total-cost
  // comparisons account for it).
  if (T->UseThreaded) {
    for (FuncInstance &FI : LM->Inst->Funcs) {
      if (FI.Decl->Imported)
        continue;
      if (!predecodeAndInstall(*LM, &FI)) {
        if (Err)
          *Err = WasmError{0, "artifact verification failed: " +
                                  (VerifyError.empty()
                                       ? std::string("predecode")
                                       : VerifyError)};
        return nullptr;
      }
    }
    uint64_t T5 = nowNs();
    LM->Stats.PredecodeNs = T5 - T4;
    LM->Stats.TotalSetupNs = T5 - T0;
  } else {
    LM->Stats.TotalSetupNs = T4 - T0;
  }
  return LM;
}

bool Engine::predecodeAndInstall(LoadedModule &LM, FuncInstance *Func) {
  // Fusion is illegal when deopt checkpoints exist: a tier-down may resume
  // at any opcode boundary, including mid-pair.
  bool Fuse = !Cfg.Opts.EmitDeoptChecks;
  // Governed engines get a synthetic FuelGate unit at every loop header;
  // the flag is part of the IR cache key below so gated and ungated IR
  // never share an entry.
  bool Gates = Cfg.Opts.EmitFuelChecks;
  // As with compileShared, verification runs inside the builder: once per
  // cache insert, never on a hit, a rejected IR is never cached (and never
  // installed), and VerifyArtifacts is part of the key so verified and
  // unverified IR never share an entry.
  bool BuiltHere = false;
  auto Build = [&]() -> std::shared_ptr<const ThreadedCode> {
    BuiltHere = true;
    std::shared_ptr<const ThreadedCode> Built =
        predecodeFunction(*LM.M, *Func->Decl, Func, Fuse, Gates);
    if (Built && !verifyThreadedArtifact(*LM.M, *Func->Decl, *Built, Func))
      return nullptr;
    return Built;
  };
  std::shared_ptr<const ThreadedCode> TC;
  if (cacheUsable()) {
    // No probes anywhere in this engine, so the probe bitmap consulted by
    // predecodeFunction is empty and the IR depends only on the body, the
    // module context and the fusion flag. Probed re-predecodes (addProbe,
    // reinstrument) take the uncached branch: fusion-suppressed IR must
    // never be inserted under — or served from — the unprobed key.
    if (!LM.ContextDigest)
      LM.ContextDigest = moduleContextDigest(*LM.M);
    CacheKey K = irCacheKey(LM.ContextDigest, *LM.M, *Func->Decl, Fuse,
                            Gates, Cfg.VerifyArtifacts);
    // Disk second level, mirroring compileShared: deserialized IR is
    // re-verified on every load regardless of Cfg.VerifyArtifacts, against
    // the empty probe bitmap (cacheUsable ⇒ no probes, matching the
    // cached-predecode precondition above). Damage or rejection deletes
    // the file and falls through to a clean re-predecode.
    std::function<std::shared_ptr<const ThreadedCode>(uint64_t *)> DiskLoad;
    std::function<void(const ThreadedCode &, uint64_t)> DiskStore;
    if (Disk) {
      DiskLoad =
          [&, K](uint64_t *BuildNs) -> std::shared_ptr<const ThreadedCode> {
        std::vector<uint8_t> Payload;
        if (!Disk->load(K, DiskArtifactKind::Ir, &Payload, BuildNs,
                        &DiskNote))
          return nullptr;
        std::shared_ptr<ThreadedCode> TCd = deserializeThreadedCode(Payload);
        if (!TCd) {
          Disk->removeRejected(K, DiskArtifactKind::Ir);
          DiskNote = "disk artifact rejected (deserialization): " +
                     Disk->path(K, DiskArtifactKind::Ir);
          return nullptr;
        }
        VerifyReport R = verifyThreadedCode(
            *LM.M, *Func->Decl, *TCd, [](uint32_t) { return false; });
        if (!R.ok()) {
          Disk->removeRejected(K, DiskArtifactKind::Ir);
          DiskNote = "disk artifact rejected (verifier): " +
                     Disk->path(K, DiskArtifactKind::Ir) + "\n" + R.text();
          return nullptr;
        }
        return TCd;
      };
      DiskStore = [&, K](const ThreadedCode &TCs, uint64_t BuildNs) {
        Disk->store(K, DiskArtifactKind::Ir, serializeThreadedCode(TCs),
                    BuildNs);
      };
    }
    TC = Cache->getOrPredecode(K, Build, &LM.Stats, DiskLoad, DiskStore);
    // Reproduce a concurrent inserter's rejection locally so VerifyError
    // carries the real diagnostic (see compileShared).
    if (!TC && !BuiltHere)
      TC = Build();
  } else {
    TC = Build();
  }
  if (!TC)
    return false; // Rejected: keep whatever IR was installed before.
  LM.TCodes.push_back(TC);
  LM.Stats.IrBytes += TC->byteSize();
  Func->TCode = TC.get();
  return true;
}

TrapReason Engine::invoke(LoadedModule &LM, const std::string &ExportName,
                          const std::vector<Value> &Args,
                          std::vector<Value> *Results) {
  FuncInstance *F = LM.Inst->findExportedFunc(ExportName);
  if (!F)
    return TrapReason::HostError;
  Current = &LM;
  T->Inst = LM.Inst.get();
  if (Cfg.Mode == ExecMode::JitLazy && !F->Decl->Imported && !F->Code)
    compileAndInstall(F); // Lazy: compile time lands in run time.
  if (Cfg.governed()) {
    // Clearing the interrupt byte here neutralizes a watchdog fire (or an
    // external cancel) that landed after the previous job finished: stale
    // interrupts can never kill the job after the one they targeted.
    T->Interrupt.store(0, std::memory_order_relaxed);
    T->Interruptible = Cfg.DeadlineMs > 0 || Cfg.Interruptible;
    T->armGovernance(Cfg.FuelBudget != 0, Cfg.FuelBudget);
    if (Cfg.DeadlineMs) {
      if (!Dog)
        Dog = std::make_unique<Watchdog>();
      Dog->arm(*T, Cfg.DeadlineMs);
    }
  }
  TrapReason R = wisp::invoke(*T, F, Args, Results);
  if (Dog)
    Dog->disarm();
  Current = nullptr;
  return R;
}

void Engine::compileAndInstall(FuncInstance *Func) {
  assert(Current && "no module in scope for compilation");
  const MCode *C =
      compileShared(*Current, *Func->Decl, Cfg.Opts, Cfg.Compiler);
  if (!C) {
    // Verification rejected the artifact. Off the eager-load path there is
    // always a correct fallback: keep executing on the interpreter.
    // verifyError() records the findings for the fuzzer/CLI to surface.
    Func->UseJit = false;
    return;
  }
  Func->Code = C;
  Func->UseJit = true;
}

void Engine::addProbe(LoadedModule &LM, uint32_t FuncIdx, uint32_t Ip,
                      Probe *P) {
  Probes.insert(*LM.Inst, FuncIdx, Ip, P);
  FuncInstance *F = LM.Inst->func(FuncIdx);
  if (F->Code) {
    // Recompile with the probe; running frames of the old code tier down
    // at their next checkpoint (stale-code check) if it has any, and all
    // new calls enter the instrumented code.
    Current = &LM;
    compileAndInstall(F);
    Current = nullptr;
  }
  if (F->TCode) {
    // Re-predecode so fusion is suppressed at the probed offset (a probe
    // planted mid-pair must fire exactly as on the switch interpreter).
    // Running frames pick the new IR up at their next observation point.
    predecodeAndInstall(LM, F);
  }
}

void Engine::reinstrument(LoadedModule &LM) {
  Current = &LM;
  for (FuncInstance &F : LM.Inst->Funcs) {
    if (F.Code)
      compileAndInstall(&F);
    if (F.TCode)
      predecodeAndInstall(LM, &F);
  }
  Current = nullptr;
}

void Engine::requestTierDown(LoadedModule &LM, uint32_t FuncIdx) {
  FuncInstance *F = LM.Inst->func(FuncIdx);
  F->DeoptRequested = true;
  F->UseJit = false;
}

void Engine::fireProbes(Thread &Th, FuncInstance *Func, uint32_t Ip) {
  Probes.fire(Th, Func, Ip);
}

void Engine::fireProbeTos(Thread &Th, FuncInstance *Func, uint32_t Ip,
                          Value Tos) {
  Probes.fireTos(Th, Func, Ip, Tos);
}

void Engine::onFuncHot(Thread &, FuncInstance *Func) {
  if (!Current || Func->Decl->Imported || Func->Code)
    return;
  compileAndInstall(Func);
}

bool Engine::onLoopBackedge(Thread &Th, FuncInstance *Func,
                            uint32_t TargetIp) {
  if (Cfg.Mode != ExecMode::Tiered || !Current || Func->Decl->Imported)
    return false;
  if (!Func->Code) {
    // Compile with OSR entries and deopt checkpoints (always through the
    // single-pass pipeline — it is the one that records OSR entries).
    CompilerOptions Opts = Cfg.Opts;
    Opts.EmitOsrEntries = true;
    Opts.EmitDeoptChecks = true;
    const MCode *C =
        compileShared(*Current, *Func->Decl, Opts, CompilerKind::SinglePass);
    if (!C)
      return false; // Verification rejected the OSR body: stay interpreted.
    Func->Code = C;
    Func->UseJit = true;
  }
  const MCode::OsrEntry *E = Func->Code->findOsrEntry(TargetIp);
  if (!E)
    return false;
  // Tier up in place: the interpreter already has every slot in memory,
  // which is exactly the compiled loop-header state.
  Frame &F = Th.top();
  assert(F.Func == Func && "OSR on wrong frame");
  F.Kind = FrameKind::Jit;
  F.Code = Func->Code;
  F.Pc = E->Pc;
  return true;
}

// --- GC root scanning (paper §IV.C) ---

std::vector<uint64_t> Engine::scanRoots() {
  std::vector<uint64_t> Roots;
  const uint64_t *S = T->VS.slots();
  const uint8_t *Tg = T->VS.tags();
  auto addTagged = [&](uint32_t Lo, uint32_t Hi) {
    assert(Tg && "tag scan without tag lane");
    for (uint32_t I = Lo; I < Hi; ++I)
      if (ValType(Tg[I]) == ValType::ExternRef && S[I] != 0)
        Roots.push_back(S[I]);
  };
  for (const Frame &F : T->Frames) {
    const FuncDecl *D = F.Func->Decl;
    uint32_t NL = D->numLocalSlots();
    if (F.Kind == FrameKind::Interp) {
      // The interpreter maintains exact tags for the whole frame.
      addTagged(F.Vfp, F.Sp);
      continue;
    }
    switch (Cfg.Opts.Tags) {
    case TagMode::Eager:
    case TagMode::EagerLocals:
    case TagMode::EagerOperands:
    case TagMode::OnDemand:
      addTagged(F.Vfp, F.Sp);
      break;
    case TagMode::Lazy:
      // Locals reconstructed from declared types by the stack walker;
      // operand tags from memory.
      for (uint32_t I = 0; I < NL; ++I)
        if (isRefType(D->LocalTypes[I]) && S[F.Vfp + I] != 0)
          Roots.push_back(S[F.Vfp + I]);
      addTagged(F.Vfp + NL, F.Sp);
      break;
    case TagMode::StackMap: {
      // Suspended at a call: the map was recorded at the call's pc.
      const StackMapEntry *E =
          F.Pc > 0 ? F.Code->findStackMap(F.Pc - 1) : nullptr;
      if (E) {
        for (uint32_t Slot : E->RefSlots)
          if (S[F.Vfp + Slot] != 0)
            Roots.push_back(S[F.Vfp + Slot]);
      }
      break;
    }
    case TagMode::None:
      break; // Non-GC configuration.
    }
  }
  return Roots;
}

size_t Engine::collectGarbage() { return Heap.collect(scanRoots()); }

// --- GC demo host functions ---

void wisp::installGcHostFuncs(Engine &E) {
  E.hosts().add("wisp", "alloc", FuncType{{ValType::I64}, {ValType::ExternRef}},
                [&E](Instance &, const Value *Args, Value *Rets) {
                  Rets[0] =
                      Value::makeExternRef(E.heap().allocate(Args[0].Bits));
                  return TrapReason::None;
                });
  E.hosts().add("wisp", "payload",
                FuncType{{ValType::ExternRef}, {ValType::I64}},
                [&E](Instance &, const Value *Args, Value *Rets) {
                  if (Args[0].Bits == 0)
                    return TrapReason::HostError;
                  Rets[0] =
                      Value::makeI64(int64_t(E.heap().object(Args[0].Bits).Payload));
                  return TrapReason::None;
                });
  E.hosts().add("wisp", "link",
                FuncType{{ValType::ExternRef, ValType::ExternRef}, {}},
                [&E](Instance &, const Value *Args, Value *) {
                  if (Args[0].Bits != 0 && Args[1].Bits != 0)
                    E.heap().object(Args[0].Bits).Refs.push_back(Args[1].Bits);
                  return TrapReason::None;
                });
  E.hosts().add("wisp", "collect", FuncType{{}, {ValType::I32}},
                [&E](Instance &, const Value *, Value *Rets) {
                  Rets[0] = Value::makeI32(int32_t(E.collectGarbage()));
                  return TrapReason::None;
                });
}
