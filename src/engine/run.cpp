//===- engine/run.cpp - tier dispatcher and function invocation ------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "engine/run.h"

#include "interp/interpreter.h"
#include "interp/threaded.h"
#include "machine/executor.h"

using namespace wisp;

RunSignal wisp::runThread(Thread &T, size_t EntryDepth) {
  for (;;) {
    if (T.Frames.size() < EntryDepth)
      return RunSignal::Done;
    RunSignal Sig;
    if (T.top().Kind == FrameKind::Interp)
      Sig = T.UseThreaded ? runThreadedInterpreter(T, EntryDepth)
                          : runInterpreter(T, EntryDepth);
    else
      Sig = runExecutor(T, EntryDepth);
    if (Sig != RunSignal::SwitchTier)
      return Sig;
  }
}

TrapReason wisp::invoke(Thread &T, FuncInstance *Func,
                        const std::vector<Value> &Args,
                        std::vector<Value> *Results) {
  assert(Args.size() == Func->Type->Params.size() && "argument count");
  T.clearTrap();
  T.Frames.clear();
  uint64_t *S = T.VS.slots();
  uint8_t *Tg = T.VS.tags();
  for (size_t I = 0; I < Args.size(); ++I) {
    S[I] = Args[I].Bits;
    if (Tg)
      Tg[I] = uint8_t(Args[I].Type);
  }
  if (Func->Host) {
    // Direct host invocation (no wasm frame).
    if (!callHostFunc(T, Func, 0, 0))
      return T.Trap;
  } else {
    if (!pushWasmFrame(T, Func, 0))
      return T.Trap;
    RunSignal Sig = runThread(T, T.Frames.size());
    if (Sig == RunSignal::Trapped) {
      T.Frames.clear();
      return T.Trap;
    }
    assert(Sig == RunSignal::Done && "unexpected dispatcher exit");
  }
  if (Results) {
    Results->clear();
    for (size_t I = 0; I < Func->Type->Results.size(); ++I)
      Results->push_back(Value{T.VS.slot(uint32_t(I)),
                               Func->Type->Results[I]});
  }
  return TrapReason::None;
}
