//===- engine/registry.cpp - named engine configurations --------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "engine/registry.h"

using namespace wisp;

static EngineConfig base(const char *Name, ExecMode Mode, CompilerKind Kind) {
  EngineConfig C;
  C.Name = Name;
  C.Mode = Mode;
  C.Compiler = Kind;
  return C;
}

std::vector<EngineConfig> wisp::baselineRegistry() {
  std::vector<EngineConfig> R;
  // wizeng-spc: MR K KF ISEL TAG MV (the full design of this paper).
  {
    EngineConfig C = base("wizard-spc", ExecMode::Jit, CompilerKind::SinglePass);
    C.Opts = CompilerOptions::allopt(); // Tags default to OnDemand.
    R.push_back(C);
  }
  // wazero: R only; two-pass lowering through a listing IR.
  {
    EngineConfig C = base("wazero", ExecMode::Jit, CompilerKind::TwoPass);
    C.Opts.Tags = TagMode::None;
    R.push_back(C);
  }
  // wasm-now: copy-and-patch templates, fastest compile.
  {
    EngineConfig C = base("wasm-now", ExecMode::Jit, CompilerKind::CopyPatch);
    C.Opts.Tags = TagMode::None;
    R.push_back(C);
  }
  // wasmer-base: R K MV; no MR, no ISEL, no folding; no GC.
  {
    EngineConfig C =
        base("wasmer-base", ExecMode::Jit, CompilerKind::SinglePass);
    C.Opts.MultiRegister = false;
    C.Opts.ConstantFolding = false;
    C.Opts.InstructionSelect = false;
    C.Opts.Peephole = false;
    C.Opts.Tags = TagMode::None;
    R.push_back(C);
  }
  // v8-liftoff: MR K ISEL MAP MV; no constant folding.
  {
    EngineConfig C =
        base("v8-liftoff", ExecMode::Jit, CompilerKind::SinglePass);
    C.Opts.ConstantFolding = false;
    C.Opts.Tags = TagMode::StackMap;
    R.push_back(C);
  }
  // sm-base: MR K ISEL MAP MV; leaner design (no folding, no peephole).
  {
    EngineConfig C = base("sm-base", ExecMode::Jit, CompilerKind::SinglePass);
    C.Opts.ConstantFolding = false;
    C.Opts.Peephole = false;
    C.Opts.Tags = TagMode::StackMap;
    R.push_back(C);
  }
  return R;
}

std::vector<BaselineFeatureRow> wisp::figure3Rows() {
  return {
      {"wizeng-spc", "Virgil", 2023, "MR K KF ISEL TAG MV",
       "The Wizard Research Engine's single-pass compiler."},
      {"wazero", "Go", 2022, "R", "An open-source engine written in Go."},
      {"wasm-now", "C++", 2022, "MR K ISEL",
       "A research project using Copy&Patch code generation."},
      {"wasmer-base", "Rust", 2020, "R K MV",
       "The --singlepass option of wasmer."},
      {"v8-liftoff", "C++", 2018, "MR K ISEL MAP MV",
       "The baseline Wasm compiler in V8."},
      {"sm-base", "C++", 2018, "MR K ISEL MAP MV",
       "The baseline Wasm compiler in Spidermonkey."},
  };
}

std::vector<EngineConfig> wisp::figure10Registry() {
  std::vector<EngineConfig> R = baselineRegistry();
  // Interpreters.
  {
    EngineConfig C = base("wizard-int", ExecMode::Interp,
                          CompilerKind::SinglePass);
    R.push_back(C);
  }
  {
    EngineConfig C = base("jsc-int", ExecMode::Interp,
                          CompilerKind::SinglePass);
    R.push_back(C);
  }
  {
    EngineConfig C = base("iwasm-int", ExecMode::Interp,
                          CompilerKind::SinglePass);
    R.push_back(C);
  }
  {
    EngineConfig C = base("wasm3", ExecMode::Interp, CompilerKind::SinglePass);
    C.Validate = false; // wasm3 does not verify the bytecode!
    R.push_back(C);
  }
  // Threaded-dispatch interpreter: pre-decoded IR, computed-goto dispatch,
  // superinstruction fusion (vs. wizard-int's in-place switch dispatch).
  {
    EngineConfig C = base("interp-threaded", ExecMode::Interp,
                          CompilerKind::SinglePass);
    C.ThreadedDispatch = true;
    R.push_back(C);
  }
  // Fast JIT without constant tracking (WAMR fast-jit shape).
  {
    EngineConfig C = base("iwasm-fjit", ExecMode::Jit,
                          CompilerKind::SinglePass);
    C.Opts = CompilerOptions::nok();
    C.Opts.Tags = TagMode::None;
    R.push_back(C);
  }
  // JSC tiers: lazy translation is their signature confound.
  {
    EngineConfig C = base("jsc-bbq", ExecMode::JitLazy,
                          CompilerKind::SinglePass);
    C.Opts.ConstantFolding = false;
    C.Opts.Tags = TagMode::StackMap;
    R.push_back(C);
  }
  {
    EngineConfig C = base("jsc-omg", ExecMode::JitLazy,
                          CompilerKind::Optimizing);
    C.Opts.Tags = TagMode::None;
    R.push_back(C);
  }
  // Optimizing compilers (eager).
  for (const char *Name : {"wasmtime", "wasmer-cranelift", "v8-turbofan",
                           "sm-ion", "wavm-aot"}) {
    EngineConfig C = base(Name, ExecMode::Jit, CompilerKind::Optimizing);
    C.Opts.Tags = TagMode::None;
    R.push_back(C);
  }
  // Tiered configuration (interpreter + baseline with OSR), the Wizard
  // production setup.
  {
    EngineConfig C = base("wizard-tiered", ExecMode::Tiered,
                          CompilerKind::SinglePass);
    C.TierUpThreshold = 256;
    C.Opts.EmitDeoptChecks = true;
    C.Opts.EmitOsrEntries = true;
    R.push_back(C);
  }
  // Tiered with the threaded interpreter below the JIT (fusion is off —
  // deopt may resume mid-pair — but pre-decode and threading still apply).
  {
    EngineConfig C = base("wizard-tiered-threaded", ExecMode::Tiered,
                          CompilerKind::SinglePass);
    C.ThreadedDispatch = true;
    C.TierUpThreshold = 256;
    C.Opts.EmitDeoptChecks = true;
    C.Opts.EmitOsrEntries = true;
    R.push_back(C);
  }
  return R;
}

EngineConfig wisp::configByName(const std::string &Name) {
  for (const EngineConfig &C : figure10Registry())
    if (C.Name == Name)
      return C;
  EngineConfig Default;
  Default.Name = Name;
  return Default;
}
