//===- engine/run.h - tier dispatcher and function invocation ---*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tier dispatcher: alternates between the interpreter and the machine
/// executor as frames of different kinds reach the top of the stack
/// (mixed-tier calls, OSR tier-up, deopt tier-down), plus the top-level
/// function invocation helper.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_ENGINE_RUN_H
#define WISP_ENGINE_RUN_H

#include "runtime/instance.h"
#include "runtime/thread.h"

#include <vector>

namespace wisp {

/// Runs until all frames at or above \p EntryDepth have returned or a trap
/// occurs, switching tiers as needed.
RunSignal runThread(Thread &T, size_t EntryDepth);

/// Invokes \p Func with \p Args on an empty thread; fills \p Results.
/// Returns the trap reason (None on success).
TrapReason invoke(Thread &T, FuncInstance *Func,
                  const std::vector<Value> &Args,
                  std::vector<Value> *Results);

} // namespace wisp

#endif // WISP_ENGINE_RUN_H
