//===- engine/registry.h - named engine configurations ----------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named engine configurations mirroring the execution tiers of the
/// paper's evaluation: the six baseline compilers of Figure 3 and the 18
/// tiers of Figure 10. Feature sets follow the paper's matrix; see
/// EXPERIMENTS.md for the mapping notes and deviations.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_ENGINE_REGISTRY_H
#define WISP_ENGINE_REGISTRY_H

#include "engine/engine.h"

#include <vector>

namespace wisp {

/// An entry in Figure 3's feature matrix.
struct BaselineFeatureRow {
  const char *Name;
  const char *Language;
  int Year;
  const char *Features;
  const char *Description;
};

/// The six baseline compiler configurations (paper Fig. 3).
std::vector<EngineConfig> baselineRegistry();

/// Figure 3's descriptive rows (printed by bench_tab3_features).
std::vector<BaselineFeatureRow> figure3Rows();

/// The 18 execution-tier configurations of Figure 10.
std::vector<EngineConfig> figure10Registry();

/// Looks up a configuration by name from either registry.
EngineConfig configByName(const std::string &Name);

} // namespace wisp

#endif // WISP_ENGINE_REGISTRY_H
