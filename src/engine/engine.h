//===- engine/engine.h - the wisp engine facade -----------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine facade: loads modules through a configurable pipeline
/// (decode, validate, compile per execution mode), runs them through the
/// tier dispatcher, implements the tiering hooks (hot-function compilation,
/// OSR tier-up, deopt tier-down), dispatches probes, and scans GC roots via
/// value tags or stackmaps. Engine configurations model the execution tiers
/// of the paper's Figure 10.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_ENGINE_ENGINE_H
#define WISP_ENGINE_ENGINE_H

#include "cache/compilecache.h"
#include "engine/run.h"
#include "instr/registry.h"
#include "interp/predecode.h"
#include "machine/isa.h"
#include "runtime/gcheap.h"
#include "runtime/hooks.h"
#include "spc/options.h"
#include "wasm/module.h"

#include <memory>
#include <string>

namespace wisp {

class DiskCache;

/// How a configuration executes Wasm code.
enum class ExecMode : uint8_t {
  Interp,  ///< Interpreter only.
  Jit,     ///< Compile everything eagerly at load time.
  JitLazy, ///< Compile each function on its first invocation.
  Tiered,  ///< Start interpreted; tier up hot functions (incl. OSR).
};

/// Which compiler pipeline a JIT configuration uses.
enum class CompilerKind : uint8_t {
  SinglePass, ///< The paper's abstract-interpretation baseline (Wizard-SPC
              ///< and the Liftoff/SpiderMonkey/wasmer-shaped presets).
  TwoPass,    ///< wazero-shaped: build a listing IR, then emit (slower).
  CopyPatch,  ///< WasmNow-shaped: pre-built templates, patched per opcode.
  Optimizing, ///< IR-based optimizing compiler (TurboFan/Cranelift-shaped).
};

/// A complete engine configuration.
struct EngineConfig {
  std::string Name = "wizard-spc";
  ExecMode Mode = ExecMode::Jit;
  CompilerKind Compiler = CompilerKind::SinglePass;
  CompilerOptions Opts;
  bool Validate = true; ///< wasm3 famously does not validate.
  /// Interpreter frames run on the threaded-dispatch tier: function bodies
  /// are pre-decoded at load time into threaded IR (computed-goto dispatch,
  /// pre-resolved branches, superinstructions). Applies to Interp and
  /// Tiered modes; ignored by pure JIT modes. Fusion is automatically
  /// disabled when deopt checkpoints are emitted, because a deopt may
  /// resume at any opcode boundary.
  bool ThreadedDispatch = false;
  uint32_t TierUpThreshold = 256; ///< Tiered mode hotness threshold.
  uint32_t StackSlots = 1u << 16;
  /// Use the content-addressed compile cache (src/cache/): repeated loads
  /// of content-identical modules/bodies under an identical configuration
  /// reuse decoded modules, compiled MCode and pre-decoded threaded IR
  /// instead of rebuilding them. Engines default to the process-wide
  /// cache; the batch runner shares one cache across its worker pool.
  /// Probed bodies always bypass the cache. Disable with
  /// `wisp --no-compile-cache` (measurement runs want cold-start costs).
  bool UseCompileCache = true;
  /// Root directory of the persistent on-disk artifact cache
  /// (cache/diskcache.h): the second level below the in-process compile
  /// cache, so a repeat workload in a *new* process skips the compile
  /// pipeline. Empty (the default) falls back to the WISP_CACHE_DIR
  /// environment variable; if that is unset too, no disk level is opened.
  /// Requires UseCompileCache (the disk level sits behind the process
  /// level). Set via `wisp --cache-dir=DIR`.
  std::string DiskCacheDir;
  /// Gate for the disk level: with false the engine never reads or writes
  /// disk artifacts even when a directory is configured. Disable with
  /// `wisp --no-disk-cache` (cold-start measurement in a warm directory).
  bool UseDiskCache = true;
  /// Use the instantiation fast path: derive (and cache) an InstanceImage
  /// per module — globals pre-evaluated, element segments pre-resolved,
  /// data segments pre-imaged — so instantiation is a handful of memcpys
  /// instead of segment replay, and recycle retired instances through an
  /// InstancePool (re-imaged in place, dirty-bounded) instead of
  /// reallocating. Modules that import globals are not imageable (their
  /// initial state depends on the link environment) and silently take the
  /// legacy path. Disable with `wisp --no-instance-pool`.
  bool PoolInstances = true;
  /// Statically verify every artifact this engine builds (src/verify/):
  /// compiled MCode and pre-decoded threaded IR are translation-validated
  /// against the wasm body before installation. Cached artifacts are
  /// verified once, inside the insert-time builder, so cache hits stay
  /// free. A rejected artifact never runs: eager loads fail with
  /// "artifact verification failed", lazy/tier-up paths stay on the
  /// interpreter, and verifyError() carries the findings either way.
  /// Defaults on in Debug builds; the differential fuzzer forces it on;
  /// opt-in elsewhere via `wisp --verify`.
#ifdef NDEBUG
  bool VerifyArtifacts = false;
#else
  bool VerifyArtifacts = true;
#endif

  // --- Execution governance (service mode; see DESIGN.md) ---
  /// Fuel budget per invocation: deterministic, tier-independent count of
  /// semantic events (frame pushes + loop-header arrivals). Exhaustion
  /// traps with FuelExhausted at the identical bytecode pc on every tier.
  /// 0 = unmetered.
  uint64_t FuelBudget = 0;
  /// Wall-clock deadline per invocation in milliseconds; expiry traps
  /// with DeadlineExceeded at the next governance check. 0 = none.
  uint32_t DeadlineMs = 0;
  /// Honor asynchronous interrupts (Engine::cancel) even without fuel or
  /// a deadline. Implied by FuelBudget/DeadlineMs.
  bool Interruptible = false;
  /// Maximum wasm call depth (frames); CallStackExhausted beyond it.
  /// 0 = the Thread default (4096).
  uint32_t MaxCallDepth = 0;
  /// Runtime cap on linear-memory pages per job: loads whose declared
  /// minimum exceeds it fail, memory.grow beyond it returns -1.
  /// 0 = the architectural 65536-page limit only.
  uint32_t MaxMemoryPages = 0;
  /// Cap on table element counts at instantiation. 0 = unlimited.
  uint32_t MaxTableElems = 0;

  /// True when any per-invocation governance is configured.
  bool governed() const {
    return FuelBudget != 0 || DeadlineMs != 0 || Interruptible;
  }

  /// Whether the value stack needs a tag lane.
  bool wantsTagLane() const {
    if (Mode != ExecMode::Jit && Mode != ExecMode::JitLazy)
      return true; // Interpreter tiers always maintain tags.
    return Opts.Tags != TagMode::None && Opts.Tags != TagMode::StackMap;
  }
};

/// Per-load measurements (the paper's setup-time methodology). Derives
/// the compile-cache counters CacheHits / CacheMisses / CacheSavedNs from
/// CacheStats (cache/compilecache.h).
struct LoadStats : CacheStats {
  uint64_t DecodeNs = 0;
  uint64_t ValidateNs = 0;
  uint64_t CompileNs = 0;
  uint64_t InstantiateNs = 0;
  /// Threaded-IR pre-decode time (threaded-dispatch configurations only).
  /// Counted into TotalSetupNs so total-cost comparisons stay honest.
  uint64_t PredecodeNs = 0;
  uint64_t TotalSetupNs = 0;
  size_t ModuleBytes = 0;
  size_t CodeBytes = 0; ///< Function body bytes (compile-speed denominator).
  uint64_t CodeInsts = 0;
  uint64_t TagStores = 0;
  uint64_t StackMapBytes = 0;
  /// Bytes of pre-decoded threaded IR (SQ-space cost of the threaded tier).
  size_t IrBytes = 0;
  /// Instance-pool accounting: a hit means this load re-imaged a retired
  /// instance in place; a miss means pooling was on and imageable but no
  /// retired instance was available (a fresh image instantiation was
  /// paid). Loads outside the fast path (pool off, module not imageable)
  /// count neither.
  uint64_t PoolHits = 0;
  uint64_t PoolMisses = 0;
};

/// A loaded, instantiated module plus its compiled code.
///
/// Compiled artifacts are held through shared, immutable handles: a body
/// served from the compile cache is the same MCode/ThreadedCode object in
/// every module (and every engine) that loaded it, and an artifact stays
/// alive as long as any loaded module (or the cache) still references it.
class LoadedModule {
public:
  /// Decoded + validated module; shared with the compile cache and with
  /// any other LoadedModule of the same bytes. Immutable after load.
  std::shared_ptr<const Module> M;
  std::unique_ptr<Instance> Inst;
  std::vector<std::shared_ptr<const MCode>> Codes;
  /// Pre-decoded threaded IR bodies. Append-only: probe attachment
  /// re-predecodes (fusion must be suppressed at probed offsets) and
  /// running frames may still reference the superseded IR until their next
  /// observation point.
  std::vector<std::shared_ptr<const ThreadedCode>> TCodes;
  LoadStats Stats;
  /// moduleContextDigest(*M), memoized on first cached compile.
  uint64_t ContextDigest = 0;
  /// The module's instance image (shared through the compile cache), or
  /// null when the fast path was off or the module is not imageable.
  /// Engine::recycle() requires it: only imaged instances are poolable.
  std::shared_ptr<const InstanceImage> Image;
};

/// A pool of retired instances, keyed by module identity (valid because
/// the compile cache shares decoded Module objects across loads of
/// content-identical bytes; uncached loads get distinct Module objects
/// and simply never hit). Entries pin their Module and image through
/// shared handles, so a pool may outlive the engines that fed it — the
/// batch runner keeps one per worker across jobs. Single-threaded, like
/// the engines that own or borrow it.
class InstancePool {
public:
  struct Entry {
    std::shared_ptr<const Module> M;
    std::shared_ptr<const InstanceImage> Image;
    std::unique_ptr<Instance> Inst;
  };

  /// Retired instances kept per module; beyond this, put() drops the
  /// instance (bounding pool memory at MaxPerModule minimum memories).
  static constexpr size_t MaxPerModule = 8;

  struct Totals {
    uint64_t Hits = 0;     ///< take() served a retired instance.
    uint64_t Misses = 0;   ///< take() had nothing for the module.
    uint64_t Returned = 0; ///< Instances accepted by put().
    uint64_t Dropped = 0;  ///< Instances rejected (per-module cap).
  };

  /// Takes a retired instance of \p M, or an empty entry.
  Entry take(const Module *M);
  /// Returns a retired instance; drops it beyond the per-module cap.
  void put(std::shared_ptr<const Module> M,
           std::shared_ptr<const InstanceImage> Image,
           std::unique_ptr<Instance> Inst);

  size_t size() const { return Count; }
  const Totals &totals() const { return T; }

private:
  std::map<const Module *, std::vector<Entry>> Map;
  size_t Count = 0;
  Totals T;
};

/// The engine. Implements EngineHooks for probes and tiering.
///
/// Thread-safety contract (the batch service in src/service/ is built on
/// it; audited for the parallel batch runner):
///
///  - An Engine is single-threaded. It owns all of its mutable state —
///    host registry, probe registry, GC heap, the execution Thread, and
///    every LoadedModule it returns (modules hold FuncInstance hotness
///    counters and code pointers the engine mutates while running). One
///    engine, its thread, and its modules must only ever be touched from
///    one OS thread at a time.
///  - *Distinct* Engine instances are fully independent: any number may
///    load, compile, instrument and run concurrently on different
///    threads. The process-wide state they share is either immutable
///    after initialization and safe to race on first use — the opcode
///    tables (const magic static) and the copy-and-patch template cache
///    (built inside its magic-static initializer — see
///    baselines/copypatch.cpp; construction is serialized by the C++
///    runtime, reads are const) — or internally synchronized: the
///    compile cache (src/cache/compilecache.h) hands out shared
///    `shared_ptr<const T>` handles to artifacts that are immutable once
///    built, coordinates concurrent builds of the same key so each is
///    performed exactly once, and runs builders outside its lock.
///  - Module bytes passed to load() are copied; suite generators
///    (suites/suites.h) build fresh buffers per call and share nothing.
///
/// In short: share nothing mutable, one engine per worker, and any fan-out
/// (the wisp --batch worker pool, concurrent tests, future sharding) is
/// data-race-free by construction.
class Engine : public EngineHooks {
public:
  /// \p Cache selects the compile cache to share: nullptr (the default)
  /// means the process-wide cache when Cfg.UseCompileCache is set — pass
  /// a private CompileCache to scope sharing (the batch runner shares one
  /// per worker pool; tests isolate stats). With Cfg.UseCompileCache
  /// false the engine never touches any cache.
  /// \p Pool selects the instance pool recycle() feeds and load() draws
  /// from: nullptr means an engine-private pool when Cfg.PoolInstances is
  /// set — pass a longer-lived pool to recycle instances across engines
  /// (the batch runner keeps one per worker thread). With
  /// Cfg.PoolInstances false the engine never pools or images.
  explicit Engine(EngineConfig Cfg, CompileCache *Cache = nullptr,
                  InstancePool *Pool = nullptr);
  ~Engine() override;

  const EngineConfig &config() const { return Cfg; }
  /// The compile cache this engine consults, or nullptr when disabled.
  CompileCache *cache() const { return Cache; }
  HostRegistry &hosts() { return Hosts; }
  GcHeap &heap() { return Heap; }
  ProbeRegistry &probes() { return Probes; }
  Thread &thread() { return *T; }
  /// Last artifact-verification rejection (one finding per line), or empty
  /// if every artifact this engine built verified clean. Only populated
  /// when Cfg.VerifyArtifacts is set.
  const std::string &verifyError() const { return VerifyError; }
  /// The persistent artifact store this engine consults below the
  /// in-process cache, or nullptr when no directory is configured.
  DiskCache *disk() const { return Disk.get(); }
  /// Why the most recent disk artifact was rejected at load (damage,
  /// deserialization failure, or verifier findings — one per line), or
  /// empty. Diagnostic only: a rejected disk artifact is deleted and
  /// rebuilt, it never fails the load, so this is kept separate from
  /// verifyError() (which reports artifacts *this* engine built).
  const std::string &diskNote() const { return DiskNote; }

  /// The instance pool this engine recycles through, or nullptr.
  InstancePool *pool() const { return Pool; }

  /// Loads a module: decode, validate, instantiate, compile per mode.
  /// Fills timing statistics. Returns nullptr and \p Err on failure.
  std::unique_ptr<LoadedModule> load(std::vector<uint8_t> Bytes,
                                     WasmError *Err);

  /// Retires \p LM, returning its instance to the pool for a later load
  /// of the same module to re-image in place. Conservatively declines —
  /// destroying the module normally — when pooling is off, the module
  /// was not imaged, this engine has probes attached (instrumentation
  /// side state must not leak into an un-instrumented load), or the GC
  /// heap has live objects (they may reference the instance). Returns
  /// true when the instance was pooled.
  bool recycle(std::unique_ptr<LoadedModule> LM);

  /// Invokes an exported function. Runs lazy compilation if configured.
  /// Arms the configured governance (fuel budget, deadline watchdog) for
  /// the duration of the call.
  TrapReason invoke(LoadedModule &LM, const std::string &ExportName,
                    const std::vector<Value> &Args,
                    std::vector<Value> *Results);

  /// Requests cancellation of the invocation currently running on this
  /// engine's thread (traps with Cancelled at its next governance check).
  /// Safe to call from another OS thread — this is the one sanctioned
  /// cross-thread entry point; it only touches the interrupt atomic. A
  /// no-op unless the engine is configured governed().
  void cancel() {
    T->Interrupt.store(uint8_t(TrapReason::Cancelled),
                       std::memory_order_relaxed);
  }

  /// Serve mode: re-targets the per-invocation fuel budget and deadline on
  /// a warm engine between jobs. Only meaningful on an engine constructed
  /// governed (e.g. Interruptible set) — fuel-check emission into compiled
  /// artifacts is decided at construction and does not change here.
  void setGovernance(uint64_t FuelBudget, uint32_t DeadlineMs) {
    Cfg.FuelBudget = FuelBudget;
    Cfg.DeadlineMs = DeadlineMs;
  }

  /// Attaches a probe; recompiles or tiers down compiled functions so the
  /// probe is observed by all future execution.
  void addProbe(LoadedModule &LM, uint32_t FuncIdx, uint32_t Ip, Probe *P);

  /// Requests that all JIT frames of \p FuncIdx tier down at their next
  /// checkpoint and future calls run interpreted.
  void requestTierDown(LoadedModule &LM, uint32_t FuncIdx);

  /// Recompiles every already-compiled function so newly attached probes
  /// (e.g. from Monitor::attach) are observed; stale frames tier down at
  /// their next checkpoint.
  void reinstrument(LoadedModule &LM);

  /// Scans all live frames for externref roots (tags or stackmaps).
  std::vector<uint64_t> scanRoots();
  /// Runs a GC over the host-object heap using scanned roots.
  size_t collectGarbage();

  // --- EngineHooks ---
  void fireProbes(Thread &T, FuncInstance *Func, uint32_t Ip) override;
  void fireProbeTos(Thread &T, FuncInstance *Func, uint32_t Ip,
                    Value Tos) override;
  void onFuncHot(Thread &T, FuncInstance *Func) override;
  bool onLoopBackedge(Thread &T, FuncInstance *Func,
                      uint32_t TargetIp) override;

  /// Compiles one function with this engine's pipeline.
  std::unique_ptr<MCode> compileOne(const Module &M, const FuncDecl &F);

private:
  void compileAndInstall(FuncInstance *Func);
  /// (Re-)pre-decodes \p Func's body into threaded IR, honoring the
  /// current probe bitmap (fusion is suppressed at probed offsets).
  /// Returns false (installing nothing) when artifact verification
  /// rejects the IR.
  bool predecodeAndInstall(LoadedModule &LM, FuncInstance *Func);
  /// Verifies \p Code under \p Kind's scope when Cfg.VerifyArtifacts is
  /// set. On rejection records the findings in VerifyError and returns
  /// false.
  bool verifyMCodeArtifact(const Module &M, const FuncDecl &F,
                           const MCode &Code, CompilerKind Kind);
  /// Threaded-IR counterpart: checks \p TC against \p Func's probe bitmap.
  bool verifyThreadedArtifact(const Module &M, const FuncDecl &F,
                              const ThreadedCode &TC,
                              const FuncInstance *Func);
  /// Runs \p Kind's pipeline over \p F with this engine's probe oracle.
  std::unique_ptr<MCode> compileRaw(const Module &M, const FuncDecl &F,
                                    const CompilerOptions &Opts,
                                    CompilerKind Kind);
  /// Compiles \p F under \p Opts through the compile cache when usable
  /// (cache present, no probes attached anywhere in this engine), else
  /// fresh. Appends the handle to \p LM.Codes and updates LM.Stats.
  const MCode *compileShared(LoadedModule &LM, const FuncDecl &F,
                             const CompilerOptions &Opts, CompilerKind Kind);
  /// The cache is only consulted while this engine has no probes at all:
  /// probe sites compile against engine-local state (counter cells), so
  /// instrumented artifacts must never be inserted or served.
  bool cacheUsable() const { return Cache && !Probes.anyProbes(); }

  EngineConfig Cfg;
  CompileCache *Cache = nullptr;
  /// The on-disk second level, opened at construction when a directory is
  /// configured (Cfg.DiskCacheDir, else WISP_CACHE_DIR). Engine-private:
  /// cross-engine and cross-process coordination lives in the filesystem
  /// (atomic publish via rename), not in shared memory.
  std::unique_ptr<DiskCache> Disk;
  InstancePool *Pool = nullptr;
  /// Backing storage when no pool was injected but pooling is on.
  std::unique_ptr<InstancePool> OwnedPool;
  HostRegistry Hosts;
  GcHeap Heap;
  ProbeRegistry Probes;
  std::unique_ptr<Thread> T;
  /// Deadline watchdog thread, created lazily on the first deadline-armed
  /// invoke and reused for the engine's lifetime (serve workers keep warm
  /// engines, so the thread amortizes across jobs).
  std::unique_ptr<class Watchdog> Dog;
  LoadedModule *Current = nullptr; ///< Module served by hooks/invoke.
  std::string VerifyError;         ///< Last verification rejection.
  std::string DiskNote;            ///< Last disk-artifact rejection.
};

/// Installs the GC demo host functions (wisp.alloc/link/payload/collect)
/// used by tests and examples.
void installGcHostFuncs(Engine &E);

} // namespace wisp

#endif // WISP_ENGINE_ENGINE_H
