//===- machine/isa.cpp - ISA metadata and listings --------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "machine/isa.h"

#include "support/format.h"

using namespace wisp;

const char *wisp::mopName(MOp Op) {
#define CASE(X)                                                                \
  case MOp::X:                                                                 \
    return #X;
  switch (Op) {
    CASE(Nop)
    CASE(LdSlot) CASE(LdSlotF) CASE(StSlot) CASE(StSlotF) CASE(StTag)
    CASE(StSp) CASE(ZeroSlots)
    CASE(MovRR) CASE(MovFF) CASE(MovRI) CASE(MovFI)
    CASE(RintFG32) CASE(RintFG64) CASE(RintGF32) CASE(RintGF64)
    CASE(Add32) CASE(Sub32) CASE(Mul32) CASE(DivS32) CASE(DivU32)
    CASE(RemS32) CASE(RemU32) CASE(And32) CASE(Or32) CASE(Xor32)
    CASE(Shl32) CASE(ShrS32) CASE(ShrU32) CASE(Rotl32) CASE(Rotr32)
    CASE(AddI32) CASE(MulI32) CASE(AndI32) CASE(OrI32) CASE(XorI32)
    CASE(ShlI32) CASE(ShrSI32) CASE(ShrUI32)
    CASE(Clz32) CASE(Ctz32) CASE(Popcnt32) CASE(Eqz32)
    CASE(Ext8S32) CASE(Ext16S32) CASE(CmpSet32) CASE(CmpSetI32)
    CASE(Add64) CASE(Sub64) CASE(Mul64) CASE(DivS64) CASE(DivU64)
    CASE(RemS64) CASE(RemU64) CASE(And64) CASE(Or64) CASE(Xor64)
    CASE(Shl64) CASE(ShrS64) CASE(ShrU64) CASE(Rotl64) CASE(Rotr64)
    CASE(AddI64) CASE(MulI64) CASE(AndI64) CASE(OrI64) CASE(XorI64)
    CASE(ShlI64) CASE(ShrSI64) CASE(ShrUI64)
    CASE(Clz64) CASE(Ctz64) CASE(Popcnt64) CASE(Eqz64)
    CASE(Ext8S64) CASE(Ext16S64) CASE(Ext32S64) CASE(CmpSet64)
    CASE(CmpSetI64) CASE(Wrap64) CASE(ExtS3264)
    CASE(AddF32) CASE(SubF32) CASE(MulF32) CASE(DivF32) CASE(MinF32)
    CASE(MaxF32) CASE(CopysignF32) CASE(AbsF32) CASE(NegF32) CASE(CeilF32)
    CASE(FloorF32) CASE(TruncF32) CASE(NearestF32) CASE(SqrtF32)
    CASE(AddF64) CASE(SubF64) CASE(MulF64) CASE(DivF64) CASE(MinF64)
    CASE(MaxF64) CASE(CopysignF64) CASE(AbsF64) CASE(NegF64) CASE(CeilF64)
    CASE(FloorF64) CASE(TruncF64) CASE(NearestF64) CASE(SqrtF64)
    CASE(CmpSetF32) CASE(CmpSetF64)
    CASE(TruncF32I32S) CASE(TruncF32I32U) CASE(TruncF64I32S)
    CASE(TruncF64I32U) CASE(TruncF32I64S) CASE(TruncF32I64U)
    CASE(TruncF64I64S) CASE(TruncF64I64U)
    CASE(TruncSatF32I32S) CASE(TruncSatF32I32U) CASE(TruncSatF64I32S)
    CASE(TruncSatF64I32U) CASE(TruncSatF32I64S) CASE(TruncSatF32I64U)
    CASE(TruncSatF64I64S) CASE(TruncSatF64I64U)
    CASE(ConvI32SF32) CASE(ConvI32UF32) CASE(ConvI64SF32) CASE(ConvI64UF32)
    CASE(ConvI32SF64) CASE(ConvI32UF64) CASE(ConvI64SF64) CASE(ConvI64UF64)
    CASE(DemoteF64) CASE(PromoteF32)
    CASE(LdM8S32) CASE(LdM8U32) CASE(LdM16S32) CASE(LdM16U32) CASE(LdM32)
    CASE(LdM8S64) CASE(LdM8U64) CASE(LdM16S64) CASE(LdM16U64)
    CASE(LdM32S64) CASE(LdM32U64) CASE(LdM64) CASE(LdMF32) CASE(LdMF64)
    CASE(StM8) CASE(StM16) CASE(StM32) CASE(StM64) CASE(StMF32) CASE(StMF64)
    CASE(MemSize) CASE(MemGrow) CASE(MemCopy) CASE(MemFill)
    CASE(GlobGet) CASE(GlobGetF) CASE(GlobSet) CASE(GlobSetF)
    CASE(Jmp) CASE(JmpIf) CASE(JmpIfZ)
    CASE(BrCmp32) CASE(BrCmpI32) CASE(BrCmp64) CASE(BrCmpI64) CASE(BrTable)
    CASE(CallDirect) CASE(CallIndirect) CASE(Ret) CASE(TrapOp)
    CASE(ProbeFire) CASE(ProbeTosG) CASE(ProbeTosF) CASE(CntInc)
    CASE(DeoptCheck)
    CASE(FuelCheck)
    CASE(NumOps)
  }
#undef CASE
  return "<bad mop>";
}

std::string MCode::toString() const {
  std::string Out;
  Out += strFormat("; func %u, %zu insts, %u frame slots\n", FuncIndex,
                   Insts.size(), FrameSlots);
  for (size_t I = 0; I < Insts.size(); ++I) {
    const MInst &MI = Insts[I];
    Out += strFormat("%4zu: %-14s a=%-3u b=%-3u c=%-3u d=%-3u imm=%lld", I,
                     mopName(MI.Op), MI.A, MI.B, MI.C, MI.D,
                     (long long)MI.Imm);
    if (MI.Imm2)
      Out += strFormat(" imm2=%lld", (long long)MI.Imm2);
    Out += '\n';
  }
  for (size_t T = 0; T < BrTables.size(); ++T) {
    Out += strFormat("; table %zu:", T);
    for (uint32_t Pc : BrTables[T])
      Out += strFormat(" %u", Pc);
    Out += '\n';
  }
  return Out;
}
