//===- machine/executor.h - simulated machine executor ----------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes compiled MCode against the shared thread state (value stack,
/// frames, instance). The executor plays the role of the CPU for the
/// simulated target ISA: registers live here, the value stack and frames
/// live in the Thread exactly as for the interpreter, and a deterministic
/// cycle count is accumulated per instruction.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_MACHINE_EXECUTOR_H
#define WISP_MACHINE_EXECUTOR_H

#include "runtime/instance.h"
#include "runtime/thread.h"

namespace wisp {

/// Runs the top frame (which must be a Jit frame) and any JIT frames it
/// pushes, until control returns below \p EntryDepth, an interpreter-tier
/// frame becomes top-of-stack (mixed-tier call or deopt), or a trap occurs.
RunSignal runExecutor(Thread &T, size_t EntryDepth);

} // namespace wisp

#endif // WISP_MACHINE_EXECUTOR_H
